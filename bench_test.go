// Package arbd's root benchmarks wrap the experiment harness (DESIGN.md §3):
// one testing.B benchmark per derived experiment E1-E20, so
// `go test -bench=. -benchmem` regenerates every table in EXPERIMENTS.md.
// The rendered tables themselves come from `go run ./cmd/arbd-bench`.
// TestExperimentsSmoke additionally runs every experiment at tiny scale in
// plain `go test`, so experiment regressions surface without -bench.
package arbd

import (
	"testing"
	"time"

	"arbd/internal/bench"
	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := e.Run(); rep.Table.NumRows() == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

func BenchmarkE1LogIngest(b *testing.B)          { runExperiment(b, "E1") }
func BenchmarkE2StreamWindows(b *testing.B)      { runExperiment(b, "E2") }
func BenchmarkE3IncrementalVsBatch(b *testing.B) { runExperiment(b, "E3") }
func BenchmarkE4Offload(b *testing.B)            { runExperiment(b, "E4") }
func BenchmarkE5GeoIndex(b *testing.B)           { runExperiment(b, "E5") }
func BenchmarkE6Layout(b *testing.B)             { runExperiment(b, "E6") }
func BenchmarkE7Recommend(b *testing.B)          { runExperiment(b, "E7") }
func BenchmarkE8HealthAlerts(b *testing.B)       { runExperiment(b, "E8") }
func BenchmarkE9Traffic(b *testing.B)            { runExperiment(b, "E9") }
func BenchmarkE10Privacy(b *testing.B)           { runExperiment(b, "E10") }
func BenchmarkE11Interpret(b *testing.B)         { runExperiment(b, "E11") }
func BenchmarkE12Sketches(b *testing.B)          { runExperiment(b, "E12") }
func BenchmarkE13Influence(b *testing.B)         { runExperiment(b, "E13") }

// BenchmarkE14MultiSessionThroughput sweeps concurrent session counts
// (1/8/64/512) through the bounded frame scheduler.
func BenchmarkE14MultiSessionThroughput(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15GCPressure compares frame hot-path allocations and latency
// with the per-session scratch enabled (pooled) and disabled (alloc).
func BenchmarkE15GCPressure(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16ScaleOut sweeps shard counts behind one router (1/2/4 shard
// nodes over loopback TCP) — the multi-node frontend's aggregate frames/s
// against the E14 single-process baseline.
func BenchmarkE16ScaleOut(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE18ShardChurn runs a 4→3→4 shard churn cycle under 512 live
// subscription streams: frames/s dip, inter-frame gap percentiles, remap
// fraction against the rendezvous 1.5/N bound, and migration pause p99.
func BenchmarkE18ShardChurn(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE17StreamVsPoll compares subscription streaming (protocol v2,
// server-pushed frames) against request/reply polling at 1/64/512
// sessions: frames/s, p99 inter-frame jitter, and wire cost per frame.
func BenchmarkE17StreamVsPoll(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE19DeltaStream compares protocol v4 delta-frame streaming
// against full-frame pushes: bytes per push and encode cost.
func BenchmarkE19DeltaStream(b *testing.B) { runExperiment(b, "E19") }

// BenchmarkE20IngestThroughput drives the zero-copy ingest plane at
// 512-session telemetry shape (24-byte values, batch 256, 8 producers over
// 4 partitions): produce/consume records per second, allocs and bytes per
// record, partition skew, and end-to-end consumer lag percentiles.
func BenchmarkE20IngestThroughput(b *testing.B) { runExperiment(b, "E20") }

// TestExperimentsSmoke runs every registered experiment once at smoke scale:
// a broken experiment fails plain `go test` instead of hiding until the next
// -bench run. Beyond a non-empty table, every experiment must produce a
// non-empty typed record set — the BENCH_*.json trajectory covers the whole
// suite, not just the natively-instrumented experiments.
func TestExperimentsSmoke(t *testing.T) {
	exps := bench.All()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered, want >= 14", len(exps))
	}
	for _, e := range exps {
		t.Run(e.ID, func(t *testing.T) {
			rep := e.SmokeRun()
			if rep == nil || rep.Table == nil || rep.Table.NumRows() == 0 {
				t.Fatalf("%s smoke run produced an empty table", e.ID)
			}
			res := rep.Result
			if res == nil || len(res.Rows) == 0 {
				t.Fatalf("%s smoke run produced no typed records", e.ID)
			}
			if res.Experiment != e.ID {
				t.Fatalf("record experiment = %q, want %q", res.Experiment, e.ID)
			}
			if res.SchemaVersion != bench.SchemaVersion || res.Config == "" ||
				res.GoVersion == "" || res.Timestamp == "" {
				t.Fatalf("%s record missing provenance fields: %+v", e.ID, res)
			}
			metricsTotal := 0
			for _, row := range res.Rows {
				if row.Name == "" {
					t.Fatalf("%s has an unnamed record row", e.ID)
				}
				metricsTotal += len(row.Metrics)
			}
			if metricsTotal == 0 {
				t.Fatalf("%s records carry no metrics", e.ID)
			}
		})
	}
}

// BenchmarkFrameLoop measures the end-to-end per-frame cost of the core
// pipeline — the number the §4.1 timeliness budget is spent against.
func BenchmarkFrameLoop(b *testing.B) {
	platform, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{
			Center:  geo.Point{Lat: 22.3364, Lon: 114.2655},
			RadiusM: 2000,
			NumPOIs: 2000,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := platform.NewSession()
	now := time.Now()
	if err := s.OnGPS(sensor.GPSFix{Time: now, Position: geo.Point{Lat: 22.3364, Lon: 114.2655}, AccuracyM: 5}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Frame(now); err != nil {
			b.Fatal(err)
		}
	}
}
