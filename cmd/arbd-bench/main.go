// Command arbd-bench runs the derived experiment suite E1-E18 (DESIGN.md §3)
// and prints each experiment's result table — the source of the numbers in
// EXPERIMENTS.md.
//
// Usage:
//
//	arbd-bench             # run everything
//	arbd-bench -exp E5     # one experiment
//	arbd-bench -exp E14    # the multi-session throughput sweep
//	arbd-bench -exp E15    # frame hot path GC pressure (pooled vs alloc)
//	arbd-bench -exp E16    # multi-node scale-out (router × 1/2/4 shards)
//	arbd-bench -exp E17    # stream vs poll frame delivery (protocol v2)
//	arbd-bench -exp E18    # shard churn under streaming (join/drain)
//	arbd-bench -smoke      # tiny-parameter pass over every experiment
//	arbd-bench -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"arbd/internal/bench"
	"arbd/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp   = flag.String("exp", "", "run a single experiment (E1..E18)")
		list  = flag.Bool("list", false, "list experiments and exit")
		smoke = flag.Bool("smoke", false, "run tiny-parameter smoke variants")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	exps := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		var table *metrics.Table
		if *smoke {
			table = e.SmokeRun()
		} else {
			table = e.Run()
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
