// Command arbd-bench runs the derived experiment suite E1-E18 (DESIGN.md §3)
// and prints each experiment's result table — the source of the numbers in
// EXPERIMENTS.md. Alongside the tables it can emit the machine-readable
// BENCH_<exp>.json records the perf trajectory is built from, and diff a
// fresh run against a committed baseline (the CI regression gate).
//
// Usage:
//
//	arbd-bench                  # run everything
//	arbd-bench -exp E5          # one experiment
//	arbd-bench -smoke           # tiny-parameter pass over every experiment
//	arbd-bench -list            # list experiments
//	arbd-bench -exp E15 -smoke -json
//	                            # also write BENCH_E15.json (schema-versioned
//	                            # typed records: allocs/op, p99, frames/s, …)
//	arbd-bench -exp E15 -smoke -out path.json
//	                            # write the record file to a specific path
//	arbd-bench -exp E15 -smoke -baseline BENCH_E15.json
//	                            # diff against a baseline; exit 1 on any
//	                            # >threshold regression of a gated metric
//	                            # (frames/s, allocs/op, bytes/op)
//	arbd-bench -exp E15 -smoke -baseline BENCH_E15.json -threshold 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"arbd/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "", "run a single experiment (E1..E18)")
		list      = flag.Bool("list", false, "list experiments and exit")
		smoke     = flag.Bool("smoke", false, "run tiny-parameter smoke variants")
		jsonOut   = flag.Bool("json", false, "write BENCH_<exp>.json typed records for each experiment run")
		outPath   = flag.String("out", "", "write the experiment's record file to this path (requires -exp; implies -json)")
		baseline  = flag.String("baseline", "", "compare the run against this BENCH_*.json baseline and fail on regression (requires -exp)")
		threshold = flag.Float64("threshold", 0.10, "relative regression threshold for -baseline (0.10 = 10%)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	exps := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		exps = []bench.Experiment{e}
	}
	if (*outPath != "" || *baseline != "") && len(exps) != 1 {
		return fmt.Errorf("-out and -baseline require a single experiment (-exp)")
	}

	sha := gitSHA()
	for _, e := range exps {
		start := time.Now()
		var rep *bench.Report
		if *smoke {
			rep = e.SmokeRun()
		} else {
			rep = e.Run()
		}
		fmt.Println(rep.Table.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))

		res := rep.Result
		res.GitSHA = sha
		if *jsonOut || *outPath != "" {
			path := *outPath
			if path == "" {
				path = bench.BenchFileName(e.ID)
			}
			if err := res.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *baseline != "" {
			base, err := bench.ReadResultFile(*baseline)
			if err != nil {
				return err
			}
			cmp, err := bench.Compare(base, res, *threshold)
			if err != nil {
				return err
			}
			fmt.Println(cmp.Table().String())
			if regs := cmp.Regressions(); len(regs) > 0 {
				return fmt.Errorf("%s: %d metric(s) regressed more than %.0f%% against %s",
					e.ID, len(regs), *threshold*100, *baseline)
			}
			fmt.Printf("%s: no regression beyond %.0f%% against %s\n", e.ID, *threshold*100, *baseline)
		}
	}
	return nil
}

// gitSHA stamps records with the commit they measured: CI's checkout SHA
// when present, otherwise the local HEAD, otherwise empty.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
