// Command arbd-bench runs the derived experiment suite E1-E19 (DESIGN.md §3)
// and prints each experiment's result table — the source of the numbers in
// EXPERIMENTS.md. Alongside the tables it can emit the machine-readable
// BENCH_<exp>.json records the perf trajectory is built from, diff a fresh
// run against a committed baseline (the CI regression gate), and print the
// committed trajectory of a baseline across git history (-trend).
//
// Usage:
//
//	arbd-bench                  # run everything
//	arbd-bench -exp E5          # one experiment
//	arbd-bench -smoke           # tiny-parameter pass over every experiment
//	arbd-bench -list            # list experiments
//	arbd-bench -exp E15 -smoke -json
//	                            # also write BENCH_E15.json (schema-versioned
//	                            # typed records: allocs/op, p99, frames/s, …)
//	arbd-bench -exp E15 -smoke -out path.json
//	                            # write the record file to a specific path
//	arbd-bench -exp E15 -smoke -baseline BENCH_E15.json
//	                            # diff against a baseline; exit 1 on any
//	                            # >threshold regression of a gated metric
//	                            # (frames/s, allocs/op, bytes/op)
//	arbd-bench -exp E15 -smoke -baseline BENCH_E15.json -threshold 0.05
//	arbd-bench -trend E15        # per-metric trajectory of the committed
//	                             # BENCH_E15.json across git history
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"arbd/internal/bench"
	"arbd/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "", "run a single experiment (E1..E19)")
		list      = flag.Bool("list", false, "list experiments and exit")
		smoke     = flag.Bool("smoke", false, "run tiny-parameter smoke variants")
		jsonOut   = flag.Bool("json", false, "write BENCH_<exp>.json typed records for each experiment run")
		outPath   = flag.String("out", "", "write the experiment's record file to this path (requires -exp; implies -json)")
		baseline  = flag.String("baseline", "", "compare the run against this BENCH_*.json baseline and fail on regression (requires -exp)")
		threshold = flag.Float64("threshold", 0.10, "relative regression threshold for -baseline (0.10 = 10%)")
		trend     = flag.String("trend", "", "print the per-metric trajectory of an experiment's committed BENCH_*.json across git history, then exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *trend != "" {
		return printTrend(*trend)
	}
	exps := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		exps = []bench.Experiment{e}
	}
	if (*outPath != "" || *baseline != "") && len(exps) != 1 {
		return fmt.Errorf("-out and -baseline require a single experiment (-exp)")
	}

	sha := gitSHA()
	for _, e := range exps {
		start := time.Now()
		var rep *bench.Report
		if *smoke {
			rep = e.SmokeRun()
		} else {
			rep = e.Run()
		}
		fmt.Println(rep.Table.String())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))

		res := rep.Result
		res.GitSHA = sha
		if *jsonOut || *outPath != "" {
			path := *outPath
			if path == "" {
				path = bench.BenchFileName(e.ID)
			}
			if err := res.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *baseline != "" {
			base, err := bench.ReadResultFile(*baseline)
			if err != nil {
				return err
			}
			cmp, err := bench.Compare(base, res, *threshold)
			if err != nil {
				return err
			}
			fmt.Println(cmp.Table().String())
			if regs := cmp.Regressions(); len(regs) > 0 {
				return fmt.Errorf("%s: %d metric(s) regressed more than %.0f%% against %s",
					e.ID, len(regs), *threshold*100, *baseline)
			}
			fmt.Printf("%s: no regression beyond %.0f%% against %s\n", e.ID, *threshold*100, *baseline)
		}
	}
	return nil
}

// printTrend walks the git history of an experiment's committed baseline
// (BENCH_<exp>.json) and prints each metric's value at every revision that
// touched the file, oldest first — the perf trajectory the per-commit CI gate
// can't show. Revisions whose record predates the current schema version are
// skipped; an uncommitted working-tree copy is appended as a final point.
func printTrend(expID string) error {
	if _, ok := bench.ByID(expID); !ok {
		return fmt.Errorf("unknown experiment %q (try -list)", expID)
	}
	path := bench.BenchFileName(expID)
	out, err := exec.Command("git", "log", "--format=%H", "--reverse", "--", path).Output()
	if err != nil {
		return fmt.Errorf("git log %s: %w", path, err)
	}
	type point struct {
		label string
		res   *bench.Result
	}
	var (
		points   []point
		lastBlob []byte
		skipped  int
	)
	for _, sha := range strings.Fields(string(out)) {
		blob, err := exec.Command("git", "show", sha+":"+path).Output()
		if err != nil {
			continue // e.g. the commit deleted the file
		}
		lastBlob = blob
		res, err := bench.DecodeResult(blob)
		if err != nil {
			skipped++
			continue
		}
		points = append(points, point{label: sha[:12], res: res})
	}
	if cur, err := os.ReadFile(path); err == nil && !bytes.Equal(cur, lastBlob) {
		if res, err := bench.DecodeResult(cur); err == nil {
			points = append(points, point{label: "worktree", res: res})
		}
	}
	if len(points) == 0 {
		return fmt.Errorf("no decodable history for %s (never committed, or all revisions predate schema v%d)",
			path, bench.SchemaVersion)
	}
	if skipped > 0 {
		fmt.Printf("(%d revision(s) skipped: older record schema)\n", skipped)
	}

	// The newest record defines the metric set; older points that lack a
	// metric print as "—" so added metrics don't hide history.
	latest := points[len(points)-1].res
	headers := []string{"row", "metric", "unit"}
	for _, p := range points {
		headers = append(headers, p.label)
	}
	headers = append(headers, "first→last")
	t := metrics.NewTable(fmt.Sprintf("%s trajectory: %s across %d revision(s)", expID, path, len(points)), headers...)
	for _, row := range latest.Rows {
		for _, m := range row.Metrics {
			cells := []any{row.Name, m.Name, m.Unit}
			var series []float64
			for _, p := range points {
				prow, ok := p.res.Row(row.Name)
				if !ok {
					cells = append(cells, "—")
					continue
				}
				pm, ok := prow.Metric(m.Name)
				if !ok {
					cells = append(cells, "—")
					continue
				}
				cells = append(cells, strconv.FormatFloat(pm.Value, 'g', 6, 64))
				series = append(series, pm.Value)
			}
			change := "—"
			if len(series) > 1 && series[0] != 0 {
				change = fmt.Sprintf("%+.1f%%", (series[len(series)-1]-series[0])/series[0]*100)
			}
			cells = append(cells, change)
			t.AddRow(cells...)
		}
	}
	fmt.Println(t.String())
	return nil
}

// gitSHA stamps records with the commit they measured: CI's checkout SHA
// when present, otherwise the local HEAD, otherwise empty.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
