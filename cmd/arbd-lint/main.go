// Command arbd-lint runs the repository's custom static-analysis suite:
// hot-path allocation discipline, wire-protocol value pinning, lock-order
// rules, and metrics-handle caching. See internal/lint for the analyzers
// and the README "Static analysis" section for the annotation conventions.
//
// Usage:
//
//	go run ./cmd/arbd-lint ./...
//	go run ./cmd/arbd-lint ./internal/server/... ./internal/core
//
// With no arguments it lints everything. Findings print as
// file:line: [analyzer] message, and the exit status is non-zero when any
// finding survives its escape directives — CI gates on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"arbd/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root to lint (directory containing go.mod)")
	flag.Parse()

	findings, err := lint.Run(*root, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "arbd-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "arbd-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
