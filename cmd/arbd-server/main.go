// Command arbd-server runs the ARBD platform behind a TCP endpoint speaking
// the wire protocol (PROTOCOL.md): clients stream sensor envelopes and pull
// overlay frames by request/reply (v1) or by server-pushed subscription
// streams (v2, negotiated in the hello handshake). See cmd/arbd-loadgen for
// a matching client (-stream drives the v2 path).
//
// Three roles share one frame-serving engine (internal/server.Engine):
//
//	standalone — one process, one session per client connection (default)
//	shard      — owns a partition of the session ID space; serves routers
//	router     — owns client connections; places sessions on shards by a
//	             rendezvous ring and forwards envelopes, shedding frames
//	             early when a shard's pushed LoadSignal reports pressure
//
// Usage:
//
//	arbd-server -addr :7600 -pois 5000 -seed 1 [-epsilon 0.01]
//	arbd-server -role shard -shard-id 1 -addr :7701
//	arbd-server -role shard -shard-id 2 -addr :7702
//	arbd-server -role router -addr :7600 -shards 1=127.0.0.1:7701,2=127.0.0.1:7702
//
// A router process hosts no platform: world flags (-pois, -seed, ...) apply
// to standalone and shard roles. Point arbd-loadgen at a router exactly as
// at a standalone server — the client protocol is identical.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7600", "listen address")
		role    = flag.String("role", "standalone", "server role: standalone | shard | router")
		shardID = flag.Uint64("shard-id", 1, "this shard's ring member ID (role=shard)")
		shards  = flag.String("shards", "", "static shard membership for role=router: id=host:port,id=host:port")
		seed    = flag.Int64("seed", 1, "world seed")
		pois    = flag.Int("pois", 5000, "synthetic city POI count")
		radius  = flag.Float64("radius", 3000, "city radius, meters")
		lat     = flag.Float64("lat", 22.3364, "city center latitude")
		lon     = flag.Float64("lon", 114.2655, "city center longitude")
		epsilon = flag.Float64("epsilon", 0, "location privacy epsilon per fix (0 = off)")
	)
	flag.Parse()

	if *role == "router" {
		return runRouter(*addr, *shards)
	}

	platform, err := core.NewPlatform(core.Config{
		Seed: *seed,
		City: geo.CityConfig{
			Center:    geo.Point{Lat: *lat, Lon: *lon},
			RadiusM:   *radius,
			NumPOIs:   *pois,
			TallRatio: 0.2,
		},
		LocationEpsilon: *epsilon,
	})
	if err != nil {
		return err
	}
	if err := platform.Start(); err != nil {
		return err
	}
	defer func() {
		if err := platform.Stop(); err != nil {
			log.Printf("stopping platform: %v", err)
		}
	}()

	switch *role {
	case "standalone":
		srv := server.New(platform, log.Default())
		bound, err := srv.Listen(*addr)
		if err != nil {
			return err
		}
		log.Printf("arbd-server listening on %s (%d POIs, seed %d)", bound, *pois, *seed)
		awaitSignal()
		return srv.Close()
	case "shard":
		sh := server.NewShard(platform, log.Default(), server.ShardOptions{ID: *shardID})
		bound, err := sh.Listen(*addr)
		if err != nil {
			return err
		}
		log.Printf("arbd-server shard %d listening on %s (%d POIs, seed %d)", *shardID, bound, *pois, *seed)
		awaitSignal()
		return sh.Close()
	default:
		return fmt.Errorf("unknown role %q (standalone | shard | router)", *role)
	}
}

func runRouter(addr, shards string) error {
	members, err := parseMembers(shards)
	if err != nil {
		return err
	}
	r, err := server.NewRouter(members, log.Default(), nil, server.RouterOptions{})
	if err != nil {
		return err
	}
	if err := r.Connect(); err != nil {
		return err
	}
	bound, err := r.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("arbd-server router listening on %s (%d shards)", bound, len(members))
	awaitSignal()
	return r.Close()
}

// parseMembers parses "1=127.0.0.1:7701,2=127.0.0.1:7702".
func parseMembers(s string) ([]server.Member, error) {
	if s == "" {
		return nil, fmt.Errorf("role=router needs -shards (id=host:port,...)")
	}
	var members []server.Member
	for _, part := range strings.Split(s, ",") {
		id, a, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad shard entry %q, want id=host:port", part)
		}
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad shard id in %q: %w", part, err)
		}
		members = append(members, server.Member{ID: n, Addr: a})
	}
	return members, nil
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
