// Command arbd-server runs the ARBD platform behind a TCP endpoint speaking
// the wire protocol (PROTOCOL.md): clients stream sensor envelopes and pull
// overlay frames by request/reply (v1) or by server-pushed subscription
// streams (v2, negotiated in the hello handshake). See cmd/arbd-loadgen for
// a matching client (-stream drives the v2 path).
//
// Four roles share one frame-serving engine (internal/server.Engine):
//
//	standalone — one process, one session per client connection (default)
//	shard      — owns a partition of the session ID space; serves routers
//	router     — owns client connections; places sessions on shards by a
//	             rendezvous ring and forwards envelopes, shedding frames
//	             early when a shard's pushed LoadSignal reports pressure
//	admin      — one-shot control-plane client: join/drain shards against
//	             a router's admin endpoint, or print the membership
//
// Membership is dynamic (protocol v3): a router started with -admin exposes
// a control endpoint; shards join a live router with -join, and draining a
// shard migrates its live sessions (state, streams, buffered telemetry) to
// the surviving shards before the shard detaches.
//
// Usage:
//
//	arbd-server -addr :7600 -pois 5000 -seed 1 [-epsilon 0.01]
//	arbd-server -role shard -shard-id 1 -addr :7701
//	arbd-server -role shard -shard-id 2 -addr :7702
//	arbd-server -role router -addr :7600 -admin :7650 -shards 1=127.0.0.1:7701,2=127.0.0.1:7702
//
//	# grow the fleet: start a shard that registers itself with the router
//	arbd-server -role shard -shard-id 3 -addr :7703 -join 127.0.0.1:7650
//
//	# drain shard 2 (live sessions migrate off first), then stop it
//	arbd-server -role admin -admin 127.0.0.1:7650 -drain 2
//
//	# inspect the membership epoch
//	arbd-server -role admin -admin 127.0.0.1:7650
//
//	# any serving role: expose the introspection plane (/metrics in
//	# Prometheus text format, /debug/arbd/{sessions,streams,slow}) — the
//	# surface cmd/arbd-top and Prometheus scrape
//	arbd-server -addr :7600 -obs 127.0.0.1:7660
//
//	# any role: expose net/http/pprof for live profiling; pointing -pprof
//	# at the -obs address folds both onto one listener
//	arbd-server -addr :7600 -pprof 127.0.0.1:6060
//
// A router process hosts no platform: world flags (-pois, -seed, ...) apply
// to standalone and shard roles. Point arbd-loadgen at a router exactly as
// at a standalone server — the client protocol is identical.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/obs"
	"arbd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "listen address")
		role      = flag.String("role", "standalone", "server role: standalone | shard | router | admin")
		shardID   = flag.Uint64("shard-id", 1, "this shard's ring member ID (role=shard)")
		shards    = flag.String("shards", "", "initial shard membership for role=router: id=host:port,id=host:port")
		admin     = flag.String("admin", "", "router: membership admin listen address; admin: router admin endpoint to dial")
		join      = flag.String("join", "", "shard: router admin endpoint to register with; admin: shard to add as id=host:port")
		drain     = flag.Uint64("drain", 0, "admin: shard ID to drain and remove")
		advertise = flag.String("advertise", "", "shard: address to announce on -join (default: the bound -addr)")
		seed      = flag.Int64("seed", 1, "world seed")
		pois      = flag.Int("pois", 5000, "synthetic city POI count")
		radius    = flag.Float64("radius", 3000, "city radius, meters")
		lat       = flag.Float64("lat", 22.3364, "city center latitude")
		lon       = flag.Float64("lon", 114.2655, "city center longitude")
		epsilon   = flag.Float64("epsilon", 0, "location privacy epsilon per fix (0 = off)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		obsAddr   = flag.String("obs", "", "serve the introspection plane (/metrics, /debug/arbd/*) on this address (empty = off)")
	)
	flag.Parse()

	// Profiling applies to every role — bring it up before the role switch
	// so routers and the one-shot admin client get it too. The handlers live
	// on a dedicated mux, never http.DefaultServeMux, so nothing any import
	// registers globally can leak onto the profiling port. When -pprof and
	// -obs name the same address, pprof folds onto the plane's mux instead
	// of binding twice.
	foldPprof := *pprofAddr != "" && *pprofAddr == *obsAddr
	if *pprofAddr != "" && !foldPprof {
		mux := http.NewServeMux()
		registerPprof(mux)
		if err := serveHTTP(*pprofAddr, "pprof", mux); err != nil {
			return err
		}
	}
	// serveObs brings up the role's introspection plane once the role has
	// built it.
	serveObs := func(plane *obs.Plane) error {
		if *obsAddr == "" {
			return nil
		}
		mux := plane.Mux()
		if foldPprof {
			registerPprof(mux)
		}
		return serveHTTP(*obsAddr, "obs", mux)
	}

	switch *role {
	case "router":
		return runRouter(*addr, *admin, *shards, serveObs)
	case "admin":
		return runAdmin(*admin, *join, *drain)
	}

	platform, err := core.NewPlatform(core.Config{
		Seed: *seed,
		City: geo.CityConfig{
			Center:    geo.Point{Lat: *lat, Lon: *lon},
			RadiusM:   *radius,
			NumPOIs:   *pois,
			TallRatio: 0.2,
		},
		LocationEpsilon: *epsilon,
	})
	if err != nil {
		return err
	}
	if err := platform.Start(); err != nil {
		return err
	}
	defer func() {
		if err := platform.Stop(); err != nil {
			log.Printf("stopping platform: %v", err)
		}
	}()

	switch *role {
	case "standalone":
		srv := server.New(platform, log.Default())
		bound, err := srv.Listen(*addr)
		if err != nil {
			return err
		}
		if err := serveObs(srv.ObsPlane()); err != nil {
			return err
		}
		log.Printf("arbd-server listening on %s (%d POIs, seed %d)", bound, *pois, *seed)
		awaitSignal()
		return srv.Close()
	case "shard":
		sh := server.NewShard(platform, log.Default(), server.ShardOptions{ID: *shardID})
		bound, err := sh.Listen(*addr)
		if err != nil {
			return err
		}
		if err := serveObs(sh.ObsPlane()); err != nil {
			return err
		}
		log.Printf("arbd-server shard %d listening on %s (%d POIs, seed %d)", *shardID, bound, *pois, *seed)
		if *join != "" {
			announce := *advertise
			if announce == "" {
				announce = bound
			}
			epoch, err := registerShard(*join, server.Member{ID: *shardID, Addr: announce})
			if err != nil {
				_ = sh.Close()
				return fmt.Errorf("joining via %s: %w", *join, err)
			}
			log.Printf("arbd-server shard %d joined membership epoch %d (announced %s)",
				*shardID, epoch, announce)
		}
		awaitSignal()
		return sh.Close()
	default:
		return fmt.Errorf("unknown role %q (standalone | shard | router | admin)", *role)
	}
}

func runRouter(addr, adminAddr, shards string, serveObs func(*obs.Plane) error) error {
	members, err := parseMembers(shards)
	if err != nil {
		return err
	}
	r, err := server.NewRouter(members, log.Default(), nil, server.RouterOptions{})
	if err != nil {
		return err
	}
	if err := r.Connect(); err != nil {
		return err
	}
	bound, err := r.Listen(addr)
	if err != nil {
		return err
	}
	if err := serveObs(r.ObsPlane()); err != nil {
		return err
	}
	if adminAddr != "" {
		adminBound, err := r.ListenAdmin(adminAddr)
		if err != nil {
			return err
		}
		log.Printf("arbd-server router admin endpoint on %s", adminBound)
	}
	log.Printf("arbd-server router listening on %s (%d shards, epoch %d)",
		bound, len(members), r.Directory().View().Epoch)
	awaitSignal()
	return r.Close()
}

// runAdmin is the one-shot control-plane client: join, drain, or query.
func runAdmin(target, join string, drain uint64) error {
	if target == "" {
		return fmt.Errorf("role=admin needs -admin (the router's admin endpoint)")
	}
	ac, err := server.DialAdmin(target, 5*time.Second)
	if err != nil {
		return err
	}
	defer ac.Close()
	switch {
	case join != "":
		m, err := parseMember(join)
		if err != nil {
			return err
		}
		view, err := ac.Join(m)
		if err != nil {
			return err
		}
		fmt.Printf("joined shard %d; epoch %d, members %s\n", m.ID, view.Epoch, formatMembers(view.Members))
	case drain != 0:
		view, err := ac.Drain(drain)
		if err != nil {
			return err
		}
		fmt.Printf("drained shard %d; epoch %d, members %s\n", drain, view.Epoch, formatMembers(view.Members))
	default:
		view, err := ac.Membership()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d, members %s\n", view.Epoch, formatMembers(view.Members))
	}
	return nil
}

// registerShard announces a freshly started shard to a router's admin
// endpoint, returning the resulting epoch.
func registerShard(adminAddr string, m server.Member) (uint64, error) {
	ac, err := server.DialAdmin(adminAddr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer ac.Close()
	view, err := ac.Join(m)
	if err != nil {
		return 0, err
	}
	return view.Epoch, nil
}

func formatMembers(members []server.Member) string {
	parts := make([]string, 0, len(members))
	for _, m := range members {
		parts = append(parts, fmt.Sprintf("%d=%s", m.ID, m.Addr))
	}
	return strings.Join(parts, ",")
}

// parseMember parses "3=127.0.0.1:7703".
func parseMember(s string) (server.Member, error) {
	id, a, ok := strings.Cut(strings.TrimSpace(s), "=")
	if !ok {
		return server.Member{}, fmt.Errorf("bad shard entry %q, want id=host:port", s)
	}
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return server.Member{}, fmt.Errorf("bad shard id in %q: %w", s, err)
	}
	return server.Member{ID: n, Addr: a}, nil
}

// parseMembers parses "1=127.0.0.1:7701,2=127.0.0.1:7702".
func parseMembers(s string) ([]server.Member, error) {
	if s == "" {
		return nil, fmt.Errorf("role=router needs -shards (id=host:port,...)")
	}
	var members []server.Member
	for _, part := range strings.Split(s, ",") {
		m, err := parseMember(part)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return members, nil
}

// registerPprof installs the net/http/pprof handlers on an explicit mux —
// the same set the package's init registers on http.DefaultServeMux, minus
// the default mux.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// serveHTTP binds addr synchronously (a bad address fails startup loudly)
// and serves mux for the life of the process.
func serveHTTP(addr, what string, mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("%s listen: %w", what, err)
	}
	log.Printf("arbd-server %s on http://%s/", what, ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("%s server: %v", what, err)
		}
	}()
	return nil
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
