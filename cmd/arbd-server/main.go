// Command arbd-server runs the ARBD platform behind a TCP endpoint speaking
// the wire protocol: clients stream sensor envelopes and request AR overlay
// frames. See cmd/arbd-loadgen for a matching client.
//
// Usage:
//
//	arbd-server -addr :7600 -pois 5000 -seed 1 [-epsilon 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7600", "listen address")
		seed    = flag.Int64("seed", 1, "world seed")
		pois    = flag.Int("pois", 5000, "synthetic city POI count")
		radius  = flag.Float64("radius", 3000, "city radius, meters")
		lat     = flag.Float64("lat", 22.3364, "city center latitude")
		lon     = flag.Float64("lon", 114.2655, "city center longitude")
		epsilon = flag.Float64("epsilon", 0, "location privacy epsilon per fix (0 = off)")
	)
	flag.Parse()

	platform, err := core.NewPlatform(core.Config{
		Seed: *seed,
		City: geo.CityConfig{
			Center:    geo.Point{Lat: *lat, Lon: *lon},
			RadiusM:   *radius,
			NumPOIs:   *pois,
			TallRatio: 0.2,
		},
		LocationEpsilon: *epsilon,
	})
	if err != nil {
		return err
	}
	if err := platform.Start(); err != nil {
		return err
	}
	defer func() {
		if err := platform.Stop(); err != nil {
			log.Printf("stopping platform: %v", err)
		}
	}()

	srv := server.New(platform, log.Default())
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("arbd-server listening on %s (%d POIs, seed %d)", bound, *pois, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	return srv.Close()
}
