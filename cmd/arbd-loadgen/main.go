// Command arbd-loadgen drives an arbd-server with simulated devices:
// each client walks the city, streams GPS/IMU at device rates, and pulls
// overlay frames either by polling (request/reply, the default) or by a
// protocol-v2 subscription (-stream: the server owns the frame clock and
// pushes at the target FPS). The target may be a standalone server or a
// router fronting shard nodes — the client protocol is identical, so
// pointing -addr at a router exercises the full multi-node forward path
// (router sheds count as shed, not as errors).
//
// Usage:
//
//	arbd-loadgen -addr 127.0.0.1:7600 -clients 16 -duration 10s -fps 10
//	arbd-loadgen -addr 127.0.0.1:7600 -clients 16 -stream
//	arbd-loadgen -addr 127.0.0.1:7600 -sweep 1,8,64,512 -duration 5s
//	arbd-loadgen -addr 127.0.0.1:7600 -stream -clients 64 \
//	    -churn 3s -admin 127.0.0.1:7650 -churn-shard 2=127.0.0.1:7702
//	arbd-loadgen -addr 127.0.0.1:7600 -stream -obs-scrape 127.0.0.1:7660
//
// With -obs-scrape pointed at the server's -obs introspection endpoint, the
// run also samples the server-side /metrics frame counters before and after
// each load point and reports the server's frames/s next to the rate the
// clients observed — the quickest way to see whether a throughput gap is
// loss in flight (outbox drops, shed pushes) or the server not producing.
//
// With -sweep, the E14 multi-session scenario runs against a live server:
// each listed client count runs for -duration and the end-to-end frame
// throughput and latency percentiles are reported per count. In -stream
// mode the latency columns report inter-frame gaps (the cadence the
// device actually experienced) instead of request round-trips, plus the
// received wire bytes per pushed frame — the number protocol v4's delta
// encoding shrinks (compare against a -max-proto 3 run).
//
// With -churn (router targets only), the load generator also exercises
// dynamic membership while it drives traffic: every -churn interval it
// drains the -churn-shard via the router's -admin endpoint, waits one
// interval, and joins it back — so the run measures frame delivery
// through live shard leave/join cycles. Client errors still fail the run:
// churn must be invisible to devices.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7600", "server address")
		clients    = flag.Int("clients", 8, "concurrent simulated devices")
		duration   = flag.Duration("duration", 10*time.Second, "run length (per sweep point with -sweep)")
		fps        = flag.Int("fps", 10, "frame requests per second per client")
		lat        = flag.Float64("lat", 22.3364, "city center latitude")
		lon        = flag.Float64("lon", 114.2655, "city center longitude")
		sweep      = flag.String("sweep", "", "comma-separated client counts to sweep (e.g. 1,8,64,512)")
		stream     = flag.Bool("stream", false, "subscribe to pushed frames (protocol v2) instead of polling")
		churn      = flag.Duration("churn", 0, "drain/rejoin the -churn-shard on this interval while driving load (needs -admin)")
		adminAddr  = flag.String("admin", "", "router admin endpoint for -churn")
		churnShard = flag.String("churn-shard", "", "shard to cycle during -churn, as id=host:port")
		maxProto   = flag.Uint("max-proto", 0, "cap the negotiated protocol version in -stream mode (0 = newest; 3 disables delta pushes)")
		obsScrape  = flag.String("obs-scrape", "", "server obs endpoint (arbd-server -obs) to sample /metrics across the run")
	)
	flag.Parse()

	center := geo.Point{Lat: *lat, Lon: *lon}
	if *churn > 0 {
		stopChurn, err := startChurn(*adminAddr, *churnShard, *churn)
		if err != nil {
			return err
		}
		defer stopChurn()
	}
	metric := "frame rtt"
	if *stream {
		metric = "frame gap"
	}
	if *sweep == "" {
		before, okBefore := scrapeObs(*obsScrape)
		res := runLoad(*addr, *clients, *duration, *fps, center, *stream, uint32(*maxProto))
		after, okAfter := scrapeObs(*obsScrape)
		s := res.hist.Snapshot()
		fmt.Printf("clients=%d duration=%v fps=%d stream=%v\n", *clients, *duration, *fps, *stream)
		fmt.Printf("frames=%d shed=%d errors=%d\n", res.frames, res.shed, res.errors)
		if *stream && res.frames > 0 {
			fmt.Printf("rx bytes/frame=%.0f\n", float64(res.rxBytes)/float64(res.frames))
		}
		fmt.Printf("%s: p50=%v p95=%v p99=%v max=%v\n", metric, s.P50, s.P95, s.P99, s.Max)
		if okBefore && okAfter {
			// Two views of the same run: what devices saw arrive vs what the
			// server's own counters say it produced. A gap points at loss
			// between render and the device (outbox drops, shed pushes).
			fmt.Printf("frames/s: client=%.1f server=%.1f (scraped %s)\n",
				float64(res.frames)/res.elapsed.Seconds(),
				(after-before)/res.elapsed.Seconds(), *obsScrape)
		}
		if res.errors > 0 {
			return fmt.Errorf("%d client errors", res.errors)
		}
		return nil
	}

	counts, err := parseSweep(*sweep)
	if err != nil {
		return err
	}
	cols := []string{"clients", "frames", "frames/s", "p50", "p95", "p99", "B/frame", "shed", "errors"}
	if *obsScrape != "" {
		cols = append(cols, "srv f/s")
	}
	t := metrics.NewTable(
		fmt.Sprintf("multi-session sweep against %s (%v per point, %d fps/client, %s)", *addr, *duration, *fps, metric),
		cols...)
	var totalErrs int64
	for _, n := range counts {
		before, okBefore := scrapeObs(*obsScrape)
		res := runLoad(*addr, n, *duration, *fps, center, *stream, uint32(*maxProto))
		after, okAfter := scrapeObs(*obsScrape)
		s := res.hist.Snapshot()
		bpf := "—" // polling replies aren't counted; only -stream wraps the conn
		if *stream && res.frames > 0 {
			bpf = fmt.Sprintf("%.0f", float64(res.rxBytes)/float64(res.frames))
		}
		// Divide by measured wall time, not the nominal -duration: at high
		// client counts connection setup eats into the window.
		row := []any{n, res.frames, fmt.Sprintf("%.0f", float64(res.frames)/res.elapsed.Seconds()),
			s.P50, s.P95, s.P99, bpf, res.shed, res.errors}
		if *obsScrape != "" {
			srv := "—"
			if okBefore && okAfter {
				srv = fmt.Sprintf("%.0f", (after-before)/res.elapsed.Seconds())
			}
			row = append(row, srv)
		}
		t.AddRow(row...)
		totalErrs += res.errors
	}
	fmt.Println(t.String())
	if totalErrs > 0 {
		return fmt.Errorf("%d client errors across sweep", totalErrs)
	}
	return nil
}

// startChurn runs the membership churn loop in the background: drain the
// shard, wait one interval, join it back, wait, repeat. Returned stop
// leaves the membership as found (rejoining the shard if the loop stopped
// mid-drain).
func startChurn(adminAddr, shard string, interval time.Duration) (stop func(), err error) {
	if adminAddr == "" || shard == "" {
		return nil, fmt.Errorf("-churn needs both -admin and -churn-shard (id=host:port)")
	}
	idStr, addr, ok := strings.Cut(strings.TrimSpace(shard), "=")
	if !ok {
		return nil, fmt.Errorf("bad -churn-shard %q, want id=host:port", shard)
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -churn-shard id %q: %w", idStr, err)
	}
	ac, err := server.DialAdmin(adminAddr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if _, err := ac.Membership(); err != nil {
		ac.Close()
		return nil, fmt.Errorf("querying membership at %s: %w", adminAddr, err)
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		out := false // whether the shard is currently drained out
		cycle := func() bool {
			select {
			case <-done:
				return false
			case <-time.After(interval):
			}
			var err error
			if out {
				_, err = ac.Join(server.Member{ID: id, Addr: addr})
			} else {
				_, err = ac.Drain(id)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "arbd-loadgen: churn (drained=%v): %v\n", out, err)
				return false
			}
			out = !out
			fmt.Fprintf(os.Stderr, "arbd-loadgen: churn: shard %d drained=%v\n", id, out)
			return true
		}
		for cycle() {
		}
		if out {
			if _, err := ac.Join(server.Member{ID: id, Addr: addr}); err != nil {
				fmt.Fprintf(os.Stderr, "arbd-loadgen: churn: restoring shard %d: %v\n", id, err)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		ac.Close()
	}, nil
}

// scrapeObs samples the obs endpoint's delivered-frame counter, reporting
// failures to stderr instead of failing the run: a flaky scrape should not
// sink a load test.
func scrapeObs(addr string) (float64, bool) {
	if addr == "" {
		return 0, false
	}
	v, err := obsFrames(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arbd-loadgen: obs scrape %s: %v\n", addr, err)
		return 0, false
	}
	return v, true
}

// obsFrames GETs the plane's Prometheus /metrics and returns the server's
// cumulative delivered-frame counter: arbd_server_frames_done where a
// platform renders, falling back to arbd_obs_frames_recorded on routers
// (which render nothing but settle one flight per forwarded push).
func obsFrames(addr string) (float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s /metrics: HTTP %d", addr, resp.StatusCode)
	}
	var done, recorded float64
	haveDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		switch name {
		case "arbd_server_frames_done":
			done, haveDone = v, true
		case "arbd_obs_frames_recorded":
			recorded = v
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if haveDone {
		return done, nil
	}
	return recorded, nil
}

func parseSweep(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad sweep count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

type loadResult struct {
	frames  int64
	shed    int64
	errors  int64
	rxBytes int64         // wire bytes received across all streaming clients
	elapsed time.Duration // measured wall time, including connection setup
	hist    *metrics.Histogram
}

// runLoad drives n concurrent device clients against the server for the
// given duration and aggregates end-to-end frame stats. In streaming mode
// each client subscribes once at the target FPS and consumes pushed
// frames while its sensor loop keeps feeding the walk; the histogram then
// holds inter-frame gaps rather than request round-trips, and every
// connection is wrapped in a byte counter so the run reports received
// wire bytes per pushed frame.
func runLoad(addr string, n int, duration time.Duration, fps int, center geo.Point, streaming bool, maxProto uint32) loadResult {
	var (
		hist    metrics.Histogram
		frames  metrics.Counter
		shedCtr metrics.Counter
		errsCtr metrics.Counter
		rxBytes atomic.Int64
		wg      sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(duration)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var cl *server.Client
			var err error
			if streaming {
				cl, err = dialCounted(addr, maxProto, &rxBytes)
			} else {
				cl, err = server.Dial(addr)
			}
			if err != nil {
				errsCtr.Inc()
				return
			}
			defer cl.Close()
			walker := sensor.NewWalker(sensor.WalkerConfig{Center: center, RadiusM: 800, Seed: int64(c)})
			gps := sensor.NewGPS(int64(c), 5)
			imu := sensor.NewIMU(int64(c))
			tick := time.Second / time.Duration(fps)
			if streaming {
				if streamClient(cl, walker, gps, imu, tick, fps, deadline, &hist, &frames) != nil {
					errsCtr.Inc()
				}
				return
			}
			i := 0
			for time.Now().Before(deadline) {
				now := time.Now()
				truth := walker.Step(tick)
				if i%fps == 0 { // GPS at 1 Hz
					if err := cl.SendGPS(gps.Fix(now, truth.Position)); err != nil {
						errsCtr.Inc()
						return
					}
				}
				if err := cl.SendIMU(imu.Sample(now, truth, tick)); err != nil {
					errsCtr.Inc()
					return
				}
				_, rtt, err := cl.RequestFrame()
				switch {
				case err == nil:
					hist.Observe(rtt)
					frames.Inc()
				case strings.Contains(err.Error(), server.ErrFrameShed.Error()):
					// Overload shedding is the server protecting itself,
					// not a client failure: count it and keep driving load.
					// Matched against the exported error text so a rewording
					// breaks the build-time reference, not this classifier.
					shedCtr.Inc()
				default:
					errsCtr.Inc()
					return
				}
				i++
				if rem := tick - time.Since(now); rem > 0 {
					time.Sleep(rem)
				}
			}
		}(c)
	}
	wg.Wait()
	return loadResult{
		frames:  frames.Value(),
		shed:    shedCtr.Value(),
		errors:  errsCtr.Value(),
		rxBytes: rxBytes.Load(),
		elapsed: time.Since(start),
		hist:    &hist,
	}
}

// dialCounted dials like server.Dial but wraps the connection in a byte
// counter (and optionally caps the announced protocol version) so -stream
// runs can report received wire bytes per pushed frame — full pushes when
// capped at v3, delta pushes when v4 negotiates.
func dialCounted(addr string, maxProto uint32, rx *atomic.Int64) (*server.Client, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return server.NewClient(context.Background(), &countingConn{Conn: raw, rx: rx},
		server.DialOptions{MaxProto: maxProto})
}

// countingConn counts bytes read off the wire.
type countingConn struct {
	net.Conn
	rx *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

// streamClient is one device in -stream mode: subscribe once, then consume
// pushes while the sensor loop ticks. Server-side shedding and cadence
// degradation show up as stretched gaps, not errors.
func streamClient(cl *server.Client, walker *sensor.Walker, gps *sensor.GPS, imu *sensor.IMU,
	tick time.Duration, fps int, deadline time.Time, hist *metrics.Histogram, frames *metrics.Counter) error {
	truth := walker.Step(tick)
	if err := cl.SendGPS(gps.Fix(time.Now(), truth.Position)); err != nil {
		return err
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	ch, err := cl.Subscribe(ctx, server.SubscribeOptions{Interval: tick})
	if err != nil {
		return err
	}
	sensors := time.NewTicker(tick)
	defer sensors.Stop()
	last := time.Time{}
	i := 0
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				// Channel closed: clean when the deadline cancelled the
				// context, an error otherwise.
				if time.Now().Before(deadline) {
					if serr := cl.StreamErr(); serr != nil {
						return serr
					}
				}
				return nil
			}
			now := time.Now()
			if !last.IsZero() {
				hist.Observe(now.Sub(last))
			}
			last = now
			frames.Inc()
		case now := <-sensors.C:
			if !now.Before(deadline) {
				return nil
			}
			truth = walker.Step(tick)
			if i%fps == 0 {
				if err := cl.SendGPS(gps.Fix(now, truth.Position)); err != nil {
					return err
				}
			}
			if err := cl.SendIMU(imu.Sample(now, truth, tick)); err != nil {
				return err
			}
			i++
		}
	}
}
