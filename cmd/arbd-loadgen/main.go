// Command arbd-loadgen drives an arbd-server with simulated devices:
// each client walks the city, streams GPS/IMU at device rates, requests
// frames at the target FPS, and reports end-to-end frame latency.
//
// Usage:
//
//	arbd-loadgen -addr 127.0.0.1:7600 -clients 16 -duration 10s -fps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "server address")
		clients  = flag.Int("clients", 8, "concurrent simulated devices")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		fps      = flag.Int("fps", 10, "frame requests per second per client")
		lat      = flag.Float64("lat", 22.3364, "city center latitude")
		lon      = flag.Float64("lon", 114.2655, "city center longitude")
	)
	flag.Parse()

	center := geo.Point{Lat: *lat, Lon: *lon}
	var (
		hist    metrics.Histogram
		frames  metrics.Counter
		errsCtr metrics.Counter
		wg      sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(*addr)
			if err != nil {
				errsCtr.Inc()
				return
			}
			defer cl.Close()
			walker := sensor.NewWalker(sensor.WalkerConfig{Center: center, RadiusM: 800, Seed: int64(c)})
			gps := sensor.NewGPS(int64(c), 5)
			imu := sensor.NewIMU(int64(c))
			tick := time.Second / time.Duration(*fps)
			i := 0
			for time.Now().Before(deadline) {
				now := time.Now()
				truth := walker.Step(tick)
				if i%(*fps) == 0 { // GPS at 1 Hz
					if err := cl.SendGPS(gps.Fix(now, truth.Position)); err != nil {
						errsCtr.Inc()
						return
					}
				}
				if err := cl.SendIMU(imu.Sample(now, truth, tick)); err != nil {
					errsCtr.Inc()
					return
				}
				_, rtt, err := cl.RequestFrame()
				if err != nil {
					errsCtr.Inc()
					return
				}
				hist.Observe(rtt)
				frames.Inc()
				i++
				if rem := tick - time.Since(now); rem > 0 {
					time.Sleep(rem)
				}
			}
		}(c)
	}
	wg.Wait()

	s := hist.Snapshot()
	fmt.Printf("clients=%d duration=%v fps=%d\n", *clients, *duration, *fps)
	fmt.Printf("frames=%d errors=%d\n", frames.Value(), errsCtr.Value())
	fmt.Printf("frame rtt: p50=%v p95=%v p99=%v max=%v\n", s.P50, s.P95, s.P99, s.Max)
	if errsCtr.Value() > 0 {
		return fmt.Errorf("%d client errors", errsCtr.Value())
	}
	return nil
}
