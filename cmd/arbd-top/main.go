// Command arbd-top is a live terminal view over one or more arbd-server
// introspection planes (the `-obs` endpoints): per-node frame and push
// rates, shed and drop rates, p99 frame latency and backend flush pressure,
// plus the slowest recent frames with their stage blame — the flight
// recorder's answer to "where did that frame's time go".
//
// Usage:
//
//	arbd-top -addrs 127.0.0.1:7660                        # one node
//	arbd-top -addrs 127.0.0.1:7660,127.0.0.1:7661,...     # router + shards
//	arbd-top -addrs 127.0.0.1:7660 -interval 2s -slow 10
//	arbd-top -addrs 127.0.0.1:7660 -n 1                   # one snapshot, no clear
//
// It consumes the typed JSON surfaces (/debug/arbd/metrics, /debug/arbd/slow)
// rather than parsing Prometheus text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"arbd/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arbd-top:", err)
		os.Exit(1)
	}
}

// instrument mirrors one entry of /debug/arbd/metrics.
type instrument struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
	Count  uint64  `json:"count"`
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
}

type metricsResponse struct {
	Role        string       `json:"role"`
	Node        uint64       `json:"node"`
	Instruments []instrument `json:"instruments"`
}

// trace mirrors one /debug/arbd/slow record.
type trace struct {
	Session     uint64             `json:"session"`
	Seq         uint64             `json:"seq"`
	TotalUS     float64            `json:"total_us"`
	Blame       string             `json:"blame"`
	Spans       map[string]float64 `json:"spans_us"`
	Dropped     bool               `json:"dropped"`
	Shed        bool               `json:"shed"`
	RenderError bool               `json:"render_error"`
}

type slowResponse struct {
	Role        string  `json:"role"`
	Node        uint64  `json:"node"`
	ThresholdUS float64 `json:"threshold_us"`
	Records     []trace `json:"records"`
}

// sample is one scrape of one endpoint, flattened for rate math.
type sample struct {
	at       time.Time
	role     string
	node     uint64
	counters map[string]float64
	gauges   map[string]float64
	p99      map[string]float64 // histogram p99, microseconds
	slow     slowResponse
	err      error
}

func scrape(client *http.Client, addr string, slowN int) sample {
	s := sample{at: time.Now(), counters: map[string]float64{}, gauges: map[string]float64{}, p99: map[string]float64{}}
	var mr metricsResponse
	if s.err = getJSON(client, "http://"+addr+"/debug/arbd/metrics", &mr); s.err != nil {
		return s
	}
	s.role, s.node = mr.Role, mr.Node
	for _, in := range mr.Instruments {
		switch in.Kind {
		case "counter":
			s.counters[in.Name] += in.Value
		case "gauge":
			s.gauges[in.Name] = in.Value
		case "histogram":
			s.p99[in.Name] = in.P99US
		}
	}
	s.err = getJSON(client, fmt.Sprintf("http://%s/debug/arbd/slow?n=%d", addr, slowN), &s.slow)
	return s
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// rate returns the per-second delta of a counter between two samples,
// summing the given names (roles expose different subsets).
func rate(prev, cur sample, names ...string) float64 {
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	var d float64
	for _, n := range names {
		d += cur.counters[n] - prev.counters[n]
	}
	if d < 0 {
		d = 0 // endpoint restarted between scrapes
	}
	return d / dt
}

func run() error {
	var (
		addrs    = flag.String("addrs", "127.0.0.1:7660", "comma-separated obs endpoints (arbd-server -obs addresses)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		iters    = flag.Int("n", 0, "iterations before exiting (0 = run until interrupted)")
		slowN    = flag.Int("slow", 8, "slow-frame traces to show across all nodes")
	)
	flag.Parse()
	targets := strings.Split(*addrs, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}
	client := &http.Client{Timeout: 5 * time.Second}

	prev := make([]sample, len(targets))
	for i, a := range targets {
		prev[i] = scrape(client, a, *slowN)
	}
	clear := *iters != 1
	for it := 0; *iters == 0 || it < *iters; it++ {
		time.Sleep(*interval)
		cur := make([]sample, len(targets))
		for i, a := range targets {
			cur[i] = scrape(client, a, *slowN)
		}
		if clear {
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(targets, prev, cur, *slowN)
		prev = cur
	}
	return nil
}

func render(targets []string, prev, cur []sample, slowN int) {
	tbl := metrics.NewTable(fmt.Sprintf("arbd-top  %s", time.Now().Format("15:04:05")),
		"node", "addr", "frames/s", "push/s", "shed/s", "drop/s", "frame p99", "flush p99", "backlog")
	var slow []trace
	slowNode := map[int]string{}
	for i, a := range targets {
		p, c := prev[i], cur[i]
		if c.err != nil {
			tbl.AddRow("-", a, "-", "-", "-", "-", "-", "-", fmt.Sprintf("unreachable: %v", c.err))
			continue
		}
		node := c.role
		if c.node != 0 {
			node = fmt.Sprintf("%s/%d", c.role, c.node)
		}
		// frames/s: rendered frames where a platform runs; the router renders
		// nothing, so its recorder's settled flights stand in.
		frames := rate(p, c, "server.frames.done")
		if c.role == "router" {
			frames = rate(p, c, "obs.frames.recorded")
		}
		tbl.AddRow(node, a,
			fmt.Sprintf("%.1f", frames),
			fmt.Sprintf("%.1f", rate(p, c, "server.stream.pushes")),
			fmt.Sprintf("%.1f", rate(p, c, "server.frames.shed", "server.stream.shed", "router.frames.shed")),
			fmt.Sprintf("%.1f", rate(p, c, "server.stream.dropped", "router.pushes.dropped")),
			fmt.Sprintf("%.2fms", c.p99["obs.frame.total"]/1000),
			fmt.Sprintf("%.2fms", c.gauges["core.load.flush_p99_seconds"]*1000),
			fmt.Sprintf("%.0f", c.gauges["core.load.backlog"]))
		for j := range c.slow.Records {
			slowNode[len(slow)] = node
			slow = append(slow, c.slow.Records[j])
		}
	}
	fmt.Println(tbl.String())

	// The slowest frames across every scraped node, worst first, with the
	// stage that owns the time.
	order := make([]int, len(slow))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return slow[order[a]].TotalUS > slow[order[b]].TotalUS })
	if len(order) > slowN {
		order = order[:slowN]
	}
	st := metrics.NewTable("slow frames (stage blame)",
		"node", "session", "seq", "total", "blame", "admission", "queue", "render", "encode", "outbox", "write", "outcome")
	for _, i := range order {
		r := slow[i]
		outcome := "delivered"
		switch {
		case r.Dropped:
			outcome = "dropped"
		case r.Shed:
			outcome = "shed"
		case r.RenderError:
			outcome = "render error"
		}
		st.AddRow(slowNode[i], r.Session, r.Seq,
			fmt.Sprintf("%.2fms", r.TotalUS/1000), r.Blame,
			ms(r.Spans["admission"]), ms(r.Spans["queue"]), ms(r.Spans["render"]),
			ms(r.Spans["encode"]), ms(r.Spans["outbox"]), ms(r.Spans["write"]), outcome)
	}
	if st.NumRows() > 0 {
		fmt.Println(st.String())
	}
}

func ms(us float64) string { return fmt.Sprintf("%.2f", us/1000) }
