// Package geo implements the geospatial substrate the paper's AR scenarios
// query against: geodesy primitives, a geohash codec, quadtree and R-tree
// spatial indexes, and a point-of-interest (POI) store with a synthetic city
// generator. Tourism guides, retail product location, and "x-ray vision"
// overlays all resolve their spatial context through this package.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the haversine formulas.
const EarthRadiusMeters = 6_371_000.0

// Point is a WGS84 coordinate in degrees.
type Point struct {
	Lat float64 // -90..90
	Lon float64 // -180..180
}

// Valid reports whether the point is inside WGS84 bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String renders the point as "lat,lon" with 6 decimals (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// DistanceMeters returns the haversine great-circle distance between a and b.
func DistanceMeters(a, b Point) float64 {
	lat1, lat2 := radians(a.Lat), radians(b.Lat)
	dLat := lat2 - lat1
	dLon := radians(b.Lon - a.Lon)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// BearingDegrees returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func BearingDegrees(a, b Point) float64 {
	lat1, lat2 := radians(a.Lat), radians(b.Lat)
	dLon := radians(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brg := degrees(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// Destination returns the point reached travelling distanceMeters from p on
// the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, distanceMeters float64) Point {
	d := distanceMeters / EarthRadiusMeters
	brg := radians(bearingDeg)
	lat1 := radians(p.Lat)
	lon1 := radians(p.Lon)
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: degrees(lat2), Lon: degrees(lon2)}
}

// Rect is a latitude/longitude axis-aligned bounding box. It does not
// support boxes crossing the antimeridian, which the simulated city layouts
// never produce.
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// RectAround returns the bounding box covering a circle of radiusMeters
// centred at p (clamped at the poles).
func RectAround(p Point, radiusMeters float64) Rect {
	dLat := degrees(radiusMeters / EarthRadiusMeters)
	cos := math.Cos(radians(p.Lat))
	if cos < 1e-12 {
		cos = 1e-12
	}
	dLon := degrees(radiusMeters / (EarthRadiusMeters * cos))
	return Rect{
		MinLat: math.Max(-90, p.Lat-dLat),
		MaxLat: math.Min(90, p.Lat+dLat),
		MinLon: p.Lon - dLon,
		MaxLon: p.Lon + dLon,
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Intersects reports whether r and o overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && r.MaxLat >= o.MinLat &&
		r.MinLon <= o.MaxLon && r.MaxLon >= o.MinLon
}

// Union returns the smallest rect covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat),
		MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat),
		MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

// Center returns the rect's midpoint.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Area returns the rect's area in squared degrees (an ordering heuristic for
// index balancing, not a physical area).
func (r Rect) Area() float64 {
	return math.Max(0, r.MaxLat-r.MinLat) * math.Max(0, r.MaxLon-r.MinLon)
}

// Empty reports whether the rect has no extent.
func (r Rect) Empty() bool {
	return r.MaxLat < r.MinLat || r.MaxLon < r.MinLon
}

// rectOf returns the degenerate rect at p.
func rectOf(p Point) Rect {
	return Rect{MinLat: p.Lat, MaxLat: p.Lat, MinLon: p.Lon, MaxLon: p.Lon}
}

// minDistMeters lower-bounds the distance from p to anywhere in r using the
// closest point of the box; exact enough for best-first kNN pruning.
func minDistMeters(p Point, r Rect) float64 {
	lat := math.Max(r.MinLat, math.Min(r.MaxLat, p.Lat))
	lon := math.Max(r.MinLon, math.Min(r.MaxLon, p.Lon))
	return DistanceMeters(p, Point{Lat: lat, Lon: lon})
}
