package geo

import (
	"errors"
	"strings"
)

// ErrBadGeohash is returned for hashes containing invalid characters.
var ErrBadGeohash = errors.New("geo: invalid geohash")

const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var geohashIndex = func() map[byte]int {
	m := make(map[byte]int, 32)
	for i := 0; i < len(geohashBase32); i++ {
		m[geohashBase32[i]] = i
	}
	return m
}()

// EncodeGeohash returns the geohash of p at the given character precision
// (1..12). Longitude and latitude bits interleave starting with longitude,
// per the standard algorithm.
func EncodeGeohash(p Point, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	evenBit := true // true = longitude bit
	bit, ch := 0, 0
	for sb.Len() < precision {
		if evenBit {
			mid := (lonLo + lonHi) / 2
			if p.Lon >= mid {
				ch = ch<<1 | 1
				lonLo = mid
			} else {
				ch <<= 1
				lonHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if p.Lat >= mid {
				ch = ch<<1 | 1
				latLo = mid
			} else {
				ch <<= 1
				latHi = mid
			}
		}
		evenBit = !evenBit
		bit++
		if bit == 5 {
			sb.WriteByte(geohashBase32[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String()
}

// DecodeGeohash returns the bounding cell of the hash.
func DecodeGeohash(hash string) (Rect, error) {
	if hash == "" {
		return Rect{}, ErrBadGeohash
	}
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	evenBit := true
	for i := 0; i < len(hash); i++ {
		idx, ok := geohashIndex[lower(hash[i])]
		if !ok {
			return Rect{}, ErrBadGeohash
		}
		for b := 4; b >= 0; b-- {
			bit := (idx >> uint(b)) & 1
			if evenBit {
				mid := (lonLo + lonHi) / 2
				if bit == 1 {
					lonLo = mid
				} else {
					lonHi = mid
				}
			} else {
				mid := (latLo + latHi) / 2
				if bit == 1 {
					latLo = mid
				} else {
					latHi = mid
				}
			}
			evenBit = !evenBit
		}
	}
	return Rect{MinLat: latLo, MinLon: lonLo, MaxLat: latHi, MaxLon: lonHi}, nil
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// GeohashCenter returns the centre point of the hash cell.
func GeohashCenter(hash string) (Point, error) {
	r, err := DecodeGeohash(hash)
	if err != nil {
		return Point{}, err
	}
	return r.Center(), nil
}

// GeohashNeighbors returns the 8 neighbouring cells of the hash (N, NE, E,
// SE, S, SW, W, NW) computed geometrically from the cell's extent.
func GeohashNeighbors(hash string) ([]string, error) {
	r, err := DecodeGeohash(hash)
	if err != nil {
		return nil, err
	}
	c := r.Center()
	dLat := r.MaxLat - r.MinLat
	dLon := r.MaxLon - r.MinLon
	offsets := [8][2]float64{
		{dLat, 0}, {dLat, dLon}, {0, dLon}, {-dLat, dLon},
		{-dLat, 0}, {-dLat, -dLon}, {0, -dLon}, {dLat, -dLon},
	}
	out := make([]string, 0, 8)
	for _, off := range offsets {
		np := Point{Lat: c.Lat + off[0], Lon: c.Lon + off[1]}
		if np.Lat > 90 || np.Lat < -90 {
			continue // off the pole: no neighbour
		}
		if np.Lon > 180 {
			np.Lon -= 360
		}
		if np.Lon < -180 {
			np.Lon += 360
		}
		out = append(out, EncodeGeohash(np, len(hash)))
	}
	return out, nil
}

// CoverRadius returns geohash cells at the chosen precision covering the
// circle (center, radiusMeters): the center cell plus rings of neighbours
// until the ring no longer intersects the circle's bounding box. The result
// deduplicates cells and is deterministic.
func CoverRadius(center Point, radiusMeters float64, precision int) []string {
	bbox := RectAround(center, radiusMeters)
	root := EncodeGeohash(center, precision)
	seen := map[string]bool{root: true}
	frontier := []string{root}
	out := []string{root}
	for len(frontier) > 0 {
		var next []string
		for _, h := range frontier {
			neighbors, err := GeohashNeighbors(h)
			if err != nil {
				continue
			}
			for _, nb := range neighbors {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				cell, err := DecodeGeohash(nb)
				if err != nil || !cell.Intersects(bbox) {
					continue
				}
				out = append(out, nb)
				next = append(next, nb)
			}
		}
		frontier = next
	}
	return out
}

// PrecisionForRadius picks the finest geohash precision whose cell dimension
// is at least the query radius, so a radius cover spans a bounded (≤ ~3×3)
// block of cells.
func PrecisionForRadius(radiusMeters float64) int {
	// Approximate max cell dimension per precision, metres.
	dims := []float64{5_000_000, 1_250_000, 156_000, 39_100, 4_890, 1_220, 153, 38.2, 4.77, 1.19, 0.149, 0.037}
	prec := 1
	for i, d := range dims {
		if d >= radiusMeters {
			prec = i + 1
		} else {
			break
		}
	}
	return prec
}
