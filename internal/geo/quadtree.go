package geo

import (
	"container/heap"
)

// Item is an identified point stored in a spatial index.
type Item struct {
	ID    uint64
	Point Point
}

// Quadtree is a point-region quadtree over a fixed bounding rect. It is not
// safe for concurrent mutation; the POI store serialises access.
type Quadtree struct {
	root *qnode
	size int
}

const qtBucketSize = 16

type qnode struct {
	bounds   Rect
	items    []Item // leaf payload; nil children when leaf
	children *[4]*qnode
}

// NewQuadtree returns an empty quadtree covering bounds.
func NewQuadtree(bounds Rect) *Quadtree {
	return &Quadtree{root: &qnode{bounds: bounds}}
}

// Len returns the number of stored items.
func (q *Quadtree) Len() int { return q.size }

// Insert adds an item. It reports false if the point is outside the tree's
// bounds.
func (q *Quadtree) Insert(it Item) bool {
	if !q.root.bounds.Contains(it.Point) {
		return false
	}
	q.root.insert(it)
	q.size++
	return true
}

func (n *qnode) insert(it Item) {
	if n.children == nil {
		if len(n.items) < qtBucketSize || tooSmall(n.bounds) {
			n.items = append(n.items, it)
			return
		}
		n.split()
	}
	n.childFor(it.Point).insert(it)
}

// tooSmall stops subdivision at ~1e-7 degrees (centimetres) to avoid
// unbounded recursion on coincident points.
func tooSmall(r Rect) bool {
	return (r.MaxLat-r.MinLat) < 1e-7 || (r.MaxLon-r.MinLon) < 1e-7
}

func (n *qnode) split() {
	c := n.bounds.Center()
	n.children = &[4]*qnode{
		{bounds: Rect{MinLat: c.Lat, MinLon: n.bounds.MinLon, MaxLat: n.bounds.MaxLat, MaxLon: c.Lon}}, // NW
		{bounds: Rect{MinLat: c.Lat, MinLon: c.Lon, MaxLat: n.bounds.MaxLat, MaxLon: n.bounds.MaxLon}}, // NE
		{bounds: Rect{MinLat: n.bounds.MinLat, MinLon: n.bounds.MinLon, MaxLat: c.Lat, MaxLon: c.Lon}}, // SW
		{bounds: Rect{MinLat: n.bounds.MinLat, MinLon: c.Lon, MaxLat: c.Lat, MaxLon: n.bounds.MaxLon}}, // SE
	}
	items := n.items
	n.items = nil
	for _, it := range items {
		n.childFor(it.Point).insert(it)
	}
}

func (n *qnode) childFor(p Point) *qnode {
	c := n.bounds.Center()
	north := p.Lat >= c.Lat
	east := p.Lon >= c.Lon
	switch {
	case north && !east:
		return n.children[0]
	case north && east:
		return n.children[1]
	case !north && !east:
		return n.children[2]
	default:
		return n.children[3]
	}
}

// Search appends all items inside r to out and returns it.
func (q *Quadtree) Search(r Rect, out []Item) []Item {
	return q.root.search(r, out)
}

func (n *qnode) search(r Rect, out []Item) []Item {
	if !n.bounds.Intersects(r) {
		return out
	}
	if n.children == nil {
		for _, it := range n.items {
			if r.Contains(it.Point) {
				out = append(out, it)
			}
		}
		return out
	}
	for _, c := range n.children {
		out = c.search(r, out)
	}
	return out
}

// Nearest returns up to k items closest to p, nearest first, using
// best-first traversal with box distance pruning.
func (q *Quadtree) Nearest(p Point, k int) []Item {
	if k <= 0 || q.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Init(pq)
	heap.Push(pq, nnEntry{node: q.root, dist: minDistMeters(p, q.root.bounds)})
	var result []Item
	for pq.Len() > 0 && len(result) < k {
		e := heap.Pop(pq).(nnEntry)
		if e.node != nil {
			n := e.node
			if n.children == nil {
				for _, it := range n.items {
					heap.Push(pq, nnEntry{item: it, hasItem: true, dist: DistanceMeters(p, it.Point)})
				}
			} else {
				for _, c := range n.children {
					heap.Push(pq, nnEntry{node: c, dist: minDistMeters(p, c.bounds)})
				}
			}
			continue
		}
		if e.hasItem {
			result = append(result, e.item)
		}
	}
	return result
}

// nnEntry is either an index node (lower-bound distance) or a concrete item
// (exact distance) in the best-first queue.
type nnEntry struct {
	node    *qnode
	rnode   *rnode
	item    Item
	hasItem bool
	dist    float64
}

type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
