package geo

import (
	"container/heap"
	"math"
	"sort"
)

// RTree is an R-tree over point items with quadratic-split insertion and an
// STR (sort-tile-recursive) bulk loader. Not safe for concurrent mutation.
type RTree struct {
	root *rnode
	size int
}

const (
	rtMaxEntries = 16
	rtMinEntries = rtMaxEntries / 4
)

type rnode struct {
	bounds   Rect
	leaf     bool
	items    []Item   // when leaf
	children []*rnode // when interior
}

// NewRTree returns an empty tree.
func NewRTree() *RTree {
	return &RTree{root: &rnode{leaf: true}}
}

// BulkLoadRTree builds a tree from items using STR packing, which yields
// near-optimal leaves for static datasets.
func BulkLoadRTree(items []Item) *RTree {
	t := &RTree{size: len(items)}
	if len(items) == 0 {
		t.root = &rnode{leaf: true}
		return t
	}
	leaves := packLeaves(items)
	t.root = packUp(leaves)
	return t
}

func packLeaves(items []Item) []*rnode {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Point.Lon < sorted[j].Point.Lon })

	numLeaves := (len(sorted) + rtMaxEntries - 1) / rtMaxEntries
	numSlices := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	sliceSize := numSlices * rtMaxEntries

	var leaves []*rnode
	for s := 0; s < len(sorted); s += sliceSize {
		end := s + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[s:end]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Point.Lat < slice[j].Point.Lat })
		for l := 0; l < len(slice); l += rtMaxEntries {
			lend := l + rtMaxEntries
			if lend > len(slice) {
				lend = len(slice)
			}
			leaf := &rnode{leaf: true, items: append([]Item(nil), slice[l:lend]...)}
			leaf.recalcBounds()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packUp(nodes []*rnode) *rnode {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			ci, cj := nodes[i].bounds.Center(), nodes[j].bounds.Center()
			if ci.Lon != cj.Lon {
				return ci.Lon < cj.Lon
			}
			return ci.Lat < cj.Lat
		})
		var parents []*rnode
		for s := 0; s < len(nodes); s += rtMaxEntries {
			end := s + rtMaxEntries
			if end > len(nodes) {
				end = len(nodes)
			}
			parent := &rnode{children: append([]*rnode(nil), nodes[s:end]...)}
			parent.recalcBounds()
			parents = append(parents, parent)
		}
		nodes = parents
	}
	return nodes[0]
}

func (n *rnode) recalcBounds() {
	if n.leaf {
		if len(n.items) == 0 {
			n.bounds = Rect{MinLat: 1, MaxLat: 0} // empty
			return
		}
		b := rectOf(n.items[0].Point)
		for _, it := range n.items[1:] {
			b = b.Union(rectOf(it.Point))
		}
		n.bounds = b
		return
	}
	if len(n.children) == 0 {
		n.bounds = Rect{MinLat: 1, MaxLat: 0}
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// Len returns the number of stored items.
func (t *RTree) Len() int { return t.size }

// Insert adds an item using least-enlargement descent and quadratic split.
func (t *RTree) Insert(it Item) {
	t.size++
	split := t.root.insert(it)
	if split != nil {
		newRoot := &rnode{children: []*rnode{t.root, split}}
		newRoot.recalcBounds()
		t.root = newRoot
	}
}

// insert returns a new sibling if the node split.
func (n *rnode) insert(it Item) *rnode {
	if n.leaf {
		n.items = append(n.items, it)
		n.bounds = n.boundsWith(rectOf(it.Point))
		if len(n.items) > rtMaxEntries {
			return n.splitLeaf()
		}
		return nil
	}
	best := n.chooseChild(rectOf(it.Point))
	split := best.insert(it)
	n.bounds = n.boundsWith(rectOf(it.Point))
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > rtMaxEntries {
			return n.splitInterior()
		}
	}
	return nil
}

func (n *rnode) boundsWith(r Rect) Rect {
	if n.bounds.Empty() {
		return r
	}
	return n.bounds.Union(r)
}

func (n *rnode) chooseChild(r Rect) *rnode {
	var best *rnode
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for _, c := range n.children {
		area := c.bounds.Area()
		enl := c.bounds.Union(r).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// splitLeaf performs a quadratic split of an overfull leaf, leaving half the
// items in n and returning the new sibling.
func (n *rnode) splitLeaf() *rnode {
	seedA, seedB := quadraticSeeds(len(n.items), func(i int) Rect { return rectOf(n.items[i].Point) })
	itemsA := []Item{n.items[seedA]}
	itemsB := []Item{n.items[seedB]}
	boundsA := rectOf(n.items[seedA].Point)
	boundsB := rectOf(n.items[seedB].Point)
	for i, it := range n.items {
		if i == seedA || i == seedB {
			continue
		}
		r := rectOf(it.Point)
		// Honour minimum fill.
		if len(itemsA) >= rtMaxEntries+1-rtMinEntries {
			itemsB = append(itemsB, it)
			boundsB = boundsB.Union(r)
			continue
		}
		if len(itemsB) >= rtMaxEntries+1-rtMinEntries {
			itemsA = append(itemsA, it)
			boundsA = boundsA.Union(r)
			continue
		}
		enlA := boundsA.Union(r).Area() - boundsA.Area()
		enlB := boundsB.Union(r).Area() - boundsB.Area()
		if enlA <= enlB {
			itemsA = append(itemsA, it)
			boundsA = boundsA.Union(r)
		} else {
			itemsB = append(itemsB, it)
			boundsB = boundsB.Union(r)
		}
	}
	n.items = itemsA
	n.bounds = boundsA
	return &rnode{leaf: true, items: itemsB, bounds: boundsB}
}

func (n *rnode) splitInterior() *rnode {
	seedA, seedB := quadraticSeeds(len(n.children), func(i int) Rect { return n.children[i].bounds })
	childA := []*rnode{n.children[seedA]}
	childB := []*rnode{n.children[seedB]}
	boundsA := n.children[seedA].bounds
	boundsB := n.children[seedB].bounds
	for i, c := range n.children {
		if i == seedA || i == seedB {
			continue
		}
		if len(childA) >= rtMaxEntries+1-rtMinEntries {
			childB = append(childB, c)
			boundsB = boundsB.Union(c.bounds)
			continue
		}
		if len(childB) >= rtMaxEntries+1-rtMinEntries {
			childA = append(childA, c)
			boundsA = boundsA.Union(c.bounds)
			continue
		}
		enlA := boundsA.Union(c.bounds).Area() - boundsA.Area()
		enlB := boundsB.Union(c.bounds).Area() - boundsB.Area()
		if enlA <= enlB {
			childA = append(childA, c)
			boundsA = boundsA.Union(c.bounds)
		} else {
			childB = append(childB, c)
			boundsB = boundsB.Union(c.bounds)
		}
	}
	n.children = childA
	n.bounds = boundsA
	return &rnode{children: childB, bounds: boundsB}
}

// quadraticSeeds picks the pair whose combined box wastes the most area.
func quadraticSeeds(n int, rect func(int) Rect) (int, int) {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ri, rj := rect(i), rect(j)
			waste := ri.Union(rj).Area() - ri.Area() - rj.Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	return seedA, seedB
}

// Search appends all items inside r to out and returns it.
func (t *RTree) Search(r Rect, out []Item) []Item {
	return t.root.searchR(r, out)
}

func (n *rnode) searchR(r Rect, out []Item) []Item {
	if n.bounds.Empty() || !n.bounds.Intersects(r) {
		return out
	}
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.Point) {
				out = append(out, it)
			}
		}
		return out
	}
	for _, c := range n.children {
		out = c.searchR(r, out)
	}
	return out
}

// Nearest returns up to k items closest to p, nearest first.
func (t *RTree) Nearest(p Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Init(pq)
	heap.Push(pq, nnEntry{rnode: t.root, dist: 0})
	var result []Item
	for pq.Len() > 0 && len(result) < k {
		e := heap.Pop(pq).(nnEntry)
		if e.rnode != nil {
			n := e.rnode
			if n.leaf {
				for _, it := range n.items {
					heap.Push(pq, nnEntry{item: it, hasItem: true, dist: DistanceMeters(p, it.Point)})
				}
			} else {
				for _, c := range n.children {
					heap.Push(pq, nnEntry{rnode: c, dist: minDistMeters(p, c.bounds)})
				}
			}
			continue
		}
		if e.hasItem {
			result = append(result, e.item)
		}
	}
	return result
}

// Height returns the tree height (1 for a lone leaf); used by tests to check
// balance.
func (t *RTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
