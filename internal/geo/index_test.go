package geo

import (
	"sort"
	"testing"

	"arbd/internal/sim"
)

func randomItems(seed int64, n int, bounds Rect) []Item {
	rng := sim.NewRand(seed)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID: uint64(i + 1),
			Point: Point{
				Lat: rng.Uniform(bounds.MinLat, bounds.MaxLat),
				Lon: rng.Uniform(bounds.MinLon, bounds.MaxLon),
			},
		}
	}
	return items
}

var testBounds = Rect{MinLat: 22.2, MinLon: 114.0, MaxLat: 22.5, MaxLon: 114.4}

func scanSearch(items []Item, r Rect) []uint64 {
	var ids []uint64
	for _, it := range items {
		if r.Contains(it.Point) {
			ids = append(ids, it.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func idsOf(items []Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuadtreeMatchesScan(t *testing.T) {
	items := randomItems(10, 2000, testBounds)
	qt := NewQuadtree(testBounds)
	for _, it := range items {
		if !qt.Insert(it) {
			t.Fatalf("insert rejected %v", it)
		}
	}
	if qt.Len() != 2000 {
		t.Fatalf("Len = %d", qt.Len())
	}
	rng := sim.NewRand(11)
	for q := 0; q < 50; q++ {
		c := Point{Lat: rng.Uniform(22.2, 22.5), Lon: rng.Uniform(114.0, 114.4)}
		r := RectAround(c, rng.Uniform(50, 3000))
		got := idsOf(qt.Search(r, nil))
		want := scanSearch(items, r)
		if !equalIDs(got, want) {
			t.Fatalf("query %d: quadtree %d hits, scan %d", q, len(got), len(want))
		}
	}
}

func TestQuadtreeRejectsOutOfBounds(t *testing.T) {
	qt := NewQuadtree(testBounds)
	if qt.Insert(Item{ID: 1, Point: Point{Lat: 0, Lon: 0}}) {
		t.Fatal("out-of-bounds insert accepted")
	}
}

func TestQuadtreeCoincidentPoints(t *testing.T) {
	qt := NewQuadtree(testBounds)
	p := Point{Lat: 22.3, Lon: 114.2}
	for i := 0; i < 100; i++ { // would split forever without depth bound
		qt.Insert(Item{ID: uint64(i + 1), Point: p})
	}
	got := qt.Search(RectAround(p, 10), nil)
	if len(got) != 100 {
		t.Fatalf("found %d coincident items, want 100", len(got))
	}
}

func TestRTreeInsertMatchesScan(t *testing.T) {
	items := randomItems(20, 2000, testBounds)
	rt := NewRTree()
	for _, it := range items {
		rt.Insert(it)
	}
	if rt.Len() != 2000 {
		t.Fatalf("Len = %d", rt.Len())
	}
	rng := sim.NewRand(21)
	for q := 0; q < 50; q++ {
		c := Point{Lat: rng.Uniform(22.2, 22.5), Lon: rng.Uniform(114.0, 114.4)}
		r := RectAround(c, rng.Uniform(50, 3000))
		got := idsOf(rt.Search(r, nil))
		want := scanSearch(items, r)
		if !equalIDs(got, want) {
			t.Fatalf("query %d: rtree %d hits, scan %d", q, len(got), len(want))
		}
	}
}

func TestRTreeBulkLoadMatchesScan(t *testing.T) {
	items := randomItems(30, 5000, testBounds)
	rt := BulkLoadRTree(items)
	if rt.Len() != 5000 {
		t.Fatalf("Len = %d", rt.Len())
	}
	rng := sim.NewRand(31)
	for q := 0; q < 50; q++ {
		c := Point{Lat: rng.Uniform(22.2, 22.5), Lon: rng.Uniform(114.0, 114.4)}
		r := RectAround(c, rng.Uniform(50, 3000))
		got := idsOf(rt.Search(r, nil))
		want := scanSearch(items, r)
		if !equalIDs(got, want) {
			t.Fatalf("query %d: bulk rtree %d hits, scan %d", q, len(got), len(want))
		}
	}
}

func TestRTreeBulkLoadBalanced(t *testing.T) {
	rt := BulkLoadRTree(randomItems(40, 10000, testBounds))
	// 10000 items at fanout 16: height should be ~4, certainly under 8.
	if h := rt.Height(); h > 8 {
		t.Fatalf("height = %d, tree degenerated", h)
	}
}

func TestRTreeEmptyAndSingle(t *testing.T) {
	rt := BulkLoadRTree(nil)
	if got := rt.Search(testBounds, nil); len(got) != 0 {
		t.Fatal("empty tree returned items")
	}
	if got := rt.Nearest(hkust, 3); got != nil {
		t.Fatal("empty tree Nearest returned items")
	}
	rt.Insert(Item{ID: 7, Point: hkust})
	got := rt.Nearest(hkust, 3)
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("single item Nearest = %v", got)
	}
}

func nearestBrute(items []Item, p Point, k int) []uint64 {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		return DistanceMeters(p, sorted[i].Point) < DistanceMeters(p, sorted[j].Point)
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	ids := make([]uint64, len(sorted))
	for i, it := range sorted {
		ids[i] = it.ID
	}
	return ids
}

func TestNearestMatchesBruteForce(t *testing.T) {
	items := randomItems(50, 3000, testBounds)
	qt := NewQuadtree(testBounds)
	rt := BulkLoadRTree(items)
	for _, it := range items {
		qt.Insert(it)
	}
	rng := sim.NewRand(51)
	for q := 0; q < 30; q++ {
		p := Point{Lat: rng.Uniform(22.2, 22.5), Lon: rng.Uniform(114.0, 114.4)}
		k := 1 + rng.Intn(20)
		want := nearestBrute(items, p, k)
		for name, got := range map[string][]Item{
			"quadtree": qt.Nearest(p, k),
			"rtree":    rt.Nearest(p, k),
		} {
			if len(got) != len(want) {
				t.Fatalf("%s returned %d, want %d", name, len(got), len(want))
			}
			for i := range got {
				// Equal-distance ties can permute; compare by distance.
				wd := DistanceMeters(p, itemByID(items, want[i]).Point)
				gd := DistanceMeters(p, got[i].Point)
				if abs(wd-gd) > 1e-6 {
					t.Fatalf("%s kNN #%d dist %.6f, want %.6f", name, i, gd, wd)
				}
			}
		}
	}
}

func itemByID(items []Item, id uint64) Item {
	for _, it := range items {
		if it.ID == id {
			return it
		}
	}
	return Item{}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestNearestOrderedByDistance(t *testing.T) {
	items := randomItems(60, 1000, testBounds)
	rt := BulkLoadRTree(items)
	got := rt.Nearest(hkust, 25)
	for i := 1; i < len(got); i++ {
		if DistanceMeters(hkust, got[i].Point) < DistanceMeters(hkust, got[i-1].Point) {
			t.Fatal("kNN result not sorted by distance")
		}
	}
}
