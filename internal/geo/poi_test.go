package geo

import (
	"errors"
	"testing"
)

func testCity(n int) []POI {
	return GenerateCity(CityConfig{
		Center:    hkust,
		RadiusM:   4000,
		NumPOIs:   n,
		TallRatio: 0.2,
		Seed:      42,
	})
}

func TestGenerateCityDeterministic(t *testing.T) {
	a := testCity(500)
	b := testCity(500)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Location != b[i].Location || a[i].Name != b[i].Name {
			t.Fatalf("city not deterministic at %d", i)
		}
	}
}

func TestGenerateCityWithinRadius(t *testing.T) {
	for _, p := range testCity(1000) {
		if d := DistanceMeters(hkust, p.Location); d > 4000 {
			t.Fatalf("poi %d at %.0f m, beyond radius", p.ID, d)
		}
		if p.HeightMeters <= 0 {
			t.Fatalf("poi %d has no height", p.ID)
		}
		if p.Category == 0 {
			t.Fatalf("poi %d has zero category", p.ID)
		}
	}
}

func TestGenerateCityEmpty(t *testing.T) {
	if got := GenerateCity(CityConfig{}); got != nil {
		t.Fatalf("zero config produced %d pois", len(got))
	}
}

func TestStoreAddGet(t *testing.T) {
	s := NewStore()
	id, err := s.Add(POI{Name: "cafe", Category: CatRestaurant, Location: hkust})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil || got.Name != "cafe" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := s.Get(999); !errors.Is(err, ErrPOINotFound) {
		t.Fatalf("missing id err = %v", err)
	}
}

func TestStoreRejectsInvalidPoint(t *testing.T) {
	s := NewStore()
	if _, err := s.Add(POI{Location: Point{Lat: 200}}); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("err = %v, want ErrBadPoint", err)
	}
}

func TestStoreAssignsIDs(t *testing.T) {
	s := NewStore()
	id1, _ := s.Add(POI{Location: hkust})
	id2, _ := s.Add(POI{Location: central})
	if id1 == id2 || id1 == 0 || id2 == 0 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	// Explicit IDs are preserved and advance the counter.
	id3, _ := s.Add(POI{ID: 100, Location: hkust})
	if id3 != 100 {
		t.Fatalf("explicit id = %d", id3)
	}
	id4, _ := s.Add(POI{Location: hkust})
	if id4 <= 100 {
		t.Fatalf("counter did not advance past explicit id: %d", id4)
	}
}

func TestAllIndexKindsAgreeOnRadiusQuery(t *testing.T) {
	city := testCity(3000)
	kinds := []IndexKind{IndexScan, IndexGeohash, IndexQuadtree, IndexRTree}
	stores := make(map[IndexKind]*Store, len(kinds))
	for _, k := range kinds {
		s, err := LoadStore(city, k)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != len(city) {
			t.Fatalf("%v store has %d pois", k, s.Len())
		}
		stores[k] = s
	}
	queries := []struct {
		center Point
		radius float64
		cat    Category
	}{
		{hkust, 500, 0},
		{hkust, 2000, 0},
		{hkust, 2000, CatRestaurant},
		{Destination(hkust, 90, 1500), 800, 0},
		{Destination(hkust, 225, 3000), 1200, CatShop},
	}
	for qi, q := range queries {
		want := stores[IndexScan].QueryRadius(q.center, q.radius, q.cat)
		for _, k := range kinds[1:] {
			got := stores[k].QueryRadius(q.center, q.radius, q.cat)
			if len(got) != len(want) {
				t.Fatalf("query %d: %v returned %d, scan %d", qi, k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("query %d: %v order diverges at %d (%d vs %d)",
						qi, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestQueryRadiusSortedAndFiltered(t *testing.T) {
	s, err := LoadStore(testCity(2000), IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	got := s.QueryRadius(hkust, 1500, CatMuseum)
	prev := -1.0
	for _, p := range got {
		if p.Category != CatMuseum {
			t.Fatalf("category filter leaked %v", p.Category)
		}
		d := DistanceMeters(hkust, p.Location)
		if d > 1500 {
			t.Fatalf("poi outside radius: %.0f m", d)
		}
		if d < prev {
			t.Fatal("results not sorted by distance")
		}
		prev = d
	}
}

func TestStoreNearestAgreesAcrossIndexes(t *testing.T) {
	city := testCity(1500)
	scan, _ := LoadStore(city, IndexScan)
	rt, _ := LoadStore(city, IndexRTree)
	qt, _ := LoadStore(city, IndexQuadtree)
	want := scan.Nearest(central, 10)
	for name, s := range map[string]*Store{"rtree": rt, "quadtree": qt} {
		got := s.Nearest(central, 10)
		if len(got) != len(want) {
			t.Fatalf("%s Nearest returned %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			dw := DistanceMeters(central, want[i].Location)
			dg := DistanceMeters(central, got[i].Location)
			if abs(dw-dg) > 1e-6 {
				t.Fatalf("%s kNN #%d distance %.4f, want %.4f", name, i, dg, dw)
			}
		}
	}
}

func TestStoreAllSnapshot(t *testing.T) {
	s, _ := LoadStore(testCity(10), IndexScan)
	all := s.All()
	if len(all) != 10 {
		t.Fatalf("All = %d", len(all))
	}
	all[0].Name = "mutated"
	if got, _ := s.Get(all[0].ID); got.Name == "mutated" {
		t.Fatal("All returned aliasing data")
	}
}

func TestIndexKindStrings(t *testing.T) {
	for _, k := range []IndexKind{IndexScan, IndexGeohash, IndexQuadtree, IndexRTree} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if got := CatRestaurant.String(); got != "restaurant" {
		t.Fatalf("category name = %q", got)
	}
	if got := Category(99).String(); got != "category(99)" {
		t.Fatalf("unknown category = %q", got)
	}
}
