package geo

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"arbd/internal/sim"
)

// POI errors.
var (
	ErrPOINotFound = errors.New("geo: poi not found")
	ErrBadPoint    = errors.New("geo: point outside WGS84 bounds")
)

// Category classifies a POI. Enums start at 1.
type Category int

// POI categories used by the scenario generators.
const (
	CatRestaurant Category = iota + 1
	CatShop
	CatMuseum
	CatLandmark
	CatHospital
	CatTransit
	CatHotel
	CatPark
	CatOffice
	CatResidence
	numCategories
)

// String returns the category name.
func (c Category) String() string {
	names := [...]string{"", "restaurant", "shop", "museum", "landmark",
		"hospital", "transit", "hotel", "park", "office", "residence"}
	if c >= 1 && int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// POI is a point of interest: the unit of geospatial context AR annotations
// attach to.
type POI struct {
	ID       uint64
	Name     string
	Category Category
	Location Point
	Tags     map[string]string
	// HeightMeters lets the render layer treat tall POIs (buildings) as
	// occluders.
	HeightMeters float64
}

// IndexKind selects the spatial index backing a Store. Enums start at 1.
type IndexKind int

// Index strategies. IndexScan is the baseline the paper-era AR browsers
// effectively used (filter the whole catalogue per query).
const (
	IndexScan IndexKind = iota + 1
	IndexGeohash
	IndexQuadtree
	IndexRTree
)

// String returns the index kind's name.
func (k IndexKind) String() string {
	switch k {
	case IndexScan:
		return "scan"
	case IndexGeohash:
		return "geohash"
	case IndexQuadtree:
		return "quadtree"
	case IndexRTree:
		return "rtree"
	default:
		return fmt.Sprintf("index(%d)", int(k))
	}
}

// Store is a POI database with a pluggable spatial index. Safe for
// concurrent use.
type Store struct {
	mu       sync.RWMutex
	kind     IndexKind
	byID     map[uint64]*POI
	all      []*POI // scan baseline and source of truth order
	geocells map[string][]uint64
	ghPrec   int
	qt       *Quadtree
	rt       *RTree
	nextID   uint64
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithIndex selects the spatial index (default IndexRTree).
func WithIndex(kind IndexKind) StoreOption {
	return func(s *Store) { s.kind = kind }
}

// WithGeohashPrecision sets the bucket precision for IndexGeohash
// (default 6, ~1.2 km cells).
func WithGeohashPrecision(p int) StoreOption {
	return func(s *Store) {
		if p >= 1 && p <= 12 {
			s.ghPrec = p
		}
	}
}

// NewStore returns an empty POI store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		kind:     IndexRTree,
		byID:     make(map[uint64]*POI),
		geocells: make(map[string][]uint64),
		ghPrec:   6,
	}
	for _, opt := range opts {
		opt(s)
	}
	switch s.kind {
	case IndexQuadtree:
		s.qt = NewQuadtree(Rect{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180})
	case IndexRTree:
		s.rt = NewRTree()
	}
	return s
}

// Kind returns the store's index kind.
func (s *Store) Kind() IndexKind { return s.kind }

// Len returns the number of stored POIs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// Add inserts a POI, assigning an ID if the POI has none. The POI value is
// copied.
func (s *Store) Add(p POI) (uint64, error) {
	if !p.Location.Valid() {
		return 0, fmt.Errorf("%w: %v", ErrBadPoint, p.Location)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.ID == 0 {
		s.nextID++
		p.ID = s.nextID
	} else if p.ID > s.nextID {
		s.nextID = p.ID
	}
	cp := p
	s.byID[cp.ID] = &cp
	s.all = append(s.all, &cp)
	switch s.kind {
	case IndexGeohash:
		h := EncodeGeohash(cp.Location, s.ghPrec)
		s.geocells[h] = append(s.geocells[h], cp.ID)
	case IndexQuadtree:
		s.qt.Insert(Item{ID: cp.ID, Point: cp.Location})
	case IndexRTree:
		s.rt.Insert(Item{ID: cp.ID, Point: cp.Location})
	}
	return cp.ID, nil
}

// Get returns the POI with the given ID.
func (s *Store) Get(id uint64) (POI, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.byID[id]
	if !ok {
		return POI{}, fmt.Errorf("%w: id %d", ErrPOINotFound, id)
	}
	return *p, nil
}

// QueryRadius returns POIs within radiusMeters of center, nearest first,
// optionally filtered by category (0 = all categories). The returned slice
// is freshly allocated; hot paths that reuse a buffer across queries should
// call QueryRadiusInto.
func (s *Store) QueryRadius(center Point, radiusMeters float64, cat Category) []POI {
	return s.QueryRadiusInto(nil, center, radiusMeters, cat)
}

// scoredPOI pairs a candidate with its distance for the nearest-first sort.
type scoredPOI struct {
	poi  *POI
	dist float64
}

// radiusScratch holds the intermediate buffers one radius query needs. The
// buffers are pooled so steady-state queries allocate nothing beyond the
// caller's destination slice.
type radiusScratch struct {
	items []Item
	hits  []scoredPOI
}

func (rs *radiusScratch) Len() int { return len(rs.hits) }
func (rs *radiusScratch) Less(i, j int) bool {
	if rs.hits[i].dist != rs.hits[j].dist {
		return rs.hits[i].dist < rs.hits[j].dist
	}
	return rs.hits[i].poi.ID < rs.hits[j].poi.ID
}
func (rs *radiusScratch) Swap(i, j int) { rs.hits[i], rs.hits[j] = rs.hits[j], rs.hits[i] }

var radiusScratchPool = sync.Pool{New: func() any { return new(radiusScratch) }}

// QueryRadiusInto is QueryRadius appending into dst (which may be nil or a
// previous result truncated to zero length). Results overwrite dst's
// contents; the returned slice shares dst's storage when capacity allows,
// so callers reusing a buffer must consume the results before the next
// query into the same buffer.
func (s *Store) QueryRadiusInto(dst []POI, center Point, radiusMeters float64, cat Category) []POI {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := radiusScratchPool.Get().(*radiusScratch)
	bbox := RectAround(center, radiusMeters)
	candidates := rs.items[:0]
	switch s.kind {
	case IndexScan:
		for _, p := range s.all {
			if bbox.Contains(p.Location) {
				candidates = append(candidates, Item{ID: p.ID, Point: p.Location})
			}
		}
	case IndexGeohash:
		prec := s.ghPrec
		for _, cell := range CoverRadius(center, radiusMeters, prec) {
			for _, id := range s.geocells[cell] {
				p := s.byID[id]
				if bbox.Contains(p.Location) {
					candidates = append(candidates, Item{ID: id, Point: p.Location})
				}
			}
		}
	case IndexQuadtree:
		candidates = s.qt.Search(bbox, candidates)
	case IndexRTree:
		candidates = s.rt.Search(bbox, candidates)
	}
	rs.items = candidates

	hits := rs.hits[:0]
	for _, c := range candidates {
		d := DistanceMeters(center, c.Point)
		if d > radiusMeters {
			continue
		}
		p := s.byID[c.ID]
		if cat != 0 && p.Category != cat {
			continue
		}
		hits = append(hits, scoredPOI{poi: p, dist: d})
	}
	rs.hits = hits
	sort.Sort(rs)
	out := dst[:0]
	for _, h := range hits {
		out = append(out, *h.poi)
	}
	// Drop the stale POI pointers before pooling so the scratch does not
	// pin a replaced store's objects (Item holds no pointers).
	for i := range hits {
		hits[i].poi = nil
	}
	rs.items = rs.items[:0]
	rs.hits = rs.hits[:0]
	radiusScratchPool.Put(rs)
	return out
}

// Nearest returns up to k POIs closest to p, nearest first.
func (s *Store) Nearest(p Point, k int) []POI {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var items []Item
	switch s.kind {
	case IndexQuadtree:
		items = s.qt.Nearest(p, k)
	case IndexRTree:
		items = s.rt.Nearest(p, k)
	default:
		// Scan & geohash: honest brute force — compute each distance once,
		// then select the k smallest.
		type scored struct {
			item Item
			dist float64
		}
		all := make([]scored, 0, len(s.all))
		for _, poi := range s.all {
			all = append(all, scored{
				item: Item{ID: poi.ID, Point: poi.Location},
				dist: DistanceMeters(p, poi.Location),
			})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
		if len(all) > k {
			all = all[:k]
		}
		items = make([]Item, len(all))
		for i, sc := range all {
			items[i] = sc.item
		}
	}
	out := make([]POI, 0, len(items))
	for _, it := range items {
		out = append(out, *s.byID[it.ID])
	}
	return out
}

// All returns a snapshot of every POI (copyied), in insertion order.
func (s *Store) All() []POI {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]POI, len(s.all))
	for i, p := range s.all {
		out[i] = *p
	}
	return out
}

// CityConfig parameterises the synthetic city generator.
type CityConfig struct {
	Center     Point
	RadiusM    float64 // city extent
	NumPOIs    int
	TallRatio  float64 // fraction of POIs that are tall buildings (occluders)
	Seed       int64
	Categories []Category // weights uniform over this set; nil = all
}

// GenerateCity returns a deterministic synthetic city: POIs scattered with a
// density gradient toward the centre (like real cities), with names, tags,
// and building heights. It is the data substitute for the proprietary POI
// databases the paper's scenarios assume (see DESIGN.md).
func GenerateCity(cfg CityConfig) []POI {
	if cfg.NumPOIs <= 0 {
		return nil
	}
	if cfg.RadiusM <= 0 {
		cfg.RadiusM = 5000
	}
	cats := cfg.Categories
	if len(cats) == 0 {
		for c := Category(1); c < numCategories; c++ {
			cats = append(cats, c)
		}
	}
	rng := sim.NewRand(cfg.Seed).Child("city")
	pois := make([]POI, 0, cfg.NumPOIs)
	for i := 0; i < cfg.NumPOIs; i++ {
		// Radial density gradient: sqrt-uniform radius biased to centre.
		r := cfg.RadiusM * rng.Float64() * rng.Float64()
		brg := rng.Uniform(0, 360)
		loc := Destination(cfg.Center, brg, r)
		cat := sim.Pick(rng, cats)
		height := 6.0 + rng.Float64()*10
		if rng.Bool(cfg.TallRatio) {
			height = 30 + rng.Float64()*120
		}
		pois = append(pois, POI{
			ID:           uint64(i + 1),
			Name:         fmt.Sprintf("%s-%04d", cat, i+1),
			Category:     cat,
			Location:     loc,
			HeightMeters: height,
			Tags: map[string]string{
				"district": fmt.Sprintf("d%d", int(brg)/45),
			},
		})
	}
	return pois
}

// LoadStore builds a Store of the given kind from pois.
func LoadStore(pois []POI, kind IndexKind) (*Store, error) {
	s := NewStore(WithIndex(kind))
	for _, p := range pois {
		if _, err := s.Add(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}
