package geo

import (
	"testing"
)

// TestQueryRadiusIntoEquivalence checks the buffer-reusing query returns
// exactly what the allocating form returns — across every index kind, with
// the destination buffer reused (dirty) between queries of different sizes.
func TestQueryRadiusIntoEquivalence(t *testing.T) {
	city := testCity(2000)
	queries := []struct {
		radius float64
		cat    Category
	}{
		{250, 0},
		{900, 0},
		{500, CatShop},
		{5000, 0},
		{40, 0},
	}
	for _, kind := range []IndexKind{IndexScan, IndexGeohash, IndexQuadtree, IndexRTree} {
		s, err := LoadStore(city, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var dst []POI
		for qi, q := range queries {
			for step := 0; step < 3; step++ {
				center := Destination(hkust, float64(step*110), float64(step)*400)
				want := s.QueryRadius(center, q.radius, q.cat)
				dst = s.QueryRadiusInto(dst, center, q.radius, q.cat)
				if len(dst) != len(want) {
					t.Fatalf("%v query %d step %d: got %d POIs, want %d",
						kind, qi, step, len(dst), len(want))
				}
				for i := range want {
					if dst[i].ID != want[i].ID || dst[i].Location != want[i].Location ||
						dst[i].Name != want[i].Name || dst[i].Category != want[i].Category {
						t.Fatalf("%v query %d step %d: result %d differs: got %+v want %+v",
							kind, qi, step, i, dst[i], want[i])
					}
				}
			}
		}
	}
}

// TestQueryRadiusIntoSteadyStateAllocs checks the hot-path promise: with a
// warmed destination buffer and pooled scratch, a radius query allocates
// nothing.
func TestQueryRadiusIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	s, err := LoadStore(testCity(2000), IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	var dst []POI
	// Warm the destination and the pooled scratch.
	for i := 0; i < 4; i++ {
		dst = s.QueryRadiusInto(dst, hkust, 800, 0)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = s.QueryRadiusInto(dst, hkust, 800, 0)
	})
	if allocs > 0 {
		t.Fatalf("QueryRadiusInto allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
