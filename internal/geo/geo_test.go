package geo

import (
	"math"
	"testing"
	"testing/quick"

	"arbd/internal/sim"
)

// Reference points: central Hong Kong area (the paper's home institution).
var (
	hkust   = Point{Lat: 22.3364, Lon: 114.2655}
	central = Point{Lat: 22.2819, Lon: 114.1582}
)

func TestDistanceKnownValue(t *testing.T) {
	// HKUST to Central is about 12.6 km.
	d := DistanceMeters(hkust, central)
	if d < 12000 || d > 13500 {
		t.Fatalf("distance = %.0f m, want ~12600", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := sim.NewRand(1)
	for i := 0; i < 200; i++ {
		a := Point{Lat: rng.Uniform(-80, 80), Lon: rng.Uniform(-179, 179)}
		b := Point{Lat: rng.Uniform(-80, 80), Lon: rng.Uniform(-179, 179)}
		dab, dba := DistanceMeters(a, b), DistanceMeters(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			t.Fatalf("asymmetric distance: %v vs %v", dab, dba)
		}
		if DistanceMeters(a, a) > 1e-9 {
			t.Fatal("self distance not 0")
		}
		if dab < 0 {
			t.Fatal("negative distance")
		}
	}
}

func TestDestinationInvertsDistance(t *testing.T) {
	rng := sim.NewRand(2)
	for i := 0; i < 200; i++ {
		p := Point{Lat: rng.Uniform(-60, 60), Lon: rng.Uniform(-170, 170)}
		brg := rng.Uniform(0, 360)
		dist := rng.Uniform(1, 50000)
		q := Destination(p, brg, dist)
		got := DistanceMeters(p, q)
		if math.Abs(got-dist) > dist*0.001+0.01 {
			t.Fatalf("Destination distance %.2f, want %.2f", got, dist)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 0, Lon: 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{Lat: 1, Lon: 0}, 0},    // north
		{Point{Lat: 0, Lon: 1}, 90},   // east
		{Point{Lat: -1, Lon: 0}, 180}, // south
		{Point{Lat: 0, Lon: -1}, 270}, // west
	}
	for _, c := range cases {
		got := BearingDegrees(p, c.to)
		if math.Abs(got-c.want) > 0.5 {
			t.Errorf("bearing to %v = %.2f, want %.0f", c.to, got, c.want)
		}
	}
}

func TestPointValid(t *testing.T) {
	if !hkust.Valid() {
		t.Fatal("hkust invalid")
	}
	for _, bad := range []Point{{Lat: 91}, {Lat: -91}, {Lon: 181}, {Lon: -181}, {Lat: math.NaN()}} {
		if bad.Valid() {
			t.Errorf("%v reported valid", bad)
		}
	}
}

func TestRectAroundContainsCircle(t *testing.T) {
	rng := sim.NewRand(3)
	for i := 0; i < 100; i++ {
		c := Point{Lat: rng.Uniform(-60, 60), Lon: rng.Uniform(-170, 170)}
		radius := rng.Uniform(10, 20000)
		bbox := RectAround(c, radius)
		for brg := 0.0; brg < 360; brg += 45 {
			edge := Destination(c, brg, radius*0.999)
			if !bbox.Contains(edge) {
				t.Fatalf("bbox %v misses circle edge %v (c=%v r=%.0f)", bbox, edge, c, radius)
			}
		}
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	b := Rect{MinLat: 5, MinLon: 5, MaxLat: 15, MaxLon: 15}
	far := Rect{MinLat: 50, MinLon: 50, MaxLat: 60, MaxLon: 60}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects not intersecting")
	}
	if a.Intersects(far) {
		t.Fatal("distant rects intersect")
	}
	u := a.Union(b)
	if u.MinLat != 0 || u.MaxLat != 15 || u.MinLon != 0 || u.MaxLon != 15 {
		t.Fatalf("union = %v", u)
	}
	if a.Area() != 100 {
		t.Fatalf("area = %v", a.Area())
	}
	if c := a.Center(); c.Lat != 5 || c.Lon != 5 {
		t.Fatalf("center = %v", c)
	}
	if (Rect{MinLat: 1, MaxLat: 0}).Empty() != true {
		t.Fatal("inverted rect not empty")
	}
}

func TestMinDistMeters(t *testing.T) {
	r := Rect{MinLat: 10, MinLon: 10, MaxLat: 20, MaxLon: 20}
	inside := Point{Lat: 15, Lon: 15}
	if d := minDistMeters(inside, r); d != 0 {
		t.Fatalf("inside point minDist = %v", d)
	}
	outside := Point{Lat: 25, Lon: 15}
	want := DistanceMeters(outside, Point{Lat: 20, Lon: 15})
	if d := minDistMeters(outside, r); math.Abs(d-want) > 1 {
		t.Fatalf("minDist = %v, want %v", d, want)
	}
}

func TestGeohashKnownVector(t *testing.T) {
	// Well-known test vector: 57.64911,10.40744 -> u4pruydqqvj
	p := Point{Lat: 57.64911, Lon: 10.40744}
	if got := EncodeGeohash(p, 11); got != "u4pruydqqvj" {
		t.Fatalf("EncodeGeohash = %q, want u4pruydqqvj", got)
	}
}

func TestGeohashRoundTrip(t *testing.T) {
	if err := quick.Check(func(latSeed, lonSeed uint16) bool {
		p := Point{
			Lat: float64(latSeed)/65535*170 - 85,
			Lon: float64(lonSeed)/65535*358 - 179,
		}
		for prec := 1; prec <= 12; prec++ {
			h := EncodeGeohash(p, prec)
			cell, err := DecodeGeohash(h)
			if err != nil || !cell.Contains(p) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeohashDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "abc!", "ilo"} { // i, l, o not in alphabet
		if _, err := DecodeGeohash(bad); err == nil {
			t.Errorf("DecodeGeohash(%q) succeeded", bad)
		}
	}
}

func TestGeohashNeighborsAdjacent(t *testing.T) {
	h := EncodeGeohash(hkust, 6)
	cell, _ := DecodeGeohash(h)
	neighbors, err := GeohashNeighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(neighbors) != 8 {
		t.Fatalf("got %d neighbors, want 8", len(neighbors))
	}
	seen := map[string]bool{h: true}
	for _, nb := range neighbors {
		if seen[nb] {
			t.Fatalf("duplicate/self neighbor %q", nb)
		}
		seen[nb] = true
		nbCell, err := DecodeGeohash(nb)
		if err != nil {
			t.Fatal(err)
		}
		// Neighbour cells must touch the home cell (expand slightly for
		// float fuzz).
		ex := Rect{
			MinLat: cell.MinLat - 1e-9, MinLon: cell.MinLon - 1e-9,
			MaxLat: cell.MaxLat + 1e-9, MaxLon: cell.MaxLon + 1e-9,
		}
		if !ex.Intersects(nbCell) {
			t.Fatalf("neighbor %q does not touch %q", nb, h)
		}
	}
}

func TestCoverRadiusCoversCircle(t *testing.T) {
	rng := sim.NewRand(4)
	center := hkust
	radius := 800.0
	prec := PrecisionForRadius(radius)
	cells := CoverRadius(center, radius, prec)
	cellSet := map[string]bool{}
	for _, c := range cells {
		cellSet[c] = true
	}
	// Any point in the circle must fall in a covered cell.
	for i := 0; i < 500; i++ {
		p := Destination(center, rng.Uniform(0, 360), rng.Float64()*radius)
		if !cellSet[EncodeGeohash(p, prec)] {
			t.Fatalf("point %v in circle not covered (cells=%d)", p, len(cells))
		}
	}
	if len(cells) > 64 {
		t.Fatalf("cover used %d cells; precision choice too fine", len(cells))
	}
}

func TestPrecisionForRadiusMonotonic(t *testing.T) {
	prev := 13
	for _, r := range []float64{0.01, 1, 10, 100, 1000, 10000, 100000, 1e7} {
		p := PrecisionForRadius(r)
		if p > prev {
			t.Fatalf("precision increased with radius at %v", r)
		}
		prev = p
	}
}
