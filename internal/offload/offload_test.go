package offload

import (
	"errors"
	"testing"
	"time"

	"arbd/internal/cluster"
)

var (
	device = cluster.Node{ID: "mobile", Class: cluster.ClassMobile, SpeedFactor: 1,
		ActiveWatts: 2.5, IdleWatts: 0.8, TxWatts: 1.8}
	edge = cluster.Node{ID: "edge", Class: cluster.ClassEdge, SpeedFactor: 6,
		ActiveWatts: 65, IdleWatts: 20, TxWatts: 5}
	cloud = cluster.Node{ID: "cloud", Class: cluster.ClassCloud, SpeedFactor: 32,
		ActiveWatts: 250, IdleWatts: 80, TxWatts: 10}
)

func stages() []Stage { return ARPipeline(0, 0) }

func TestARPipelineShape(t *testing.T) {
	st := stages()
	if len(st) != 5 {
		t.Fatalf("stages = %d", len(st))
	}
	if !st[0].DeviceOnly || !st[len(st)-1].DeviceOnly {
		t.Fatal("capture/render must be device-only")
	}
	var ops float64
	for _, s := range st {
		ops += s.Ops
	}
	total := device.ExecTime(ops)
	if total < 20*time.Millisecond || total > 60*time.Millisecond {
		t.Fatalf("full local pipeline = %v, want ~35ms", total)
	}
}

func TestEvaluateLocal(t *testing.T) {
	est, err := Evaluate(stages(), device, device, cluster.ProfileLoopback, Local(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Network != 0 || est.UplinkBytes != 0 {
		t.Fatalf("local placement has network cost: %+v", est)
	}
	if est.Latency != est.ComputeLocal {
		t.Fatal("local latency != local compute")
	}
	if est.DeviceEnergyJ <= 0 {
		t.Fatal("no device energy")
	}
}

func TestEvaluateRemoteMiddle(t *testing.T) {
	pl := Placement{RemoteStart: 1, RemoteEnd: 4, RemoteNode: "cloud"}
	est, err := Evaluate(stages(), device, cloud, cluster.ProfileWiFi, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.UplinkBytes != 640*480 {
		t.Fatalf("uplink = %d, want frame bytes", est.UplinkBytes)
	}
	if est.DownlinkBytes != 512 {
		t.Fatalf("downlink = %d, want pose bytes", est.DownlinkBytes)
	}
	if est.Network <= 0 || est.ComputeRemote <= 0 {
		t.Fatalf("estimate = %+v", est)
	}
	// Remote compute on a 32x node must be well under local.
	localEst, _ := Evaluate(stages(), device, device, cluster.ProfileLoopback, Local(), nil)
	if est.ComputeRemote >= localEst.ComputeLocal {
		t.Fatal("cloud compute not faster than local")
	}
}

func TestEvaluateRejectsDeviceOnlyOffload(t *testing.T) {
	pl := Placement{RemoteStart: 0, RemoteEnd: 2, RemoteNode: "cloud"} // includes capture
	if _, err := Evaluate(stages(), device, cloud, cluster.ProfileWiFi, pl, nil); !errors.Is(err, ErrLocalOnly) {
		t.Fatalf("err = %v", err)
	}
	pl = Placement{RemoteStart: 3, RemoteEnd: 5, RemoteNode: "cloud"} // includes render
	if _, err := Evaluate(stages(), device, cloud, cluster.ProfileWiFi, pl, nil); !errors.Is(err, ErrLocalOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvaluateRejectsBadSplit(t *testing.T) {
	if _, err := Evaluate(stages(), device, cloud, cluster.ProfileWiFi,
		Placement{RemoteStart: 3, RemoteEnd: 2}, nil); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Evaluate(stages(), device, cloud, cluster.ProfileWiFi,
		Placement{RemoteStart: 0, RemoteEnd: 99}, nil); !errors.Is(err, ErrBadSplit) {
		t.Fatalf("err = %v", err)
	}
}

func TestBestPrefersEdgeOnFastLink(t *testing.T) {
	remotes := []RemoteOption{
		{Node: edge, Link: cluster.ProfileWiFi},
	}
	d, err := Best(stages(), device, remotes, MinLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Placement.IsLocal() {
		t.Fatalf("WiFi+edge chose local (%v); offload should win", d.Estimate.Latency)
	}
	localEst, _ := Evaluate(stages(), device, device, cluster.ProfileLoopback, Local(), nil)
	if d.Estimate.Latency >= localEst.Latency {
		t.Fatalf("chosen placement %v slower than local %v", d.Estimate.Latency, localEst.Latency)
	}
}

func TestBestPrefersLocalOn3G(t *testing.T) {
	// Shipping a whole frame over 2 Mbps costs >1s; local 35 ms must win.
	remotes := []RemoteOption{
		{Node: cloud, Link: cluster.Profile3G},
	}
	d, err := Best(stages(), device, remotes, MinLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Placement.IsLocal() {
		t.Fatalf("3G chose %v (%v); local should win", d.Placement, d.Estimate.Latency)
	}
}

func TestBestCrossoverBetweenProfiles(t *testing.T) {
	// The decision must flip somewhere between WiFi and 3G — the paper's
	// offloading trade-off in one assertion.
	wifi, err := Best(stages(), device, []RemoteOption{{Node: cloud, Link: cluster.ProfileWiFi}}, MinLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	threeG, err := Best(stages(), device, []RemoteOption{{Node: cloud, Link: cluster.Profile3G}}, MinLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wifi.Placement.IsLocal() || !threeG.Placement.IsLocal() {
		t.Fatalf("no crossover: wifi=%v threeG=%v", wifi.Placement, threeG.Placement)
	}
}

func TestBestMinEnergyRespectsSLA(t *testing.T) {
	remotes := []RemoteOption{
		{Node: edge, Link: cluster.ProfileWiFi},
		{Node: cloud, Link: cluster.ProfileLTE},
	}
	d, err := Best(stages(), device, remotes, MinEnergy, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Estimate.Latency > 100*time.Millisecond {
		t.Fatalf("SLA violated: %v", d.Estimate.Latency)
	}
	// Unbounded energy optimum must be <= constrained one.
	dFree, err := Best(stages(), device, remotes, MinEnergy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dFree.Estimate.DeviceEnergyJ > d.Estimate.DeviceEnergyJ+1e-12 {
		t.Fatal("unconstrained optimum worse than constrained")
	}
}

func TestBestImpossibleSLA(t *testing.T) {
	if _, err := Best(stages(), device, nil, MinLatency, time.Microsecond); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v", err)
	}
}

func TestOffloadSavesEnergyOnGoodLink(t *testing.T) {
	localEst, _ := Evaluate(stages(), device, device, cluster.ProfileLoopback, Local(), nil)
	pl := Placement{RemoteStart: 1, RemoteEnd: 4, RemoteNode: "edge"}
	offEst, err := Evaluate(stages(), device, edge, cluster.ProfileWiFi, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if offEst.DeviceEnergyJ >= localEst.DeviceEnergyJ {
		t.Fatalf("offload energy %.4f J not below local %.4f J",
			offEst.DeviceEnergyJ, localEst.DeviceEnergyJ)
	}
}

func TestSchedulerAdaptsToNetworkChange(t *testing.T) {
	s := NewScheduler(stages(), device, MinLatency, 0)
	wifi := []RemoteOption{{Node: cloud, Link: cluster.ProfileWiFi}}
	threeG := []RemoteOption{{Node: cloud, Link: cluster.Profile3G}}

	d1, changed, err := s.Plan(wifi)
	if err != nil || changed {
		t.Fatalf("first plan: %v changed=%v", err, changed)
	}
	if d1.Placement.IsLocal() {
		t.Fatal("wifi plan local")
	}
	d2, changed, err := s.Plan(threeG)
	if err != nil || !changed {
		t.Fatalf("network change not detected: %v changed=%v", err, changed)
	}
	if !d2.Placement.IsLocal() {
		t.Fatal("3g plan not local")
	}
	if _, changed, _ = s.Plan(threeG); changed {
		t.Fatal("stable network reported change")
	}
	if s.Flips() != 1 {
		t.Fatalf("flips = %d", s.Flips())
	}
}

func TestPlacementString(t *testing.T) {
	if Local().String() != "local" {
		t.Fatal("local string")
	}
	pl := Placement{RemoteStart: 1, RemoteEnd: 4, RemoteNode: "edge"}
	if pl.String() != "edge[1:4]" {
		t.Fatalf("string = %q", pl.String())
	}
}
