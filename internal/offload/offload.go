// Package offload implements §4.1's computation-offloading architecture
// (CloudRiDAR [13]): the AR frame pipeline as a stage graph, enumeration of
// device/edge/cloud split placements, a latency+device-energy estimator
// over the cluster package's node and link models, and an adaptive
// scheduler that re-plans when the network changes.
package offload

import (
	"errors"
	"fmt"
	"time"

	"arbd/internal/cluster"
	"arbd/internal/sim"
)

// Offload errors.
var (
	ErrLocalOnly   = errors.New("offload: placement moves a device-only stage off the device")
	ErrBadSplit    = errors.New("offload: invalid split range")
	ErrNoPlacement = errors.New("offload: no placement satisfies the constraints")
)

// Stage is one step of the AR frame pipeline.
type Stage struct {
	Name string
	// Ops is the stage's compute cost in abstract operations (see
	// cluster.Node.ExecTime).
	Ops float64
	// OutBytes is the payload handed to the next stage (or back to the
	// device from the last remote stage).
	OutBytes int
	// DeviceOnly pins the stage to the device (sensor capture, display).
	DeviceOnly bool
}

// ARPipeline returns the canonical five-stage mobile AR pipeline with costs
// scaled to the input frame. Ops values are calibrated so the full pipeline
// is ~35 ms on a SpeedFactor-1 device — the order of magnitude CloudRiDAR
// reports for feature-based tracking on 2014-era phones.
func ARPipeline(frameBytes int, numFeatures int) []Stage {
	if frameBytes <= 0 {
		frameBytes = 640 * 480 // grayscale VGA
	}
	if numFeatures <= 0 {
		numFeatures = 400
	}
	featBytes := numFeatures * 36 // descriptor payload
	return []Stage{
		{Name: "capture", Ops: 1e6, OutBytes: frameBytes, DeviceOnly: true},
		{Name: "extract", Ops: 30e6, OutBytes: featBytes},
		{Name: "match", Ops: 28e6, OutBytes: 2 << 10},
		{Name: "pose", Ops: 8e6, OutBytes: 512},
		{Name: "render", Ops: 3e6, OutBytes: 0, DeviceOnly: true},
	}
}

// Placement assigns a contiguous run of stages [RemoteStart, RemoteEnd) to a
// remote node; everything else runs on the device. RemoteStart == RemoteEnd
// means fully local.
type Placement struct {
	RemoteStart int
	RemoteEnd   int
	RemoteNode  string
}

// Local returns the fully-local placement.
func Local() Placement { return Placement{} }

// IsLocal reports whether the placement keeps every stage on the device.
func (p Placement) IsLocal() bool { return p.RemoteStart >= p.RemoteEnd }

// String renders the placement for tables and logs.
func (p Placement) String() string {
	if p.IsLocal() {
		return "local"
	}
	return fmt.Sprintf("%s[%d:%d]", p.RemoteNode, p.RemoteStart, p.RemoteEnd)
}

// Estimate is the predicted cost of one frame under a placement.
type Estimate struct {
	Latency       time.Duration
	DeviceEnergyJ float64
	UplinkBytes   int
	DownlinkBytes int
	ComputeRemote time.Duration
	ComputeLocal  time.Duration
	Network       time.Duration
}

// Evaluate predicts latency and device energy for one frame of the pipeline
// under the placement. A nil rng gives deterministic mean estimates (used
// by the planner); a seeded rng adds link jitter (used by the simulator).
func Evaluate(stages []Stage, device, remote cluster.Node, link cluster.Profile, pl Placement, rng *sim.Rand) (Estimate, error) {
	var est Estimate
	if pl.RemoteStart < 0 || pl.RemoteEnd > len(stages) || pl.RemoteStart > pl.RemoteEnd {
		return est, fmt.Errorf("%w: [%d:%d) of %d", ErrBadSplit, pl.RemoteStart, pl.RemoteEnd, len(stages))
	}
	for i := pl.RemoteStart; i < pl.RemoteEnd; i++ {
		if stages[i].DeviceOnly {
			return est, fmt.Errorf("%w: stage %q", ErrLocalOnly, stages[i].Name)
		}
	}
	for i, st := range stages {
		remoteStage := i >= pl.RemoteStart && i < pl.RemoteEnd
		if remoteStage {
			d := remote.ExecTime(st.Ops)
			est.ComputeRemote += d
			est.DeviceEnergyJ += device.IdleEnergyJoules(d)
		} else {
			d := device.ExecTime(st.Ops)
			est.ComputeLocal += d
			est.DeviceEnergyJ += device.ComputeEnergyJoules(d)
		}
	}
	if !pl.IsLocal() {
		up := stages[pl.RemoteStart-1].OutBytes
		down := stages[pl.RemoteEnd-1].OutBytes
		upT := link.OneWay(up, rng)
		downT := link.OneWay(down, rng)
		est.Network = upT + downT
		est.UplinkBytes = up
		est.DownlinkBytes = down
		est.DeviceEnergyJ += device.RadioEnergyJoules(upT + downT)
	}
	est.Latency = est.ComputeLocal + est.ComputeRemote + est.Network
	return est, nil
}

// Objective selects what Best optimises. Enums start at 1.
type Objective int

// Optimisation objectives.
const (
	MinLatency Objective = iota + 1
	MinEnergy
)

// Decision is a chosen placement with its predicted cost.
type Decision struct {
	Placement Placement
	Estimate  Estimate
}

// RemoteOption is a candidate offload target with its link from the device.
type RemoteOption struct {
	Node cluster.Node
	Link cluster.Profile
}

// Best enumerates every valid placement (fully local plus every contiguous
// offloadable range on every remote) and returns the one optimising the
// objective. With MinEnergy, maxLatency (if > 0) is a hard SLA.
func Best(stages []Stage, device cluster.Node, remotes []RemoteOption, obj Objective, maxLatency time.Duration) (Decision, error) {
	var best Decision
	found := false
	consider := func(pl Placement, est Estimate) {
		if maxLatency > 0 && est.Latency > maxLatency {
			return
		}
		if !found {
			best = Decision{Placement: pl, Estimate: est}
			found = true
			return
		}
		better := false
		switch obj {
		case MinEnergy:
			better = est.DeviceEnergyJ < best.Estimate.DeviceEnergyJ
		default:
			better = est.Latency < best.Estimate.Latency
		}
		if better {
			best = Decision{Placement: pl, Estimate: est}
		}
	}

	localEst, err := Evaluate(stages, device, device, cluster.ProfileLoopback, Local(), nil)
	if err != nil {
		return Decision{}, err
	}
	consider(Local(), localEst)

	for _, r := range remotes {
		for start := 1; start < len(stages); start++ {
			for end := start + 1; end <= len(stages); end++ {
				pl := Placement{RemoteStart: start, RemoteEnd: end, RemoteNode: r.Node.ID}
				est, err := Evaluate(stages, device, r.Node, r.Link, pl, nil)
				if err != nil {
					continue // placement covers a device-only stage
				}
				consider(pl, est)
			}
		}
	}
	if !found {
		return Decision{}, ErrNoPlacement
	}
	return best, nil
}

// Scheduler re-plans placements as network conditions change and tracks how
// often the decision flips — the adaptivity §4.1 asks of cloud-backed AR.
type Scheduler struct {
	stages  []Stage
	device  cluster.Node
	obj     Objective
	sla     time.Duration
	current Decision
	has     bool
	flips   int
}

// NewScheduler returns a scheduler for the given pipeline and device.
func NewScheduler(stages []Stage, device cluster.Node, obj Objective, sla time.Duration) *Scheduler {
	return &Scheduler{stages: stages, device: device, obj: obj, sla: sla}
}

// Plan recomputes the best placement for the given remotes/links, returning
// the decision and whether it changed from the previous plan.
func (s *Scheduler) Plan(remotes []RemoteOption) (Decision, bool, error) {
	d, err := Best(s.stages, s.device, remotes, s.obj, s.sla)
	if err != nil {
		return Decision{}, false, err
	}
	changed := s.has && d.Placement != s.current.Placement
	if changed {
		s.flips++
	}
	s.current, s.has = d, true
	return d, changed, nil
}

// Flips returns how many times the placement changed.
func (s *Scheduler) Flips() int { return s.flips }
