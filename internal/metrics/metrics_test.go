package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestGaugeSetGet(t *testing.T) {
	var g Gauge
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("Value = %v, want 3.25", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("Value = %v, want -7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != 5*time.Millisecond || s.Max != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 < 4*time.Millisecond || s.P50 > 6*time.Millisecond {
		t.Fatalf("P50 = %v, want ~5ms", s.P50)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0", h.Min())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Millisecond || p50 > 560*time.Millisecond {
		t.Fatalf("P50 = %v, want ~500ms (±10%%)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("P99 = %v, want ~990ms (±10%%)", p99)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile extremes do not match min/max")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Hour) // beyond bucket range
	if got := h.Quantile(0.5); got != 2*time.Hour {
		t.Fatalf("overflow quantile = %v, want clamped to max 2h", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		var h Histogram
		v := uint64(seed)
		for i := 0; i < 100; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			h.Observe(time.Duration(v%uint64(10*time.Second)) + time.Microsecond)
		}
		return h.Quantile(0.5) <= h.Quantile(0.9) && h.Quantile(0.9) <= h.Quantile(0.99)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
}

// TestHistogramSnapshotConsistent pins the atomicity of Snapshot: all seven
// fields must come from one locked state. The pre-fix implementation took
// the mutex once per field, so a snapshot racing a large observation could
// report P99 above its own Max (the quantile clamp used the new max while
// the Max field held the old one). With concurrent writers pushing the
// distribution upward, any torn snapshot violates the invariants below.
func TestHistogramSnapshotConsistent(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		d := time.Microsecond
		for i := 0; i < 20000; i++ {
			h.Observe(d)
			// Exponential growth with wraparound keeps max jumping by large
			// steps, maximizing the window a torn snapshot would expose.
			d *= 2
			if d > 10*time.Minute {
				d = time.Microsecond
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			t.Fatal("snapshot lost the pre-existing observation")
		}
		if s.Min > s.P50 || s.P50 > s.P95 || s.P95 > s.P99 {
			t.Fatalf("non-monotone percentiles: %+v", s)
		}
		if s.P99 > s.Max {
			t.Fatalf("torn snapshot: P99 %v > Max %v (%+v)", s.P99, s.Max, s)
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("mean outside [min,max]: %+v", s)
		}
	}
	<-done
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs")
	c1.Inc()
	if got := r.Counter("reqs").Value(); got != 1 {
		t.Fatalf("second lookup got fresh counter, value=%d", got)
	}
	h1 := r.Histogram("lat")
	h1.Observe(time.Millisecond)
	if got := r.Histogram("lat").Count(); got != 1 {
		t.Fatalf("second histogram lookup fresh, count=%d", got)
	}
	g := r.Gauge("load")
	g.Set(0.5)
	if got := r.Gauge("load").Value(); got != 0.5 {
		t.Fatalf("second gauge lookup fresh, value=%v", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz")
	r.Gauge("aa")
	r.Histogram("mm")
	names := r.Names()
	if len(names) != 3 || names[0] != "aa" || names[1] != "mm" || names[2] != "zz" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("temp").Set(21.5)
	r.Histogram("lat").Observe(time.Millisecond)
	out := r.Dump()
	for _, want := range []string{"hits 3", "temp 21.5", "lat count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E5: geo index", "index", "n", "p50")
	tb.AddRow("rtree", 1000, "12µs")
	tb.AddRow("scan", 1000, "1.4ms")
	out := tb.String()
	if !strings.Contains(out, "E5: geo index") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

// TestTableWideRowNoPanic pins the widths fix: a row with more cells than
// headers used to panic String() with index-out-of-range (widths were sized
// to the header count but indexed for every non-final cell).
func TestTableWideRowNoPanic(t *testing.T) {
	tb := NewTable("wide", "a", "b")
	tb.AddRow(1, 2, 3, 4, 5)
	tb.AddRow("x")
	out := tb.String()
	for _, want := range []string{"wide", "a", "b", "3", "5", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableTypedCells(t *testing.T) {
	tb := NewTable("t", "name", "dur", "rate")
	tb.AddRow("row0", 5*time.Millisecond, 12.5)
	if got := tb.Headers(); len(got) != 3 || got[1] != "dur" {
		t.Fatalf("Headers = %v", got)
	}
	if tb.Title() != "t" {
		t.Fatalf("Title = %q", tb.Title())
	}
	v, ok := tb.Value(0, 1)
	if !ok || v != 5*time.Millisecond {
		t.Fatalf("Value(0,1) = %v, %v", v, ok)
	}
	if _, ok := tb.Value(0, 3); ok {
		t.Fatal("out-of-range column reported ok")
	}
	if _, ok := tb.Value(1, 0); ok {
		t.Fatal("out-of-range row reported ok")
	}
	row := tb.RowValues(0)
	if len(row) != 3 || row[2] != 12.5 {
		t.Fatalf("RowValues = %v", row)
	}
	// Mutating the returned copies must not affect the table.
	row[0] = "mutated"
	if v, _ := tb.Value(0, 0); v != "row0" {
		t.Fatalf("RowValues aliases table storage: %v", v)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "3\n") {
		t.Errorf("integer float not trimmed:\n%s", out)
	}
	if !strings.Contains(out, "3.1416") {
		t.Errorf("float not rounded to 4 decimals:\n%s", out)
	}
}

// BenchmarkCounterLookup quantifies why hot paths cache *Counter handles at
// construction instead of calling Registry.Counter per event: the by-name
// path pays a string concat plus a map lookup under RWMutex on every call,
// the cached path is a single atomic add.
func BenchmarkCounterLookup(b *testing.B) {
	b.Run("by-name", func(b *testing.B) {
		r := NewRegistry()
		topic := "interactions"
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Counter("mq.produced." + topic).Inc()
		}
	})
	b.Run("cached", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("mq.produced.interactions")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}
