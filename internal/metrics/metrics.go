// Package metrics provides lightweight instrumentation used across the
// platform: counters, gauges, and latency histograms with percentile
// estimation, grouped in registries, plus plain-text table rendering used by
// the benchmark harness to print experiment results.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records duration observations into exponential buckets and
// estimates percentiles. It is safe for concurrent use. The zero value is
// ready to use.
//
// Buckets span 1µs to ~17.9min with ~9.05% relative width (240 buckets),
// which keeps percentile error under 5% across the range the platform cares
// about.
type Histogram struct {
	mu      sync.Mutex
	buckets [numBuckets + 1]uint64 // last bucket is overflow
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	numBuckets  = 240
	bucketBase  = 1.0905077 // growth factor: 1µs * base^240 ≈ 17.9 min
	bucketFloor = float64(time.Microsecond)
)

func bucketFor(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	idx := int(math.Log(float64(d)/bucketFloor) / math.Log(bucketBase))
	if idx < 0 {
		return 0
	}
	if idx >= numBuckets {
		return numBuckets
	}
	return idx
}

func bucketUpper(i int) time.Duration {
	return time.Duration(bucketFloor * math.Pow(bucketBase, float64(i+1)))
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]); it returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked computes the q-th quantile. h.mu must be held.
func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return upper
		}
	}
	return h.max
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count          uint64
	Sum            time.Duration
	Min, Mean, Max time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot returns the current summary. All fields are computed from one
// consistent state under a single lock acquisition: a snapshot taken while
// another goroutine is observing can never mix counts from one state with
// percentiles from another (e.g. report P99 > Max).
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	var mean time.Duration
	if h.count > 0 {
		mean = h.sum / time.Duration(h.count)
	}
	return Snapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Mean:  mean,
		Max:   h.max,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
}

// Registry groups named metrics. The zero value is ready to use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Kind discriminates the instrument types a Registry holds.
type Kind uint8

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind ("counter", "gauge", "histogram").
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Instrument is one registered metric in a typed registry snapshot. Exactly
// one of Counter, Gauge, or Hist is meaningful, selected by Kind.
type Instrument struct {
	Name    string
	Kind    Kind
	Counter int64    // KindCounter: the count
	Gauge   float64  // KindGauge: the stored value
	Hist    Snapshot // KindHistogram: the full quantile summary
}

// Snapshot returns every registered instrument with its current value,
// stable-sorted by name (then kind, for the unlikely case of one name
// registered as two kinds). Consumers that render or export metrics — the
// Prometheus encoder, arbd-top, Dump — read this typed form instead of
// parsing strings. Instrument handles are captured under one registry lock,
// then values are read without it, so a snapshot never blocks writers for
// longer than the map copy.
func (r *Registry) Snapshot() []Instrument {
	r.mu.Lock()
	out := make([]Instrument, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	counters := make([]*Counter, 0, len(r.counters))
	gauges := make([]*Gauge, 0, len(r.gauges))
	hists := make([]*Histogram, 0, len(r.histograms))
	for n, c := range r.counters {
		out = append(out, Instrument{Name: n, Kind: KindCounter})
		counters = append(counters, c)
	}
	for n, g := range r.gauges {
		out = append(out, Instrument{Name: n, Kind: KindGauge})
		gauges = append(gauges, g)
	}
	for n, h := range r.histograms {
		out = append(out, Instrument{Name: n, Kind: KindHistogram})
		hists = append(hists, h)
	}
	r.mu.Unlock()

	ci, gi, hi := 0, 0, 0
	for i := range out {
		switch out[i].Kind {
		case KindCounter:
			out[i].Counter = counters[ci].Value()
			ci++
		case KindGauge:
			out[i].Gauge = gauges[gi].Value()
			gi++
		case KindHistogram:
			out[i].Hist = hists[hi].Snapshot()
			hi++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Dump renders every metric as "name value" lines, sorted by name. Intended
// for debugging and log output; programs should consume Snapshot instead.
func (r *Registry) Dump() string {
	snap := r.Snapshot()
	lines := make([]string, 0, len(snap))
	for _, in := range snap {
		switch in.Kind {
		case KindCounter:
			lines = append(lines, fmt.Sprintf("%s %d", in.Name, in.Counter))
		case KindGauge:
			lines = append(lines, fmt.Sprintf("%s %g", in.Name, in.Gauge))
		case KindHistogram:
			s := in.Hist
			lines = append(lines, fmt.Sprintf("%s count=%d mean=%v p50=%v p95=%v p99=%v max=%v",
				in.Name, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
