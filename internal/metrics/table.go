package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders an aligned plain-text table. The
// benchmark harness uses it to print the per-experiment result tables
// recorded in EXPERIMENTS.md. Alongside the formatted strings it keeps the
// raw values passed to AddRow, so machine consumers (the BENCH_*.json record
// layer) can read typed cells instead of re-parsing rendered text.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	values  [][]any
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v and the raw values are
// retained for typed access via Value/RowValues.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	t.values = append(t.values, append([]any(nil), cells...))
}

// trimFloat renders a float compactly: integers without decimals, otherwise
// up to 4 significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Value returns the raw value passed to AddRow for the given row and column,
// or (nil, false) when either index is out of range.
func (t *Table) Value(row, col int) (any, bool) {
	if row < 0 || row >= len(t.values) || col < 0 || col >= len(t.values[row]) {
		return nil, false
	}
	return t.values[row][col], true
}

// RowValues returns a copy of the raw values of one row, or nil when the
// index is out of range.
func (t *Table) RowValues(row int) []any {
	if row < 0 || row >= len(t.values) {
		return nil
	}
	return append([]any(nil), t.values[row]...)
}

// String renders the table with a title line, a header row, a separator, and
// aligned columns. Rows wider than the header row render their extra cells
// unpadded rather than panicking.
func (t *Table) String() string {
	// Widths cover the widest row, not just the headers: AddRow accepts more
	// cells than there are headers, and writeRow indexes widths for every
	// non-final cell.
	n := len(t.headers)
	for _, row := range t.rows {
		if len(row) > n {
			n = len(row)
		}
	}
	widths := make([]int, n)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
