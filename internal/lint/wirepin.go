package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// analyzeWirepin enforces the wire-protocol pinning contract on any package
// that declares a defined integer type named MsgType:
//
//   - every exported MsgType constant must appear in the package's pin
//     test (a composite literal assigned to an identifier named `pinned`)
//     with a value matching its compiled value
//   - pinned and declared values must be unique — a retired number is
//     never reused
//   - every switch over MsgType in the declaring package must be
//     exhaustive over the exported constants (String(), codec dispatch)
//   - every exported Proto* version constant must be exercised by the
//     package's tests
func analyzeWirepin(fset *token.FileSet, p *pkgInfo) []Finding {
	if p.pkg == nil {
		return nil
	}
	scope := p.pkg.Scope()
	tn, ok := scope.Lookup("MsgType").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}

	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      fset.Position(pos),
			Analyzer: "wirepin",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Declared exported constants of type MsgType, with compiled values.
	declared := make(map[string]int64)
	declaredPos := make(map[string]token.Pos)
	valueOwner := make(map[int64]string)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		if !c.Exported() {
			continue // sentinels like maxMsgType are not wire values
		}
		declared[name] = v
		declaredPos[name] = c.Pos()
		if prev, dup := valueOwner[v]; dup {
			report(c.Pos(), "MsgType value %d is used by both %s and %s — wire values must be unique", v, prev, name)
		}
		valueOwner[v] = name
	}
	if len(declared) == 0 {
		return out
	}

	// The pin table from the package's test files.
	pins, pinPos := pinTable(p.testFiles)
	if pins == nil {
		report(tn.Pos(), "package declares MsgType but no pin test found (a `pinned := []struct{...}{...}` table in a _test.go file)")
	} else {
		pinnedVals := make(map[int64]string)
		for name, v := range pins {
			if prev, dup := pinnedVals[v]; dup && prev != name {
				report(pinPos[name], "pin table reuses value %d for both %s and %s", v, prev, name)
			}
			pinnedVals[v] = name
			dv, ok := declared[name]
			if !ok {
				report(pinPos[name], "pin table entry %s has no matching declared MsgType constant", name)
				continue
			}
			if dv != v {
				report(pinPos[name], "%s pinned as %d but compiles to %d — wire values must not move", name, v, dv)
			}
		}
		for name, v := range declared {
			if _, ok := pins[name]; !ok {
				report(declaredPos[name], "MsgType constant %s (= %d) is not pinned in the pin test; add it and a PROTOCOL.md row", name, v)
			}
		}
	}

	// Exhaustive switches over MsgType in the declaring package.
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagT := p.info.TypeOf(sw.Tag)
			if tagT == nil || !types.Identical(tagT, named) {
				return true
			}
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok {
						covered[id.Name] = true
					}
				}
			}
			for name := range declared {
				if !covered[name] {
					report(sw.Pos(), "switch over MsgType misses %s; codec switches must be exhaustive", name)
				}
			}
			return true
		})
	}

	// Proto* version constants must be exercised by tests.
	protoConsts := make(map[string]token.Pos)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && len(name) > 5 && name[:5] == "Proto" {
			protoConsts[name] = c.Pos()
		}
	}
	if len(protoConsts) > 0 {
		testIdents := make(map[string]bool)
		for _, f := range p.testFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					testIdents[id.Name] = true
				}
				return true
			})
		}
		for name, pos := range protoConsts {
			if !testIdents[name] {
				report(pos, "protocol version constant %s is not exercised by any test in the package", name)
			}
		}
	}

	return out
}

// pinTable extracts {constName: pinnedValue} from the first composite
// literal assigned to an identifier named "pinned" in the test files, the
// shape TestMsgTypeValuesPinned uses: {MsgX, <int>, "name"} rows.
func pinTable(testFiles []*ast.File) (map[string]int64, map[string]token.Pos) {
	for _, f := range testFiles {
		var pins map[string]int64
		var poss map[string]token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			if pins != nil {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name != "pinned" {
				return true
			}
			cl, ok := as.Rhs[0].(*ast.CompositeLit)
			if !ok {
				return true
			}
			pins = make(map[string]int64)
			poss = make(map[string]token.Pos)
			for _, elt := range cl.Elts {
				row, ok := elt.(*ast.CompositeLit)
				if !ok || len(row.Elts) < 2 {
					continue
				}
				name := ""
				switch e := row.Elts[0].(type) {
				case *ast.Ident:
					name = e.Name
				case *ast.SelectorExpr:
					name = e.Sel.Name
				}
				lit, ok := row.Elts[1].(*ast.BasicLit)
				if name == "" || !ok || lit.Kind != token.INT {
					continue
				}
				v, err := strconv.ParseInt(lit.Value, 0, 64)
				if err != nil {
					continue
				}
				pins[name] = v
				poss[name] = row.Pos()
			}
			return false
		})
		if pins != nil {
			return pins, poss
		}
	}
	return nil, nil
}
