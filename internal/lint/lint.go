// Package lint implements arbd-lint, the repository's custom static-analysis
// suite. Eight PRs of hot-path, wire-protocol, and locking work produced a
// set of invariants that used to live only in review folklore; this package
// machine-checks them on every commit:
//
//   - hotpath: functions annotated //arbd:hotpath must not contain
//     allocating constructs (map/slice literals, make/new, un-presized
//     append growth, capturing closures, fmt.* calls, string concat or
//     string<->[]byte conversions, interface boxing at call sites).
//     Escape hatch: //arbd:alloc-ok <reason> on or above the line.
//   - wirepin: every exported wire.MsgType constant is pinned (value and
//     all) in the package's pin test, values are unique, proto-version
//     constants are exercised by tests, and switches over MsgType inside
//     the declaring package are exhaustive.
//   - lockorder: no net.Conn calls, unbuffered channel sends, or
//     time.Sleep while a sync.Mutex/RWMutex locked in the same function
//     is held, and every Lock has a matching Unlock in the function.
//     Escape hatch: //arbd:lock-ok <reason>.
//   - metricscache: metrics.Registry.Counter/Gauge/Histogram lookups
//     inside loops or //arbd:hotpath functions are errors — handles must
//     be resolved once at construction (PR 8's 52.6->6.0 ns audit).
//     Escape hatch: //arbd:metrics-ok <reason>.
//
// The suite is stdlib-only (go/ast, go/parser, go/types, go/token): no
// network, no third-party analysis frameworks, so it runs anywhere the Go
// toolchain does. cmd/arbd-lint is the CLI driver; the golden fixtures
// under testdata/mod prove each analyzer fires and stays quiet.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line: [analyzer] message form the
// CLI prints and CI greps.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// escapeDirective names the //arbd:<kind> comment that silences an
// analyzer's finding on its own line or the line above.
var escapeDirective = map[string]string{
	"hotpath":      "alloc-ok",
	"lockorder":    "lock-ok",
	"metricscache": "metrics-ok",
	"wirepin":      "wirepin-ok",
}

// Run lints every package under root matching the patterns (Go-style
// "./..."-style prefixes; nil or "./..." means everything) and returns the
// surviving findings sorted by position. root must contain a go.mod naming
// the module the packages import each other through.
func Run(root string, patterns []string) ([]Finding, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.loadAll(patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, p := range pkgs {
		dirs := collectDirectives(l.fset, p)
		all = append(all, analyzeHotpath(l.fset, p, dirs)...)
		all = append(all, analyzeWirepin(l.fset, p)...)
		all = append(all, analyzeLockorder(l.fset, p)...)
		all = append(all, analyzeMetricscache(l.fset, p, dirs)...)
	}
	all = filterEscaped(all, l.fset, pkgs)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		return all[i].Message < all[j].Message
	})
	return all, nil
}

// directives indexes //arbd:* comments by file and line.
type directives struct {
	// byLine maps filename -> line -> set of directive kinds on that line.
	byLine map[string]map[int]map[string]bool
}

// collectDirectives gathers every //arbd:<kind> comment in the package
// (test files included, so escapes work in pin tests too).
func collectDirectives(fset *token.FileSet, p *pkgInfo) *directives {
	d := &directives{byLine: make(map[string]map[int]map[string]bool)}
	files := append([]*ast.File{}, p.files...)
	files = append(files, p.testFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "arbd:") {
					continue
				}
				kind := strings.TrimPrefix(text, "arbd:")
				if i := strings.IndexAny(kind, " \t"); i >= 0 {
					kind = kind[:i]
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.byLine[pos.Filename] = lines
				}
				kinds := lines[pos.Line]
				if kinds == nil {
					kinds = make(map[string]bool)
					lines[pos.Line] = kinds
				}
				kinds[kind] = true
			}
		}
	}
	return d
}

// has reports whether the directive kind appears on the given file line.
func (d *directives) has(file string, line int, kind string) bool {
	return d.byLine[file][line][kind]
}

// escaped reports whether a finding at pos is silenced by its analyzer's
// escape directive on the same line or the line above.
func (d *directives) escaped(pos token.Position, analyzer string) bool {
	kind, ok := escapeDirective[analyzer]
	if !ok {
		return false
	}
	return d.has(pos.Filename, pos.Line, kind) || d.has(pos.Filename, pos.Line-1, kind)
}

// filterEscaped drops findings annotated away with escape directives. It
// re-collects directives per package because findings carry no package
// back-pointer.
func filterEscaped(all []Finding, fset *token.FileSet, pkgs []*pkgInfo) []Finding {
	merged := &directives{byLine: make(map[string]map[int]map[string]bool)}
	for _, p := range pkgs {
		d := collectDirectives(fset, p)
		for file, lines := range d.byLine {
			if merged.byLine[file] == nil {
				merged.byLine[file] = lines
				continue
			}
			for line, kinds := range lines {
				merged.byLine[file][line] = kinds
			}
		}
	}
	kept := all[:0]
	for _, f := range all {
		if !merged.escaped(f.Pos, f.Analyzer) {
			kept = append(kept, f)
		}
	}
	return kept
}

// funcHasDirective reports whether the function's doc comment carries the
// //arbd:<kind> directive.
func funcHasDirective(fd *ast.FuncDecl, kind string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == "arbd:"+kind || strings.HasPrefix(text, "arbd:"+kind+" ") {
			return true
		}
	}
	return false
}
