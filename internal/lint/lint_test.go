package lint

import (
	"go/token"
	"strings"
	"sync"
	"testing"
)

// The golden fixtures under testdata/mod form their own module ("fixture")
// with a bad/clean package pair per analyzer. All fixture packages are
// linted in one Run (one stdlib parse) and each test filters by directory.
var (
	fixtureOnce     sync.Once
	fixtureFindings []Finding
	fixtureErr      error
)

func fixtureResults(t *testing.T) []Finding {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureFindings, fixtureErr = Run("testdata/mod", nil)
	})
	if fixtureErr != nil {
		t.Fatalf("Run(testdata/mod): %v", fixtureErr)
	}
	return fixtureFindings
}

// findingsIn returns the fixture findings whose file lives in the named
// fixture package directory.
func findingsIn(t *testing.T, dir string) []Finding {
	t.Helper()
	var out []Finding
	for _, f := range fixtureResults(t) {
		if strings.Contains(f.Pos.Filename, "/"+dir+"/") {
			out = append(out, f)
		}
	}
	return out
}

// expectFindings asserts the package produced exactly the expected findings:
// one per substring, all from the named analyzer.
func expectFindings(t *testing.T, dir, analyzer string, substrings []string) {
	t.Helper()
	got := findingsIn(t, dir)
	if len(got) != len(substrings) {
		for _, f := range got {
			t.Logf("  %s", f)
		}
		t.Fatalf("%s: got %d findings, want %d", dir, len(got), len(substrings))
	}
	for _, f := range got {
		if f.Analyzer != analyzer {
			t.Errorf("%s: finding from analyzer %q, want %q: %s", dir, f.Analyzer, analyzer, f)
		}
	}
	for _, want := range substrings {
		n := 0
		for _, f := range got {
			if strings.Contains(f.Message, want) {
				n++
			}
		}
		if n != 1 {
			for _, f := range got {
				t.Logf("  %s", f)
			}
			t.Fatalf("%s: substring %q matched %d findings, want 1", dir, want, n)
		}
	}
}

func expectQuiet(t *testing.T, dir string) {
	t.Helper()
	for _, f := range findingsIn(t, dir) {
		t.Errorf("%s: unexpected finding: %s", dir, f)
	}
}

func TestHotpathFires(t *testing.T) {
	expectFindings(t, "hotpath_bad", "hotpath", []string{
		"map literal allocates",
		"slice literal allocates",
		"&composite literal allocates",
		"make allocates",
		"new allocates",
		`append grows un-presized local slice "acc"`,
		`closure captures "n"`,
		"fmt.Println allocates",
		"string concatenation allocates",
		"string conversion copies",
		"boxes into interface",
	})
}

func TestHotpathQuiet(t *testing.T) {
	expectQuiet(t, "hotpath_clean")
}

func TestLockorderFires(t *testing.T) {
	expectFindings(t, "lockorder_bad", "lockorder", []string{
		"net.Conn call g.conn.Write while a mutex is held",
		"time.Sleep while a mutex is held",
		`send on unbuffered channel "ch"`,
		"g.mu.Lock() has no matching Unlock",
	})
}

func TestLockorderQuiet(t *testing.T) {
	expectQuiet(t, "lockorder_clean")
}

func TestMetricscacheFires(t *testing.T) {
	expectFindings(t, "metricscache_bad", "metricscache", []string{
		`Registry.Counter("bad.loop") resolved inside a loop`,
		`Registry.Histogram("bad.hot") resolved inside an //arbd:hotpath function`,
	})
}

func TestMetricscacheQuiet(t *testing.T) {
	expectQuiet(t, "metricscache_clean")
}

func TestWirepinFires(t *testing.T) {
	expectFindings(t, "wire_bad", "wirepin", []string{
		"MsgType value 2 is used by both MsgBeta and MsgDup",
		"MsgBeta pinned as 9 but compiles to 2",
		"MsgGamma (= 3) is not pinned",
		"MsgDup (= 2) is not pinned",
		"switch over MsgType misses MsgGamma",
		"switch over MsgType misses MsgDup",
		"protocol version constant ProtoV2 is not exercised",
	})
}

func TestWirepinQuiet(t *testing.T) {
	expectQuiet(t, "wire_clean")
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "internal/wire/codec.go", Line: 42},
		Analyzer: "wirepin",
		Message:  "something moved",
	}
	const want = "internal/wire/codec.go:42: [wirepin] something moved"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRepoIsLintClean is the self-check: the suite must report zero findings
// on the repository itself. This pins every violation fixed in this PR — a
// reintroduced hot-path allocation, registry lookup, or lock-held write
// fails this test before it fails CI's arbd-lint step.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	findings, err := Run("../..", nil)
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}
