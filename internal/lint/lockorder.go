package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzeLockorder enforces the PR-5 rule that blocking operations never
// happen while a sync.Mutex/RWMutex acquired in the same function is held:
// no net.Conn method calls or net.Conn-valued arguments, no sends on
// provably-unbuffered local channels, no time.Sleep. It also reports a
// Lock/RLock with no matching Unlock/RUnlock anywhere in the function.
//
// The held region is intra-procedural and textual: from the lock call to
// the first matching unlock on the same receiver expression (a deferred
// unlock extends the region to the end of the function). That
// under-approximates multi-branch unlock flows, which is the right bias
// for a gating linter: it misses some paths but does not cry wolf.
func analyzeLockorder(fset *token.FileSet, p *pkgInfo) []Finding {
	var out []Finding
	for _, file := range p.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockChecker{fset: fset, p: p, fn: fd}
			out = append(out, lc.check()...)
		}
	}
	return out
}

type lockChecker struct {
	fset *token.FileSet
	p    *pkgInfo
	fn   *ast.FuncDecl
}

// lockEvent is one Lock/Unlock call site on a mutex-valued expression.
type lockEvent struct {
	key     string // printed receiver expression, e.g. "s.mu"
	method  string // Lock, RLock, Unlock, RUnlock
	pos     token.Pos
	defered bool
}

func (lc *lockChecker) check() []Finding {
	events := lc.collectEvents()
	if len(events) == 0 {
		return nil
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      lc.fset.Position(pos),
			Analyzer: "lockorder",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	unlockFor := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	type span struct{ from, to token.Pos }
	var held []span
	for _, ev := range events {
		want, isLock := unlockFor[ev.method]
		if !isLock {
			continue
		}
		end := token.NoPos
		for _, other := range events {
			if other.key == ev.key && other.method == want && other.pos > ev.pos {
				if other.defered {
					end = lc.fn.End()
				} else {
					end = other.pos
				}
				break
			}
		}
		if end == token.NoPos {
			report(ev.pos, "%s.%s() has no matching %s in this function", ev.key, ev.method, want)
			continue
		}
		held = append(held, span{ev.pos, end})
	}
	if len(held) == 0 {
		return out
	}
	inHeld := func(pos token.Pos) bool {
		for _, s := range held {
			if pos > s.from && pos < s.to {
				return true
			}
		}
		return false
	}

	connIface := lc.netConnType()
	unbuffered := lc.unbufferedChans()

	ast.Inspect(lc.fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if !inHeld(node.Pos()) {
				return true
			}
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := lc.p.info.Uses[x].(*types.PkgName); ok {
						if pn.Imported().Path() == "time" && sel.Sel.Name == "Sleep" {
							report(node.Pos(), "time.Sleep while a mutex is held")
						}
						return true // package-qualified call, not a conn method
					}
				}
				if connIface != nil && !nonBlockingConnMethod(sel.Sel.Name) {
					if xt := lc.p.info.TypeOf(sel.X); xt != nil && assignableToConn(xt, connIface) {
						report(node.Pos(), "net.Conn call %s.%s while a mutex is held; move I/O outside the lock", exprString(lc.fset, sel.X), sel.Sel.Name)
					}
				}
			}
			if connIface != nil && !isBuiltinCall(lc.p, node) {
				for _, arg := range node.Args {
					if at := lc.p.info.TypeOf(arg); at != nil && assignableToConn(at, connIface) {
						report(arg.Pos(), "net.Conn %s passed to a call while a mutex is held; move I/O outside the lock", exprString(lc.fset, arg))
					}
				}
			}
		case *ast.SendStmt:
			if !inHeld(node.Pos()) {
				return true
			}
			if id, ok := node.Chan.(*ast.Ident); ok {
				if obj := lc.p.info.Uses[id]; obj != nil && unbuffered[obj] {
					report(node.Pos(), "send on unbuffered channel %q while a mutex is held can block forever", id.Name)
				}
			}
		}
		return true
	})
	return out
}

// collectEvents finds Lock/RLock/Unlock/RUnlock calls whose method resolves
// to sync.Mutex/sync.RWMutex (embedding included, via the method object).
func (lc *lockChecker) collectEvents() []lockEvent {
	var events []lockEvent
	add := func(call *ast.CallExpr, defered bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		switch name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return
		}
		fn, ok := lc.p.info.Uses[sel.Sel].(*types.Func)
		if !ok || !isSyncMutexMethod(fn) {
			return
		}
		events = append(events, lockEvent{
			key:     exprString(lc.fset, sel.X),
			method:  name,
			pos:     call.Pos(),
			defered: defered,
		})
	}
	ast.Inspect(lc.fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				add(call, false)
			}
		case *ast.DeferStmt:
			add(node.Call, true)
		}
		return true
	})
	return events
}

// nonBlockingConnMethod names the net.Conn methods that never block on the
// peer: the PR-5 rule is about blocking I/O under gate locks, and closing a
// socket or stamping a deadline returns immediately.
func nonBlockingConnMethod(name string) bool {
	switch name {
	case "Close", "LocalAddr", "RemoteAddr", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		return true
	}
	return false
}

// isBuiltinCall reports whether the call is a language builtin (delete,
// len, append, ...) — passing a conn to those is bookkeeping, not I/O.
func isBuiltinCall(p *pkgInfo, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := p.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isSyncMutexMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// netConnType returns the net.Conn interface if this package imports net.
func (lc *lockChecker) netConnType() *types.Interface {
	if lc.p.pkg == nil {
		return nil
	}
	for _, imp := range lc.p.pkg.Imports() {
		if imp.Path() == "net" {
			if tn, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}

func assignableToConn(t types.Type, conn *types.Interface) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic, *types.Signature, *types.Map, *types.Slice, *types.Array, *types.Chan:
		return false // includes the invalid type package names resolve to
	case *types.Interface:
		return types.Identical(u, conn) || (u.NumMethods() > 0 && types.Implements(u, conn))
	}
	if types.Implements(t, conn) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), conn)
	}
	return false
}

// unbufferedChans collects channels created in this function by a
// single-argument make(chan T).
func (lc *lockChecker) unbufferedChans() map[types.Object]bool {
	set := make(map[types.Object]bool)
	ast.Inspect(lc.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, ok := call.Args[0].(*ast.ChanType); !ok {
				continue
			}
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := lc.p.info.Defs[lhs]; obj != nil {
					set[obj] = true
				}
			}
		}
		return true
	})
	return set
}
