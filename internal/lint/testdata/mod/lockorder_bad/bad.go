// Package lockorder_bad seeds the four lockorder violations: a net.Conn
// write under a mutex, time.Sleep under a read lock, a send on an unbuffered
// channel under a deferred unlock, and a Lock with no matching Unlock.
package lockorder_bad

import (
	"net"
	"sync"
	"time"
)

type gate struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
}

func (g *gate) writeUnderLock(p []byte) {
	g.mu.Lock()
	_, _ = g.conn.Write(p) // blocking I/O while held
	g.mu.Unlock()
}

func (g *gate) sleepUnderLock() {
	g.rw.RLock()
	time.Sleep(time.Millisecond) // sleep while held
	g.rw.RUnlock()
}

func (g *gate) sendUnderLock() {
	ch := make(chan int)
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- 1 // unbuffered send while held
}

func (g *gate) leak() {
	g.mu.Lock() // no matching Unlock anywhere in this function
	g.conn = nil
}
