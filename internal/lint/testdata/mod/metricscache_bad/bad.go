// Package metricscache_bad seeds the two metricscache violations: a registry
// lookup with a constant name inside a loop, and one inside a function
// annotated //arbd:hotpath.
package metricscache_bad

import "fixture/metrics"

type worker struct{ reg *metrics.Registry }

func (w *worker) loopLookup(n int) {
	for i := 0; i < n; i++ {
		w.reg.Counter("bad.loop").Inc() // lookup repeated every iteration
	}
}

// hotLookup resolves a histogram handle on the hot path.
//
//arbd:hotpath
func (w *worker) hotLookup() {
	w.reg.Histogram("bad.hot").Observe(1)
}
