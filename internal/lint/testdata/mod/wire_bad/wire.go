// Package wire_bad seeds every wirepin violation: a duplicate wire value, a
// constant missing from the pin table, a pin whose value drifted from the
// compiled constant, a non-exhaustive switch over MsgType, and a protocol
// version constant no test exercises.
package wire_bad

type MsgType uint8

const (
	MsgAlpha MsgType = 1
	MsgBeta  MsgType = 2
	MsgGamma MsgType = 3 // not pinned in the test table
	MsgDup   MsgType = 2 // reuses MsgBeta's wire value
)

const ProtoV1 uint32 = 1

const ProtoV2 uint32 = 2 // never referenced by any test

// String is deliberately non-exhaustive: MsgGamma and MsgDup are missing.
func (m MsgType) String() string {
	switch m {
	case MsgAlpha:
		return "alpha"
	case MsgBeta:
		return "beta"
	default:
		return "unknown"
	}
}
