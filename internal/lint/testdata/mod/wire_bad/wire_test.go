package wire_bad

import "testing"

func TestMsgTypeValuesPinned(t *testing.T) {
	pinned := []struct {
		typ  MsgType
		val  uint8
		name string
	}{
		{MsgAlpha, 1, "alpha"},
		{MsgBeta, 9, "beta"}, // drifted: compiles to 2
	}
	for _, p := range pinned {
		if uint8(p.typ) != p.val {
			t.Errorf("%s moved", p.name)
		}
	}
	if ProtoV1 != 1 {
		t.Fatal("proto moved")
	}
}
