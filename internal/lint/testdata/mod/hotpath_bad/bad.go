// Package hotpath_bad seeds one violation per hotpath rule; the lint tests
// assert every one of them fires.
package hotpath_bad

import "fmt"

type item struct {
	id    uint64
	label string
}

type state struct {
	names []string
	sink  []item
}

// frame is the seeded-violation hot function: every allocating construct
// below must be reported by the hotpath analyzer.
//
//arbd:hotpath
func (s *state) frame(n int) int {
	m := map[string]int{"a": 1}    // map literal
	sl := []int{1, 2, 3}           // slice literal
	p := &item{id: 1}              // &composite literal
	b := make([]byte, 8)           // make
	q := new(item)                 // new
	var acc []item                 // un-presized local slice...
	acc = append(acc, item{id: 2}) // ...grown by append
	f := func() int { return n }   // closure capturing n
	fmt.Println("frame", n)        // fmt call (one finding, args excluded)
	s.names[0] = s.names[0] + "!"  // runtime string concatenation
	bs := []byte(s.names[0])       // string conversion copy
	box(item{id: 4})               // non-pointer value boxed into any
	return len(m) + len(sl) + int(p.id) + len(b) + int(q.id) + len(acc) + f() + len(bs)
}

func box(v any) int {
	_ = v
	return 0
}
