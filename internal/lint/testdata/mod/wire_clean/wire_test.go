package wire_clean

import "testing"

func TestMsgTypeValuesPinned(t *testing.T) {
	pinned := []struct {
		typ  MsgType
		val  uint8
		name string
	}{
		{MsgAlpha, 1, "alpha"},
		{MsgBeta, 2, "beta"},
	}
	for _, p := range pinned {
		if uint8(p.typ) != p.val {
			t.Errorf("%s moved", p.name)
		}
	}
	if len(pinned) != int(maxMsgType)-1 {
		t.Fatalf("pin table has %d rows, want %d", len(pinned), int(maxMsgType)-1)
	}
	if ProtoV1 != 1 || ProtoV2 != 2 {
		t.Fatal("protocol version constants moved")
	}
}
