// Package wire_clean is the quiet wirepin fixture: unique values, every
// exported constant pinned, an exhaustive String switch, and both protocol
// version constants exercised by the test. The unexported maxMsgType
// sentinel must be ignored by the analyzer.
package wire_clean

type MsgType uint8

const (
	MsgAlpha MsgType = 1
	MsgBeta  MsgType = 2

	maxMsgType MsgType = 3
)

const (
	ProtoV1 uint32 = 1
	ProtoV2 uint32 = 2
)

func (m MsgType) String() string {
	switch m {
	case MsgAlpha:
		return "alpha"
	case MsgBeta:
		return "beta"
	default:
		return "unknown"
	}
}
