// Package metrics is a miniature copy of the repo's metrics API, just enough
// surface for the metricscache fixtures: a Registry whose lookup methods the
// analyzer must recognize by receiver type and package suffix.
package metrics

type Counter struct{ v int64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

type Histogram struct{ n int }

func (h *Histogram) Observe(v float64) { h.n++ }

type Registry struct{ counters map[string]*Counter }

func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
