// Package metricscache_clean exercises the accepted patterns: handles
// resolved once at construction, cached handles used in loops, cold one-shot
// lookups outside loops, dynamic names, and the metrics-ok escape hatch.
package metricscache_clean

import "fixture/metrics"

type worker struct {
	reg    *metrics.Registry
	frames *metrics.Counter
}

// newWorker resolves handles at construction — the pattern the analyzer
// pushes toward.
func newWorker(reg *metrics.Registry) *worker {
	return &worker{reg: reg, frames: reg.Counter("ok.frames")}
}

func (w *worker) loop(n int) {
	for i := 0; i < n; i++ {
		w.frames.Inc() // cached handle: no lookup
	}
}

func (w *worker) coldLookup() {
	w.reg.Counter("ok.cold").Inc() // not in a loop, not hot: fine
}

func (w *worker) dynamicName(shards []string) {
	for _, s := range shards {
		w.reg.Counter(s).Inc() // dynamic name: not cacheable at construction
	}
}

func (w *worker) escaped(n int) {
	for i := 0; i < n; i++ {
		//arbd:metrics-ok fixture: teardown loop, runs once per shutdown
		w.reg.Counter("ok.escaped").Inc()
	}
}
