// Package lockorder_clean exercises the patterns the lockorder analyzer must
// accept: staging under the lock and writing after release (the PR-5 shape),
// non-blocking conn methods under a lock, buffered sends, and the lock-ok
// escape hatch.
package lockorder_clean

import (
	"net"
	"sync"
	"time"
)

type gate struct {
	mu   sync.Mutex
	conn net.Conn
}

// writeOutsideLock stages under the lock and performs I/O after releasing
// it — the canonical fix the analyzer pushes toward.
func (g *gate) writeOutsideLock(p []byte) {
	g.mu.Lock()
	conn := g.conn
	g.mu.Unlock()
	_, _ = conn.Write(p)
}

func (g *gate) deadlineUnderLock(p []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	_ = g.conn.SetWriteDeadline(time.Now().Add(time.Second)) // non-blocking: ok
	//arbd:lock-ok fixture: deadline-bounded write, lock only serializes this writer
	_, _ = g.conn.Write(p)
}

func (g *gate) bufferedSend() {
	ch := make(chan int, 1)
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- 1 // buffered: cannot block while held
}
