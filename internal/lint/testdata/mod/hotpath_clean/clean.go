// Package hotpath_clean exercises the allocation-free idioms the hotpath
// analyzer must accept without a single finding: struct literal values,
// appends backed by caller capacity, non-capturing closures, pointer-shaped
// boxing, constant-folded concatenation, and the alloc-ok escape hatch.
package hotpath_clean

type rec struct{ id uint64 }

type buf struct {
	scratch []rec
	out     []byte
}

// frame stays quiet under the hotpath analyzer.
//
//arbd:hotpath
func (b *buf) frame(dst []rec, n int) []rec {
	b.scratch = b.scratch[:0]
	b.scratch = append(b.scratch, rec{id: uint64(n)}) // append to field: ok
	dst = append(dst, rec{id: 2})                     // append to parameter: ok
	local := dst[:0]
	local = append(local, rec{id: 3}) // derived from caller capacity: ok
	var r rec
	r = rec{id: 4}               // struct literal value: no allocation
	f := func() int { return 0 } // non-capturing literal: static closure
	take(b)                      // pointer already fits an interface word
	const tag = "a" + "b"        // constant-folded concat: free
	//arbd:alloc-ok fixture demonstrating the escape hatch on a cold branch
	cold := make([]rec, 0, n)
	_ = cold
	_ = f()
	_ = r
	_ = tag
	return local
}

func take(v any) { _ = v }
