package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// analyzeHotpath flags allocating constructs inside functions annotated
// //arbd:hotpath. The rules mirror what the Go compiler actually allocates
// on the steady-state path, so the zero-alloc guarantees pinned by the
// frame-loop benchmarks can't silently regress:
//
//   - map and slice composite literals, &T{...}, make, new
//   - append to a slice declared in the same function without capacity
//     (the "grow from nil every call" pattern)
//   - func literals that capture enclosing variables (non-capturing
//     literals compile to static closures and stay)
//   - fmt.* calls (variadic any boxing plus formatting state)
//   - string concatenation and string<->[]byte conversions
//   - implicit interface boxing of non-pointer-shaped values at call sites
//
// Plain struct literal *values* (scratch resets like `*f = Frame{...}`)
// are deliberately not flagged — they do not allocate.
func analyzeHotpath(fset *token.FileSet, p *pkgInfo, dirs *directives) []Finding {
	var out []Finding
	for _, file := range p.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			h := &hotChecker{fset: fset, p: p, fn: fd}
			h.collectLocalSlices()
			h.check()
			out = append(out, h.findings...)
		}
	}
	return out
}

type hotChecker struct {
	fset     *token.FileSet
	p        *pkgInfo
	fn       *ast.FuncDecl
	findings []Finding

	// unpresized holds function-local slice variables declared with no
	// capacity (var x []T, x := []T{}, x := make([]T, 0), x = nil).
	unpresized map[types.Object]bool
	// flaggedFmt marks fmt.* calls already reported so their `any` args
	// don't double-report as interface boxing.
	flaggedFmt map[*ast.CallExpr]bool
	// concatSeen dedupes a+b+c chains to one finding at the top.
	concatSeen map[ast.Expr]bool
}

func (h *hotChecker) report(pos token.Pos, format string, args ...any) {
	h.findings = append(h.findings, Finding{
		Pos:      h.fset.Position(pos),
		Analyzer: "hotpath",
		Message:  fmt.Sprintf(format, args...),
	})
}

func (h *hotChecker) typeOf(e ast.Expr) types.Type {
	if h.p.info == nil {
		return nil
	}
	return h.p.info.TypeOf(e)
}

// collectLocalSlices records slice variables declared in this function
// whose backing array starts empty, so appends to them are growth.
func (h *hotChecker) collectLocalSlices() {
	h.unpresized = make(map[types.Object]bool)
	h.flaggedFmt = make(map[*ast.CallExpr]bool)
	h.concatSeen = make(map[ast.Expr]bool)
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := h.p.info.Defs[name]
					if obj != nil && isSlice(obj.Type()) {
						h.unpresized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := h.p.info.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if emptyBackedSlice(st.Rhs[i]) {
					h.unpresized[obj] = true
				}
			}
		}
		return true
	})
}

// emptyBackedSlice reports whether the initializer yields a zero-capacity
// slice: nil, []T{}, or make([]T, 0) with no cap argument.
func emptyBackedSlice(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name == "nil"
	case *ast.CompositeLit:
		_, isArr := v.Type.(*ast.ArrayType)
		return isArr && len(v.Elts) == 0
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(v.Args) != 2 {
			return false
		}
		lit, ok := v.Args[1].(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

func (h *hotChecker) check() {
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			h.checkComposite(node)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					h.report(node.Pos(), "&composite literal allocates on the heap")
				}
			}
		case *ast.CallExpr:
			h.checkCall(node)
		case *ast.BinaryExpr:
			h.checkConcat(node)
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isString(h.typeOf(node.Lhs[0])) {
				h.report(node.Pos(), "string concatenation allocates; build into a reused []byte")
			}
		case *ast.FuncLit:
			if name, pos, ok := h.captures(node); ok {
				h.report(pos, "closure captures %q; hoist to a pre-bound method value or struct field", name)
			}
		}
		return true
	})
}

func (h *hotChecker) checkComposite(cl *ast.CompositeLit) {
	t := h.typeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		h.report(cl.Pos(), "map literal allocates; hoist to a reused field")
	case *types.Slice:
		h.report(cl.Pos(), "slice literal allocates; hoist to a reused buffer")
	}
}

func (h *hotChecker) checkCall(call *ast.CallExpr) {
	// Conversions: only string<->[]byte/[]rune copies allocate.
	if tv, ok := h.p.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, h.typeOf(call.Args[0])
		if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
			// Constant-foldable conversions (e.g. []byte("lit")) still
			// allocate at runtime when they escape; flag uniformly.
			h.report(call.Pos(), "string conversion copies and allocates")
		}
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := h.p.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.report(call.Pos(), "make allocates; hoist to construction or reuse scratch")
			case "new":
				h.report(call.Pos(), "new allocates; hoist to construction or reuse scratch")
			case "append":
				h.checkAppend(call)
			}
			return
		}
	}
	// fmt.* — one finding per call, args excluded from boxing checks.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := h.p.info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				h.flaggedFmt[call] = true
				h.report(call.Pos(), "fmt.%s allocates (boxing + formatting state); use strconv into a reused buffer or an error sentinel", sel.Sel.Name)
				return
			}
		}
	}
	h.checkBoxing(call)
}

// checkAppend flags append growth on slices that start with no capacity in
// this function. Appends to parameters, fields, and presized locals pass —
// their capacity is the caller's amortization contract.
func (h *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := h.p.info.Uses[id]
	if obj != nil && h.unpresized[obj] {
		h.report(call.Pos(), "append grows un-presized local slice %q; presize with capacity or reuse a field", id.Name)
	}
}

// checkBoxing flags non-pointer-shaped values passed to interface
// parameters: the conversion heap-allocates the boxed copy.
func (h *hotChecker) checkBoxing(call *ast.CallExpr) {
	if h.flaggedFmt[call] {
		return
	}
	sigT := h.typeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := h.typeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		// Small constants are handled by the runtime's static boxes only
		// for some values; treat all non-pointer-shaped boxing as a hit.
		h.report(arg.Pos(), "argument %s boxes into interface %s (heap allocation)", exprString(h.fset, arg), pt.String())
	}
}

// checkConcat flags runtime string concatenation, reporting once per chain.
func (h *hotChecker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD || !isString(h.typeOf(be)) {
		return
	}
	if h.concatSeen[be] {
		return
	}
	// Constant folding: a + b where both are constants costs nothing.
	if tv, ok := h.p.info.Types[be]; ok && tv.Value != nil {
		return
	}
	// Mark sub-chains so nested ADDs don't re-report.
	ast.Inspect(be, func(n ast.Node) bool {
		if sub, ok := n.(*ast.BinaryExpr); ok && sub.Op == token.ADD {
			h.concatSeen[sub] = true
		}
		return true
	})
	h.report(be.Pos(), "string concatenation allocates; build into a reused []byte")
}

// captures reports whether the func literal captures a variable declared in
// the enclosing function, returning one offending name for the message.
func (h *hotChecker) captures(fl *ast.FuncLit) (string, token.Pos, bool) {
	inner := make(map[types.Object]bool)
	ast.Inspect(fl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := h.p.info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})
	var name string
	var pos token.Pos
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := h.p.info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || inner[obj] || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal. Package-level vars have positions outside fn.
		if obj.Pos() >= h.fn.Pos() && obj.Pos() <= h.fn.End() &&
			(obj.Pos() < fl.Pos() || obj.Pos() > fl.End()) {
			name, pos = id.Name, fl.Pos()
		}
		return true
	})
	return name, pos, name != ""
}

func isSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t convert to interface without a
// heap copy (the value already is a single pointer word).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
