package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeMetricscache enforces the PR-8 rule that metrics.Registry handles
// are resolved once at construction, never per-operation: a call to
// Registry.Counter/Gauge/Histogram with a constant name inside a loop or
// inside an //arbd:hotpath function is an error. Each lookup costs a
// registry mutex acquisition plus a map probe (measured 52.6 ns vs 6.0 ns
// on a cached handle) — invisible in a constructor, ruinous per frame.
func analyzeMetricscache(fset *token.FileSet, p *pkgInfo, dirs *directives) []Finding {
	var out []Finding
	for _, file := range p.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := funcHasDirective(fd, "hotpath")
			loops := loopSpans(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := registryLookup(p, call)
				if !ok {
					return true
				}
				inLoop := within(loops, call.Pos())
				if !hot && !inLoop {
					return true
				}
				// Only constant names are cacheable at construction;
				// dynamic names are a different design problem.
				if len(call.Args) == 0 || !isConstString(p, call.Args[0]) {
					return true
				}
				where := "an //arbd:hotpath function"
				if inLoop {
					where = "a loop"
				}
				out = append(out, Finding{
					Pos:      fset.Position(call.Pos()),
					Analyzer: "metricscache",
					Message: fmt.Sprintf("Registry.%s(%s) resolved inside %s; cache the handle in a field at construction",
						method, exprString(fset, call.Args[0]), where),
				})
				return true
			})
		}
	}
	return out
}

// registryLookup reports whether the call is Counter/Gauge/Histogram on a
// Registry from a metrics package (the repo's or a fixture's).
func registryLookup(p *pkgInfo, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Counter", "Gauge", "Histogram":
	default:
		return "", false
	}
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !strings.HasSuffix(pkg.Path(), "metrics") {
		return "", false
	}
	return name, true
}

func isConstString(p *pkgInfo, e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	return ok && tv.Value != nil
}

type posSpan struct{ from, to token.Pos }

// loopSpans returns the source extents of every for/range statement body.
func loopSpans(body *ast.BlockStmt) []posSpan {
	var spans []posSpan
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			spans = append(spans, posSpan{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, posSpan{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return spans
}

func within(spans []posSpan, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.from && pos <= s.to {
			return true
		}
	}
	return false
}
