package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkgInfo bundles a type-checked package with the syntax the analyzers walk.
type pkgInfo struct {
	importPath string
	dir        string
	files      []*ast.File // non-test files, analyzed
	testFiles  []*ast.File // _test.go files, read only by wirepin
	pkg        *types.Package
	info       *types.Info
}

// loader parses and type-checks module packages from source. The module
// itself ("arbd/...") is resolved recursively against the repo tree; the
// standard library is delegated to the toolchain's source importer so the
// suite needs nothing beyond a GOROOT.
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	pkgs    map[string]*pkgInfo
	loading map[string]bool
	std     types.Importer
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	module := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    abs,
		module:  module,
		pkgs:    make(map[string]*pkgInfo),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Import implements types.Importer: module-internal paths load from the
// repo tree, everything else falls through to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *loader) load(importPath string) (*pkgInfo, error) {
	if pi, ok := l.pkgs[importPath]; ok {
		return pi, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: cannot read package %s: %w", importPath, err)
	}
	var files, testFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		if strings.HasSuffix(name, "_test.go") {
			// External test packages (package foo_test) are kept too:
			// wirepin only pattern-matches their ASTs, never type-checks.
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", importPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Type errors are tolerated (the repo is expected to compile; fixtures
	// may reference only what they ship) — analyzers degrade gracefully on
	// missing type info rather than blocking the whole run.
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, _ := conf.Check(importPath, l.fset, files, info)
	pi := &pkgInfo{
		importPath: importPath,
		dir:        dir,
		files:      files,
		testFiles:  testFiles,
		pkg:        pkg,
		info:       info,
	}
	l.pkgs[importPath] = pi
	return pi, nil
}

// loadAll discovers and loads every package under the module root matching
// the patterns. Patterns follow go tool shorthand: "./..." (everything),
// "./internal/..." (subtree), or a plain package dir like "./cmd/arbd-lint".
func (l *loader) loadAll(patterns []string) ([]*pkgInfo, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	var out []*pkgInfo
	for _, dir := range dirs {
		rel, _ := filepath.Rel(l.root, dir)
		if !matchesAny(rel, patterns) {
			continue
		}
		importPath := l.module
		if rel != "." {
			importPath = l.module + "/" + filepath.ToSlash(rel)
		}
		pi, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pi)
	}
	return out, nil
}

// packageDirs walks the module tree for directories containing Go files,
// skipping testdata, hidden dirs, and nested modules.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// matchesAny reports whether the root-relative package dir matches any of
// the ./...-style patterns. Nil patterns means match everything.
func matchesAny(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if rel == pat || (pat == "." && rel == ".") {
			return true
		}
	}
	return false
}
