package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"arbd/internal/wire"
)

// TestManyClientsSeqIntegrity drives 16+ concurrent clients through
// GPS→Frame round-trips at the wire level and asserts the reply stream:
// every frame request is answered, replies carry the request's Seq in
// order (no drops, no misordering), and each connection is pinned to one
// distinct session.
func TestManyClientsSeqIntegrity(t *testing.T) {
	_, addr := startServer(t)
	const clients = 16
	const rounds = 25

	sessionCh := make(chan uint64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := runSeqClient(addr, c, rounds, sessionCh); err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(sessionCh)
	seen := make(map[uint64]bool)
	for id := range sessionCh {
		if seen[id] {
			t.Fatalf("session %d served two connections", id)
		}
		seen[id] = true
	}
	if len(seen) != clients {
		t.Fatalf("saw %d distinct sessions, want %d", len(seen), clients)
	}
}

// runSeqClient speaks the wire protocol directly so the test can observe
// raw envelope sequence numbers rather than the Client's matched replies.
func runSeqClient(addr string, id, rounds int, sessionCh chan<- uint64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)
	var seq uint64
	send := func(typ wire.MsgType, payload []byte) error {
		seq++
		if err := fw.WriteEnvelope(&wire.Envelope{Type: typ, Seq: seq, Payload: payload}); err != nil {
			return err
		}
		return fw.Flush()
	}

	var session uint64
	for r := 0; r < rounds; r++ {
		// GPS fix: one-way, no reply — the next reply on the wire must
		// still be for the frame request that follows.
		var b wire.Buffer
		b.Uvarint(uint64(time.Now().UnixNano()))
		b.Float64(center.Lat + float64(id)*1e-5)
		b.Float64(center.Lon)
		b.Float64(3)
		if err := send(wire.MsgSensorEvent, append([]byte{SensorGPS}, b.Bytes()...)); err != nil {
			return fmt.Errorf("round %d: gps: %w", r, err)
		}
		if err := send(wire.MsgFrameRequest, nil); err != nil {
			return fmt.Errorf("round %d: frame req: %w", r, err)
		}
		want := seq
		env, err := fr.ReadEnvelope()
		if err != nil {
			return fmt.Errorf("round %d: read: %w", r, err)
		}
		if env.Type == wire.MsgError {
			return fmt.Errorf("round %d: server error: %s", r, env.Payload)
		}
		if env.Type != wire.MsgAnnotations {
			return fmt.Errorf("round %d: reply type %v", r, env.Type)
		}
		if env.Seq != want {
			return fmt.Errorf("round %d: reply seq %d, want %d (dropped or misordered)", r, env.Seq, want)
		}
		if r == 0 {
			session = env.Session
			if session == 0 {
				return fmt.Errorf("round 0: zero session id")
			}
		} else if env.Session != session {
			return fmt.Errorf("round %d: session changed %d -> %d", r, session, env.Session)
		}
	}
	sessionCh <- session
	return nil
}
