// Introspection-plane wiring: each role builds an obs.Plane over its own
// registry, flight recorder, and live session/stream state. The plane is
// pull-only — handlers snapshot state on request — so wiring it costs the
// serving path nothing.
package server

import (
	"sort"
	"time"

	"arbd/internal/core"
	"arbd/internal/obs"
	"arbd/internal/wire"
)

// registerStream tracks a live subscription stream for /debug/arbd/streams.
func (e *Engine) registerStream(st *frameStream) {
	e.liveMu.Lock()
	e.live[st] = struct{}{}
	e.liveMu.Unlock()
}

func (e *Engine) unregisterStream(st *frameStream) {
	e.liveMu.Lock()
	delete(e.live, st)
	e.liveMu.Unlock()
}

// StreamSummaries snapshots the engine's live subscription streams, sorted
// by session ID.
func (e *Engine) StreamSummaries() []obs.StreamSummary {
	e.liveMu.Lock()
	out := make([]obs.StreamSummary, 0, len(e.live))
	for st := range e.live {
		out = append(out, obs.StreamSummary{
			Session:    st.session,
			IntervalMS: float64(st.interval) / float64(time.Millisecond),
			Delta:      st.delta,
			Pushes:     st.pushSeq.Load(),
			AckedSeq:   st.ackedSeq.Load(),
		})
	}
	e.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// sessionSummaries snapshots every live session on the platform, sorted by
// ID.
func sessionSummaries(p *core.Platform) []obs.SessionSummary {
	out := make([]obs.SessionSummary, 0, p.NumSessions())
	p.ForEachSession(func(s *core.Session) bool {
		st := s.Stats()
		out = append(out, obs.SessionSummary{
			ID:       s.ID,
			Frames:   st.Frames,
			Overruns: st.Overruns,
			Level:    st.Level.String(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// loadFn adapts a core.LoadSignal source to the plane's Load callback.
func loadFn(sig func() core.LoadSignal) func() (time.Duration, int64) {
	return func() (time.Duration, int64) {
		s := sig()
		return s.FlushLatency, s.Backlog
	}
}

// ObsPlane builds the standalone server's introspection plane.
func (s *Server) ObsPlane() *obs.Plane {
	return obs.NewPlane(obs.PlaneConfig{
		Role:     "standalone",
		Registry: s.eng.platform.Metrics(),
		Recorder: s.eng.rec,
		Sessions: func() []obs.SessionSummary { return sessionSummaries(s.eng.platform) },
		Streams:  s.eng.StreamSummaries,
		Load:     loadFn(s.eng.platform.LoadSignal),
	})
}

// ObsPlane builds the shard's introspection plane. Node carries the shard's
// ring member ID so scraped traces attribute to the right partition.
func (sh *Shard) ObsPlane() *obs.Plane {
	return obs.NewPlane(obs.PlaneConfig{
		Role:     "shard",
		Node:     sh.id,
		Registry: sh.eng.platform.Metrics(),
		Recorder: sh.eng.rec,
		Sessions: func() []obs.SessionSummary { return sessionSummaries(sh.eng.platform) },
		Streams:  sh.eng.StreamSummaries,
		Load:     loadFn(sh.load),
	})
}

// ObsPlane builds the router's introspection plane. The router owns no core
// sessions — its session list is the connected-client map, its streams the
// tracked subscriptions (interval/delta decoded from the replay payload),
// and its load the maximum any shard last reported.
func (r *Router) ObsPlane() *obs.Plane {
	return obs.NewPlane(obs.PlaneConfig{
		Role:     "router",
		Registry: r.reg,
		Recorder: r.rec,
		Sessions: r.clientSummaries,
		Streams:  r.subSummaries,
		Load: func() (time.Duration, int64) {
			var sig core.LoadSignal
			r.shardsMu.RLock()
			for _, ss := range r.shards {
				s := ss.loadSignal()
				if s.FlushLatency > sig.FlushLatency {
					sig.FlushLatency = s.FlushLatency
				}
				if s.Backlog > sig.Backlog {
					sig.Backlog = s.Backlog
				}
			}
			r.shardsMu.RUnlock()
			return sig.FlushLatency, sig.Backlog
		},
	})
}

// clientSummaries lists the router's connected client sessions (IDs only:
// frame counters live on the owning shard).
func (r *Router) clientSummaries() []obs.SessionSummary {
	r.sessMu.RLock()
	out := make([]obs.SessionSummary, 0, len(r.sessions))
	for id := range r.sessions {
		out = append(out, obs.SessionSummary{ID: id})
	}
	r.sessMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// subSummaries lists the router's tracked subscriptions with their
// client-visible (rebased) push progress.
func (r *Router) subSummaries() []obs.StreamSummary {
	r.subsMu.Lock()
	out := make([]obs.StreamSummary, 0, len(r.subs))
	for id, e := range r.subs {
		sum := obs.StreamSummary{Session: id, Pushes: e.last}
		if sub, err := wire.DecodeSubscribe(e.payload); err == nil {
			sum.IntervalMS = float64(pushInterval(sub)) / float64(time.Millisecond)
			sum.Delta = sub.Flags&wire.SubFlagDelta != 0
		}
		out = append(out, sum)
	}
	r.subsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}
