package server

import (
	"context"
	"net"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// TestDeltaStreamAckGapForcesKeyframe is the wire-level acceptance check for
// protocol v4 streaming: a delta subscription opens with a keyframe, settles
// into diff pushes that apply cleanly in sequence, and answers a
// WantKeyframe ack — the resync a client sends after a push gap — with a
// fresh keyframe instead of leaving the client decoding against a stale
// base forever.
func TestDeltaStreamAckGapForcesKeyframe(t *testing.T) {
	_, addr := startServer(t)
	rc := dialRaw(t, addr)
	peer := rc.hello(t, "raw-v4", wire.ProtoMax)
	if peer.Version < wire.ProtoV4 {
		t.Fatalf("server announced v%d, want >= v%d", peer.Version, wire.ProtoV4)
	}
	rc.sendGPS(t, 0, center)
	var sb wire.Buffer
	wire.EncodeSubscribeInto(&sb, wire.Subscribe{IntervalMS: 2, Budget: 16, Flags: wire.SubFlagDelta})
	subSeq := rc.send(t, wire.MsgSubscribe, 0, sb.Bytes())
	if env := rc.read(t); env.Type != wire.MsgAck || env.Seq != subSeq {
		t.Fatalf("subscribe reply = %v seq %d", env.Type, env.Seq)
	}

	env := rc.read(t)
	if env.Type != wire.MsgFrameDelta {
		t.Fatalf("first push type = %v, want MsgFrameDelta", env.Type)
	}
	if !core.FrameDeltaIsKeyframe(env.Payload) {
		t.Fatal("first push of a delta stream must be a keyframe")
	}
	base, err := core.ApplyFrameDelta(nil, env.Payload)
	if err != nil {
		t.Fatal(err)
	}
	last := env.Seq
	sawDiff := false
	for i := 0; i < 5; i++ {
		env = rc.read(t)
		if env.Type != wire.MsgFrameDelta {
			t.Fatalf("push %d: type %v", i, env.Type)
		}
		if env.Seq <= last {
			t.Fatalf("push seq went %d -> %d", last, env.Seq)
		}
		last = env.Seq
		if !core.FrameDeltaIsKeyframe(env.Payload) {
			sawDiff = true
		}
		if base, err = core.ApplyFrameDelta(base, env.Payload); err != nil {
			t.Fatalf("push %d: apply: %v", i, err)
		}
	}
	if !sawDiff {
		t.Fatal("no diff push among the first 5 — every push is a keyframe, deltas buy nothing")
	}

	// The resync path: a client that lost a push acks with WantKeyframe.
	// Pushes already queued server-side may still arrive as diffs; a
	// keyframe must follow promptly.
	var ab wire.Buffer
	wire.EncodeFrameAckInto(&ab, wire.FrameAck{AppliedSeq: last, WantKeyframe: true})
	rc.send(t, wire.MsgAck, 0, ab.Bytes())
	for i := 0; i < 32; i++ {
		env = rc.read(t)
		if env.Type != wire.MsgFrameDelta {
			t.Fatalf("post-ack push type = %v", env.Type)
		}
		if core.FrameDeltaIsKeyframe(env.Payload) {
			if _, err := core.ApplyFrameDelta(nil, env.Payload); err != nil {
				t.Fatalf("forced keyframe corrupt: %v", err)
			}
			return
		}
	}
	t.Fatal("no keyframe within 32 pushes of a WantKeyframe ack")
}

// TestV3PinnedClientStreamsFullFrames pins backward compatibility: a client
// capped at protocol v3 subscribes without the delta flag and keeps
// receiving decodable full-frame pushes from a v4 server, end to end
// through the public client API.
func TestV3PinnedClientStreamsFullFrames(t *testing.T) {
	_, addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(context.Background(), raw, DialOptions{MaxProto: wire.ProtoV3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(context.Background(),
		SubscribeOptions{Interval: 2 * time.Millisecond, Budget: 16})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		f, ok := <-ch
		if !ok {
			t.Fatalf("stream died after %d frames: %v", i, cl.StreamErr())
		}
		if len(f.Annotations) == 0 {
			t.Fatalf("frame %d: empty overlay", i)
		}
		if f.Seq <= last {
			t.Fatalf("frame seq went %d -> %d", last, f.Seq)
		}
		last = f.Seq
	}
}
