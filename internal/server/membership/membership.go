// Package membership is the control plane of the multi-node frontend: who
// the shards are, which epoch of that knowledge the data plane is acting
// on, and how the answer changes at runtime. The data plane (PRs 1-4)
// assumed a static shard set fixed at process start; this package makes
// the shard set a first-class, versioned object so routers can add and
// drain shards under live AR traffic — the elasticity the paper's
// scalability argument (§4.1, CloudRiDAR-style offload) takes for granted.
//
// The model is deliberately small:
//
//   - A View is an immutable epoch: a sorted member set plus the
//     rendezvous Ring built over it. Data-plane code holds a *View and
//     routes against it without locks.
//   - A Directory is the single mutable cell holding the current View.
//     Join/Leave build the next epoch and publish it atomically; readers
//     always see a complete epoch, never a half-applied change.
//   - Watch delivers views to subscribers with latest-wins coalescing:
//     a slow watcher skips intermediate epochs but always learns the
//     newest one, which is the only one that matters for routing.
//
// Admin mutations are single-writer by construction (the Directory
// serialises them), matching the deployment model: one router process
// owns placement; a future multi-router deployment shares a directory
// rather than electing writers per change.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"arbd/internal/core"
	"arbd/internal/wire"
)

// Member is one shard node in the membership.
type Member struct {
	// ID is the shard's stable identity; it survives address changes, so
	// session placement does too.
	ID uint64
	// Addr is the shard's backend listen address.
	Addr string
}

// Ring assigns sessions to shard members by rendezvous (highest-random-
// weight) hashing: for a session, every member's weight is a mix of the
// member's ID with the splitmix-mixed session ID — the same mix the
// in-process registry shards by — and the heaviest member owns the
// session. Rendezvous needs no virtual nodes and keeps the remap fraction
// minimal (1/n) when membership changes, which is exactly the property
// live shard join/drain leans on: only the sessions whose owner actually
// changed ever migrate.
type Ring struct {
	members []Member
}

// NewRing validates the membership and returns a ring. Members are sorted
// by ID so configs listing the same set in any order route identically.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("membership: ring needs at least one member")
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i := 1; i < len(ms); i++ {
		if ms[i].ID == ms[i-1].ID {
			return nil, fmt.Errorf("membership: duplicate ring member ID %d", ms[i].ID)
		}
	}
	return &Ring{members: ms}, nil
}

// Members returns a copy of the membership in ID order. It must be a copy:
// the ring is shared immutably across router goroutines (and across epochs
// via View), so handing out the internal slice would let any caller mutate
// live routing state under everyone else.
func (r *Ring) Members() []Member {
	return append([]Member(nil), r.members...)
}

// Len returns the member count without copying.
func (r *Ring) Len() int { return len(r.members) }

// Contains reports whether the ring has a member with the given ID.
func (r *Ring) Contains(id uint64) bool {
	for i := range r.members {
		if r.members[i].ID == id {
			return true
		}
	}
	return false
}

// Pick returns the member owning the session ID. Deterministic: every
// router with the same membership maps a session to the same shard, which
// is what makes session affinity hold without coordination.
func (r *Ring) Pick(sessionID uint64) Member {
	key := core.MixSessionID(sessionID)
	best := 0
	bestW := rendezvousWeight(key, r.members[0].ID)
	for i := 1; i < len(r.members); i++ {
		if w := rendezvousWeight(key, r.members[i].ID); w > bestW {
			best, bestW = i, w
		}
	}
	return r.members[best]
}

// rendezvousWeight combines a mixed session key with a member identity.
// The member ID is mixed before xor so members 1,2,3... don't produce
// near-identical weights, then the combination is mixed again for
// avalanche.
func rendezvousWeight(key, memberID uint64) uint64 {
	return core.MixSessionID(key ^ core.MixSessionID(memberID))
}

// View is one immutable membership epoch: the member set and the ring
// built over it. Data-plane code loads a *View once per decision and
// routes against it lock-free; a concurrent epoch bump produces a new
// View rather than mutating this one.
type View struct {
	// Epoch increases by exactly one per membership change. Two nodes
	// comparing epochs therefore know not just who is newer but how many
	// changes apart they are.
	Epoch uint64
	ring  *Ring
}

// Ring returns the epoch's placement ring.
func (v *View) Ring() *Ring { return v.ring }

// Members returns a copy of the epoch's member set in ID order.
func (v *View) Members() []Member { return v.ring.Members() }

// Directory is the single-writer membership cell: it owns the current
// View and publishes a new epoch on every Join/Leave. Reads are an atomic
// pointer load; mutations serialise on the directory's lock, making admin
// operations single-writer without the callers coordinating.
type Directory struct {
	mu   sync.Mutex
	cur  atomic.Pointer[View]
	next uint64 // next watcher key

	watchers map[uint64]chan *View
}

// NewDirectory returns a directory at epoch 1 over the initial members.
func NewDirectory(members []Member) (*Directory, error) {
	ring, err := NewRing(members)
	if err != nil {
		return nil, err
	}
	d := &Directory{watchers: make(map[uint64]chan *View)}
	d.cur.Store(&View{Epoch: 1, ring: ring})
	return d, nil
}

// View returns the current epoch. The result is immutable and safe to
// hold across the caller's whole routing decision.
func (d *Directory) View() *View { return d.cur.Load() }

// Join adds a member and publishes the next epoch. It fails if the ID is
// already present — member identity is the unit of placement, so reusing
// a live ID would silently split one shard's sessions across two nodes.
func (d *Directory) Join(m Member) (*View, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.cur.Load()
	if old.ring.Contains(m.ID) {
		return nil, fmt.Errorf("membership: member %d already present at epoch %d", m.ID, old.Epoch)
	}
	ring, err := NewRing(append(old.ring.Members(), m))
	if err != nil {
		return nil, err
	}
	return d.publishLocked(&View{Epoch: old.Epoch + 1, ring: ring}), nil
}

// Leave removes a member and publishes the next epoch. The last member
// cannot leave: an empty ring routes nothing, and the error is clearer at
// the admin boundary than a nil-member panic deep in the data plane.
func (d *Directory) Leave(id uint64) (*View, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.cur.Load()
	if !old.ring.Contains(id) {
		return nil, fmt.Errorf("membership: member %d not present at epoch %d", id, old.Epoch)
	}
	members := old.ring.Members()
	if len(members) == 1 {
		return nil, fmt.Errorf("membership: refusing to remove the last member %d", id)
	}
	kept := members[:0]
	for _, m := range members {
		if m.ID != id {
			kept = append(kept, m)
		}
	}
	ring, err := NewRing(kept)
	if err != nil {
		return nil, err
	}
	return d.publishLocked(&View{Epoch: old.Epoch + 1, ring: ring}), nil
}

// publishLocked stores the new view and notifies watchers; callers hold mu.
func (d *Directory) publishLocked(v *View) *View {
	d.cur.Store(v)
	for _, ch := range d.watchers {
		// Latest-wins coalescing: if the watcher hasn't drained the last
		// view, replace it — stale epochs are worse than skipped ones.
		select {
		case ch <- v:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- v:
			default:
			}
		}
	}
	return v
}

// Watch subscribes to epoch changes. The channel is 1-buffered and
// coalescing (latest view wins); the current view is delivered
// immediately so a subscriber never starts blind. cancel unregisters and
// closes the channel.
func (d *Directory) Watch() (views <-chan *View, cancel func()) {
	ch := make(chan *View, 1)
	d.mu.Lock()
	key := d.next
	d.next++
	d.watchers[key] = ch
	ch <- d.cur.Load()
	d.mu.Unlock()
	return ch, func() {
		d.mu.Lock()
		if _, ok := d.watchers[key]; ok {
			delete(d.watchers, key)
			close(ch)
		}
		d.mu.Unlock()
	}
}

// EncodeMemberInto appends a member's wire form (uvarint ID, string addr)
// to buf — the payload of a MsgJoinShard envelope.
func EncodeMemberInto(buf *wire.Buffer, m Member) {
	buf.Uvarint(m.ID)
	buf.String(m.Addr)
}

// DecodeMember parses a member payload.
func DecodeMember(p []byte) (Member, error) {
	r := wire.NewReader(p)
	var m Member
	var err error
	if m.ID, err = r.Uvarint(); err != nil {
		return m, r.Err(err, "member id")
	}
	if m.Addr, err = r.String(); err != nil {
		return m, r.Err(err, "member addr")
	}
	return m, nil
}

// EncodeViewInto appends a membership view's wire form (uvarint epoch,
// uvarint count, then each member) to buf — the payload of a
// MsgMembership envelope.
func EncodeViewInto(buf *wire.Buffer, v *View) {
	buf.Uvarint(v.Epoch)
	members := v.ring.members // internal read: no copy for the encoder
	buf.Uvarint(uint64(len(members)))
	for _, m := range members {
		EncodeMemberInto(buf, m)
	}
}

// DecodedView is the wire-level form of a membership epoch, for peers
// (admin clients, future routers sharing a directory) that consume
// announcements without building a routing ring.
type DecodedView struct {
	Epoch   uint64
	Members []Member
}

// DecodeView parses a membership payload.
func DecodeView(p []byte) (DecodedView, error) {
	r := wire.NewReader(p)
	var v DecodedView
	var err error
	if v.Epoch, err = r.Uvarint(); err != nil {
		return v, r.Err(err, "membership epoch")
	}
	n, err := r.Uvarint()
	if err != nil {
		return v, r.Err(err, "membership count")
	}
	const maxMembers = 1 << 16 // a corrupt count must not pre-allocate GBs
	if n > maxMembers {
		return v, fmt.Errorf("membership: implausible member count %d", n)
	}
	v.Members = make([]Member, 0, n)
	for i := uint64(0); i < n; i++ {
		var m Member
		if m.ID, err = r.Uvarint(); err != nil {
			return v, r.Err(err, "member id")
		}
		if m.Addr, err = r.String(); err != nil {
			return v, r.Err(err, "member addr")
		}
		v.Members = append(v.Members, m)
	}
	return v, nil
}
