package membership

import (
	"fmt"
	"testing"

	"arbd/internal/wire"
)

func members(n int) []Member {
	ms := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, Member{ID: uint64(i + 1), Addr: fmt.Sprintf("10.0.0.%d:7700", i+1)})
	}
	return ms
}

// TestRingMembersReturnsCopy pins the aliasing fix: the slice Members()
// returns must not be the ring's own storage. Before the fix a caller
// could overwrite live membership (and therefore routing) by mutating the
// returned slice.
func TestRingMembersReturnsCopy(t *testing.T) {
	r, err := NewRing(members(3))
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	got[0] = Member{ID: 999, Addr: "evil"}
	got = got[:1]
	_ = got
	again := r.Members()
	if len(again) != 3 {
		t.Fatalf("membership length changed to %d after caller truncated the returned slice", len(again))
	}
	if again[0].ID != 1 || again[0].Addr != "10.0.0.1:7700" {
		t.Fatalf("membership mutated through the returned slice: %+v", again[0])
	}
	// Placement must be unaffected too.
	if !r.Contains(1) || r.Contains(999) {
		t.Fatal("ring contents changed through a Members() caller")
	}
}

// TestRingRemapMinimality is the property the whole migration design leans
// on: adding or removing one of N members remaps about 1/N of sessions,
// and never remaps a session whose owner survived the change.
func TestRingRemapMinimality(t *testing.T) {
	const sessions = 16384
	for _, n := range []int{2, 3, 4, 8, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			base, err := NewRing(members(n))
			if err != nil {
				t.Fatal(err)
			}

			// Add one member: every remapped session must move TO the new
			// member (nobody else gained anything), and the remap fraction
			// must be ≈ 1/(n+1).
			added := Member{ID: uint64(n + 100), Addr: "new"}
			grown, err := NewRing(append(base.Members(), added))
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for id := uint64(1); id <= sessions; id++ {
				before, after := base.Pick(id), grown.Pick(id)
				if before.ID == after.ID {
					continue
				}
				moved++
				if after.ID != added.ID {
					t.Fatalf("session %d moved %d→%d on join though both owners survived", id, before.ID, after.ID)
				}
			}
			expect := sessions / (n + 1)
			if moved < expect/2 || moved > expect*2 {
				t.Fatalf("join remapped %d of %d sessions, want ≈%d (1/%d)", moved, sessions, expect, n+1)
			}

			// Remove one member: only that member's sessions move, and the
			// remap fraction is its ownership share ≈ 1/n.
			if n < 2 {
				return
			}
			victim := base.Members()[n-1]
			var kept []Member
			for _, m := range base.Members() {
				if m.ID != victim.ID {
					kept = append(kept, m)
				}
			}
			shrunk, err := NewRing(kept)
			if err != nil {
				t.Fatal(err)
			}
			moved = 0
			for id := uint64(1); id <= sessions; id++ {
				before, after := base.Pick(id), shrunk.Pick(id)
				if before.ID != after.ID {
					moved++
					if before.ID != victim.ID {
						t.Fatalf("session %d moved %d→%d on leave though its owner survived", id, before.ID, after.ID)
					}
				}
			}
			expect = sessions / n
			if moved < expect/2 || moved > expect*2 {
				t.Fatalf("leave remapped %d of %d sessions, want ≈%d (1/%d)", moved, sessions, expect, n)
			}
		})
	}
}

func TestDirectoryEpochsAndMutations(t *testing.T) {
	d, err := NewDirectory(members(2))
	if err != nil {
		t.Fatal(err)
	}
	if v := d.View(); v.Epoch != 1 || v.Ring().Len() != 2 {
		t.Fatalf("initial view epoch=%d len=%d", v.Epoch, v.Ring().Len())
	}
	v, err := d.Join(Member{ID: 3, Addr: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 2 || !v.Ring().Contains(3) {
		t.Fatalf("join view epoch=%d members=%v", v.Epoch, v.Members())
	}
	if _, err := d.Join(Member{ID: 3, Addr: "dup"}); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if _, err := d.Leave(99); err == nil {
		t.Fatal("leave of unknown member accepted")
	}
	v, err = d.Leave(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 3 || v.Ring().Contains(1) {
		t.Fatalf("leave view epoch=%d members=%v", v.Epoch, v.Members())
	}
	if _, err = d.Leave(2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Leave(3); err == nil {
		t.Fatal("last member allowed to leave")
	}
	if got := d.View().Epoch; got != 4 {
		t.Fatalf("epoch after 3 mutations = %d, want 4", got)
	}
}

// TestDirectoryWatchCoalesces checks the watch contract: the current view
// arrives immediately, and a slow watcher skips intermediate epochs but
// always ends on the latest.
func TestDirectoryWatchCoalesces(t *testing.T) {
	d, err := NewDirectory(members(1))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := d.Watch()
	defer cancel()
	if v := <-ch; v.Epoch != 1 {
		t.Fatalf("first watched view epoch=%d, want 1 (current view delivered immediately)", v.Epoch)
	}
	// Without draining, push several epochs; the watcher must see the last.
	for i := 2; i <= 5; i++ {
		if _, err := d.Join(Member{ID: uint64(i), Addr: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	v := <-ch
	for {
		select {
		case nv, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed early")
			}
			if nv.Epoch < v.Epoch {
				t.Fatalf("watch went backwards: %d after %d", nv.Epoch, v.Epoch)
			}
			v = nv
			continue
		default:
		}
		break
	}
	if v.Epoch != 5 {
		t.Fatalf("latest watched epoch=%d, want 5", v.Epoch)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("watch channel not closed by cancel")
	}
	cancel() // idempotent
}

func TestMemberAndViewCodecsRoundTrip(t *testing.T) {
	var buf wire.Buffer
	m := Member{ID: 42, Addr: "127.0.0.1:7702"}
	EncodeMemberInto(&buf, m)
	got, err := DecodeMember(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("member round-trip = %+v, want %+v", got, m)
	}
	if _, err := DecodeMember(buf.Bytes()[:1]); err == nil {
		t.Fatal("truncated member accepted")
	}

	d, err := NewDirectory(members(3))
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Join(Member{ID: 9, Addr: "far:1"})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	EncodeViewInto(&buf, v)
	dv, err := DecodeView(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dv.Epoch != v.Epoch || len(dv.Members) != 4 {
		t.Fatalf("view round-trip epoch=%d members=%d", dv.Epoch, len(dv.Members))
	}
	for i, m := range v.Members() {
		if dv.Members[i] != m {
			t.Fatalf("member %d round-trip = %+v, want %+v", i, dv.Members[i], m)
		}
	}
	if _, err := DecodeView(buf.Bytes()[:2]); err == nil {
		t.Fatal("truncated view accepted")
	}
}
