package server

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/wire"
)

// Control payload discriminators inside MsgControl envelopes. An empty
// control payload is a ping (replied to with MsgAck); routers use
// CtrlEndSession to tell a shard a client disconnected.
const (
	// CtrlEndSession ends the envelope's session on the receiving shard:
	// buffered telemetry is flushed and the session leaves the registry.
	// One-way — no reply, since the client it belonged to is gone.
	CtrlEndSession uint8 = 1
)

// MsgMigrateSession reply status bytes (shard → router). The request
// direction needs no discriminator: an empty payload asks the shard to
// export the session, a non-empty payload is a snapshot to import.
const (
	// MigExported precedes the session snapshot in an export reply.
	MigExported uint8 = 1
	// MigImported acknowledges a successful snapshot import.
	MigImported uint8 = 2
	// MigFailed precedes UTF-8 error text in either direction's reply.
	MigFailed uint8 = 3
)

// backendPushQueue is the minimum outbox capacity on a shard's backend
// connection, which multiplexes many sessions' streams toward one router.
const backendPushQueue = 64

// ShardOptions tunes a shard node.
type ShardOptions struct {
	// Options carries the engine/scheduler tuning (same knobs as the
	// standalone server).
	Options
	// ID is the shard's ring member identity, announced in the hello
	// handshake so a router can detect a miswired address.
	ID uint64
	// Name labels the shard in handshakes and logs (default "shard-<ID>").
	Name string
	// LoadEvery is how often the shard pushes a MsgLoad envelope on every
	// backend connection (default 25 ms). Zero takes the default; negative
	// disables pushing (tests drive load reports by hand).
	LoadEvery time.Duration
	// Load overrides the reported load signal (default: the platform's
	// LoadSignal). Tests inject synthetic pressure here.
	Load func() core.LoadSignal
}

// Shard serves a partition of the session ID space to routers: one backend
// connection multiplexes many sessions, each envelope resolved to its
// session by ID (the router assigns IDs and owns placement). Frame requests
// run on the engine's scheduler and reply asynchronously, so one slow frame
// does not head-of-line-block the other sessions on the connection; the
// shard also pushes its LoadSignal periodically so routers shed for this
// shard's pressure before spending a forward hop.
type Shard struct {
	eng       *Engine
	cs        *connServer
	logger    *log.Logger
	id        uint64
	name      string
	maxProto  uint32
	loadEvery time.Duration
	load      func() core.LoadSignal
}

// NewShard returns a shard node over the platform (not yet listening).
func NewShard(p *core.Platform, logger *log.Logger, opts ShardOptions) *Shard {
	if logger == nil {
		logger = log.Default()
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("shard-%d", opts.ID)
	}
	if opts.LoadEvery == 0 {
		opts.LoadEvery = 25 * time.Millisecond
	}
	if opts.Load == nil {
		opts.Load = p.LoadSignal
	}
	if opts.MaxProto == 0 {
		opts.MaxProto = wire.ProtoMax
	}
	sh := &Shard{
		eng:       NewEngine(p, opts.Options),
		logger:    logger,
		id:        opts.ID,
		name:      opts.Name,
		maxProto:  opts.MaxProto,
		loadEvery: opts.LoadEvery,
		load:      opts.Load,
	}
	sh.cs = newConnServer(logger, sh.serveConn)
	return sh
}

// Engine exposes the shard's frame-serving engine.
func (sh *Shard) Engine() *Engine { return sh.eng }

// ID returns the shard's ring member identity.
func (sh *Shard) ID() uint64 { return sh.id }

// Listen binds addr and starts accepting backend connections, returning
// the bound address.
func (sh *Shard) Listen(addr string) (string, error) { return sh.cs.listen(addr) }

// Close stops accepting, closes backend connections, and waits for
// handlers. Idempotent.
func (sh *Shard) Close() error {
	err := sh.cs.close()
	sh.eng.Close()
	return err
}

func (sh *Shard) serveConn(conn net.Conn) {
	fr := wire.NewFrameReader(conn)
	w := &lockedWriter{fw: wire.NewFrameWriter(conn), conn: conn}

	// Handshake: the dialer (a router) speaks first; we answer with our
	// identity and protocol version. A deadline bounds how long a silent
	// dialer can hold the handler.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	env, err := fr.ReadEnvelope()
	if err != nil || env.Type != wire.MsgHello {
		sh.logger.Printf("shard %d: backend handshake failed from %v: %v", sh.id, conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	peer, proto, err := answerHello(w, env, sh.id, sh.name, sh.maxProto)
	if err != nil {
		sh.logger.Printf("shard %d: handshake with %v: %v", sh.id, conn.RemoteAddr(), err)
		return
	}

	// Push the load signal for the life of the connection so the router's
	// view of this shard's pressure stays fresh.
	stopLoad := make(chan struct{})
	defer close(stopLoad)
	if sh.loadEvery > 0 {
		go sh.loadLoop(w, stopLoad)
	}

	// owned tracks sessions created via this connection so a router crash
	// ends them instead of stranding them in the registry.
	owned := make(map[uint64]struct{})
	defer func() {
		for id := range owned {
			if err := sh.eng.platform.EndSession(id); err != nil {
				sh.logger.Printf("shard %d: ending session %d: %v", sh.id, id, err)
			}
		}
	}()
	_ = peer // identity is informational; any router may connect

	// inflight lets Close wait for outstanding frame callbacks before the
	// deferred session teardown runs.
	var inflight sync.WaitGroup
	defer inflight.Wait()

	// Streaming state: one stream per subscribed session, all multiplexed
	// onto this connection's drop-oldest outbox. Torn down (and waited for)
	// before the owned sessions end. The conn closes first so an outbox
	// writer blocked on a stalled router fails out instead of wedging the
	// teardown.
	var streams streamSet
	var ob *outbox
	defer func() {
		_ = conn.Close()
		streams.stopAll()
		if ob != nil {
			ob.close()
		}
	}()

	var in wire.Envelope
	// Resolved before the read loop: the lazily-built outbox must not pay
	// a registry lookup inside the per-envelope path.
	droppedCtr := sh.eng.sched.Metrics().Counter("server.stream.dropped")
	for {
		if err := fr.ReadEnvelopeReuse(&in); err != nil {
			return // router gone: deferred cleanup ends owned sessions
		}
		if in.Session == 0 {
			_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: in.Seq,
				Payload: []byte("server: shard envelope without session")})
			continue
		}
		// Envelope types that need no session are handled before the
		// registry is touched: an end-session for a session that never
		// sent traffic (client connected and left) must not build one
		// just to tear it down, and junk types must not leak registrations.
		if in.Type == wire.MsgControl && len(in.Payload) > 0 && in.Payload[0] == CtrlEndSession {
			if _, live := owned[in.Session]; live {
				delete(owned, in.Session)
				streams.remove(in.Session) // the stream must not outlive its session
				if err := sh.eng.platform.EndSession(in.Session); err != nil {
					sh.logger.Printf("shard %d: ending session %d: %v", sh.id, in.Session, err)
				}
			}
			continue // one-way: the client is already gone
		}
		if in.Type == wire.MsgMigrateSession {
			// Live migration (protocol v3). Export: freeze the session's
			// stream, purge its queued pushes, snapshot, detach, reply.
			// Import: rebuild the session from the snapshot and own it.
			migFail := func(msg string) {
				var buf wire.Buffer
				buf.Byte(MigFailed)
				buf.Append([]byte(msg))
				_ = w.write(&wire.Envelope{Type: wire.MsgMigrateSession, Seq: in.Seq,
					Session: in.Session, Payload: buf.Bytes()})
			}
			if proto < wire.ProtoV3 {
				migFail((&wire.VersionError{Local: proto, Remote: proto, Need: wire.ProtoV3}).Error())
				continue
			}
			if len(in.Payload) == 0 { // export request
				_, live := owned[in.Session]
				sess, ok := sh.eng.platform.Session(in.Session)
				if !live || !ok {
					// The session never reached this shard (client connected
					// but sent nothing yet) or already ended: nothing to
					// move. An empty export tells the router to re-home the
					// session with fresh state instead of failing the drain.
					_ = w.write(&wire.Envelope{Type: wire.MsgMigrateSession, Seq: in.Seq,
						Session: in.Session, Payload: []byte{MigExported}})
					continue
				}
				// Stop the stream first: stopStream waits out the in-flight
				// frame, so its push is enqueued (and then purged) before
				// the snapshot is taken. Pipelined MsgFrameRequests still
				// queued on the scheduler are NOT waited for: they hold no
				// sensor state (that was applied inline, above, in arrival
				// order), and EncodeSnapshotInto serialises with a running
				// frame via the session lock — a queued one just replies
				// after the snapshot, its frames/overruns counter bump
				// staying on this side. Waiting would couple the export to
				// every other session's queue depth for a cosmetic counter.
				streams.remove(in.Session)
				if ob != nil {
					ob.purge(in.Session)
				}
				var buf wire.Buffer
				buf.Byte(MigExported)
				sess.EncodeSnapshotInto(&buf)
				delete(owned, in.Session)
				sh.eng.platform.DetachSession(in.Session)
				_ = w.write(&wire.Envelope{Type: wire.MsgMigrateSession, Seq: in.Seq,
					Session: in.Session, Payload: buf.Bytes()})
				continue
			}
			// Import request: the payload is the snapshot.
			if _, err := sh.eng.platform.RestoreSession(in.Payload); err != nil {
				migFail(err.Error())
				continue
			}
			owned[in.Session] = struct{}{}
			_ = w.write(&wire.Envelope{Type: wire.MsgMigrateSession, Seq: in.Seq,
				Session: in.Session, Payload: []byte{MigImported}})
			continue
		}
		if in.Type == wire.MsgAck {
			// Client frame-ack forwarded by the router (protocol v4):
			// fire-and-forget, and resolved before SessionOrNew — an ack
			// racing its stream's teardown must not materialise a session.
			if a, err := wire.DecodeFrameAck(in.Payload); err == nil {
				streams.ack(in.Session, a)
			}
			continue
		}
		switch in.Type {
		case wire.MsgSensorEvent, wire.MsgFrameRequest, wire.MsgControl:
		case wire.MsgSubscribe, wire.MsgUnsubscribe:
			if proto < wire.ProtoV2 {
				verr := &wire.VersionError{Local: proto, Remote: proto, Need: wire.ProtoV2}
				_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: in.Seq, Session: in.Session,
					Payload: []byte(verr.Error())})
				continue
			}
		default:
			_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: in.Seq, Session: in.Session,
				Payload: []byte(fmt.Sprintf("server: unsupported message %v", in.Type))})
			continue
		}
		if in.Type == wire.MsgUnsubscribe {
			// Resolved before SessionOrNew: unsubscribing a session that
			// never subscribed must not materialise one.
			streams.remove(in.Session)
			_ = w.write(&wire.Envelope{Type: wire.MsgAck, Seq: in.Seq, Session: in.Session})
			continue
		}
		sess := sh.eng.platform.SessionOrNew(in.Session)
		owned[in.Session] = struct{}{}
		switch in.Type {
		case wire.MsgSensorEvent:
			if err := applySensor(sess, in.Payload); err != nil {
				_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: in.Seq, Session: in.Session,
					Payload: []byte(err.Error())})
			}
		case wire.MsgFrameRequest:
			sh.submitFrame(w, &inflight, sess, in.Seq)
		case wire.MsgSubscribe:
			sub, err := wire.DecodeSubscribe(in.Payload)
			if err != nil {
				_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: in.Seq, Session: in.Session,
					Payload: []byte(err.Error())})
				continue
			}
			if ob == nil {
				// A backend connection multiplexes many sessions' streams:
				// the floor keeps one session's tiny budget from bounding
				// everyone; per-subscription budgets only ever raise it.
				capacity := pushBudget(sub)
				if capacity < backendPushQueue {
					capacity = backendPushQueue
				}
				ob = newOutbox(w, capacity, droppedCtr, streams.forceKeyframe)
			}
			if w.write(&wire.Envelope{Type: wire.MsgAck, Seq: in.Seq, Session: in.Session}) != nil {
				return
			}
			// The flag rides the forwarded Subscribe payload: only a v4
			// client sets it, and the router-shard link must also speak v4
			// for MsgFrameDelta envelopes to be legal on this connection.
			delta := proto >= wire.ProtoV4 && sub.Flags&wire.SubFlagDelta != 0
			streams.add(in.Session, sh.eng.startStream(sess, sub, ob, delta))
		case wire.MsgControl:
			_ = w.write(&wire.Envelope{Type: wire.MsgAck, Seq: in.Seq, Session: in.Session})
		}
	}
}

// submitFrame schedules one frame and replies from the worker callback —
// the connection read loop keeps draining other sessions' envelopes while
// the frame renders. The reply is encoded inside the visit callback, under
// the session lock: a client pipelining a second frame request for the
// same session re-enters Session.Frame on another worker, and without the
// lock that would overwrite the scratch buffers the encoder is reading.
// visit and done run sequentially on one worker goroutine, so the captured
// reply/buffer need no further synchronisation.
func (sh *Shard) submitFrame(w *lockedWriter, inflight *sync.WaitGroup, sess *core.Session, seq uint64) {
	id := sess.ID
	inflight.Add(1)
	var reply wire.Envelope
	var pooled *wire.Buffer
	err := sh.eng.sched.SubmitVisit(sess, func(f *core.Frame) {
		pooled = sh.eng.encodeFrameReply(&reply, id, seq, f)
	}, func(err error) {
		defer inflight.Done()
		if err != nil {
			_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: seq, Session: id, Payload: []byte(err.Error())})
			return
		}
		_ = w.write(&reply)
		sh.eng.release(pooled)
	})
	if err != nil {
		inflight.Done()
		_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: seq, Session: id, Payload: []byte(err.Error())})
	}
}

// loadLoop pushes the shard's LoadSignal on the connection until it closes.
func (sh *Shard) loadLoop(w *lockedWriter, stop <-chan struct{}) {
	ticker := time.NewTicker(sh.loadEvery)
	defer ticker.Stop()
	var buf wire.Buffer
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			buf.Reset()
			core.EncodeLoadSignalInto(&buf, sh.load())
			if err := w.write(&wire.Envelope{Type: wire.MsgLoad, Payload: buf.Bytes()}); err != nil {
				return
			}
		}
	}
}
