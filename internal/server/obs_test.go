package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/obs"
	"arbd/internal/sensor"
)

// scrape drives one request through a plane's mux without a listener.
func scrape(t *testing.T, p *obs.Plane, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	p.Mux().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// promify mirrors the exporter's name sanitation, so the test can assert
// registry coverage without reaching into the obs package's internals.
func promify(name string) string {
	var b strings.Builder
	b.WriteString("arbd_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

type slowResponse struct {
	Role        string          `json:"role"`
	Node        uint64          `json:"node"`
	ThresholdUS float64         `json:"threshold_us"`
	Records     []obs.TraceJSON `json:"records"`
}

// TestObsSlowFrameTraceE2E runs a streaming client through a router over two
// one-worker shards, wedges the owning shard's scheduler with a deliberately
// slow job, and asserts the queued-behind frame surfaces in the shard's
// /debug/arbd/slow with a queue-blamed stage breakdown whose span sum matches
// the observed latency — while /metrics on both the shard and the router
// expose every registry instrument in well-formed Prometheus text format.
func TestObsSlowFrameTraceE2E(t *testing.T) {
	tc := startCluster(t, 2, func(i int, o *ShardOptions) {
		// One render worker per shard: a single wedged job stalls the queue,
		// which is exactly the latency the recorder must attribute.
		o.Scheduler.Workers = 1
	}, RouterOptions{Deadline: -1})

	cl, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Keep the client reading so pushes flow and write completions settle
	// flights.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range frames {
		}
	}()

	// Wait for the first pushes, then locate the session's owning shard.
	deadline := time.Now().Add(10 * time.Second)
	var sess *core.Session
	owner := -1
	for time.Now().Before(deadline) && sess == nil {
		for i, sh := range tc.shards {
			sh.Engine().Platform().ForEachSession(func(s *core.Session) bool {
				sess, owner = s, i
				return false
			})
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sess == nil {
		t.Fatal("no session appeared on any shard")
	}
	sh := tc.shards[owner]
	plane := sh.ObsPlane()

	// Give the recorder a few settled frames so the rolling threshold warms,
	// then wedge the single worker: the next paced frame queues behind the
	// sleep and crosses the slow threshold by an order of magnitude.
	time.Sleep(50 * time.Millisecond)
	const wedge = 80 * time.Millisecond
	if err := sh.Engine().sched.QueueVisit(sess,
		func(*core.Frame) { time.Sleep(wedge) },
		func(error) {}); err != nil {
		t.Fatal(err)
	}

	// Scrape until the queue-blamed trace lands in the exemplar store.
	var trace *obs.TraceJSON
	for time.Now().Before(deadline) && trace == nil {
		var resp slowResponse
		if err := json.Unmarshal(scrape(t, plane, "/debug/arbd/slow?n=64").Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Role != "shard" || resp.Node != uint64(sh.ID()) {
			t.Fatalf("slow response identity = %s/%d", resp.Role, resp.Node)
		}
		for i := range resp.Records {
			r := &resp.Records[i]
			if r.Session == sess.ID && r.Blame == "queue" && r.Spans["queue"] >= 20_000 {
				trace = r
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if trace == nil {
		t.Fatal("wedged frame never surfaced as a queue-blamed slow trace")
	}
	if trace.Seq == 0 {
		t.Fatal("slow trace carries no push seq to join on")
	}
	if trace.Dropped || trace.Shed || trace.RenderError {
		t.Fatalf("slow trace flags = %+v, want a delivered frame", trace)
	}
	var sum float64
	for _, v := range trace.Spans {
		sum += v
	}
	// The recorder's contract: a delivered frame's span sum equals its total
	// (the trace closes at the write completion that defines it).
	if diff := sum - trace.TotalUS; diff > trace.TotalUS*0.01+1 || diff < -(trace.TotalUS*0.01+1) {
		t.Fatalf("span sum %.0fµs vs total %.0fµs — stages do not account for the latency", sum, trace.TotalUS)
	}
	if trace.TotalUS < 20_000 {
		t.Fatalf("slow trace total %.0fµs, want >= 20ms (the wedge)", trace.TotalUS)
	}

	// The shard's /metrics must expose every registry instrument, well
	// formed.
	mw := scrape(t, plane, "/metrics")
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body := mw.Body.String()
	for _, name := range sh.Engine().Platform().Metrics().Names() {
		if !strings.Contains(body, promify(name)) {
			t.Fatalf("shard /metrics missing instrument %q", name)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if sp := strings.LastIndex(line, " "); sp <= 0 || !strings.HasPrefix(line, "arbd_") {
			t.Fatalf("malformed /metrics line: %q", line)
		}
	}

	// The shard's session and stream summaries cover the live subscription.
	var sessions struct {
		Sessions []obs.SessionSummary `json:"sessions"`
	}
	if err := json.Unmarshal(scrape(t, plane, "/debug/arbd/sessions").Body.Bytes(), &sessions); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sessions.Sessions {
		found = found || s.ID == sess.ID
	}
	if !found {
		t.Fatalf("session %d missing from /debug/arbd/sessions: %+v", sess.ID, sessions)
	}
	var streams struct {
		Streams []obs.StreamSummary `json:"streams"`
	}
	if err := json.Unmarshal(scrape(t, plane, "/debug/arbd/streams").Body.Bytes(), &streams); err != nil {
		t.Fatal(err)
	}
	if len(streams.Streams) != 1 || streams.Streams[0].Session != sess.ID || streams.Streams[0].Pushes == 0 {
		t.Fatalf("shard stream summaries = %+v", streams)
	}

	// The router's plane serves the same surfaces for its own half: every
	// router instrument exported, and its slow store holds traces joinable
	// on the same (session, seq) space (router flights carry rebased seqs).
	rplane := tc.router.ObsPlane()
	rbody := scrape(t, rplane, "/metrics").Body.String()
	for _, name := range tc.router.Metrics().Names() {
		if !strings.Contains(rbody, promify(name)) {
			t.Fatalf("router /metrics missing instrument %q", name)
		}
	}
	var rslow slowResponse
	if err := json.Unmarshal(scrape(t, rplane, "/debug/arbd/slow").Body.Bytes(), &rslow); err != nil {
		t.Fatal(err)
	}
	if rslow.Role != "router" {
		t.Fatalf("router slow role = %q", rslow.Role)
	}
	for _, r := range rslow.Records {
		if r.Session == sess.ID && r.Seq == trace.Seq {
			// Cross-node join confirmed: both halves of this push's journey
			// are addressable by (session, seq).
			break
		}
	}

	if err := cl.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	_ = cl.Close()
	<-drained
}
