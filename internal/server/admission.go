package server

import (
	"time"

	"arbd/internal/core"
)

// Admission defaults, shared by every role so the standalone scheduler, the
// shard, and the router tighten deadlines at the same pressure levels — the
// "same rule local or remote" invariant below depends on these having one
// source of truth.
const (
	// defaultFrameDeadline is generous: shedding should only trip under
	// overload, not on a transient queue blip.
	defaultFrameDeadline = 250 * time.Millisecond
	// defaultFlushLatencyRef and defaultBacklogRef are the signal levels
	// that alone halve the effective deadline.
	defaultFlushLatencyRef = 5 * time.Millisecond
	defaultBacklogRef      = 4096
)

// loadGate is the lag-aware admission rule shared by every role: it turns a
// backend LoadSignal into an effective queue-wait deadline. Pressure 1 —
// flush latency at flushLatencyRef, or backlog at backlogRef — halves the
// configured deadline; contributions add; the floor is deadline/16. The
// FrameScheduler applies it to its own platform's signal, the Router to
// each shard's MsgLoad-reported signal, so a frame is shed by the same rule
// whether the pressure is local or a forward hop away.
type loadGate struct {
	deadline        time.Duration
	flushLatencyRef time.Duration
	backlogRef      int64
}

// effective returns the admission deadline under sig. A non-positive
// configured deadline disables shedding and is returned unchanged.
func (g loadGate) effective(sig core.LoadSignal) time.Duration {
	d := g.deadline
	if d <= 0 {
		return d
	}
	pressure := float64(sig.FlushLatency)/float64(g.flushLatencyRef) +
		float64(sig.Backlog)/float64(g.backlogRef)
	if pressure <= 0 {
		return d
	}
	eff := time.Duration(float64(d) / (1 + pressure))
	if floor := d / 16; eff < floor {
		eff = floor
	}
	return eff
}
