package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sensor"
)

// TestPooledFrameBuffersNoCrossTalk drives many concurrent connections
// through the pooled zero-copy response path and checks no response leaks
// another session's data: every annotation a client receives must anchor
// near that client's own reported position. Run under -race (CI does) this
// also proves pooled wire.Buffers never cross concurrent frame responses.
func TestPooledFrameBuffersNoCrossTalk(t *testing.T) {
	_, addr := startServer(t)
	const clients = 24
	const rounds = 15
	// Positions far enough apart that one client's query radius (250 m
	// default) cannot reach another's POIs.
	positions := make([]geo.Point, clients)
	for i := range positions {
		positions[i] = geo.Destination(center, float64(i*360/clients), 200+float64(i%5)*150)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			pos := positions[c]
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 3}); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				f, _, err := cl.RequestFrame()
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
				for _, a := range f.Annotations {
					if d := geo.DistanceMeters(pos, a.Anchor); d > 300 {
						errs <- fmt.Errorf("client %d round %d: annotation %d anchored %.0f m away — another session's frame?",
							c, r, a.ID, d)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
