package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/metrics"
	"arbd/internal/wire"
)

// Router errors.
var (
	// ErrRouterShed is returned to clients when the router sheds a frame
	// request before forwarding it: the target shard's reported load has
	// tightened admission below the age of that shard's oldest outstanding
	// frame, so forwarding would only render a stale overlay remotely.
	// The text embeds ErrFrameShed's so clients classifying sheds by the
	// exported error string treat local and remote sheds alike.
	ErrRouterShed = fmt.Errorf("%w (router: shard overloaded)", ErrFrameShed)
	// ErrShardDown is returned when the shard owning a session is not
	// connected.
	ErrShardDown = errors.New("server: shard connection down")
)

// RouterOptions tunes a router.
type RouterOptions struct {
	// Deadline is the base frame admission budget, tightened by each
	// shard's reported LoadSignal exactly as the FrameScheduler tightens
	// its own (see loadGate). Zero takes the 250 ms server default;
	// negative disables router-side shedding.
	Deadline time.Duration
	// FlushLatencyRef and BacklogRef normalise remote pressure (defaults
	// 5 ms and 4096 records, matching SchedulerConfig).
	FlushLatencyRef time.Duration
	BacklogRef      int64
	// DialTimeout bounds each backend dial + hello handshake (default 5 s).
	DialTimeout time.Duration
}

func (o *RouterOptions) defaults() {
	switch {
	case o.Deadline < 0:
		o.Deadline = 0
	case o.Deadline == 0:
		o.Deadline = defaultFrameDeadline
	}
	if o.FlushLatencyRef <= 0 {
		o.FlushLatencyRef = defaultFlushLatencyRef
	}
	if o.BacklogRef <= 0 {
		o.BacklogRef = defaultBacklogRef
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// Router owns client connections for a multi-node frontend: it speaks the
// same wire protocol as the standalone server, assigns each connection a
// session ID, places the session on a shard via the rendezvous ring, and
// forwards envelopes over persistent backend connections. Shards push
// MsgLoad; the router runs the standalone server's lag-aware admission
// against that remote pressure and sheds frame requests before wasting a
// forward hop on an overlay that would arrive stale.
type Router struct {
	cs     *connServer
	logger *log.Logger
	ring   *Ring
	opts   RouterOptions
	gate   loadGate
	reg    *metrics.Registry

	shards map[uint64]*routerShard // by member ID; immutable after Connect

	sessMu   sync.RWMutex
	sessions map[uint64]*routerClient
	nextSess atomic.Uint64

	connected bool
	closeOnce sync.Once
	closeErr  error
}

// routerShard is one persistent backend connection plus the state admission
// needs: the shard's last reported load and the FIFO of outstanding frame
// requests.
type routerShard struct {
	member Member
	conn   net.Conn
	w      lockedWriter
	// frForReader hands the handshake's frame reader to the reader
	// goroutine; only shardReader touches it after Connect.
	frForReader *wire.FrameReader

	loadMu sync.RWMutex
	load   core.LoadSignal

	pend pendingFrames

	down atomic.Bool
}

func (ss *routerShard) setLoad(sig core.LoadSignal) {
	ss.loadMu.Lock()
	ss.load = sig
	ss.loadMu.Unlock()
}

func (ss *routerShard) loadSignal() core.LoadSignal {
	ss.loadMu.RLock()
	defer ss.loadMu.RUnlock()
	return ss.load
}

// forward writes one envelope to the shard.
func (ss *routerShard) forward(env *wire.Envelope) error {
	if ss.down.Load() {
		return ErrShardDown
	}
	return ss.w.write(env)
}

// routerClient is one client connection's write side; replies arrive from
// shard reader goroutines while local sheds come from the client's own
// read loop, so writes are serialised.
type routerClient struct {
	lockedWriter
}

// NewRouter returns a router over the membership (not yet connected or
// listening). reg may be nil.
func NewRouter(members []Member, logger *log.Logger, reg *metrics.Registry, opts RouterOptions) (*Router, error) {
	ring, err := NewRing(members)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.Default()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	opts.defaults()
	r := &Router{
		logger:   logger,
		ring:     ring,
		opts:     opts,
		gate:     loadGate{deadline: opts.Deadline, flushLatencyRef: opts.FlushLatencyRef, backlogRef: opts.BacklogRef},
		reg:      reg,
		shards:   make(map[uint64]*routerShard),
		sessions: make(map[uint64]*routerClient),
	}
	r.cs = newConnServer(logger, r.serveClient)
	return r, nil
}

// Metrics returns the registry the router records into (router.frames.shed,
// router.replies.orphaned, router.forward.errors).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Ring exposes the router's placement ring.
func (r *Router) Ring() *Ring { return r.ring }

// Connect dials every shard and completes the hello handshake, verifying
// each peer announces the member ID the config claims. It must succeed
// before Listen.
func (r *Router) Connect() error {
	for _, m := range r.ring.Members() {
		ss, err := r.dialShard(m)
		if err != nil {
			// Close what already connected; Connect is all-or-nothing.
			for _, c := range r.shards {
				_ = c.conn.Close()
			}
			return err
		}
		r.shards[m.ID] = ss
		go r.shardReader(ss)
	}
	r.connected = true
	return nil
}

func (r *Router) dialShard(m Member) (*routerShard, error) {
	conn, err := net.DialTimeout("tcp", m.Addr, r.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dialing shard %d at %s: %w", m.ID, m.Addr, err)
	}
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)

	_ = conn.SetDeadline(time.Now().Add(r.opts.DialTimeout))
	var buf wire.Buffer
	wire.EncodeHelloInto(&buf, wire.Hello{Name: "router"})
	if err := fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgHello, Payload: buf.Bytes()}); err == nil {
		err = fw.Flush()
	}
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: hello to shard %d: %w", m.ID, err)
	}
	env, err := fr.ReadEnvelope()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: hello from shard %d: %w", m.ID, err)
	}
	if env.Type != wire.MsgHello {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard %d answered hello with %v", m.ID, env.Type)
	}
	hello, err := wire.DecodeHello(env.Payload)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard %d hello: %w", m.ID, err)
	}
	if hello.ID != m.ID {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard at %s announced ID %d, config says %d — membership miswired",
			m.Addr, hello.ID, m.ID)
	}
	_ = conn.SetDeadline(time.Time{})
	ss := &routerShard{member: m, conn: conn, w: lockedWriter{fw: fw}}
	ss.pend.init()
	// The reader owns fr from here; dialShard must not read again.
	ss.frForReader = fr
	return ss, nil
}

// shardReader drains one shard connection: load reports update admission,
// everything else routes back to the owning client by session ID.
func (r *Router) shardReader(ss *routerShard) {
	fr := ss.frForReader
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			ss.down.Store(true)
			// Outstanding frames will never be answered: drop them so a
			// stale head cannot keep admission shedding (the down flag
			// routes new requests to ErrShardDown, which names the real
			// failure, instead of a misleading overload shed).
			ss.pend.reset()
			select {
			case <-r.cs.done:
			default:
				r.logger.Printf("router: shard %d connection lost: %v", ss.member.ID, err)
			}
			return
		}
		switch env.Type {
		case wire.MsgLoad:
			if sig, err := core.DecodeLoadSignal(env.Payload); err == nil {
				ss.setLoad(sig)
			}
		case wire.MsgAnnotations, wire.MsgError:
			ss.pend.done(env.Session, env.Seq)
			r.deliver(&env)
		default:
			r.deliver(&env)
		}
	}
}

// deliver routes one shard reply to its client. The payload aliases the
// shard reader's buffer, so the write happens before the next shard read —
// which is exactly the calling sequence.
func (r *Router) deliver(env *wire.Envelope) {
	r.sessMu.RLock()
	cl := r.sessions[env.Session]
	r.sessMu.RUnlock()
	if cl == nil {
		// Client went away while the reply was in flight.
		r.reg.Counter("router.replies.orphaned").Inc()
		return
	}
	_ = cl.write(env)
}

// Listen binds addr and starts accepting client connections. Connect must
// have succeeded first.
func (r *Router) Listen(addr string) (string, error) {
	if !r.connected {
		return "", errors.New("server: router listening before Connect")
	}
	return r.cs.listen(addr)
}

// Close stops accepting clients, closes client and backend connections,
// and waits for handlers. Idempotent.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.cs.close()
		for _, ss := range r.shards {
			_ = ss.conn.Close()
		}
	})
	return r.closeErr
}

// EffectiveDeadline reports the admission budget the router currently
// applies to frame requests bound for the given shard member.
func (r *Router) EffectiveDeadline(memberID uint64) time.Duration {
	ss := r.shards[memberID]
	if ss == nil {
		return r.opts.Deadline
	}
	return r.gate.effective(ss.loadSignal())
}

// serveClient speaks the standalone server's client protocol, with the
// frame work a forward hop away.
func (r *Router) serveClient(conn net.Conn) {
	id := r.nextSess.Add(1)
	ss := r.shards[r.ring.Pick(id).ID]
	cl := &routerClient{lockedWriter{fw: wire.NewFrameWriter(conn)}}
	r.sessMu.Lock()
	r.sessions[id] = cl
	r.sessMu.Unlock()
	defer func() {
		r.sessMu.Lock()
		delete(r.sessions, id)
		r.sessMu.Unlock()
		// Tell the shard the session is over so its registry doesn't grow
		// for the life of the backend connection.
		_ = ss.forward(&wire.Envelope{Type: wire.MsgControl, Session: id,
			Payload: []byte{CtrlEndSession}})
	}()

	fr := wire.NewFrameReader(conn)
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return // EOF or broken pipe: session over
		}
		env.Session = id // the router owns placement; clients cannot choose
		if env.Type == wire.MsgControl {
			// Control payloads are router↔shard vocabulary (CtrlEndSession
			// tears a session down, silently). The client-facing protocol
			// treats any control as a ping, so strip the payload rather
			// than let a client envelope collide with an internal verb.
			env.Payload = nil
		}
		if env.Type == wire.MsgFrameRequest {
			if r.shedNow(ss) {
				r.reg.Counter("router.frames.shed").Inc()
				if cl.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: id,
					Payload: []byte(ErrRouterShed.Error())}) != nil {
					return
				}
				continue
			}
			ss.pend.add(id, env.Seq, time.Now())
		}
		if err := ss.forward(&env); err != nil {
			r.reg.Counter("router.forward.errors").Inc()
			if env.Type == wire.MsgFrameRequest {
				ss.pend.done(id, env.Seq)
			}
			// Surface the failure on request/reply traffic; sensor streams
			// are one-way so the client finds out on its next request.
			if env.Type == wire.MsgFrameRequest || env.Type == wire.MsgControl {
				if cl.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: id,
					Payload: []byte(ErrShardDown.Error())}) != nil {
					return
				}
			}
		}
	}
}

// shedNow applies lag-aware admission for one shard: the base deadline is
// tightened by the shard's reported load, and compared against the age of
// the shard's oldest outstanding frame request — if the shard hasn't kept
// up with what it already has within the effective budget, a new frame
// would wait at least as long, so shed it here instead of paying the hop.
func (r *Router) shedNow(ss *routerShard) bool {
	if ss.down.Load() {
		return false // let forward() report ErrShardDown, not a fake shed
	}
	d := r.gate.effective(ss.loadSignal())
	if d <= 0 {
		return false // shedding disabled
	}
	return ss.pend.headAge(time.Now()) > d
}

// pendKey identifies one outstanding frame request.
type pendKey struct {
	session, seq uint64
}

// pendingFrames tracks a shard's outstanding (forwarded, unanswered) frame
// requests so admission can measure how far behind the shard is: a FIFO of
// enqueue times plus a liveness map, with answered entries popped lazily
// from the head.
type pendingFrames struct {
	mu   sync.Mutex
	fifo []pendEntry
	live map[pendKey]struct{}
}

type pendEntry struct {
	key pendKey
	at  time.Time
}

func (p *pendingFrames) init() {
	p.live = make(map[pendKey]struct{})
}

func (p *pendingFrames) add(session, seq uint64, at time.Time) {
	k := pendKey{session, seq}
	p.mu.Lock()
	p.live[k] = struct{}{}
	p.fifo = append(p.fifo, pendEntry{key: k, at: at})
	p.mu.Unlock()
}

// done marks a reply received. Unknown keys (error replies to sensor
// envelopes, duplicate replies) are ignored. Compaction happens here as
// well as in headAge so the FIFO stays bounded by the outstanding count
// even when admission never reads it (shedding disabled, shard down).
func (p *pendingFrames) done(session, seq uint64) {
	p.mu.Lock()
	delete(p.live, pendKey{session, seq})
	p.compactLocked()
	p.mu.Unlock()
}

// reset discards all outstanding entries (the backing connection died; no
// reply is coming).
func (p *pendingFrames) reset() {
	p.mu.Lock()
	p.fifo = p.fifo[:0]
	clear(p.live)
	p.mu.Unlock()
}

// compactLocked pops answered entries off the FIFO head; callers hold mu.
func (p *pendingFrames) compactLocked() {
	i := 0
	for ; i < len(p.fifo); i++ {
		if _, ok := p.live[p.fifo[i].key]; ok {
			break
		}
	}
	if i > 0 {
		n := copy(p.fifo, p.fifo[i:])
		p.fifo = p.fifo[:n]
	}
}

// headAge returns how long the oldest still-outstanding frame request has
// waited (zero when nothing is outstanding).
func (p *pendingFrames) headAge(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compactLocked()
	if len(p.fifo) == 0 {
		return 0
	}
	return now.Sub(p.fifo[0].at)
}
