package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/metrics"
	"arbd/internal/obs"
	"arbd/internal/server/membership"
	"arbd/internal/wire"
)

// Router errors.
var (
	// ErrRouterShed is returned to clients when the router sheds a frame
	// request before forwarding it: the target shard's reported load has
	// tightened admission below the age of that shard's oldest outstanding
	// frame, so forwarding would only render a stale overlay remotely.
	// The text embeds ErrFrameShed's so clients classifying sheds by the
	// exported error string treat local and remote sheds alike.
	ErrRouterShed = fmt.Errorf("%w (router: shard overloaded)", ErrFrameShed)
	// ErrShardDown is returned when the shard owning a session is not
	// connected. With retry enabled it is surfaced to an in-flight stream
	// only after the reconnect budget is spent.
	ErrShardDown = errors.New("server: shard connection down")
)

// routerPushQueue is the drop-oldest bound on each client connection's push
// outbox: a client that stops reading loses its oldest frames, never stalls
// the shard reader that delivers everyone else's.
const routerPushQueue = 32

// RetryPolicy is the router's backend-reconnect budget: when a shard
// connection drops, the router redials with exponentially growing delays
// (Base, 2·Base, … capped at Max) until the connection is back or Attempts
// are spent — only then do that shard's in-flight streams fail with
// ErrShardDown.
type RetryPolicy struct {
	// Base is the delay before the first attempt (default 50 ms).
	Base time.Duration
	// Max caps the per-attempt delay (default 1 s).
	Max time.Duration
	// Attempts is the retry budget (default 6). Negative disables
	// reconnecting entirely: the first disconnect is final.
	Attempts int
}

func (p *RetryPolicy) defaults() {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Attempts == 0 {
		p.Attempts = 6
	}
}

// delay returns the backoff before the given 1-based attempt:
// Base·2^(attempt-1), capped at Max. Doubling step by step (bailing at the
// cap) keeps a huge attempt count from overflowing the shift.
func (p RetryPolicy) delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			return p.Max
		}
	}
	if d > p.Max {
		return p.Max
	}
	return d
}

// RouterOptions tunes a router.
type RouterOptions struct {
	// Deadline is the base frame admission budget, tightened by each
	// shard's reported LoadSignal exactly as the FrameScheduler tightens
	// its own (see loadGate). Zero takes the 250 ms server default;
	// negative disables router-side shedding.
	Deadline time.Duration
	// FlushLatencyRef and BacklogRef normalise remote pressure (defaults
	// 5 ms and 4096 records, matching SchedulerConfig).
	FlushLatencyRef time.Duration
	BacklogRef      int64
	// DialTimeout bounds each backend dial + hello handshake (default 5 s).
	DialTimeout time.Duration
	// Retry is the backend reconnect budget (see RetryPolicy).
	Retry RetryPolicy
	// MaxProto caps the protocol version negotiated with clients (default
	// wire.ProtoMax). Shard connections always negotiate the router's full
	// range — capping the client side is what turns streaming off.
	MaxProto uint32
	// MigrateTimeout bounds each phase (export, import) of one session's
	// live migration; a shard that stops answering mid-drain costs that
	// session its state, not the drain its liveness (default 5 s).
	MigrateTimeout time.Duration
	// WriteTimeout bounds every write to a backend (shard) connection
	// (default 10 s; negative disables). Forwards hold shared locks across
	// these writes, so a partitioned shard must become a timeout error —
	// routed to the reconnect machinery — rather than an indefinitely
	// wedged lock stalling every client.
	WriteTimeout time.Duration
}

func (o *RouterOptions) defaults() {
	switch {
	case o.Deadline < 0:
		o.Deadline = 0
	case o.Deadline == 0:
		o.Deadline = defaultFrameDeadline
	}
	if o.FlushLatencyRef <= 0 {
		o.FlushLatencyRef = defaultFlushLatencyRef
	}
	if o.BacklogRef <= 0 {
		o.BacklogRef = defaultBacklogRef
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxProto == 0 {
		o.MaxProto = wire.ProtoMax
	}
	if o.MigrateTimeout <= 0 {
		o.MigrateTimeout = 5 * time.Second
	}
	switch {
	case o.WriteTimeout < 0:
		o.WriteTimeout = 0
	case o.WriteTimeout == 0:
		o.WriteTimeout = 10 * time.Second
	}
	o.Retry.defaults()
}

// Router owns client connections for a multi-node frontend: it speaks the
// same wire protocol as the standalone server, assigns each connection a
// session ID, places the session on a shard via the rendezvous ring, and
// forwards envelopes over persistent backend connections. Shards push
// MsgLoad; the router runs the standalone server's lag-aware admission
// against that remote pressure and sheds frame requests before wasting a
// forward hop on an overlay that would arrive stale. Protocol-v2 frame
// subscriptions forward with session affinity, the shard's MsgFramePush
// replies traverse the hop back, and each client connection buffers pushes
// on a drop-oldest outbox so one stalled reader cannot stall a shard
// reader serving every other client.
type Router struct {
	cs     *connServer
	logger *log.Logger
	// dir is the membership control plane: the current epoch's member set
	// and ring. Routing decisions load the current view atomically; Join
	// and Drain publish new epochs, and the router swaps rings by placing
	// each decision against whatever view is current at that instant.
	dir  *membership.Directory
	opts RouterOptions
	gate loadGate
	reg  *metrics.Registry

	// Per-message instruments, resolved once at construction: the forward
	// and push hot paths must not pay a registry map lookup per envelope.
	framesShed  *metrics.Counter
	forwardErrs *metrics.Counter
	pushesStale *metrics.Counter

	// shards maps member ID → slot. Mutable since membership went dynamic:
	// Join installs, Drain removes.
	shardsMu sync.RWMutex
	shards   map[uint64]*routerShard

	sessMu   sync.RWMutex
	sessions map[uint64]*routerClient
	nextSess atomic.Uint64

	// subs tracks live subscriptions so a reconnected shard can have its
	// streams replayed, a migrated session's stream can be resumed on the
	// new owner with its push counter rebased, and a permanently dead
	// shard can fail its streams with a typed error.
	subsMu sync.Mutex
	subs   map[uint64]*subEntry

	// adminMu makes membership mutations single-writer: one Join or Drain
	// (with all its migrations) runs at a time.
	adminMu sync.Mutex
	admin   *connServer

	// changeMu closes the plan/publish window: forwards hold it for read,
	// and a membership change holds it for write from planning its
	// migration set until the new epoch is published. A session that
	// connects mid-change therefore cannot slip its first envelopes to
	// the old ring after the plan was drawn — its forwards wait the few
	// microseconds of plan+gate and then resolve against the new epoch.
	changeMu sync.RWMutex

	// migrations tracks in-flight session exports/imports, keyed by
	// session; shard readers route MsgMigrateSession replies here.
	migMu      sync.Mutex
	migrations map[uint64]*migration

	// bufs stages forwarded push payloads while they sit in client
	// outboxes (the shard reader's frame buffer cannot outlive one read).
	bufs sync.Pool

	// rec records the router-side half of every push's flight (outbox wait
	// and client write); shard-side traces join on (session, seq).
	rec *obs.Recorder

	connected bool
	closeOnce sync.Once
	closeErr  error
}

// subEntry is one tracked subscription: the subscribe payload for replay,
// plus the rebase state that keeps the client-visible push counter
// strictly increasing across server-side stream restarts (shard reconnect
// replay, re-subscribe, live migration). base is added to every raw push
// counter; last is the highest rebased value delivered; lastRaw is the
// highest raw counter delivered. restart marks a rebase whose replacement
// stream hasn't pushed yet: until its counter visibly restarts (a raw seq
// at or below lastRaw), any higher raw seq is a straggler from the
// replaced stream and must be dropped — delivering it would inflate
// `last` past everything the new stream will produce and silently
// blackhole the stream for its whole replayed length.
type subEntry struct {
	payload   []byte
	base      uint64
	last      uint64
	lastRaw   uint64
	restart   bool
	rebasedAt time.Time
}

// stragglerWindow bounds how long after a rebase a too-high raw counter
// is treated as a replaced-stream straggler. Stragglers are already in
// flight at rebase time (one connection read plus queued outbox writes),
// so they arrive promptly; after the window any push is accepted as the
// replacement stream. The window matters because raw counters are not
// gap-free — the shard's drop-oldest outbox discards pushes after their
// seq is assigned — so a replacement stream whose first pushes were all
// dropped can legitimately first appear ABOVE the old high-water mark,
// and an unbounded guard would blackhole it forever.
var stragglerWindow = time.Second

// rebase marks a server-side stream replacement: future raw counters
// restart at 1 and map above everything already delivered. Idempotent —
// a second rebase before any push arrived only refreshes the straggler
// window.
func (e *subEntry) rebase() {
	e.base = e.last
	e.restart = true
	e.rebasedAt = time.Now()
}

// backendConn is one dialled-and-handshaken shard connection.
type backendConn struct {
	conn  net.Conn
	w     *lockedWriter
	fr    *wire.FrameReader
	proto uint32
}

// routerShard is one shard's slot: the current backend connection (swapped
// on reconnect) plus the state admission needs — the shard's last reported
// load and the FIFO of outstanding frame requests.
type routerShard struct {
	member Member

	connMu sync.RWMutex
	bc     *backendConn

	loadMu sync.RWMutex
	load   core.LoadSignal

	pend pendingFrames

	// down flips while the backend connection is lost; dead flips once the
	// retry budget is spent and the shard's streams have been failed;
	// removed flips when a drain detaches the shard on purpose, telling the
	// reader not to reconnect and not to write obituaries.
	down    atomic.Bool
	dead    atomic.Bool
	removed atomic.Bool
}

func (ss *routerShard) setLoad(sig core.LoadSignal) {
	ss.loadMu.Lock()
	ss.load = sig
	ss.loadMu.Unlock()
}

func (ss *routerShard) loadSignal() core.LoadSignal {
	ss.loadMu.RLock()
	defer ss.loadMu.RUnlock()
	return ss.load
}

// backend returns the current connection slot.
func (ss *routerShard) backend() *backendConn {
	ss.connMu.RLock()
	defer ss.connMu.RUnlock()
	return ss.bc
}

// proto returns the protocol version negotiated with the shard.
func (ss *routerShard) proto() uint32 {
	if bc := ss.backend(); bc != nil {
		return bc.proto
	}
	return 0
}

// forward writes one envelope to the shard.
func (ss *routerShard) forward(env *wire.Envelope) error {
	if ss.down.Load() {
		return ErrShardDown
	}
	bc := ss.backend()
	if bc == nil {
		return ErrShardDown
	}
	return bc.w.write(env)
}

// routerClient is one client connection's write side; replies arrive from
// shard reader goroutines while local sheds come from the client's own
// read loop, so synchronous writes are serialised — and pushed frames go
// through the drop-oldest outbox sharing the same lock.
type routerClient struct {
	lockedWriter
	out *outbox

	// fwdMu serialises this session's forwards against its migration: the
	// migration sets migrating under the lock, so once set, no forward is
	// in flight and none will start until the channel closes. The read
	// loop blocking here — for exactly the export→import→replay window —
	// IS the client-visible migration pause E18 measures.
	fwdMu     sync.Mutex
	migrating chan struct{}
}

// NewRouter returns a router over the membership (not yet connected or
// listening). reg may be nil.
func NewRouter(members []Member, logger *log.Logger, reg *metrics.Registry, opts RouterOptions) (*Router, error) {
	dir, err := membership.NewDirectory(members)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.Default()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	opts.defaults()
	r := &Router{
		logger:     logger,
		dir:        dir,
		opts:       opts,
		gate:       loadGate{deadline: opts.Deadline, flushLatencyRef: opts.FlushLatencyRef, backlogRef: opts.BacklogRef},
		reg:        reg,
		shards:     make(map[uint64]*routerShard),
		sessions:   make(map[uint64]*routerClient),
		subs:       make(map[uint64]*subEntry),
		migrations: make(map[uint64]*migration),

		framesShed:  reg.Counter("router.frames.shed"),
		forwardErrs: reg.Counter("router.forward.errors"),
		pushesStale: reg.Counter("router.pushes.stale"),

		rec: obs.NewRecorder(reg, obs.Options{}),
	}
	r.bufs.New = func() any { return wire.NewBuffer(1024) }
	r.cs = newConnServer(logger, r.serveClient)
	return r, nil
}

// Metrics returns the registry the router records into (router.frames.shed,
// router.replies.orphaned, router.forward.errors, router.pushes.dropped,
// router.shard.reconnects, router.sessions.migrated, router.migrations.failed,
// histogram router.migration.pause).
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Ring exposes the current epoch's placement ring.
func (r *Router) Ring() *Ring { return r.dir.View().Ring() }

// Directory exposes the membership control plane (epoch, watch API).
func (r *Router) Directory() *membership.Directory { return r.dir }

// shard returns the slot for a member ID, nil if unknown.
func (r *Router) shard(id uint64) *routerShard {
	r.shardsMu.RLock()
	ss := r.shards[id]
	r.shardsMu.RUnlock()
	return ss
}

// shardFor resolves a session's current owner against the current epoch.
// It can return nil only in the short window where an epoch named a member
// whose slot is already detached (router shutting down).
func (r *Router) shardFor(session uint64) *routerShard {
	return r.shard(r.dir.View().Ring().Pick(session).ID)
}

// Connect dials every shard and completes the hello handshake, verifying
// each peer announces the member ID the config claims and negotiating the
// protocol version. It must succeed before Listen.
func (r *Router) Connect() error {
	for _, m := range r.dir.View().Members() {
		bc, err := r.dialBackend(m)
		if err != nil {
			// Close what already connected; Connect is all-or-nothing.
			r.shardsMu.Lock()
			for _, ss := range r.shards {
				if prev := ss.backend(); prev != nil {
					_ = prev.conn.Close()
				}
			}
			r.shardsMu.Unlock()
			return err
		}
		ss := &routerShard{member: m, bc: bc}
		ss.pend.init()
		r.shardsMu.Lock()
		r.shards[m.ID] = ss
		r.shardsMu.Unlock()
		go r.shardReader(ss, bc)
	}
	r.connected = true
	return nil
}

// dialBackend dials one shard and runs the hello handshake: announce
// ourselves, verify the peer announces the member ID the config claims,
// and settle the protocol version.
func (r *Router) dialBackend(m Member) (*backendConn, error) {
	conn, err := net.DialTimeout("tcp", m.Addr, r.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dialing shard %d at %s: %w", m.ID, m.Addr, err)
	}
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)

	_ = conn.SetDeadline(time.Now().Add(r.opts.DialTimeout))
	var buf wire.Buffer
	wire.EncodeHelloInto(&buf, wire.Hello{Name: "router", Version: wire.ProtoMax})
	if err := fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgHello, Payload: buf.Bytes()}); err == nil {
		err = fw.Flush()
	}
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: hello to shard %d: %w", m.ID, err)
	}
	env, err := fr.ReadEnvelope()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: hello from shard %d: %w", m.ID, err)
	}
	if env.Type != wire.MsgHello {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard %d answered hello with %v: %s", m.ID, env.Type, env.Payload)
	}
	hello, err := wire.DecodeHello(env.Payload)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard %d hello: %w", m.ID, err)
	}
	if hello.ID != m.ID {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard at %s announced ID %d, config says %d — membership miswired",
			m.Addr, hello.ID, m.ID)
	}
	proto, err := wire.Negotiate(wire.ProtoMax, hello.Version, wire.ProtoMin)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("server: shard %d handshake: %w", m.ID, err)
	}
	_ = conn.SetDeadline(time.Time{})
	return &backendConn{conn: conn, w: &lockedWriter{fw: fw, conn: conn, timeout: r.opts.WriteTimeout},
		fr: fr, proto: proto}, nil
}

// shardReader drains one backend connection: load reports update admission,
// everything else routes back to the owning client by session ID. When the
// connection dies the reader kicks off the reconnect loop.
func (r *Router) shardReader(ss *routerShard, bc *backendConn) {
	fr := bc.fr
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			ss.down.Store(true)
			// Outstanding frames will never be answered: drop them so a
			// stale head cannot keep admission shedding (the down flag
			// routes new requests to ErrShardDown, which names the real
			// failure, instead of a misleading overload shed).
			ss.pend.reset()
			select {
			case <-r.cs.done:
			default:
				if ss.removed.Load() {
					return // drained on purpose: no reconnect, no obituaries
				}
				r.logger.Printf("router: shard %d connection lost: %v", ss.member.ID, err)
				go r.reconnectShard(ss)
			}
			return
		}
		switch env.Type {
		case wire.MsgLoad:
			if sig, err := core.DecodeLoadSignal(env.Payload); err == nil {
				ss.setLoad(sig)
			}
		case wire.MsgMigrateSession:
			// Control plane, never client-bound: route to the in-flight
			// migration waiting on this session.
			r.migrateReply(ss, &env)
		case wire.MsgAnnotations, wire.MsgError:
			ss.pend.done(env.Session, env.Seq)
			r.deliver(&env)
		default:
			r.deliver(&env)
		}
	}
}

// reconnectShard redials a lost backend with capped exponential backoff.
// While it runs, requests for the shard fail fast with ErrShardDown but
// subscriptions stay tracked; on success the streams are replayed on the
// new connection, and only once the budget is spent are they failed.
func (r *Router) reconnectShard(ss *routerShard) {
	reconnects := r.reg.Counter("router.shard.reconnects")
	for attempt := 1; attempt <= r.opts.Retry.Attempts; attempt++ {
		select {
		case <-r.cs.done:
			return
		case <-time.After(r.opts.Retry.delay(attempt)):
		}
		if ss.removed.Load() {
			return // drained while we backed off: the slot is gone for good
		}
		bc, err := r.dialBackend(ss.member)
		if err != nil {
			r.logger.Printf("router: shard %d reconnect attempt %d/%d: %v",
				ss.member.ID, attempt, r.opts.Retry.Attempts, err)
			continue
		}
		// Install under the conn lock with shutdown and removal re-checks:
		// if Close already swept the shard slots — or a Drain detached this
		// one while we were dialling — the fresh conn must be torn down
		// here, because neither will come back for it.
		ss.connMu.Lock()
		if ss.removed.Load() {
			ss.connMu.Unlock()
			_ = bc.conn.Close()
			return
		}
		select {
		case <-r.cs.done:
			ss.connMu.Unlock()
			_ = bc.conn.Close()
			return
		default:
		}
		ss.bc = bc
		ss.connMu.Unlock()
		ss.down.Store(false)
		reconnects.Inc()
		go r.shardReader(ss, bc)
		r.replaySubscriptions(ss)
		r.logger.Printf("router: shard %d reconnected (attempt %d)", ss.member.ID, attempt)
		return
	}
	// Budget spent: the shard is gone as far as this router is concerned.
	// In-flight streams placed there now — and only now — surface
	// ErrShardDown.
	ss.dead.Store(true)
	r.failStreams(ss)
	r.logger.Printf("router: shard %d reconnect budget (%d attempts) spent; failing its streams",
		ss.member.ID, r.opts.Retry.Attempts)
}

// replaySubscriptions re-forwards MsgSubscribe for every tracked stream
// the ring places on the shard, rebuilding server-side streams a backend
// bounce destroyed. Replayed subscribes carry Seq 0: the shard's acks are
// delivered to clients, which ignore acks for requests they never made.
func (r *Router) replaySubscriptions(ss *routerShard) {
	ring := r.dir.View().Ring()
	r.subsMu.Lock()
	replay := make(map[uint64][]byte, len(r.subs))
	for id, e := range r.subs {
		if ring.Pick(id).ID == ss.member.ID {
			// The replayed server-side stream restarts its push counter at
			// 1; shift the rebase base so the wire seq stays strictly
			// increasing through the bounce.
			e.rebase()
			replay[id] = e.payload
		}
	}
	r.subsMu.Unlock()
	for id, payload := range replay {
		if err := ss.forward(&wire.Envelope{Type: wire.MsgSubscribe, Session: id, Payload: payload}); err != nil {
			r.logger.Printf("router: replaying subscription for session %d: %v", id, err)
		}
	}
	// Sweep for subscriptions that ended between the snapshot and the
	// forward: their unsubscribe or CtrlEndSession raced the replay (a
	// no-op on the new connection, which didn't know the session yet), so
	// the subscribe above would otherwise resurrect a zombie stream
	// nobody ends. The shard knows the session now via the replayed
	// subscribe, so the corrective message lands — an unsubscribe for a
	// still-connected client (only its stream ended), a full end-session
	// for a client that is gone.
	r.subsMu.Lock()
	var stale []uint64
	for id := range replay {
		if _, ok := r.subs[id]; !ok {
			stale = append(stale, id)
		}
	}
	r.subsMu.Unlock()
	for _, id := range stale {
		r.sessMu.RLock()
		connected := r.sessions[id] != nil
		r.sessMu.RUnlock()
		if connected {
			_ = ss.forward(&wire.Envelope{Type: wire.MsgUnsubscribe, Session: id})
		} else {
			_ = ss.forward(&wire.Envelope{Type: wire.MsgControl, Session: id,
				Payload: []byte{CtrlEndSession}})
		}
	}
}

// failStreams delivers the stream-fatal ErrShardDown to every subscribed
// client placed on the shard. The error rides the push outbox with Seq 0 —
// the slot request/reply traffic never uses — so clients recognise it as
// the stream's obituary rather than a reply.
func (r *Router) failStreams(ss *routerShard) {
	ring := r.dir.View().Ring()
	r.subsMu.Lock()
	var ids []uint64
	for id := range r.subs {
		if ring.Pick(id).ID == ss.member.ID {
			ids = append(ids, id)
			delete(r.subs, id)
		}
	}
	r.subsMu.Unlock()
	for _, id := range ids {
		r.sessMu.RLock()
		cl := r.sessions[id]
		r.sessMu.RUnlock()
		if cl == nil {
			continue
		}
		cl.out.enqueue(outMsg{env: wire.Envelope{Type: wire.MsgError, Seq: 0, Session: id,
			Payload: []byte(ErrShardDown.Error())}})
	}
}

// deliver routes one shard reply to its client. Request/reply traffic is
// written synchronously (the payload aliases the shard reader's buffer, so
// the write happens before the next shard read — exactly the calling
// sequence); pushed frames are copied into a pooled buffer and queued on
// the client's drop-oldest outbox, because a slow client must cost itself
// frames, not stall the shard reader.
func (r *Router) deliver(env *wire.Envelope) {
	r.sessMu.RLock()
	cl := r.sessions[env.Session]
	r.sessMu.RUnlock()
	if cl == nil {
		// Client went away while the reply was in flight.
		r.reg.Counter("router.replies.orphaned").Inc()
		return
	}
	if env.Type == wire.MsgFramePush || env.Type == wire.MsgFrameDelta {
		// Delta pushes ride the same path as full pushes, payload opaque:
		// rebasing shifts every seq by the same constant within an epoch,
		// so the seq-contiguity rule delta application depends on is
		// preserved, and an epoch restart's first push is always a
		// keyframe (a fresh server-side stream keys its push 1).
		// Rebase the stream's push counter: a migrated (or replayed)
		// server-side stream restarts at 1, but the wire contract toward
		// the client is a strictly increasing seq. Two stale cases drop
		// here: after a rebase, a raw seq above lastRaw is a straggler of
		// the replaced stream (the real replacement announces itself by
		// restarting at or below lastRaw — raw counters are per-stream
		// contiguous, so only a restart can move backwards); and a rebased
		// value at or below `last` is a duplicate.
		seq := env.Seq
		r.subsMu.Lock()
		if e := r.subs[env.Session]; e != nil {
			if e.restart && e.lastRaw > 0 && env.Seq > e.lastRaw &&
				time.Since(e.rebasedAt) < stragglerWindow {
				r.subsMu.Unlock()
				r.pushesStale.Inc()
				return
			}
			seq = e.base + env.Seq
			if seq <= e.last {
				r.subsMu.Unlock()
				r.pushesStale.Inc()
				return
			}
			e.restart = false
			e.lastRaw = env.Seq
			e.last = seq
		}
		r.subsMu.Unlock()
		buf := r.bufs.Get().(*wire.Buffer)
		buf.Reset()
		buf.Append(env.Payload)
		// Open the router-side flight here, at push arrival: its spans cover
		// the client outbox wait and the client write, and it carries the
		// rebased seq so it joins the shard's trace on (session, seq).
		fl := r.rec.Begin(env.Session, time.Now())
		fl.SetSeq(seq)
		cl.out.enqueue(outMsg{
			env:    wire.Envelope{Type: env.Type, Seq: seq, Session: env.Session, Payload: buf.Bytes()},
			buf:    buf,
			pool:   &r.bufs,
			flight: fl,
		})
		return
	}
	_ = cl.write(env)
}

// Listen binds addr and starts accepting client connections. Connect must
// have succeeded first.
func (r *Router) Listen(addr string) (string, error) {
	if !r.connected {
		return "", errors.New("server: router listening before Connect")
	}
	return r.cs.listen(addr)
}

// Close stops accepting clients, closes admin, client and backend
// connections, and waits for handlers. Idempotent.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.cs.close()
		if r.admin != nil {
			if err := r.admin.close(); err != nil && r.closeErr == nil {
				r.closeErr = err
			}
		}
		r.shardsMu.Lock()
		for _, ss := range r.shards {
			if bc := ss.backend(); bc != nil {
				_ = bc.conn.Close()
			}
		}
		r.shardsMu.Unlock()
	})
	return r.closeErr
}

// EffectiveDeadline reports the admission budget the router currently
// applies to frame requests bound for the given shard member.
func (r *Router) EffectiveDeadline(memberID uint64) time.Duration {
	ss := r.shard(memberID)
	if ss == nil {
		return r.opts.Deadline
	}
	return r.gate.effective(ss.loadSignal())
}

// trackSub records a live subscription for replay; untrackSub forgets it.
// A re-subscribe keeps the rebase state: the client's stream identity
// survives a cadence change, so its seq contract must too.
func (r *Router) trackSub(session uint64, payload []byte) {
	r.subsMu.Lock()
	if e := r.subs[session]; e != nil {
		e.payload = append([]byte(nil), payload...)
		e.rebase() // the replacement server-side stream restarts at 1
	} else {
		r.subs[session] = &subEntry{payload: append([]byte(nil), payload...)}
	}
	r.subsMu.Unlock()
}

func (r *Router) untrackSub(session uint64) {
	r.subsMu.Lock()
	delete(r.subs, session)
	r.subsMu.Unlock()
}

// serveClient speaks the standalone server's client protocol, with the
// frame work a forward hop away. The owning shard is resolved per envelope
// against the current membership epoch, and forwards serialise against the
// session's migration gate — a session mid-migration pauses here for the
// export→import→replay window rather than racing its own state across
// nodes.
func (r *Router) serveClient(conn net.Conn) {
	id := r.nextSess.Add(1)
	cl := &routerClient{lockedWriter: lockedWriter{fw: wire.NewFrameWriter(conn), conn: conn}}
	// No onDrop hook on this hop: a dropped delta reaches the client as a
	// seq gap, and its keyframe-request ack forwards to the shard like any
	// other envelope.
	cl.out = newOutbox(&cl.lockedWriter, routerPushQueue, r.reg.Counter("router.pushes.dropped"), nil)
	r.sessMu.Lock()
	r.sessions[id] = cl
	r.sessMu.Unlock()
	defer func() {
		r.sessMu.Lock()
		delete(r.sessions, id)
		r.sessMu.Unlock()
		r.untrackSub(id)
		// Close the conn before waiting out the outbox writer, which may
		// be mid-write to a stalled client.
		_ = conn.Close()
		cl.out.close()
		// Tell the owning shard the session is over so its registry doesn't
		// grow for the life of the backend connection. Gated: a migration
		// in flight finishes first, so the end lands on the new owner.
		end := wire.Envelope{Type: wire.MsgControl, Session: id, Payload: []byte{CtrlEndSession}}
		r.routeClientEnvelope(cl, id, &end, wire.ProtoMax)
	}()

	proto := wire.ProtoV1
	fr := wire.NewFrameReader(conn)
	var env wire.Envelope
	first := true
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return // EOF or broken pipe: session over
		}
		env.Session = id // the router owns placement; clients cannot choose
		// Handshake: a v2 client's first envelope is a hello the router
		// answers itself — never forwarded. A legacy first envelope pins v1.
		if env.Type == wire.MsgHello {
			if !first {
				if cl.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: id,
					Payload: []byte("server: hello after traffic")}) != nil {
					return
				}
				continue
			}
			first = false
			_, p, err := answerHello(&cl.lockedWriter, &env, id, "router", r.opts.MaxProto)
			if err != nil {
				return
			}
			proto = p
			continue
		}
		first = false
		if env.Type == wire.MsgControl {
			// Control payloads are router↔shard vocabulary (CtrlEndSession
			// tears a session down, silently). The client-facing protocol
			// treats any control as a ping, so strip the payload rather
			// than let a client envelope collide with an internal verb.
			env.Payload = nil
		}
		if fatal := r.routeClientEnvelope(cl, id, &env, proto); fatal {
			return
		}
	}
}

// routeClientEnvelope forwards one client envelope to the session's
// current owner and writes any resulting reply. It reports fatal (tear
// the connection down) when the reply write to the client fails.
func (r *Router) routeClientEnvelope(cl *routerClient, id uint64, env *wire.Envelope, proto uint32) (fatal bool) {
	reply, ok := r.forwardGated(cl, id, env, proto)
	if !ok {
		return true // router shutting down; nothing can be forwarded
	}
	if reply != nil {
		return cl.write(reply) != nil
	}
	return false
}

// forwardGated makes the admission decision and performs the shard
// forward under the session's migration gate and the membership-change
// read lock, returning the reply to send (nil for one-way traffic) rather
// than writing it: client writes can block on a reader that went away,
// and blocking while holding these locks would let one stalled client
// wedge every membership change (gateAll waits on fwdMu) and, through the
// change lock, the whole data plane.
//
// The locks span the whole decide-and-forward sequence so the shard
// consulted for admission is the shard the envelope reaches: without
// that, a migration between the pend-FIFO add and the forward would
// strand an entry on the old shard's FIFO and poison its admission clock.
func (r *Router) forwardGated(cl *routerClient, id uint64, env *wire.Envelope, proto uint32) (reply *wire.Envelope, ok bool) {
	for {
		r.changeMu.RLock()
		cl.fwdMu.Lock()
		if cl.migrating == nil {
			break
		}
		ch := cl.migrating
		cl.fwdMu.Unlock()
		r.changeMu.RUnlock()
		select {
		case <-ch:
		case <-r.cs.done:
			return nil, false
		}
	}
	defer func() {
		cl.fwdMu.Unlock()
		r.changeMu.RUnlock()
	}()
	errReply := func(text string) *wire.Envelope {
		return &wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: id, Payload: []byte(text)}
	}
	ss := r.shardFor(id)
	if ss == nil {
		// Epoch names an owner with no live slot: only reachable in the
		// router's own shutdown window.
		return r.shardDownReply(id, env), true
	}
	if env.Type == wire.MsgSubscribe || env.Type == wire.MsgUnsubscribe {
		// Version gate on both hops: the client must have negotiated
		// v2, and so must the shard the stream would live on.
		if need := wire.ProtoV2; proto < need || ss.proto() < need {
			verr := &wire.VersionError{Local: proto, Remote: ss.proto(), Need: need}
			return errReply(verr.Error()), true
		}
	}
	if env.Type == wire.MsgSubscribe {
		// Track before the forward: a shard bounce in the gap would
		// otherwise snapshot r.subs without this stream — never
		// replayed, never given an obituary, a silently dead channel.
		// The forward-failure path below and the reconnect sweep both
		// clean up if the subscribe never actually took.
		r.trackSub(id, env.Payload)
		if sub, err := wire.DecodeSubscribe(env.Payload); err == nil {
			// Honour the subscription's queue budget on this hop too —
			// the shard grows its outbox per subscription, and capping
			// here would silently undercut the knob in exactly the
			// topology streaming was built for.
			cl.out.grow(pushBudget(sub))
		}
	}
	if env.Type == wire.MsgFrameRequest {
		if r.shedNow(ss) {
			r.framesShed.Inc()
			return errReply(ErrRouterShed.Error()), true
		}
		ss.pend.add(id, env.Seq, time.Now())
	}
	if err := ss.forward(env); err != nil {
		r.forwardErrs.Inc()
		if env.Type == wire.MsgFrameRequest {
			ss.pend.done(id, env.Seq)
		}
		// The stream intent didn't reach the shard: an unsent
		// subscribe must not be replayed onto a reconnected shard,
		// and a failed unsubscribe still records the client's intent
		// so the reconnect replay can't resurrect the stream.
		if env.Type == wire.MsgSubscribe || env.Type == wire.MsgUnsubscribe {
			r.untrackSub(id)
		}
		return r.shardDownReply(id, env), true
	}
	if env.Type == wire.MsgUnsubscribe {
		r.untrackSub(id)
	}
	return nil, true
}

// shardDownReply builds the unreachable-owner error for request/reply
// traffic; sensor streams are one-way (nil reply) so the client finds out
// on its next request.
func (r *Router) shardDownReply(id uint64, env *wire.Envelope) *wire.Envelope {
	switch env.Type {
	case wire.MsgFrameRequest, wire.MsgControl, wire.MsgSubscribe, wire.MsgUnsubscribe:
		return &wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: id,
			Payload: []byte(ErrShardDown.Error())}
	}
	return nil
}

// shedNow applies lag-aware admission for one shard: the base deadline is
// tightened by the shard's reported load, and compared against the age of
// the shard's oldest outstanding frame request — if the shard hasn't kept
// up with what it already has within the effective budget, a new frame
// would wait at least as long, so shed it here instead of paying the hop.
func (r *Router) shedNow(ss *routerShard) bool {
	if ss.down.Load() {
		return false // let forward() report ErrShardDown, not a fake shed
	}
	d := r.gate.effective(ss.loadSignal())
	if d <= 0 {
		return false // shedding disabled
	}
	return ss.pend.headAge(time.Now()) > d
}

// pendKey identifies one outstanding frame request.
type pendKey struct {
	session, seq uint64
}

// pendingFrames tracks a shard's outstanding (forwarded, unanswered) frame
// requests so admission can measure how far behind the shard is: a FIFO of
// enqueue times plus a liveness map, with answered entries popped lazily
// from the head.
type pendingFrames struct {
	mu   sync.Mutex
	fifo []pendEntry
	live map[pendKey]struct{}
}

type pendEntry struct {
	key pendKey
	at  time.Time
}

func (p *pendingFrames) init() {
	p.live = make(map[pendKey]struct{})
}

func (p *pendingFrames) add(session, seq uint64, at time.Time) {
	k := pendKey{session, seq}
	p.mu.Lock()
	p.live[k] = struct{}{}
	p.fifo = append(p.fifo, pendEntry{key: k, at: at})
	p.mu.Unlock()
}

// done marks a reply received. Unknown keys (error replies to sensor
// envelopes, duplicate replies) are ignored. Compaction happens here as
// well as in headAge so the FIFO stays bounded by the outstanding count
// even when admission never reads it (shedding disabled, shard down).
func (p *pendingFrames) done(session, seq uint64) {
	p.mu.Lock()
	delete(p.live, pendKey{session, seq})
	p.compactLocked()
	p.mu.Unlock()
}

// reset discards all outstanding entries (the backing connection died; no
// reply is coming).
func (p *pendingFrames) reset() {
	p.mu.Lock()
	p.fifo = p.fifo[:0]
	clear(p.live)
	p.mu.Unlock()
}

// compactLocked pops answered entries off the FIFO head; callers hold mu.
func (p *pendingFrames) compactLocked() {
	i := 0
	for ; i < len(p.fifo); i++ {
		if _, ok := p.live[p.fifo[i].key]; ok {
			break
		}
	}
	if i > 0 {
		n := copy(p.fifo, p.fifo[i:])
		p.fifo = p.fifo[:n]
	}
}

// headAge returns how long the oldest still-outstanding frame request has
// waited (zero when nothing is outstanding).
func (p *pendingFrames) headAge(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compactLocked()
	if len(p.fifo) == 0 {
		return 0
	}
	return now.Sub(p.fifo[0].at)
}
