package server

import (
	"fmt"
	"sort"

	"arbd/internal/core"
)

// Member is one shard node in a static membership config.
type Member struct {
	// ID is the shard's stable identity; it survives address changes, so
	// session placement does too.
	ID uint64
	// Addr is the shard's backend listen address.
	Addr string
}

// Ring assigns sessions to shard members by rendezvous (highest-random-
// weight) hashing over a static member set: for a session, every member's
// weight is a mix of the member's ID with the splitmix-mixed session ID —
// the same mix the in-process registry shards by — and the heaviest member
// owns the session. Rendezvous needs no virtual nodes and keeps the
// remap fraction minimal (1/n) when membership changes, which is the
// property a future dynamic-membership PR will lean on.
type Ring struct {
	members []Member
}

// NewRing validates the membership and returns a ring. Members are sorted
// by ID so configs listing the same set in any order route identically.
func NewRing(members []Member) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("server: ring needs at least one member")
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i := 1; i < len(ms); i++ {
		if ms[i].ID == ms[i-1].ID {
			return nil, fmt.Errorf("server: duplicate ring member ID %d", ms[i].ID)
		}
	}
	return &Ring{members: ms}, nil
}

// Members returns the membership in ID order.
func (r *Ring) Members() []Member { return r.members }

// Pick returns the member owning the session ID. Deterministic: every
// router with the same membership maps a session to the same shard, which
// is what makes session affinity hold without coordination.
func (r *Ring) Pick(sessionID uint64) Member {
	key := core.MixSessionID(sessionID)
	best := 0
	bestW := rendezvousWeight(key, r.members[0].ID)
	for i := 1; i < len(r.members); i++ {
		if w := rendezvousWeight(key, r.members[i].ID); w > bestW {
			best, bestW = i, w
		}
	}
	return r.members[best]
}

// rendezvousWeight combines a mixed session key with a member identity.
// The member ID is mixed before xor so members 1,2,3... don't produce
// near-identical weights, then the combination is mixed again for
// avalanche.
func rendezvousWeight(key, memberID uint64) uint64 {
	return core.MixSessionID(key ^ core.MixSessionID(memberID))
}
