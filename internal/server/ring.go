package server

import "arbd/internal/server/membership"

// Member and Ring moved to the membership control-plane package when shard
// sets became dynamic (epoch-versioned views, join/drain). The aliases keep
// the server package's public surface — NewRouter([]Member...), bench and
// cmd call sites, existing tests — source-compatible.
type (
	// Member is one shard node in the membership.
	Member = membership.Member
	// Ring assigns sessions to shard members by rendezvous hashing; see
	// membership.Ring for the remap-minimality property live migration
	// leans on.
	Ring = membership.Ring
)

// NewRing validates the membership and returns a ring.
func NewRing(members []Member) (*Ring, error) { return membership.NewRing(members) }
