package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/sensor"
)

// TestEffectiveDeadlineTightensUnderLoad checks the admission math: no
// pressure leaves the configured deadline alone, pressure shrinks it
// monotonically, and the floor holds.
func TestEffectiveDeadlineTightensUnderLoad(t *testing.T) {
	var sig core.LoadSignal
	var mu sync.Mutex
	load := func() core.LoadSignal {
		mu.Lock()
		defer mu.Unlock()
		return sig
	}
	fs := NewFrameScheduler(SchedulerConfig{
		Workers:       1,
		Deadline:      160 * time.Millisecond,
		Load:          load,
		LoadPollEvery: time.Nanosecond, // poll every call: the test mutates sig
		BacklogRef:    1000,
	}, nil)
	defer fs.Close()

	set := func(s core.LoadSignal) {
		mu.Lock()
		sig = s
		mu.Unlock()
	}

	if got := fs.EffectiveDeadline(); got != 160*time.Millisecond {
		t.Fatalf("no pressure: deadline %v, want 160ms", got)
	}
	set(core.LoadSignal{Backlog: 1000}) // pressure 1 → half
	half := fs.EffectiveDeadline()
	if half != 80*time.Millisecond {
		t.Fatalf("backlog at ref: deadline %v, want 80ms", half)
	}
	set(core.LoadSignal{Backlog: 3000}) // pressure 3 → quarter
	quarter := fs.EffectiveDeadline()
	if quarter != 40*time.Millisecond {
		t.Fatalf("backlog at 3× ref: deadline %v, want 40ms", quarter)
	}
	set(core.LoadSignal{Backlog: 1 << 40}) // extreme: floor at Deadline/16
	if got := fs.EffectiveDeadline(); got != 10*time.Millisecond {
		t.Fatalf("extreme backlog: deadline %v, want floor 10ms", got)
	}
	// Flush latency contributes the same way (default ref 5 ms).
	set(core.LoadSignal{FlushLatency: 5 * time.Millisecond})
	if got := fs.EffectiveDeadline(); got != 80*time.Millisecond {
		t.Fatalf("flush latency at ref: deadline %v, want 80ms", got)
	}
}

// TestSchedulerShedsEarlierUnderBrokerLag is the end-to-end admission
// check: frames that wait out a worker stall render fine under a healthy
// backend, but the same wait sheds once an injected broker-lag signal
// tightens admission below it. The stall is deterministic: the single
// worker blocks inside a job callback while the test enqueues the burst
// and lets a known queue wait accumulate.
func TestSchedulerShedsEarlierUnderBrokerLag(t *testing.T) {
	const deadline = time.Second         // healthy admission: floor = 62.5 ms under max pressure
	const stall = 150 * time.Millisecond // queue wait given to the burst
	const burst = 10

	run := func(load func() core.LoadSignal) (done, shed, shedLag int64) {
		p := testPlatform(t)
		fs := NewFrameScheduler(SchedulerConfig{
			Workers:       1,
			QueueDepth:    burst + 1,
			Deadline:      deadline,
			Load:          load,
			LoadPollEvery: time.Nanosecond,
		}, nil)
		defer fs.Close()
		s := p.NewSession()
		if err := s.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}

		// Stall the only worker: done callbacks run on the worker
		// goroutine, so blocking here holds every queued job in place.
		release := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		if err := fs.Submit(s, func(_ *core.Frame, err error) {
			defer wg.Done()
			if err != nil {
				t.Errorf("stall frame: %v", err)
			}
			<-release
		}); err != nil {
			t.Fatal(err)
		}
		wg.Add(burst)
		for i := 0; i < burst; i++ {
			if err := fs.Submit(s, func(_ *core.Frame, err error) {
				defer wg.Done()
				if err != nil && !errors.Is(err, ErrFrameShed) {
					t.Errorf("frame: %v", err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(stall)
		close(release)
		wg.Wait()
		return fs.Metrics().Counter("server.frames.done").Value(),
			fs.Metrics().Counter("server.frames.shed").Value(),
			fs.Metrics().Counter("server.frames.shed_lag").Value()
	}

	// Healthy backend: a 150 ms wait is far inside the 1 s deadline.
	done, shed, _ := run(nil)
	if shed != 0 || done != burst+1 {
		t.Fatalf("healthy backend: done=%d shed=%d, want %d/0", done, shed, burst+1)
	}

	// Lagging backend: admission collapses to the floor (deadline/16 =
	// 62.5 ms), so the same 150 ms wait sheds the whole burst — and every
	// shed is attributed to lag, not the base deadline.
	lagged := func() core.LoadSignal { return core.LoadSignal{Backlog: 1 << 40} }
	done, shed, shedLag := run(lagged)
	if done != 1 || shed != burst {
		t.Fatalf("lagging backend: done=%d shed=%d, want 1/%d", done, shed, burst)
	}
	if shedLag != shed {
		t.Fatalf("lag sheds = %d, total sheds = %d: every shed here is inside the base deadline", shedLag, shed)
	}
}
