package server

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// rawConn speaks the wire protocol directly for tests that need to craft
// or observe envelopes the Client API hides (raw control payloads, backend
// handshakes, pipelining without reply matching).
type rawConn struct {
	c   net.Conn
	fr  *wire.FrameReader
	fw  *wire.FrameWriter
	seq uint64
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &rawConn{c: c, fr: wire.NewFrameReader(c), fw: wire.NewFrameWriter(c)}
}

// send writes one envelope with the next sequence number and returns it.
func (rc *rawConn) send(t *testing.T, typ wire.MsgType, session uint64, payload []byte) uint64 {
	t.Helper()
	rc.seq++
	if err := rc.fw.WriteEnvelope(&wire.Envelope{Type: typ, Seq: rc.seq, Session: session, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := rc.fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return rc.seq
}

func (rc *rawConn) read(t *testing.T) *wire.Envelope {
	t.Helper()
	env, err := rc.fr.ReadEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// hello performs the dialer side of the handshake, announcing version and
// returning the peer's hello.
func (rc *rawConn) hello(t *testing.T, name string, version uint32) wire.Hello {
	t.Helper()
	var hb wire.Buffer
	wire.EncodeHelloInto(&hb, wire.Hello{Name: name, Version: version})
	rc.send(t, wire.MsgHello, 0, hb.Bytes())
	env := rc.read(t)
	if env.Type != wire.MsgHello {
		t.Fatalf("handshake reply = %v payload %q", env.Type, env.Payload)
	}
	peer, err := wire.DecodeHello(env.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return peer
}

// sendGPS writes a raw GPS sensor envelope at the given position.
func (rc *rawConn) sendGPS(t *testing.T, session uint64, pos geo.Point) {
	t.Helper()
	var b wire.Buffer
	b.Byte(SensorGPS)
	b.Uvarint(uint64(time.Now().UnixNano()))
	b.Float64(pos.Lat)
	b.Float64(pos.Lon)
	b.Float64(3)
	rc.send(t, wire.MsgSensorEvent, session, b.Bytes())
}

// testCluster is a router fronting in-process shard nodes over loopback.
type testCluster struct {
	router *Router
	addr   string
	shards []*Shard
}

// startCluster wires n shards behind a router. tune, when non-nil, adjusts
// each shard's options before the shard starts.
func startCluster(t *testing.T, n int, tune func(i int, o *ShardOptions), ropts RouterOptions) *testCluster {
	t.Helper()
	discard := log.New(io.Discard, "", 0)
	tc := &testCluster{}
	members := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		p, err := core.NewPlatform(core.Config{
			Seed: 1,
			City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 600},
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := ShardOptions{
			ID: uint64(i + 1),
			// Shedding off by default, as in startServer: integrity tests
			// must not flake on slow CI boxes.
			Options:   Options{Scheduler: SchedulerConfig{Deadline: -1}},
			LoadEvery: 5 * time.Millisecond,
		}
		if tune != nil {
			tune(i, &opts)
		}
		sh := NewShard(p, discard, opts)
		addr, err := sh.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.shards = append(tc.shards, sh)
		members = append(members, Member{ID: opts.ID, Addr: addr})
	}
	rt, err := NewRouter(members, discard, nil, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Connect(); err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.router, tc.addr = rt, addr
	t.Cleanup(func() {
		_ = rt.Close()
		for _, sh := range tc.shards {
			_ = sh.Close()
		}
	})
	return tc
}

// shardOwning returns the indexes of cluster shards whose registry holds
// the session.
func (tc *testCluster) shardsOwning(id uint64) []int {
	var owners []int
	for i, sh := range tc.shards {
		if _, ok := sh.Engine().Platform().Session(id); ok {
			owners = append(owners, i)
		}
	}
	return owners
}

// TestRouterSessionAffinity drives many clients through a router over two
// shards and asserts placement: every envelope stream for one session lands
// on exactly one shard, the shard the ring names — and the sessions end on
// the shard when the clients disconnect.
func TestRouterSessionAffinity(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	const clients = 12
	const rounds = 6

	conns := make([]*Client, clients)
	for c := range conns {
		cl, err := Dial(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[c] = cl
		if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			if _, _, err := cl.RequestFrame(); err != nil {
				t.Fatalf("client %d round %d: %v", c, r, err)
			}
		}
		// A control round trip (Ack through the forward hop) proves the
		// non-frame request path routes too.
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	// Recover each client's session via the shards: with all conns still
	// open, the union of live sessions across shards must be exactly one
	// per client, each on the shard the ring picked.
	live := map[uint64]int{}
	for i, sh := range tc.shards {
		sh.Engine().Platform().ForEachSession(func(s *core.Session) bool {
			if owner, dup := live[s.ID]; dup {
				t.Errorf("session %d live on shards %d and %d", s.ID, owner, i)
			}
			live[s.ID] = i
			return true
		})
	}
	if len(live) != clients {
		t.Fatalf("%d live sessions across shards, want %d", len(live), clients)
	}
	for id, shardIdx := range live {
		want := tc.router.Ring().Pick(id).ID
		if got := tc.shards[shardIdx].ID(); got != want {
			t.Fatalf("session %d lives on shard %d, ring says %d", id, got, want)
		}
		if owners := tc.shardsOwning(id); len(owners) != 1 {
			t.Fatalf("session %d owned by shards %v", id, owners)
		}
	}

	// Every frame was answered, so the outstanding-frame FIFO must be
	// fully compacted even though shedding is disabled here and admission
	// never reads it — the leak case for a long-running router.
	for id, ss := range tc.router.shards {
		ss.pend.mu.Lock()
		n := len(ss.pend.fifo)
		ss.pend.mu.Unlock()
		if n != 0 {
			t.Fatalf("shard %d: %d pending-frame entries left after all replies", id, n)
		}
	}

	for _, cl := range conns {
		_ = cl.Close()
	}
	// Disconnects propagate as CtrlEndSession; the registries must drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for _, sh := range tc.shards {
			total += sh.Engine().Platform().NumSessions()
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions still live after all clients disconnected", total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterSeqIntegrity reuses the standalone server's strict wire-level
// client against a router: every frame request answered with its own Seq in
// order, sessions pinned per connection and distinct across connections —
// the reply stream must be indistinguishable through a forward hop.
func TestRouterSeqIntegrity(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	const clients = 12
	const rounds = 20

	sessionCh := make(chan uint64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := runSeqClient(tc.addr, c, rounds, sessionCh); err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(sessionCh)
	seen := make(map[uint64]bool)
	for id := range sessionCh {
		if seen[id] {
			t.Fatalf("session %d served two connections", id)
		}
		seen[id] = true
	}
	if len(seen) != clients {
		t.Fatalf("saw %d distinct sessions, want %d", len(seen), clients)
	}
}

// TestRouterShedsOnRemoteLoad is the multi-node admission check: with the
// target shard's only worker deterministically stalled and a frame request
// outstanding, a healthy load report leaves the follow-up request inside
// the base deadline (forwarded), while an inflated shard backlog — reported
// over the wire via MsgLoad — collapses the effective deadline to its floor
// and the router sheds the follow-up before the forward hop.
func TestRouterShedsOnRemoteLoad(t *testing.T) {
	const base = 4 * time.Second // floor = base/16 = 250ms
	const stall = 600 * time.Millisecond

	run := func(lagged bool) (shed int64, err error) {
		var loadFn func() core.LoadSignal
		if lagged {
			loadFn = func() core.LoadSignal { return core.LoadSignal{Backlog: 1 << 40} }
		}
		tc := startCluster(t, 1, func(i int, o *ShardOptions) {
			o.Scheduler.Workers = 1
			o.Load = loadFn
		}, RouterOptions{Deadline: base})

		// Stall the shard's only worker from inside the process: callbacks
		// run on the worker goroutine, so the scheduler renders nothing
		// until release — every forwarded frame request stays outstanding.
		sh := tc.shards[0]
		blocker := sh.Engine().Platform().SessionOrNew(1 << 60)
		if err := blocker.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		release := make(chan struct{})
		var releaseOnce sync.Once
		rel := func() { releaseOnce.Do(func() { close(release) }) }
		var blocked sync.WaitGroup
		blocked.Add(1)
		if err := sh.Engine().Scheduler().Submit(blocker, func(_ *core.Frame, err error) {
			defer blocked.Done()
			<-release
		}); err != nil {
			t.Fatal(err)
		}
		defer blocked.Wait()
		defer rel()

		cl, err := Dial(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		// Let the shard's load pusher reach the router before admission
		// decisions matter.
		time.Sleep(50 * time.Millisecond)

		// First request: always forwarded (nothing outstanding yet), then
		// held behind the stalled worker.
		first := make(chan error, 1)
		go func() {
			_, _, err := cl.RequestFrame()
			first <- err
		}()
		time.Sleep(stall)

		// Follow-up on a second connection (the first client is blocked in
		// its synchronous reply read). The router decides admission the
		// moment the request arrives, so sample the shed counter after a
		// short settle, then release the worker and collect the reply —
		// in the healthy case it only arrives once the queue drains.
		cl2, err := Dial(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl2.Close()
		if err := cl2.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		second := make(chan error, 1)
		go func() {
			_, _, err := cl2.RequestFrame()
			second <- err
		}()
		time.Sleep(150 * time.Millisecond)
		shed = tc.router.Metrics().Counter("router.frames.shed").Value()
		rel()
		return shed, <-second
	}

	shed, err := run(false)
	if err != nil {
		t.Fatalf("healthy shard: follow-up request failed: %v", err)
	}
	if shed != 0 {
		t.Fatalf("healthy shard: router shed %d frames inside the base deadline", shed)
	}

	shed, err = run(true)
	if err == nil {
		t.Fatal("lagged shard: follow-up request succeeded, want router shed")
	}
	if !strings.Contains(err.Error(), ErrFrameShed.Error()) {
		t.Fatalf("lagged shard: error %q does not classify as a shed", err)
	}
	if shed == 0 {
		t.Fatal("lagged shard: router.frames.shed not incremented")
	}
}

// TestRouterEndToEndBurst is the short router-mode end-to-end test CI runs
// under -race: a burst of loadgen-style clients against a router over two
// shards, sheds tolerated, errors not.
func TestRouterEndToEndBurst(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{})
	const clients = 8
	const rounds = 10
	var wg sync.WaitGroup
	var frames, sheds int64
	var mu sync.Mutex
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(tc.addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			pos := geo.Destination(center, float64(c*30), float64(c)*50)
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 3}); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				_, _, err := cl.RequestFrame()
				switch {
				case err == nil:
					mu.Lock()
					frames++
					mu.Unlock()
				case strings.Contains(err.Error(), ErrFrameShed.Error()):
					mu.Lock()
					sheds++
					mu.Unlock()
				default:
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if frames == 0 {
		t.Fatalf("burst completed no frames (%d sheds)", sheds)
	}
}

// TestRouterStreamE2E is the subscribe path through the full topology:
// v2 clients against a router over two shards, each subscribing once and
// then receiving seq-ordered pushed frames with zero request round-trips,
// the pushes anchored near the client's own reported position (session
// affinity through the forward hop), ending with a clean unsubscribe.
func TestRouterStreamE2E(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	const clients = 8
	const wantFrames = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(tc.addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if cl.Proto() < wire.ProtoV2 {
				errs <- fmt.Errorf("client %d negotiated v%d", c, cl.Proto())
				return
			}
			pos := geo.Destination(center, float64(c*360/clients), 300+float64(c%4)*120)
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 3}); err != nil {
				errs <- err
				return
			}
			frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: 3 * time.Millisecond})
			if err != nil {
				errs <- fmt.Errorf("client %d subscribe: %w", c, err)
				return
			}
			var lastSeq uint64
			deadline := time.After(15 * time.Second)
			for got := 0; got < wantFrames; got++ {
				select {
				case f, ok := <-frames:
					if !ok {
						errs <- fmt.Errorf("client %d: stream closed after %d frames: %v", c, got, cl.StreamErr())
						return
					}
					if f.Seq <= lastSeq {
						errs <- fmt.Errorf("client %d: push seq %d after %d", c, f.Seq, lastSeq)
						return
					}
					lastSeq = f.Seq
					for _, a := range f.Annotations {
						if d := geo.DistanceMeters(pos, a.Anchor); d > 400 {
							errs <- fmt.Errorf("client %d: annotation anchored %.0fm away — foreign session's frame", c, d)
							return
						}
					}
				case <-deadline:
					errs <- fmt.Errorf("client %d: stream stalled", c)
					return
				}
			}
			if err := cl.Unsubscribe(); err != nil {
				errs <- fmt.Errorf("client %d unsubscribe: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every subscription ended cleanly: nothing left to replay.
	tc.router.subsMu.Lock()
	left := len(tc.router.subs)
	tc.router.subsMu.Unlock()
	if left != 0 {
		t.Fatalf("%d subscriptions still tracked after clean unsubscribes", left)
	}
}

// TestRetryPolicyDeterministicDelays pins the reconnect backoff clock:
// doubling from Base, capped at Max, budgeted by Attempts — checked as
// pure math, no time elapses.
func TestRetryPolicyDeterministicDelays(t *testing.T) {
	p := RetryPolicy{Base: 50 * time.Millisecond, Max: time.Second, Attempts: 6}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, time.Second,
		time.Second, time.Second, // past the cap it stays flat
	}
	for i, w := range want {
		if got := p.delay(i + 1); got != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.delay(0); got != p.Base {
		t.Fatalf("delay(0) = %v, want clamped to Base", got)
	}
	var d RetryPolicy
	d.defaults()
	if d.Base != 50*time.Millisecond || d.Max != time.Second || d.Attempts != 6 {
		t.Fatalf("defaults = %+v", d)
	}
	neg := RetryPolicy{Attempts: -1}
	neg.defaults()
	if neg.Attempts != -1 {
		t.Fatalf("negative Attempts (retry disabled) clobbered to %d", neg.Attempts)
	}
}

// TestRouterReconnectsShardAndReplaysStreams bounces a shard under a live
// subscription: the router redials with backoff, replays the subscribe on
// the new connection, and — after the client refreshes its sensor state —
// pushes resume on the same client channel, no ErrShardDown in sight.
func TestRouterReconnectsShardAndReplaysStreams(t *testing.T) {
	tc := startCluster(t, 1, nil, RouterOptions{
		Deadline: -1,
		Retry:    RetryPolicy{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 50},
	})
	cl, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	select {
	case f := <-frames:
		lastSeq = f.Seq
	case <-time.After(10 * time.Second):
		t.Fatal("no frame before the bounce")
	}

	// Bounce: close the shard, then bring a fresh one up on the same
	// address with the same member ID.
	addr := tc.shards[0].cs.ln.Addr().String()
	if err := tc.shards[0].Close(); err != nil {
		t.Fatal(err)
	}
	p := newTestPlatform(t)
	var sh2 *Shard
	deadline := time.Now().Add(10 * time.Second)
	for {
		sh2 = NewShard(p, discardLogger(), ShardOptions{
			ID:        1,
			Options:   Options{Scheduler: SchedulerConfig{Deadline: -1}},
			LoadEvery: 5 * time.Millisecond,
		})
		if _, err := sh2.Listen(addr); err == nil {
			break
		}
		_ = sh2.Close()
		if time.Now().After(deadline) {
			t.Fatal("could not rebind the shard address")
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { _ = sh2.Close() })

	// The shard bounce razed server-side sensor state; refresh it while
	// the router reconnects and replays the subscription.
	refresh := time.NewTicker(20 * time.Millisecond)
	defer refresh.Stop()
	resumed := time.After(30 * time.Second)
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("stream died across the bounce: %v", cl.StreamErr())
			}
			// The replayed server-side stream restarts its wire counter,
			// but the channel's Seq contract survives the bounce: the
			// client rebases, so it stays strictly increasing.
			if f.Seq <= lastSeq {
				t.Fatalf("push seq went %d -> %d across the bounce", lastSeq, f.Seq)
			}
			lastSeq = f.Seq
			if len(f.Annotations) > 0 {
				if tc.router.Metrics().Counter("router.shard.reconnects").Value() == 0 {
					t.Fatal("frames resumed without a recorded reconnect")
				}
				return // stream resumed on the new shard
			}
		case <-refresh.C:
			_ = cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3})
		case <-resumed:
			t.Fatal("stream never resumed after the shard came back")
		}
	}
}

// TestRouterStreamFailsAfterRetryBudget kills a shard for good under a
// live subscription with a tiny retry budget: once the budget is spent —
// and only then — the stream ends with the typed ErrShardDown obituary.
func TestRouterStreamFailsAfterRetryBudget(t *testing.T) {
	tc := startCluster(t, 1, nil, RouterOptions{
		Deadline: -1,
		Retry:    RetryPolicy{Base: 10 * time.Millisecond, Max: 20 * time.Millisecond, Attempts: 3},
	})
	cl, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-frames:
	case <-time.After(10 * time.Second):
		t.Fatal("no frame before the shard died")
	}
	if err := tc.shards[0].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-frames:
			if ok {
				continue // in-flight frames drain first
			}
			serr := cl.StreamErr()
			if serr == nil || !strings.Contains(serr.Error(), ErrShardDown.Error()) {
				t.Fatalf("stream ended with %v, want ErrShardDown", serr)
			}
			if got := tc.router.Metrics().Counter("router.shard.reconnects").Value(); got != 0 {
				t.Fatalf("reconnect recorded against a dead listener: %d", got)
			}
			return
		case <-deadline:
			t.Fatal("stream never surfaced ErrShardDown after the retry budget")
		}
	}
}

// TestRouterRejectsMiswiredShard checks the hello handshake catches a
// membership config pointing at the wrong shard.
func TestRouterRejectsMiswiredShard(t *testing.T) {
	discard := log.New(io.Discard, "", 0)
	p, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShard(p, discard, ShardOptions{ID: 7})
	addr, err := sh.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sh.Close() })

	rt, err := NewRouter([]Member{{ID: 1, Addr: addr}}, discard, nil, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Connect(); err == nil {
		t.Fatal("router connected to a shard announcing the wrong ID")
	} else if !strings.Contains(err.Error(), "miswired") {
		t.Fatalf("unexpected connect error: %v", err)
	}
}

// TestShardPipelinedFrameRequestsSameSession pins the scratch-aliasing fix:
// a client that pipelines frame requests without awaiting replies re-enters
// Session.Frame while an earlier reply could still be encoding. The reply
// is encoded under the session lock (FrameVisit), so under -race with
// several workers every pipelined request must come back a valid frame.
func TestShardPipelinedFrameRequestsSameSession(t *testing.T) {
	discard := log.New(io.Discard, "", 0)
	p, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShard(p, discard, ShardOptions{
		ID:      1,
		Options: Options{Scheduler: SchedulerConfig{Workers: 4, Deadline: -1}},
	})
	addr, err := sh.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sh.Close() })

	// Speak the backend protocol directly: hello, then pipeline.
	conn := dialRaw(t, addr)
	conn.hello(t, "test-router", wire.ProtoMax)

	const session = 42
	const burst = 32
	conn.sendGPS(t, session, center)
	for i := 0; i < burst; i++ {
		conn.send(t, wire.MsgFrameRequest, session, nil)
	}
	seqs := make(map[uint64]bool)
	for i := 0; i < burst; i++ {
		env := conn.read(t)
		if env.Type == wire.MsgLoad {
			i-- // load pushes interleave with replies; not a frame reply
			continue
		}
		if env.Type != wire.MsgAnnotations {
			t.Fatalf("reply %d: type %v payload %q", i, env.Type, env.Payload)
		}
		if env.Session != session {
			t.Fatalf("reply %d: session %d", i, env.Session)
		}
		if _, err := core.DecodeFrame(env.Payload); err != nil {
			t.Fatalf("reply %d: corrupt frame payload: %v", i, err)
		}
		seqs[env.Seq] = true
	}
	if len(seqs) != burst {
		t.Fatalf("got %d distinct reply seqs, want %d", len(seqs), burst)
	}
}

// TestRouterReportsShardDownNotShed pins the failure diagnosis: once a
// shard's backend connection dies, frame requests must surface
// ErrShardDown — not be absorbed as benign overload sheds by a stale
// outstanding-frame head.
func TestRouterReportsShardDownNotShed(t *testing.T) {
	tc := startCluster(t, 1, nil, RouterOptions{})
	cl, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.RequestFrame(); err != nil {
		t.Fatal(err)
	}
	if err := tc.shards[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Wait until the router's shard reader has observed the dead backend —
	// a request racing the detection would be forwarded into the void and
	// never answered, which is the pre-existing reconnect gap (ROADMAP),
	// not what this test pins.
	ss := tc.router.shards[tc.shards[0].ID()]
	deadline := time.Now().Add(5 * time.Second)
	for !ss.down.Load() {
		if time.Now().After(deadline) {
			t.Fatal("router never observed the dead shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, _, err = cl.RequestFrame()
	if err == nil {
		t.Fatal("frame request succeeded against a dead shard")
	}
	if strings.Contains(err.Error(), ErrFrameShed.Error()) {
		t.Fatalf("dead shard reported as overload shed: %v", err)
	}
	if !strings.Contains(err.Error(), ErrShardDown.Error()) {
		t.Fatalf("dead shard surfaced %v, want ErrShardDown", err)
	}
	if shed := tc.router.Metrics().Counter("router.frames.shed").Value(); shed != 0 {
		t.Fatalf("dead shard produced %d fake overload sheds", shed)
	}
}

// TestRouterStripsControlPayloads pins the discriminator isolation: a
// client control envelope whose payload collides with the router↔shard
// CtrlEndSession verb must still behave as a ping (Ack) and must not tear
// the session down. Spoken raw, since the Client API never sends control
// payloads.
func TestRouterStripsControlPayloads(t *testing.T) {
	tc := startCluster(t, 1, nil, RouterOptions{Deadline: -1})
	rc := dialRaw(t, tc.addr)
	rc.sendGPS(t, 0, center)
	frameSeq := rc.send(t, wire.MsgFrameRequest, 0, nil)
	env := rc.read(t)
	if env.Type != wire.MsgAnnotations || env.Seq != frameSeq {
		t.Fatalf("frame reply = %v seq %d", env.Type, env.Seq)
	}
	if got := tc.shards[0].Engine().Platform().NumSessions(); got != 1 {
		t.Fatalf("live sessions = %d, want 1", got)
	}
	// A control with the internal end-session discriminator, sent by the
	// client: must round-trip as an Ack like any other control.
	ctlSeq := rc.send(t, wire.MsgControl, 0, []byte{CtrlEndSession})
	env = rc.read(t)
	if env.Type != wire.MsgAck || env.Seq != ctlSeq {
		t.Fatalf("control reply = %v seq %d, want ack seq %d", env.Type, env.Seq, ctlSeq)
	}
	if got := tc.shards[0].Engine().Platform().NumSessions(); got != 1 {
		t.Fatalf("client control payload ended the session (live = %d)", got)
	}
	// The session still frames.
	rc.send(t, wire.MsgFrameRequest, 0, nil)
	if env = rc.read(t); env.Type != wire.MsgAnnotations {
		t.Fatalf("post-control frame reply = %v", env.Type)
	}
}
