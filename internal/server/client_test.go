package server

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// fakeServer accepts one connection, answers the hello at the given
// version, and hands the conn to serve. It stands in for misbehaving or
// down-level servers the real Engine would never produce.
func fakeServer(t *testing.T, version uint32, serve func(fr *wire.FrameReader, fw *wire.FrameWriter)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fr := wire.NewFrameReader(conn)
		fw := wire.NewFrameWriter(conn)
		env, err := fr.ReadEnvelope()
		if err != nil || env.Type != wire.MsgHello {
			return
		}
		var hb wire.Buffer
		wire.EncodeHelloInto(&hb, wire.Hello{ID: 99, Name: "fake", Version: version})
		_ = fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgHello, Seq: env.Seq, Payload: hb.Bytes()})
		_ = fw.Flush()
		if serve != nil {
			serve(fr, fw)
		}
	}()
	return ln.Addr().String()
}

// encodeTaggedFrame builds a valid empty-frame payload whose ElapsedNs
// carries the tag, so tests can tell replies apart.
func encodeTaggedFrame(tag uint64) []byte {
	var b wire.Buffer
	b.Uvarint(0)   // annotations
	b.Uvarint(0)   // level
	b.Uvarint(tag) // elapsed ns = tag
	return b.Bytes()
}

// TestRequestFrameMatchesSeq is the regression test for the reply-matching
// bug: the old client accepted *any* MsgAnnotations as the answer to its
// frame request. The fake server answers each request with an unrelated
// annotations envelope (wrong seq) first, then the real reply; the client
// must return the frame whose envelope carried the request's seq.
func TestRequestFrameMatchesSeq(t *testing.T) {
	addr := fakeServer(t, wire.ProtoV2, func(fr *wire.FrameReader, fw *wire.FrameWriter) {
		for {
			env, err := fr.ReadEnvelope()
			if err != nil {
				return
			}
			if env.Type != wire.MsgFrameRequest {
				continue
			}
			// A stray reply with an unrelated seq, then the real one.
			_ = fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgAnnotations, Seq: env.Seq + 1000,
				Session: 99, Payload: encodeTaggedFrame(666)})
			_ = fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgAnnotations, Seq: env.Seq,
				Session: 99, Payload: encodeTaggedFrame(42)})
			_ = fw.Flush()
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		f, _, err := cl.RequestFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.ElapsedNs != 42 {
			t.Fatalf("round %d: client returned the wrong-seq reply (tag %d)", i, f.ElapsedNs)
		}
	}
}

// TestPipelinedRequestsMatchOutOfOrderReplies drives concurrent requests
// against a server that answers them in reverse order: each caller must
// still get its own reply.
func TestPipelinedRequestsMatchOutOfOrderReplies(t *testing.T) {
	const batch = 4
	addr := fakeServer(t, wire.ProtoV2, func(fr *wire.FrameReader, fw *wire.FrameWriter) {
		for {
			var pend []*wire.Envelope
			for len(pend) < batch {
				env, err := fr.ReadEnvelope()
				if err != nil {
					return
				}
				if env.Type == wire.MsgFrameRequest {
					pend = append(pend, env)
				}
			}
			for i := len(pend) - 1; i >= 0; i-- {
				_ = fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgAnnotations, Seq: pend[i].Seq,
					Session: 99, Payload: encodeTaggedFrame(pend[i].Seq)})
			}
			_ = fw.Flush()
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, _, err := cl.RequestFrame()
			if err != nil {
				errs <- err
				return
			}
			if f.ElapsedNs == 0 {
				errs <- errors.New("untagged reply")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The matching invariant is stronger than "no error": every caller saw
	// the tag equal to a seq the server actually used, and the demux map
	// drained fully.
	cl.mu.Lock()
	left := len(cl.pending)
	cl.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d pending entries leaked", left)
	}
}

// TestDialVersionMismatchTyped pins the fail-closed handshake: a client
// requiring v2 against a v1-only server gets a *wire.VersionError from
// Dial — typed, immediate, no hang — and a default client that settled on
// v1 gets the same typed error from Subscribe without touching the wire.
func TestDialVersionMismatchTyped(t *testing.T) {
	_, addr := startServerV1(t)

	// Requiring v2 fails the dial itself.
	_, err := DialContext(context.Background(), addr, DialOptions{MinProto: wire.ProtoV2})
	var ve *wire.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("dial error = %v, want *wire.VersionError", err)
	}
	if ve.Remote != wire.ProtoV1 || ve.Need != wire.ProtoV2 {
		t.Fatalf("version error fields: %+v", ve)
	}

	// A tolerant client connects at v1, but Subscribe fails typed.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != wire.ProtoV1 {
		t.Fatalf("negotiated %d, want v1", cl.Proto())
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Subscribe(context.Background(), SubscribeOptions{})
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe against v1 server hung")
	}
	if !errors.As(err, &ve) {
		t.Fatalf("subscribe error = %v, want *wire.VersionError", err)
	}
	// Request/reply still works on the negotiated v1 connection.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

// startServerV1 is startServer pinned to protocol v1.
func startServerV1(t *testing.T) (*Server, string) {
	t.Helper()
	p := newTestPlatform(t)
	srv := NewWithOptions(p, discardLogger(),
		Options{Scheduler: SchedulerConfig{Deadline: -1}, MaxProto: wire.ProtoV1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr
}

// TestSubscribeStandalone is the v2 streaming happy path on a standalone
// server: subscribe once, then pushed frames arrive at a steady cadence
// with strictly increasing stream seqs and no further requests from the
// client; unsubscribe closes the channel cleanly.
func TestSubscribeStandalone(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() < wire.ProtoV2 {
		t.Fatalf("negotiated %d, want >= v2", cl.Proto())
	}
	if cl.SessionID() == 0 {
		t.Fatal("handshake did not carry the session ID")
	}
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	var got int
	deadline := time.After(10 * time.Second)
	for got < 10 {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("stream closed after %d frames: %v", got, cl.StreamErr())
			}
			if f.Seq <= lastSeq {
				t.Fatalf("push seq went %d -> %d: not strictly increasing", lastSeq, f.Seq)
			}
			lastSeq = f.Seq
			if len(f.Annotations) == 0 {
				t.Fatal("pushed frame carries no annotations")
			}
			got++
		case <-deadline:
			t.Fatalf("only %d pushed frames arrived", got)
		}
	}
	if err := cl.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	// The channel must close (possibly after a few in-flight frames).
	for {
		select {
		case _, ok := <-frames:
			if !ok {
				if err := cl.StreamErr(); err != nil {
					t.Fatalf("clean unsubscribe left StreamErr = %v", err)
				}
				// Request/reply still works after the stream ends.
				if _, _, err := cl.RequestFrame(); err != nil {
					t.Fatal(err)
				}
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatal("channel never closed after unsubscribe")
		}
	}
}

// TestSubscribeContextCancelUnsubscribes checks the context path: when the
// subscription context is cancelled the client unsubscribes on its own and
// the channel closes.
func TestSubscribeContextCancelUnsubscribes(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	frames, err := cl.Subscribe(ctx, SubscribeOptions{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One frame proves the stream is live, then cancel.
	select {
	case <-frames:
	case <-time.After(10 * time.Second):
		t.Fatal("no frame before cancel")
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-frames:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel never closed after context cancel")
		}
	}
}

// TestCloseUnblocksSubscribersAndWaiters checks Close's contract: an
// in-flight round-trip and a live subscription both unblock.
func TestCloseUnblocksSubscribersAndWaiters(t *testing.T) {
	// A server that acks subscribes but then goes silent, so the client
	// has a live stream and a hanging request.
	addr := fakeServer(t, wire.ProtoV2, func(fr *wire.FrameReader, fw *wire.FrameWriter) {
		for {
			env, err := fr.ReadEnvelope()
			if err != nil {
				return
			}
			if env.Type == wire.MsgSubscribe {
				_ = fw.WriteEnvelope(&wire.Envelope{Type: wire.MsgAck, Seq: env.Seq})
				_ = fw.Flush()
			}
			// Frame requests are swallowed: the waiter must be freed by
			// Close, not by a reply.
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		_, _, err := cl.RequestFrame()
		reqDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the wire
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-reqDone:
		if err == nil {
			t.Fatal("request succeeded against a silent server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the request waiter")
	}
	select {
	case _, ok := <-frames:
		if ok {
			// Drain: channel must close shortly.
			for range frames {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not close the subscription channel")
	}
	if cl.StreamErr() == nil {
		t.Fatal("abnormal stream end recorded no error")
	}
}

// blockingWriter blocks every Write until released, emulating a peer that
// stops reading while the kernel buffer is full.
type blockingWriter struct {
	release chan struct{}
}

func (bw *blockingWriter) Write(p []byte) (int, error) {
	<-bw.release
	return len(p), nil
}

// TestOutboxDropsOldestWhenFull pins the backpressure policy at the unit
// level: with the writer wedged, enqueues beyond capacity drop the oldest
// queued push (releasing its buffer) and never block the caller.
func TestOutboxDropsOldestWhenFull(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{})}
	var reg metrics.Registry
	dropped := reg.Counter("dropped")
	ob := newOutbox(&lockedWriter{fw: wire.NewFrameWriter(bw)}, 4, dropped, nil)

	released := make(map[uint64]bool)
	var mu sync.Mutex
	enq := func(seq uint64) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			ob.enqueue(outMsg{env: wire.Envelope{Type: wire.MsgFramePush, Seq: seq},
				release: func() { mu.Lock(); released[seq] = true; mu.Unlock() }})
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("enqueue(%d) blocked", seq)
		}
	}
	// The writer takes the first message off the queue and wedges in
	// Write; capacity 4 then fills with the next four. Give the writer a
	// beat to pick up msg 1 so the accounting below is deterministic.
	enq(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		ob.mu.Lock()
		n := ob.queueLenLocked()
		ob.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first push")
		}
		time.Sleep(time.Millisecond)
	}
	for seq := uint64(2); seq <= 5; seq++ {
		enq(seq) // fills capacity exactly
	}
	enq(6) // must evict 2
	enq(7) // must evict 3
	mu.Lock()
	if !released[2] || !released[3] {
		mu.Unlock()
		t.Fatal("oldest pushes were not dropped")
	}
	if released[6] || released[7] {
		mu.Unlock()
		t.Fatal("newest pushes were dropped")
	}
	mu.Unlock()
	if got := dropped.Value(); got != 2 {
		t.Fatalf("dropped counter = %d, want 2", got)
	}
	close(bw.release) // unwedge; everything drains
	ob.close()
	mu.Lock()
	defer mu.Unlock()
	for seq := uint64(4); seq <= 7; seq++ {
		if !released[seq] {
			t.Fatalf("push %d never released after drain", seq)
		}
	}
}

// TestStreamSkipsTicksWhenBehind pins cadence degradation: with the only
// scheduler worker wedged, a fast subscription's ticks are skipped (at
// most one frame in flight) instead of piling jobs into the queue.
func TestStreamSkipsTicksWhenBehind(t *testing.T) {
	p := newTestPlatform(t)
	srv := NewWithOptions(p, discardLogger(),
		Options{Scheduler: SchedulerConfig{Workers: 1, Deadline: -1}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Wedge the single worker.
	blocker := p.NewSession()
	if err := blocker.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var blocked sync.WaitGroup
	blocked.Add(1)
	if err := srv.Scheduler().Submit(blocker, func(_ *core.Frame, err error) {
		defer blocked.Done()
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	defer blocked.Wait()
	defer close(release)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	skipped := srv.Scheduler().Metrics().Counter("server.stream.skipped")
	deadline := time.Now().Add(10 * time.Second)
	for skipped.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stream skipped no ticks while the worker was wedged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Cadence degraded to completion pacing: exactly one frame job belongs
	// to the stream (queued behind the blocker) and no pushes complete
	// while the worker is wedged — the stream parks instead of piling jobs
	// into the queue.
	time.Sleep(20 * time.Millisecond)
	if pushes := srv.Scheduler().Metrics().Counter("server.stream.pushes").Value(); pushes != 0 {
		t.Fatalf("pushes completed while the only worker was wedged: %d", pushes)
	}
	if got := skipped.Value(); got != 1 {
		t.Fatalf("skipped = %d ticks, want exactly 1 (the stream parks on the in-flight frame)", got)
	}
}

// TestStaleContextCannotKillNewerSubscription pins the watcher scoping: a
// cancelled context from an *earlier*, already-unsubscribed subscription
// must not tear down the stream that replaced it.
func TestStaleContextCannotKillNewerSubscription(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	if _, err := cl.Subscribe(ctx1, SubscribeOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cancel1() // the first subscription's watcher must be a no-op by now
	// The second stream keeps flowing well past the cancellation.
	deadline := time.After(10 * time.Second)
	for got := 0; got < 5; got++ {
		select {
		case _, ok := <-frames:
			if !ok {
				t.Fatalf("stale context killed the newer subscription after %d frames (StreamErr=%v)",
					got, cl.StreamErr())
			}
		case <-deadline:
			t.Fatal("stream stalled")
		}
	}
}

// TestSubscribeTwiceFails pins the one-stream-per-connection rule.
func TestSubscribeTwiceFails(t *testing.T) {
	_, addr := startServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Subscribe(context.Background(), SubscribeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(context.Background(), SubscribeOptions{}); !errors.Is(err, ErrAlreadySubscribed) {
		t.Fatalf("second subscribe err = %v, want ErrAlreadySubscribed", err)
	}
}

// TestLegacyRawClientStillServed pins v1 compatibility on the standalone
// server: a connection that never says hello speaks the old protocol
// unchanged, and a subscribe attempt on it is rejected with a version
// error rather than honoured or hung.
func TestLegacyRawClientStillServed(t *testing.T) {
	_, addr := startServer(t)
	rc := dialRaw(t, addr)
	rc.sendGPS(t, 0, center)
	seq := rc.send(t, wire.MsgFrameRequest, 0, nil)
	env := rc.read(t)
	if env.Type != wire.MsgAnnotations || env.Seq != seq {
		t.Fatalf("legacy frame reply = %v seq %d, want annotations seq %d", env.Type, env.Seq, seq)
	}
	var sb wire.Buffer
	wire.EncodeSubscribeInto(&sb, wire.Subscribe{IntervalMS: 1})
	rc.send(t, wire.MsgSubscribe, 0, sb.Bytes())
	env = rc.read(t)
	if env.Type != wire.MsgError || !strings.Contains(string(env.Payload), "version mismatch") {
		t.Fatalf("v1 subscribe reply = %v %q, want version-mismatch error", env.Type, env.Payload)
	}
}

// TestRawV2SubscribePushesWithoutRequests is the wire-level acceptance
// check: after hello and subscribe, pushed frames arrive with strictly
// increasing seqs while the client sends nothing at all.
func TestRawV2SubscribePushesWithoutRequests(t *testing.T) {
	_, addr := startServer(t)
	rc := dialRaw(t, addr)
	peer := rc.hello(t, "raw-v2", wire.ProtoMax)
	if peer.Version != wire.ProtoMax {
		t.Fatalf("server announced v%d", peer.Version)
	}
	rc.sendGPS(t, 0, center)
	var sb wire.Buffer
	wire.EncodeSubscribeInto(&sb, wire.Subscribe{IntervalMS: 2, Budget: 16})
	subSeq := rc.send(t, wire.MsgSubscribe, 0, sb.Bytes())
	if env := rc.read(t); env.Type != wire.MsgAck || env.Seq != subSeq {
		t.Fatalf("subscribe reply = %v seq %d", env.Type, env.Seq)
	}
	var last uint64
	for i := 0; i < 5; i++ {
		env := rc.read(t)
		if env.Type != wire.MsgFramePush {
			t.Fatalf("push %d: type %v", i, env.Type)
		}
		if env.Seq <= last {
			t.Fatalf("push seq went %d -> %d", last, env.Seq)
		}
		last = env.Seq
		if _, err := core.DecodeFrame(env.Payload); err != nil {
			t.Fatalf("push %d: corrupt frame: %v", i, err)
		}
	}
}

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// newTestPlatform builds the small-city platform the server tests share.
func newTestPlatform(t *testing.T) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
