package server

import (
	"fmt"
	"net"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// corePoint builds a geo.Point (helper shared with the server side).
func corePoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }

// Client is a minimal protocol client used by the load generator, examples,
// and tests. Not safe for concurrent use; run one per goroutine.
type Client struct {
	conn net.Conn
	fr   *wire.FrameReader
	fw   *wire.FrameWriter
	seq  uint64
	buf  wire.Buffer // reusable payload encode buffer
}

// Dial connects to an arbd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return &Client{conn: conn, fr: wire.NewFrameReader(conn), fw: wire.NewFrameWriter(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(t wire.MsgType, payload []byte) error {
	c.seq++
	if err := c.fw.WriteEnvelope(&wire.Envelope{Type: t, Seq: c.seq, Payload: payload}); err != nil {
		return err
	}
	return c.fw.Flush()
}

// SendGPS streams a GPS fix (no reply expected).
func (c *Client) SendGPS(fix sensor.GPSFix) error {
	b := &c.buf
	b.Reset()
	b.Byte(SensorGPS)
	b.Uvarint(uint64(fix.Time.UnixNano()))
	b.Float64(fix.Position.Lat)
	b.Float64(fix.Position.Lon)
	b.Float64(fix.AccuracyM)
	return c.send(wire.MsgSensorEvent, b.Bytes())
}

// SendIMU streams an inertial sample.
func (c *Client) SendIMU(s sensor.IMUSample) error {
	b := &c.buf
	b.Reset()
	b.Byte(SensorIMU)
	b.Uvarint(uint64(s.Time.UnixNano()))
	b.Float64(s.GyroZRad)
	b.Float64(s.AccelMps2)
	b.Float64(s.CompassDeg)
	return c.send(wire.MsgSensorEvent, b.Bytes())
}

// SendGaze streams a gaze sample.
func (c *Client) SendGaze(s sensor.GazeSample) error {
	b := &c.buf
	b.Reset()
	b.Byte(SensorGaze)
	b.Uvarint(uint64(s.Time.UnixNano()))
	b.Uvarint(s.TargetID)
	b.Float64(s.DwellMS)
	return c.send(wire.MsgSensorEvent, b.Bytes())
}

// RequestFrame asks for the current overlay and blocks for the reply.
func (c *Client) RequestFrame() (*core.DecodedFrame, time.Duration, error) {
	start := time.Now()
	if err := c.send(wire.MsgFrameRequest, nil); err != nil {
		return nil, 0, err
	}
	for {
		env, err := c.fr.ReadEnvelope()
		if err != nil {
			return nil, 0, err
		}
		switch env.Type {
		case wire.MsgAnnotations:
			f, err := core.DecodeFrame(env.Payload)
			return f, time.Since(start), err
		case wire.MsgError:
			return nil, 0, fmt.Errorf("client: server error: %s", env.Payload)
		default:
			// Skip unrelated replies (none in the current protocol).
		}
	}
}

// Ping round-trips a control message (connectivity check).
func (c *Client) Ping() error {
	if err := c.send(wire.MsgControl, nil); err != nil {
		return err
	}
	env, err := c.fr.ReadEnvelope()
	if err != nil {
		return err
	}
	if env.Type != wire.MsgAck {
		return fmt.Errorf("client: expected ack, got %v", env.Type)
	}
	return nil
}
