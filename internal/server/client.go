package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// Client errors.
var (
	// ErrClientClosed is returned for calls made after Close, and is the
	// terminal error all in-flight waiters observe when the connection
	// dies without a more specific cause.
	ErrClientClosed = errors.New("client: closed")
	// ErrAlreadySubscribed is returned by Subscribe while a frame
	// subscription is active: a connection carries one session, and one
	// session has one frame clock. Re-tune cadence by unsubscribing first.
	ErrAlreadySubscribed = errors.New("client: already subscribed")
)

// corePoint builds a geo.Point (helper shared with the server side).
func corePoint(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }

// DialOptions tunes the connection handshake.
type DialOptions struct {
	// MinProto is the lowest protocol version the client accepts (default
	// wire.ProtoV1). A streaming-only caller passes wire.ProtoV2: dialing
	// a v1 server then fails the handshake with a *wire.VersionError
	// instead of failing later, mid-session, on the first Subscribe.
	MinProto uint32
	// MaxProto caps the version the client announces (default
	// wire.ProtoMax). Benchmarks pin older versions here to compare wire
	// formats — a v3-capped client subscribes without the delta flag and
	// keeps receiving full MsgFramePush frames.
	MaxProto uint32
	// Name labels the client in the server's logs (default "client").
	Name string
}

// SubscribeOptions tunes a frame subscription.
type SubscribeOptions struct {
	// Interval is the target push cadence (default 33 ms ≈ 30 Hz; floor
	// 1 ms). The server treats it as a ceiling and degrades under load.
	Interval time.Duration
	// Budget bounds the server-side push queue for this connection; when
	// it is full the server drops the oldest frame (default 8).
	Budget int
	// Buffer is the local channel capacity (default Budget). When the
	// consumer falls behind, the oldest buffered frame is evicted to make
	// room and counted (PushesDropped) — the same drop-oldest policy as
	// the server's outbox, so a stalled consumer resumes on the freshest
	// frames and a slow reader costs itself, never anyone else.
	Buffer int
}

// Client is a concurrency-safe protocol client: the load generator,
// examples, benchmarks, and the public arbd package all speak through it.
// One goroutine owns the read side of the connection and demultiplexes —
// request/reply traffic is matched to callers by sequence number, pushed
// frames flow to the subscription channel — so any number of goroutines
// may send sensors, request frames, and consume a stream concurrently.
type Client struct {
	conn net.Conn
	fr   *wire.FrameReader

	wmu sync.Mutex // guards fw and buf
	fw  *wire.FrameWriter
	buf wire.Buffer // reusable payload encode buffer

	seq atomic.Uint64

	proto      uint32 // negotiated protocol version
	serverVer  uint32 // version the server announced
	sessionID  uint64 // session the server assigned (0 on legacy servers)
	pushesDrop atomic.Int64

	mu      sync.Mutex
	pending map[uint64]chan *wire.Envelope
	sub     *clientSub
	lastSub error // why the last subscription ended, if abnormally
	err     error // terminal connection error
	done    chan struct{}

	// subLifecycle serialises unsubscribe round-trips against each other
	// and against new Subscribes: without it, a straggling unsubscribe
	// (a ctx watcher racing an explicit Unsubscribe) could hit the wire
	// after a newer Subscribe and silently stop the new stream.
	subLifecycle sync.Mutex
}

// clientSub is one active frame subscription. Its mutex orders the demux
// goroutine's sends against the channel close — the close may come from
// Unsubscribe on any goroutine.
type clientSub struct {
	mu     sync.Mutex
	ch     chan *core.DecodedFrame
	closed bool
	// stop closes when the subscription ends, releasing its ctx watcher.
	stop chan struct{}
	// lastRaw/base/lastOut rebase server push counters: a router that
	// replays the subscription onto a reconnected shard starts a fresh
	// server-side stream whose counter restarts at 1, but the channel's
	// DecodedFrame.Seq contract is strictly increasing — so a counter
	// that moves backwards shifts base up to where the old epoch ended.
	// Touched only by the demux goroutine.
	lastRaw, base, lastOut uint64

	// Delta reconstruction state (protocol v4; demux goroutine only).
	// prev is the last reconstructed frame — it doubles as the consumer's
	// delivered frame, so streamed frames must be treated as read-only —
	// and prevSeq is its wire seq; a delta applies only to the push
	// immediately after it. needKey latches after a gap or a corrupt
	// delta: pushes drop (and one resync ack goes out) until the next
	// keyframe. applied counts pushes since the last progress ack.
	prev    *core.DecodedFrame
	prevSeq uint64
	needKey bool
	nkDrops int
	applied int
}

// ackEvery is the progress-ack cadence: one lightweight MsgAck per this
// many applied pushes keeps the server's view of the stream fresh without
// measurable upstream traffic.
const ackEvery = 8

// rebase maps a raw wire push counter onto the channel's monotonic Seq.
func (s *clientSub) rebase(raw uint64) uint64 {
	if raw <= s.lastRaw {
		s.base = s.lastOut // new server-side epoch (shard bounce + replay)
	}
	s.lastRaw = raw
	s.lastOut = s.base + raw
	return s.lastOut
}

func (s *clientSub) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
		close(s.stop)
	}
}

// deliver hands a frame to the consumer without blocking; it reports false
// when an older frame was evicted to make room (the consumer is behind).
// Eviction is drop-oldest, matching the server's outbox policy: a stalled
// consumer that wakes up reads the freshest frames, not second-old ones.
// Frames arriving after the close are discarded silently (stream over).
func (s *clientSub) deliver(f *core.DecodedFrame) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return true
	}
	select {
	case s.ch <- f:
		return true
	default:
	}
	// Buffer full: evict the oldest queued frame, then retry — the retry
	// can only fail if the consumer raced in and drained the channel, in
	// which case the send below succeeds instead.
	select {
	case <-s.ch:
	default:
	}
	select {
	case s.ch <- f:
	default:
	}
	return false
}

// Dial connects to an arbd server (standalone or router) and runs the
// protocol handshake at the default options.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, DialOptions{})
}

// DialContext connects with a context governing the dial and handshake.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return NewClient(ctx, conn, opts)
}

// NewClient wraps an established connection (tests and benchmarks inject
// byte-counting conns here), runs the hello handshake, and starts the
// reader. The client owns conn from this point, success or failure.
func NewClient(ctx context.Context, conn net.Conn, opts DialOptions) (*Client, error) {
	if opts.MinProto == 0 {
		opts.MinProto = wire.ProtoV1
	}
	if opts.MaxProto == 0 {
		opts.MaxProto = wire.ProtoMax
	}
	if opts.Name == "" {
		opts.Name = "client"
	}
	c := &Client{
		conn:    conn,
		fr:      wire.NewFrameReader(conn),
		fw:      wire.NewFrameWriter(conn),
		pending: make(map[uint64]chan *wire.Envelope),
		done:    make(chan struct{}),
	}
	if err := c.handshake(ctx, opts); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// handshake sends the client hello and settles the protocol version with
// the server's reply. It runs before the reader goroutine exists, so it
// reads the connection directly.
func (c *Client) handshake(ctx context.Context, opts DialOptions) error {
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	var hello wire.Buffer
	wire.EncodeHelloInto(&hello, wire.Hello{Name: opts.Name, Version: opts.MaxProto})
	seq := c.seq.Add(1)
	if err := c.writeEnvelope(&wire.Envelope{Type: wire.MsgHello, Seq: seq, Payload: hello.Bytes()}); err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	env, err := c.fr.ReadEnvelope()
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	switch env.Type {
	case wire.MsgHello:
	case wire.MsgError:
		return fmt.Errorf("client: handshake rejected: %s", env.Payload)
	default:
		return fmt.Errorf("client: handshake: server answered hello with %v", env.Type)
	}
	peer, err := wire.DecodeHello(env.Payload)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	proto, err := wire.Negotiate(opts.MaxProto, peer.Version, opts.MinProto)
	if err != nil {
		return err // *wire.VersionError: typed, fails closed
	}
	c.proto = proto
	c.serverVer = peer.Version
	c.sessionID = peer.ID
	return nil
}

// Proto returns the negotiated protocol version.
func (c *Client) Proto() uint32 { return c.proto }

// SessionID returns the session the server assigned this connection.
func (c *Client) SessionID() uint64 { return c.sessionID }

// PushesDropped counts frames discarded locally because the subscription
// consumer fell behind its channel buffer.
func (c *Client) PushesDropped() int64 { return c.pushesDrop.Load() }

// Close tears down the connection and unblocks every waiter: in-flight
// round-trips fail with the terminal error and an active subscription's
// channel closes.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done // reader observed the close and failed all waiters
	return err
}

// fail records the terminal error and unblocks everything exactly once.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pend := c.pending
	c.pending = nil
	sub := c.sub
	c.sub = nil
	if sub != nil && c.lastSub == nil {
		c.lastSub = c.err
	}
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch) // a closed reply channel means "terminal error, see c.err"
	}
	if sub != nil {
		sub.finish()
	}
	close(c.done)
}

// readLoop owns the connection's read side: pushes to the subscription,
// everything else matched to its caller by sequence number.
func (c *Client) readLoop() {
	for {
		env, err := c.fr.ReadEnvelope() // payload copied: handed across goroutines
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		switch {
		case env.Type == wire.MsgFramePush, env.Type == wire.MsgFrameDelta:
			c.deliverPush(env)
		case env.Type == wire.MsgError && env.Seq == 0:
			// Seq 0 is never a reply: it is the server's stream obituary
			// (a shard died past its reconnect budget, say). The stream
			// ends; request/reply keeps working.
			c.endSub(fmt.Errorf("client: stream ended by server: %s", env.Payload))
		default:
			c.mu.Lock()
			ch := c.pending[env.Seq]
			delete(c.pending, env.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- env // buffered; never blocks
			}
			// Unmatched envelopes (acks for router-replayed subscribes,
			// replies that lost their waiter to a context) are dropped.
		}
	}
}

func (c *Client) deliverPush(env *wire.Envelope) {
	c.mu.Lock()
	sub := c.sub
	c.mu.Unlock()
	if sub == nil {
		return // push raced an unsubscribe: drop
	}
	var f *core.DecodedFrame
	var err error
	switch {
	case env.Type == wire.MsgFramePush:
		f, err = core.DecodeFrame(env.Payload)
	case len(env.Payload) > 0 && core.FrameDeltaIsKeyframe(env.Payload):
		// A keyframe always applies — it is a full frame, and it clears
		// any pending resync.
		f, err = core.ApplyFrameDelta(nil, env.Payload)
	case sub.prev == nil || sub.needKey || env.Seq != sub.prevSeq+1:
		// Delta against a base we don't hold: a push was dropped somewhere
		// on the path (drop-oldest outbox, slow local consumer of the wire)
		// or an earlier delta was corrupt. Ask for one keyframe and drop
		// deltas until it arrives.
		sub.requestKeyframe(c)
		return
	default:
		f, err = core.ApplyFrameDelta(sub.prev, env.Payload)
	}
	if err != nil || f == nil {
		// Corrupt push: drop rather than kill the stream. A corrupt delta
		// additionally poisons the base, so resync.
		if env.Type == wire.MsgFrameDelta {
			sub.requestKeyframe(c)
		}
		return
	}
	if env.Type == wire.MsgFrameDelta {
		sub.prev, sub.prevSeq = f, env.Seq
		sub.needKey = false
		sub.applied++
		if sub.applied >= ackEvery {
			sub.applied = 0
			c.sendAck(wire.FrameAck{AppliedSeq: env.Seq})
		}
	}
	f.Seq = sub.rebase(env.Seq)
	if !sub.deliver(f) {
		c.pushesDrop.Add(1)
	}
}

// requestKeyframe sends one WantKeyframe ack per gap: the first
// undecodable delta asks, subsequent ones wait for the keyframe already
// requested. The requested keyframe can itself be shed by a drop-oldest
// outbox on the return path, so the latch re-asks every few discarded
// deltas rather than waiting out the server's keyframe cadence.
func (s *clientSub) requestKeyframe(c *Client) {
	if s.needKey {
		s.nkDrops++
		if s.nkDrops < ackEvery {
			return
		}
	}
	s.needKey = true
	s.nkDrops = 0
	c.sendAck(wire.FrameAck{AppliedSeq: s.prevSeq, WantKeyframe: true})
}

// sendAck fire-and-forgets a frame-ack (protocol v4). Errors are ignored:
// an ack lost to a dying connection is moot, and the read loop will learn
// of the death first.
func (c *Client) sendAck(a wire.FrameAck) {
	_ = c.send(wire.MsgAck, func(b *wire.Buffer) { wire.EncodeFrameAckInto(b, a) })
}

// endSub closes the active subscription, recording why. Without an active
// subscription it is a no-op, so a late obituary cannot clobber the cause
// an earlier teardown recorded.
func (c *Client) endSub(cause error) {
	c.mu.Lock()
	sub := c.sub
	if sub != nil {
		c.sub = nil
		c.lastSub = cause
	}
	c.mu.Unlock()
	if sub != nil {
		sub.finish()
	}
}

// endSubIf is endSub scoped to one specific subscription: a stale caller
// (an old context watcher, a late Unsubscribe) cannot tear down a newer
// stream that replaced the one it knew about.
func (c *Client) endSubIf(cs *clientSub, cause error) {
	c.mu.Lock()
	if c.sub != cs {
		c.mu.Unlock()
		return
	}
	c.sub = nil
	c.lastSub = cause
	c.mu.Unlock()
	cs.finish()
}

// StreamErr reports why the last subscription ended: nil after a clean
// Unsubscribe, the server's reason otherwise. Valid once the subscription
// channel has closed.
func (c *Client) StreamErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSub
}

// writeEnvelope frames, writes and flushes one envelope (any goroutine).
func (c *Client) writeEnvelope(env *wire.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.fw.WriteEnvelope(env); err != nil {
		return err
	}
	return c.fw.Flush()
}

// send writes a fire-and-forget envelope built by fill (which encodes the
// payload into the client's reusable buffer under the write lock).
func (c *Client) send(t wire.MsgType, fill func(b *wire.Buffer)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.buf.Reset()
	if fill != nil {
		fill(&c.buf)
	}
	env := wire.Envelope{Type: t, Seq: c.seq.Add(1), Payload: c.buf.Bytes()}
	if err := c.fw.WriteEnvelope(&env); err != nil {
		return err
	}
	return c.fw.Flush()
}

// roundTrip sends one request and blocks for the reply carrying its exact
// sequence number — an interleaved reply to some other request can never
// be mistaken for this one. It unblocks on reply, context cancellation,
// or connection death, whichever first.
func (c *Client) roundTrip(ctx context.Context, t wire.MsgType, payload []byte) (*wire.Envelope, error) {
	seq := c.seq.Add(1)
	ch := make(chan *wire.Envelope, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[seq] = ch
	c.mu.Unlock()

	if err := c.writeEnvelope(&wire.Envelope{Type: t, Seq: seq, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case env, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if env.Type == wire.MsgError {
			return nil, fmt.Errorf("client: server error: %s", env.Payload)
		}
		return env, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// SendGPS streams a GPS fix (no reply expected).
func (c *Client) SendGPS(fix sensor.GPSFix) error {
	return c.send(wire.MsgSensorEvent, func(b *wire.Buffer) {
		b.Byte(SensorGPS)
		b.Uvarint(uint64(fix.Time.UnixNano()))
		b.Float64(fix.Position.Lat)
		b.Float64(fix.Position.Lon)
		b.Float64(fix.AccuracyM)
	})
}

// SendIMU streams an inertial sample.
func (c *Client) SendIMU(s sensor.IMUSample) error {
	return c.send(wire.MsgSensorEvent, func(b *wire.Buffer) {
		b.Byte(SensorIMU)
		b.Uvarint(uint64(s.Time.UnixNano()))
		b.Float64(s.GyroZRad)
		b.Float64(s.AccelMps2)
		b.Float64(s.CompassDeg)
	})
}

// SendGaze streams a gaze sample.
func (c *Client) SendGaze(s sensor.GazeSample) error {
	return c.send(wire.MsgSensorEvent, func(b *wire.Buffer) {
		b.Byte(SensorGaze)
		b.Uvarint(uint64(s.Time.UnixNano()))
		b.Uvarint(s.TargetID)
		b.Float64(s.DwellMS)
	})
}

// RequestFrame asks for the current overlay and blocks for the reply —
// the legacy polling path, kept for v1 servers and one-shot uses.
func (c *Client) RequestFrame() (*core.DecodedFrame, time.Duration, error) {
	return c.RequestFrameContext(context.Background())
}

// RequestFrameContext is RequestFrame bounded by a context.
func (c *Client) RequestFrameContext(ctx context.Context) (*core.DecodedFrame, time.Duration, error) {
	start := time.Now()
	env, err := c.roundTrip(ctx, wire.MsgFrameRequest, nil)
	if err != nil {
		return nil, 0, err
	}
	if env.Type != wire.MsgAnnotations {
		return nil, 0, fmt.Errorf("client: expected annotations, got %v", env.Type)
	}
	f, err := core.DecodeFrame(env.Payload)
	return f, time.Since(start), err
}

// Ping round-trips a control message (connectivity check).
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext is Ping bounded by a context.
func (c *Client) PingContext(ctx context.Context) error {
	env, err := c.roundTrip(ctx, wire.MsgControl, nil)
	if err != nil {
		return err
	}
	if env.Type != wire.MsgAck {
		return fmt.Errorf("client: expected ack, got %v", env.Type)
	}
	return nil
}

// Subscribe switches the session to server-pushed frames (protocol v2):
// the server owns the frame clock from here and the returned channel
// yields decoded frames until Unsubscribe, context cancellation, or
// connection close — after which StreamErr reports why. Requires a
// v2-negotiated connection; against a v1 server it fails closed with a
// *wire.VersionError without touching the wire.
func (c *Client) Subscribe(ctx context.Context, opts SubscribeOptions) (<-chan *core.DecodedFrame, error) {
	if c.proto < wire.ProtoV2 {
		return nil, &wire.VersionError{Local: wire.ProtoMax, Remote: c.serverVer, Need: wire.ProtoV2}
	}
	// Reject out-of-range options instead of truncating them into a
	// different cadence — the codec enforces the same rule on decode.
	const maxU32 = 1<<32 - 1
	sub := wire.Subscribe{}
	if c.proto >= wire.ProtoV4 {
		// Negotiated delta pushes: the server diffs consecutive frames and
		// deliverPush reconstructs — transparent to the channel's consumer.
		sub.Flags = wire.SubFlagDelta
	}
	if opts.Interval > 0 {
		ms := opts.Interval.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		if ms > maxU32 {
			return nil, fmt.Errorf("client: subscribe interval %v overflows the wire field", opts.Interval)
		}
		sub.IntervalMS = uint32(ms)
	}
	if opts.Budget > 0 {
		if int64(opts.Budget) > maxU32 {
			return nil, fmt.Errorf("client: subscribe budget %d overflows the wire field", opts.Budget)
		}
		sub.Budget = uint32(opts.Budget)
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = pushBudget(sub)
	}

	cs := &clientSub{ch: make(chan *core.DecodedFrame, buffer), stop: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.sub != nil {
		c.mu.Unlock()
		return nil, ErrAlreadySubscribed
	}
	// Register before the ack round-trip: the first push may beat the ack
	// through the demux and must not be dropped.
	c.sub = cs
	c.lastSub = nil
	c.mu.Unlock()

	var payload wire.Buffer
	wire.EncodeSubscribeInto(&payload, sub)
	env, err := c.roundTrip(ctx, wire.MsgSubscribe, payload.Bytes())
	if err == nil && env.Type != wire.MsgAck {
		err = fmt.Errorf("client: expected subscribe ack, got %v", env.Type)
	}
	if err != nil {
		// The subscribe may already be on the wire with the server
		// streaming toward us (the wait gave up, not the server): send a
		// best-effort unsubscribe so an unobserved stream doesn't burn
		// scheduler slots for the life of the connection. Its ack is
		// unmatched and dropped by the demux.
		_ = c.writeEnvelope(&wire.Envelope{Type: wire.MsgUnsubscribe, Seq: c.seq.Add(1)})
		c.endSubIf(cs, err)
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = c.unsubscribe(cs)
			case <-cs.stop: // subscription already over: watcher retires
			case <-c.done:
			}
		}()
	}
	return cs.ch, nil
}

// Unsubscribe ends the active subscription cleanly: the server stops the
// stream, and once the server acks, the subscription channel closes. A
// second Unsubscribe is a no-op.
func (c *Client) Unsubscribe() error {
	c.mu.Lock()
	sub := c.sub
	c.mu.Unlock()
	if sub == nil {
		return nil
	}
	return c.unsubscribe(sub)
}

// unsubscribe ends one specific subscription. A caller holding a stale
// handle (replaced by a newer Subscribe) is a no-op — it must not send an
// unsubscribe that would kill the newer server-side stream. subLifecycle
// makes the active-check and the wire round-trip atomic against other
// unsubscribers and against Subscribe, so two racing teardowns of the
// same stream collapse into one wire message.
func (c *Client) unsubscribe(cs *clientSub) error {
	c.subLifecycle.Lock()
	defer c.subLifecycle.Unlock()
	c.mu.Lock()
	active := c.sub == cs
	c.mu.Unlock()
	if !active {
		return nil
	}
	_, err := c.roundTrip(context.Background(), wire.MsgUnsubscribe, nil)
	// Clean or not, the stream is over locally: late pushes are dropped.
	c.endSubIf(cs, nil)
	return err
}
