package server

import (
	"io"
	"log"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
)

var center = geo.Point{Lat: 22.3364, Lon: 114.2655}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	p, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shedding off: these tests assert request/reply integrity, and a CI
	// box slow enough to blow the 250 ms default would flake them.
	srv := NewWithOptions(p, log.New(io.Discard, "", 0),
		Options{Scheduler: SchedulerConfig{Deadline: -1}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Logf("close: %v", err)
		}
	})
	return srv, addr
}

func TestPingPong(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSensorThenFrame(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	now := time.Now()
	if err := c.SendGPS(sensor.GPSFix{Time: now, Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendIMU(sensor.IMUSample{Time: now.Add(time.Millisecond), CompassDeg: 90}); err != nil {
		t.Fatal(err)
	}
	f, rtt, err := c.RequestFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) == 0 {
		t.Fatal("no annotations over the wire")
	}
	if rtt <= 0 || rtt > 5*time.Second {
		t.Fatalf("rtt = %v", rtt)
	}
	if err := c.SendGaze(sensor.GazeSample{Time: now, TargetID: f.Annotations[0].ID, DwellMS: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			now := time.Now()
			if err := c.SendGPS(sensor.GPSFix{Time: now, Position: center, AccuracyM: 3}); err != nil {
				errs <- err
				return
			}
			for f := 0; f < 5; f++ {
				if _, _, err := c.RequestFrame(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerSurvivesGarbageClient(t *testing.T) {
	_, addr := startServer(t)
	// A raw connection writing junk must not take the server down.
	raw, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = raw.conn.Write([]byte("totally not a frame"))
	_ = raw.Close()

	// A well-behaved client still works afterwards.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndUnblocksClients(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}
