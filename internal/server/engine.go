// The frame-serving engine and the shared listener plumbing. Three roles
// are built on the Engine: the standalone Server (one session per client
// connection), the Shard (a partition of the session ID space, sessions
// resolved per envelope), and the Router (no engine of its own — it owns
// client connections and forwards to shards). Extracting the engine from
// the TCP listener is what lets one process serve any role with identical
// frame semantics.
package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/obs"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// Engine bundles what every frame-serving role shares: the platform, the
// bounded frame scheduler, and the pooled response-encode buffers. It has
// no listener — roles own their connections and call into the engine per
// envelope.
type Engine struct {
	platform *core.Platform
	sched    *FrameScheduler
	// wheel is the shared pacing clock for every subscription stream the
	// engine serves: one goroutine regardless of subscriber count.
	wheel *pacerWheel
	// rec is the frame flight recorder: every streamed frame's stage spans
	// (admission, queue, render, encode, outbox, write) land in its ring,
	// always on. Its instruments live in the platform registry.
	rec *obs.Recorder
	// live tracks the engine's running subscription streams for the
	// introspection plane's /debug/arbd/streams summary.
	liveMu sync.Mutex
	live   map[*frameStream]struct{}
	// bufs pools frame-response encode buffers: a frame is encoded once
	// into a pooled wire.Buffer handed to the framed writer, then the
	// buffer returns to the pool — no per-response allocations.
	bufs sync.Pool
}

// NewEngine builds an engine over the platform with the server's scheduler
// defaults (250 ms shedding deadline unless overridden, lag-aware admission
// from the platform's LoadSignal unless a Load source is given).
func NewEngine(p *core.Platform, opts Options) *Engine {
	switch {
	case opts.Scheduler.Deadline < 0:
		opts.Scheduler.Deadline = 0 // explicit: never shed
	case opts.Scheduler.Deadline == 0:
		opts.Scheduler.Deadline = defaultFrameDeadline
	}
	if opts.Scheduler.Load == nil {
		// Lag-aware admission by default: frames shed earlier when the
		// analytics plane falls behind the devices feeding it.
		opts.Scheduler.Load = p.LoadSignal
	}
	e := &Engine{
		platform: p,
		sched:    NewFrameScheduler(opts.Scheduler, p.Metrics()),
		rec:      obs.NewRecorder(p.Metrics(), obs.Options{}),
		live:     make(map[*frameStream]struct{}),
	}
	e.wheel = newPacerWheel(p.Metrics().Gauge("server.stream.pacers"))
	e.bufs.New = func() any { return wire.NewBuffer(1024) }
	return e
}

// Recorder exposes the engine's frame flight recorder.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Platform exposes the engine's platform.
func (e *Engine) Platform() *core.Platform { return e.platform }

// Scheduler exposes the engine's frame scheduler (for stats).
func (e *Engine) Scheduler() *FrameScheduler { return e.sched }

// Close stops the pacing wheel and the frame scheduler. Roles close their
// listeners (and stop their streams) first.
func (e *Engine) Close() {
	e.wheel.close()
	e.sched.Close()
}

// handle applies one inbound envelope against sess. When hasReply is true,
// reply has been filled in; pooled (when non-nil) backs reply.Payload and
// must be released only after the reply has been written.
func (e *Engine) handle(sess *core.Session, env, reply *wire.Envelope) (hasReply bool, pooled *wire.Buffer, err error) {
	switch env.Type {
	case wire.MsgSensorEvent:
		return false, nil, applySensor(sess, env.Payload) // sensor stream is one-way
	case wire.MsgFrameRequest:
		f, err := e.sched.Frame(sess)
		if err != nil {
			return false, nil, err
		}
		pooled = e.encodeFrameReply(reply, sess.ID, env.Seq, f)
		return true, pooled, nil
	case wire.MsgControl:
		*reply = wire.Envelope{Type: wire.MsgAck, Seq: env.Seq, Session: sess.ID}
		return true, nil, nil
	default:
		return false, nil, fmt.Errorf("server: unsupported message %v", env.Type)
	}
}

// encodeFrameReply encodes f into a pooled buffer and fills reply as the
// annotations response for (session, seq). The returned buffer backs
// reply.Payload; release it after the write.
//
//arbd:hotpath
func (e *Engine) encodeFrameReply(reply *wire.Envelope, session, seq uint64, f *core.Frame) *wire.Buffer {
	buf := e.bufs.Get().(*wire.Buffer)
	buf.Reset()
	core.EncodeFrameInto(buf, f)
	*reply = wire.Envelope{
		Type: wire.MsgAnnotations, Seq: seq, Session: session,
		Payload: buf.Bytes(),
	}
	return buf
}

// encodeFrameDeltaReply encodes f into a pooled buffer as a MsgFrameDelta
// push for (session, seq) — a full keyframe body when keyframe is set (or
// the frame has no previous layout), a diff against the session's previous
// frame otherwise. The returned buffer backs reply.Payload; release it
// after the write.
//
//arbd:hotpath
func (e *Engine) encodeFrameDeltaReply(reply *wire.Envelope, session, seq uint64, f *core.Frame, keyframe bool) *wire.Buffer {
	buf := e.bufs.Get().(*wire.Buffer)
	buf.Reset()
	core.EncodeFrameDeltaInto(buf, f, keyframe)
	*reply = wire.Envelope{
		Type: wire.MsgFrameDelta, Seq: seq, Session: session,
		Payload: buf.Bytes(),
	}
	return buf
}

// release returns a pooled response buffer.
func (e *Engine) release(buf *wire.Buffer) { e.bufs.Put(buf) }

// answerHello handles an inbound MsgHello on a listener-side connection:
// it decodes the peer's announced version, writes this node's hello reply
// (identity chosen by the role; localMax is the highest protocol version
// the role speaks, normally wire.ProtoMax), and returns the version both
// sides settled on. Mismatches fail closed: a MsgError carrying the typed
// error's text goes back and the connection should be dropped.
func answerHello(w *lockedWriter, env *wire.Envelope, id uint64, name string, localMax uint32) (peer wire.Hello, proto uint32, err error) {
	peer, err = wire.DecodeHello(env.Payload)
	if err != nil {
		_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Payload: []byte(err.Error())})
		return peer, 0, err
	}
	proto, err = wire.Negotiate(localMax, peer.Version, wire.ProtoMin)
	if err != nil {
		_ = w.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Payload: []byte(err.Error())})
		return peer, 0, err
	}
	var buf wire.Buffer
	wire.EncodeHelloInto(&buf, wire.Hello{ID: id, Name: name, Version: localMax})
	if err := w.write(&wire.Envelope{Type: wire.MsgHello, Seq: env.Seq, Session: id, Payload: buf.Bytes()}); err != nil {
		return peer, 0, err
	}
	return peer, proto, nil
}

// lockedWriter serialises envelope writes to one connection shared by
// several goroutines — scheduler callbacks, load pushers, stream outboxes,
// and read loops all reply on the same wire. Each write is framed and
// flushed atomically. When conn and timeout are set, every write carries a
// deadline: writers that hold shared locks (the router's forward path
// holds the membership-change lock across backend writes) must never block
// on a peer's full TCP buffer indefinitely — a partitioned peer turns into
// a timeout error, not a wedged lock.
type lockedWriter struct {
	mu      sync.Mutex
	fw      *wire.FrameWriter
	conn    net.Conn      // optional: deadline target and writev sink
	timeout time.Duration // optional: per-write deadline
	batch   wire.EnvelopeBatch
}

func (w *lockedWriter) write(env *wire.Envelope) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn != nil && w.timeout > 0 {
		// Refreshed per write, never cleared: the next write resets it, and
		// an idle connection has nothing in flight to time out.
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	if err := w.fw.WriteEnvelope(env); err != nil {
		return err
	}
	return w.fw.Flush()
}

// writeBatch frames and writes a backlog of queued pushes as one vectored
// write straight to the connection — one syscall for the whole batch
// instead of an encode+flush round per envelope. The buffered writer is
// flushed first so any partially-staged reply precedes the batch on the
// wire. Single-message batches (and writers without a raw conn, as in
// tests over in-memory pipes) take the ordinary buffered path.
func (w *lockedWriter) writeBatch(msgs []outMsg) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn != nil && w.timeout > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	if w.conn == nil || len(msgs) == 1 {
		for i := range msgs {
			if err := w.fw.WriteEnvelope(&msgs[i].env); err != nil {
				return err
			}
		}
		return w.fw.Flush()
	}
	w.batch.Reset()
	for i := range msgs {
		if err := w.batch.Add(&msgs[i].env); err != nil {
			return err
		}
	}
	if err := w.fw.Flush(); err != nil {
		return err
	}
	bufs := net.Buffers(w.batch.Buffers())
	//arbd:lock-ok mu only serializes this writer, and the write carries a deadline set above
	_, err := bufs.WriteTo(w.conn)
	return err
}

// connServer owns a role's accept loop and connection lifecycle; roles plug
// in their per-connection handler. Close is idempotent: it stops accepting,
// closes live connections, and waits for handlers to drain.
type connServer struct {
	ln     net.Listener
	logger *log.Logger
	serve  func(net.Conn)

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newConnServer(logger *log.Logger, serve func(net.Conn)) *connServer {
	if logger == nil {
		logger = log.Default()
	}
	return &connServer{
		logger: logger,
		serve:  serve,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
}

// listen binds addr and starts accepting connections, returning the bound
// address (useful with ":0").
func (cs *connServer) listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	cs.ln = ln
	cs.wg.Add(1)
	go cs.acceptLoop()
	return ln.Addr().String(), nil
}

func (cs *connServer) acceptLoop() {
	defer cs.wg.Done()
	for {
		conn, err := cs.ln.Accept()
		if err != nil {
			select {
			case <-cs.done:
				return
			default:
				cs.logger.Printf("server: accept: %v", err)
				return
			}
		}
		// Register before serving, then re-check shutdown: Close may have
		// swept the conn map between Accept returning and this registration,
		// in which case nobody else will ever close this conn and its
		// handler would block forever.
		cs.mu.Lock()
		cs.conns[conn] = struct{}{}
		cs.mu.Unlock()
		select {
		case <-cs.done:
			_ = conn.Close()
			continue
		default:
		}
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			defer func() {
				cs.mu.Lock()
				delete(cs.conns, conn)
				cs.mu.Unlock()
				_ = conn.Close()
			}()
			cs.serve(conn)
		}()
	}
}

// close stops accepting, closes live connections, and waits for handlers.
func (cs *connServer) close() error {
	var err error
	cs.closeOnce.Do(func() {
		close(cs.done)
		if cs.ln != nil {
			err = cs.ln.Close()
		}
		cs.mu.Lock()
		for c := range cs.conns {
			_ = c.Close()
		}
		cs.mu.Unlock()
		cs.wg.Wait()
	})
	return err
}

func applySensor(sess *core.Session, payload []byte) error {
	if len(payload) < 1 {
		return errors.New("server: empty sensor payload")
	}
	r := wire.NewReader(payload[1:])
	ns, err := r.Uvarint()
	if err != nil {
		return r.Err(err, "timestamp")
	}
	ts := time.Unix(0, int64(ns))
	switch payload[0] {
	case SensorGPS:
		lat, err1 := r.Float64()
		lon, err2 := r.Float64()
		acc, err3 := r.Float64()
		if err1 != nil || err2 != nil || err3 != nil {
			return errors.New("server: truncated gps payload")
		}
		return sess.OnGPS(sensor.GPSFix{Time: ts, Position: corePoint(lat, lon), AccuracyM: acc})
	case SensorIMU:
		gyro, err1 := r.Float64()
		accel, err2 := r.Float64()
		compass, err3 := r.Float64()
		if err1 != nil || err2 != nil || err3 != nil {
			return errors.New("server: truncated imu payload")
		}
		sess.OnIMU(sensor.IMUSample{Time: ts, GyroZRad: gyro, AccelMps2: accel, CompassDeg: compass})
		return nil
	case SensorGaze:
		target, err1 := r.Uvarint()
		dwell, err2 := r.Float64()
		if err1 != nil || err2 != nil {
			return errors.New("server: truncated gaze payload")
		}
		return sess.OnGaze(sensor.GazeSample{Time: ts, TargetID: target, DwellMS: dwell})
	default:
		return fmt.Errorf("server: unknown sensor kind %d", payload[0])
	}
}
