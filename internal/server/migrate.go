// Live membership changes: shard join, shard drain, and the per-session
// migration machinery both ride on. This is the router side of the
// control plane; the epoch bookkeeping lives in internal/server/membership
// and the session serialization in internal/core (snapshot.go).
//
// A membership change runs in four steps, single-writer under adminMu:
//
//  1. Plan: diff the current ring against the next one over the live
//     session set. Rendezvous hashing keeps the diff minimal — only the
//     joining/leaving member's share of sessions (~1/N) moves.
//  2. Gate: each moving session's client forwards pause (routerClient.fwdMu
//     + migrating channel), so no envelope can race its own state across
//     nodes. Un-gated sessions stream on, untouched.
//  3. Publish: the directory bumps the epoch; every routing decision from
//     here resolves against the new ring atomically.
//  4. Move: for each gated session — export the snapshot from the old
//     owner, import it on the new one, replay its subscription with the
//     push counter rebased, un-gate. Clients observe a pause and a bounded
//     frame gap, never ErrShardDown, and keep their server-side state.
//
// A drain detaches the old shard only after every move completed, so the
// shard's process can be stopped with zero session loss.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"arbd/internal/server/membership"
	"arbd/internal/wire"
)

// CtrlWatchMembership, inside a MsgControl envelope on an admin
// connection, subscribes the connection to membership pushes: every epoch
// bump is announced with a seq-0 MsgMembership until the connection
// closes.
const CtrlWatchMembership uint8 = 2

// migrateConcurrency bounds how many sessions migrate at once during one
// membership change: enough to pipeline the per-session round-trips,
// bounded so a drain of thousands of sessions doesn't stampede the
// destination shards.
const migrateConcurrency = 16

// migration is one in-flight session move; shard readers route
// MsgMigrateSession replies into resp (buffered, never blocking a reader).
type migration struct {
	resp chan migResult
}

type migResult struct {
	from    uint64 // member that answered
	status  uint8  // MigExported / MigImported / MigFailed
	payload []byte // snapshot or error text (copied)
}

// migrateReply routes one MsgMigrateSession reply to its waiting move.
func (r *Router) migrateReply(ss *routerShard, env *wire.Envelope) {
	r.migMu.Lock()
	m := r.migrations[env.Session]
	r.migMu.Unlock()
	if m == nil {
		r.reg.Counter("router.replies.orphaned").Inc()
		return
	}
	res := migResult{from: ss.member.ID}
	if len(env.Payload) > 0 {
		res.status = env.Payload[0]
		res.payload = append([]byte(nil), env.Payload[1:]...)
	}
	select {
	case m.resp <- res:
	default: // duplicate reply; the mover stopped listening
	}
}

// move is one planned session migration.
type move struct {
	session  uint64
	from, to uint64 // member IDs
}

// planMoves diffs two rings over the live session set: every session whose
// owner changes must migrate before its traffic may resolve against the
// new ring.
func (r *Router) planMoves(old, next *membership.Ring) []move {
	r.sessMu.RLock()
	ids := make([]uint64, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	r.sessMu.RUnlock()
	var moves []move
	for _, id := range ids {
		before, after := old.Pick(id), next.Pick(id)
		if before.ID != after.ID {
			moves = append(moves, move{session: id, from: before.ID, to: after.ID})
		}
	}
	return moves
}

// gateHandle is one gated session's un-gate token. at is when the gate
// closed: the client-visible migration pause runs from here (including any
// wait for a migration slot), not from when the move started executing.
type gateHandle struct {
	cl *routerClient
	ch chan struct{}
	at time.Time
}

// gateAll pauses forwards for every moving session. After this returns, no
// envelope for any of them is in flight toward a shard and none will start
// until its gate opens.
func (r *Router) gateAll(moves []move) map[uint64]gateHandle {
	gates := make(map[uint64]gateHandle, len(moves))
	for _, mv := range moves {
		r.sessMu.RLock()
		cl := r.sessions[mv.session]
		r.sessMu.RUnlock()
		if cl == nil {
			continue // client disconnected since planning; nothing to gate
		}
		ch := make(chan struct{})
		cl.fwdMu.Lock()
		cl.migrating = ch
		cl.fwdMu.Unlock()
		gates[mv.session] = gateHandle{cl: cl, ch: ch, at: time.Now()}
	}
	return gates
}

// ungate opens one session's gate (idempotent against a newer gate).
func (r *Router) ungate(g gateHandle) {
	if g.cl == nil {
		return
	}
	g.cl.fwdMu.Lock()
	if g.cl.migrating == g.ch {
		g.cl.migrating = nil
	}
	g.cl.fwdMu.Unlock()
	close(g.ch)
}

// ungateAll opens every gate (error-path rollback).
func (r *Router) ungateAll(gates map[uint64]gateHandle) {
	for _, g := range gates {
		r.ungate(g)
	}
}

// runMoves migrates every planned session with bounded concurrency,
// un-gating each as it completes and recording the client-visible pause.
// A failed move fails soft: the session follows the new ring with fresh
// state (its subscription, if any, is still resumed on the new owner) —
// state loss for that session, never a stuck gate or a dead stream.
func (r *Router) runMoves(moves []move, gates map[uint64]gateHandle) {
	if len(moves) == 0 {
		return
	}
	migrated := r.reg.Counter("router.sessions.migrated")
	failed := r.reg.Counter("router.migrations.failed")
	pause := r.reg.Histogram("router.migration.pause")
	sem := make(chan struct{}, migrateConcurrency)
	var wg sync.WaitGroup
	for _, mv := range moves {
		wg.Add(1)
		sem <- struct{}{}
		go func(mv move) {
			defer wg.Done()
			defer func() { <-sem }()
			from, to := r.shard(mv.from), r.shard(mv.to)
			// Re-check the client is still connected: a disconnect after
			// planning deletes the session from r.sessions, and its
			// deferred CtrlEndSession will resolve against the NEW ring —
			// migrating the orphan would strand it on the destination with
			// nothing left to end it. End it at its old owner instead
			// (flushes its telemetry), exactly as a normal disconnect would
			// have.
			r.sessMu.RLock()
			_, connected := r.sessions[mv.session]
			r.sessMu.RUnlock()
			if !connected {
				if from != nil {
					_ = from.forward(&wire.Envelope{Type: wire.MsgControl, Session: mv.session,
						Payload: []byte{CtrlEndSession}})
				}
				r.ungate(gates[mv.session])
				return
			}
			var err error
			switch {
			case from == nil || to == nil:
				err = ErrShardDown
			default:
				err = r.migrateSession(mv.session, from, to)
			}
			if err != nil {
				failed.Inc()
				r.logger.Printf("router: migrating session %d (%d→%d): %v", mv.session, mv.from, mv.to, err)
				r.resumeStream(mv.session, to)
			} else {
				migrated.Inc()
			}
			g := gates[mv.session]
			r.ungate(g)
			if !g.at.IsZero() {
				pause.Observe(time.Since(g.at))
			}
		}(mv)
	}
	wg.Wait()
}

// migrateSession moves one session: export from the old owner, import on
// the new one, resume its subscription. The caller holds the session's
// gate, so no client envelope races the move.
func (r *Router) migrateSession(id uint64, from, to *routerShard) error {
	if p := from.proto(); p < wire.ProtoV3 {
		return fmt.Errorf("source shard %d speaks v%d; live migration needs v%d", from.member.ID, p, wire.ProtoV3)
	}
	if p := to.proto(); p < wire.ProtoV3 {
		return fmt.Errorf("destination shard %d speaks v%d; live migration needs v%d", to.member.ID, p, wire.ProtoV3)
	}
	m := &migration{resp: make(chan migResult, 2)}
	r.migMu.Lock()
	r.migrations[id] = m
	r.migMu.Unlock()
	defer func() {
		r.migMu.Lock()
		delete(r.migrations, id)
		r.migMu.Unlock()
	}()

	// Export: the old owner freezes the stream, snapshots, detaches. The
	// request rides the same connection as all previously forwarded
	// envelopes for this session, and the shard applies sensor traffic
	// inline on that connection's read loop — so every sensor update sent
	// before the gate closed is in the snapshot. (A frame REQUEST still
	// queued on the shard's scheduler is the one exception: it renders
	// and replies after the snapshot, so its reply reaches the client but
	// its pacing-counter bump stays behind — cosmetic, and documented at
	// the shard's export handler.)
	if err := from.forward(&wire.Envelope{Type: wire.MsgMigrateSession, Session: id}); err != nil {
		return fmt.Errorf("export request: %w", err)
	}
	res, err := r.awaitMigrate(m, from.member.ID)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if res.status != MigExported {
		return fmt.Errorf("export failed: %s", res.payload)
	}
	if len(res.payload) == 0 {
		// The source had no state for this session (it never sent traffic
		// or already ended there): nothing to import. The session simply
		// follows the new ring, its stream resumed if it had one.
		r.resumeStream(id, to)
		return nil
	}

	// Rebase before the import: it arms the straggler guard (deliver drops
	// raw seqs above the old stream's high-water mark from here on), so an
	// old-stream push that raced past the export reply cannot inflate the
	// rebase state while the import is in flight. resumeStream's rebase is
	// idempotent on top of this one.
	r.subsMu.Lock()
	if e := r.subs[id]; e != nil {
		e.rebase()
	}
	r.subsMu.Unlock()

	if err := to.forward(&wire.Envelope{Type: wire.MsgMigrateSession, Session: id, Payload: res.payload}); err != nil {
		return fmt.Errorf("import request: %w", err)
	}
	res, err = r.awaitMigrate(m, to.member.ID)
	if err != nil {
		return fmt.Errorf("import: %w", err)
	}
	if res.status != MigImported {
		return fmt.Errorf("import failed: %s", res.payload)
	}

	r.resumeStream(id, to)
	return nil
}

// resumeStream replays the session's tracked subscription (if any) on the
// shard now owning it.
func (r *Router) resumeStream(id uint64, to *routerShard) {
	if to == nil {
		return
	}
	r.subsMu.Lock()
	e := r.subs[id]
	var payload []byte
	if e != nil {
		e.rebase()
		payload = e.payload
	}
	r.subsMu.Unlock()
	if e == nil {
		return
	}
	if err := to.forward(&wire.Envelope{Type: wire.MsgSubscribe, Session: id, Payload: payload}); err != nil {
		r.logger.Printf("router: resuming subscription for session %d on shard %d: %v", id, to.member.ID, err)
	}
}

// awaitMigrate waits for the reply from one specific member, tolerating a
// stale reply from the other phase's shard.
func (r *Router) awaitMigrate(m *migration, from uint64) (migResult, error) {
	timeout := time.NewTimer(r.opts.MigrateTimeout)
	defer timeout.Stop()
	for {
		select {
		case res := <-m.resp:
			if res.from != from {
				continue
			}
			return res, nil
		case <-timeout.C:
			return migResult{}, fmt.Errorf("timed out after %v", r.opts.MigrateTimeout)
		case <-r.cs.done:
			return migResult{}, errors.New("router closed")
		}
	}
}

// Join adds a shard to the live membership: dial and handshake, install
// the slot, publish the next epoch, and migrate the ~1/N sessions the new
// ring hands it. Single-writer with every other membership change.
func (r *Router) Join(m Member) (*membership.View, error) {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	if !r.connected {
		return nil, errors.New("server: join before Connect")
	}
	if r.shard(m.ID) != nil {
		return nil, fmt.Errorf("server: shard %d already in the membership", m.ID)
	}
	bc, err := r.dialBackend(m)
	if err != nil {
		return nil, err
	}
	if bc.proto < wire.ProtoV3 {
		_ = bc.conn.Close()
		return nil, fmt.Errorf("server: shard %d speaks v%d; live join needs v%d", m.ID, bc.proto, wire.ProtoV3)
	}
	ss := &routerShard{member: m, bc: bc}
	ss.pend.init()
	r.shardsMu.Lock()
	r.shards[m.ID] = ss
	r.shardsMu.Unlock()
	go r.shardReader(ss, bc)

	// Plan, gate, and publish under the change lock (writer side): no
	// forward happens in between, so a session connecting mid-change
	// cannot build state against the old ring after the plan was drawn.
	r.changeMu.Lock()
	old := r.dir.View()
	nextRing, err := membership.NewRing(append(old.Members(), m))
	if err != nil {
		r.changeMu.Unlock()
		r.detachShard(ss)
		return nil, err
	}
	moves := r.planMoves(old.Ring(), nextRing)
	gates := r.gateAll(moves)
	view, err := r.dir.Join(m)
	r.changeMu.Unlock()
	if err != nil {
		r.ungateAll(gates)
		r.detachShard(ss)
		return nil, err
	}
	r.runMoves(moves, gates)
	r.logger.Printf("router: epoch %d: shard %d joined at %s (%d sessions rebalanced)",
		view.Epoch, m.ID, m.Addr, len(moves))
	return view, nil
}

// Drain removes a shard from the live membership without losing its
// sessions: publish the next epoch, migrate every session the shard owned
// to its new ring owner, then detach the backend connection. When Drain
// returns, the shard process serves nothing and can be stopped.
func (r *Router) Drain(id uint64) (*membership.View, error) {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	if !r.connected {
		return nil, errors.New("server: drain before Connect")
	}
	ss := r.shard(id)
	if ss == nil {
		return nil, fmt.Errorf("server: unknown shard %d", id)
	}
	// Same plan/gate/publish critical section as Join — see there.
	r.changeMu.Lock()
	old := r.dir.View()
	var kept []Member
	for _, m := range old.Members() {
		if m.ID != id {
			kept = append(kept, m)
		}
	}
	if len(kept) == 0 {
		r.changeMu.Unlock()
		return nil, fmt.Errorf("server: refusing to drain the last shard %d", id)
	}
	nextRing, err := membership.NewRing(kept)
	if err != nil {
		r.changeMu.Unlock()
		return nil, err
	}
	moves := r.planMoves(old.Ring(), nextRing)
	gates := r.gateAll(moves)
	view, err := r.dir.Leave(id)
	r.changeMu.Unlock()
	if err != nil {
		r.ungateAll(gates)
		return nil, err
	}
	r.runMoves(moves, gates)
	r.detachShard(ss)
	r.logger.Printf("router: epoch %d: shard %d drained (%d sessions migrated)",
		view.Epoch, id, len(moves))
	return view, nil
}

// detachShard removes a slot and closes its connection without obituaries:
// the shard left on purpose, its sessions are already elsewhere.
func (r *Router) detachShard(ss *routerShard) {
	ss.removed.Store(true)
	r.shardsMu.Lock()
	delete(r.shards, ss.member.ID)
	r.shardsMu.Unlock()
	if bc := ss.backend(); bc != nil {
		_ = bc.conn.Close()
	}
}

// ListenAdmin binds the router's admin endpoint: MsgJoinShard /
// MsgLeaveShard mutate the membership, a MsgControl queries it (or, with
// CtrlWatchMembership, subscribes to epoch pushes). Replies carry
// MsgMembership with the resulting epoch. Optional — a router without an
// admin listener simply has static membership, exactly as before.
func (r *Router) ListenAdmin(addr string) (string, error) {
	if !r.connected {
		return "", errors.New("server: admin listener before Connect")
	}
	if r.admin == nil {
		r.admin = newConnServer(r.logger, r.serveAdmin)
	}
	return r.admin.listen(addr)
}

// writeMembership writes one MsgMembership envelope carrying the view.
func writeMembership(w *lockedWriter, seq uint64, v *membership.View) error {
	var buf wire.Buffer
	membership.EncodeViewInto(&buf, v)
	return w.write(&wire.Envelope{Type: wire.MsgMembership, Seq: seq, Payload: buf.Bytes()})
}

func (r *Router) serveAdmin(conn net.Conn) {
	fr := wire.NewFrameReader(conn)
	w := &lockedWriter{fw: wire.NewFrameWriter(conn)}
	var watchCancel func()
	var watchDone chan struct{}
	defer func() {
		if watchCancel != nil {
			watchCancel()
			<-watchDone
		}
	}()
	fail := func(seq uint64, err error) bool {
		return w.write(&wire.Envelope{Type: wire.MsgError, Seq: seq, Payload: []byte(err.Error())}) != nil
	}
	var env wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return
		}
		switch env.Type {
		case wire.MsgHello:
			if _, _, err := answerHello(w, &env, 0, "router-admin", wire.ProtoMax); err != nil {
				return
			}
		case wire.MsgJoinShard:
			m, err := membership.DecodeMember(env.Payload)
			var view *membership.View
			if err == nil {
				view, err = r.Join(m)
			}
			if err != nil {
				if fail(env.Seq, err) {
					return
				}
				continue
			}
			if writeMembership(w, env.Seq, view) != nil {
				return
			}
		case wire.MsgLeaveShard:
			id, err := wire.NewReader(env.Payload).Uvarint()
			var view *membership.View
			if err == nil {
				view, err = r.Drain(id)
			}
			if err != nil {
				if fail(env.Seq, err) {
					return
				}
				continue
			}
			if writeMembership(w, env.Seq, view) != nil {
				return
			}
		case wire.MsgControl:
			if len(env.Payload) > 0 && env.Payload[0] == CtrlWatchMembership {
				if watchCancel == nil {
					views, cancel := r.dir.Watch()
					watchCancel = cancel
					watchDone = make(chan struct{})
					go func() {
						defer close(watchDone)
						for v := range views {
							if writeMembership(w, 0, v) != nil {
								_ = conn.Close() // writer dead: end the admin loop too
								return
							}
						}
					}()
				}
				if w.write(&wire.Envelope{Type: wire.MsgAck, Seq: env.Seq}) != nil {
					return
				}
				continue
			}
			if writeMembership(w, env.Seq, r.dir.View()) != nil {
				return
			}
		default:
			if fail(env.Seq, fmt.Errorf("server: unsupported admin message %v", env.Type)) {
				return
			}
		}
	}
}

// AdminClient speaks the router's admin protocol — the client side of
// join/drain/query, shared by cmd/arbd-server (-join, -drain), loadgen's
// churn mode, and the tests. Not safe for concurrent use: admin traffic is
// strictly request/reply on one connection.
type AdminClient struct {
	conn net.Conn
	fr   *wire.FrameReader
	w    *lockedWriter
	seq  uint64
}

// DialAdmin connects to a router's admin endpoint.
func DialAdmin(addr string, timeout time.Duration) (*AdminClient, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("admin: dial %s: %w", addr, err)
	}
	return &AdminClient{conn: conn, fr: wire.NewFrameReader(conn), w: &lockedWriter{fw: wire.NewFrameWriter(conn)}}, nil
}

// Close tears the admin connection down.
func (a *AdminClient) Close() error { return a.conn.Close() }

// roundTrip sends one request and waits for the membership (or error)
// reply carrying its seq, skipping seq-0 watch pushes.
func (a *AdminClient) roundTrip(env *wire.Envelope) (membership.DecodedView, error) {
	a.seq++
	env.Seq = a.seq
	if err := a.w.write(env); err != nil {
		return membership.DecodedView{}, err
	}
	for {
		reply, err := a.fr.ReadEnvelope()
		if err != nil {
			return membership.DecodedView{}, err
		}
		if reply.Seq != env.Seq {
			continue // watch push or stale reply
		}
		switch reply.Type {
		case wire.MsgMembership:
			return membership.DecodeView(reply.Payload)
		case wire.MsgError:
			return membership.DecodedView{}, fmt.Errorf("admin: %s", reply.Payload)
		default:
			return membership.DecodedView{}, fmt.Errorf("admin: unexpected reply %v", reply.Type)
		}
	}
}

// Join asks the router to add a shard and migrates the sessions the new
// ring assigns it; the returned view is the resulting epoch.
func (a *AdminClient) Join(m Member) (membership.DecodedView, error) {
	var buf wire.Buffer
	membership.EncodeMemberInto(&buf, m)
	return a.roundTrip(&wire.Envelope{Type: wire.MsgJoinShard, Payload: buf.Bytes()})
}

// Drain asks the router to migrate every session off a shard and remove
// it; it returns once the drain completed.
func (a *AdminClient) Drain(id uint64) (membership.DecodedView, error) {
	var buf wire.Buffer
	buf.Uvarint(id)
	return a.roundTrip(&wire.Envelope{Type: wire.MsgLeaveShard, Payload: buf.Bytes()})
}

// Membership queries the current epoch.
func (a *AdminClient) Membership() (membership.DecodedView, error) {
	return a.roundTrip(&wire.Envelope{Type: wire.MsgControl})
}
