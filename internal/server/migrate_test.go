package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/server/membership"
	"arbd/internal/wire"
)

// newExtraShard starts a shard node that is NOT in any router's membership
// yet — join-test material.
func newExtraShard(t *testing.T, id uint64) (*Shard, string) {
	t.Helper()
	p := newTestPlatform(t)
	sh := NewShard(p, discardLogger(), ShardOptions{
		ID:        id,
		Options:   Options{Scheduler: SchedulerConfig{Deadline: -1}},
		LoadEvery: 5 * time.Millisecond,
	})
	addr, err := sh.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sh.Close() })
	return sh, addr
}

// liveSessionsByShard maps session ID → shard index for every session live
// on any cluster shard, failing on duplicates.
func liveSessionsByShard(t *testing.T, tc *testCluster) map[uint64]int {
	t.Helper()
	live := map[uint64]int{}
	for i, sh := range tc.shards {
		sh.Engine().Platform().ForEachSession(func(s *core.Session) bool {
			if prev, dup := live[s.ID]; dup {
				t.Errorf("session %d live on shards %d and %d", s.ID, prev, i)
			}
			live[s.ID] = i
			return true
		})
	}
	return live
}

// TestDrainUnderLoad is the acceptance e2e: 512 active subscriptions
// across 4 shards; draining one shard loses zero sessions, emits zero
// ErrShardDown stream obituaries, and every migrated stream resumes with a
// monotonic seq within one push interval of the drain completing.
func TestDrainUnderLoad(t *testing.T) {
	const clients = 512
	const shards = 4
	const interval = 50 * time.Millisecond

	tc := startCluster(t, shards, nil, RouterOptions{Deadline: -1})

	type streamClient struct {
		cl      *Client
		frames  <-chan *core.DecodedFrame
		pos     geo.Point
		lastSeq uint64
	}
	scs := make([]*streamClient, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(tc.addr)
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", c, err)
				return
			}
			pos := geo.Destination(center, float64(c%360), 100+float64(c%8)*100)
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 3}); err != nil {
				errs <- fmt.Errorf("client %d gps: %w", c, err)
				return
			}
			frames, err := cl.Subscribe(context.Background(), SubscribeOptions{Interval: interval, Budget: 16})
			if err != nil {
				errs <- fmt.Errorf("client %d subscribe: %w", c, err)
				return
			}
			scs[c] = &streamClient{cl: cl, frames: frames, pos: pos}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	defer func() {
		for _, sc := range scs {
			_ = sc.cl.Close()
		}
	}()

	// Every stream must be live before the churn starts.
	readFrame := func(sc *streamClient, timeout time.Duration, phase string) *core.DecodedFrame {
		select {
		case f, ok := <-sc.frames:
			if !ok {
				t.Fatalf("%s: stream closed: %v", phase, sc.cl.StreamErr())
			}
			if f.Seq <= sc.lastSeq {
				t.Fatalf("%s: push seq went %d -> %d", phase, sc.lastSeq, f.Seq)
			}
			sc.lastSeq = f.Seq
			return f
		case <-time.After(timeout):
			t.Fatalf("%s: no frame within %v", phase, timeout)
		}
		return nil
	}
	for _, sc := range scs {
		readFrame(sc, 30*time.Second, "pre-drain")
	}

	const victim = uint64(shards) // drain the last shard
	preLive := liveSessionsByShard(t, tc)
	if len(preLive) != clients {
		t.Fatalf("%d live sessions before drain, want %d", len(preLive), clients)
	}
	victimSessions := 0
	for _, idx := range preLive {
		if tc.shards[idx].ID() == victim {
			victimSessions++
		}
	}
	if victimSessions == 0 {
		t.Fatal("victim shard owns no sessions; drain would be vacuous")
	}

	view, err := tc.router.Drain(victim)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	drained := time.Now()
	if view.Epoch != 2 || view.Ring().Contains(victim) {
		t.Fatalf("post-drain view epoch=%d members=%v", view.Epoch, view.Members())
	}

	// Zero lost sessions: every session lives on exactly one surviving
	// shard, none on the drained one.
	postLive := liveSessionsByShard(t, tc)
	if len(postLive) != clients {
		t.Fatalf("%d live sessions after drain, want %d", len(postLive), clients)
	}
	for id, idx := range postLive {
		if tc.shards[idx].ID() == victim {
			t.Fatalf("session %d still on drained shard", id)
		}
		if want := tc.router.Ring().Pick(id).ID; tc.shards[idx].ID() != want {
			t.Fatalf("session %d on shard %d, new ring says %d", id, tc.shards[idx].ID(), want)
		}
	}

	// Every stream resumes, monotonic, within one push interval of the
	// drain completing (generous CI slack on top: the bound that matters
	// is "bounded frame gap, not ErrShardDown").
	resumeBudget := interval + 2*time.Second
	for i, sc := range scs {
		f := readFrame(sc, resumeBudget, "post-drain")
		if since := time.Since(drained); since > resumeBudget {
			t.Fatalf("client %d resumed %v after drain, budget %v", i, since, resumeBudget)
		}
		// Migrated state, not a fresh session: the frame must still be
		// anchored near the position sent before the drain, with no sensor
		// refresh. Sample the annotated ones (shed-empty frames carry none).
		for _, a := range f.Annotations {
			if d := geo.DistanceMeters(sc.pos, a.Anchor); d > 400 {
				t.Fatalf("client %d: post-drain annotation anchored %.0fm away — state lost in migration", i, d)
			}
		}
	}

	// Zero obituaries, zero failed migrations, and the migration count
	// matches the drained shard's session count exactly (remap minimality:
	// only the victim's sessions moved).
	if n := tc.router.Metrics().Counter("router.migrations.failed").Value(); n != 0 {
		t.Fatalf("%d migrations failed", n)
	}
	if got := tc.router.Metrics().Counter("router.sessions.migrated").Value(); got != int64(victimSessions) {
		t.Fatalf("migrated %d sessions, want exactly the victim's %d", got, victimSessions)
	}
	for i, sc := range scs {
		if serr := sc.cl.StreamErr(); serr != nil {
			t.Fatalf("client %d stream error after drain: %v", i, serr)
		}
	}
}

// TestJoinRebalancesLiveSessions grows the cluster under request/reply
// load: a third shard joins, ~1/3 of live sessions migrate to it with
// state intact, and every session keeps answering frames from its
// post-join owner.
func TestJoinRebalancesLiveSessions(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	const clients = 24

	conns := make([]*Client, clients)
	positions := make([]geo.Point, clients)
	preAnns := make([]int, clients)
	for c := range conns {
		cl, err := Dial(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		conns[c] = cl
		positions[c] = geo.Destination(center, float64(c*15), 200+float64(c%5)*80)
		if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: positions[c], AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		f, _, err := cl.RequestFrame()
		if err != nil {
			t.Fatal(err)
		}
		preAnns[c] = len(f.Annotations)
	}

	extra, extraAddr := newExtraShard(t, 9)
	tc.shards = append(tc.shards, extra)
	view, err := tc.router.Join(Member{ID: 9, Addr: extraAddr})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if view.Epoch != 2 || !view.Ring().Contains(9) {
		t.Fatalf("post-join view epoch=%d members=%v", view.Epoch, view.Members())
	}

	// Placement now matches the grown ring, with no session lost or
	// duplicated, and the new shard actually gained some.
	live := liveSessionsByShard(t, tc)
	if len(live) != clients {
		t.Fatalf("%d live sessions after join, want %d", len(live), clients)
	}
	gained := 0
	for id, idx := range live {
		if want := tc.router.Ring().Pick(id).ID; tc.shards[idx].ID() != want {
			t.Fatalf("session %d on shard %d, grown ring says %d", id, tc.shards[idx].ID(), want)
		}
		if tc.shards[idx].ID() == 9 {
			gained++
		}
	}
	if gained == 0 {
		t.Fatal("new shard gained no sessions; rebalance was vacuous")
	}
	if n := tc.router.Metrics().Counter("router.migrations.failed").Value(); n != 0 {
		t.Fatalf("%d migrations failed during join", n)
	}

	// State survived: frames keep rendering near each client's pre-join
	// position with no sensor refresh, through the new owner — the same
	// overlay the old owner produced (a client in a sparse spot legitimately
	// renders an empty overlay on both).
	for c, cl := range conns {
		f, _, err := cl.RequestFrame()
		if err != nil {
			t.Fatalf("client %d post-join frame: %v", c, err)
		}
		if len(f.Annotations) == 0 && preAnns[c] > 0 {
			t.Fatalf("client %d post-join frame empty (had %d annotations) — tracking state lost", c, preAnns[c])
		}
		for _, a := range f.Annotations {
			if d := geo.DistanceMeters(positions[c], a.Anchor); d > 400 {
				t.Fatalf("client %d: post-join annotation anchored %.0fm away", c, d)
			}
		}
	}
}

// TestDrainRebasesWireSeq pins the raw wire contract across a drain: the
// frame_push seq a client observes keeps strictly increasing through the
// migration — the router rebases the new stream's restarted counter — and
// no seq-0 error obituary appears.
func TestDrainRebasesWireSeq(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	rc := dialRaw(t, tc.addr)
	peer := rc.hello(t, "raw", wire.ProtoMax)
	session := peer.ID
	rc.sendGPS(t, 0, center)
	var sb wire.Buffer
	wire.EncodeSubscribeInto(&sb, wire.Subscribe{IntervalMS: 5, Budget: 16})
	subSeq := rc.send(t, wire.MsgSubscribe, 0, sb.Bytes())
	if env := rc.read(t); env.Type != wire.MsgAck || env.Seq != subSeq {
		t.Fatalf("subscribe reply = %v seq %d", env.Type, env.Seq)
	}

	var last uint64
	readPushes := func(n int, phase string) {
		for got := 0; got < n; {
			env := rc.read(t)
			switch env.Type {
			case wire.MsgFramePush:
				if env.Seq <= last {
					t.Fatalf("%s: wire push seq went %d -> %d", phase, last, env.Seq)
				}
				last = env.Seq
				got++
			case wire.MsgAck:
				if env.Seq != 0 {
					t.Fatalf("%s: unmatched ack seq %d", phase, env.Seq)
				}
				// The router's replayed subscribe carries seq 0; its ack is
				// delivered and ignored — the PR-4 replay contract.
			case wire.MsgError:
				t.Fatalf("%s: error envelope seq=%d: %s", phase, env.Seq, env.Payload)
			default:
				t.Fatalf("%s: unexpected %v", phase, env.Type)
			}
		}
	}
	readPushes(5, "pre-drain")

	victim := tc.router.Ring().Pick(session).ID
	if _, err := tc.router.Drain(victim); err != nil {
		t.Fatalf("drain: %v", err)
	}
	readPushes(10, "post-drain")
	if n := tc.router.Metrics().Counter("router.migrations.failed").Value(); n != 0 {
		t.Fatalf("%d migrations failed", n)
	}
}

// TestAdminEndToEnd drives the admin protocol over TCP: query, join,
// drain, the error paths, and a membership watch receiving epoch pushes.
func TestAdminEndToEnd(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1})
	adminAddr, err := tc.router.ListenAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A watcher sees the current epoch immediately.
	wc := dialRaw(t, adminAddr)
	watchSeq := wc.send(t, wire.MsgControl, 0, []byte{CtrlWatchMembership})
	sawAck := false
	var first *wire.Envelope
	for i := 0; i < 2; i++ {
		env := wc.read(t)
		switch env.Type {
		case wire.MsgAck:
			if env.Seq != watchSeq {
				t.Fatalf("watch ack seq %d, want %d", env.Seq, watchSeq)
			}
			sawAck = true
		case wire.MsgMembership:
			first = env
		default:
			t.Fatalf("unexpected watch reply %v", env.Type)
		}
	}
	if !sawAck || first == nil {
		t.Fatal("watch did not deliver ack + initial membership")
	}

	ac, err := DialAdmin(adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()

	v, err := ac.Membership()
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 1 || len(v.Members) != 2 {
		t.Fatalf("initial membership epoch=%d members=%d", v.Epoch, len(v.Members))
	}

	extra, extraAddr := newExtraShard(t, 7)
	tc.shards = append(tc.shards, extra)
	v, err = ac.Join(Member{ID: 7, Addr: extraAddr})
	if err != nil {
		t.Fatalf("admin join: %v", err)
	}
	if v.Epoch != 2 || len(v.Members) != 3 {
		t.Fatalf("post-join membership epoch=%d members=%d", v.Epoch, len(v.Members))
	}
	if _, err := ac.Join(Member{ID: 7, Addr: extraAddr}); err == nil {
		t.Fatal("duplicate admin join accepted")
	}
	if _, err := ac.Drain(42); err == nil {
		t.Fatal("drain of unknown shard accepted")
	}
	v, err = ac.Drain(7)
	if err != nil {
		t.Fatalf("admin drain: %v", err)
	}
	if v.Epoch != 3 || len(v.Members) != 2 {
		t.Fatalf("post-drain membership epoch=%d members=%d", v.Epoch, len(v.Members))
	}

	// The watcher saw the join and drain epochs (coalescing tolerated: the
	// last observed epoch must be the final one).
	deadline := time.Now().Add(5 * time.Second)
	lastEpoch := uint64(0)
	for time.Now().Before(deadline) && lastEpoch < 3 {
		env := wc.read(t)
		if env.Type != wire.MsgMembership {
			t.Fatalf("watch push type %v", env.Type)
		}
		dv, err := membership.DecodeView(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if dv.Epoch < lastEpoch {
			t.Fatalf("watch epochs went backwards: %d after %d", dv.Epoch, lastEpoch)
		}
		lastEpoch = dv.Epoch
	}
	if lastEpoch != 3 {
		t.Fatalf("watcher's final epoch %d, want 3", lastEpoch)
	}

	// Draining down to one shard, then past it, fails loudly.
	if _, err := ac.Drain(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Drain(2); err == nil {
		t.Fatal("drain of last shard accepted")
	}
}

// TestDrainSurfacesLostShard pins fail-soft: draining TO a shard that dies
// mid-change must not wedge the router — moves fail, gates open, traffic
// continues (with fresh state), and the failure is counted.
func TestDrainMigrationFailureIsSoft(t *testing.T) {
	tc := startCluster(t, 2, nil, RouterOptions{Deadline: -1, MigrateTimeout: 300 * time.Millisecond})
	cl, err := Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.RequestFrame(); err != nil {
		t.Fatal(err)
	}
	session := cl.SessionID()
	from := tc.router.Ring().Pick(session).ID
	// Kill the destination-to-be: the shard that will own the session
	// after the drain.
	var to uint64 = 1
	if from == 1 {
		to = 2
	}
	for _, sh := range tc.shards {
		if sh.ID() == to {
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for the router to notice the dead backend so the drain's
	// forwards fail fast instead of racing the detection.
	ss := tc.router.shard(to)
	deadline := time.Now().Add(5 * time.Second)
	for !ss.down.Load() {
		if time.Now().After(deadline) {
			t.Fatal("router never observed the dead destination")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := tc.router.Drain(from); err != nil {
		t.Fatalf("drain must complete fail-soft, got: %v", err)
	}
	if n := tc.router.Metrics().Counter("router.migrations.failed").Value(); n == 0 {
		t.Fatal("failed migration not counted")
	}
	// The client must still be answered — with an error naming the dead
	// shard, not a hang or a shed.
	_, _, err = cl.RequestFrame()
	if err == nil || !strings.Contains(err.Error(), ErrShardDown.Error()) {
		t.Fatalf("post-failed-drain request: %v, want ErrShardDown", err)
	}
}

// TestDeliverRebaseDropsStragglers pins the rebase rule in deliver(): after
// a server-side stream replacement (re-subscribe, replay, migration), a
// push from the replaced stream — raw counter ABOVE the old high-water
// mark — must be dropped, or its rebased seq would leap past everything
// the replacement stream will produce and blackhole it; the replacement
// announces itself with a restarted (lower) raw counter and flows.
func TestDeliverRebaseDropsStragglers(t *testing.T) {
	r, err := NewRouter([]Member{{ID: 1, Addr: "unused"}}, discardLogger(), nil, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A client whose writes land in a drained pipe: deliver() needs a
	// registered session with an outbox.
	client, srv := net.Pipe()
	defer client.Close()
	defer srv.Close()
	go func() { _, _ = io.Copy(io.Discard, client) }()
	cl := &routerClient{lockedWriter: lockedWriter{fw: wire.NewFrameWriter(srv)}}
	cl.out = newOutbox(&cl.lockedWriter, 8, nil, nil)
	defer cl.out.close()
	const session = 7
	r.sessions[session] = cl
	r.subs[session] = &subEntry{payload: []byte{0, 0}}

	push := func(raw uint64) {
		r.deliver(&wire.Envelope{Type: wire.MsgFramePush, Seq: raw, Session: session, Payload: []byte{1}})
	}
	entry := func() subEntry {
		r.subsMu.Lock()
		defer r.subsMu.Unlock()
		return *r.subs[session]
	}

	for raw := uint64(1); raw <= 3; raw++ {
		push(raw)
	}
	if e := entry(); e.last != 3 || e.lastRaw != 3 {
		t.Fatalf("steady state entry %+v, want last=3 lastRaw=3", e)
	}

	// Stream replaced (cadence change / migration): rebase, then a
	// straggler from the OLD stream trails in with the next raw counter.
	r.subsMu.Lock()
	r.subs[session].rebase()
	r.subsMu.Unlock()
	staleBefore := r.Metrics().Counter("router.pushes.stale").Value()
	push(4) // old stream's counter continues: must be dropped
	if e := entry(); e.last != 3 || !e.restart {
		t.Fatalf("straggler mutated rebase state: %+v", e)
	}
	if got := r.Metrics().Counter("router.pushes.stale").Value(); got != staleBefore+1 {
		t.Fatalf("straggler not counted stale (%d -> %d)", staleBefore, got)
	}

	// The replacement stream restarts at 1: delivered, rebased above the
	// old stream's range, monotonic for the client.
	push(1)
	if e := entry(); e.last != 4 || e.lastRaw != 1 || e.restart {
		t.Fatalf("replacement stream first push mishandled: %+v", e)
	}
	push(2)
	if e := entry(); e.last != 5 {
		t.Fatalf("replacement stream second push mishandled: %+v", e)
	}

	// Duplicate raw counter maps at or below last: dropped.
	push(2)
	if e := entry(); e.last != 5 {
		t.Fatalf("duplicate push advanced last: %+v", e)
	}

	// The straggler guard is time-bounded: raw counters can gap (the
	// shard's drop-oldest outbox discards pushes after seq assignment),
	// so a replacement stream whose early pushes were all dropped first
	// appears ABOVE the old high-water mark. Once the window expires it
	// must flow — a permanent blackhole would be worse than one stale
	// frame.
	r.subsMu.Lock()
	r.subs[session].rebase()
	r.subs[session].rebasedAt = time.Now().Add(-2 * stragglerWindow)
	r.subsMu.Unlock()
	push(9) // > lastRaw 2, but the window expired: accepted as the new stream
	if e := entry(); e.restart || e.lastRaw != 9 || e.last != 5+9 {
		t.Fatalf("post-window push mishandled: %+v", e)
	}
}
