package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/sensor"
)

func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(core.Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSchedulerRendersFrames(t *testing.T) {
	p := testPlatform(t)
	fs := NewFrameScheduler(SchedulerConfig{Workers: 2}, p.Metrics())
	defer fs.Close()
	s := p.NewSession()
	if err := s.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Frame(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) == 0 {
		t.Fatal("scheduled frame has no annotations")
	}
	if got := p.Metrics().Counter("server.frames.done").Value(); got != 1 {
		t.Fatalf("frames.done = %d", got)
	}
}

func TestSchedulerFanOut(t *testing.T) {
	p := testPlatform(t)
	fs := NewFrameScheduler(SchedulerConfig{Workers: 4}, p.Metrics())
	defer fs.Close()
	const sessions = 32
	const framesEach = 5
	var wg sync.WaitGroup
	errs := make(chan error, sessions*framesEach)
	for i := 0; i < sessions; i++ {
		s := p.NewSession()
		if err := s.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < framesEach; f++ {
			wg.Add(1)
			if err := fs.Submit(s, func(fr *core.Frame, err error) {
				defer wg.Done()
				if err != nil {
					errs <- err
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Metrics().Counter("server.frames.done").Value(); got != sessions*framesEach {
		t.Fatalf("frames.done = %d, want %d", got, sessions*framesEach)
	}
}

func TestSchedulerShedsStaleJobs(t *testing.T) {
	p := testPlatform(t)
	// One worker and a microscopic deadline: jobs queued behind a slow
	// first frame must be shed, not rendered late.
	fs := NewFrameScheduler(SchedulerConfig{Workers: 1, Deadline: time.Nanosecond}, p.Metrics())
	defer fs.Close()
	s := p.NewSession()
	if err := s.OnGPS(sensor.GPSFix{Time: time.Now(), Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i := 0; i < 10; i++ {
		if _, err := fs.Frame(s); errors.Is(err, ErrFrameShed) {
			shed++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if shed == 0 {
		t.Fatal("no frames shed despite nanosecond deadline")
	}
	if got := p.Metrics().Counter("server.frames.shed").Value(); int(got) != shed {
		t.Fatalf("frames.shed = %d, observed %d", got, shed)
	}
}

func TestSchedulerCloseUnblocksSubmitters(t *testing.T) {
	p := testPlatform(t)
	fs := NewFrameScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1}, p.Metrics())
	s := p.NewSession()
	done := make(chan error, 1)
	go func() {
		_, err := fs.Frame(s)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fs.Close()
	select {
	case err := <-done:
		// Either the frame completed before Close or the submitter was
		// released with ErrSchedulerClosed — never a hang.
		if err != nil && !errors.Is(err, ErrSchedulerClosed) {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Frame still blocked after Close")
	}
	if _, err := fs.Frame(s); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("Frame after Close: %v", err)
	}
}
