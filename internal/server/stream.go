// Subscription streaming: the protocol-v2 push path. A client subscribes
// once with a target cadence and the server owns the frame clock — a
// per-session ticker drives frames through the shared FrameScheduler, the
// reply is encoded under the session lock via the pooled encode path, and
// finished pushes queue on a per-connection drop-oldest outbox so a slow
// reader loses stale frames instead of stalling a scheduler worker. Load
// degrades cadence before it sheds: a tick that fires while the previous
// frame is still in flight is skipped outright.
package server

import (
	"errors"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/metrics"
	"arbd/internal/wire"
)

// Streaming defaults. A zero Subscribe field takes these; hard bounds keep
// a hostile subscription from ticking at MHz rates or queueing gigabytes.
const (
	defaultPushInterval = 33 * time.Millisecond // ≈30 Hz
	minPushInterval     = time.Millisecond
	defaultPushBudget   = 8
	maxPushBudget       = 1024
)

// pushInterval clamps a wire-requested cadence to the server's bounds.
func pushInterval(s wire.Subscribe) time.Duration {
	if s.IntervalMS == 0 {
		return defaultPushInterval
	}
	iv := time.Duration(s.IntervalMS) * time.Millisecond
	if iv < minPushInterval {
		iv = minPushInterval
	}
	return iv
}

// pushBudget clamps a wire-requested outbox budget.
func pushBudget(s wire.Subscribe) int {
	if s.Budget == 0 {
		return defaultPushBudget
	}
	if s.Budget > maxPushBudget {
		return maxPushBudget
	}
	return int(s.Budget)
}

// outMsg is one queued push: an envelope whose payload may alias a pooled
// encode buffer, released after the write (or on drop).
type outMsg struct {
	env     wire.Envelope
	release func()
}

// outbox is the per-connection push queue: enqueue never blocks, a writer
// goroutine drains to the connection through the shared lockedWriter (so
// pushes and request/reply traffic interleave at envelope granularity),
// and when the queue is full the oldest push is dropped. It exists so that
// scheduler workers — which enqueue from frame callbacks — are never
// coupled to a client's read speed.
type outbox struct {
	w       *lockedWriter
	dropped *metrics.Counter

	mu     sync.Mutex
	q      []outMsg // FIFO; live entries are q[head:]
	head   int      // index of the oldest entry: pops are O(1), not a memmove
	cap    int
	closed bool
	wake   chan struct{} // 1-buffered: writer nudge

	done chan struct{} // closed when the writer goroutine exits
}

// queueLenLocked returns the number of queued pushes; callers hold mu.
func (ob *outbox) queueLenLocked() int { return len(ob.q) - ob.head }

// popLocked removes and returns the oldest push; callers hold mu and have
// checked the queue is non-empty. The vacated slot is zeroed so the
// release closure isn't retained.
func (ob *outbox) popLocked() outMsg {
	msg := ob.q[ob.head]
	ob.q[ob.head] = outMsg{}
	ob.head++
	if ob.head == len(ob.q) {
		ob.q = ob.q[:0]
		ob.head = 0
	}
	return msg
}

// pushLocked appends one push, compacting the consumed prefix only when
// append would otherwise grow the array — amortised O(1).
func (ob *outbox) pushLocked(msg outMsg) {
	if ob.head > 0 && len(ob.q) == cap(ob.q) {
		n := copy(ob.q, ob.q[ob.head:])
		for i := n; i < len(ob.q); i++ {
			ob.q[i] = outMsg{}
		}
		ob.q = ob.q[:n]
		ob.head = 0
	}
	ob.q = append(ob.q, msg)
}

// newOutbox starts the writer goroutine. capacity is the drop-oldest bound.
func newOutbox(w *lockedWriter, capacity int, dropped *metrics.Counter) *outbox {
	if capacity < 1 {
		capacity = 1
	}
	ob := &outbox{
		w:       w,
		dropped: dropped,
		cap:     capacity,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go ob.writeLoop()
	return ob
}

// grow raises the outbox capacity (never shrinks below an earlier
// subscription's budget — connections multiplexing several streams keep
// the largest requested bound).
func (ob *outbox) grow(capacity int) {
	ob.mu.Lock()
	if capacity > ob.cap {
		ob.cap = capacity
	}
	ob.mu.Unlock()
}

// enqueue queues one push, dropping the oldest queued push when full.
// Safe from any goroutine; never blocks. After close it releases msg
// immediately and reports false.
func (ob *outbox) enqueue(msg outMsg) bool {
	ob.mu.Lock()
	if ob.closed {
		ob.mu.Unlock()
		if msg.release != nil {
			msg.release()
		}
		return false
	}
	if ob.queueLenLocked() >= ob.cap {
		old := ob.popLocked()
		if ob.dropped != nil {
			ob.dropped.Inc()
		}
		if old.release != nil {
			old.release()
		}
	}
	ob.pushLocked(msg)
	ob.mu.Unlock()
	select {
	case ob.wake <- struct{}{}:
	default:
	}
	return true
}

func (ob *outbox) writeLoop() {
	defer close(ob.done)
	for {
		ob.mu.Lock()
		if ob.queueLenLocked() == 0 {
			closed := ob.closed
			ob.mu.Unlock()
			if closed {
				return
			}
			<-ob.wake
			continue
		}
		msg := ob.popLocked()
		ob.mu.Unlock()
		err := ob.w.write(&msg.env)
		if msg.release != nil {
			msg.release()
		}
		if err != nil {
			// Connection dead: the conn's read loop will tear everything
			// down. Keep draining so enqueuers can release buffers.
			ob.drain()
			return
		}
	}
}

// purge drops every queued push for one session, releasing their buffers.
// Session migration uses it after stopping the session's stream: pushes
// already queued behind other sessions' traffic must not trail onto the
// wire after the export reply that hands the session away.
func (ob *outbox) purge(session uint64) {
	ob.mu.Lock()
	var dropped []outMsg
	w := ob.head
	for i := ob.head; i < len(ob.q); i++ {
		if ob.q[i].env.Session == session {
			dropped = append(dropped, ob.q[i])
			continue
		}
		ob.q[w] = ob.q[i]
		w++
	}
	for i := w; i < len(ob.q); i++ {
		ob.q[i] = outMsg{}
	}
	ob.q = ob.q[:w]
	ob.mu.Unlock()
	for _, m := range dropped {
		if m.release != nil {
			m.release()
		}
	}
}

// drain marks the outbox closed and releases everything queued.
func (ob *outbox) drain() {
	ob.mu.Lock()
	ob.closed = true
	q := ob.q[ob.head:]
	ob.q = nil
	ob.head = 0
	ob.mu.Unlock()
	for _, m := range q {
		if m.release != nil {
			m.release()
		}
	}
	select {
	case ob.wake <- struct{}{}:
	default:
	}
}

// close stops the writer after the queue empties naturally (or immediately
// when the writer already died) and releases anything still queued.
func (ob *outbox) close() {
	ob.drain()
	<-ob.done
}

// frameStream is one active subscription: a ticker goroutine that submits
// frame jobs at the subscribed cadence. At most one frame is in flight per
// stream — a tick that fires while the previous frame is still rendering
// (or queued) is skipped, which is the cadence-degradation half of the
// timeliness loop: under load the client's frame rate drops smoothly
// before the scheduler starts shedding outright.
type frameStream struct {
	eng      *Engine
	sess     *core.Session
	session  uint64 // wire session ID (equals sess.ID today; kept explicit)
	interval time.Duration
	out      *outbox

	// slot is a 1-buffered channel holding the stream's single submission
	// token: a tick must take the token to submit and the done callback
	// returns it, so "at most one frame in flight" is token conservation,
	// not a flag/signal pair that could drift apart under preemption.
	slot    chan struct{}
	pushSeq uint64 // written only inside visit callbacks, ordered by the token

	stop     chan struct{}
	stopOnce sync.Once
	ticking  sync.WaitGroup
	jobs     sync.WaitGroup // outstanding scheduler submissions
}

// startStream begins pushing frames for sess on out at the subscription's
// cadence. The caller owns the stream and must stopStream it when the
// subscription ends or the connection dies.
func (e *Engine) startStream(sess *core.Session, sub wire.Subscribe, out *outbox) *frameStream {
	st := &frameStream{
		eng:      e,
		sess:     sess,
		session:  sess.ID,
		interval: pushInterval(sub),
		out:      out,
		slot:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	st.slot <- struct{}{} // the one submission token
	out.grow(pushBudget(sub))
	st.ticking.Add(1)
	go st.run()
	return st
}

// stopStream halts the ticker and waits for it and for any frame still in
// the scheduler, so the caller may safely end the session afterwards. The
// last frame's push lands in the outbox (or is released if the outbox has
// closed).
func (st *frameStream) stopStream() {
	st.stopOnce.Do(func() { close(st.stop) })
	st.ticking.Wait()
	st.jobs.Wait()
}

func (st *frameStream) run() {
	defer st.ticking.Done()
	reg := st.eng.sched.Metrics()
	pushes := reg.Counter("server.stream.pushes")
	skipped := reg.Counter("server.stream.skipped")
	sheds := reg.Counter("server.stream.shed")
	renderErrs := reg.Counter("server.stream.render_errors")

	// Relative pacing, not time.Ticker: a ticker keeps an absolute schedule
	// and compensates a late fire with a short next interval, which shows
	// up at the client as paired over/under gaps (measured ~1-3 ms p99
	// jitter against ~0.2 ms for relative pacing). An AR overlay cares
	// about even spacing, not long-run tick count, so each tick schedules
	// the next one relative to when it actually ran.
	timer := time.NewTimer(st.interval)
	defer timer.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-timer.C:
		}
		tickAt := time.Now()
		next := func() {
			d := st.interval - time.Since(tickAt)
			if d < minPushInterval {
				d = minPushInterval
			}
			timer.Reset(d)
		}
		select {
		case <-st.slot: // token free: the previous frame completed in time
		default:
			// Previous frame still queued or rendering: degrade cadence
			// rather than pile up jobs the scheduler would shed anyway.
			// Waiting for the token (instead of dropping to the next tick
			// boundary) keeps the degraded stream completion-paced — gaps
			// stretch smoothly with load rather than snapping to
			// multiples of the interval.
			skipped.Inc()
			select {
			case <-st.stop:
				return
			case <-st.slot:
			}
		}
		st.jobs.Add(1)
		var reply wire.Envelope
		var pooled *wire.Buffer
		err := st.eng.sched.SubmitVisit(st.sess, func(f *core.Frame) {
			// Under the session lock: the scratch-backed frame cannot be
			// clobbered by a concurrent Frame call mid-encode.
			st.pushSeq++
			pooled = st.eng.encodeFrameReply(&reply, st.session, st.pushSeq, f)
			reply.Type = wire.MsgFramePush
		}, func(err error) {
			defer st.jobs.Done()
			defer func() { st.slot <- struct{}{} }() // return the token
			switch {
			case err == nil:
				pushes.Inc()
				buf := pooled
				st.out.enqueue(outMsg{env: reply, release: func() { st.eng.release(buf) }})
			case errors.Is(err, ErrFrameShed) || errors.Is(err, ErrSchedulerClosed):
				sheds.Inc()
			default:
				// Render errors (no pose yet, session ended) are not
				// pushed: an AR stream with nothing to show stays silent
				// until the device's sensors give it something. Counted so
				// a persistently failing stream is visible in metrics.
				renderErrs.Inc()
			}
		})
		if err != nil {
			// Scheduler closed: the server is going down; stop ticking.
			st.jobs.Done()
			st.slot <- struct{}{}
			return
		}
		next()
	}
}

// streamSet tracks the live subscriptions on one connection, keyed by wire
// session ID (the standalone server has exactly one; a shard's backend
// connection multiplexes many).
type streamSet struct {
	mu      sync.Mutex
	streams map[uint64]*frameStream
}

// add registers a stream for the session, replacing (and stopping) any
// existing one — a re-subscribe is "change my cadence", not an error.
func (ss *streamSet) add(session uint64, st *frameStream) {
	ss.mu.Lock()
	if ss.streams == nil {
		ss.streams = make(map[uint64]*frameStream)
	}
	prev := ss.streams[session]
	ss.streams[session] = st
	ss.mu.Unlock()
	if prev != nil {
		prev.stopStream()
	}
}

// remove stops and forgets the session's stream, reporting whether one
// existed.
func (ss *streamSet) remove(session uint64) bool {
	ss.mu.Lock()
	st := ss.streams[session]
	delete(ss.streams, session)
	ss.mu.Unlock()
	if st == nil {
		return false
	}
	st.stopStream()
	return true
}

// stopAll stops every stream (connection teardown).
func (ss *streamSet) stopAll() {
	ss.mu.Lock()
	streams := ss.streams
	ss.streams = nil
	ss.mu.Unlock()
	for _, st := range streams {
		st.stopStream()
	}
}
