// Subscription streaming: the protocol-v2 push path. A client subscribes
// once with a target cadence and the server owns the frame clock — the
// engine's shared pacing wheel drives frames through the FrameScheduler,
// the reply is encoded under the session lock via the pooled encode path
// (a full MsgFramePush, or a MsgFrameDelta diff for v4 subscribers), and
// finished pushes queue on a per-connection drop-oldest outbox whose
// writer coalesces each wakeup's backlog into one vectored write. Load
// degrades cadence before it sheds: a tick that fires while the previous
// frame is still in flight is skipped outright.
package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/metrics"
	"arbd/internal/obs"
	"arbd/internal/wire"
)

// Streaming defaults. A zero Subscribe field takes these; hard bounds keep
// a hostile subscription from ticking at MHz rates or queueing gigabytes.
const (
	defaultPushInterval = 33 * time.Millisecond // ≈30 Hz
	minPushInterval     = time.Millisecond
	defaultPushBudget   = 8
	maxPushBudget       = 1024
	// keyframeEvery bounds how many delta pushes a stream sends between
	// full keyframes: even a loss-free client re-syncs at worst 64 pushes
	// after a corrupt base, and a freshly joined observer of a long-lived
	// stream waits at most ~2s at 30 Hz for a decodable frame.
	keyframeEvery = 64
)

// pushInterval clamps a wire-requested cadence to the server's bounds.
func pushInterval(s wire.Subscribe) time.Duration {
	if s.IntervalMS == 0 {
		return defaultPushInterval
	}
	iv := time.Duration(s.IntervalMS) * time.Millisecond
	if iv < minPushInterval {
		iv = minPushInterval
	}
	return iv
}

// pushBudget clamps a wire-requested outbox budget.
func pushBudget(s wire.Subscribe) int {
	if s.Budget == 0 {
		return defaultPushBudget
	}
	if s.Budget > maxPushBudget {
		return maxPushBudget
	}
	return int(s.Budget)
}

// outMsg is one queued push: an envelope whose payload may alias a pooled
// encode buffer, released after the write (or on drop).
type outMsg struct {
	env wire.Envelope
	// buf is the pooled buffer backing env.Payload; it returns to pool
	// when the message leaves the outbox. A (buf, pool) pair instead of a
	// per-push closure: enqueue runs once per pushed frame, and binding a
	// closure there is a heap allocation the hot path must not pay.
	buf  *wire.Buffer
	pool *sync.Pool
	// flight is the frame's flight-recorder handle; it rides the outbox with
	// the payload so the write loop can close the trace at write completion.
	// Any path that releases the message without writing it settles the
	// flight as dropped.
	flight *obs.Flight
	// release is an optional cleanup hook for non-pooled payloads (tests).
	release func()
}

// releaseBuf settles the message's payload ownership: pooled buffers go
// back to their pool, then any hook runs. A flight still attached here was
// never written — drop-oldest, purge, drain, or enqueue-after-close — and
// is recorded as dropped.
//
//arbd:hotpath
func (m *outMsg) releaseBuf() {
	if m.flight != nil {
		m.flight.FinishDropped()
		m.flight = nil
	}
	if m.pool != nil && m.buf != nil {
		m.pool.Put(m.buf)
	}
	if m.release != nil {
		m.release()
	}
}

// outbox is the per-connection push queue: enqueue never blocks, a writer
// goroutine drains to the connection through the shared lockedWriter (so
// pushes and request/reply traffic interleave at envelope granularity),
// and when the queue is full the oldest push is dropped. It exists so that
// scheduler workers — which enqueue from frame callbacks — are never
// coupled to a client's read speed. Each writer wakeup drains the whole
// backlog into a single vectored write: a burst of pushes costs one
// syscall, not one per message.
type outbox struct {
	w       *lockedWriter
	dropped *metrics.Counter
	// onDrop, when set, is told the session whose oldest push was just
	// dropped under backpressure. Delta streams use it to key their next
	// push: the client never saw the dropped seq, so the next diff would
	// apply against a base the client doesn't hold.
	onDrop func(session uint64)

	mu      sync.Mutex
	q       []outMsg // FIFO; live entries are q[head:]
	head    int      // index of the oldest entry: pops are O(1), not a memmove
	cap     int
	reserve int // sum of live streams' budgets (addReserve); capacity floor
	closed  bool
	wake    chan struct{} // 1-buffered: writer nudge

	done chan struct{} // closed when the writer goroutine exits
}

// queueLenLocked returns the number of queued pushes; callers hold mu.
func (ob *outbox) queueLenLocked() int { return len(ob.q) - ob.head }

// popLocked removes and returns the oldest push; callers hold mu and have
// checked the queue is non-empty. The vacated slot is zeroed so the
// release closure isn't retained.
//
//arbd:hotpath
func (ob *outbox) popLocked() outMsg {
	msg := ob.q[ob.head]
	ob.q[ob.head] = outMsg{}
	ob.head++
	if ob.head == len(ob.q) {
		ob.q = ob.q[:0]
		ob.head = 0
	}
	return msg
}

// pushLocked appends one push, compacting the consumed prefix only when
// append would otherwise grow the array — amortised O(1).
//
//arbd:hotpath
func (ob *outbox) pushLocked(msg outMsg) {
	if ob.head > 0 && len(ob.q) == cap(ob.q) {
		n := copy(ob.q, ob.q[ob.head:])
		for i := n; i < len(ob.q); i++ {
			ob.q[i] = outMsg{}
		}
		ob.q = ob.q[:n]
		ob.head = 0
	}
	ob.q = append(ob.q, msg)
}

// newOutbox starts the writer goroutine. capacity is the drop-oldest
// bound; onDrop (optional) observes backpressure drops per session.
func newOutbox(w *lockedWriter, capacity int, dropped *metrics.Counter, onDrop func(session uint64)) *outbox {
	if capacity < 1 {
		capacity = 1
	}
	ob := &outbox{
		w:       w,
		dropped: dropped,
		onDrop:  onDrop,
		cap:     capacity,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go ob.writeLoop()
	return ob
}

// grow raises the outbox capacity (never shrinks below an earlier
// subscription's budget — connections multiplexing several streams keep
// the largest requested bound).
func (ob *outbox) grow(capacity int) {
	ob.mu.Lock()
	if capacity > ob.cap {
		ob.cap = capacity
	}
	ob.mu.Unlock()
}

// addReserve adjusts the capacity floor contributed by live streams
// (negative on stream stop). A connection multiplexing many streams — a
// shard's router link — needs room for the SUM of its streams' budgets:
// the shared wheel fires same-cadence streams in the same bucket, and a
// queue sized to the largest single budget would shed most of every
// synchronized burst, starving whichever streams enqueue earliest.
func (ob *outbox) addReserve(n int) {
	ob.mu.Lock()
	ob.reserve += n
	ob.mu.Unlock()
}

// capLocked is the effective drop-oldest bound; callers hold mu.
func (ob *outbox) capLocked() int {
	if ob.reserve > ob.cap {
		return ob.reserve
	}
	return ob.cap
}

// enqueue queues one push, dropping the oldest queued push when full.
// Safe from any goroutine; never blocks. After close it releases msg
// immediately and reports false.
//
//arbd:hotpath
func (ob *outbox) enqueue(msg outMsg) bool {
	ob.mu.Lock()
	if ob.closed {
		ob.mu.Unlock()
		msg.releaseBuf()
		return false
	}
	var droppedSession uint64
	droppedOne := false
	if ob.queueLenLocked() >= ob.capLocked() {
		old := ob.popLocked()
		if ob.dropped != nil {
			ob.dropped.Inc()
		}
		old.releaseBuf()
		droppedSession, droppedOne = old.env.Session, true
	}
	wasEmpty := ob.queueLenLocked() == 0
	ob.pushLocked(msg)
	ob.mu.Unlock()
	if droppedOne && ob.onDrop != nil {
		ob.onDrop(droppedSession)
	}
	// The writer only parks on an empty queue, so only the empty→nonempty
	// transition needs a nudge: a burst of enqueues costs one wakeup.
	if wasEmpty {
		select {
		case ob.wake <- struct{}{}:
		default:
		}
	}
	return true
}

//arbd:hotpath
func (ob *outbox) writeLoop() {
	defer close(ob.done)
	// Presized once per connection writer, reused across every drain;
	// growth past the floor amortises against the connection's lifetime.
	//arbd:alloc-ok one-time per-connection setup
	batch := make([]outMsg, 0, defaultPushBudget)
	for {
		ob.mu.Lock()
		n := ob.queueLenLocked()
		if n == 0 {
			closed := ob.closed
			ob.mu.Unlock()
			if closed {
				return
			}
			<-ob.wake
			continue
		}
		// Drain the whole backlog under one lock hold and write it as one
		// batch: everything queued since the last write goes out in a
		// single writev instead of one write+flush per message.
		batch = batch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, ob.popLocked())
		}
		ob.mu.Unlock()
		// One timestamp pair bounds the whole batch: outbox wait ends and the
		// vectored write begins for every message at writeStart, and the
		// write's cost lands on each flight at end.
		writeStart := time.Now()
		for i := range batch {
			if fl := batch[i].flight; fl != nil {
				fl.MarkAt(obs.StageOutbox, writeStart)
			}
		}
		err := ob.w.writeBatch(batch)
		end := time.Now()
		for i := range batch {
			if fl := batch[i].flight; fl != nil {
				if err == nil {
					fl.MarkAt(obs.StageWrite, end)
					fl.FinishAt(end)
				} else {
					fl.FinishDropped()
				}
				batch[i].flight = nil
			}
			batch[i].releaseBuf()
			batch[i] = outMsg{}
		}
		if err != nil {
			// Connection dead: the conn's read loop will tear everything
			// down. Keep draining so enqueuers can release buffers.
			ob.drain()
			return
		}
	}
}

// purge drops every queued push for one session, releasing their buffers.
// Session migration uses it after stopping the session's stream: pushes
// already queued behind other sessions' traffic must not trail onto the
// wire after the export reply that hands the session away.
func (ob *outbox) purge(session uint64) {
	ob.mu.Lock()
	var dropped []outMsg
	w := ob.head
	for i := ob.head; i < len(ob.q); i++ {
		if ob.q[i].env.Session == session {
			dropped = append(dropped, ob.q[i])
			continue
		}
		ob.q[w] = ob.q[i]
		w++
	}
	for i := w; i < len(ob.q); i++ {
		ob.q[i] = outMsg{}
	}
	ob.q = ob.q[:w]
	ob.mu.Unlock()
	for _, m := range dropped {
		m.releaseBuf()
	}
}

// drain marks the outbox closed and releases everything queued.
func (ob *outbox) drain() {
	ob.mu.Lock()
	ob.closed = true
	q := ob.q[ob.head:]
	ob.q = nil
	ob.head = 0
	ob.mu.Unlock()
	for _, m := range q {
		m.releaseBuf()
	}
	select {
	case ob.wake <- struct{}{}:
	default:
	}
}

// close stops the writer after the queue empties naturally (or immediately
// when the writer already died) and releases anything still queued.
func (ob *outbox) close() {
	ob.drain()
	<-ob.done
}

// Pacing-wheel geometry: 500µs buckets over 1024 slots give a ~512ms
// horizon per revolution; longer intervals ride the per-entry rounds
// counter. The granularity sits well under the 1ms minimum push interval,
// so quantisation error stays a fraction of the tightest cadence.
const (
	wheelTick  = 500 * time.Microsecond
	wheelSlots = 1024
)

// wheelEntry is one armed tick: the stream to fire and how many more full
// revolutions must pass first.
type wheelEntry struct {
	st     *frameStream
	rounds int
}

// pacerWheel is the engine's shared pacing clock: a hashed timing wheel
// walked by a single goroutine, replacing the goroutine-plus-timer every
// subscription used to own. 512 streams previously meant 512 independent
// pacer wakeups per interval; the wheel batches every stream due in the
// same 500µs bucket into one wakeup, and the engine's pacer-goroutine
// count stays O(1) regardless of subscription count (the
// server.stream.pacers gauge, which E19 asserts on). Streams are armed
// one tick at a time — relative pacing, as before: each tick schedules
// the next relative to when it actually ran, so a late tick stretches the
// gap instead of snapping back and pairing over/under gaps.
type pacerWheel struct {
	mu     sync.Mutex
	slots  [][]wheelEntry
	cur    int       // slot the walk last visited
	base   time.Time // wall time of slot cur's tick
	armed  int       // live entries across all slots
	parked bool      // goroutine is waiting on wake, no timer armed
	nextAt time.Time // deadline the goroutine's timer is armed for
	fired  []*frameStream

	wake     chan struct{} // 1-buffered: earlier-deadline (or unpark) nudge
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	gauge    *metrics.Gauge // server.stream.pacers: 1 while running
}

func newPacerWheel(gauge *metrics.Gauge) *pacerWheel {
	w := &pacerWheel{
		slots: make([][]wheelEntry, wheelSlots),
		base:  time.Now(),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		gauge: gauge,
	}
	go w.run()
	return w
}

func (w *pacerWheel) close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// schedule arms one tick for st, delay from now. Ticks round up to the
// wheel granularity — a stream never fires early, preserving the "at the
// requested rate or slower, never faster" cadence contract.
//
//arbd:hotpath
func (w *pacerWheel) schedule(st *frameStream, delay time.Duration) {
	if delay < wheelTick {
		delay = wheelTick
	}
	w.mu.Lock()
	now := time.Now()
	if w.armed == 0 {
		// Nothing in flight: base may be stale from an idle stretch.
		w.base = now
	}
	target := now.Add(delay)
	ticks := int((target.Sub(w.base) + wheelTick - 1) / wheelTick)
	if ticks < 1 {
		ticks = 1
	}
	idx := (w.cur + ticks) % wheelSlots
	w.slots[idx] = append(w.slots[idx], wheelEntry{st: st, rounds: (ticks - 1) / wheelSlots})
	w.armed++
	// Nudge the walker only when this entry beats its armed deadline (or
	// it is parked): the common case — a stream rescheduling its next
	// interval — re-arms behind already-armed work and costs nothing.
	nudge := w.parked || target.Before(w.nextAt)
	w.mu.Unlock()
	if nudge {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

func (w *pacerWheel) run() {
	defer close(w.done)
	if w.gauge != nil {
		w.gauge.Set(1)
		defer w.gauge.Set(0)
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Now()
		for _, st := range w.advance(now) {
			st.tick(now)
		}
		w.mu.Lock()
		d, any := w.nextDelayLocked(time.Now())
		w.parked = !any
		if any {
			w.nextAt = time.Now().Add(d)
		}
		w.mu.Unlock()
		if !any {
			select {
			case <-w.stop:
				return
			case <-w.wake:
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
		select {
		case <-w.stop:
			return
		case <-w.wake:
		case <-timer.C:
		}
	}
}

// advance walks the wheel up to now, collecting every due stream. Entries
// with rounds left are decremented in place and kept for a later pass.
//
//arbd:hotpath
func (w *pacerWheel) advance(now time.Time) []*frameStream {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fired = w.fired[:0]
	if w.armed == 0 {
		w.base = now
		return nil
	}
	steps := int(now.Sub(w.base) / wheelTick)
	// Bound one sweep; after a clock jump the remainder is caught up by
	// the next loop iteration instead of spinning here.
	if steps > 4*wheelSlots {
		steps = 4 * wheelSlots
	}
	for s := 0; s < steps; s++ {
		w.base = w.base.Add(wheelTick)
		w.cur++
		if w.cur == wheelSlots {
			w.cur = 0
		}
		slot := w.slots[w.cur]
		if len(slot) == 0 {
			continue
		}
		keep := slot[:0]
		for i := range slot {
			if slot[i].rounds > 0 {
				slot[i].rounds--
				keep = append(keep, slot[i])
				continue
			}
			w.fired = append(w.fired, slot[i].st)
			w.armed--
		}
		for i := len(keep); i < len(slot); i++ {
			slot[i] = wheelEntry{} // don't retain stream pointers
		}
		w.slots[w.cur] = keep
		if w.armed == 0 {
			w.base = now
			break
		}
	}
	return w.fired
}

// nextDelayLocked returns how long until the nearest due slot; callers
// hold mu. With only rounds-bearing entries left, one full revolution is
// the answer (their rounds tick down as the walk passes them).
func (w *pacerWheel) nextDelayLocked(now time.Time) (time.Duration, bool) {
	if w.armed == 0 {
		return 0, false
	}
	for k := 1; k <= wheelSlots; k++ {
		i := w.cur + k
		if i >= wheelSlots {
			i -= wheelSlots
		}
		for j := range w.slots[i] {
			if w.slots[i][j].rounds == 0 {
				d := w.base.Add(time.Duration(k) * wheelTick).Sub(now)
				if d < 0 {
					d = 0
				}
				return d, true
			}
		}
	}
	return wheelSlots * wheelTick, true
}

// frameStream is one active subscription, paced by the engine's shared
// wheel. At most one frame is in flight per stream — a tick that fires
// while the previous frame is still rendering (or queued) marks the
// stream awaiting instead of piling up jobs, and the frame's completion
// submits the owed tick immediately. That keeps the degraded stream
// completion-paced, exactly as the old blocking-token pacer did: under
// load gaps stretch smoothly with render time rather than snapping to
// interval multiples.
type frameStream struct {
	eng      *Engine
	sess     *core.Session
	session  uint64 // wire session ID (equals sess.ID today; kept explicit)
	interval time.Duration
	out      *outbox
	budget   int  // outbox slots reserved for this stream (released on stop)
	delta    bool // v4 subscriber: push MsgFrameDelta instead of MsgFramePush

	pushes, skipped, sheds, renderErrs, keyframes *metrics.Counter

	// forceKey schedules a keyframe for the next push: set by client acks
	// requesting resync, and by the outbox when it drops one of this
	// session's pushes (the client never saw that seq, so the next diff
	// would be against a base it doesn't hold).
	forceKey atomic.Bool
	ackedSeq atomic.Uint64 // highest client-acked push seq (observability)

	mu       sync.Mutex
	stopped  bool
	inFlight bool      // the single submission token
	awaiting bool      // a tick fired while in flight; owed on completion
	awaitAt  time.Time // when the owed tick fired
	jobs     sync.WaitGroup

	// pushSeq is written only inside visit callbacks (ordered by the
	// in-flight token) but read unsynchronised by stream summaries.
	pushSeq   atomic.Uint64
	lastIndex uint64 // core frame index of the last pushed frame
	sinceKey  int    // delta pushes since the last keyframe

	// reply, pooled, and fl stage the in-flight frame between the tick,
	// visit, and done callbacks; the single in-flight token orders access
	// (at most one frame of this stream is ever inside the scheduler).
	// visitFn/doneFn are bound once at startStream so submit hands the
	// scheduler the same two values every frame instead of allocating fresh
	// closures.
	reply   wire.Envelope
	pooled  *wire.Buffer
	fl      *obs.Flight
	visitFn func(*core.Frame)
	doneFn  func(error)
}

// startStream begins pushing frames for sess on out at the subscription's
// cadence. delta selects MsgFrameDelta encoding (the caller has verified
// the subscriber negotiated protocol v4 and asked for it). The caller owns
// the stream and must stopStream it when the subscription ends or the
// connection dies.
func (e *Engine) startStream(sess *core.Session, sub wire.Subscribe, out *outbox, delta bool) *frameStream {
	reg := e.sched.Metrics()
	st := &frameStream{
		eng:        e,
		sess:       sess,
		session:    sess.ID,
		interval:   pushInterval(sub),
		out:        out,
		budget:     pushBudget(sub),
		delta:      delta,
		pushes:     reg.Counter("server.stream.pushes"),
		skipped:    reg.Counter("server.stream.skipped"),
		sheds:      reg.Counter("server.stream.shed"),
		renderErrs: reg.Counter("server.stream.render_errors"),
		keyframes:  reg.Counter("server.stream.keyframes"),
	}
	st.visitFn, st.doneFn = st.visit, st.done
	out.addReserve(st.budget)
	e.registerStream(st)
	e.wheel.schedule(st, st.interval)
	return st
}

// stopStream halts pacing and waits for any frame still in the scheduler,
// so the caller may safely end the session afterwards. The last frame's
// push lands in the outbox (or is released if the outbox has closed). A
// wheel entry still armed for the stream fires as a no-op and is not
// waited for.
func (st *frameStream) stopStream() {
	st.mu.Lock()
	already := st.stopped
	st.stopped = true
	st.mu.Unlock()
	if !already {
		st.out.addReserve(-st.budget)
		st.eng.unregisterStream(st)
	}
	st.jobs.Wait()
}

// ack applies a client frame-ack: record progress, force a keyframe when
// the client says its delta base is gone.
func (st *frameStream) ack(a wire.FrameAck) {
	st.ackedSeq.Store(a.AppliedSeq)
	if a.WantKeyframe {
		st.forceKey.Store(true)
	}
}

// tick is the wheel's fire callback: submit a frame if the stream is
// idle, otherwise mark the tick owed (cadence degradation). Runs on the
// wheel goroutine — everything here is non-blocking.
//
//arbd:hotpath
func (st *frameStream) tick(now time.Time) {
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return
	}
	if st.inFlight {
		// Previous frame still queued or rendering: degrade cadence rather
		// than pile up jobs the scheduler would shed anyway. The owed tick
		// is submitted the moment the frame completes — completion pacing.
		if !st.awaiting {
			st.awaiting = true
			st.awaitAt = now
			st.skipped.Inc()
		}
		st.mu.Unlock()
		return
	}
	st.inFlight = true
	st.jobs.Add(1)
	st.mu.Unlock()
	// The flight opens at the tick: admission is the gap between the wheel
	// firing and the scheduler accepting the job.
	st.fl = st.eng.rec.Begin(st.session, now)
	st.submit()
	st.scheduleNext(now)
}

// scheduleNext arms the next wheel tick relative to when the previous one
// actually ran, clamped to the minimum interval.
func (st *frameStream) scheduleNext(tickAt time.Time) {
	d := st.interval - time.Since(tickAt)
	if d < minPushInterval {
		d = minPushInterval
	}
	st.eng.wheel.schedule(st, d)
}

// visit encodes one frame into the stream's staged reply. It runs under
// the session lock — the scratch-backed frame cannot be clobbered by a
// concurrent Frame call mid-encode — and only while this stream holds its
// in-flight token, which is what makes the staging fields safe.
//
//arbd:hotpath
func (st *frameStream) visit(f *core.Frame) {
	seq := st.pushSeq.Add(1)
	if st.fl != nil {
		// visit runs right after the render, so the window since the last
		// mark spans queue wait plus render; the render's own duration
		// (f.Elapsed) splits it.
		st.fl.SetSeq(seq)
		st.fl.MarkSplit(obs.StageQueue, obs.StageRender, f.Elapsed)
	}
	if st.delta {
		// Keyframe on the first push, on request (ack resync, outbox
		// drop), every Nth push, and whenever the session rendered for
		// someone else in between — f.PrevAnnotations is then not the
		// frame this stream last pushed, so a diff would corrupt.
		key := st.forceKey.Swap(false) || seq == 1 ||
			st.sinceKey >= keyframeEvery-1 || f.Index != st.lastIndex+1
		st.pooled = st.eng.encodeFrameDeltaReply(&st.reply, st.session, seq, f, key)
		if key {
			st.sinceKey = 0
			st.keyframes.Inc()
		} else {
			st.sinceKey++
		}
	} else {
		st.pooled = st.eng.encodeFrameReply(&st.reply, st.session, seq, f)
		st.reply.Type = wire.MsgFramePush
	}
	if st.fl != nil {
		st.fl.Mark(obs.StageEncode)
	}
	st.lastIndex = f.Index
}

// done settles one frame job: a successful render's staged reply moves to
// the outbox (buffer ownership travels with it), sheds and render errors
// only count. Runs on a scheduler worker, still under the in-flight token.
//
//arbd:hotpath
func (st *frameStream) done(err error) {
	switch {
	case err == nil:
		st.pushes.Inc()
		// The flight travels with the push; the outbox write loop closes it
		// at write completion (or as dropped if the push never writes).
		st.out.enqueue(outMsg{env: st.reply, buf: st.pooled, pool: &st.eng.bufs, flight: st.fl})
		st.pooled = nil
		st.fl = nil
	case errors.Is(err, ErrFrameShed) || errors.Is(err, ErrSchedulerClosed):
		st.sheds.Inc()
		if st.fl != nil {
			st.fl.FinishShed()
			st.fl = nil
		}
	default:
		// Render errors (no pose yet, session ended) are not pushed: an
		// AR stream with nothing to show stays silent until the
		// device's sensors give it something. Counted so a persistently
		// failing stream is visible in metrics.
		st.renderErrs.Inc()
		if st.fl != nil {
			st.fl.FinishError()
			st.fl = nil
		}
	}
	st.complete()
}

// submit hands one frame job to the scheduler. The caller holds the
// in-flight token and has bumped jobs; both are settled by complete (or
// here, when the scheduler rejects the job synchronously).
//
//arbd:hotpath
func (st *frameStream) submit() {
	err := st.eng.sched.QueueVisit(st.sess, st.visitFn, st.doneFn)
	if err != nil {
		// Scheduler closed (QueueVisit admits everything else): the server
		// is going down; stop pacing. done will not fire for this job.
		if st.fl != nil {
			st.fl.FinishError()
			st.fl = nil
		}
		st.mu.Lock()
		st.stopped = true
		st.inFlight = false
		st.awaiting = false
		st.mu.Unlock()
		st.jobs.Done()
	}
}

// complete returns the in-flight token after a frame job settled. A tick
// that fired while the frame was in flight is owed: the next frame is
// submitted immediately and the following tick is scheduled relative to
// the starved tick, matching the old token-blocking pacer's behaviour.
//
//arbd:hotpath
func (st *frameStream) complete() {
	st.mu.Lock()
	if st.awaiting && !st.stopped {
		tickAt := st.awaitAt
		st.awaiting = false
		st.jobs.Add(1) // the owed job, added before this one's Done
		st.mu.Unlock()
		// The owed frame's flight opens at the starved tick, so its
		// admission span is the full completion-pacing wait.
		st.fl = st.eng.rec.Begin(st.session, tickAt)
		st.submit()
		st.scheduleNext(tickAt)
		st.jobs.Done()
		return
	}
	st.awaiting = false
	st.inFlight = false
	st.mu.Unlock()
	st.jobs.Done()
}

// streamSet tracks the live subscriptions on one connection, keyed by wire
// session ID (the standalone server has exactly one; a shard's backend
// connection multiplexes many).
type streamSet struct {
	mu      sync.Mutex
	streams map[uint64]*frameStream
}

// add registers a stream for the session, replacing (and stopping) any
// existing one — a re-subscribe is "change my cadence", not an error.
func (ss *streamSet) add(session uint64, st *frameStream) {
	ss.mu.Lock()
	if ss.streams == nil {
		ss.streams = make(map[uint64]*frameStream)
	}
	prev := ss.streams[session]
	ss.streams[session] = st
	ss.mu.Unlock()
	if prev != nil {
		prev.stopStream()
	}
}

// get returns the session's live stream, if any.
func (ss *streamSet) get(session uint64) *frameStream {
	ss.mu.Lock()
	st := ss.streams[session]
	ss.mu.Unlock()
	return st
}

// ack routes a client frame-ack to the session's live stream. Acks are
// fire-and-forget and race teardown, so a missing stream is a no-op.
func (ss *streamSet) ack(session uint64, a wire.FrameAck) {
	if st := ss.get(session); st != nil {
		st.ack(a)
	}
}

// forceKeyframe keys the session's next push (outbox-drop self-heal).
func (ss *streamSet) forceKeyframe(session uint64) {
	if st := ss.get(session); st != nil && st.delta {
		st.forceKey.Store(true)
	}
}

// remove stops and forgets the session's stream, reporting whether one
// existed.
func (ss *streamSet) remove(session uint64) bool {
	ss.mu.Lock()
	st := ss.streams[session]
	delete(ss.streams, session)
	ss.mu.Unlock()
	if st == nil {
		return false
	}
	st.stopStream()
	return true
}

// stopAll stops every stream (connection teardown).
func (ss *streamSet) stopAll() {
	ss.mu.Lock()
	streams := ss.streams
	ss.streams = nil
	ss.mu.Unlock()
	for _, st := range streams {
		st.stopStream()
	}
}
