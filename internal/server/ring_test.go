package server

import (
	"testing"
)

func ringMembers(n int) []Member {
	ms := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, Member{ID: uint64(i + 1), Addr: "x"})
	}
	return ms
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]Member{{ID: 1}, {ID: 1}}); err == nil {
		t.Fatal("duplicate member IDs accepted")
	}
}

// TestRingDeterministicAcrossOrder checks placement ignores config order:
// two routers listing the same members differently must agree, or session
// affinity breaks the moment a second router joins.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	a, err := NewRing([]Member{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]Member{{ID: 3}, {ID: 1}, {ID: 4}, {ID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 1000; id++ {
		if a.Pick(id).ID != b.Pick(id).ID {
			t.Fatalf("session %d: order-dependent placement (%d vs %d)", id, a.Pick(id).ID, b.Pick(id).ID)
		}
	}
}

// TestRingBalance checks sequential session IDs spread over members rather
// than marching through them in lockstep.
func TestRingBalance(t *testing.T) {
	const members = 4
	const sessions = 8192
	r, err := NewRing(ringMembers(members))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for id := uint64(1); id <= sessions; id++ {
		counts[r.Pick(id).ID]++
	}
	want := sessions / members
	for id, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("member %d owns %d of %d sessions (want ≈%d)", id, n, sessions, want)
		}
	}
}

// TestRingMinimalRemap checks the rendezvous property that motivates the
// ring: removing one member only remaps the sessions that member owned.
func TestRingMinimalRemap(t *testing.T) {
	full, err := NewRing(ringMembers(4))
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(ringMembers(3)) // member 4 removed
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4096; id++ {
		before := full.Pick(id)
		after := smaller.Pick(id)
		if before.ID != 4 && after.ID != before.ID {
			t.Fatalf("session %d moved %d→%d though its owner never left", id, before.ID, after.ID)
		}
	}
}
