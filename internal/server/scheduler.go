package server

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/metrics"
)

// Scheduler errors.
var (
	// ErrSchedulerClosed is returned for frames submitted after Close.
	ErrSchedulerClosed = errors.New("server: frame scheduler closed")
	// ErrFrameShed is returned when a frame request waited in the queue
	// past its deadline and was dropped instead of rendered late — the
	// paper's timeliness rule applied to scheduling: a stale AR overlay is
	// worse than none.
	ErrFrameShed = errors.New("server: frame shed: queue delay exceeded deadline")
)

// SchedulerConfig parameterises a FrameScheduler.
type SchedulerConfig struct {
	// Workers is the worker-pool size (default GOMAXPROCS). Frame work is
	// CPU-bound, so more workers than cores only adds contention.
	Workers int
	// QueueDepth bounds in-flight frame requests (default Workers*16).
	// When the queue is full, Submit blocks — backpressure reaches the
	// connection instead of growing an unbounded goroutine pile.
	QueueDepth int
	// Deadline is the maximum time a request may wait for a worker before
	// being shed. Zero disables shedding for directly-constructed
	// schedulers; server.NewWithOptions applies its own 250 ms default.
	Deadline time.Duration
	// Load reports backend pressure (telemetry flush latency and analytics
	// backlog). When set alongside a Deadline, admission becomes lag-aware:
	// the effective shedding deadline tightens as pressure grows, so the
	// server sheds earlier when the big-data plane falls behind instead of
	// rendering frames whose context analytics are already stale.
	// Platform.LoadSignal is the intended source; server.NewWithOptions
	// wires it by default.
	Load func() core.LoadSignal
	// LoadPollEvery bounds how often Load is consulted (default 10 ms) so
	// admission stays cheap at frame rates.
	LoadPollEvery time.Duration
	// FlushLatencyRef and BacklogRef normalise pressure: each is the signal
	// level that alone halves the effective deadline (defaults 5 ms and
	// 4096 records). The effective deadline never drops below Deadline/16.
	FlushLatencyRef time.Duration
	BacklogRef      int64
}

func (c *SchedulerConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Workers * 16
	}
	if c.LoadPollEvery <= 0 {
		c.LoadPollEvery = 10 * time.Millisecond
	}
	if c.FlushLatencyRef <= 0 {
		c.FlushLatencyRef = defaultFlushLatencyRef
	}
	if c.BacklogRef <= 0 {
		c.BacklogRef = defaultBacklogRef
	}
}

// FrameScheduler executes session frame jobs on a bounded worker pool with
// per-frame deadlines. It decouples "how many devices are connected" from
// "how many frames render at once": N connections share Workers renderers
// instead of each connection burning a core whenever it pleases.
type FrameScheduler struct {
	cfg  SchedulerConfig
	gate loadGate
	reg  *metrics.Registry
	jobs chan frameJob

	// Per-frame instruments, resolved once at construction: the run hot
	// path must not pay a name concat + registry map lookup per frame.
	queueWait   *metrics.Histogram
	frameLat    *metrics.Histogram
	framesDone  *metrics.Counter
	framesShed  *metrics.Counter
	framesShedL *metrics.Counter

	// loadMu guards the cached backend-load sample; cfg.Load is polled at
	// most every cfg.LoadPollEvery.
	loadMu  sync.Mutex
	loadAt  time.Time
	loadSig core.LoadSignal

	// Overflow FIFO for visit jobs admitted past the channel's capacity
	// (QueueVisit): at most one per paced stream, drained in order by
	// workers as they finish queued work. It preserves the blocking
	// submitter's fairness — every admitted job eventually runs, oldest
	// first — without ever blocking the shared pacing goroutine.
	ovMu sync.Mutex
	ov   []frameJob
	// ovKick wakes an idle worker when a job parks on the overflow: the
	// drain is normally completion-driven, but a job parked in the moment
	// the channel ran dry would otherwise wait for traffic that may never
	// come.
	ovKick chan struct{}

	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
	// closeMu orders Submit's enqueue against Close: any job that made it
	// into the channel is guaranteed an answer (worker or close drain).
	closeMu sync.RWMutex
	closed  bool
}

type frameJob struct {
	sess *core.Session
	enq  time.Time
	// visit, when set, runs under the session lock with the rendered frame
	// (Session.FrameVisit) before done; async reply paths encode there so
	// a concurrent frame for the same session cannot clobber the scratch
	// the encoder is reading. done then receives a nil *Frame.
	visit func(*core.Frame)
	done  func(*core.Frame, error)
	// doneErr is the streaming path's completion callback: QueueVisit
	// callers never see a frame, and carrying the narrower signature
	// directly spares wrapping it in a per-job adapter closure.
	doneErr func(error)
}

// finish invokes whichever completion callback the job carries, exactly
// once, from the worker (or close drain) that settled it.
//
//arbd:hotpath
func (j *frameJob) finish(f *core.Frame, err error) {
	if j.done != nil {
		j.done(f, err)
		return
	}
	j.doneErr(err)
}

type frameResult struct {
	frame *core.Frame
	err   error
}

// NewFrameScheduler starts the worker pool. reg may be nil.
func NewFrameScheduler(cfg SchedulerConfig, reg *metrics.Registry) *FrameScheduler {
	cfg.defaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	fs := &FrameScheduler{
		cfg:    cfg,
		gate:   loadGate{deadline: cfg.Deadline, flushLatencyRef: cfg.FlushLatencyRef, backlogRef: cfg.BacklogRef},
		reg:    reg,
		jobs:   make(chan frameJob, cfg.QueueDepth),
		ovKick: make(chan struct{}, 1),
		quit:   make(chan struct{}),

		queueWait:   reg.Histogram("server.frame.queue_wait"),
		frameLat:    reg.Histogram("server.frame.latency"),
		framesDone:  reg.Counter("server.frames.done"),
		framesShed:  reg.Counter("server.frames.shed"),
		framesShedL: reg.Counter("server.frames.shed_lag"),
	}
	for i := 0; i < cfg.Workers; i++ {
		fs.wg.Add(1)
		go fs.worker()
	}
	return fs
}

// Metrics returns the registry the scheduler records into
// (server.frame.latency, server.frame.queue_wait, server.frames.*).
func (fs *FrameScheduler) Metrics() *metrics.Registry { return fs.reg }

func (fs *FrameScheduler) worker() {
	defer fs.wg.Done()
	for {
		select {
		case <-fs.quit:
			return
		case job := <-fs.jobs:
			// Refill before the render: the receive just freed a channel
			// slot, and handing it to the overflow head now (rather than
			// after the render) keeps the queue's order intact and the
			// channel hot for the other workers.
			fs.refillFromOverflow()
			fs.run(job)
		case <-fs.ovKick:
			fs.refillFromOverflow()
		}
	}
}

// refillFromOverflow tops the channel up from the overflow FIFO, in order.
// It only MOVES jobs — it never runs one inline: a worker that rendered
// overflow jobs while the channel sat full would stop receiving, and with
// every worker doing that the channel's own jobs freeze — exactly the
// streams whose jobs won a channel slot would starve, and a stopStream
// waiting on one of them would wedge connection teardown behind it.
func (fs *FrameScheduler) refillFromOverflow() {
	fs.ovMu.Lock()
	defer fs.ovMu.Unlock()
	for len(fs.ov) > 0 {
		select {
		case fs.jobs <- fs.ov[0]:
			fs.ov[0] = frameJob{}
			fs.ov = fs.ov[1:]
		default:
			return
		}
	}
	fs.ov = nil // release the drained backing array
}

// currentLoad returns the most recent backend-load sample, refreshing it
// from cfg.Load at most every LoadPollEvery.
func (fs *FrameScheduler) currentLoad() core.LoadSignal {
	fs.loadMu.Lock()
	defer fs.loadMu.Unlock()
	if now := time.Now(); now.Sub(fs.loadAt) >= fs.cfg.LoadPollEvery {
		fs.loadSig = fs.cfg.Load()
		fs.loadAt = now
	}
	return fs.loadSig
}

// EffectiveDeadline returns the queue-wait budget currently applied to
// frame jobs: the configured deadline, tightened by backend pressure when a
// Load source is configured (see loadGate for the rule, which the Router
// shares for remote shards).
func (fs *FrameScheduler) EffectiveDeadline() time.Duration {
	if fs.cfg.Deadline <= 0 || fs.cfg.Load == nil {
		return fs.cfg.Deadline
	}
	return fs.gate.effective(fs.currentLoad())
}

//arbd:hotpath
func (fs *FrameScheduler) run(job frameJob) {
	wait := time.Since(job.enq)
	fs.queueWait.Observe(wait)
	if deadline := fs.EffectiveDeadline(); deadline > 0 && wait > deadline {
		fs.framesShed.Inc()
		if wait <= fs.cfg.Deadline {
			// Inside the base deadline: this frame was shed only because
			// backend pressure tightened admission.
			fs.framesShedL.Inc()
		}
		job.finish(nil, ErrFrameShed)
		return
	}
	start := time.Now()
	var f *core.Frame
	var err error
	if job.visit != nil {
		err = job.sess.FrameVisit(start, job.visit)
	} else {
		f, err = job.sess.Frame(start)
	}
	fs.frameLat.Observe(time.Since(start))
	fs.framesDone.Inc()
	job.finish(f, err)
}

// Submit enqueues a frame job; done is invoked exactly once, from a worker
// goroutine (or the close drain) — no per-job goroutine is spawned. Submit
// blocks while the queue is full and fails with ErrSchedulerClosed after
// Close.
func (fs *FrameScheduler) Submit(sess *core.Session, done func(*core.Frame, error)) error {
	return fs.submit(frameJob{sess: sess, enq: time.Now(), done: done})
}

// SubmitVisit enqueues a frame job whose visit callback runs under the
// session lock with the rendered frame (see Session.FrameVisit); done then
// fires with the render error only. Shed and closed-scheduler outcomes
// skip visit and surface through done. Both callbacks run on the worker
// goroutine, visit strictly before done.
func (fs *FrameScheduler) SubmitVisit(sess *core.Session, visit func(*core.Frame), done func(error)) error {
	return fs.submit(frameJob{
		sess:    sess,
		enq:     time.Now(),
		visit:   visit,
		doneErr: done,
	})
}

// QueueVisit is SubmitVisit without the blocking admission: the streaming
// pacer wheel uses it, because one shared goroutine paces every stream
// and must never block on a saturated queue. A full channel parks the job
// on the overflow FIFO instead of rejecting it — admission never fails
// (except after Close), every admitted job is answered exactly once, and
// overflow jobs run oldest-first as workers free up, so a saturated
// scheduler degrades every stream's cadence fairly instead of starving
// whichever streams the pacing order happens to disfavour. Jobs that
// wait past the effective deadline still shed in the worker, surfacing
// ErrFrameShed through done.
func (fs *FrameScheduler) QueueVisit(sess *core.Session, visit func(*core.Frame), done func(error)) error {
	fs.closeMu.RLock()
	defer fs.closeMu.RUnlock()
	if fs.closed {
		return ErrSchedulerClosed
	}
	job := frameJob{
		sess:    sess,
		enq:     time.Now(),
		visit:   visit,
		doneErr: done,
	}
	// A non-empty overflow means jobs are already waiting behind the
	// channel: park behind them rather than jumping the line, so a
	// saturated scheduler stays globally FIFO across every stream.
	fs.ovMu.Lock()
	waiting := len(fs.ov) > 0
	fs.ovMu.Unlock()
	if waiting {
		fs.parkOverflow(job)
		return nil
	}
	select {
	case fs.jobs <- job:
		return nil
	case <-fs.quit:
		return ErrSchedulerClosed
	default:
		fs.parkOverflow(job)
		return nil
	}
}

// parkOverflow appends a job to the overflow FIFO and kicks one worker:
// the channel may have drained (every worker idle) between the failed
// send and the park, and the parked job must not wait for traffic that
// may never come.
//
//arbd:hotpath
func (fs *FrameScheduler) parkOverflow(job frameJob) {
	fs.ovMu.Lock()
	fs.ov = append(fs.ov, job)
	fs.ovMu.Unlock()
	select {
	case fs.ovKick <- struct{}{}:
	default:
	}
}

func (fs *FrameScheduler) submit(job frameJob) error {
	fs.closeMu.RLock()
	defer fs.closeMu.RUnlock()
	if fs.closed {
		return ErrSchedulerClosed
	}
	select {
	case fs.jobs <- job:
		return nil
	case <-fs.quit:
		return ErrSchedulerClosed
	}
}

// Frame schedules one frame for the session and blocks for the result —
// the synchronous path the per-connection loop uses. Every enqueued job is
// answered (worker or close drain), so the wait cannot leak.
func (fs *FrameScheduler) Frame(sess *core.Session) (*core.Frame, error) {
	reply := make(chan frameResult, 1)
	if err := fs.Submit(sess, func(f *core.Frame, err error) {
		reply <- frameResult{frame: f, err: err}
	}); err != nil {
		return nil, err
	}
	res := <-reply
	return res.frame, res.err
}

// Close stops the workers, then answers any still-queued jobs with
// ErrSchedulerClosed. quit is closed before taking closeMu so submitters
// blocked on a full queue wake up rather than deadlocking the close.
func (fs *FrameScheduler) Close() {
	fs.closeOnce.Do(func() {
		close(fs.quit)
		fs.closeMu.Lock()
		fs.closed = true
		fs.closeMu.Unlock()
		fs.wg.Wait()
		for {
			select {
			case job := <-fs.jobs:
				job.finish(nil, ErrSchedulerClosed)
			default:
				fs.ovMu.Lock()
				ov := fs.ov
				fs.ov = nil
				fs.ovMu.Unlock()
				for _, job := range ov {
					job.finish(nil, ErrSchedulerClosed)
				}
				return
			}
		}
	})
}
