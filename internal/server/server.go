// Package server exposes the platform over TCP using the wire protocol:
// clients stream sensor envelopes and request frames. The frame-serving
// Engine (platform + scheduler + pooled response encoding) is shared by
// three roles: the standalone Server here (one core.Session per client
// connection), the Shard (owns a partition of the session ID space behind
// a Router), and the Router (owns client connections and forwards to
// shards over a consistent-hash ring). cmd/arbd-server selects the role;
// cmd/arbd-loadgen drives a standalone server or a router identically.
package server

import (
	"log"
	"net"

	"arbd/internal/core"
	"arbd/internal/wire"
)

// Sensor payload kinds inside MsgSensorEvent envelopes. Enums start at 1.
const (
	SensorGPS uint8 = iota + 1
	SensorIMU
	SensorGaze
)

// Server serves the platform over TCP, one session per client connection.
// Sensor envelopes are applied inline on the connection goroutine (cheap
// state updates); frame requests are executed by the engine's shared
// FrameScheduler so render work is bounded by the worker pool, not by the
// connection count.
type Server struct {
	eng      *Engine
	cs       *connServer
	maxProto uint32
	logger   *log.Logger
}

// Options tunes the server beyond its defaults.
type Options struct {
	// Scheduler configures the frame worker pool; zero values take the
	// SchedulerConfig defaults, except Deadline where the server applies
	// its own 250 ms default — pass a negative Deadline to disable
	// shedding entirely (render late frames rather than drop them).
	Scheduler SchedulerConfig
	// MaxProto caps the protocol version this server negotiates (default
	// wire.ProtoMax). Tests pin wire.ProtoV1 here to exercise the
	// version-mismatch path against v2 clients.
	MaxProto uint32
}

// New returns a server for the platform (not yet listening) with default
// options.
func New(p *core.Platform, logger *log.Logger) *Server {
	return NewWithOptions(p, logger, Options{})
}

// NewWithOptions returns a server with explicit scheduler tuning.
func NewWithOptions(p *core.Platform, logger *log.Logger, opts Options) *Server {
	if logger == nil {
		logger = log.Default()
	}
	if opts.MaxProto == 0 {
		opts.MaxProto = wire.ProtoMax
	}
	s := &Server{eng: NewEngine(p, opts), maxProto: opts.MaxProto, logger: logger}
	s.cs = newConnServer(logger, s.serveConn)
	return s
}

// Engine exposes the server's frame-serving engine.
func (s *Server) Engine() *Engine { return s.eng }

// Scheduler exposes the server's frame scheduler (for stats).
func (s *Server) Scheduler() *FrameScheduler { return s.eng.sched }

// Listen binds addr and starts accepting connections. It returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	return s.cs.listen(addr)
}

// Close stops accepting, closes live connections, and waits for handlers.
// It is idempotent.
func (s *Server) Close() error {
	err := s.cs.close()
	s.eng.Close()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	sess := s.eng.platform.NewSession()
	fr := wire.NewFrameReader(conn)
	w := &lockedWriter{fw: wire.NewFrameWriter(conn), conn: conn}

	// Streaming state (protocol v2): at most one subscription for the
	// connection's single session, its pushes queued on a drop-oldest
	// outbox so a slow reader costs itself frames, not a scheduler worker.
	proto := wire.ProtoV1
	var streams streamSet
	var ob *outbox
	defer func() {
		// Close the conn first so an outbox writer blocked on a stalled
		// peer fails out instead of wedging this teardown; then stop the
		// ticker and wait out in-flight frames before the session ends.
		_ = conn.Close()
		streams.stopAll()
		if ob != nil {
			ob.close()
		}
		if err := s.eng.platform.EndSession(sess.ID); err != nil {
			s.logger.Printf("server: ending session %d: %v", sess.ID, err)
		}
	}()

	// One envelope pair per connection, reused across messages: inbound
	// payloads alias the frame reader's buffer and are fully applied before
	// the next read; outbound payloads alias pooled encode buffers released
	// after the write. The steady-state request/response loop allocates
	// nothing.
	var env, reply wire.Envelope
	first := true
	// Resolved before the read loop: the lazily-built outbox must not pay
	// a registry lookup inside the per-envelope path.
	droppedCtr := s.eng.sched.Metrics().Counter("server.stream.dropped")
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return // EOF or broken pipe: session over
		}
		// The protocol handshake: a v2 client's first envelope is a hello;
		// a legacy client's first envelope is ordinary traffic, which pins
		// the connection at v1. Late hellos are a protocol error.
		if env.Type == wire.MsgHello {
			if !first {
				if w.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: sess.ID,
					Payload: []byte("server: hello after traffic")}) != nil {
					return
				}
				continue
			}
			first = false
			_, p, err := answerHello(w, &env, sess.ID, "server", s.maxProto)
			if err != nil {
				return // mismatch fails closed; the typed error went back
			}
			proto = p
			continue
		}
		first = false
		// v2-only messages on a v1-pinned connection fail identically on
		// every role (the shard applies the same gate).
		if (env.Type == wire.MsgSubscribe || env.Type == wire.MsgUnsubscribe) && proto < wire.ProtoV2 {
			verr := &wire.VersionError{Local: proto, Remote: proto, Need: wire.ProtoV2}
			if w.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: sess.ID,
				Payload: []byte(verr.Error())}) != nil {
				return
			}
			continue
		}
		switch env.Type {
		case wire.MsgSubscribe:
			sub, err := wire.DecodeSubscribe(env.Payload)
			if err != nil {
				if w.write(&wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Session: sess.ID,
					Payload: []byte(err.Error())}) != nil {
					return
				}
				continue
			}
			if ob == nil {
				// Outbox drops feed back into the stream: a delta subscriber
				// whose push was dropped needs its next push keyed.
				ob = newOutbox(w, pushBudget(sub), droppedCtr, streams.forceKeyframe)
			}
			// Ack before the first push so the subscribe round-trip
			// completes ahead of the stream on the wire.
			if w.write(&wire.Envelope{Type: wire.MsgAck, Seq: env.Seq, Session: sess.ID}) != nil {
				return
			}
			// Delta pushes only for v4 subscribers that asked: older clients
			// (and older servers ignoring the flag) keep full MsgFramePush.
			delta := proto >= wire.ProtoV4 && sub.Flags&wire.SubFlagDelta != 0
			streams.add(sess.ID, s.eng.startStream(sess, sub, ob, delta))
			continue
		case wire.MsgAck:
			// Client frame-ack (protocol v4): fire-and-forget progress +
			// resync requests; never answered, no-op when the stream is gone.
			if a, err := wire.DecodeFrameAck(env.Payload); err == nil {
				streams.ack(sess.ID, a)
			}
			continue
		case wire.MsgUnsubscribe:
			streams.remove(sess.ID) // idempotent: unsubscribing twice acks twice
			if w.write(&wire.Envelope{Type: wire.MsgAck, Seq: env.Seq, Session: sess.ID}) != nil {
				return
			}
			continue
		}
		hasReply, pooled, err := s.eng.handle(sess, &env, &reply)
		if err != nil {
			reply = wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Payload: []byte(err.Error())}
			hasReply = true
		}
		if hasReply {
			werr := w.write(&reply)
			if pooled != nil {
				s.eng.release(pooled)
			}
			if werr != nil {
				return
			}
		}
	}
}
