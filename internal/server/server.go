// Package server exposes the platform over TCP using the wire protocol:
// clients stream sensor envelopes and request frames. The frame-serving
// Engine (platform + scheduler + pooled response encoding) is shared by
// three roles: the standalone Server here (one core.Session per client
// connection), the Shard (owns a partition of the session ID space behind
// a Router), and the Router (owns client connections and forwards to
// shards over a consistent-hash ring). cmd/arbd-server selects the role;
// cmd/arbd-loadgen drives a standalone server or a router identically.
package server

import (
	"log"
	"net"

	"arbd/internal/core"
	"arbd/internal/wire"
)

// Sensor payload kinds inside MsgSensorEvent envelopes. Enums start at 1.
const (
	SensorGPS uint8 = iota + 1
	SensorIMU
	SensorGaze
)

// Server serves the platform over TCP, one session per client connection.
// Sensor envelopes are applied inline on the connection goroutine (cheap
// state updates); frame requests are executed by the engine's shared
// FrameScheduler so render work is bounded by the worker pool, not by the
// connection count.
type Server struct {
	eng    *Engine
	cs     *connServer
	logger *log.Logger
}

// Options tunes the server beyond its defaults.
type Options struct {
	// Scheduler configures the frame worker pool; zero values take the
	// SchedulerConfig defaults, except Deadline where the server applies
	// its own 250 ms default — pass a negative Deadline to disable
	// shedding entirely (render late frames rather than drop them).
	Scheduler SchedulerConfig
}

// New returns a server for the platform (not yet listening) with default
// options.
func New(p *core.Platform, logger *log.Logger) *Server {
	return NewWithOptions(p, logger, Options{})
}

// NewWithOptions returns a server with explicit scheduler tuning.
func NewWithOptions(p *core.Platform, logger *log.Logger, opts Options) *Server {
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{eng: NewEngine(p, opts), logger: logger}
	s.cs = newConnServer(logger, s.serveConn)
	return s
}

// Engine exposes the server's frame-serving engine.
func (s *Server) Engine() *Engine { return s.eng }

// Scheduler exposes the server's frame scheduler (for stats).
func (s *Server) Scheduler() *FrameScheduler { return s.eng.sched }

// Listen binds addr and starts accepting connections. It returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	return s.cs.listen(addr)
}

// Close stops accepting, closes live connections, and waits for handlers.
// It is idempotent.
func (s *Server) Close() error {
	err := s.cs.close()
	s.eng.Close()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	sess := s.eng.platform.NewSession()
	defer func() {
		if err := s.eng.platform.EndSession(sess.ID); err != nil {
			s.logger.Printf("server: ending session %d: %v", sess.ID, err)
		}
	}()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)
	// One envelope pair per connection, reused across messages: inbound
	// payloads alias the frame reader's buffer and are fully applied before
	// the next read; outbound payloads alias pooled encode buffers released
	// after the write. The steady-state request/response loop allocates
	// nothing.
	var env, reply wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return // EOF or broken pipe: session over
		}
		hasReply, pooled, err := s.eng.handle(sess, &env, &reply)
		if err != nil {
			reply = wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Payload: []byte(err.Error())}
			hasReply = true
		}
		if hasReply {
			werr := fw.WriteEnvelope(&reply)
			ferr := fw.Flush()
			if pooled != nil {
				s.eng.release(pooled)
			}
			if werr != nil || ferr != nil {
				return
			}
		}
	}
}
