// Package server exposes the platform over TCP using the wire protocol:
// clients stream sensor envelopes and request frames; the server runs one
// core.Session per connection. This is the deployable backend binary's
// engine (cmd/arbd-server) and the load generator's target.
package server

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// Sensor payload kinds inside MsgSensorEvent envelopes. Enums start at 1.
const (
	SensorGPS uint8 = iota + 1
	SensorIMU
	SensorGaze
)

// Server serves the platform over TCP. Sensor envelopes are applied inline
// on the connection goroutine (cheap state updates); frame requests are
// executed by a shared FrameScheduler so render work is bounded by the
// worker pool, not by the connection count.
type Server struct {
	platform *core.Platform
	ln       net.Listener
	logger   *log.Logger
	sched    *FrameScheduler
	// bufs pools frame-response encode buffers: a frame is encoded once
	// into a pooled wire.Buffer handed to the framed writer, then the
	// buffer returns to the pool — no per-response allocations.
	bufs sync.Pool

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Options tunes the server beyond its defaults.
type Options struct {
	// Scheduler configures the frame worker pool; zero values take the
	// SchedulerConfig defaults, except Deadline where the server applies
	// its own 250 ms default — pass a negative Deadline to disable
	// shedding entirely (render late frames rather than drop them).
	Scheduler SchedulerConfig
}

// New returns a server for the platform (not yet listening) with default
// options.
func New(p *core.Platform, logger *log.Logger) *Server {
	return NewWithOptions(p, logger, Options{})
}

// NewWithOptions returns a server with explicit scheduler tuning.
func NewWithOptions(p *core.Platform, logger *log.Logger, opts Options) *Server {
	if logger == nil {
		logger = log.Default()
	}
	switch {
	case opts.Scheduler.Deadline < 0:
		opts.Scheduler.Deadline = 0 // explicit: never shed
	case opts.Scheduler.Deadline == 0:
		// Generous by default: shedding should only trip under overload,
		// not on a transient queue blip.
		opts.Scheduler.Deadline = 250 * time.Millisecond
	}
	if opts.Scheduler.Load == nil {
		// Lag-aware admission by default: frames shed earlier when the
		// analytics plane falls behind the devices feeding it.
		opts.Scheduler.Load = p.LoadSignal
	}
	s := &Server{
		platform: p,
		logger:   logger,
		sched:    NewFrameScheduler(opts.Scheduler, p.Metrics()),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	s.bufs.New = func() any { return wire.NewBuffer(1024) }
	return s
}

// Scheduler exposes the server's frame scheduler (for stats).
func (s *Server) Scheduler() *FrameScheduler { return s.sched }

// Listen binds addr and starts accepting connections. It returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				s.logger.Printf("server: accept: %v", err)
				return
			}
		}
		// Register before serving, then re-check shutdown: Close may have
		// swept the conn map between Accept returning and this registration,
		// in which case nobody else will ever close this conn and its
		// handler would block forever.
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		select {
		case <-s.done:
			_ = conn.Close()
			continue
		default:
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
// It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.sched.Close()
	})
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sess := s.platform.NewSession()
	defer func() {
		if err := s.platform.EndSession(sess.ID); err != nil {
			s.logger.Printf("server: ending session %d: %v", sess.ID, err)
		}
	}()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)
	// One envelope pair per connection, reused across messages: inbound
	// payloads alias the frame reader's buffer and are fully applied before
	// the next read; outbound payloads alias pooled encode buffers released
	// after the write. The steady-state request/response loop allocates
	// nothing.
	var env, reply wire.Envelope
	for {
		if err := fr.ReadEnvelopeReuse(&env); err != nil {
			return // EOF or broken pipe: session over
		}
		hasReply, pooled, err := s.handle(sess, &env, &reply)
		if err != nil {
			reply = wire.Envelope{Type: wire.MsgError, Seq: env.Seq, Payload: []byte(err.Error())}
			hasReply = true
		}
		if hasReply {
			werr := fw.WriteEnvelope(&reply)
			ferr := fw.Flush()
			if pooled != nil {
				s.bufs.Put(pooled)
			}
			if werr != nil || ferr != nil {
				return
			}
		}
	}
}

// handle applies one inbound envelope. When hasReply is true, reply has been
// filled in; pooled (when non-nil) backs reply.Payload and must be returned
// to s.bufs only after the reply has been written.
func (s *Server) handle(sess *core.Session, env, reply *wire.Envelope) (hasReply bool, pooled *wire.Buffer, err error) {
	switch env.Type {
	case wire.MsgSensorEvent:
		return false, nil, applySensor(sess, env.Payload) // sensor stream is one-way
	case wire.MsgFrameRequest:
		f, err := s.sched.Frame(sess)
		if err != nil {
			return false, nil, err
		}
		buf := s.bufs.Get().(*wire.Buffer)
		buf.Reset()
		core.EncodeFrameInto(buf, f)
		*reply = wire.Envelope{
			Type: wire.MsgAnnotations, Seq: env.Seq, Session: sess.ID,
			Payload: buf.Bytes(),
		}
		return true, buf, nil
	case wire.MsgControl:
		*reply = wire.Envelope{Type: wire.MsgAck, Seq: env.Seq, Session: sess.ID}
		return true, nil, nil
	default:
		return false, nil, fmt.Errorf("server: unsupported message %v", env.Type)
	}
}

func applySensor(sess *core.Session, payload []byte) error {
	if len(payload) < 1 {
		return errors.New("server: empty sensor payload")
	}
	r := wire.NewReader(payload[1:])
	ns, err := r.Uvarint()
	if err != nil {
		return r.Err(err, "timestamp")
	}
	ts := time.Unix(0, int64(ns))
	switch payload[0] {
	case SensorGPS:
		lat, err1 := r.Float64()
		lon, err2 := r.Float64()
		acc, err3 := r.Float64()
		if err1 != nil || err2 != nil || err3 != nil {
			return errors.New("server: truncated gps payload")
		}
		return sess.OnGPS(sensor.GPSFix{Time: ts, Position: corePoint(lat, lon), AccuracyM: acc})
	case SensorIMU:
		gyro, err1 := r.Float64()
		accel, err2 := r.Float64()
		compass, err3 := r.Float64()
		if err1 != nil || err2 != nil || err3 != nil {
			return errors.New("server: truncated imu payload")
		}
		sess.OnIMU(sensor.IMUSample{Time: ts, GyroZRad: gyro, AccelMps2: accel, CompassDeg: compass})
		return nil
	case SensorGaze:
		target, err1 := r.Uvarint()
		dwell, err2 := r.Float64()
		if err1 != nil || err2 != nil {
			return errors.New("server: truncated gaze payload")
		}
		return sess.OnGaze(sensor.GazeSample{Time: ts, TargetID: target, DwellMS: dwell})
	default:
		return fmt.Errorf("server: unknown sensor kind %d", payload[0])
	}
}
