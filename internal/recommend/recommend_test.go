package recommend

import (
	"testing"

	"arbd/internal/geo"
)

var center = geo.Point{Lat: 22.3364, Lon: 114.2655}

func TestPopularityRanksByWeight(t *testing.T) {
	log := []Interaction{
		{UserID: 1, ItemID: 10, Weight: 1},
		{UserID: 2, ItemID: 10, Weight: 1},
		{UserID: 3, ItemID: 20, Weight: 1},
		{UserID: 1, ItemID: 30, Weight: 0.2},
	}
	p := NewPopularity(log)
	recs := p.Recommend(99, 3) // unseen user: full ranking
	if len(recs) != 3 || recs[0].ItemID != 10 || recs[1].ItemID != 20 {
		t.Fatalf("recs = %v", recs)
	}
}

func TestPopularityExcludesSeen(t *testing.T) {
	log := []Interaction{
		{UserID: 1, ItemID: 10, Weight: 1},
		{UserID: 2, ItemID: 20, Weight: 1},
	}
	p := NewPopularity(log)
	for _, r := range p.Recommend(1, 10) {
		if r.ItemID == 10 {
			t.Fatal("recommended an item the user already has")
		}
	}
}

func TestItemCFFindsCoPurchases(t *testing.T) {
	// Users A,B both take {1,2}; user C takes {1}: CF should suggest 2 to C
	// above 3 (owned only by unrelated user D).
	log := []Interaction{
		{UserID: 1, ItemID: 1, Weight: 1}, {UserID: 1, ItemID: 2, Weight: 1},
		{UserID: 2, ItemID: 1, Weight: 1}, {UserID: 2, ItemID: 2, Weight: 1},
		{UserID: 3, ItemID: 1, Weight: 1},
		{UserID: 4, ItemID: 3, Weight: 1},
	}
	cf := NewItemCF(log)
	recs := cf.Recommend(3, 5)
	if len(recs) == 0 || recs[0].ItemID != 2 {
		t.Fatalf("recs for user 3 = %v, want item 2 first", recs)
	}
	for _, r := range recs {
		if r.ItemID == 1 {
			t.Fatal("CF recommended an owned item")
		}
	}
}

func TestItemCFSymmetricSimilarity(t *testing.T) {
	log := []Interaction{
		{UserID: 1, ItemID: 1, Weight: 1}, {UserID: 1, ItemID: 2, Weight: 1},
	}
	cf := NewItemCF(log)
	if cf.sim[1][2] != cf.sim[2][1] {
		t.Fatalf("similarity asymmetric: %v vs %v", cf.sim[1][2], cf.sim[2][1])
	}
	if cf.sim[1][2] <= 0.99 { // identical vectors → cosine 1
		t.Fatalf("co-owned similarity = %v, want ~1", cf.sim[1][2])
	}
}

func TestItemCFColdUser(t *testing.T) {
	cf := NewItemCF([]Interaction{{UserID: 1, ItemID: 1, Weight: 1}})
	if recs := cf.Recommend(999, 5); len(recs) != 0 {
		t.Fatalf("cold user got %v", recs)
	}
}

func TestContextAwareBoostsNearby(t *testing.T) {
	catalog := []Item{
		{ID: 1, Category: geo.CatShop, Location: geo.Destination(center, 0, 50)},   // near
		{ID: 2, Category: geo.CatShop, Location: geo.Destination(center, 0, 5000)}, // far
	}
	log := []Interaction{
		// Equal popularity.
		{UserID: 10, ItemID: 1, Weight: 1},
		{UserID: 11, ItemID: 2, Weight: 1},
	}
	base := NewPopularity(log)
	ctx := NewContextAware(base, catalog, func(uint64) Context {
		return Context{Location: center}
	})
	recs := ctx.Recommend(99, 2)
	if len(recs) != 2 || recs[0].ItemID != 1 {
		t.Fatalf("recs = %v, want near item first", recs)
	}
	if ctx.Name() != "popularity+context" {
		t.Fatalf("name = %q", ctx.Name())
	}
}

func TestContextAwareGazeAffinity(t *testing.T) {
	catalog := []Item{
		{ID: 1, Category: geo.CatShop, Location: center},
		{ID: 2, Category: geo.CatPark, Location: center},
		{ID: 3, Category: geo.CatShop, Location: center},
	}
	log := []Interaction{
		{UserID: 10, ItemID: 1, Weight: 1},
		{UserID: 11, ItemID: 2, Weight: 1},
	}
	base := NewPopularity(log)
	// The user has been staring at shop item 3.
	ctx := NewContextAware(base, catalog, func(uint64) Context {
		return Context{GazeDwellMS: map[uint64]float64{3: 5000}}
	})
	recs := ctx.Recommend(99, 2)
	if recs[0].ItemID != 1 { // shop beats park via gaze category affinity
		t.Fatalf("recs = %v, want shop first", recs)
	}
}

func TestLeaveOneOutSplit(t *testing.T) {
	log := []Interaction{
		{UserID: 1, ItemID: 1, Weight: 1},
		{UserID: 1, ItemID: 2, Weight: 1},
		{UserID: 1, ItemID: 3, Weight: 1},
		{UserID: 2, ItemID: 9, Weight: 1}, // below minEvents
	}
	sp := LeaveOneOut(log, 2)
	if sp.Holdout[1] != 3 {
		t.Fatalf("holdout = %v", sp.Holdout)
	}
	if _, ok := sp.Holdout[2]; ok {
		t.Fatal("sparse user evaluated")
	}
	if len(sp.Train) != 3 { // user1 first two + user2 single
		t.Fatalf("train = %d", len(sp.Train))
	}
}

func TestEvaluatePerfectAndUseless(t *testing.T) {
	sp := Split{Holdout: map[uint64]uint64{1: 42}}
	perfect := fixedRec{recs: []Scored{{ItemID: 42, Score: 1}}}
	m := Evaluate(perfect, sp, 10)
	if m.HitRate != 1 || m.NDCG != 1 || m.Users != 1 {
		t.Fatalf("perfect metrics = %+v", m)
	}
	useless := fixedRec{recs: []Scored{{ItemID: 7, Score: 1}}}
	m = Evaluate(useless, sp, 10)
	if m.HitRate != 0 || m.NDCG != 0 {
		t.Fatalf("useless metrics = %+v", m)
	}
}

type fixedRec struct{ recs []Scored }

func (f fixedRec) Recommend(uint64, int) []Scored { return f.recs }
func (f fixedRec) Name() string                   { return "fixed" }

func TestGenerateShoppersDeterministic(t *testing.T) {
	cfg := ShopperConfig{Seed: 5, NumUsers: 20, NumItems: 50, EventsPerUser: 10, Center: center}
	a, b := GenerateShoppers(cfg), GenerateShoppers(cfg)
	if len(a.Log) != len(b.Log) {
		t.Fatal("nondeterministic log length")
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("log diverges at %d", i)
		}
	}
}

func TestSyntheticWorkloadModelOrdering(t *testing.T) {
	// The headline §3.1 claim at test scale: context-aware > CF > popularity
	// on preference-driven synthetic shoppers. Allow CF≈popularity noise but
	// require context to win outright.
	w := GenerateShoppers(ShopperConfig{Seed: 7, NumUsers: 150, NumItems: 200, EventsPerUser: 25, Center: center})
	sp := LeaveOneOut(w.Log, 5)
	pop := NewPopularity(sp.Train)
	cf := NewItemCF(sp.Train)
	ctxAware := NewContextAware(cf, w.Catalog, w.ContextFor(sp))

	const k = 10
	mPop := Evaluate(pop, sp, k)
	mCF := Evaluate(cf, sp, k)
	mCtx := Evaluate(ctxAware, sp, k)

	if mCtx.HitRate <= mPop.HitRate {
		t.Fatalf("context HR %.3f not above popularity %.3f", mCtx.HitRate, mPop.HitRate)
	}
	if mCF.HitRate < mPop.HitRate*0.8 {
		t.Fatalf("item-CF HR %.3f collapsed below popularity %.3f", mCF.HitRate, mPop.HitRate)
	}
	if mCtx.Users == 0 || mCtx.NDCG <= 0 {
		t.Fatalf("degenerate evaluation: %+v", mCtx)
	}
}
