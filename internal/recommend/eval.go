package recommend

import (
	"math"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

// Split holds a leave-one-out evaluation split: for each user, the held-out
// item is the last (strongest) interaction; everything else trains.
type Split struct {
	Train   []Interaction
	Holdout map[uint64]uint64 // user -> held-out item
}

// LeaveOneOut builds a split from a log ordered arbitrarily: the final
// interaction of each user (in log order) is held out. Users with fewer
// than minEvents interactions are not evaluated.
func LeaveOneOut(log []Interaction, minEvents int) Split {
	last := make(map[uint64]int)
	count := make(map[uint64]int)
	for i, it := range log {
		last[it.UserID] = i
		count[it.UserID]++
	}
	sp := Split{Holdout: make(map[uint64]uint64)}
	for i, it := range log {
		if last[it.UserID] == i && count[it.UserID] >= minEvents {
			sp.Holdout[it.UserID] = it.ItemID
			continue
		}
		sp.Train = append(sp.Train, it)
	}
	return sp
}

// Metrics summarises offline ranking quality.
type Metrics struct {
	HitRate float64 // fraction of users whose held-out item is in top-K
	NDCG    float64 // discounted gain of its rank position
	Users   int
}

// Evaluate scores a recommender on the split at cutoff k.
func Evaluate(rec Recommender, sp Split, k int) Metrics {
	var hits, ndcg float64
	users := 0
	for user, want := range sp.Holdout {
		recs := rec.Recommend(user, k)
		users++
		for rank, s := range recs {
			if s.ItemID == want {
				hits++
				ndcg += 1 / math.Log2(float64(rank)+2)
				break
			}
		}
	}
	if users == 0 {
		return Metrics{}
	}
	return Metrics{HitRate: hits / float64(users), NDCG: ndcg / float64(users), Users: users}
}

// ShopperConfig parameterises the synthetic retail workload.
type ShopperConfig struct {
	Seed          int64
	NumUsers      int
	NumItems      int
	EventsPerUser int
	Center        geo.Point
	RadiusM       float64
}

// Workload is a generated retail scenario with ground truth: user latent
// preferences drive both history and the held-out "next purchase", so a
// model exploiting preference or context must beat popularity.
type Workload struct {
	Catalog []Item
	Log     []Interaction
	// HomeOf is each user's habitual location (their context during the
	// held-out purchase).
	HomeOf map[uint64]geo.Point
	// PrefCat is each user's dominant category (ground truth).
	PrefCat map[uint64]geo.Category
}

// GenerateShoppers builds a deterministic synthetic workload: items spread
// over a city with categories; users with a dominant category preference and
// a home location; interactions biased ~70% to the preferred category and
// toward nearby items.
func GenerateShoppers(cfg ShopperConfig) Workload {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 100
	}
	if cfg.NumItems <= 0 {
		cfg.NumItems = 300
	}
	if cfg.EventsPerUser <= 0 {
		cfg.EventsPerUser = 20
	}
	if cfg.RadiusM <= 0 {
		cfg.RadiusM = 2000
	}
	rng := sim.NewRand(cfg.Seed).Child("shoppers")
	cats := []geo.Category{geo.CatRestaurant, geo.CatShop, geo.CatMuseum, geo.CatHotel, geo.CatPark}

	w := Workload{
		HomeOf:  make(map[uint64]geo.Point),
		PrefCat: make(map[uint64]geo.Category),
	}
	for i := 0; i < cfg.NumItems; i++ {
		w.Catalog = append(w.Catalog, Item{
			ID:       uint64(i + 1),
			Category: cats[rng.Intn(len(cats))],
			Location: geo.Destination(cfg.Center, rng.Uniform(0, 360), rng.Float64()*cfg.RadiusM),
		})
	}
	byCat := make(map[geo.Category][]Item)
	for _, it := range w.Catalog {
		byCat[it.Category] = append(byCat[it.Category], it)
	}
	for u := 1; u <= cfg.NumUsers; u++ {
		userID := uint64(u)
		pref := cats[rng.Intn(len(cats))]
		home := geo.Destination(cfg.Center, rng.Uniform(0, 360), rng.Float64()*cfg.RadiusM)
		w.PrefCat[userID] = pref
		w.HomeOf[userID] = home
		for e := 0; e < cfg.EventsPerUser; e++ {
			var pool []Item
			if rng.Bool(0.7) {
				pool = byCat[pref]
			} else {
				pool = w.Catalog
			}
			// Distance-biased pick: sample a few candidates, keep nearest.
			best := sim.Pick(rng, pool)
			bestD := geo.DistanceMeters(home, best.Location)
			for c := 0; c < 2; c++ {
				cand := sim.Pick(rng, pool)
				if d := geo.DistanceMeters(home, cand.Location); d < bestD {
					best, bestD = cand, d
				}
			}
			weight := 0.2
			if rng.Bool(0.4) {
				weight = 1.0 // purchase
			}
			w.Log = append(w.Log, Interaction{UserID: userID, ItemID: best.ID, Weight: weight})
		}
	}
	return w
}

// ContextFor derives the evaluation-time AR context for a user: standing at
// home with gaze dwell concentrated on items of their preferred category
// that they have already interacted with.
func (w Workload) ContextFor(sp Split) func(uint64) Context {
	itemsByID := make(map[uint64]Item, len(w.Catalog))
	for _, it := range w.Catalog {
		itemsByID[it.ID] = it
	}
	dwell := make(map[uint64]map[uint64]float64)
	for _, it := range sp.Train {
		item := itemsByID[it.ItemID]
		if item.Category != w.PrefCat[it.UserID] {
			continue
		}
		m, ok := dwell[it.UserID]
		if !ok {
			m = make(map[uint64]float64)
			dwell[it.UserID] = m
		}
		m[it.ItemID] += 800 * it.Weight // plausible dwell milliseconds
	}
	return func(userID uint64) Context {
		return Context{Location: w.HomeOf[userID], GazeDwellMS: dwell[userID]}
	}
}
