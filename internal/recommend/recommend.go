// Package recommend implements the §3.1 retail brain: recommendation models
// over implicit-feedback interaction logs — a popularity baseline, item-item
// collaborative filtering, and the context-aware re-ranker that fuses CF
// scores with the AR session's location and gaze signals — plus offline
// evaluation (hit-rate@K, NDCG@K) and a synthetic shopper generator with
// known ground-truth preferences.
package recommend

import (
	"math"
	"sort"

	"arbd/internal/geo"
)

// Interaction is one implicit-feedback event.
type Interaction struct {
	UserID uint64
	ItemID uint64
	Weight float64 // purchase ≈ 1.0, view ≈ 0.2, gaze-dwell scaled
}

// Item is catalogue metadata the content/context models use.
type Item struct {
	ID       uint64
	Category geo.Category
	Location geo.Point // where the product/shop physically is
}

// Scored is one ranked recommendation.
type Scored struct {
	ItemID uint64
	Score  float64
}

// Recommender ranks items for a user.
type Recommender interface {
	// Recommend returns up to k items the user has not interacted with,
	// best first.
	Recommend(userID uint64, k int) []Scored
	// Name identifies the model in evaluation tables.
	Name() string
}

// sortScored orders by score descending with ID tiebreak for determinism.
func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ItemID < s[j].ItemID
	})
}

// Popularity recommends globally heaviest items — the no-personalisation
// baseline ("gaudy, flashy technology" without customer data, §3.1).
type Popularity struct {
	weights map[uint64]float64
	seen    map[uint64]map[uint64]bool
}

var _ Recommender = (*Popularity)(nil)

// NewPopularity trains on the log.
func NewPopularity(log []Interaction) *Popularity {
	p := &Popularity{weights: make(map[uint64]float64), seen: make(map[uint64]map[uint64]bool)}
	for _, it := range log {
		p.weights[it.ItemID] += it.Weight
		s, ok := p.seen[it.UserID]
		if !ok {
			s = make(map[uint64]bool)
			p.seen[it.UserID] = s
		}
		s[it.ItemID] = true
	}
	return p
}

// Name implements Recommender.
func (p *Popularity) Name() string { return "popularity" }

// Recommend implements Recommender.
func (p *Popularity) Recommend(userID uint64, k int) []Scored {
	out := make([]Scored, 0, len(p.weights))
	for id, w := range p.weights {
		if p.seen[userID][id] {
			continue
		}
		out = append(out, Scored{ItemID: id, Score: w})
	}
	sortScored(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ItemCF is item-item collaborative filtering with cosine similarity over
// the implicit user-item matrix.
type ItemCF struct {
	sim     map[uint64]map[uint64]float64 // item -> item -> cosine
	userVec map[uint64]map[uint64]float64 // user -> item -> weight
	items   []uint64
}

var _ Recommender = (*ItemCF)(nil)

// NewItemCF trains similarities from the log. Complexity is O(pairs within
// a user), fine at the simulated scales.
func NewItemCF(log []Interaction) *ItemCF {
	cf := &ItemCF{
		sim:     make(map[uint64]map[uint64]float64),
		userVec: make(map[uint64]map[uint64]float64),
	}
	norms := make(map[uint64]float64)
	for _, it := range log {
		uv, ok := cf.userVec[it.UserID]
		if !ok {
			uv = make(map[uint64]float64)
			cf.userVec[it.UserID] = uv
		}
		uv[it.ItemID] += it.Weight
	}
	dot := make(map[uint64]map[uint64]float64)
	for _, uv := range cf.userVec {
		ids := make([]uint64, 0, len(uv))
		for id := range uv {
			ids = append(ids, id)
		}
		for _, id := range ids {
			norms[id] += uv[id] * uv[id]
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if a > b {
					a, b = b, a
				}
				m, ok := dot[a]
				if !ok {
					m = make(map[uint64]float64)
					dot[a] = m
				}
				m[b] += uv[ids[i]] * uv[ids[j]]
			}
		}
	}
	itemSet := make(map[uint64]bool)
	for id := range norms {
		itemSet[id] = true
		cf.items = append(cf.items, id)
	}
	sort.Slice(cf.items, func(i, j int) bool { return cf.items[i] < cf.items[j] })
	for a, m := range dot {
		for b, d := range m {
			s := d / (math.Sqrt(norms[a])*math.Sqrt(norms[b]) + 1e-12)
			addSim(cf.sim, a, b, s)
			addSim(cf.sim, b, a, s)
		}
	}
	return cf
}

func addSim(sim map[uint64]map[uint64]float64, a, b uint64, s float64) {
	m, ok := sim[a]
	if !ok {
		m = make(map[uint64]float64)
		sim[a] = m
	}
	m[b] = s
}

// Name implements Recommender.
func (cf *ItemCF) Name() string { return "item-cf" }

// Recommend implements Recommender.
func (cf *ItemCF) Recommend(userID uint64, k int) []Scored {
	uv := cf.userVec[userID]
	scores := make(map[uint64]float64)
	for owned, w := range uv {
		for other, s := range cf.sim[owned] {
			if _, has := uv[other]; has {
				continue
			}
			scores[other] += w * s
		}
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{ItemID: id, Score: s})
	}
	sortScored(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Context is the AR-session signal the context-aware model fuses in: where
// the shopper is standing and what they have been looking at.
type Context struct {
	Location    geo.Point
	GazeDwellMS map[uint64]float64 // itemID -> accumulated dwell
}

// ContextAware re-ranks a base recommender's scores with physical proximity
// (things you can walk to matter more in AR) and gaze-derived category
// affinity — the paper's claim that AR context turns generic analytics into
// relevant recommendations.
type ContextAware struct {
	base     Recommender
	catalog  map[uint64]Item
	ctxOf    func(userID uint64) Context
	distHalf float64 // distance at which proximity boost halves, meters
}

var _ Recommender = (*ContextAware)(nil)

// NewContextAware wraps base with context re-ranking. ctxOf supplies the
// live AR context per user.
func NewContextAware(base Recommender, catalog []Item, ctxOf func(uint64) Context) *ContextAware {
	m := make(map[uint64]Item, len(catalog))
	for _, it := range catalog {
		m[it.ID] = it
	}
	return &ContextAware{base: base, catalog: m, ctxOf: ctxOf, distHalf: 150}
}

// Name implements Recommender.
func (c *ContextAware) Name() string { return c.base.Name() + "+context" }

// Recommend implements Recommender.
func (c *ContextAware) Recommend(userID uint64, k int) []Scored {
	// Over-fetch from the base model, then re-rank.
	base := c.base.Recommend(userID, k*5)
	if len(base) == 0 {
		return nil
	}
	ctx := c.ctxOf(userID)
	// Gaze-derived category affinity.
	catDwell := make(map[geo.Category]float64)
	var totalDwell float64
	for itemID, ms := range ctx.GazeDwellMS {
		if it, ok := c.catalog[itemID]; ok {
			catDwell[it.Category] += ms
			totalDwell += ms
		}
	}
	out := make([]Scored, 0, len(base))
	for _, s := range base {
		it, ok := c.catalog[s.ItemID]
		if !ok {
			out = append(out, s)
			continue
		}
		boost := 1.0
		if ctx.Location.Valid() {
			d := geo.DistanceMeters(ctx.Location, it.Location)
			boost *= 1 + math.Exp(-d/c.distHalf)
		}
		if totalDwell > 0 {
			boost *= 1 + catDwell[it.Category]/totalDwell
		}
		out = append(out, Scored{ItemID: s.ItemID, Score: s.Score * boost})
	}
	sortScored(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
