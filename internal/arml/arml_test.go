package arml

import (
	"errors"
	"strings"
	"testing"

	"arbd/internal/geo"
)

func sampleDoc() *Document {
	return &Document{
		Features: []Feature{
			{
				ID:      "poi-1",
				Name:    "Star Cafe",
				Enabled: true,
				Tags:    []Tag{{Key: "category", Value: "restaurant"}},
				Anchors: []Anchor{{
					Lat: 22.3364, Lon: 114.2655, AltM: 12,
					Assets: []VisualAsset{
						{Kind: AssetText, Text: "Star Cafe"},
						{Kind: AssetImage, Href: "https://example.com/cafe.png"},
					},
				}},
			},
			{
				ID:      "poi-2",
				Name:    "Museum",
				Enabled: true,
				Anchors: []Anchor{{
					Lat: 22.30, Lon: 114.17,
					Assets: []VisualAsset{{Kind: AssetModel, Href: "museum.glb", ScaleM: 2}},
				}},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := Encode(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), xmlHeaderPrefix) {
		t.Fatalf("missing XML header: %.40s", data)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Features) != 2 {
		t.Fatalf("features = %d", len(got.Features))
	}
	f := got.Features[0]
	if f.ID != "poi-1" || f.Name != "Star Cafe" || !f.Enabled {
		t.Fatalf("feature = %+v", f)
	}
	if len(f.Tags) != 1 || f.Tags[0].Key != "category" || f.Tags[0].Value != "restaurant" {
		t.Fatalf("tags = %v", f.Tags)
	}
	if len(f.Anchors) != 1 || f.Anchors[0].Lat != 22.3364 {
		t.Fatalf("anchors = %+v", f.Anchors)
	}
	if len(f.Anchors[0].Assets) != 2 || f.Anchors[0].Assets[1].Kind != AssetImage {
		t.Fatalf("assets = %+v", f.Anchors[0].Assets)
	}
	if got.Version != "1.0" {
		t.Fatalf("version = %q", got.Version)
	}
}

const xmlHeaderPrefix = "<?xml"

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not xml at all <<<")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Document)
		want   error
	}{
		{"missing id", func(d *Document) { d.Features[0].ID = "" }, ErrNoID},
		{"duplicate id", func(d *Document) { d.Features[1].ID = "poi-1" }, ErrDuplicateID},
		{"bad anchor", func(d *Document) { d.Features[0].Anchors[0].Lat = 200 }, ErrBadAnchor},
		{"bad asset kind", func(d *Document) { d.Features[0].Anchors[0].Assets[0].Kind = "hologram" }, ErrBadAssetKind},
		{"empty asset", func(d *Document) {
			d.Features[0].Anchors[0].Assets[0] = VisualAsset{Kind: AssetText}
		}, ErrEmptyAsset},
	}
	for _, c := range cases {
		doc := sampleDoc()
		c.mutate(doc)
		if err := doc.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestFeatureFromPOI(t *testing.T) {
	p := geo.POI{
		ID:           42,
		Name:         "shop-0042",
		Category:     geo.CatShop,
		Location:     geo.Point{Lat: 22.3, Lon: 114.2},
		HeightMeters: 25,
	}
	f := FeatureFromPOI(p, []Tag{{Key: "deal", Value: "sale"}})
	if f.ID != "poi-42" || !f.Enabled {
		t.Fatalf("feature = %+v", f)
	}
	if len(f.Tags) != 2 || f.Tags[0].Value != "shop" || f.Tags[1].Value != "sale" {
		t.Fatalf("tags = %v", f.Tags)
	}
	doc := &Document{Features: []Feature{f}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("generated feature invalid: %v", err)
	}
}

func TestInterpreterFiresInRange(t *testing.T) {
	in := NewInterpreter([]Rule{
		{Metric: "crowding", Min: 0.75, Max: 10, Tag: Tag{Key: "crowd", Value: "busy"}},
		{Metric: "crowding", Min: 0, Max: 0.25, Tag: Tag{Key: "crowd", Value: "quiet"}},
	})
	if tags := in.Interpret(map[string]float64{"crowding": 0.9}); len(tags) != 1 || tags[0].Value != "busy" {
		t.Fatalf("tags = %v", tags)
	}
	if tags := in.Interpret(map[string]float64{"crowding": 0.5}); len(tags) != 0 {
		t.Fatalf("mid-range fired: %v", tags)
	}
	if tags := in.Interpret(map[string]float64{"other": 1}); len(tags) != 0 {
		t.Fatalf("unknown metric fired: %v", tags)
	}
}

func TestInterpreterTextFormatting(t *testing.T) {
	in := NewInterpreter([]Rule{
		{Metric: "stock", Min: 0, Max: 3, Tag: Tag{Key: "stock", Value: "low"}, Text: "only %.0f left"},
	})
	tags := in.Interpret(map[string]float64{"stock": 2})
	if len(tags) != 1 || tags[0].Value != "only 2 left" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestInterpreterDeterministicOrder(t *testing.T) {
	in := NewInterpreter([]Rule{
		{Metric: "a", Min: 0, Max: 10, Tag: Tag{Key: "zz", Value: "1"}},
		{Metric: "a", Min: 0, Max: 10, Tag: Tag{Key: "aa", Value: "2"}},
	})
	tags := in.Interpret(map[string]float64{"a": 5})
	if len(tags) != 2 || tags[0].Key != "aa" {
		t.Fatalf("order = %v", tags)
	}
}

func TestBuiltinVocabularies(t *testing.T) {
	retail := RetailVocabulary()
	if retail.NumRules() == 0 {
		t.Fatal("retail vocabulary empty")
	}
	tags := retail.Interpret(map[string]float64{"crowding": 0.9, "stock": 1, "discount": 0.3})
	if len(tags) != 3 {
		t.Fatalf("retail tags = %v", tags)
	}
	health := HealthVocabulary()
	tags = health.Interpret(map[string]float64{"heart_rate": 150, "spo2": 88})
	if len(tags) != 2 {
		t.Fatalf("health tags = %v", tags)
	}
	for _, tag := range tags {
		if tag.Key != "alert" {
			t.Fatalf("unexpected tag %v", tag)
		}
	}
	if tags := health.Interpret(map[string]float64{"heart_rate": 70, "spo2": 98}); len(tags) != 0 {
		t.Fatalf("healthy vitals fired alerts: %v", tags)
	}
}
