// Package arml implements an ARML-like interchange format (§4.2): the paper
// argues that a standard markup such as OGC's Augmented Reality Markup
// Language is the bridge that lets big-data backends hand semantically
// tagged content to AR clients. This is a faithful subset — Features with
// geo Anchors carrying VisualAssets and semantic tags — encoded as XML via
// encoding/xml, plus the rule-based interpreter that turns raw analytics
// metrics into the human-meaningful tags AR needs (§4.2's "interpretation"
// challenge).
package arml

import (
	"encoding/xml"
	"errors"
	"fmt"

	"arbd/internal/geo"
)

// Validation errors.
var (
	ErrNoID         = errors.New("arml: feature missing id")
	ErrDuplicateID  = errors.New("arml: duplicate feature id")
	ErrBadAnchor    = errors.New("arml: anchor coordinates invalid")
	ErrBadAssetKind = errors.New("arml: unknown asset kind")
	ErrEmptyAsset   = errors.New("arml: asset has neither text nor href")
)

// AssetKind enumerates visual asset types. Values are part of the document
// format.
const (
	AssetText  = "text"
	AssetImage = "image"
	AssetModel = "model"
)

// Document is the root <arml> element.
type Document struct {
	XMLName  xml.Name  `xml:"arml"`
	Version  string    `xml:"version,attr"`
	Features []Feature `xml:"ARElements>Feature"`
}

// Feature is one augmentable entity (a POI, a patient, a vehicle...).
type Feature struct {
	ID          string   `xml:"id,attr"`
	Name        string   `xml:"name"`
	Description string   `xml:"description,omitempty"`
	Enabled     bool     `xml:"enabled"`
	Tags        []Tag    `xml:"metadata>tag,omitempty"`
	Anchors     []Anchor `xml:"anchors>GeoAnchor"`
}

// Tag is one semantic key/value annotation.
type Tag struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// Anchor binds assets to a world location.
type Anchor struct {
	Lat    float64       `xml:"point>lat"`
	Lon    float64       `xml:"point>lon"`
	AltM   float64       `xml:"point>alt,omitempty"`
	Assets []VisualAsset `xml:"assets>asset"`
}

// VisualAsset is one renderable item attached to an anchor.
type VisualAsset struct {
	Kind   string  `xml:"kind,attr"`
	Text   string  `xml:"text,omitempty"`
	Href   string  `xml:"href,omitempty"`
	ScaleM float64 `xml:"scale,omitempty"`
}

// Encode serialises the document with an XML header and indentation.
func Encode(doc *Document) ([]byte, error) {
	if doc.Version == "" {
		doc.Version = "1.0"
	}
	body, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("arml: encoding: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// Decode parses a document and validates it.
func Decode(data []byte) (*Document, error) {
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("arml: decoding: %w", err)
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Validate checks structural invariants: unique non-empty feature IDs, valid
// anchor coordinates, known asset kinds, and non-empty assets.
func (d *Document) Validate() error {
	seen := make(map[string]bool, len(d.Features))
	for fi := range d.Features {
		f := &d.Features[fi]
		if f.ID == "" {
			return fmt.Errorf("%w: feature %d", ErrNoID, fi)
		}
		if seen[f.ID] {
			return fmt.Errorf("%w: %q", ErrDuplicateID, f.ID)
		}
		seen[f.ID] = true
		for ai, a := range f.Anchors {
			p := geo.Point{Lat: a.Lat, Lon: a.Lon}
			if !p.Valid() {
				return fmt.Errorf("%w: feature %q anchor %d: %v", ErrBadAnchor, f.ID, ai, p)
			}
			for _, asset := range a.Assets {
				switch asset.Kind {
				case AssetText, AssetImage, AssetModel:
				default:
					return fmt.Errorf("%w: %q in feature %q", ErrBadAssetKind, asset.Kind, f.ID)
				}
				if asset.Text == "" && asset.Href == "" {
					return fmt.Errorf("%w: feature %q", ErrEmptyAsset, f.ID)
				}
			}
		}
	}
	return nil
}

// FeatureFromPOI builds a Feature for a POI with a text label asset and the
// given semantic tags.
func FeatureFromPOI(p geo.POI, tags []Tag) Feature {
	return Feature{
		ID:      fmt.Sprintf("poi-%d", p.ID),
		Name:    p.Name,
		Enabled: true,
		Tags:    append([]Tag{{Key: "category", Value: p.Category.String()}}, tags...),
		Anchors: []Anchor{{
			Lat:  p.Location.Lat,
			Lon:  p.Location.Lon,
			AltM: p.HeightMeters,
			Assets: []VisualAsset{{
				Kind: AssetText,
				Text: p.Name,
			}},
		}},
	}
}
