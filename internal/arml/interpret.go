package arml

import (
	"fmt"
	"sort"
)

// Rule maps a raw analytics metric onto a human-meaningful semantic tag —
// the paper's §4.2 point that "big data does not tell us which correlations
// are meaningful, while AR requires semantically meaningful information".
// A rule fires when the metric value falls inside [Min, Max).
type Rule struct {
	Metric string
	Min    float64 // inclusive lower bound (use -inf style sentinels freely)
	Max    float64 // exclusive upper bound
	Tag    Tag     // the semantic tag to emit
	Text   string  // optional display text; %v is replaced by the value
}

// Interpreter evaluates rules over metric maps.
type Interpreter struct {
	rules []Rule
}

// NewInterpreter returns an interpreter with the given rules.
func NewInterpreter(rules []Rule) *Interpreter {
	return &Interpreter{rules: append([]Rule(nil), rules...)}
}

// AddRule appends a rule.
func (in *Interpreter) AddRule(r Rule) { in.rules = append(in.rules, r) }

// NumRules returns the number of installed rules.
func (in *Interpreter) NumRules() int { return len(in.rules) }

// Interpret evaluates all rules against the metrics, returning the fired
// tags sorted by key (deterministic output). Values render into Text where
// requested.
func (in *Interpreter) Interpret(metrics map[string]float64) []Tag {
	var out []Tag
	for _, r := range in.rules {
		v, ok := metrics[r.Metric]
		if !ok {
			continue
		}
		if v < r.Min || v >= r.Max {
			continue
		}
		tag := r.Tag
		if r.Text != "" {
			tag.Value = fmt.Sprintf(r.Text, v)
		}
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// RetailVocabulary returns the rule set the retail scenario uses to turn
// crowd/stock/price analytics into shopper-facing tags.
func RetailVocabulary() *Interpreter {
	return NewInterpreter([]Rule{
		{Metric: "crowding", Min: 0.75, Max: 10, Tag: Tag{Key: "crowd", Value: "busy"}, Text: ""},
		{Metric: "crowding", Min: 0, Max: 0.25, Tag: Tag{Key: "crowd", Value: "quiet"}, Text: ""},
		{Metric: "stock", Min: 0, Max: 3, Tag: Tag{Key: "stock", Value: "low"}, Text: "only %.0f left"},
		{Metric: "discount", Min: 0.1, Max: 1, Tag: Tag{Key: "deal", Value: "sale"}, Text: "%.0f%% off"},
		{Metric: "rating", Min: 4.5, Max: 5.01, Tag: Tag{Key: "quality", Value: "top-rated"}, Text: ""},
	})
}

// HealthVocabulary returns the rule set the healthcare scenario uses to turn
// vitals statistics into clinician-facing tags.
func HealthVocabulary() *Interpreter {
	return NewInterpreter([]Rule{
		{Metric: "heart_rate", Min: 120, Max: 400, Tag: Tag{Key: "alert", Value: "tachycardia"}, Text: "HR %.0f"},
		{Metric: "heart_rate", Min: 0, Max: 45, Tag: Tag{Key: "alert", Value: "bradycardia"}, Text: "HR %.0f"},
		{Metric: "spo2", Min: 0, Max: 92, Tag: Tag{Key: "alert", Value: "hypoxemia"}, Text: "SpO2 %.0f%%"},
		{Metric: "systolic_bp", Min: 160, Max: 400, Tag: Tag{Key: "alert", Value: "hypertensive"}, Text: "BP %.0f"},
	})
}
