// Package render implements the AR annotation layer: screen-space projection
// of geo-anchored content, occlusion testing against building geometry, and
// two layout engines — the naive "floating bubbles" placement the paper
// criticises (§2.1, citing MacIntyre's "POIs are pointless") and an
// anchored, collision- and occlusion-aware layout — plus the clutter metrics
// experiment E6 uses to compare them.
package render

import (
	"math"
	"sort"

	"arbd/internal/geo"
	"arbd/internal/sensor"
)

// ScreenPos is a projected location in pixels plus depth in meters.
type ScreenPos struct {
	X     float64
	Y     float64
	Depth float64
}

// Camera is a pinhole projection model.
type Camera struct {
	FOVDeg float64 // horizontal field of view
	Width  int     // screen width, px
	Height int     // screen height, px
}

// DefaultCamera matches a 2017-era phone in landscape.
var DefaultCamera = Camera{FOVDeg: 60, Width: 1280, Height: 720}

// VFOVDeg returns the vertical field of view implied by the aspect ratio.
func (c Camera) VFOVDeg() float64 {
	return c.FOVDeg * float64(c.Height) / float64(c.Width)
}

// Project maps a world point (with a height above ground) onto the screen
// for the given pose. ok is false when the point is outside the view
// frustum.
func (c Camera) Project(pose sensor.Pose, target geo.Point, heightM float64) (ScreenPos, bool) {
	dist := geo.DistanceMeters(pose.Position, target)
	if dist < 0.5 {
		return ScreenPos{}, false
	}
	rel := wrap180(geo.BearingDegrees(pose.Position, target) - pose.HeadingDeg)
	if math.Abs(rel) > c.FOVDeg/2 {
		return ScreenPos{}, false
	}
	elev := math.Atan2(heightM-pose.AltitudeM, dist)*180/math.Pi - pose.PitchDeg
	if math.Abs(elev) > c.VFOVDeg()/2 {
		return ScreenPos{}, false
	}
	x := float64(c.Width)/2 + rel/c.FOVDeg*float64(c.Width)
	y := float64(c.Height)/2 - elev/c.VFOVDeg()*float64(c.Height)
	return ScreenPos{X: x, Y: y, Depth: dist}, true
}

func wrap180(d float64) float64 {
	d = math.Mod(d+540, 360) - 180
	if d == -180 {
		return 180
	}
	return d
}

// Annotation is one piece of virtual content anchored to a world location.
type Annotation struct {
	ID       uint64
	Label    string
	Anchor   geo.Point
	AnchorHM float64 // anchor height above ground (label attaches here)
	Priority float64 // higher = more important, placed first

	// Layout outputs.
	Pos      ScreenPos // anchor projection
	X, Y     float64   // top-left of the label box after layout
	W, H     float64   // label box size, px
	Placed   bool
	Occluded bool    // anchor hidden behind geometry
	XRay     bool    // drawn despite occlusion, in see-through style
	LeaderPx float64 // distance from box centre to anchor
}

// boxesOverlap reports whether two placed boxes intersect.
func boxesOverlap(a, b *Annotation) bool {
	return a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H
}

// overlapArea returns the intersection area of two boxes.
func overlapArea(a, b *Annotation) float64 {
	w := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
	h := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Occluder is a building-like obstacle: a vertical slab at a location.
type Occluder struct {
	Location geo.Point
	HeightM  float64
	WidthM   float64 // horizontal extent (default 20)
}

// OccludersFromPOIs treats tall POIs as occluding buildings.
func OccludersFromPOIs(pois []geo.POI, minHeightM float64) []Occluder {
	return OccludersFromPOIsInto(nil, pois, minHeightM)
}

// OccludersFromPOIsInto is OccludersFromPOIs appending into dst. Results
// overwrite dst's contents from length zero; the returned slice shares dst's
// storage when capacity allows.
func OccludersFromPOIsInto(dst []Occluder, pois []geo.POI, minHeightM float64) []Occluder {
	out := dst[:0]
	for _, p := range pois {
		if p.HeightMeters >= minHeightM {
			out = append(out, Occluder{Location: p.Location, HeightM: p.HeightMeters, WidthM: 20})
		}
	}
	return out
}

// IsOccluded reports whether the sight line from the pose to the target
// (top at heightM) passes behind any occluder.
func IsOccluded(pose sensor.Pose, target geo.Point, heightM float64, occluders []Occluder) bool {
	dT := geo.DistanceMeters(pose.Position, target)
	if dT < 1 {
		return false
	}
	bT := geo.BearingDegrees(pose.Position, target)
	for _, o := range occluders {
		dO := geo.DistanceMeters(pose.Position, o.Location)
		if dO < 1 || dO >= dT-1 {
			continue
		}
		w := o.WidthM
		if w <= 0 {
			w = 20
		}
		halfAngle := math.Atan2(w/2, dO) * 180 / math.Pi
		if math.Abs(wrap180(geo.BearingDegrees(pose.Position, o.Location)-bT)) > halfAngle {
			continue
		}
		// Sight-line height where it crosses the occluder's distance.
		lineH := pose.AltitudeM + (heightM-pose.AltitudeM)*(dO/dT)
		if lineH < o.HeightM {
			return true
		}
	}
	return false
}

// LayoutOptions configures the anchored layout engine.
type LayoutOptions struct {
	BoxW, BoxH   float64 // label box size (default 140×36)
	CullOccluded bool    // drop occluded anchors instead of X-ray styling
	MaxLeaderPx  float64 // max displacement from anchor (default 120)
}

func (o *LayoutOptions) defaults() {
	if o.BoxW <= 0 {
		o.BoxW = 140
	}
	if o.BoxH <= 0 {
		o.BoxH = 36
	}
	if o.MaxLeaderPx <= 0 {
		o.MaxLeaderPx = 120
	}
}

// LayoutBubbles is the baseline: every in-frustum annotation becomes a
// bubble centred on its projection, ignoring collisions and occlusion —
// the floating-bubble AR browsers of the paper's era.
func LayoutBubbles(cam Camera, pose sensor.Pose, anns []Annotation) []Annotation {
	out := make([]Annotation, 0, len(anns))
	for _, a := range anns {
		pos, ok := cam.Project(pose, a.Anchor, a.AnchorHM)
		if !ok {
			continue
		}
		a.Pos = pos
		a.W, a.H = 140, 36
		a.X, a.Y = pos.X-a.W/2, pos.Y-a.H/2
		a.Placed = true
		out = append(out, a)
	}
	return out
}

// candidateOffsets are tried in order around the anchor: above, then sides,
// then below, at increasing leader lengths.
var candidateOffsets = [][2]float64{
	{0, -30}, {0, -60}, {70, -30}, {-70, -30}, {80, 0}, {-80, 0},
	{0, -90}, {90, -60}, {-90, -60}, {0, 40}, {100, 40}, {-100, 40}, {0, -120},
}

// LayoutScratch holds the intermediate buffers LayoutAnchoredInto reuses
// across frames: the projected-and-visible working set and the placed-box
// pointer list. The zero value is ready to use; a scratch must not be shared
// between concurrent layout calls.
type LayoutScratch struct {
	visible []Annotation
	placed  []*Annotation
}

// sort.Interface over the visible working set: nearer and higher-priority
// content first.
func (sc *LayoutScratch) Len() int { return len(sc.visible) }
func (sc *LayoutScratch) Less(i, j int) bool {
	if sc.visible[i].Priority != sc.visible[j].Priority {
		return sc.visible[i].Priority > sc.visible[j].Priority
	}
	return sc.visible[i].Pos.Depth < sc.visible[j].Pos.Depth
}
func (sc *LayoutScratch) Swap(i, j int) {
	sc.visible[i], sc.visible[j] = sc.visible[j], sc.visible[i]
}

// LayoutAnchored places annotations priority-first, avoiding box collisions
// and screen edges, culling or X-ray-marking occluded anchors, and keeping
// labels near their anchors with short leader lines.
func LayoutAnchored(cam Camera, pose sensor.Pose, anns []Annotation, occluders []Occluder, opts LayoutOptions) []Annotation {
	return LayoutAnchoredInto(nil, nil, cam, pose, anns, occluders, opts)
}

// LayoutAnchoredInto is LayoutAnchored appending into dst with reusable
// intermediate buffers. dst and sc may both be nil (allocating fresh
// buffers); results overwrite dst's contents from length zero and the
// returned slice shares dst's storage when capacity allows.
func LayoutAnchoredInto(dst []Annotation, sc *LayoutScratch, cam Camera, pose sensor.Pose, anns []Annotation, occluders []Occluder, opts LayoutOptions) []Annotation {
	opts.defaults()
	if sc == nil {
		sc = &LayoutScratch{}
	}
	// Project and occlusion-test everything first.
	visible := sc.visible[:0]
	for _, a := range anns {
		pos, ok := cam.Project(pose, a.Anchor, a.AnchorHM)
		if !ok {
			continue
		}
		a.Pos = pos
		a.W, a.H = opts.BoxW, opts.BoxH
		a.Occluded = IsOccluded(pose, a.Anchor, a.AnchorHM, occluders)
		if a.Occluded {
			if opts.CullOccluded {
				continue
			}
			a.XRay = true
		}
		visible = append(visible, a)
	}
	sc.visible = visible
	sort.Stable(sc)

	// The placement loop keeps pointers into out, so out must never grow
	// once placement starts: reserve full capacity up front.
	out := dst
	if cap(out) < len(visible) {
		out = make([]Annotation, 0, len(visible))
	}
	out = out[:0]
	placed := sc.placed[:0]
	for i := range visible {
		a := visible[i]
		if tryPlace(cam, &a, placed, opts) {
			a.Placed = true
			out = append(out, a)
			placed = append(placed, &out[len(out)-1])
		}
	}
	// Drop the stale annotation pointers so the pooled scratch does not pin
	// a previous frame's buffer.
	for i := range placed {
		placed[i] = nil
	}
	sc.placed = placed[:0]
	return out
}

func tryPlace(cam Camera, a *Annotation, placed []*Annotation, opts LayoutOptions) bool {
	for _, off := range candidateOffsets {
		x := a.Pos.X + off[0] - a.W/2
		y := a.Pos.Y + off[1] - a.H/2
		leader := math.Hypot(off[0], off[1])
		if leader > opts.MaxLeaderPx {
			continue
		}
		if x < 0 || y < 0 || x+a.W > float64(cam.Width) || y+a.H > float64(cam.Height) {
			continue
		}
		cand := *a
		cand.X, cand.Y = x, y
		collides := false
		for _, p := range placed {
			if boxesOverlap(&cand, p) {
				collides = true
				break
			}
		}
		if !collides {
			a.X, a.Y, a.LeaderPx = x, y, leader
			return true
		}
	}
	return false
}

// Clutter summarises layout quality; lower is better on every field.
type Clutter struct {
	Drawn               int
	OverlapFraction     float64 // overlapped box area / total box area
	OcclusionViolations int     // occluded anchors drawn as if visible
	OffscreenBoxes      int     // boxes extending beyond screen edges
	MeanLeaderPx        float64
}

// MeasureClutter computes layout-quality metrics for a set of laid-out
// annotations. Occlusion is re-derived from the scene so the bubble
// baseline (which never tests it) is scored fairly.
func MeasureClutter(cam Camera, pose sensor.Pose, laid []Annotation, occluders []Occluder) Clutter {
	var m Clutter
	m.Drawn = len(laid)
	if len(laid) == 0 {
		return m
	}
	var overlap, total, leader float64
	for i := range laid {
		a := &laid[i]
		total += a.W * a.H
		leader += a.LeaderPx
		if a.X < 0 || a.Y < 0 || a.X+a.W > float64(cam.Width) || a.Y+a.H > float64(cam.Height) {
			m.OffscreenBoxes++
		}
		if !a.XRay && IsOccluded(pose, a.Anchor, a.AnchorHM, occluders) {
			m.OcclusionViolations++
		}
		for j := i + 1; j < len(laid); j++ {
			overlap += overlapArea(a, &laid[j])
		}
	}
	m.OverlapFraction = overlap / total
	m.MeanLeaderPx = leader / float64(len(laid))
	return m
}

// Jitter measures mean label movement in pixels between two consecutive
// layouts, matching annotations by ID. Stable layouts score low.
func Jitter(prev, cur []Annotation) float64 {
	if len(prev) == 0 || len(cur) == 0 {
		return 0
	}
	var sum float64
	n := 0
	// Typical AR overlays hold a few dozen labels at most: a quadratic ID
	// match is both faster there and allocation-free, which matters on the
	// frame hot path. Large layouts fall back to the map.
	if len(prev) <= 64 {
		for i := range cur {
			for j := range prev {
				if prev[j].ID == cur[i].ID {
					sum += math.Hypot(cur[i].X-prev[j].X, cur[i].Y-prev[j].Y)
					n++
					break
				}
			}
		}
	} else {
		prevByID := make(map[uint64]*Annotation, len(prev))
		for i := range prev {
			prevByID[prev[i].ID] = &prev[i]
		}
		for i := range cur {
			p, ok := prevByID[cur[i].ID]
			if !ok {
				continue
			}
			sum += math.Hypot(cur[i].X-p.X, cur[i].Y-p.Y)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AnnotationsFromPOIs builds annotations for POIs, prioritised by inverse
// distance from the viewer (nearer content matters more in AR). Labels
// anchor at facade viewing height (2-8 m) rather than rooftops so nearby
// content stays inside a phone camera's narrow vertical FOV.
func AnnotationsFromPOIs(pose sensor.Pose, pois []geo.POI) []Annotation {
	return AnnotationsFromPOIsInto(nil, pose, pois)
}

// AnnotationsFromPOIsInto is AnnotationsFromPOIs appending into dst. Results
// overwrite dst's contents from length zero; the returned slice shares dst's
// storage when capacity allows.
func AnnotationsFromPOIsInto(dst []Annotation, pose sensor.Pose, pois []geo.POI) []Annotation {
	out := dst[:0]
	for _, p := range pois {
		d := geo.DistanceMeters(pose.Position, p.Location)
		anchorH := math.Max(2, math.Min(p.HeightMeters*0.4, 8))
		out = append(out, Annotation{
			ID:       p.ID,
			Label:    p.Name,
			Anchor:   p.Location,
			AnchorHM: anchorH,
			Priority: 1000 / (d + 10),
		})
	}
	return out
}
