package render

import (
	"math"
	"testing"

	"arbd/internal/geo"
	"arbd/internal/sensor"
)

var (
	origin = geo.Point{Lat: 22.3364, Lon: 114.2655}
	pose   = sensor.Pose{Position: origin, HeadingDeg: 0, AltitudeM: 1.6}
	cam    = DefaultCamera
)

func poiAt(id uint64, bearing, dist, height float64) geo.POI {
	return geo.POI{
		ID:           id,
		Name:         "poi",
		Location:     geo.Destination(origin, bearing, dist),
		HeightMeters: height,
	}
}

func TestProjectCenterAhead(t *testing.T) {
	target := geo.Destination(origin, 0, 50)
	pos, ok := cam.Project(pose, target, 1.6)
	if !ok {
		t.Fatal("dead-ahead target not visible")
	}
	if math.Abs(pos.X-640) > 2 {
		t.Fatalf("X = %.1f, want ~640", pos.X)
	}
	if math.Abs(pos.Y-360) > 2 {
		t.Fatalf("Y = %.1f, want ~360 (eye level)", pos.Y)
	}
	if math.Abs(pos.Depth-50) > 1 {
		t.Fatalf("depth = %.1f", pos.Depth)
	}
}

func TestProjectHorizontalMapping(t *testing.T) {
	// 15° right of axis on a 60° FOV, 1280 px screen → 640 + 15/60*1280 = 960.
	target := geo.Destination(origin, 15, 50)
	pos, ok := cam.Project(pose, target, 1.6)
	if !ok {
		t.Fatal("in-FOV target not visible")
	}
	if math.Abs(pos.X-960) > 3 {
		t.Fatalf("X = %.1f, want ~960", pos.X)
	}
}

func TestProjectRejectsOutsideFrustum(t *testing.T) {
	if _, ok := cam.Project(pose, geo.Destination(origin, 90, 50), 1.6); ok {
		t.Fatal("target 90° off-axis visible")
	}
	if _, ok := cam.Project(pose, geo.Destination(origin, 180, 50), 1.6); ok {
		t.Fatal("target behind visible")
	}
	// Far above the vertical FOV at close range.
	if _, ok := cam.Project(pose, geo.Destination(origin, 0, 10), 100); ok {
		t.Fatal("target far above VFOV visible")
	}
	// Too close.
	if _, ok := cam.Project(pose, origin, 1.6); ok {
		t.Fatal("zero-distance target visible")
	}
}

func TestProjectHigherTargetsHigherOnScreen(t *testing.T) {
	low, ok1 := cam.Project(pose, geo.Destination(origin, 0, 60), 2)
	high, ok2 := cam.Project(pose, geo.Destination(origin, 0, 60), 12)
	if !ok1 || !ok2 {
		t.Fatal("targets not visible")
	}
	if high.Y >= low.Y {
		t.Fatalf("higher target not higher on screen: %.1f vs %.1f", high.Y, low.Y)
	}
}

func TestIsOccluded(t *testing.T) {
	// A 40 m building at 30 m dead ahead hides a 10 m target at 100 m.
	occ := []Occluder{{Location: geo.Destination(origin, 0, 30), HeightM: 40, WidthM: 20}}
	target := geo.Destination(origin, 0, 100)
	if !IsOccluded(pose, target, 10, occ) {
		t.Fatal("target behind tall building not occluded")
	}
	// Same target off to the side is clear.
	side := geo.Destination(origin, 40, 100)
	if IsOccluded(pose, side, 10, occ) {
		t.Fatal("side target occluded")
	}
	// A short wall does not block the sight line to a tall target's top.
	lowOcc := []Occluder{{Location: geo.Destination(origin, 0, 30), HeightM: 3, WidthM: 20}}
	if IsOccluded(pose, target, 50, lowOcc) {
		t.Fatal("short occluder blocked tall target")
	}
	// Occluders behind the target don't count.
	behind := []Occluder{{Location: geo.Destination(origin, 0, 150), HeightM: 100, WidthM: 20}}
	if IsOccluded(pose, target, 10, behind) {
		t.Fatal("occluder behind target blocked it")
	}
}

func TestOccludersFromPOIs(t *testing.T) {
	pois := []geo.POI{poiAt(1, 0, 50, 80), poiAt(2, 0, 60, 5)}
	occ := OccludersFromPOIs(pois, 30)
	if len(occ) != 1 || occ[0].HeightM != 80 {
		t.Fatalf("occluders = %v", occ)
	}
}

// denseScene builds n annotations clustered in the camera's view.
func denseScene(n int) []Annotation {
	var anns []Annotation
	for i := 0; i < n; i++ {
		bearing := -25 + 50*float64(i)/float64(n)
		dist := 30 + float64(i%7)*20
		anns = append(anns, Annotation{
			ID:       uint64(i + 1),
			Label:    "a",
			Anchor:   geo.Destination(origin, bearing, dist),
			AnchorHM: 5,
			Priority: float64(n - i),
		})
	}
	return anns
}

func TestLayoutBubblesOverlapHeavily(t *testing.T) {
	laid := LayoutBubbles(cam, pose, denseScene(60))
	if len(laid) == 0 {
		t.Fatal("nothing drawn")
	}
	m := MeasureClutter(cam, pose, laid, nil)
	if m.OverlapFraction < 0.1 {
		t.Fatalf("dense bubbles overlap = %.3f; expected heavy clutter", m.OverlapFraction)
	}
}

func TestLayoutAnchoredAvoidsOverlap(t *testing.T) {
	laid := LayoutAnchored(cam, pose, denseScene(60), nil, LayoutOptions{})
	if len(laid) == 0 {
		t.Fatal("nothing drawn")
	}
	m := MeasureClutter(cam, pose, laid, nil)
	if m.OverlapFraction > 1e-9 {
		t.Fatalf("anchored layout overlap = %.4f, want 0", m.OverlapFraction)
	}
	if m.OffscreenBoxes != 0 {
		t.Fatalf("offscreen boxes = %d", m.OffscreenBoxes)
	}
	// It must draw less than the bubble engine (it culls what cannot fit)
	// but a reasonable share.
	if len(laid) < 10 {
		t.Fatalf("anchored layout drew only %d", len(laid))
	}
}

func TestLayoutAnchoredPrefersHighPriority(t *testing.T) {
	anns := denseScene(100)
	laid := LayoutAnchored(cam, pose, anns, nil, LayoutOptions{})
	if len(laid) == 0 {
		t.Fatal("nothing drawn")
	}
	drawn := map[uint64]bool{}
	for _, a := range laid {
		drawn[a.ID] = true
	}
	// The top-priority annotation (ID 1) must always be drawn.
	if !drawn[1] {
		t.Fatal("highest-priority annotation culled")
	}
}

func TestLayoutOccludedHandling(t *testing.T) {
	occluders := []Occluder{{Location: geo.Destination(origin, 0, 20), HeightM: 60, WidthM: 40}}
	anns := []Annotation{{
		ID: 1, Anchor: geo.Destination(origin, 0, 100), AnchorHM: 5, Priority: 1,
	}}
	// X-ray mode: drawn, marked.
	laid := LayoutAnchored(cam, pose, anns, occluders, LayoutOptions{})
	if len(laid) != 1 || !laid[0].XRay || !laid[0].Occluded {
		t.Fatalf("x-ray handling: %+v", laid)
	}
	// Cull mode: dropped.
	laid = LayoutAnchored(cam, pose, anns, occluders, LayoutOptions{CullOccluded: true})
	if len(laid) != 0 {
		t.Fatalf("cull mode drew %d", len(laid))
	}
	// Bubbles: drawn with a violation.
	bl := LayoutBubbles(cam, pose, anns)
	m := MeasureClutter(cam, pose, bl, occluders)
	if m.OcclusionViolations != 1 {
		t.Fatalf("bubble occlusion violations = %d, want 1", m.OcclusionViolations)
	}
}

func TestAnchoredBeatsBubblesOnClutter(t *testing.T) {
	city := geo.GenerateCity(geo.CityConfig{Center: origin, RadiusM: 300, NumPOIs: 400, TallRatio: 0.3, Seed: 5})
	occluders := OccludersFromPOIs(city, 30)
	anns := AnnotationsFromPOIs(pose, city)
	bubbles := MeasureClutter(cam, pose, LayoutBubbles(cam, pose, anns), occluders)
	anchored := MeasureClutter(cam, pose, LayoutAnchored(cam, pose, anns, occluders, LayoutOptions{}), occluders)
	if anchored.OverlapFraction >= bubbles.OverlapFraction {
		t.Fatalf("anchored overlap %.3f not below bubbles %.3f",
			anchored.OverlapFraction, bubbles.OverlapFraction)
	}
	if anchored.OcclusionViolations >= bubbles.OcclusionViolations && bubbles.OcclusionViolations > 0 {
		t.Fatalf("anchored violations %d not below bubbles %d",
			anchored.OcclusionViolations, bubbles.OcclusionViolations)
	}
}

func TestJitterStableWhenStill(t *testing.T) {
	anns := denseScene(30)
	a := LayoutAnchored(cam, pose, anns, nil, LayoutOptions{})
	b := LayoutAnchored(cam, pose, anns, nil, LayoutOptions{})
	if j := Jitter(a, b); j != 0 {
		t.Fatalf("jitter with identical pose = %.2f", j)
	}
}

func TestJitterGrowsWithMotion(t *testing.T) {
	anns := denseScene(30)
	a := LayoutAnchored(cam, pose, anns, nil, LayoutOptions{})
	moved := pose
	moved.HeadingDeg += 2
	b := LayoutAnchored(cam, moved, anns, nil, LayoutOptions{})
	if j := Jitter(a, b); j <= 0 {
		t.Fatalf("jitter after turn = %.2f, want > 0", j)
	}
	if j := Jitter(nil, b); j != 0 {
		t.Fatal("jitter against empty prev not 0")
	}
}

func TestAnnotationsFromPOIs(t *testing.T) {
	pois := []geo.POI{poiAt(1, 0, 20, 50), poiAt(2, 0, 200, 50)}
	anns := AnnotationsFromPOIs(pose, pois)
	if len(anns) != 2 {
		t.Fatalf("anns = %d", len(anns))
	}
	if anns[0].Priority <= anns[1].Priority {
		t.Fatal("nearer POI not prioritised")
	}
	if anns[0].AnchorHM > 8 || anns[0].AnchorHM < 2 {
		t.Fatalf("anchor height %v not clamped to facade band", anns[0].AnchorHM)
	}
}
