package render

import (
	"testing"

	"arbd/internal/geo"
)

func annEqual(a, b Annotation) bool {
	return a.ID == b.ID && a.Label == b.Label && a.Anchor == b.Anchor &&
		a.AnchorHM == b.AnchorHM && a.Priority == b.Priority &&
		a.X == b.X && a.Y == b.Y && a.W == b.W && a.H == b.H &&
		a.Placed == b.Placed && a.Occluded == b.Occluded &&
		a.XRay == b.XRay && a.LeaderPx == b.LeaderPx
}

// TestIntoVariantsEquivalence runs the full annotate→layout chain through
// the allocating and buffer-reusing forms over several scenes, reusing the
// same buffers and scratch throughout, and requires identical output.
func TestIntoVariantsEquivalence(t *testing.T) {
	var (
		pois    []geo.POI
		annBuf  []Annotation
		laidBuf []Annotation
		occlBuf []Occluder
		scratch LayoutScratch
	)
	for scene := 0; scene < 4; scene++ {
		pois = pois[:0]
		for i := 0; i < 40+scene*25; i++ {
			id := uint64(scene*1000 + i + 1)
			pois = append(pois, poiAt(id, float64(i*7%360), 30+float64(i*13%400), 5+float64(i%40)))
		}

		wantOccl := OccludersFromPOIs(pois, 30)
		occlBuf = OccludersFromPOIsInto(occlBuf, pois, 30)
		if len(occlBuf) != len(wantOccl) {
			t.Fatalf("scene %d: occluders %d, want %d", scene, len(occlBuf), len(wantOccl))
		}
		for i := range wantOccl {
			if occlBuf[i] != wantOccl[i] {
				t.Fatalf("scene %d: occluder %d differs", scene, i)
			}
		}

		wantAnns := AnnotationsFromPOIs(pose, pois)
		annBuf = AnnotationsFromPOIsInto(annBuf, pose, pois)
		if len(annBuf) != len(wantAnns) {
			t.Fatalf("scene %d: annotations %d, want %d", scene, len(annBuf), len(wantAnns))
		}
		for i := range wantAnns {
			if !annEqual(annBuf[i], wantAnns[i]) {
				t.Fatalf("scene %d: annotation %d differs: got %+v want %+v",
					scene, i, annBuf[i], wantAnns[i])
			}
		}

		wantLaid := LayoutAnchored(cam, pose, wantAnns, wantOccl, LayoutOptions{})
		laidBuf = LayoutAnchoredInto(laidBuf, &scratch, cam, pose, annBuf, occlBuf, LayoutOptions{})
		if len(laidBuf) != len(wantLaid) {
			t.Fatalf("scene %d: laid %d, want %d", scene, len(laidBuf), len(wantLaid))
		}
		for i := range wantLaid {
			if !annEqual(laidBuf[i], wantLaid[i]) {
				t.Fatalf("scene %d: laid %d differs: got %+v want %+v",
					scene, i, laidBuf[i], wantLaid[i])
			}
		}
	}
}

// TestLayoutAnchoredIntoSteadyStateAllocs checks that with warmed buffers
// the layout engine allocates nothing per frame.
func TestLayoutAnchoredIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	var pois []geo.POI
	for i := 0; i < 80; i++ {
		pois = append(pois, poiAt(uint64(i+1), float64(i*5%360), 30+float64(i*11%350), 5+float64(i%35)))
	}
	occl := OccludersFromPOIs(pois, 30)
	anns := AnnotationsFromPOIs(pose, pois)
	var laid []Annotation
	var sc LayoutScratch
	for i := 0; i < 4; i++ {
		laid = LayoutAnchoredInto(laid, &sc, cam, pose, anns, occl, LayoutOptions{})
	}
	allocs := testing.AllocsPerRun(50, func() {
		laid = LayoutAnchoredInto(laid, &sc, cam, pose, anns, occl, LayoutOptions{})
	})
	if allocs > 0 {
		t.Fatalf("LayoutAnchoredInto allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestJitterSmallAndLargePathsAgree pins the allocation-free quadratic
// path to the map-based fallback.
func TestJitterSmallAndLargePathsAgree(t *testing.T) {
	mk := func(n int, dx float64) []Annotation {
		out := make([]Annotation, n)
		for i := range out {
			out[i] = Annotation{ID: uint64(i + 1), X: float64(i)*10 + dx, Y: float64(i) * 5}
		}
		return out
	}
	// 100 annotations exercises the map path; its 64-element prefix the
	// quadratic path. Matching IDs move by exactly (3,0) in both.
	prev, cur := mk(100, 0), mk(100, 3)
	if got := Jitter(prev, cur); got < 2.99 || got > 3.01 {
		t.Fatalf("map-path jitter = %v, want 3", got)
	}
	if got := Jitter(prev[:40], cur[:40]); got < 2.99 || got > 3.01 {
		t.Fatalf("quadratic-path jitter = %v, want 3", got)
	}
}
