//go:build race

package render

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so steady-state-allocs tests skip under -race.
const raceEnabled = true
