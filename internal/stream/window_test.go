package stream

import (
	"math"
	"testing"
	"time"
)

var w0 = time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC)

func ev(key string, offset time.Duration, v float64) Event {
	return Event{Key: key, Time: w0.Add(offset), Value: v}
}

func TestTumblingAssign(t *testing.T) {
	spec := Tumbling(10 * time.Second)
	wins := spec.assign(w0.Add(13 * time.Second))
	if len(wins) != 1 {
		t.Fatalf("assigned %d windows", len(wins))
	}
	if !wins[0].Start.Equal(w0.Add(10*time.Second)) || !wins[0].End.Equal(w0.Add(20*time.Second)) {
		t.Fatalf("window = %v", wins[0])
	}
}

func TestSlidingAssign(t *testing.T) {
	spec := Sliding(30*time.Second, 10*time.Second)
	wins := spec.assign(w0.Add(25 * time.Second))
	if len(wins) != 3 {
		t.Fatalf("assigned %d windows, want 3", len(wins))
	}
	for _, w := range wins {
		if w0.Add(25*time.Second).Before(w.Start) || !w0.Add(25*time.Second).Before(w.End) {
			t.Fatalf("event outside assigned window %v", w)
		}
		if w.End.Sub(w.Start) != 30*time.Second {
			t.Fatalf("window size %v", w.End.Sub(w.Start))
		}
	}
}

func TestWindowSpecValidity(t *testing.T) {
	cases := []struct {
		spec WindowSpec
		ok   bool
	}{
		{Tumbling(time.Second), true},
		{Tumbling(0), false},
		{Sliding(10*time.Second, 5*time.Second), true},
		{Sliding(5*time.Second, 10*time.Second), false}, // slide > size
		{Sliding(10*time.Second, 0), false},
		{Session(time.Second), true},
		{Session(0), false},
		{WindowSpec{}, false},
	}
	for i, c := range cases {
		if got := c.spec.valid(); got != c.ok {
			t.Errorf("case %d: valid = %v, want %v", i, got, c.ok)
		}
	}
}

func TestTumblingWindowStateFiresOnWatermark(t *testing.T) {
	ws := newWindowState(Tumbling(10*time.Second), Sum())
	var fired []Event
	fired = append(fired, ws.add(ev("a", 1*time.Second, 1))...)
	fired = append(fired, ws.add(ev("a", 5*time.Second, 2))...)
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	// Crossing into the next window fires the first.
	fired = append(fired, ws.add(ev("a", 11*time.Second, 4))...)
	if len(fired) != 1 {
		t.Fatalf("fired %d, want 1", len(fired))
	}
	if fired[0].Value != 3 {
		t.Fatalf("sum = %v, want 3", fired[0].Value)
	}
	wr := fired[0].Payload.(WindowResult)
	if wr.Count != 2 || !wr.Window.Start.Equal(w0) {
		t.Fatalf("result payload = %+v", wr)
	}
}

func TestWindowLatenessHoldsFiring(t *testing.T) {
	ws := newWindowState(Tumbling(10*time.Second).WithLateness(5*time.Second), Sum())
	ws.add(ev("a", 1*time.Second, 1))
	// t=12s: watermark 7s < window end 10s: no fire yet.
	if fired := ws.add(ev("a", 12*time.Second, 1)); len(fired) != 0 {
		t.Fatalf("fired with watermark before window end")
	}
	// Late event for [0,10) still accepted (watermark 7s).
	ws.add(ev("a", 9*time.Second, 10))
	// t=16s: watermark 11s >= 10: fires with the late event included.
	fired := ws.add(ev("a", 16*time.Second, 1))
	if len(fired) != 1 || fired[0].Value != 11 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestWindowDropsTooLateEvents(t *testing.T) {
	ws := newWindowState(Tumbling(10*time.Second), Sum())
	ws.add(ev("a", 1*time.Second, 1))
	ws.add(ev("a", 15*time.Second, 1)) // fires [0,10)
	before := ws.lateDrops
	ws.add(ev("a", 2*time.Second, 99)) // hopeless straggler
	if ws.lateDrops != before+1 {
		t.Fatalf("late event not counted dropped")
	}
}

func TestWindowPerKeyIsolation(t *testing.T) {
	ws := newWindowState(Tumbling(10*time.Second), Sum())
	ws.add(ev("a", 1*time.Second, 1))
	ws.add(ev("b", 2*time.Second, 10))
	fired := ws.add(ev("c", 12*time.Second, 0))
	if len(fired) != 2 {
		t.Fatalf("fired %d results, want 2", len(fired))
	}
	// Deterministic order: same window end, keys sorted.
	if fired[0].Key != "a" || fired[1].Key != "b" {
		t.Fatalf("order = %s, %s", fired[0].Key, fired[1].Key)
	}
	if fired[0].Value != 1 || fired[1].Value != 10 {
		t.Fatalf("values = %v, %v", fired[0].Value, fired[1].Value)
	}
}

func TestSlidingWindowCounts(t *testing.T) {
	// Size 20s slide 10s: event at t=5 belongs to [0,20) and [-10,10).
	ws := newWindowState(Sliding(20*time.Second, 10*time.Second), Count())
	ws.add(ev("k", 5*time.Second, 1))
	fired := ws.add(ev("k", 31*time.Second, 1))
	if len(fired) != 2 {
		t.Fatalf("fired %d, want 2 overlapping windows", len(fired))
	}
	for _, f := range fired {
		if f.Value != 1 {
			t.Fatalf("count = %v, want 1", f.Value)
		}
	}
	// Windows fire ordered by end time.
	e0 := fired[0].Payload.(WindowResult).Window.End
	e1 := fired[1].Payload.(WindowResult).Window.End
	if !e0.Before(e1) {
		t.Fatalf("fire order wrong: %v then %v", e0, e1)
	}
}

func TestSessionWindowMergesAndFires(t *testing.T) {
	ws := newWindowState(Session(10*time.Second), Count())
	ws.add(ev("u", 0, 1))
	ws.add(ev("u", 5*time.Second, 1))  // same session
	ws.add(ev("u", 12*time.Second, 1)) // extends session (gap from t=5 is 7s < 10s)
	// An event far in the future closes the session.
	fired := ws.add(ev("u", 60*time.Second, 1))
	if len(fired) != 1 {
		t.Fatalf("fired %d sessions, want 1", len(fired))
	}
	if fired[0].Value != 3 {
		t.Fatalf("session count = %v, want 3", fired[0].Value)
	}
	win := fired[0].Payload.(WindowResult).Window
	if !win.Start.Equal(w0) {
		t.Fatalf("session start = %v", win.Start)
	}
}

func TestSessionWindowSeparateSessions(t *testing.T) {
	ws := newWindowState(Session(5*time.Second), Count())
	var fired []Event
	fired = append(fired, ws.add(ev("u", 0, 1))...)
	fired = append(fired, ws.add(ev("u", 20*time.Second, 1))...) // closes first session
	fired = append(fired, ws.add(ev("u", 60*time.Second, 1))...) // closes second
	fired = append(fired, ws.flush()...)                         // flushes third
	if len(fired) != 3 {
		t.Fatalf("total sessions = %d, want 3", len(fired))
	}
	for _, f := range fired {
		if f.Value != 1 {
			t.Fatalf("session count = %v, want 1", f.Value)
		}
	}
}

func TestSessionOutOfOrderMerge(t *testing.T) {
	// Events arriving out of order should still coalesce into one session.
	ws := newWindowState(Session(10*time.Second).WithLateness(time.Minute), Count())
	ws.add(ev("u", 8*time.Second, 1))
	ws.add(ev("u", 0*time.Second, 1))
	ws.add(ev("u", 4*time.Second, 1))
	fired := ws.flush()
	if len(fired) != 1 || fired[0].Value != 3 {
		t.Fatalf("sessions = %v", fired)
	}
}

func TestFlushEmitsPending(t *testing.T) {
	ws := newWindowState(Tumbling(time.Minute), Mean())
	ws.add(ev("x", time.Second, 2))
	ws.add(ev("x", 2*time.Second, 4))
	fired := ws.flush()
	if len(fired) != 1 || fired[0].Value != 3 {
		t.Fatalf("flush = %v", fired)
	}
	if again := ws.flush(); len(again) != 0 {
		t.Fatalf("second flush re-emitted: %v", again)
	}
}

func TestAggregators(t *testing.T) {
	events := []Event{ev("k", 0, 4), ev("k", time.Second, 1), ev("k", 2*time.Second, 7)}
	cases := []struct {
		agg  Aggregator
		want float64
	}{
		{Count(), 3},
		{Sum(), 12},
		{Mean(), 4},
		{Min(), 1},
		{Max(), 7},
	}
	for _, c := range cases {
		acc := c.agg.New()
		for _, e := range events {
			acc = c.agg.Add(acc, e)
		}
		if got := c.agg.Result(acc); got != c.want {
			t.Errorf("%s = %v, want %v", c.agg.Name, got, c.want)
		}
	}
}

func TestAggregatorsEmpty(t *testing.T) {
	for _, agg := range []Aggregator{Mean(), Min(), Max()} {
		if got := agg.Result(agg.New()); !math.IsNaN(got) {
			t.Errorf("%s on empty = %v, want NaN", agg.Name, got)
		}
	}
	if got := Count().Result(Count().New()); got != 0 {
		t.Errorf("empty count = %v", got)
	}
}

func TestPartitionOf(t *testing.T) {
	if partitionOf("anything", 1) != 0 {
		t.Fatal("single partition must be 0")
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		p := partitionOf(string(rune('a'+i%26))+"-suffix", 4)
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("partitioning degenerate")
	}
	if partitionOf("stable", 8) != partitionOf("stable", 8) {
		t.Fatal("partition not stable")
	}
}
