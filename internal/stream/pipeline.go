package stream

import (
	"errors"
	"fmt"
	"sync"

	"arbd/internal/metrics"
)

// Pipeline errors.
var (
	ErrStarted    = errors.New("stream: pipeline already started")
	ErrNotStarted = errors.New("stream: pipeline not started")
	ErrBadSpec    = errors.New("stream: invalid window spec")
	ErrClosed     = errors.New("stream: pipeline closed")
)

// defaultChannelSize is the per-worker input buffer. A bounded buffer gives
// backpressure: producers block when a stage falls behind. The value trades
// throughput (bigger batches between scheduler switches) against memory and
// latency; 256 events keeps worst-case buffering per edge small while
// avoiding lockstep handoffs.
const defaultChannelSize = 256

// Pipeline is a DAG of processing stages executed by goroutine pools. Build
// the topology first (Source/Map/Filter/Window/.../Sink), then Start it, Push
// events, and Drain to flush windows and stop cleanly.
type Pipeline struct {
	name    string
	reg     *metrics.Registry
	stages  []*stage
	sources map[string]*stage
	chanSz  int

	mu      sync.Mutex
	started bool
	closed  bool
}

// PipelineOption configures a pipeline.
type PipelineOption func(*Pipeline)

// WithChannelSize overrides the per-worker channel buffer.
func WithChannelSize(n int) PipelineOption {
	return func(p *Pipeline) {
		if n > 0 {
			p.chanSz = n
		}
	}
}

// WithRegistry points the pipeline's metrics at an external registry.
func WithRegistry(r *metrics.Registry) PipelineOption {
	return func(p *Pipeline) { p.reg = r }
}

// NewPipeline returns an empty pipeline.
func NewPipeline(name string, opts ...PipelineOption) *Pipeline {
	p := &Pipeline{
		name:    name,
		reg:     metrics.NewRegistry(),
		sources: make(map[string]*stage),
		chanSz:  defaultChannelSize,
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Metrics returns the pipeline's registry.
func (p *Pipeline) Metrics() *metrics.Registry { return p.reg }

// stage is one node of the DAG.
type stage struct {
	p           *Pipeline
	name        string
	parallelism int
	in          []chan Event
	// run processes one worker's input; emit forwards downstream.
	run  func(worker int, in <-chan Event, emit func(Event))
	out  []edge
	inWG sync.WaitGroup // counts upstream producers; inputs close at zero
	wkWG sync.WaitGroup // counts this stage's workers
}

// edge routes events from a stage to a downstream stage, optionally
// transforming them in transit (used to tag join sides).
type edge struct {
	to        *stage
	transform func(Event) Event
}

// send routes e to the destination worker by key hash, applying the edge
// transform.
func (ed edge) send(e Event) {
	if ed.transform != nil {
		e = ed.transform(e)
	}
	ed.to.in[partitionOf(e.Key, ed.to.parallelism)] <- e
}

// Stream is a handle to a stage's output used to chain operators.
type Stream struct {
	p  *Pipeline
	st *stage
}

func (p *Pipeline) addStage(name string, parallelism int, run func(int, <-chan Event, func(Event))) *stage {
	if parallelism <= 0 {
		parallelism = 1
	}
	st := &stage{p: p, name: name, parallelism: parallelism, run: run}
	st.in = make([]chan Event, parallelism)
	for i := range st.in {
		st.in[i] = make(chan Event, p.chanSz)
	}
	p.stages = append(p.stages, st)
	return st
}

// connect wires from -> to and accounts the producer count.
func connect(from, to *stage, transform func(Event) Event) {
	from.out = append(from.out, edge{to: to, transform: transform})
	to.inWG.Add(from.parallelism)
}

// Source declares a named external input. Push delivers events to it.
func (p *Pipeline) Source(name string) *Stream {
	st := p.addStage("source:"+name, 1, func(_ int, in <-chan Event, emit func(Event)) {
		for e := range in {
			emit(e)
		}
	})
	st.inWG.Add(1) // the Push handle is the producer; Drain releases it
	p.sources[name] = st
	return &Stream{p: p, st: st}
}

// Map transforms each event. Stateless; runs with the given parallelism.
func (s *Stream) Map(name string, parallelism int, fn func(Event) Event) *Stream {
	st := s.p.addStage("map:"+name, parallelism, func(_ int, in <-chan Event, emit func(Event)) {
		for e := range in {
			emit(fn(e))
		}
	})
	connect(s.st, st, nil)
	return &Stream{p: s.p, st: st}
}

// Filter drops events for which fn returns false.
func (s *Stream) Filter(name string, parallelism int, fn func(Event) bool) *Stream {
	st := s.p.addStage("filter:"+name, parallelism, func(_ int, in <-chan Event, emit func(Event)) {
		for e := range in {
			if fn(e) {
				emit(e)
			}
		}
	})
	connect(s.st, st, nil)
	return &Stream{p: s.p, st: st}
}

// FlatMap maps one event to zero or more events via the out callback.
func (s *Stream) FlatMap(name string, parallelism int, fn func(Event, func(Event))) *Stream {
	st := s.p.addStage("flatmap:"+name, parallelism, func(_ int, in <-chan Event, emit func(Event)) {
		for e := range in {
			fn(e, emit)
		}
	})
	connect(s.st, st, nil)
	return &Stream{p: s.p, st: st}
}

// Window applies windowed aggregation per key. Events are partitioned by key
// across parallel workers; each worker owns its keys' window state. Results
// carry a WindowResult payload.
func (s *Stream) Window(name string, parallelism int, spec WindowSpec, agg Aggregator) *Stream {
	if !spec.valid() {
		panic(fmt.Sprintf("stream: invalid window spec in %q", name))
	}
	lateCtr := s.p.reg.Counter("stream." + s.p.name + ".late_dropped." + name)
	st := s.p.addStage("window:"+name, parallelism, func(_ int, in <-chan Event, emit func(Event)) {
		ws := newWindowState(spec, agg)
		for e := range in {
			before := ws.lateDrops
			for _, r := range ws.add(e) {
				emit(r)
			}
			if ws.lateDrops > before {
				lateCtr.Add(int64(ws.lateDrops - before))
			}
		}
		for _, r := range ws.flush() {
			emit(r)
		}
	})
	connect(s.st, st, nil)
	return &Stream{p: s.p, st: st}
}

// Sink terminates the stream, delivering every event to fn from a single
// goroutine (fn needs no locking for its own state).
func (s *Stream) Sink(name string, fn func(Event)) {
	st := s.p.addStage("sink:"+name, 1, func(_ int, in <-chan Event, _ func(Event)) {
		for e := range in {
			fn(e)
		}
	})
	connect(s.st, st, nil)
}

// joinTag wraps events in transit to a join stage.
type joinTag struct {
	side  int
	inner any
}

// JoinWindow joins s (left) with other (right) on key within tumbling
// windows of the given size: when a window fires, fn receives all left and
// right events of one key and returns the events to emit. Both inputs are
// partitioned identically so a key's state lives on one worker.
func (s *Stream) JoinWindow(name string, parallelism int, other *Stream, spec WindowSpec, fn func(key string, win Window, left, right []Event) []Event) *Stream {
	if !spec.valid() || spec.kind == windowSession {
		panic(fmt.Sprintf("stream: invalid window spec in join %q (session joins unsupported)", name))
	}
	st := s.p.addStage("join:"+name, parallelism, func(_ int, in <-chan Event, emit func(Event)) {
		js := newJoinState(spec, fn)
		for e := range in {
			for _, out := range js.add(e) {
				emit(out)
			}
		}
		for _, out := range js.flush() {
			emit(out)
		}
	})
	connect(s.st, st, func(e Event) Event {
		e.Payload = joinTag{side: 0, inner: e.Payload}
		return e
	})
	connect(other.st, st, func(e Event) Event {
		e.Payload = joinTag{side: 1, inner: e.Payload}
		return e
	})
	return &Stream{p: s.p, st: st}
}

// Start launches every stage's workers. The topology is frozen afterwards.
func (p *Pipeline) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return ErrStarted
	}
	p.started = true
	for _, st := range p.stages {
		st := st
		for w := 0; w < st.parallelism; w++ {
			w := w
			st.wkWG.Add(1)
			go func() {
				defer st.wkWG.Done()
				emit := func(e Event) {
					for _, ed := range st.out {
						ed.send(e)
					}
				}
				st.run(w, st.in[w], emit)
			}()
		}
		// Close this stage's inputs once all upstream producers finish.
		go func() {
			st.inWG.Wait()
			for _, ch := range st.in {
				close(ch)
			}
		}()
		// Signal downstream when our workers are done.
		go func() {
			st.wkWG.Wait()
			for _, ed := range st.out {
				ed.to.inWG.Add(-st.parallelism)
			}
		}()
	}
	return nil
}

// Push delivers an event into the named source, blocking under
// backpressure.
func (p *Pipeline) Push(source string, e Event) error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return ErrNotStarted
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	st, ok := p.sources[source]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("stream: unknown source %q", source)
	}
	st.in[0] <- e
	return nil
}

// Drain closes all sources and waits for every stage to finish, flushing
// window state. The pipeline cannot be restarted.
func (p *Pipeline) Drain() error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return ErrNotStarted
	}
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	for _, st := range p.sources {
		st.inWG.Done() // release the Push producer slot
	}
	for _, st := range p.stages {
		st.wkWG.Wait()
	}
	return nil
}
