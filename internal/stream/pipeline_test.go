package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// collectSink gathers sink output safely across the pipeline's goroutines.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) add(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collectSink) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func TestPipelineMapFilterSink(t *testing.T) {
	p := NewPipeline("t")
	sink := &collectSink{}
	p.Source("in").
		Map("double", 2, func(e Event) Event { e.Value *= 2; return e }).
		Filter("big", 2, func(e Event) bool { return e.Value >= 10 }).
		Sink("out", sink.add)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := p.Push("in", ev(fmt.Sprintf("k%d", i), time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	if len(got) != 6 { // 5..10 doubled are >= 10
		t.Fatalf("sink got %d events, want 6", len(got))
	}
	for _, e := range got {
		if e.Value < 10 {
			t.Fatalf("filter leaked %v", e.Value)
		}
	}
}

func TestPipelineWindowEndToEnd(t *testing.T) {
	p := NewPipeline("t")
	sink := &collectSink{}
	p.Source("in").
		Window("sum10", 4, Tumbling(10*time.Second), Sum()).
		Sink("out", sink.add)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// 3 keys × 100 events each across 10 windows.
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i%3)
		_ = p.Push("in", ev(key, time.Duration(i)*time.Second/3, 1))
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	got := sink.all()
	totals := map[string]float64{}
	for _, e := range got {
		totals[e.Key] += e.Value
	}
	for _, k := range []string{"k0", "k1", "k2"} {
		if totals[k] != 100 {
			t.Fatalf("key %s total = %v, want 100 (windows lost events)", k, totals[k])
		}
	}
}

func TestPipelineFlatMap(t *testing.T) {
	p := NewPipeline("t")
	sink := &collectSink{}
	p.Source("in").
		FlatMap("explode", 1, func(e Event, out func(Event)) {
			for i := 0; i < int(e.Value); i++ {
				out(Event{Key: e.Key, Time: e.Time, Value: 1})
			}
		}).
		Sink("out", sink.add)
	_ = p.Start()
	_ = p.Push("in", ev("a", time.Second, 3))
	_ = p.Push("in", ev("b", time.Second, 0))
	_ = p.Drain()
	if got := len(sink.all()); got != 3 {
		t.Fatalf("flatmap emitted %d, want 3", got)
	}
}

func TestPipelineFanOut(t *testing.T) {
	p := NewPipeline("t")
	sinkA, sinkB := &collectSink{}, &collectSink{}
	src := p.Source("in")
	src.Map("a", 1, func(e Event) Event { return e }).Sink("outA", sinkA.add)
	src.Map("b", 1, func(e Event) Event { return e }).Sink("outB", sinkB.add)
	_ = p.Start()
	for i := 0; i < 20; i++ {
		_ = p.Push("in", ev("k", time.Duration(i)*time.Second, float64(i)))
	}
	_ = p.Drain()
	if len(sinkA.all()) != 20 || len(sinkB.all()) != 20 {
		t.Fatalf("fan-out lost events: %d, %d", len(sinkA.all()), len(sinkB.all()))
	}
}

func TestPipelineJoinWindow(t *testing.T) {
	p := NewPipeline("t")
	sink := &collectSink{}
	left := p.Source("left")
	right := p.Source("right")
	joined := left.JoinWindow("lr", 2, right, Tumbling(10*time.Second),
		func(key string, win Window, l, r []Event) []Event {
			var out []Event
			for _, le := range l {
				for _, re := range r {
					out = append(out, Event{
						Key:   key,
						Time:  win.End,
						Value: le.Value * re.Value,
					})
				}
			}
			return out
		})
	joined.Sink("out", sink.add)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Window [0,10): key a has left=2, right=3 -> product 6.
	_ = p.Push("left", ev("a", time.Second, 2))
	_ = p.Push("right", ev("a", 2*time.Second, 3))
	// Key b has only left: no output.
	_ = p.Push("left", ev("b", 3*time.Second, 5))
	_ = p.Drain()
	got := sink.all()
	if len(got) != 1 {
		t.Fatalf("join emitted %d, want 1: %v", len(got), got)
	}
	if got[0].Key != "a" || got[0].Value != 6 {
		t.Fatalf("join result = %+v", got[0])
	}
}

func TestPipelineJoinManyWindows(t *testing.T) {
	p := NewPipeline("t")
	sink := &collectSink{}
	left := p.Source("left")
	right := p.Source("right")
	left.JoinWindow("lr", 4, right, Tumbling(10*time.Second),
		func(key string, win Window, l, r []Event) []Event {
			if len(l) > 0 && len(r) > 0 {
				return []Event{{Key: key, Time: win.End, Value: float64(len(l) * len(r))}}
			}
			return nil
		}).Sink("out", sink.add)
	_ = p.Start()
	for w := 0; w < 5; w++ {
		base := time.Duration(w) * 10 * time.Second
		for k := 0; k < 3; k++ {
			key := fmt.Sprintf("k%d", k)
			_ = p.Push("left", ev(key, base+time.Second, 1))
			_ = p.Push("left", ev(key, base+2*time.Second, 1))
			_ = p.Push("right", ev(key, base+3*time.Second, 1))
		}
	}
	_ = p.Drain()
	got := sink.all()
	if len(got) != 15 { // 5 windows × 3 keys
		t.Fatalf("join results = %d, want 15", len(got))
	}
	for _, e := range got {
		if e.Value != 2 { // 2 left × 1 right
			t.Fatalf("pair count = %v, want 2", e.Value)
		}
	}
}

func TestPipelineLifecycleErrors(t *testing.T) {
	p := NewPipeline("t")
	p.Source("in").Sink("out", func(Event) {})
	if err := p.Push("in", Event{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("push before start: %v", err)
	}
	if err := p.Drain(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("drain before start: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double start: %v", err)
	}
	if err := p.Push("nope", Event{}); err == nil {
		t.Fatal("push to unknown source succeeded")
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("double drain: %v", err)
	}
	if err := p.Push("in", Event{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestPipelineInvalidWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window spec did not panic at build time")
		}
	}()
	p := NewPipeline("t")
	p.Source("in").Window("bad", 1, Tumbling(0), Sum())
}

func TestPipelineKeyedDeterminism(t *testing.T) {
	// Two identical runs must produce identical window results despite
	// parallel workers, because keys are partitioned deterministically.
	run := func() []Event {
		p := NewPipeline("t")
		sink := &collectSink{}
		p.Source("in").
			Window("count", 4, Tumbling(10*time.Second), Count()).
			Sink("out", sink.add)
		_ = p.Start()
		for i := 0; i < 500; i++ {
			_ = p.Push("in", ev(fmt.Sprintf("k%d", i%7), time.Duration(i)*100*time.Millisecond, 1))
		}
		_ = p.Drain()
		events := sink.all()
		sort.Slice(events, func(i, j int) bool {
			if !events[i].Time.Equal(events[j].Time) {
				return events[i].Time.Before(events[j].Time)
			}
			return events[i].Key < events[j].Key
		})
		return events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Value != b[i].Value || !a[i].Time.Equal(b[i].Time) {
			t.Fatalf("runs diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPipelineHighVolume(t *testing.T) {
	p := NewPipeline("t", WithChannelSize(512))
	var total struct {
		mu  sync.Mutex
		sum float64
	}
	p.Source("in").
		Map("noop", 4, func(e Event) Event { return e }).
		Window("sum", 4, Tumbling(time.Second), Sum()).
		Sink("out", func(e Event) {
			total.mu.Lock()
			total.sum += e.Value
			total.mu.Unlock()
		})
	_ = p.Start()
	const n = 20000
	for i := 0; i < n; i++ {
		_ = p.Push("in", ev(fmt.Sprintf("k%d", i%32), time.Duration(i)*time.Millisecond, 1))
	}
	_ = p.Drain()
	total.mu.Lock()
	defer total.mu.Unlock()
	if total.sum != n {
		t.Fatalf("sum = %v, want %d (events lost or duplicated)", total.sum, n)
	}
}
