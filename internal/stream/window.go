package stream

import (
	"sort"
	"time"
)

// WindowSpec describes how events map to windows. Exactly one constructor
// should be used; the zero value is invalid.
type WindowSpec struct {
	kind     windowKind
	size     time.Duration
	slide    time.Duration
	gap      time.Duration
	lateness time.Duration
}

type windowKind int

const (
	windowTumbling windowKind = iota + 1
	windowSliding
	windowSession
)

// Tumbling returns non-overlapping fixed windows of the given size.
func Tumbling(size time.Duration) WindowSpec {
	return WindowSpec{kind: windowTumbling, size: size}
}

// Sliding returns overlapping windows of the given size emitted every slide.
func Sliding(size, slide time.Duration) WindowSpec {
	return WindowSpec{kind: windowSliding, size: size, slide: slide}
}

// Session returns per-key windows that close after gap of inactivity.
func Session(gap time.Duration) WindowSpec {
	return WindowSpec{kind: windowSession, gap: gap}
}

// WithLateness returns a copy of the spec tolerating out-of-order events up
// to d behind the max observed event time before windows fire.
func (w WindowSpec) WithLateness(d time.Duration) WindowSpec {
	w.lateness = d
	return w
}

// valid reports whether the spec is usable.
func (w WindowSpec) valid() bool {
	switch w.kind {
	case windowTumbling:
		return w.size > 0
	case windowSliding:
		return w.size > 0 && w.slide > 0 && w.slide <= w.size
	case windowSession:
		return w.gap > 0
	default:
		return false
	}
}

// assign returns the windows an event at t belongs to (session windows are
// handled separately by the session operator).
func (w WindowSpec) assign(t time.Time) []Window {
	switch w.kind {
	case windowTumbling:
		start := t.Truncate(w.size)
		return []Window{{Start: start, End: start.Add(w.size)}}
	case windowSliding:
		var out []Window
		// Latest window starting at or before t.
		last := t.Truncate(w.slide)
		for s := last; t.Sub(s) < w.size; s = s.Add(-w.slide) {
			out = append(out, Window{Start: s, End: s.Add(w.size)})
		}
		return out
	default:
		return nil
	}
}

// windowState is the per-worker state of a window operator: accumulators
// keyed by (key, window), fired in watermark order.
type windowState struct {
	spec WindowSpec
	agg  Aggregator
	// accs maps key -> window start (unix nanos) -> accumulator.
	accs      map[string]map[int64]*windowAcc
	watermark time.Time
	maxSeen   time.Time
	firedWM   time.Time // watermark at last fire scan, to avoid per-event scans
	lateDrops int
}

type windowAcc struct {
	win   Window
	acc   any
	count int
	last  time.Time // session windows: last event time
}

func newWindowState(spec WindowSpec, agg Aggregator) *windowState {
	return &windowState{spec: spec, agg: agg, accs: make(map[string]map[int64]*windowAcc)}
}

// add folds e into its windows and returns any results that became final.
func (ws *windowState) add(e Event) []Event {
	if e.Time.After(ws.maxSeen) {
		ws.maxSeen = e.Time
	}
	newWM := ws.maxSeen.Add(-ws.spec.lateness)
	if newWM.After(ws.watermark) {
		ws.watermark = newWM
	}

	if ws.spec.kind == windowSession {
		ws.addSession(e)
	} else {
		if !e.Time.After(ws.watermark) && len(ws.spec.assign(e.Time)) > 0 {
			// Event entirely behind the watermark: may target already-fired
			// windows. Conservatively count it dropped if its newest window
			// has closed.
			wins := ws.spec.assign(e.Time)
			if !wins[0].End.After(ws.watermark) {
				ws.lateDrops++
				return ws.fire()
			}
		}
		keyAccs, ok := ws.accs[e.Key]
		if !ok {
			keyAccs = make(map[int64]*windowAcc)
			ws.accs[e.Key] = keyAccs
		}
		for _, win := range ws.spec.assign(e.Time) {
			if !win.End.After(ws.watermark) {
				continue // window already fired
			}
			id := win.Start.UnixNano()
			wa, ok := keyAccs[id]
			if !ok {
				wa = &windowAcc{win: win, acc: ws.agg.New()}
				keyAccs[id] = wa
			}
			wa.acc = ws.agg.Add(wa.acc, e)
			wa.count++
		}
	}
	return ws.fire()
}

// addSession merges e into the key's session windows, coalescing sessions
// that come within gap of each other.
func (ws *windowState) addSession(e Event) {
	keyAccs, ok := ws.accs[e.Key]
	if !ok {
		keyAccs = make(map[int64]*windowAcc)
		ws.accs[e.Key] = keyAccs
	}
	win := Window{Start: e.Time, End: e.Time.Add(ws.spec.gap)}
	merged := &windowAcc{
		win:   win,
		acc:   &sessionBuffer{events: []Event{e}},
		count: 1,
		last:  e.Time,
	}
	// Merge every overlapping session into the new one.
	for id, wa := range keyAccs {
		if wa.win.Start.Before(merged.win.End) && merged.win.Start.Before(wa.win.End) {
			merged = mergeSessions(merged, wa)
			delete(keyAccs, id)
		}
	}
	keyAccs[merged.win.Start.UnixNano()] = merged
}

// mergeSessions combines two session accumulators. Aggregator has no general
// merge operation, so session windows buffer their events and fold at fire
// time; merging is buffer concatenation plus bound extension.
func mergeSessions(a, b *windowAcc) *windowAcc {
	bufA := a.acc.(*sessionBuffer)
	bufB := b.acc.(*sessionBuffer)
	bufA.events = append(bufA.events, bufB.events...)
	win := a.win
	if b.win.Start.Before(win.Start) {
		win.Start = b.win.Start
	}
	if b.win.End.After(win.End) {
		win.End = b.win.End
	}
	last := a.last
	if b.last.After(last) {
		last = b.last
	}
	return &windowAcc{win: win, acc: bufA, count: a.count + b.count, last: last}
}

type sessionBuffer struct {
	events []Event
}

// fire emits results for every window whose end is at or before the
// watermark, in (window end, key) order for determinism. The scan only runs
// when the watermark has advanced since the last scan.
func (ws *windowState) fire() []Event {
	if !ws.watermark.After(ws.firedWM) {
		return nil
	}
	ws.firedWM = ws.watermark
	var ready []*windowAcc
	var keys []string
	for key, keyAccs := range ws.accs {
		for id, wa := range keyAccs {
			var closes time.Time
			if ws.spec.kind == windowSession {
				closes = wa.last.Add(ws.spec.gap)
			} else {
				closes = wa.win.End
			}
			if !closes.After(ws.watermark) {
				ready = append(ready, wa)
				keys = append(keys, key)
				delete(keyAccs, id)
			}
		}
		if len(keyAccs) == 0 {
			delete(ws.accs, key)
		}
	}
	return ws.emit(ready, keys)
}

// flush emits every remaining window regardless of watermark (end of
// stream).
func (ws *windowState) flush() []Event {
	var ready []*windowAcc
	var keys []string
	for key, keyAccs := range ws.accs {
		for id, wa := range keyAccs {
			ready = append(ready, wa)
			keys = append(keys, key)
			delete(keyAccs, id)
		}
		delete(ws.accs, key)
	}
	return ws.emit(ready, keys)
}

func (ws *windowState) emit(ready []*windowAcc, keys []string) []Event {
	if len(ready) == 0 {
		return nil
	}
	idx := make([]int, len(ready))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := ready[idx[a]], ready[idx[b]]
		if !wa.win.End.Equal(wb.win.End) {
			return wa.win.End.Before(wb.win.End)
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	out := make([]Event, 0, len(ready))
	for _, i := range idx {
		wa := ready[i]
		var value float64
		if buf, ok := wa.acc.(*sessionBuffer); ok {
			acc := ws.agg.New()
			for _, e := range buf.events {
				acc = ws.agg.Add(acc, e)
			}
			value = ws.agg.Result(acc)
		} else {
			value = ws.agg.Result(wa.acc)
		}
		out = append(out, Event{
			Key:   keys[i],
			Time:  wa.win.End,
			Value: value,
			Payload: WindowResult{
				Window: wa.win,
				Key:    keys[i],
				Count:  wa.count,
			},
		})
	}
	return out
}
