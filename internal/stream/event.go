// Package stream implements the platform's stream-processing engine: keyed
// event streams with event-time semantics, watermark-driven tumbling,
// sliding, and session windows, incremental aggregation, windowed joins, and
// a pipeline DAG executed by parallel workers with bounded-channel
// backpressure. It plays the role Flink-class systems play in the big-data
// architectures the paper assumes (DESIGN.md substitution table).
package stream

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"
)

// Event is one element of a stream. Key selects the logical partition;
// Time is event time (not processing time); Value carries the numeric
// measure most operators aggregate; Payload carries arbitrary context for
// map/filter/join logic.
type Event struct {
	Key     string
	Time    time.Time
	Value   float64
	Payload any
}

// partitionOf maps a key onto one of n worker partitions.
func partitionOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Window identifies a half-open event-time interval [Start, End).
type Window struct {
	Start time.Time
	End   time.Time
}

// String renders the window compactly for logs and test failures.
func (w Window) String() string {
	return fmt.Sprintf("[%s,%s)", w.Start.Format("15:04:05.000"), w.End.Format("15:04:05.000"))
}

// WindowResult is the payload attached to events emitted by window
// operators.
type WindowResult struct {
	Window Window
	Key    string
	Count  int
}

// Aggregator builds incremental window aggregates: New creates an
// accumulator, Add folds one event in, Result extracts the output value.
// Accumulators never cross goroutines concurrently; the engine confines each
// (key, window) accumulator to one worker.
type Aggregator struct {
	Name   string
	New    func() any
	Add    func(acc any, e Event) any
	Result func(acc any) float64
}

type meanAcc struct {
	sum float64
	n   int
}

type minMaxAcc struct {
	v   float64
	set bool
}

// Count returns an aggregator counting events.
func Count() Aggregator {
	return Aggregator{
		Name:   "count",
		New:    func() any { return 0 },
		Add:    func(acc any, _ Event) any { return acc.(int) + 1 },
		Result: func(acc any) float64 { return float64(acc.(int)) },
	}
}

// Sum returns an aggregator summing event values.
func Sum() Aggregator {
	return Aggregator{
		Name:   "sum",
		New:    func() any { return 0.0 },
		Add:    func(acc any, e Event) any { return acc.(float64) + e.Value },
		Result: func(acc any) float64 { return acc.(float64) },
	}
}

// Mean returns an aggregator averaging event values.
func Mean() Aggregator {
	return Aggregator{
		Name: "mean",
		New:  func() any { return &meanAcc{} },
		Add: func(acc any, e Event) any {
			a := acc.(*meanAcc)
			a.sum += e.Value
			a.n++
			return a
		},
		Result: func(acc any) float64 {
			a := acc.(*meanAcc)
			if a.n == 0 {
				return math.NaN()
			}
			return a.sum / float64(a.n)
		},
	}
}

// Min returns an aggregator tracking the minimum event value.
func Min() Aggregator {
	return Aggregator{
		Name: "min",
		New:  func() any { return &minMaxAcc{} },
		Add: func(acc any, e Event) any {
			a := acc.(*minMaxAcc)
			if !a.set || e.Value < a.v {
				a.v, a.set = e.Value, true
			}
			return a
		},
		Result: func(acc any) float64 {
			a := acc.(*minMaxAcc)
			if !a.set {
				return math.NaN()
			}
			return a.v
		},
	}
}

// Max returns an aggregator tracking the maximum event value.
func Max() Aggregator {
	return Aggregator{
		Name: "max",
		New:  func() any { return &minMaxAcc{} },
		Add: func(acc any, e Event) any {
			a := acc.(*minMaxAcc)
			if !a.set || e.Value > a.v {
				a.v, a.set = e.Value, true
			}
			return a
		},
		Result: func(acc any) float64 {
			a := acc.(*minMaxAcc)
			if !a.set {
				return math.NaN()
			}
			return a.v
		},
	}
}
