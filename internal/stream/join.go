package stream

import (
	"sort"
	"time"
)

// joinState buffers tagged events per (key, window) for a two-input windowed
// join and fires the user join function when the watermark passes a window's
// end. One joinState lives per worker; keys are partitioned so a key's
// buffers are confined to one worker.
type joinState struct {
	spec WindowSpec
	fn   func(key string, win Window, left, right []Event) []Event
	bufs map[string]map[int64]*joinWindowBuf
	// maxSeen tracks event time per input side; the effective watermark is
	// the minimum of the two (standard multi-input watermark semantics), so
	// one side racing ahead cannot close windows the slower side still
	// feeds.
	maxSeen   [2]time.Time
	watermark time.Time
	firedWM   time.Time
}

type joinWindowBuf struct {
	win   Window
	left  []Event
	right []Event
}

func newJoinState(spec WindowSpec, fn func(string, Window, []Event, []Event) []Event) *joinState {
	return &joinState{spec: spec, fn: fn, bufs: make(map[string]map[int64]*joinWindowBuf)}
}

// add buffers e (whose Payload must be a joinTag) and returns any join
// outputs that became final.
func (js *joinState) add(e Event) []Event {
	tag := e.Payload.(joinTag)
	inner := e
	inner.Payload = tag.inner

	if e.Time.After(js.maxSeen[tag.side]) {
		js.maxSeen[tag.side] = e.Time
	}
	if !js.maxSeen[0].IsZero() && !js.maxSeen[1].IsZero() {
		low := js.maxSeen[0]
		if js.maxSeen[1].Before(low) {
			low = js.maxSeen[1]
		}
		if wm := low.Add(-js.spec.lateness); wm.After(js.watermark) {
			js.watermark = wm
		}
	}

	keyBufs, ok := js.bufs[e.Key]
	if !ok {
		keyBufs = make(map[int64]*joinWindowBuf)
		js.bufs[e.Key] = keyBufs
	}
	for _, win := range js.spec.assign(e.Time) {
		if !win.End.After(js.watermark) {
			continue // late for this window
		}
		id := win.Start.UnixNano()
		buf, ok := keyBufs[id]
		if !ok {
			buf = &joinWindowBuf{win: win}
			keyBufs[id] = buf
		}
		if tag.side == 0 {
			buf.left = append(buf.left, inner)
		} else {
			buf.right = append(buf.right, inner)
		}
	}
	return js.fire()
}

func (js *joinState) fire() []Event {
	if !js.watermark.After(js.firedWM) {
		return nil
	}
	js.firedWM = js.watermark
	return js.collect(func(buf *joinWindowBuf) bool {
		return !buf.win.End.After(js.watermark)
	})
}

func (js *joinState) flush() []Event {
	return js.collect(func(*joinWindowBuf) bool { return true })
}

func (js *joinState) collect(ready func(*joinWindowBuf) bool) []Event {
	type firing struct {
		key string
		buf *joinWindowBuf
	}
	var firings []firing
	for key, keyBufs := range js.bufs {
		for id, buf := range keyBufs {
			if ready(buf) {
				firings = append(firings, firing{key: key, buf: buf})
				delete(keyBufs, id)
			}
		}
		if len(keyBufs) == 0 {
			delete(js.bufs, key)
		}
	}
	sort.Slice(firings, func(i, j int) bool {
		a, b := firings[i], firings[j]
		if !a.buf.win.End.Equal(b.buf.win.End) {
			return a.buf.win.End.Before(b.buf.win.End)
		}
		return a.key < b.key
	})
	var out []Event
	for _, f := range firings {
		out = append(out, js.fn(f.key, f.buf.win, f.buf.left, f.buf.right)...)
	}
	return out
}
