package wire

import "fmt"

// Protocol versions carried in the hello handshake. Every connection —
// client→standalone, client→router, router→shard — opens with a MsgHello
// from the dialer announcing the highest version it speaks; the listener
// answers with its own and both sides independently settle on the lower of
// the two (Negotiate). Versions are additive: v2 keeps every v1 message.
const (
	// ProtoV1 is the original request/reply protocol: sensor streams in,
	// MsgFrameRequest/MsgAnnotations round-trips out.
	ProtoV1 uint32 = 1
	// ProtoV2 adds subscription streaming: MsgSubscribe/MsgUnsubscribe/
	// MsgFramePush, with the server owning the frame clock.
	ProtoV2 uint32 = 2
	// ProtoV3 adds the membership control plane: MsgJoinShard/MsgLeaveShard/
	// MsgMembership on admin connections and MsgMigrateSession on
	// router→shard connections (live session migration during join/drain).
	// Client-facing traffic is unchanged from v2.
	ProtoV3 uint32 = 3
	// ProtoV4 adds delta frame pushes: a subscriber may set SubFlagDelta in
	// MsgSubscribe, after which the server interleaves MsgFrameDelta diffs
	// between MsgFramePush-style keyframes and the client acks applied
	// frames with MsgAck (see PROTOCOL.md §8). Fail-soft: a v2/v3 peer never
	// sets the flag and keeps receiving full MsgFramePush frames.
	ProtoV4 uint32 = 4
	// ProtoMin and ProtoMax bound what this build speaks.
	ProtoMin = ProtoV1
	ProtoMax = ProtoV4
)

// VersionError is the typed handshake failure: the two sides share no
// protocol version the caller can operate at. It fails closed — the
// connection must be torn down, never continued on a guessed version.
type VersionError struct {
	// Local and Remote are the versions each side announced.
	Local, Remote uint32
	// Need is the minimum version the failing caller required.
	Need uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version mismatch: local v%d, remote v%d, need >= v%d",
		e.Local, e.Remote, e.Need)
}

// Negotiate settles the protocol for a connection whose sides announced
// local and remote as their highest supported versions: the lower of the
// two. It fails closed with a *VersionError when that shared version is
// below need — the minimum the caller can operate at (a streaming client
// passes ProtoV2; plain request/reply passes ProtoV1).
func Negotiate(local, remote, need uint32) (uint32, error) {
	v := local
	if remote < v {
		v = remote
	}
	if v < need || v < ProtoMin {
		return 0, &VersionError{Local: local, Remote: remote, Need: need}
	}
	return v, nil
}

// Hello is the payload of a MsgHello envelope: each side of a connection
// announces who it is and what protocol it speaks before envelopes flow.
// A router dialing a shard checks the shard's reply against the membership
// config, so a miswired address fails the handshake instead of silently
// owning a slice of the session ID space; a server answering a client
// carries the session ID it assigned the connection.
type Hello struct {
	// ID identifies the node: a shard's ring member ID in backend
	// handshakes, the assigned session ID in a server→client reply,
	// 0 otherwise.
	ID uint64
	// Name is a human-readable role label for logs ("router", "shard-2",
	// "client").
	Name string
	// Version is the highest protocol version the sender speaks. Hellos
	// encoded before versioning existed lack the field; DecodeHello maps
	// its absence to ProtoV1.
	Version uint32
}

// EncodeHelloInto appends h's wire form to buf. A zero Version is encoded
// as ProtoV1 so a half-initialised Hello can never announce the invalid
// version 0.
func EncodeHelloInto(buf *Buffer, h Hello) {
	buf.Uvarint(h.ID)
	buf.String(h.Name)
	if h.Version == 0 {
		h.Version = ProtoV1
	}
	buf.Uvarint(uint64(h.Version))
}

// DecodeHello parses a hello payload. A payload ending after the name —
// the pre-versioning layout — decodes as Version ProtoV1, which is exactly
// what such peers speak.
func DecodeHello(p []byte) (Hello, error) {
	r := NewReader(p)
	var h Hello
	var err error
	if h.ID, err = r.Uvarint(); err != nil {
		return h, r.Err(err, "hello id")
	}
	if h.Name, err = r.String(); err != nil {
		return h, r.Err(err, "hello name")
	}
	if r.Remaining() == 0 {
		h.Version = ProtoV1
		return h, nil
	}
	v, err := r.Uvarint()
	if err != nil {
		return h, r.Err(err, "hello version")
	}
	if v == 0 || v > 1<<31 {
		return h, fmt.Errorf("wire: implausible hello version %d", v)
	}
	h.Version = uint32(v)
	return h, nil
}
