package wire

// Hello is the payload of a MsgHello envelope: each side of a backend
// connection announces who it is before envelopes flow. A router dialing a
// shard sends its own hello and checks the shard's reply against the
// membership config, so a miswired address fails the handshake instead of
// silently owning a slice of the session ID space.
type Hello struct {
	// ID identifies the node (a shard's ring member ID; 0 for a router).
	ID uint64
	// Name is a human-readable role label for logs ("router", "shard-2").
	Name string
}

// EncodeHelloInto appends h's wire form to buf.
func EncodeHelloInto(buf *Buffer, h Hello) {
	buf.Uvarint(h.ID)
	buf.String(h.Name)
}

// DecodeHello parses a hello payload.
func DecodeHello(p []byte) (Hello, error) {
	r := NewReader(p)
	var h Hello
	var err error
	if h.ID, err = r.Uvarint(); err != nil {
		return h, r.Err(err, "hello id")
	}
	if h.Name, err = r.String(); err != nil {
		return h, r.Err(err, "hello name")
	}
	return h, nil
}
