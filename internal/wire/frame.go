package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameSize bounds a single frame's payload so a corrupt length prefix
// cannot trigger an unbounded allocation.
const MaxFrameSize = 16 << 20 // 16 MiB

// MsgType identifies the kind of payload inside an envelope. Values are part
// of the wire protocol; do not reorder.
type MsgType uint8

// Message types understood by the platform. Enums start at 1 so the zero
// value is detectably invalid.
const (
	MsgSensorEvent MsgType = iota + 1
	MsgFrameRequest
	MsgAnnotations
	MsgQuery
	MsgQueryResult
	MsgControl
	MsgAck
	MsgError
	// MsgLoad carries a node's backend-pressure signal (core.LoadSignal):
	// shard nodes push it periodically over backend connections so routers
	// can run lag-aware admission against remote pressure.
	MsgLoad
	// MsgHello opens a connection: each side identifies itself (see Hello)
	// and announces its protocol version before envelopes flow, so a router
	// can detect a miswired shard address and both sides can negotiate the
	// protocol instead of silently misbehaving across versions.
	MsgHello
	// MsgSubscribe (protocol v2) asks the server to push frames at a target
	// cadence (see Subscribe) instead of the client polling with
	// MsgFrameRequest. Acknowledged with MsgAck carrying the request's Seq.
	MsgSubscribe
	// MsgUnsubscribe (protocol v2) cancels the session's frame subscription.
	// Acknowledged with MsgAck carrying the request's Seq.
	MsgUnsubscribe
	// MsgFramePush (protocol v2) is one server-pushed overlay frame: the
	// payload is an encoded frame (core.EncodeFrame) and Seq is the stream's
	// own monotonically increasing push counter — gaps mean the server
	// skipped ticks or dropped queued pushes under backpressure.
	MsgFramePush
	// MsgJoinShard (protocol v3, control plane) asks a router's admin
	// endpoint to add a shard to the membership: the payload is a member
	// record (membership.EncodeMemberInto). Answered with MsgMembership
	// carrying the new epoch, or MsgError.
	MsgJoinShard
	// MsgLeaveShard (protocol v3, control plane) asks a router's admin
	// endpoint to drain a shard and remove it: the payload is the uvarint
	// member ID. The reply (MsgMembership or MsgError) arrives only after
	// the drain — snapshotting and re-homing every live session — finished.
	MsgLeaveShard
	// MsgMembership (protocol v3, control plane) announces a membership
	// epoch: uvarint epoch, uvarint member count, then each member. Sent as
	// the reply to join/leave/query and pushed to admin watchers on every
	// epoch bump.
	MsgMembership
	// MsgMigrateSession (protocol v3, router↔shard) moves one live session.
	// Router→shard with an empty payload exports: the shard freezes the
	// session's stream, detaches it, and replies with the state snapshot.
	// Router→shard with a snapshot payload imports it on the new owner.
	// Shard→router replies carry a leading status byte (see server.Mig*).
	MsgMigrateSession
	// MsgFrameDelta (protocol v4) is one server-pushed overlay frame encoded
	// as a diff against the previous frame the stream delivered (see
	// core.EncodeFrameDeltaInto): a leading flags byte distinguishes
	// keyframes (full frame body) from deltas (per-annotation field masks).
	// Seq is the same push counter MsgFramePush uses — a delta applies only
	// when the client holds the frame at Seq-1; any gap forces a keyframe
	// resync via MsgAck. Sent only to subscribers that asked for deltas
	// (SubFlagDelta) on a v4 connection.
	MsgFrameDelta

	// maxMsgType is one past the last valid message type. Every new type
	// goes above this comment and below the last enum value, so Valid()
	// tracks the enum automatically instead of naming its endpoints.
	maxMsgType
)

// String returns the message type's symbolic name.
func (m MsgType) String() string {
	switch m {
	case MsgSensorEvent:
		return "sensor_event"
	case MsgFrameRequest:
		return "frame_request"
	case MsgAnnotations:
		return "annotations"
	case MsgQuery:
		return "query"
	case MsgQueryResult:
		return "query_result"
	case MsgControl:
		return "control"
	case MsgAck:
		return "ack"
	case MsgError:
		return "error"
	case MsgLoad:
		return "load"
	case MsgHello:
		return "hello"
	case MsgSubscribe:
		return "subscribe"
	case MsgUnsubscribe:
		return "unsubscribe"
	case MsgFramePush:
		return "frame_push"
	case MsgJoinShard:
		return "join_shard"
	case MsgLeaveShard:
		return "leave_shard"
	case MsgMembership:
		return "membership"
	case MsgMigrateSession:
		return "migrate_session"
	case MsgFrameDelta:
		return "frame_delta"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(m))
	}
}

// Valid reports whether m is a known message type.
func (m MsgType) Valid() bool { return m >= MsgSensorEvent && m < maxMsgType }

// Envelope is a typed message with routing metadata.
type Envelope struct {
	Type    MsgType
	Seq     uint64 // sender-assigned sequence number
	Session uint64 // session / device identifier
	Payload []byte
}

// EncodeEnvelope appends the envelope's binary form to buf and returns the
// extended slice.
//
//arbd:hotpath
func EncodeEnvelope(buf []byte, env *Envelope) []byte {
	buf = append(buf, byte(env.Type))
	buf = binary.AppendUvarint(buf, env.Seq)
	buf = binary.AppendUvarint(buf, env.Session)
	buf = binary.AppendUvarint(buf, uint64(len(env.Payload)))
	buf = append(buf, env.Payload...)
	return buf
}

// DecodeEnvelope parses an envelope from p. The returned envelope's Payload
// aliases p.
func DecodeEnvelope(p []byte) (*Envelope, error) {
	env := &Envelope{}
	if err := DecodeEnvelopeInto(env, p); err != nil {
		return nil, err
	}
	return env, nil
}

// DecodeEnvelopeInto parses an envelope from p into env, overwriting every
// field. env.Payload aliases p. Connection loops reuse one Envelope across
// reads to keep the inbound path allocation-free.
//
//arbd:hotpath
func DecodeEnvelopeInto(env *Envelope, p []byte) error {
	if len(p) < 1 {
		return ErrShortBuffer
	}
	env.Type = MsgType(p[0])
	if !env.Type.Valid() {
		//arbd:alloc-ok malformed-input error path; valid envelopes never reach it
		return fmt.Errorf("wire: invalid message type %d", p[0])
	}
	r := Reader{b: p[1:]}
	var err error
	if env.Seq, err = r.Uvarint(); err != nil {
		return r.Err(err, "seq")
	}
	if env.Session, err = r.Uvarint(); err != nil {
		return r.Err(err, "session")
	}
	if env.Payload, err = r.Bytes8(); err != nil {
		return r.Err(err, "payload")
	}
	return nil
}

// FrameWriter writes checksummed, length-prefixed frames to an io.Writer.
// Frame layout: 4-byte length N (little endian) | 4-byte CRC32C of payload |
// N payload bytes. Not safe for concurrent use.
type FrameWriter struct {
	w   *bufio.Writer
	hdr [8]byte
	env []byte // reusable envelope encode buffer (FrameWriter is single-user)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// WriteFrame writes one frame containing payload.
//
//arbd:hotpath
func (fw *FrameWriter) WriteFrame(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrTooLarge
	}
	binary.LittleEndian.PutUint32(fw.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fw.hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		//arbd:alloc-ok connection-failure error path
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := fw.w.Write(payload); err != nil {
		//arbd:alloc-ok connection-failure error path
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// Flush flushes buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// FrameReader reads frames written by FrameWriter. Not safe for concurrent
// use.
type FrameReader struct {
	r   *bufio.Reader
	hdr [8]byte
	buf []byte
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// ReadFrame reads the next frame payload. The returned slice is reused by
// subsequent calls; callers that retain it must copy. io.EOF is returned
// cleanly at end of stream.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(fr.hdr[0:4])
	sum := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if n > MaxFrameSize {
		return nil, ErrTooLarge
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	if crc32.Checksum(fr.buf, castagnoli) != sum {
		return nil, ErrChecksum
	}
	return fr.buf, nil
}

// WriteEnvelope frames and writes env in one call, reusing the writer's
// internal encode buffer across calls.
//
//arbd:hotpath
func (fw *FrameWriter) WriteEnvelope(env *Envelope) error {
	fw.env = EncodeEnvelope(fw.env[:0], env)
	return fw.WriteFrame(fw.env)
}

// EnvelopeBatch stages many envelopes for one vectored write: each Add
// encodes an envelope into an internal arena and its 8-byte frame header
// into another, and Buffers lays the pair sequence out as alternating
// header/body slices — ready to hand to net.Buffers for a single writev
// syscall. The batch keeps no per-envelope allocations alive across Reset,
// so a writer loop can reuse one batch for its lifetime. Not safe for
// concurrent use.
type EnvelopeBatch struct {
	hdrs  []byte // 8-byte frame headers, one per staged envelope
	body  []byte // concatenated encoded envelope bytes
	spans []int  // body end offset per staged envelope
	vecs  [][]byte
}

// Len returns the number of staged envelopes.
func (b *EnvelopeBatch) Len() int { return len(b.spans) }

// Reset drops staged envelopes, retaining capacity.
func (b *EnvelopeBatch) Reset() {
	b.hdrs = b.hdrs[:0]
	b.body = b.body[:0]
	b.spans = b.spans[:0]
}

// Add encodes env and stages it for the next Buffers call.
//
//arbd:hotpath
func (b *EnvelopeBatch) Add(env *Envelope) error {
	start := len(b.body)
	b.body = EncodeEnvelope(b.body, env)
	n := len(b.body) - start
	if n > MaxFrameSize {
		b.body = b.body[:start]
		return ErrTooLarge
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(b.body[start:], castagnoli))
	b.hdrs = append(b.hdrs, hdr[:]...)
	b.spans = append(b.spans, len(b.body))
	return nil
}

// Buffers returns the staged frames as alternating header/body byte slices.
// The slices alias the batch's arenas (built only here, after all Adds, so
// arena growth can never invalidate them) and are valid until the next Add
// or Reset. Callers on a net.Conn typically wrap the result in net.Buffers
// and WriteTo it for one writev.
//
//arbd:hotpath
func (b *EnvelopeBatch) Buffers() [][]byte {
	b.vecs = b.vecs[:0]
	start := 0
	for i, end := range b.spans {
		b.vecs = append(b.vecs, b.hdrs[i*8:i*8+8], b.body[start:end])
		start = end
	}
	return b.vecs
}

// ReadEnvelope reads one frame and decodes it as an envelope. The envelope's
// payload is copied so callers may retain it.
func (fr *FrameReader) ReadEnvelope() (*Envelope, error) {
	p, err := fr.ReadFrame()
	if err != nil {
		return nil, err
	}
	env, err := DecodeEnvelope(p)
	if err != nil {
		return nil, err
	}
	env.Payload = append([]byte(nil), env.Payload...)
	return env, nil
}

// ReadEnvelopeReuse reads one frame and decodes it into env without copying:
// env.Payload aliases the reader's internal frame buffer and is valid only
// until the next Read call. Connection loops that fully apply each message
// before reading the next use it to keep the inbound path allocation-free.
func (fr *FrameReader) ReadEnvelopeReuse(env *Envelope) error {
	p, err := fr.ReadFrame()
	if err != nil {
		return err
	}
	return DecodeEnvelopeInto(env, p)
}
