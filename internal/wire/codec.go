// Package wire implements the platform's binary wire format: varint/zigzag
// primitives, length-prefixed frames with CRC32 checksums, and typed message
// envelopes. The message queue, cluster RPC layer, and the arbd-server TCP
// protocol all encode through this package so that a single codec is
// exercised (and benchmarked) everywhere.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrOverflow    = errors.New("wire: varint overflows 64 bits")
	ErrTooLarge    = errors.New("wire: frame exceeds maximum size")
	ErrChecksum    = errors.New("wire: checksum mismatch")
)

// Buffer is an append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the internal buffer.
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset truncates the buffer for reuse.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Uvarint appends v in LEB128 variable-length encoding.
func (e *Buffer) Uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

// Varint appends v in zigzag variable-length encoding.
func (e *Buffer) Varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}

// Uint32 appends v in fixed 4-byte little-endian encoding.
func (e *Buffer) Uint32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

// Uint64 appends v in fixed 8-byte little-endian encoding.
func (e *Buffer) Uint64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// Float64 appends v as its IEEE-754 bit pattern.
func (e *Buffer) Float64(v float64) {
	e.Uint64(math.Float64bits(v))
}

// Byte appends one raw byte (protocol discriminators like sensor kinds).
func (e *Buffer) Byte(v byte) {
	e.b = append(e.b, v)
}

// Bool appends v as a single byte.
func (e *Buffer) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Append appends raw bytes with no length prefix — for staging an opaque,
// already-encoded payload (a forwarded envelope body) in a reusable buffer.
func (e *Buffer) Append(p []byte) {
	e.b = append(e.b, p...)
}

// Bytes8 appends a length-prefixed byte string (uvarint length + raw bytes).
func (e *Buffer) Bytes8(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Buffer) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Reader decodes values sequentially from a byte slice.
type Reader struct {
	b   []byte
	off int
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Remaining returns the number of undecoded bytes.
func (d *Reader) Remaining() int { return len(d.b) - d.off }

// Uvarint decodes a LEB128 unsigned integer.
func (d *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n == 0 {
		return 0, ErrShortBuffer
	}
	if n < 0 {
		return 0, ErrOverflow
	}
	d.off += n
	return v, nil
}

// Varint decodes a zigzag signed integer.
func (d *Reader) Varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n == 0 {
		return 0, ErrShortBuffer
	}
	if n < 0 {
		return 0, ErrOverflow
	}
	d.off += n
	return v, nil
}

// Uint32 decodes a fixed 4-byte little-endian integer.
func (d *Reader) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

// Uint64 decodes a fixed 8-byte little-endian integer.
func (d *Reader) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// Float64 decodes an IEEE-754 double.
func (d *Reader) Float64() (float64, error) {
	bits, err := d.Uint64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// Byte decodes one raw byte (protocol discriminators, flag bytes).
func (d *Reader) Byte() (byte, error) {
	if d.Remaining() < 1 {
		return 0, ErrShortBuffer
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

// Bool decodes a single byte as a boolean.
func (d *Reader) Bool() (bool, error) {
	if d.Remaining() < 1 {
		return false, ErrShortBuffer
	}
	v := d.b[d.off] != 0
	d.off++
	return v, nil
}

// Bytes8 decodes a length-prefixed byte string. The returned slice aliases
// the reader's underlying buffer; callers that retain it must copy.
func (d *Reader) Bytes8() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, ErrShortBuffer
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}

// String decodes a length-prefixed UTF-8 string (copied).
func (d *Reader) String() (string, error) {
	p, err := d.Bytes8()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Err wraps an error with positional context for diagnostics.
func (d *Reader) Err(err error, what string) error {
	return fmt.Errorf("wire: decoding %s at offset %d: %w", what, d.off, err)
}
