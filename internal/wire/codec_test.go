package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	var b Buffer
	b.Uvarint(300)
	b.Varint(-42)
	b.Uint32(0xDEADBEEF)
	b.Uint64(1 << 60)
	b.Float64(3.14159)
	b.Bool(true)
	b.Bool(false)
	b.String("héllo")
	b.Bytes8([]byte{1, 2, 3})

	r := NewReader(b.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if v, err := r.Varint(); err != nil || v != -42 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := r.Uint32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x, %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 1<<60 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if v, err := r.Float64(); err != nil || v != 3.14159 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "héllo" {
		t.Fatalf("String = %q, %v", v, err)
	}
	if v, err := r.Bytes8(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Bytes8 = %v, %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestVarintPropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(u uint64, i int64, f float64, s string) bool {
		var b Buffer
		b.Uvarint(u)
		b.Varint(i)
		b.Float64(f)
		b.String(s)
		r := NewReader(b.Bytes())
		gu, err1 := r.Uvarint()
		gi, err2 := r.Varint()
		gf, err3 := r.Float64()
		gs, err4 := r.String()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		fOK := gf == f || (math.IsNaN(f) && math.IsNaN(gf))
		return gu == u && gi == i && fOK && gs == s
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{0x80}) // incomplete varint
	if _, err := r.Uvarint(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	r = NewReader([]byte{1, 2})
	if _, err := r.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Uint32 on short buf err = %v", err)
	}
	r = NewReader(nil)
	if _, err := r.Bool(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("Bool on empty err = %v", err)
	}
}

func TestBytes8LengthBeyondBuffer(t *testing.T) {
	var b Buffer
	b.Uvarint(100) // claims 100 bytes follow, but none do
	r := NewReader(b.Bytes())
	if _, err := r.Bytes8(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(16)
	b.String("abc")
	if b.Len() == 0 {
		t.Fatal("Len = 0 after write")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Reset", b.Len())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := &Envelope{Type: MsgQuery, Seq: 77, Session: 1234, Payload: []byte("find poi")}
	p := EncodeEnvelope(nil, env)
	got, err := DecodeEnvelope(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != env.Type || got.Seq != env.Seq || got.Session != env.Session ||
		!bytes.Equal(got.Payload, env.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, env)
	}
}

func TestEnvelopeInvalidType(t *testing.T) {
	if _, err := DecodeEnvelope([]byte{0, 1, 2, 0}); err == nil {
		t.Fatal("decoding type 0 succeeded")
	}
	if _, err := DecodeEnvelope([]byte{200, 1, 2, 0}); err == nil {
		t.Fatal("decoding type 200 succeeded")
	}
	if _, err := DecodeEnvelope(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("empty decode err = %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for m := MsgSensorEvent; m < maxMsgType; m++ {
		if !m.Valid() {
			t.Errorf("type %d should be valid", m)
		}
		if s := m.String(); s == "" || strings.HasPrefix(s, "msgtype") {
			t.Errorf("type %d has no name", m)
		}
	}
	if MsgType(0).Valid() {
		t.Error("zero type is valid")
	}
	if maxMsgType.Valid() {
		t.Error("sentinel type is valid")
	}
	if MsgType(maxMsgType + 1).Valid() {
		t.Error("type past the sentinel is valid")
	}
	if MsgType(99).String() != "msgtype(99)" {
		t.Error("unknown type String format")
	}
}

// TestMsgTypeStringExhaustive is the guard the wirepin analyzer leans on:
// adding a MsgType without a String() case (the fallback form leaks
// through) or without its row in PROTOCOL.md's message table fails here,
// not in a code review.
func TestMsgTypeStringExhaustive(t *testing.T) {
	proto, err := os.ReadFile(filepath.Join("..", "..", "PROTOCOL.md"))
	if err != nil {
		t.Fatalf("reading PROTOCOL.md: %v", err)
	}
	doc := string(proto)
	for m := MsgSensorEvent; m < maxMsgType; m++ {
		name := m.String()
		if strings.HasPrefix(name, "msgtype(") {
			t.Errorf("MsgType %d has no String() case; the switch must be exhaustive", uint8(m))
			continue
		}
		row := fmt.Sprintf("| %-5d | `%s`", uint8(m), name)
		loose := fmt.Sprintf("`%s`", name)
		if !strings.Contains(doc, row) && !strings.Contains(doc, loose) {
			t.Errorf("MsgType %s (= %d) has no PROTOCOL.md row", name, uint8(m))
		}
	}
}

// TestProtoVersionsPinned pins the negotiated protocol versions the same
// way the message types are pinned: these numbers are spoken on the wire
// by every peer, so they must never move, and ProtoMin/ProtoMax must
// bracket exactly the versions this build implements.
func TestProtoVersionsPinned(t *testing.T) {
	pins := []struct {
		got  uint32
		want uint32
		name string
	}{
		{ProtoV1, 1, "ProtoV1"},
		{ProtoV2, 2, "ProtoV2"},
		{ProtoV3, 3, "ProtoV3"},
		{ProtoV4, 4, "ProtoV4"},
		{ProtoMin, 1, "ProtoMin"},
		{ProtoMax, 4, "ProtoMax"},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want %d — protocol versions must not move", p.name, p.got, p.want)
		}
	}
}

// TestMsgTypeValuesPinned pins every message type's wire value and name:
// the values are the protocol (see PROTOCOL.md), so an enum insertion or
// reorder must break this test, not remote peers.
func TestMsgTypeValuesPinned(t *testing.T) {
	pinned := []struct {
		typ  MsgType
		val  uint8
		name string
	}{
		{MsgSensorEvent, 1, "sensor_event"},
		{MsgFrameRequest, 2, "frame_request"},
		{MsgAnnotations, 3, "annotations"},
		{MsgQuery, 4, "query"},
		{MsgQueryResult, 5, "query_result"},
		{MsgControl, 6, "control"},
		{MsgAck, 7, "ack"},
		{MsgError, 8, "error"},
		{MsgLoad, 9, "load"},
		{MsgHello, 10, "hello"},
		{MsgSubscribe, 11, "subscribe"},
		{MsgUnsubscribe, 12, "unsubscribe"},
		{MsgFramePush, 13, "frame_push"},
		{MsgJoinShard, 14, "join_shard"},
		{MsgLeaveShard, 15, "leave_shard"},
		{MsgMembership, 16, "membership"},
		{MsgMigrateSession, 17, "migrate_session"},
		{MsgFrameDelta, 18, "frame_delta"},
	}
	for _, p := range pinned {
		if uint8(p.typ) != p.val {
			t.Errorf("%s = %d, want %d — wire values must not move", p.name, uint8(p.typ), p.val)
		}
		if p.typ.String() != p.name {
			t.Errorf("type %d name = %q, want %q", p.val, p.typ.String(), p.name)
		}
	}
	if int(maxMsgType) != len(pinned)+1 {
		t.Errorf("maxMsgType = %d, want %d — new types must be pinned here and documented in PROTOCOL.md",
			maxMsgType, len(pinned)+1)
	}
}

// TestLoadAndHelloEnvelopesRoundTrip runs the new backend message types
// through the same framed encode/decode path every other envelope uses.
func TestLoadAndHelloEnvelopesRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgLoad, MsgHello} {
		env := &Envelope{Type: typ, Seq: 3, Session: 42, Payload: []byte{1, 2, 3}}
		got, err := DecodeEnvelope(EncodeEnvelope(nil, env))
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if got.Type != typ || got.Seq != 3 || got.Session != 42 || !bytes.Equal(got.Payload, env.Payload) {
			t.Fatalf("%v round trip mismatch: %+v", typ, got)
		}
	}
}

// TestHelloRoundTrip checks the hello payload codec, including the empty
// name a router announces with and the version field.
func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{ID: 0, Name: "router", Version: ProtoV1},
		{ID: 7, Name: "shard-7", Version: ProtoV2},
		{ID: 1<<64 - 1, Name: "", Version: ProtoV2},
	} {
		var b Buffer
		EncodeHelloInto(&b, h)
		got, err := DecodeHello(b.Bytes())
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("hello round trip: got %+v, want %+v", got, h)
		}
	}
	if _, err := DecodeHello([]byte{0x80}); err == nil {
		t.Fatal("truncated hello decoded")
	}
	if _, err := DecodeHello([]byte{1, 5, 'a'}); err == nil {
		t.Fatal("hello with short name decoded")
	}
}

// TestHelloVersionCompat pins the compatibility rules around the version
// field: a pre-versioning hello (no version bytes) decodes as ProtoV1, a
// zero version never goes on the wire, and an explicit version 0 is
// rejected rather than guessed at.
func TestHelloVersionCompat(t *testing.T) {
	// Pre-versioning layout: id + name only.
	var legacy Buffer
	legacy.Uvarint(3)
	legacy.String("shard-3")
	h, err := DecodeHello(legacy.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != ProtoV1 {
		t.Fatalf("legacy hello version = %d, want ProtoV1", h.Version)
	}
	// A zero Version encodes as ProtoV1.
	var b Buffer
	EncodeHelloInto(&b, Hello{ID: 1, Name: "x"})
	if h, err = DecodeHello(b.Bytes()); err != nil || h.Version != ProtoV1 {
		t.Fatalf("zero-version hello decoded as %+v, %v", h, err)
	}
	// Explicit version 0 on the wire is invalid.
	var zero Buffer
	zero.Uvarint(1)
	zero.String("x")
	zero.Uvarint(0)
	if _, err := DecodeHello(zero.Bytes()); err == nil {
		t.Fatal("hello with explicit version 0 decoded")
	}
}

// TestNegotiate covers the version negotiation table: both sides settle on
// the lower announced version, and the typed VersionError fails closed when
// that is below what the caller needs.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		local, remote, need uint32
		want                uint32
		fail                bool
	}{
		{ProtoV2, ProtoV2, ProtoV1, ProtoV2, false},
		{ProtoV2, ProtoV1, ProtoV1, ProtoV1, false},
		{ProtoV1, ProtoV2, ProtoV1, ProtoV1, false},
		{ProtoV2, ProtoV2 + 5, ProtoV2, ProtoV2, false}, // newer peer: we cap at ours
		{ProtoV2, ProtoV1, ProtoV2, 0, true},            // streaming client, v1 server
		{ProtoV1, ProtoV2, ProtoV2, 0, true},
		{ProtoV2, 0, ProtoV1, 0, true}, // below ProtoMin always fails
	}
	for _, c := range cases {
		got, err := Negotiate(c.local, c.remote, c.need)
		if c.fail {
			if err == nil {
				t.Errorf("Negotiate(%d,%d,%d) = %d, want failure", c.local, c.remote, c.need, got)
				continue
			}
			var ve *VersionError
			if !errors.As(err, &ve) {
				t.Errorf("Negotiate(%d,%d,%d) error %v is not a *VersionError", c.local, c.remote, c.need, err)
			} else if ve.Local != c.local || ve.Remote != c.remote || ve.Need != c.need {
				t.Errorf("VersionError fields = %+v, want {%d %d %d}", ve, c.local, c.remote, c.need)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("Negotiate(%d,%d,%d) = %d, %v, want %d", c.local, c.remote, c.need, got, err, c.want)
		}
	}
}

// TestSubscribeRoundTrip checks the subscription payload codec.
func TestSubscribeRoundTrip(t *testing.T) {
	for _, s := range []Subscribe{
		{},
		{IntervalMS: 33, Budget: 8},
		{IntervalMS: 1<<32 - 1, Budget: 1<<32 - 1},
	} {
		var b Buffer
		EncodeSubscribeInto(&b, s)
		got, err := DecodeSubscribe(b.Bytes())
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if got != s {
			t.Fatalf("subscribe round trip: got %+v, want %+v", got, s)
		}
	}
	if _, err := DecodeSubscribe([]byte{0x80}); err == nil {
		t.Fatal("truncated subscribe decoded")
	}
	if _, err := DecodeSubscribe([]byte{33}); err == nil {
		t.Fatal("subscribe missing budget decoded")
	}
	// A value wider than uint32 must be rejected, not silently truncated.
	var wide Buffer
	wide.Uvarint(1 << 40)
	wide.Uvarint(1)
	if _, err := DecodeSubscribe(wide.Bytes()); err == nil {
		t.Fatal("64-bit interval decoded into uint32")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	for _, p := range payloads {
		if err := fw.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i, want := range payloads {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame err = %v, want EOF", err)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame([]byte("important data")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload byte
	fr := NewFrameReader(bytes.NewReader(raw))
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteFrame(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// A corrupt header claiming a huge length must not allocate.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	fr := NewFrameReader(bytes.NewReader(hdr))
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestWriteReadEnvelopeOverFrames(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for i := uint64(1); i <= 5; i++ {
		env := &Envelope{Type: MsgAck, Seq: i, Session: 9, Payload: []byte{byte(i)}}
		if err := fw.WriteEnvelope(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i := uint64(1); i <= 5; i++ {
		env, err := fr.ReadEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		if env.Seq != i || env.Payload[0] != byte(i) {
			t.Fatalf("envelope %d mismatch: %+v", i, env)
		}
	}
}

func TestEnvelopePayloadCopiedOnRead(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	_ = fw.WriteEnvelope(&Envelope{Type: MsgAck, Seq: 1, Payload: []byte("first")})
	_ = fw.WriteEnvelope(&Envelope{Type: MsgAck, Seq: 2, Payload: []byte("secnd")})
	_ = fw.Flush()
	fr := NewFrameReader(&buf)
	e1, err := fr.ReadEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadEnvelope(); err != nil {
		t.Fatal(err)
	}
	if string(e1.Payload) != "first" {
		t.Fatalf("payload of first envelope clobbered: %q", e1.Payload)
	}
}
