package wire

// Subscribe is the payload of a MsgSubscribe envelope: the client asks the
// server to own the frame clock and push MsgFramePush envelopes at a target
// cadence, replacing the per-frame MsgFrameRequest round-trip.
type Subscribe struct {
	// IntervalMS is the target push cadence in milliseconds (33 ≈ 30 Hz).
	// The server treats it as a ceiling, not a promise: under load it skips
	// ticks (degrading cadence) before shedding, so pushes arrive at the
	// requested rate or slower, never faster. Zero takes the server default.
	IntervalMS uint32
	// Budget bounds how many encoded pushes may queue for this connection
	// before the server drops the oldest — the backpressure contract: a
	// client that stops reading loses old frames (the ones an AR overlay
	// could least use) rather than stalling the server. Zero takes the
	// server default.
	Budget uint32
}

// EncodeSubscribeInto appends s's wire form to buf.
func EncodeSubscribeInto(buf *Buffer, s Subscribe) {
	buf.Uvarint(uint64(s.IntervalMS))
	buf.Uvarint(uint64(s.Budget))
}

// DecodeSubscribe parses a subscribe payload.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	r := NewReader(p)
	var s Subscribe
	iv, err := r.Uvarint()
	if err != nil {
		return s, r.Err(err, "subscribe interval")
	}
	bud, err := r.Uvarint()
	if err != nil {
		return s, r.Err(err, "subscribe budget")
	}
	const maxU32 = 1<<32 - 1
	if iv > maxU32 || bud > maxU32 {
		return s, r.Err(ErrOverflow, "subscribe fields")
	}
	s.IntervalMS = uint32(iv)
	s.Budget = uint32(bud)
	return s, nil
}
