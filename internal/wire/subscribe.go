package wire

// Subscription flags carried in Subscribe.Flags.
const (
	// SubFlagDelta (protocol v4) asks the server to push delta-encoded
	// frames (MsgFrameDelta) between keyframes instead of a full
	// MsgFramePush per tick. Servers ignore it below v4.
	SubFlagDelta uint32 = 1 << 0
)

// Subscribe is the payload of a MsgSubscribe envelope: the client asks the
// server to own the frame clock and push MsgFramePush envelopes at a target
// cadence, replacing the per-frame MsgFrameRequest round-trip.
type Subscribe struct {
	// IntervalMS is the target push cadence in milliseconds (33 ≈ 30 Hz).
	// The server treats it as a ceiling, not a promise: under load it skips
	// ticks (degrading cadence) before shedding, so pushes arrive at the
	// requested rate or slower, never faster. Zero takes the server default.
	IntervalMS uint32
	// Budget bounds how many encoded pushes may queue for this connection
	// before the server drops the oldest — the backpressure contract: a
	// client that stops reading loses old frames (the ones an AR overlay
	// could least use) rather than stalling the server. Zero takes the
	// server default.
	Budget uint32
	// Flags carries subscription options (SubFlag*). The field is additive:
	// pre-v4 encoders omit it and pre-v4 decoders ignore it as trailing
	// bytes, so it decodes as 0 from old peers.
	Flags uint32
}

// EncodeSubscribeInto appends s's wire form to buf.
func EncodeSubscribeInto(buf *Buffer, s Subscribe) {
	buf.Uvarint(uint64(s.IntervalMS))
	buf.Uvarint(uint64(s.Budget))
	buf.Uvarint(uint64(s.Flags))
}

// DecodeSubscribe parses a subscribe payload. A payload ending after the
// budget — the pre-v4 layout — decodes with Flags 0.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	r := NewReader(p)
	var s Subscribe
	iv, err := r.Uvarint()
	if err != nil {
		return s, r.Err(err, "subscribe interval")
	}
	bud, err := r.Uvarint()
	if err != nil {
		return s, r.Err(err, "subscribe budget")
	}
	var flags uint64
	if r.Remaining() > 0 {
		if flags, err = r.Uvarint(); err != nil {
			return s, r.Err(err, "subscribe flags")
		}
	}
	const maxU32 = 1<<32 - 1
	if iv > maxU32 || bud > maxU32 || flags > maxU32 {
		return s, r.Err(ErrOverflow, "subscribe fields")
	}
	s.IntervalMS = uint32(iv)
	s.Budget = uint32(bud)
	s.Flags = uint32(flags)
	return s, nil
}

// FrameAck is the payload of a client→server MsgAck on a delta-streaming
// subscription (protocol v4): the highest push seq the client has applied,
// plus a keyframe request when the client detected a gap and must resync.
// Fire-and-forget — the server never replies; it only advances its view of
// the subscriber's base frame and schedules a keyframe when asked.
type FrameAck struct {
	// AppliedSeq is the stream push seq of the last frame the client
	// decoded and applied.
	AppliedSeq uint64
	// WantKeyframe asks the server to send the next push as a keyframe
	// (set after a seq gap or a failed delta apply).
	WantKeyframe bool
}

// frameAck flag bits (leading byte of the payload).
const frameAckWantKey = 1 << 0

// EncodeFrameAckInto appends a's wire form to buf.
func EncodeFrameAckInto(buf *Buffer, a FrameAck) {
	var flags byte
	if a.WantKeyframe {
		flags |= frameAckWantKey
	}
	buf.Byte(flags)
	buf.Uvarint(a.AppliedSeq)
}

// DecodeFrameAck parses a frame-ack payload.
func DecodeFrameAck(p []byte) (FrameAck, error) {
	r := NewReader(p)
	var a FrameAck
	flags, err := r.Byte()
	if err != nil {
		return a, r.Err(err, "frame ack flags")
	}
	a.WantKeyframe = flags&frameAckWantKey != 0
	if a.AppliedSeq, err = r.Uvarint(); err != nil {
		return a, r.Err(err, "frame ack seq")
	}
	return a, nil
}
