package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzDecodeEnvelope throws arbitrary bytes at the envelope decoder. The
// decoder must never panic, and on success the decoded envelope must
// re-encode to a form that decodes identically (the codec is canonical for
// everything but varint widths, so we compare field-wise, not byte-wise).
func FuzzDecodeEnvelope(f *testing.F) {
	// Seeds from the round-trip tests: every message type, empty and
	// non-empty payloads, plus the classic truncation shapes.
	for m := MsgSensorEvent; m < maxMsgType; m++ {
		f.Add(EncodeEnvelope(nil, &Envelope{Type: m, Seq: 77, Session: 1234, Payload: []byte("find poi")}))
	}
	f.Add(EncodeEnvelope(nil, &Envelope{Type: MsgAck, Seq: 0, Session: 0}))
	f.Add([]byte{})
	f.Add([]byte{0})                                                                                // invalid type 0
	f.Add([]byte{200, 1, 2, 0})                                                                     // unknown type
	f.Add([]byte{byte(MsgQuery), 0x80})                                                             // truncated seq varint
	f.Add([]byte{byte(MsgQuery), 1, 2, 100})                                                        // payload length beyond buffer
	f.Add([]byte{byte(MsgQuery), 1, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // oversized length

	f.Fuzz(func(t *testing.T, p []byte) {
		env, err := DecodeEnvelope(p)
		if err != nil {
			return
		}
		if !env.Type.Valid() {
			t.Fatalf("decoder accepted invalid type %d", env.Type)
		}
		re := EncodeEnvelope(nil, env)
		got, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if got.Type != env.Type || got.Seq != env.Seq || got.Session != env.Session ||
			!bytes.Equal(got.Payload, env.Payload) {
			t.Fatalf("re-encode round trip mismatch: %+v vs %+v", got, env)
		}
	})
}

// FuzzReadFrame throws arbitrary byte streams at the framed reader: header
// truncation, oversized length prefixes, and CRC corruption must all come
// back as errors (or io.EOF at a clean boundary), never as a panic or an
// unbounded allocation, and a valid frame must round-trip.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		if err := fw.WriteFrame(payload); err != nil {
			f.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// Seeds: valid frames from the round-trip cases, then corrupted shapes.
	f.Add(frame([]byte("alpha")))
	f.Add(frame([]byte{}))
	f.Add(frame([]byte("gamma-longer-payload")))
	corrupt := frame([]byte("important data"))
	corrupt[len(corrupt)-1] ^= 0xFF // CRC mismatch
	f.Add(corrupt)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // length prefix > MaxFrameSize
	f.Add([]byte{5, 0, 0})                            // truncated header
	short := frame([]byte("cut"))
	f.Add(short[:len(short)-2]) // truncated payload

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream))
		for {
			p, err := fr.ReadFrame()
			if err != nil {
				return // io.EOF or a typed decode error: both fine
			}
			// A frame the reader accepted must carry a coherent header:
			// re-frame the payload and check it reads back identically.
			re := frame(append([]byte(nil), p...))
			fr2 := NewFrameReader(bytes.NewReader(re))
			got, err := fr2.ReadFrame()
			if err != nil || !bytes.Equal(got, p) {
				t.Fatalf("accepted frame failed to round trip: %v", err)
			}
		}
	})
}

// TestFuzzSeedsAreWellFormed keeps the hand-built corrupt seeds honest:
// the oversized-length seed must actually exceed MaxFrameSize and fail as
// ErrTooLarge without allocating, mirroring TestFrameTooLarge.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	if n := binary.LittleEndian.Uint32(hdr[:4]); n <= MaxFrameSize {
		t.Fatalf("oversized seed length %d not past MaxFrameSize", n)
	}
	fr := NewFrameReader(bytes.NewReader(hdr))
	if _, err := fr.ReadFrame(); err == nil || err == io.EOF {
		t.Fatalf("oversized header read err = %v, want typed error", err)
	}
}
