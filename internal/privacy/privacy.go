// Package privacy implements the §4.3 mechanisms: ε-differentially-private
// numeric releases (Laplace and geometric mechanisms), geo-indistinguishable
// location perturbation (planar Laplace), k-anonymous location
// generalisation, and a privacy-budget accountant that bounds cumulative
// disclosure per principal.
package privacy

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

// Privacy errors.
var (
	ErrBadEpsilon     = errors.New("privacy: epsilon must be positive")
	ErrBudgetExceeded = errors.New("privacy: privacy budget exhausted")
)

// Laplace releases value + Lap(sensitivity/epsilon) noise: the standard
// ε-differentially-private mechanism for numeric queries.
func Laplace(rng *sim.Rand, value, sensitivity, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, ErrBadEpsilon
	}
	if sensitivity < 0 {
		sensitivity = -sensitivity
	}
	b := sensitivity / epsilon
	// Inverse CDF sampling: u uniform in (-1/2, 1/2).
	u := rng.Float64() - 0.5
	noise := -b * sign(u) * math.Log(1-2*math.Abs(u))
	return value + noise, nil
}

// Geometric releases a noisy non-negative integer count using the two-sided
// geometric mechanism (the discrete analogue of Laplace), clamped at zero.
func Geometric(rng *sim.Rand, count int64, epsilon float64) (int64, error) {
	if epsilon <= 0 {
		return 0, ErrBadEpsilon
	}
	alpha := math.Exp(-epsilon)
	// Sample two-sided geometric via difference of two geometrics.
	g := func() int64 {
		u := rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		return int64(math.Floor(math.Log(1-u) / math.Log(alpha)))
	}
	noisy := count + g() - g()
	if noisy < 0 {
		noisy = 0
	}
	return noisy, nil
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// PlanarLaplace perturbs a location with ε-geo-indistinguishability
// (Andrés et al.): the reported point is the true point displaced by a
// random bearing and a radius drawn from the planar Laplace distribution
// with parameter epsilon (in 1/meters). Typical epsilons: ln(4)/200 gives
// strong privacy within 200 m.
func PlanarLaplace(rng *sim.Rand, p geo.Point, epsilon float64) (geo.Point, error) {
	if epsilon <= 0 {
		return geo.Point{}, ErrBadEpsilon
	}
	theta := rng.Uniform(0, 360)
	r := planarLaplaceRadius(rng.Float64(), epsilon)
	return geo.Destination(p, theta, r), nil
}

// planarLaplaceRadius inverts the radial CDF C(r) = 1 - (1+εr)e^{-εr} for a
// uniform sample u by bisection. The CDF is monotone, so bisection to 1e-9
// relative width is exact enough for metre-scale outputs.
func planarLaplaceRadius(u, epsilon float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	cdf := func(r float64) float64 {
		return 1 - (1+epsilon*r)*math.Exp(-epsilon*r)
	}
	lo, hi := 0.0, 1.0/epsilon
	for cdf(hi) < u {
		hi *= 2
	}
	for i := 0; i < 100 && hi-lo > 1e-9*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpectedPlanarError returns the mean displacement of the planar Laplace
// mechanism: 2/ε meters. Useful for utility accounting.
func ExpectedPlanarError(epsilon float64) float64 {
	if epsilon <= 0 {
		return math.Inf(1)
	}
	return 2 / epsilon
}

// SnapToGrid generalises a location to the centre of a square grid cell of
// the given size in meters — the building block of k-anonymous location
// release. The grid is globally fixed: latitude bands are computed first and
// the longitude cell width is derived from the band centre, so snapping is
// idempotent and nearby points produce bitwise-identical cell centres.
func SnapToGrid(p geo.Point, cellMeters float64) geo.Point {
	if cellMeters <= 0 {
		return p
	}
	latCell := cellMeters / 111_320.0 // meters per degree latitude
	latIdx := math.Floor(p.Lat / latCell)
	latCenter := latIdx*latCell + latCell/2
	lonScale := math.Cos(latCenter * math.Pi / 180)
	if lonScale < 1e-6 {
		lonScale = 1e-6
	}
	lonCell := cellMeters / (111_320.0 * lonScale)
	lonIdx := math.Floor(p.Lon / lonCell)
	return geo.Point{Lat: latCenter, Lon: lonIdx*lonCell + lonCell/2}
}

// KAnonymize generalises each point to the coarsest grid cell (from the
// candidate cell sizes, ascending) that contains at least k of the input
// points, guaranteeing each released cell covers ≥ k users. Points that
// never reach k occupancy release at the coarsest candidate size.
// It returns the released points and the per-point cell size used.
func KAnonymize(points []geo.Point, k int, cellSizesMeters []float64) ([]geo.Point, []float64) {
	if len(cellSizesMeters) == 0 {
		cellSizesMeters = []float64{50, 100, 200, 400, 800, 1600, 3200}
	}
	released := make([]geo.Point, len(points))
	sizes := make([]float64, len(points))
	// Precompute occupancy per candidate size.
	occupancy := make([]map[geo.Point]int, len(cellSizesMeters))
	for si, size := range cellSizesMeters {
		occ := make(map[geo.Point]int, len(points))
		for _, p := range points {
			occ[SnapToGrid(p, size)]++
		}
		occupancy[si] = occ
	}
	for i, p := range points {
		chosen := len(cellSizesMeters) - 1
		for si := range cellSizesMeters {
			cell := SnapToGrid(p, cellSizesMeters[si])
			if occupancy[si][cell] >= k {
				chosen = si
				break
			}
		}
		sizes[i] = cellSizesMeters[chosen]
		released[i] = SnapToGrid(p, cellSizesMeters[chosen])
	}
	return released, sizes
}

// Accountant tracks cumulative ε spent per principal and refuses queries
// beyond the budget. Safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	budget float64
	spent  map[string]float64
}

// NewAccountant returns an accountant enforcing the given total ε budget per
// principal.
func NewAccountant(budget float64) *Accountant {
	return &Accountant{budget: budget, spent: make(map[string]float64)}
}

// Spend records epsilon against the principal, failing without recording if
// it would exceed the budget.
func (a *Accountant) Spend(principal string, epsilon float64) error {
	if epsilon <= 0 {
		return ErrBadEpsilon
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent[principal]+epsilon > a.budget+1e-12 {
		return fmt.Errorf("%w: %s spent %.3f of %.3f, requested %.3f",
			ErrBudgetExceeded, principal, a.spent[principal], a.budget, epsilon)
	}
	a.spent[principal] += epsilon
	return nil
}

// Spent returns the ε consumed by the principal so far.
func (a *Accountant) Spent(principal string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[principal]
}

// Remaining returns the ε the principal may still spend.
func (a *Accountant) Remaining(principal string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.budget - a.spent[principal]
	if r < 0 {
		return 0
	}
	return r
}
