package privacy

import (
	"errors"
	"math"
	"testing"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

var home = geo.Point{Lat: 22.3364, Lon: 114.2655}

func TestLaplaceUnbiasedAndScales(t *testing.T) {
	rng := sim.NewRand(1)
	const n = 30000
	for _, eps := range []float64{0.5, 2} {
		var sum, sumAbs float64
		for i := 0; i < n; i++ {
			v, err := Laplace(rng, 100, 1, eps)
			if err != nil {
				t.Fatal(err)
			}
			sum += v - 100
			sumAbs += math.Abs(v - 100)
		}
		mean := sum / n
		meanAbs := sumAbs / n
		if math.Abs(mean) > 0.1/eps {
			t.Fatalf("eps=%v: bias %.4f", eps, mean)
		}
		// E|Lap(b)| = b = 1/eps.
		if math.Abs(meanAbs-1/eps) > 0.1/eps {
			t.Fatalf("eps=%v: mean abs dev %.4f, want %.4f", eps, meanAbs, 1/eps)
		}
	}
}

func TestLaplaceMoreEpsilonLessNoise(t *testing.T) {
	rng := sim.NewRand(2)
	noise := func(eps float64) float64 {
		var sumAbs float64
		for i := 0; i < 5000; i++ {
			v, _ := Laplace(rng, 0, 1, eps)
			sumAbs += math.Abs(v)
		}
		return sumAbs / 5000
	}
	if noise(0.1) <= noise(1) || noise(1) <= noise(10) {
		t.Fatal("noise not decreasing in epsilon")
	}
}

func TestLaplaceRejectsBadEpsilon(t *testing.T) {
	rng := sim.NewRand(3)
	if _, err := Laplace(rng, 1, 1, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Laplace(rng, 1, 1, -2); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeometricNonNegativeInteger(t *testing.T) {
	rng := sim.NewRand(4)
	for i := 0; i < 5000; i++ {
		v, err := Geometric(rng, 3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatalf("negative count %d", v)
		}
	}
	if _, err := Geometric(rng, 1, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeometricApproximatelyUnbiased(t *testing.T) {
	rng := sim.NewRand(5)
	const n, truth = 30000, 1000
	var sum float64
	for i := 0; i < n; i++ {
		v, _ := Geometric(rng, truth, 1)
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-truth) > 1 {
		t.Fatalf("mean = %.2f, want ~%d", mean, truth)
	}
}

func TestPlanarLaplaceMeanDisplacement(t *testing.T) {
	rng := sim.NewRand(6)
	for _, eps := range []float64{0.005, 0.02} { // per-meter epsilons
		const n = 4000
		var sum float64
		for i := 0; i < n; i++ {
			q, err := PlanarLaplace(rng, home, eps)
			if err != nil {
				t.Fatal(err)
			}
			sum += geo.DistanceMeters(home, q)
		}
		mean := sum / n
		want := ExpectedPlanarError(eps) // 2/eps
		if math.Abs(mean-want)/want > 0.1 {
			t.Fatalf("eps=%v: mean displacement %.1f m, want %.1f m", eps, mean, want)
		}
	}
}

func TestPlanarLaplaceDirectionUniform(t *testing.T) {
	rng := sim.NewRand(7)
	quad := [4]int{}
	for i := 0; i < 4000; i++ {
		q, _ := PlanarLaplace(rng, home, 0.01)
		brg := geo.BearingDegrees(home, q)
		quad[int(brg/90)%4]++
	}
	for i, c := range quad {
		if c < 800 || c > 1200 {
			t.Fatalf("quadrant %d count %d, want ~1000", i, c)
		}
	}
}

func TestPlanarLaplaceBadEpsilon(t *testing.T) {
	if _, err := PlanarLaplace(sim.NewRand(8), home, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpectedPlanarError(t *testing.T) {
	if got := ExpectedPlanarError(0.01); got != 200 {
		t.Fatalf("expected error = %v", got)
	}
	if !math.IsInf(ExpectedPlanarError(0), 1) {
		t.Fatal("zero epsilon not infinite error")
	}
}

func TestSnapToGridIdempotentAndClose(t *testing.T) {
	snapped := SnapToGrid(home, 200)
	if d := geo.DistanceMeters(home, snapped); d > 200 {
		t.Fatalf("snapped %0.f m away, cell only 200 m", d)
	}
	again := SnapToGrid(snapped, 200)
	if geo.DistanceMeters(snapped, again) > 1 {
		t.Fatal("snap not idempotent")
	}
	if got := SnapToGrid(home, 0); got != home {
		t.Fatal("zero cell size changed point")
	}
}

func TestSnapToGridNeighborsShareCell(t *testing.T) {
	near := geo.Destination(home, 45, 5) // 5 m away
	if SnapToGrid(home, 500) != SnapToGrid(near, 500) {
		t.Fatal("5m-apart points in different 500m cells")
	}
}

func TestKAnonymizeGuaranteesK(t *testing.T) {
	rng := sim.NewRand(9)
	// A dense cluster downtown plus a few isolated users.
	var pts []geo.Point
	for i := 0; i < 80; i++ {
		pts = append(pts, geo.Destination(home, rng.Uniform(0, 360), rng.Float64()*100))
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, geo.Destination(home, rng.Uniform(0, 360), 3000+rng.Float64()*2000))
	}
	const k = 10
	released, sizes := KAnonymize(pts, k, nil)
	if len(released) != len(pts) {
		t.Fatalf("released %d of %d", len(released), len(pts))
	}
	// Verify occupancy: every released cell at its size has >= k members or
	// used the coarsest size.
	coarsest := 3200.0
	for i := range released {
		count := 0
		for j := range pts {
			if SnapToGrid(pts[j], sizes[i]) == released[i] {
				count++
			}
		}
		if count < k && sizes[i] != coarsest {
			t.Fatalf("point %d: cell size %.0f has only %d members", i, sizes[i], count)
		}
	}
	// Dense-cluster users get finer cells than isolated users.
	if sizes[0] >= sizes[len(sizes)-1] {
		t.Fatalf("dense user cell %.0f not finer than isolated %.0f", sizes[0], sizes[len(sizes)-1])
	}
}

func TestAccountantEnforcesBudget(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("alice", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("alice", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("alice", 0.01); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget spend: %v", err)
	}
	if got := a.Spent("alice"); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Spent = %v", got)
	}
	if got := a.Remaining("alice"); got > 1e-9 {
		t.Fatalf("Remaining = %v", got)
	}
	// Other principals unaffected.
	if err := a.Spend("bob", 0.9); err != nil {
		t.Fatal(err)
	}
	if a.Remaining("bob") < 0.09 {
		t.Fatalf("bob remaining = %v", a.Remaining("bob"))
	}
}

func TestAccountantRejectsNonPositive(t *testing.T) {
	a := NewAccountant(1)
	if err := a.Spend("x", 0); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("err = %v", err)
	}
}
