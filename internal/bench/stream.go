package bench

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
)

// E17StreamVsPoll compares the two frame-delivery protocols end to end on
// one standalone server over loopback TCP: request/reply polling (v1, one
// round-trip per frame) against subscription streaming (v2, the server
// owns the frame clock and pushes). Both run at the same target cadence
// per session; the table reports achieved frames/s, the p50 inter-frame
// gap, the p99 inter-frame jitter (absolute deviation from each mode's
// median gap), and wire cost per frame — total bytes moved and read
// syscalls, counted at the client socket. The streaming rows are the
// paper's continuous-overlay loop made concrete: no request leg, so fewer
// bytes and steadier arrival.
func E17StreamVsPoll() *Report {
	return e17StreamVsPoll([]int{1, 64, 512}, 2000, 2*time.Second, 15*time.Millisecond, "full")
}

// e17StreamVsPollSmoke is the tiny-parameter variant for plain `go test`,
// arbd-bench -smoke, and the CI perf gate. The 600ms window is long enough
// that the cadence-limited frames/s (and bytes/frame) are stable against
// the committed baseline at the gate's 10% threshold.
func e17StreamVsPollSmoke() *Report {
	return e17StreamVsPoll([]int{1, 8}, 300, 600*time.Millisecond, 5*time.Millisecond, "smoke")
}

// pointInterval scales the per-session cadence so the sweep's aggregate
// frame demand stays inside a single node's render ceiling: E17 compares
// delivery protocols, so both modes must be load-feasible — saturation
// behaviour is E14/E16's story. The aggregate target is ~2000 frames/s
// (conservative for one worker core at bench POI density).
func pointInterval(sessions int, base time.Duration) time.Duration {
	const aggregateSpacing = 500 * time.Microsecond // 1/2000 s per frame
	if iv := time.Duration(sessions) * aggregateSpacing; iv > base {
		return iv
	}
	return base
}

func e17StreamVsPoll(sessionCounts []int, numPOIs int, duration, interval time.Duration, config string) *Report {
	title := fmt.Sprintf("E17: stream vs poll (standalone over loopback, %d POIs, %v base cadence, %v/point)",
		numPOIs, interval, duration)
	t := metrics.NewTable(title,
		"sessions", "mode", "frames", "frames/s", "p50 gap", "p99 jitter", "max gap", "B/frame", "reads/frame", "errors")
	res := NewResult("E17", title, config)
	for _, n := range sessionCounts {
		iv := pointInterval(n, interval)
		for _, streaming := range []bool{false, true} {
			row := runStreamVsPoll(n, numPOIs, duration, iv, streaming)
			mode := "poll"
			if streaming {
				mode = "stream"
			}
			t.AddRow(n, mode, row.frames, fmt.Sprintf("%.0f", row.rate),
				ms(row.p50Gap), ms(row.p99Jitter), ms(row.maxGap),
				fmt.Sprintf("%.0f", row.bytesPerFrame), fmt.Sprintf("%.2f", row.readsPerFrame),
				row.errors)
			// max_gap is the gc_latency-style number: the worst observed gap
			// between consecutive frame completions across every stream. A
			// GC pause (or scheduler stall) that percentiles absorb shows up
			// here, so pause regressions ride the trajectory.
			// The cadence-bound rate is far steadier than CPU-bound
			// throughput, but a slow host epoch still shaves ~10-15% off it
			// (render stalls eat into the fixed window), hence the modest
			// tolerance; bytes/frame is deterministic and keeps the tight
			// gate.
			res.AddRow(fmt.Sprintf("sessions=%d/mode=%s", n, mode),
				M("frames", float64(row.frames), "count", ""),
				M("frames_per_sec", row.rate, "1/s", BetterHigher).WithTolerance(0.3),
				DurMetric("gap_p50", row.p50Gap, ""),
				DurMetric("jitter_p99", row.p99Jitter, ""),
				DurMetric("max_gap", row.maxGap, ""),
				M("bytes_per_frame", row.bytesPerFrame, "B", BetterLower),
				M("reads_per_frame", row.readsPerFrame, "count", ""),
				M("gc_cycles", float64(row.gcCycles), "count", ""),
				M("errors", float64(row.errors), "count", ""),
			)
		}
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

type streamVsPollResult struct {
	frames        int64
	rate          float64
	p50Gap        time.Duration
	p99Jitter     time.Duration
	maxGap        time.Duration
	bytesPerFrame float64
	readsPerFrame float64
	gcCycles      uint32
	errors        int64
}

// countingConn counts bytes and Read calls crossing a client socket — the
// per-frame wire cost both modes are judged on. Reads go through bufio
// inside the frame reader, so each counted Read is one would-be syscall.
type countingConn struct {
	net.Conn
	bytes *atomic.Int64
	reads *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.bytes.Add(int64(n))
	c.reads.Add(1)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.bytes.Add(int64(n))
	return n, err
}

func runStreamVsPoll(sessions, numPOIs int, duration, interval time.Duration, streaming bool) streamVsPollResult {
	discard := log.New(io.Discard, "", 0)
	p, err := core.NewPlatform(core.Config{
		Seed: 17,
		City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
	})
	if err != nil {
		panic(err)
	}
	// A generous deadline keeps shedding an overload signal, as in E16.
	srv := server.NewWithOptions(p, discard,
		server.Options{Scheduler: server.SchedulerConfig{Deadline: 2 * time.Second}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() { _ = srv.Close() }()

	var (
		frames  metrics.Counter
		errsCtr metrics.Counter
		bytes   atomic.Int64
		reads   atomic.Int64
		gapMu   sync.Mutex
		gaps    []time.Duration
		wg      sync.WaitGroup
	)
	rng := sim.NewRand(17)
	positions := make([]geo.Point, sessions)
	for i := range positions {
		positions[i] = geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
	}
	record := func(local []time.Duration) {
		gapMu.Lock()
		gaps = append(gaps, local...)
		gapMu.Unlock()
	}

	var gcBefore runtime.MemStats
	runtime.ReadMemStats(&gcBefore)
	start := time.Now()
	deadline := start.Add(duration)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				errsCtr.Inc()
				return
			}
			cl, err := server.NewClient(context.Background(),
				&countingConn{Conn: raw, bytes: &bytes, reads: &reads}, server.DialOptions{})
			if err != nil {
				errsCtr.Inc()
				return
			}
			defer cl.Close()
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: positions[c], AccuracyM: 5}); err != nil {
				errsCtr.Inc()
				return
			}
			var local []time.Duration
			defer func() { record(local) }()
			if streaming {
				ch, err := cl.Subscribe(context.Background(),
					server.SubscribeOptions{Interval: interval, Budget: 16})
				if err != nil {
					errsCtr.Inc()
					return
				}
				// One timer for the whole run: a per-receive time.After
				// would pin thousands of timers and GC-skew the very
				// jitter column this experiment reports.
				stop := time.NewTimer(time.Until(deadline))
				defer stop.Stop()
				last := time.Time{}
				for {
					select {
					case _, ok := <-ch:
						if !ok {
							errsCtr.Inc()
							return
						}
						now := time.Now()
						if !last.IsZero() {
							local = append(local, now.Sub(last))
						}
						last = now
						frames.Inc()
					case <-stop.C:
						_ = cl.Unsubscribe()
						return
					}
				}
			}
			// Poll mode: the classic loop — request, block for the reply,
			// sleep out the cadence remainder.
			last := time.Time{}
			for time.Now().Before(deadline) {
				tickStart := time.Now()
				_, _, err := cl.RequestFrame()
				switch {
				case err == nil:
					now := time.Now()
					if !last.IsZero() {
						local = append(local, now.Sub(last))
					}
					last = now
					frames.Inc()
				case strings.Contains(err.Error(), server.ErrFrameShed.Error()):
					// Overload shedding: keep driving.
				default:
					errsCtr.Inc()
					return
				}
				if rem := interval - time.Since(tickStart); rem > 0 {
					time.Sleep(rem)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	var gcAfter runtime.MemStats
	runtime.ReadMemStats(&gcAfter)

	p50, p99j := gapStats(gaps)
	res := streamVsPollResult{
		frames:    frames.Value(),
		rate:      float64(frames.Value()) / wall.Seconds(),
		p50Gap:    p50,
		p99Jitter: p99j,
		maxGap:    maxGap(gaps),
		gcCycles:  gcAfter.NumGC - gcBefore.NumGC,
		errors:    errsCtr.Value(),
	}
	if n := frames.Value(); n > 0 {
		res.bytesPerFrame = float64(bytes.Load()) / float64(n)
		res.readsPerFrame = float64(reads.Load()) / float64(n)
	}
	return res
}

// maxGap is the worst observed gap between consecutive frame completions
// across all streams — the measurement idiom of golang/benchmarks'
// gc_latency: a stop-the-world pause that a percentile absorbs is fully
// visible in the maximum.
func maxGap(gaps []time.Duration) time.Duration {
	var max time.Duration
	for _, g := range gaps {
		if g > max {
			max = g
		}
	}
	return max
}

// gapStats reduces inter-frame gaps to the median gap and the p99 of the
// absolute deviation from that median — the jitter number a head-mounted
// display cares about: not how long frames take, but how unevenly they
// arrive.
func gapStats(gaps []time.Duration) (p50 time.Duration, p99Jitter time.Duration) {
	if len(gaps) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), gaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 = sorted[len(sorted)/2]
	devs := make([]time.Duration, len(gaps))
	for i, g := range gaps {
		d := g - p50
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	idx := len(devs) * 99 / 100
	if idx >= len(devs) {
		idx = len(devs) - 1
	}
	return p50, devs[idx]
}
