package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"arbd/internal/metrics"
	"arbd/internal/mq"
	"arbd/internal/stream"
)

// E20 workload shape: unkeyed telemetry-sized records against the platform's
// 4-partition topic layout. Values are 24 bytes — the size of an encoded
// location fix (uvarint session ID + two float64s) — and batches are 256
// records, the adaptive batching ceiling the telemetry load tracker settles
// at under sustained 512-session ingest (8 × the 32-record base).
const (
	e20Partitions = 4
	e20Producers  = 8
	e20BatchSize  = 256
	e20ValueBytes = 24
	e20Retention  = 32 << 20 // per-partition, matches a bounded deployment
)

// E20IngestThroughput measures the ingestion plane end to end at 512-session
// telemetry rates: concurrent unkeyed batch produce through cached Topic
// handles (records/s, allocs/record, bytes/record, per-partition skew), a
// reuse-buffer consumer drain, and a combined produce+consume pipeline
// feeding a windowed stream stage, with consumer lag sampled throughout.
func E20IngestThroughput() *Report {
	return e20Ingest(512, 8, 3, "full")
}

// e20IngestSmoke is the tiny-parameter variant for plain `go test` and the
// CI perf gate; see e14MultiSessionSmoke for the best-of-trials rationale.
func e20IngestSmoke() *Report {
	return e20Ingest(64, 4, 3, "smoke")
}

func e20Ingest(sessions, batchesPerSession, trials int, config string) *Report {
	totalBatches := sessions * batchesPerSession
	totalRecords := totalBatches * e20BatchSize
	title := fmt.Sprintf("E20: ingest throughput (%s records, %dB values, batch %d, %d producers, %d partitions)",
		countLabel(totalRecords), e20ValueBytes, e20BatchSize, e20Producers, e20Partitions)
	t := metrics.NewTable(title, "mode", "records", "records/s", "allocs/rec", "bytes/rec", "skew", "lag p50", "lag p99")
	res := NewResult("E20", title, config)

	values := make([][]byte, e20BatchSize)
	for i := range values {
		values[i] = make([]byte, e20ValueBytes)
		for j := range values[i] {
			values[i][j] = byte(i + j)
		}
	}

	// mode=produce: concurrent unkeyed batch produce, best of trials.
	var prodRate float64
	var skew float64
	for trial := 0; trial < trials; trial++ {
		rate, s := e20Produce(totalBatches, values)
		if rate > prodRate {
			prodRate = rate
			skew = s
		}
	}
	allocsPerRec, bytesPerRec := e20ProduceAllocs(values, trials)
	t.AddRow("produce", totalRecords, fmt.Sprintf("%.0f", prodRate),
		fmt.Sprintf("%.4f", allocsPerRec), fmt.Sprintf("%.1f", bytesPerRec),
		fmt.Sprintf("%.2f", skew), "—", "—")
	res.AddRow("mode=produce",
		M("records", float64(totalRecords), "count", ""),
		// Wall-clock rate on a shared host: gate only on gross collapse,
		// like E14's frames/s.
		M("records_per_sec", prodRate, "1/s", BetterHigher).WithTolerance(0.75),
		// Deterministic within a small jitter floor: a reintroduced
		// per-record allocation moves this 50-100x, far past the gate.
		M("allocs_per_record", allocsPerRec, "count", BetterLower).WithTolerance(0.5),
		M("bytes_per_record", bytesPerRec, "B", BetterLower).WithTolerance(0.5),
		// Round-robin spreads unkeyed batches exactly; a return of the
		// hot-partition bug reads as skew >> 1.
		M("partition_skew", skew, "ratio", BetterLower),
	)

	// mode=consume: drain a pre-filled log through PollInto with a reused
	// buffer, best of trials.
	var consRate, consAllocs float64
	for trial := 0; trial < trials; trial++ {
		rate, apr := e20Consume(totalBatches, values)
		if rate > consRate {
			consRate = rate
		}
		if trial == 0 || apr < consAllocs {
			consAllocs = apr
		}
	}
	t.AddRow("consume", totalRecords, fmt.Sprintf("%.0f", consRate),
		fmt.Sprintf("%.4f", consAllocs), "—", "—", "—", "—")
	res.AddRow("mode=consume",
		M("records_per_sec", consRate, "1/s", BetterHigher).WithTolerance(0.75),
		M("allocs_per_record", consAllocs, "count", BetterLower).WithTolerance(0.5),
	)

	// mode=pipeline: concurrent produce + consume, the consumer feeding a
	// windowed stream stage (the platform's analytics shape), lag sampled
	// while both run. Single trial: lag percentiles are a distribution over
	// the whole run, not a best-of rate.
	pipeRate, lagP50, lagP99 := e20Pipeline(totalBatches, values)
	t.AddRow("pipeline", totalRecords, fmt.Sprintf("%.0f", pipeRate), "—", "—", "—",
		fmt.Sprintf("%.0f", lagP50), fmt.Sprintf("%.0f", lagP99))
	res.AddRow("mode=pipeline",
		M("records_per_sec", pipeRate, "1/s", BetterHigher).WithTolerance(0.75),
		// Lag depends on goroutine interleaving; informational.
		M("lag_p50", lagP50, "records", ""),
		M("lag_p99", lagP99, "records", ""),
	)

	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

func e20Broker() (*mq.Broker, *mq.Topic) {
	b := mq.NewBroker()
	if err := b.CreateTopic("telemetry", mq.TopicConfig{
		Partitions:     e20Partitions,
		RetentionBytes: e20Retention,
	}); err != nil {
		panic(err)
	}
	tp, err := b.Topic("telemetry")
	if err != nil {
		panic(err)
	}
	return b, tp
}

// e20Produce runs totalBatches unkeyed batch produces across e20Producers
// goroutines and reports (records/s, partition skew = max/min newest offset).
func e20Produce(totalBatches int, values [][]byte) (rate, skew float64) {
	b, tp := e20Broker()
	runtime.GC()
	perProducer := totalBatches / e20Producers
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < e20Producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := tp.ProduceBatch(nil, values); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	n := perProducer * e20Producers * len(values)

	minNew, maxNew := int64(-1), int64(0)
	for pi := 0; pi < e20Partitions; pi++ {
		_, newest, err := b.Offsets("telemetry", pi)
		if err != nil {
			panic(err)
		}
		if minNew < 0 || newest < minNew {
			minNew = newest
		}
		if newest > maxNew {
			maxNew = newest
		}
	}
	skew = float64(maxNew)
	if minNew > 0 {
		skew = float64(maxNew) / float64(minNew)
	}
	return float64(n) / wall.Seconds(), skew
}

// e20ProduceAllocs measures steady-state allocations and heap bytes per
// produced record on a single goroutine (MemStats deltas are only exact
// without concurrent mutators), taking the min over trials to shed stray
// runtime allocations.
func e20ProduceAllocs(values [][]byte, trials int) (allocsPerRec, bytesPerRec float64) {
	const batches = 200
	recs := float64(batches * len(values))
	for trial := 0; trial < trials; trial++ {
		_, tp := e20Broker()
		// Warm up past the first segments so arena growth is steady-state.
		for i := 0; i < 8; i++ {
			if _, err := tp.ProduceBatch(nil, values); err != nil {
				panic(err)
			}
		}
		var m1, m2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m1)
		for i := 0; i < batches; i++ {
			if _, err := tp.ProduceBatch(nil, values); err != nil {
				panic(err)
			}
		}
		runtime.ReadMemStats(&m2)
		apr := float64(m2.Mallocs-m1.Mallocs) / recs
		bpr := float64(m2.TotalAlloc-m1.TotalAlloc) / recs
		if trial == 0 || apr < allocsPerRec {
			allocsPerRec = apr
		}
		if trial == 0 || bpr < bytesPerRec {
			bytesPerRec = bpr
		}
	}
	return allocsPerRec, bytesPerRec
}

// e20Consume fills a log, then drains it through a consumer group with a
// reused record buffer, reporting (records/s, allocs/record).
func e20Consume(totalBatches int, values [][]byte) (rate, allocsPerRec float64) {
	b, tp := e20Broker()
	for i := 0; i < totalBatches; i++ {
		if _, err := tp.ProduceBatch(nil, values); err != nil {
			panic(err)
		}
	}
	g, err := b.NewGroup("telemetry")
	if err != nil {
		panic(err)
	}
	const pollMax = 512
	buf := make([]mq.Record, 0, pollMax)
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	start := time.Now()
	consumed := 0
	var last [e20Partitions]int64
	for {
		recs, err := g.PollInto(buf[:0], pollMax)
		if err != nil {
			panic(err)
		}
		if len(recs) == 0 {
			break
		}
		consumed += len(recs)
		for i := range recs {
			last[recs[i].Partition] = recs[i].Offset + 1
		}
		for pi, off := range last {
			if off > 0 {
				g.Commit(pi, off)
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m2)
	return float64(consumed) / wall.Seconds(),
		float64(m2.Mallocs-m1.Mallocs) / float64(consumed)
}

// e20Pipeline produces and consumes concurrently, the consumer pushing every
// record into a windowed stream pipeline (per-key tumbling sum — the shape
// of the platform's crowd analytics), while a sampler polls consumer lag.
// Returns (consumed records/s, lag p50, lag p99).
func e20Pipeline(totalBatches int, values [][]byte) (rate, lagP50, lagP99 float64) {
	b, tp := e20Broker()
	g, err := b.NewGroup("telemetry")
	if err != nil {
		panic(err)
	}

	pipe := stream.NewPipeline("e20")
	pipe.Source("records").
		Window("per-key-1s", 2, stream.Tumbling(time.Second), stream.Sum()).
		Sink("null", func(stream.Event) {})
	if err := pipe.Start(); err != nil {
		panic(err)
	}

	perProducer := totalBatches / e20Producers
	total := perProducer * e20Producers * len(values)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < e20Producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := tp.ProduceBatch(nil, values); err != nil {
					panic(err)
				}
			}
		}()
	}

	var (
		lagMu   sync.Mutex
		lags    []float64
		stopLag = make(chan struct{})
		lagDone = make(chan struct{})
	)
	go func() {
		defer close(lagDone)
		for {
			select {
			case <-stopLag:
				return
			default:
			}
			if lag, err := g.Lag(); err == nil {
				lagMu.Lock()
				lags = append(lags, float64(lag))
				lagMu.Unlock()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const pollMax = 512
	buf := make([]mq.Record, 0, pollMax)
	consumed := 0
	var last [e20Partitions]int64
	producersDone := make(chan struct{})
	go func() { wg.Wait(); close(producersDone) }()
	done := false
	for consumed < total && !done {
		recs, err := g.PollInto(buf[:0], pollMax)
		if err != nil {
			panic(err)
		}
		if len(recs) == 0 {
			select {
			case <-producersDone:
				// One last poll below the select catches the tail; if it is
				// empty too, retention dropped the remainder.
				if tail, err := g.PollInto(buf[:0], pollMax); err != nil || len(tail) == 0 {
					done = true
				} else {
					recs = tail
				}
			default:
				runtime.Gosched()
				continue
			}
			if done {
				break
			}
		}
		consumed += len(recs)
		for i := range recs {
			r := &recs[i]
			last[r.Partition] = r.Offset + 1
			if err := pipe.Push("records", stream.Event{
				Key:   "poi-" + string(rune('a'+r.Offset%16)),
				Time:  r.Time,
				Value: 1,
			}); err != nil {
				panic(err)
			}
		}
		for pi, off := range last {
			if off > 0 {
				g.Commit(pi, off)
			}
		}
	}
	wall := time.Since(start)
	close(stopLag)
	<-lagDone
	if err := pipe.Drain(); err != nil {
		panic(err)
	}

	sort.Float64s(lags)
	if n := len(lags); n > 0 {
		lagP50 = lags[n/2]
		lagP99 = lags[(n*99)/100]
	}
	return float64(consumed) / wall.Seconds(), lagP50, lagP99
}
