package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
)

// E14MultiSession measures the concurrent multi-session frame engine: one
// platform serving a sweep of session counts through the bounded frame
// scheduler, reporting aggregate frames/sec and p99 frame latency — the
// paper's "crowds of AR devices against one big-data backend" scenario
// made quantitative.
func E14MultiSession() *metrics.Table {
	return e14MultiSession([]int{1, 8, 64, 512}, 4096, 4000)
}

// e14MultiSessionSmoke is the tiny-parameter variant for plain `go test`.
func e14MultiSessionSmoke() *metrics.Table {
	return e14MultiSession([]int{1, 8}, 64, 300)
}

func e14MultiSession(sessionCounts []int, totalFrames, numPOIs int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E14: multi-session throughput (%d frames total, %d POIs, %d workers)",
			totalFrames, numPOIs, runtime.GOMAXPROCS(0)),
		"sessions", "frames", "frames/s", "p50", "p99", "shed")
	for _, n := range sessionCounts {
		row := runMultiSession(n, totalFrames, numPOIs)
		t.AddRow(n, row.frames, fmt.Sprintf("%.0f", row.rate), ms(row.p50), ms(row.p99), row.shed)
	}
	return t
}

type multiSessionResult struct {
	frames int
	rate   float64
	p50    time.Duration
	p99    time.Duration
	shed   int64
}

func runMultiSession(sessions, totalFrames, numPOIs int) multiSessionResult {
	p, err := core.NewPlatform(core.Config{
		Seed: 14,
		City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
	})
	if err != nil {
		panic(err)
	}
	rng := sim.NewRand(14)
	now := time.Now()
	sess := make([]*core.Session, sessions)
	for i := range sess {
		sess[i] = p.NewSession()
		// Spread devices over the city so sessions stress different parts
		// of the spatial index rather than one cache-hot cell.
		pos := geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
		if err := sess[i].OnGPS(sensor.GPSFix{Time: now, Position: pos, AccuracyM: 5}); err != nil {
			panic(err)
		}
	}

	fs := server.NewFrameScheduler(server.SchedulerConfig{
		// A generous deadline: under extreme oversubscription stale frame
		// requests are shed (and counted) rather than rendered late.
		Deadline: time.Second,
	}, nil)
	defer fs.Close()

	framesEach := totalFrames / sessions
	if framesEach < 1 {
		framesEach = 1
	}
	total := framesEach * sessions
	var wg sync.WaitGroup
	wg.Add(total)
	start := time.Now()
	// Round-robin across sessions so the queue interleaves all devices,
	// matching how independent connections arrive.
	for f := 0; f < framesEach; f++ {
		for i := range sess {
			if err := fs.Submit(sess[i], func(_ *core.Frame, err error) {
				defer wg.Done()
				if err != nil && err != server.ErrFrameShed {
					panic(err)
				}
			}); err != nil {
				panic(err)
			}
		}
	}
	wg.Wait()
	wall := time.Since(start)

	// Report completed renders only: shed frames did no work and must not
	// inflate throughput.
	done := fs.Metrics().Counter("server.frames.done").Value()
	snap := fs.Metrics().Histogram("server.frame.latency").Snapshot()
	return multiSessionResult{
		frames: int(done),
		rate:   float64(done) / wall.Seconds(),
		p50:    snap.P50,
		p99:    snap.P99,
		shed:   fs.Metrics().Counter("server.frames.shed").Value(),
	}
}
