package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
)

// E14MultiSession measures the concurrent multi-session frame engine: one
// platform serving a sweep of session counts through the bounded frame
// scheduler, reporting aggregate frames/sec and p99 frame latency — the
// paper's "crowds of AR devices against one big-data backend" scenario
// made quantitative.
func E14MultiSession() *Report {
	return e14MultiSession([]int{1, 8, 64, 512}, 4096, 4000, 1, "full")
}

// e14MultiSessionSmoke is the tiny-parameter variant for plain `go test`
// and the CI perf gate. 2000 frames per point keeps each run in the tens of
// milliseconds (at 64 frames the wall time was sub-millisecond and the rate
// pure noise), and the gate-facing frames/s is the best of 3 trials: the
// loadable fleet can only be slowed by interference, never sped up, so
// best-of-N removes scheduler/frequency jitter without masking a real
// regression.
func e14MultiSessionSmoke() *Report {
	return e14MultiSession([]int{1, 8}, 2000, 300, 3, "smoke")
}

func e14MultiSession(sessionCounts []int, totalFrames, numPOIs, trials int, config string) *Report {
	title := fmt.Sprintf("E14: multi-session throughput (%d frames total, %d POIs, %d workers)",
		totalFrames, numPOIs, runtime.GOMAXPROCS(0))
	t := metrics.NewTable(title, "sessions", "frames", "frames/s", "p50", "p99", "shed")
	res := NewResult("E14", title, config)
	for _, n := range sessionCounts {
		row := runMultiSession(n, totalFrames, numPOIs)
		for i := 1; i < trials; i++ {
			if again := runMultiSession(n, totalFrames, numPOIs); again.rate > row.rate {
				row = again
			}
		}
		t.AddRow(n, row.frames, fmt.Sprintf("%.0f", row.rate), ms(row.p50), ms(row.p99), row.shed)
		// CPU-bound throughput on a shared host swings with neighbour load
		// (observed -53% in a slow epoch even best-of-3), so the rate gates
		// only on gross collapses — an accidental O(n²) or lock convoy — and
		// the tight 10% gate lives on deterministic metrics (E15
		// allocs/frame, E17 bytes/frame).
		res.AddRow(fmt.Sprintf("sessions=%d", n),
			M("frames", float64(row.frames), "count", ""),
			M("frames_per_sec", row.rate, "1/s", BetterHigher).WithTolerance(0.75),
			DurMetric("frame_p50", row.p50, ""),
			DurMetric("frame_p95", row.p95, ""),
			DurMetric("frame_p99", row.p99, ""),
			M("shed", float64(row.shed), "count", ""),
		)
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

type multiSessionResult struct {
	frames int
	rate   float64
	p50    time.Duration
	p95    time.Duration
	p99    time.Duration
	shed   int64
}

func runMultiSession(sessions, totalFrames, numPOIs int) multiSessionResult {
	p, err := core.NewPlatform(core.Config{
		Seed: 14,
		City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
	})
	if err != nil {
		panic(err)
	}
	rng := sim.NewRand(14)
	now := time.Now()
	sess := make([]*core.Session, sessions)
	for i := range sess {
		sess[i] = p.NewSession()
		// Spread devices over the city so sessions stress different parts
		// of the spatial index rather than one cache-hot cell.
		pos := geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
		if err := sess[i].OnGPS(sensor.GPSFix{Time: now, Position: pos, AccuracyM: 5}); err != nil {
			panic(err)
		}
	}

	fs := server.NewFrameScheduler(server.SchedulerConfig{
		// A generous deadline: under extreme oversubscription stale frame
		// requests are shed (and counted) rather than rendered late.
		Deadline: time.Second,
	}, nil)
	defer fs.Close()

	framesEach := totalFrames / sessions
	if framesEach < 1 {
		framesEach = 1
	}
	total := framesEach * sessions
	var wg sync.WaitGroup
	wg.Add(total)
	start := time.Now()
	// Round-robin across sessions so the queue interleaves all devices,
	// matching how independent connections arrive.
	for f := 0; f < framesEach; f++ {
		for i := range sess {
			if err := fs.Submit(sess[i], func(_ *core.Frame, err error) {
				defer wg.Done()
				if err != nil && err != server.ErrFrameShed {
					panic(err)
				}
			}); err != nil {
				panic(err)
			}
		}
	}
	wg.Wait()
	wall := time.Since(start)

	// Report completed renders only: shed frames did no work and must not
	// inflate throughput.
	done := fs.Metrics().Counter("server.frames.done").Value()
	snap := fs.Metrics().Histogram("server.frame.latency").Snapshot()
	return multiSessionResult{
		frames: int(done),
		rate:   float64(done) / wall.Seconds(),
		p50:    snap.P50,
		p95:    snap.P95,
		p99:    snap.P99,
		shed:   fs.Metrics().Counter("server.frames.shed").Value(),
	}
}
