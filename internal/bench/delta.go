package bench

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
	"arbd/internal/wire"
)

// E19DeltaStream measures what protocol v4 buys the streaming fan-out: the
// same standalone server drives two client cohorts at the same cadence,
// one pinned to protocol v3 (every push is a full MsgFramePush) and one
// negotiating v4 (MsgFrameDelta diffs against the previous push, with a
// keyframe every 64 pushes and on every loss resync). Clients walk, so
// annotations move every frame — deltas carry real masked-field updates,
// not empty diffs. The table reports wire bytes per frame for each mode,
// the headline reduction fraction, the inter-frame gap/jitter (delta
// decode must not cost cadence), and the engine's pacer goroutine count —
// the shared timing wheel keeps it at 1 no matter how many streams run.
func E19DeltaStream() *Report {
	return e19DeltaStream([]int{64, 512}, 2000, 2*time.Second, 15*time.Millisecond, "full")
}

// e19DeltaStreamSmoke is the tiny variant for `go test`, arbd-bench -smoke,
// and the CI perf gate.
func e19DeltaStreamSmoke() *Report {
	return e19DeltaStream([]int{8}, 300, 600*time.Millisecond, 5*time.Millisecond, "smoke")
}

func e19DeltaStream(sessionCounts []int, numPOIs int, duration, interval time.Duration, config string) *Report {
	title := fmt.Sprintf("E19: delta vs full streaming (standalone over loopback, %d POIs, %v base cadence, %v/point)",
		numPOIs, interval, duration)
	t := metrics.NewTable(title,
		"sessions", "mode", "frames", "frames/s", "p50 gap", "p99 jitter", "B/frame", "pacers", "errors")
	res := NewResult("E19", title, config)
	for _, n := range sessionCounts {
		iv := pointInterval(n, interval)
		var bpf [2]float64
		for i, mode := range []string{"full", "delta"} {
			maxProto := uint32(wire.ProtoV3)
			if mode == "delta" {
				maxProto = wire.ProtoV4
			}
			row := runDeltaStream(n, numPOIs, duration, iv, maxProto)
			bpf[i] = row.bytesPerFrame
			t.AddRow(n, mode, row.frames, fmt.Sprintf("%.0f", row.rate),
				ms(row.p50Gap), ms(row.p99Jitter),
				fmt.Sprintf("%.0f", row.bytesPerFrame),
				fmt.Sprintf("%.0f", row.pacers), row.errors)
			res.AddRow(fmt.Sprintf("sessions=%d/mode=%s", n, mode),
				M("frames", float64(row.frames), "count", ""),
				M("frames_per_sec", row.rate, "1/s", BetterHigher).WithTolerance(0.3),
				DurMetric("gap_p50", row.p50Gap, ""),
				DurMetric("jitter_p99", row.p99Jitter, ""),
				M("bytes_per_frame", row.bytesPerFrame, "B", BetterLower),
				M("pacer_goroutines", row.pacers, "count", BetterLower),
				M("errors", float64(row.errors), "count", ""),
			)
		}
		// The headline: fraction of streaming wire bytes the delta encoding
		// removes at this scale. Directed — a codec or keyframe-cadence
		// regression that claws bytes back fails the perf gate.
		if bpf[0] > 0 {
			reduction := 1 - bpf[1]/bpf[0]
			res.AddRow(fmt.Sprintf("sessions=%d/summary", n),
				M("delta_reduction", reduction, "frac", BetterHigher).WithTolerance(0.2))
		}
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

type deltaStreamResult struct {
	frames        int64
	rate          float64
	p50Gap        time.Duration
	p99Jitter     time.Duration
	bytesPerFrame float64
	pacers        float64
	errors        int64
}

func runDeltaStream(sessions, numPOIs int, duration, interval time.Duration, maxProto uint32) deltaStreamResult {
	discard := log.New(io.Discard, "", 0)
	p, err := core.NewPlatform(core.Config{
		Seed: 19,
		City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
	})
	if err != nil {
		panic(err)
	}
	srv := server.NewWithOptions(p, discard,
		server.Options{Scheduler: server.SchedulerConfig{Deadline: 2 * time.Second}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() { _ = srv.Close() }()
	pacerGauge := p.Metrics().Gauge("server.stream.pacers")

	var (
		frames  metrics.Counter
		errsCtr metrics.Counter
		bytes   atomic.Int64
		reads   atomic.Int64
		gapMu   sync.Mutex
		gaps    []time.Duration
		wg      sync.WaitGroup
	)
	rng := sim.NewRand(19)
	positions := make([]geo.Point, sessions)
	headings := make([]float64, sessions)
	for i := range positions {
		positions[i] = geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
		headings[i] = rng.Uniform(0, 360)
	}

	start := time.Now()
	deadline := start.Add(duration)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				errsCtr.Inc()
				return
			}
			cl, err := server.NewClient(context.Background(),
				&countingConn{Conn: raw, bytes: &bytes, reads: &reads},
				server.DialOptions{MaxProto: maxProto})
			if err != nil {
				errsCtr.Inc()
				return
			}
			defer cl.Close()
			pos := positions[c]
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 5}); err != nil {
				errsCtr.Inc()
				return
			}
			ch, err := cl.Subscribe(context.Background(),
				server.SubscribeOptions{Interval: interval, Budget: 16})
			if err != nil {
				errsCtr.Inc()
				return
			}
			stop := time.NewTimer(time.Until(deadline))
			defer stop.Stop()
			// A pedestrian stroll (~1 m/s, fix every 500ms) keeps the scene
			// honest: frames that straddle a step carry real masked-field
			// updates and occasional annotation churn, frames between steps
			// diff to near-empty — the mix an AR browser actually produces.
			walk := time.NewTicker(500 * time.Millisecond)
			defer walk.Stop()
			var local []time.Duration
			defer func() {
				gapMu.Lock()
				gaps = append(gaps, local...)
				gapMu.Unlock()
			}()
			last := time.Time{}
			for {
				select {
				case _, ok := <-ch:
					if !ok {
						errsCtr.Inc()
						return
					}
					now := time.Now()
					if !last.IsZero() {
						local = append(local, now.Sub(last))
					}
					last = now
					frames.Inc()
				case <-walk.C:
					pos = geo.Destination(pos, headings[c], 0.5)
					if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 5}); err != nil {
						errsCtr.Inc()
						return
					}
				case <-stop.C:
					_ = cl.Unsubscribe()
					return
				}
			}
		}(c)
	}
	// Sample the pacer gauge mid-run, while every stream is live: the whole
	// point is that it reads 1 — one shared wheel goroutine — not one per
	// subscription.
	var pacers float64
	halfway := time.NewTimer(duration / 2)
	defer halfway.Stop()
	<-halfway.C
	pacers = pacerGauge.Value()
	wg.Wait()
	wall := time.Since(start)

	p50, p99j := gapStats(gaps)
	res := deltaStreamResult{
		frames:    frames.Value(),
		rate:      float64(frames.Value()) / wall.Seconds(),
		p50Gap:    p50,
		p99Jitter: p99j,
		pacers:    pacers,
		errors:    errsCtr.Value(),
	}
	if n := frames.Value(); n > 0 {
		res.bytesPerFrame = float64(bytes.Load()) / float64(n)
	}
	return res
}
