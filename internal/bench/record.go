package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"arbd/internal/metrics"
)

// SchemaVersion is the BENCH_*.json schema version. Bump it when the record
// layout changes incompatibly; ReadResultFile refuses files from other
// versions so the CI gate never silently compares across schemas.
const SchemaVersion = 1

// Metric direction markers: which way "better" points. Metrics without a
// direction are informational — their deltas are reported but never fail the
// regression gate.
const (
	BetterHigher = "higher"
	BetterLower  = "lower"
)

// Metric is one named measurement in a result row. Tolerance, when non-zero,
// widens the regression gate for this metric alone: the effective threshold is
// max(global threshold, Tolerance). Experiments stamp it on wall-clock rates
// whose run-to-run noise on a shared CI host exceeds the global gate (CPU-bound
// throughput can swing ±30% with host load); deterministic metrics such as
// allocs/frame keep the tight default.
type Metric struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit,omitempty"`
	Better    string  `json:"better,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

// M builds a Metric tersely.
func M(name string, value float64, unit, better string) Metric {
	return Metric{Name: name, Value: value, Unit: unit, Better: better}
}

// WithTolerance returns a copy of the metric carrying a per-metric gate
// threshold (0.5 = only a >50% move the wrong way fails the gate).
func (m Metric) WithTolerance(tol float64) Metric {
	m.Tolerance = tol
	return m
}

// DurMetric builds a Metric from a duration, recorded in seconds.
func DurMetric(name string, d time.Duration, better string) Metric {
	return Metric{Name: name, Value: d.Seconds(), Unit: "s", Better: better}
}

// Row is one experiment configuration point (one table row): a name such as
// "sessions=512" or "mode=pooled" plus its measurements.
type Row struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric of the row.
func (r *Row) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Result is the machine-readable outcome of one experiment run — the unit
// the BENCH_<exp>.json trajectory is built from. Values are captured from
// typed sources (metrics.Histogram snapshots, counters, runtime.MemStats),
// never re-parsed from rendered table strings.
type Result struct {
	SchemaVersion int     `json:"schema_version"`
	Experiment    string  `json:"experiment"`
	Title         string  `json:"title,omitempty"`
	Config        string  `json:"config"` // "full" or "smoke"
	GitSHA        string  `json:"git_sha,omitempty"`
	GoVersion     string  `json:"go_version"`
	OS            string  `json:"os"`
	Arch          string  `json:"arch"`
	Timestamp     string  `json:"timestamp"` // RFC3339 UTC
	RSSBytes      float64 `json:"rss_bytes,omitempty"`
	Rows          []Row   `json:"rows"`
}

// NewResult returns a Result stamped with the schema version, toolchain, and
// current time. GitSHA is left empty; cmd/arbd-bench fills it when writing
// files (library callers, e.g. tests, must stay hermetic).
func NewResult(experiment, title, config string) *Result {
	return &Result{
		SchemaVersion: SchemaVersion,
		Experiment:    experiment,
		Title:         title,
		Config:        config,
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
	}
}

// AddRow appends a named row.
func (r *Result) AddRow(name string, ms ...Metric) {
	r.Rows = append(r.Rows, Row{Name: name, Metrics: ms})
}

// Row returns the named row.
func (r *Result) Row(name string) (*Row, bool) {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i], true
		}
	}
	return nil, false
}

// CaptureRSS stamps the process's current resident set size (or the Go
// runtime's OS-reserved bytes where /proc is unavailable), so memory
// footprint rides the trajectory next to speed.
func (r *Result) CaptureRSS() { r.RSSBytes = rssBytes() }

// rssBytes reads resident memory from /proc/self/statm, falling back to
// runtime MemStats.Sys off Linux.
func rssBytes() float64 {
	if data, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(data))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseFloat(fields[1], 64); err == nil {
				return pages * float64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys)
}

// Encode renders the result as indented JSON with a trailing newline —
// git-diff-friendly, since these files are committed as baselines.
func (r *Result) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ErrSchemaVersion reports a BENCH_*.json from an incompatible schema.
var ErrSchemaVersion = errors.New("bench: unsupported result schema version")

// DecodeResult parses an encoded result and validates its schema version.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: decode result: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSchemaVersion, r.SchemaVersion, SchemaVersion)
	}
	if r.Experiment == "" {
		return nil, errors.New("bench: result missing experiment ID")
	}
	return &r, nil
}

// WriteFile writes the encoded result to path.
func (r *Result) WriteFile(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadResultFile reads and decodes a BENCH_*.json file.
func ReadResultFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeResult(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// BenchFileName is the conventional on-disk name for an experiment's
// baseline: BENCH_E15.json for E15.
func BenchFileName(experimentID string) string {
	return "BENCH_" + experimentID + ".json"
}

// Delta classification.
const (
	ClassRegression  = "regression"  // directional metric moved the wrong way past the threshold
	ClassImprovement = "improvement" // directional metric moved the right way past the threshold
	ClassOK          = "ok"          // directional metric within the threshold
	ClassInfo        = "info"        // no direction: reported, never gated
	ClassMissing     = "missing"     // baseline metric absent from the current run
)

// Delta is the per-metric difference between a baseline and a current run.
type Delta struct {
	Row    string
	Metric string
	Base   float64
	Cur    float64
	Pct    float64 // (cur-base)/base; ±Inf when base == 0 and cur != 0
	Better string
	Class  string
}

// Comparison is the outcome of diffing a current run against a baseline.
type Comparison struct {
	Experiment string
	Threshold  float64
	BaseSHA    string
	CurSHA     string
	Deltas     []Delta
}

// Compare diffs cur against base: every metric of every baseline row is
// matched by (row name, metric name) and classified against the threshold
// (0.10 = a 10% move), widened per metric by the baseline's Tolerance.
// Direction and tolerance metadata are taken from the baseline, so a current
// run cannot silently demote a gated metric to informational or loosen its
// gate. A directional baseline metric missing from the current run classifies
// as missing and fails the gate.
func Compare(base, cur *Result, threshold float64) (*Comparison, error) {
	if base.Experiment != cur.Experiment {
		return nil, fmt.Errorf("bench: comparing different experiments: baseline %s vs current %s",
			base.Experiment, cur.Experiment)
	}
	if base.Config != cur.Config {
		return nil, fmt.Errorf("bench: comparing different configs: baseline %q vs current %q",
			base.Config, cur.Config)
	}
	c := &Comparison{
		Experiment: base.Experiment,
		Threshold:  threshold,
		BaseSHA:    base.GitSHA,
		CurSHA:     cur.GitSHA,
	}
	for _, brow := range base.Rows {
		crow, rowOK := cur.Row(brow.Name)
		for _, bm := range brow.Metrics {
			d := Delta{Row: brow.Name, Metric: bm.Name, Base: bm.Value, Better: bm.Better}
			var cm Metric
			found := false
			if rowOK {
				cm, found = crow.Metric(bm.Name)
			}
			if !found {
				d.Class = ClassInfo
				if bm.Better != "" {
					d.Class = ClassMissing
				}
				d.Cur = math.NaN()
				c.Deltas = append(c.Deltas, d)
				continue
			}
			d.Cur = cm.Value
			d.Pct = pctChange(bm.Value, cm.Value)
			thr := threshold
			if bm.Tolerance > thr {
				thr = bm.Tolerance
			}
			d.Class = classify(d.Pct, bm.Better, thr)
			c.Deltas = append(c.Deltas, d)
		}
	}
	return c, nil
}

func pctChange(base, cur float64) float64 {
	switch {
	case base == cur:
		return 0
	case base == 0 && cur > 0:
		return math.Inf(1)
	case base == 0:
		return math.Inf(-1)
	default:
		return (cur - base) / base
	}
}

func classify(pct float64, better string, threshold float64) string {
	if better == "" {
		return ClassInfo
	}
	worse := pct
	if better == BetterHigher {
		worse = -pct
	}
	switch {
	case worse > threshold:
		return ClassRegression
	case worse < -threshold:
		return ClassImprovement
	default:
		return ClassOK
	}
}

// Regressions returns the deltas that fail the gate: regressions plus
// missing directional metrics.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Class == ClassRegression || d.Class == ClassMissing {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the comparison for humans.
func (c *Comparison) Table() *metrics.Table {
	title := fmt.Sprintf("%s vs baseline (threshold ±%.0f%%", c.Experiment, c.Threshold*100)
	if c.BaseSHA != "" {
		title += fmt.Sprintf(", baseline @%s", c.BaseSHA)
	}
	title += ")"
	t := metrics.NewTable(title, "row", "metric", "baseline", "current", "delta", "class")
	for _, d := range c.Deltas {
		delta := "—"
		switch {
		case d.Class == ClassMissing:
			delta = "missing"
		case math.IsInf(d.Pct, 0):
			delta = fmt.Sprintf("%+v", d.Pct)
		default:
			delta = fmt.Sprintf("%+.1f%%", d.Pct*100)
		}
		t.AddRow(d.Row, d.Metric, trimNum(d.Base), trimNum(d.Cur), delta, d.Class)
	}
	return t
}

func trimNum(v float64) string {
	if math.IsNaN(v) {
		return "—"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// DeriveResult builds a Result from a table's typed cells — the adapter that
// gives the legacy E1-E13 experiments a machine-readable record set without
// rewriting them. The first column names the row; numeric cells (including
// time.Durations and parsable duration/percentage strings) become metrics
// named by their column header. Derived metrics carry no direction: the
// regression gate only runs over experiments emitting native records.
func DeriveResult(id, config string, t *metrics.Table) *Result {
	res := NewResult(id, t.Title(), config)
	headers := t.Headers()
	for i := 0; i < t.NumRows(); i++ {
		vals := t.RowValues(i)
		if len(vals) == 0 {
			continue
		}
		name := fmt.Sprintf("%v", vals[0])
		if len(headers) > 0 {
			name = fmt.Sprintf("%s=%v", headers[0], vals[0])
		}
		var ms []Metric
		for j := 1; j < len(vals); j++ {
			v, unit, ok := numericCell(vals[j])
			if !ok {
				continue
			}
			mname := fmt.Sprintf("col%d", j)
			if j < len(headers) {
				mname = headers[j]
			}
			ms = append(ms, Metric{Name: mname, Value: v, Unit: unit})
		}
		res.AddRow(name, ms...)
	}
	return res
}

// numericCell extracts a float value (and unit) from a typed table cell.
func numericCell(v any) (float64, string, bool) {
	switch x := v.(type) {
	case time.Duration:
		return x.Seconds(), "s", true
	case float64:
		return x, "", true
	case float32:
		return float64(x), "", true
	case int:
		return float64(x), "", true
	case int32:
		return float64(x), "", true
	case int64:
		return float64(x), "", true
	case uint:
		return float64(x), "", true
	case uint32:
		return float64(x), "", true
	case uint64:
		return float64(x), "", true
	case string:
		s := strings.TrimSpace(x)
		if s == "" || s == "—" || s == "-" {
			return 0, "", false
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, "", true
		}
		if d, err := time.ParseDuration(s); err == nil {
			return d.Seconds(), "s", true
		}
		if p := strings.TrimSuffix(s, "%"); p != s {
			if f, err := strconv.ParseFloat(p, 64); err == nil {
				return f, "%", true
			}
		}
		return 0, "", false
	default:
		return 0, "", false
	}
}
