package bench

import (
	"fmt"
	"math"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/arml"
	"arbd/internal/ehr"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/privacy"
	"arbd/internal/recommend"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/traffic"
)

// E10Privacy sweeps ε for the three §4.3 mechanisms, reporting utility loss:
// count-query error for Laplace, POI recall under planar-Laplace location
// perturbation, and cell size under k-anonymity.
func E10Privacy() *metrics.Table {
	t := metrics.NewTable("E10: privacy/utility — lower ε = stronger privacy",
		"mechanism", "ε", "utility metric", "value")
	rng := sim.NewRand(10)

	// Laplace counts: mean absolute error on a count of 1000.
	for _, eps := range []float64{0.1, 1, 10} {
		var mae float64
		const n = 4000
		for i := 0; i < n; i++ {
			v, err := privacy.Laplace(rng, 1000, 1, eps)
			if err != nil {
				panic(err)
			}
			mae += math.Abs(v - 1000)
		}
		t.AddRow("laplace-count", eps, "MAE on count=1000", fmt.Sprintf("%.2f", mae/n))
	}

	// Planar Laplace: recall of the true 10 nearest POIs when querying from
	// the perturbed location.
	city := geo.GenerateCity(geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: 5000, Seed: 10})
	store, err := geo.LoadStore(city, geo.IndexRTree)
	if err != nil {
		panic(err)
	}
	for _, eps := range []float64{0.005, 0.02, 0.1} { // per-meter: mean error 400/100/20 m
		var recall float64
		const trials = 60
		for i := 0; i < trials; i++ {
			truthLoc := geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1000)
			want := store.Nearest(truthLoc, 10)
			noisy, err := privacy.PlanarLaplace(rng, truthLoc, eps)
			if err != nil {
				panic(err)
			}
			got := store.Nearest(noisy, 10)
			wantSet := make(map[uint64]bool, len(want))
			for _, p := range want {
				wantSet[p.ID] = true
			}
			hits := 0
			for _, p := range got {
				if wantSet[p.ID] {
					hits++
				}
			}
			recall += float64(hits) / 10
		}
		t.AddRow("planar-laplace", eps,
			fmt.Sprintf("10-NN recall (mean err %.0fm)", privacy.ExpectedPlanarError(eps)),
			fmt.Sprintf("%.2f", recall/trials))
	}

	// k-anonymity: mean released cell size for a downtown crowd.
	var pts []geo.Point
	for i := 0; i < 300; i++ {
		pts = append(pts, geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*rng.Float64()*2000))
	}
	for _, k := range []int{5, 20, 50} {
		_, sizes := privacy.KAnonymize(pts, k, nil)
		var mean float64
		for _, s := range sizes {
			mean += s
		}
		t.AddRow("k-anonymity", k, "mean cell size (m)", fmt.Sprintf("%.0f", mean/float64(len(sizes))))
	}
	return t
}

// E11Interpret measures ARML encode/decode plus semantic-tagging throughput
// at growing overlay sizes (§4.2: interpretation must not break frame
// budgets).
func E11Interpret() *metrics.Table {
	t := metrics.NewTable("E11: ARML + interpretation cost",
		"features", "encode", "decode", "tagging/POI", "doc KB")
	interp := arml.RetailVocabulary()
	rng := sim.NewRand(11)
	for _, n := range []int{10, 100, 1000} {
		city := geo.GenerateCity(geo.CityConfig{Center: benchCenter, RadiusM: 1000, NumPOIs: n, Seed: 11})
		doc := &arml.Document{}
		for _, p := range city {
			metricsIn := map[string]float64{
				"crowding": rng.Float64(),
				"stock":    float64(rng.Intn(10)),
				"discount": rng.Float64() * 0.5,
			}
			tags := interp.Interpret(metricsIn)
			doc.Features = append(doc.Features, arml.FeatureFromPOI(p, tags))
		}
		const reps = 20
		start := time.Now()
		var data []byte
		var err error
		for i := 0; i < reps; i++ {
			data, err = arml.Encode(doc)
			if err != nil {
				panic(err)
			}
		}
		encT := time.Since(start) / reps

		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := arml.Decode(data); err != nil {
				panic(err)
			}
		}
		decT := time.Since(start) / reps

		start = time.Now()
		const tagReps = 2000
		for i := 0; i < tagReps; i++ {
			interp.Interpret(map[string]float64{"crowding": 0.8, "stock": 2, "discount": 0.2})
		}
		tagT := time.Since(start) / tagReps

		t.AddRow(n, ms(encT), ms(decT), us(tagT), len(data)/1024)
	}
	return t
}

// E12Sketches compares sketch estimates against exact computation: error vs
// memory at stream scales (§1 volume — you cannot keep exact state for
// everything).
func E12Sketches() *metrics.Table {
	return e12Sketches(1_000_000, 100_000)
}

func e12SketchesSmoke() *metrics.Table {
	return e12Sketches(50_000, 10_000)
}

func e12Sketches(n, keySpace int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E12: sketches vs exact at %s zipf events, %s key space",
			countLabel(n), countLabel(keySpace)),
		"structure", "memory KB", "metric", "value")
	rng := sim.NewRand(12)
	z := rng.NewZipf(1.3, keySpace)
	exactCounts := make(map[string]uint64)
	exactDistinct := make(map[string]bool)
	cm := analytics.NewCountMin(0.0005, 0.01)
	hll := analytics.NewHyperLogLog(12)
	ss := analytics.NewSpaceSaving(100)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", z.Next())
		exactCounts[key]++
		exactDistinct[key] = true
		cm.Add(key, 1)
		hll.Add(key)
		ss.Add(key)
	}
	// Count-min: mean relative error over the top 100 true keys.
	top := ss.TopK(100)
	var relErr float64
	for _, hh := range top {
		truth := exactCounts[hh.Key]
		est := cm.Count(hh.Key)
		relErr += math.Abs(float64(est)-float64(truth)) / float64(truth)
	}
	t.AddRow("count-min", cm.MemoryBytes()/1024, "mean rel err, top-100 keys",
		fmt.Sprintf("%.4f", relErr/float64(len(top))))

	hllErr := math.Abs(hll.Estimate()-float64(len(exactDistinct))) / float64(len(exactDistinct))
	t.AddRow("hyperloglog", hll.MemoryBytes()/1024, "cardinality rel err", fmt.Sprintf("%.4f", hllErr))

	// Space-saving: how many of the true top-20 are in the sketch top-20.
	type kv struct {
		k string
		v uint64
	}
	var all []kv
	for k, v := range exactCounts {
		all = append(all, kv{k, v})
	}
	// Partial selection of true top 20.
	for i := 0; i < 20; i++ {
		maxJ := i
		for j := i + 1; j < len(all); j++ {
			if all[j].v > all[maxJ].v {
				maxJ = j
			}
		}
		all[i], all[maxJ] = all[maxJ], all[i]
	}
	trueTop := make(map[string]bool, 20)
	for i := 0; i < 20; i++ {
		trueTop[all[i].k] = true
	}
	hits := 0
	for _, hh := range ss.TopK(20) {
		if trueTop[hh.Key] {
			hits++
		}
	}
	t.AddRow("space-saving(100)", (100*32)/1024+1, "true top-20 recall", fmt.Sprintf("%d/20", hits))

	exactMem := len(exactCounts) * 24 / 1024
	t.AddRow("exact map", exactMem, "baseline", "-")
	return t
}

// E13Influence recomputes Figure 5, the paper's qualitative "influence
// circles": each field gets a measured improvement score from the scenario
// experiments, mapped onto the paper's five levels, and compared with the
// level the paper assigns.
func E13Influence() *metrics.Table {
	t := metrics.NewTable("E13: Figure 5 influence levels, measured vs paper",
		"field", "measured signal", "score", "measured level", "paper level")

	// Retail: HR@10 lift of context-aware over popularity (E7 at small
	// scale).
	w := analyticsShoppers()
	retailScore := w.ctxHR / math.Max(w.popHR, 1e-6)

	// Tourism: geo-index speedup enabling city-scale POI context (E5 shape).
	tourismScore := geoSpeedup()

	// Healthcare: episode detection rate (E8 at small scale).
	healthScore := healthDetection()

	// Public services: x-ray recall gain (E9 at small scale).
	publicScore := xrayGain()

	rows := []struct {
		field string
		sig   string
		score float64
		paper string
	}{
		{"retail", "context rec lift", retailScore, "very high"},
		{"tourism", "geo ctx speedup", tourismScore, "very high"},
		{"healthcare", "episode detection", healthScore, "very high"},
		{"public services", "x-ray recall gain", publicScore, "high"},
	}
	for _, r := range rows {
		t.AddRow(r.field, r.sig, fmt.Sprintf("%.2f", r.score), levelOf(r.score), r.paper)
	}
	return t
}

// levelOf maps a composite improvement score onto the paper's five levels.
func levelOf(score float64) string {
	switch {
	case score >= 3:
		return "very high"
	case score >= 1.5:
		return "high"
	case score >= 1.1:
		return "medium"
	case score > 1.0:
		return "low"
	default:
		return "absent"
	}
}

type shopperScores struct{ popHR, ctxHR float64 }

// analyticsShoppers runs a small-scale E7 and returns the popularity and
// context-aware hit rates.
func analyticsShoppers() shopperScores {
	w := recommend.GenerateShoppers(recommend.ShopperConfig{
		Seed: 13, NumUsers: 150, NumItems: 200, EventsPerUser: 25, Center: benchCenter,
	})
	sp := recommend.LeaveOneOut(w.Log, 5)
	pop := recommend.Evaluate(recommend.NewPopularity(sp.Train), sp, 10)
	cf := recommend.NewItemCF(sp.Train)
	ctx := recommend.Evaluate(recommend.NewContextAware(cf, w.Catalog, w.ContextFor(sp)), sp, 10)
	return shopperScores{popHR: pop.HitRate, ctxHR: ctx.HitRate}
}

// geoSpeedup returns the R-tree-over-scan 10-NN speedup at 50k POIs (the
// per-frame context lookup), capped so a single subsystem cannot dominate
// the influence score.
func geoSpeedup() float64 {
	city := geo.GenerateCity(geo.CityConfig{Center: benchCenter, RadiusM: 5000, NumPOIs: 50_000, Seed: 13})
	scan, err := geo.LoadStore(city, geo.IndexScan)
	if err != nil {
		panic(err)
	}
	rt, err := geo.LoadStore(city, geo.IndexRTree)
	if err != nil {
		panic(err)
	}
	const queries = 30
	rng := sim.NewRand(13)
	var centers []geo.Point
	for i := 0; i < queries; i++ {
		centers = append(centers, geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*3000))
	}
	start := time.Now()
	for _, c := range centers {
		_ = scan.Nearest(c, 10)
	}
	scanT := time.Since(start)
	start = time.Now()
	for _, c := range centers {
		_ = rt.Nearest(c, 10)
	}
	rtT := time.Since(start)
	return math.Min(10, float64(scanT)/float64(rtT+1))
}

// healthDetection returns detected episodes / injected episodes scaled to
// the influence range (detection of 100% maps to 4.0).
func healthDetection() float64 {
	store := ehr.NewStore()
	engine := ehr.NewAlertEngine(store, ehr.StandardRules())
	rng := sim.NewRand(13)
	const patients = 40
	detected, episodes := 0, 0
	for pid := 1; pid <= patients; pid++ {
		v := sensor.NewVitals(int64(2000 + pid))
		var epAt time.Time
		if rng.Bool(0.5) {
			epAt = sim.Epoch.Add(time.Duration(30+rng.Intn(120)) * time.Second)
			v.StartEpisode(epAt, 2*time.Minute)
			episodes++
		}
		hit := false
		for sec := 0; sec < 360; sec++ {
			now := sim.Epoch.Add(time.Duration(sec) * time.Second)
			for _, samp := range v.Sample(now) {
				if len(engine.Ingest(uint64(pid), samp)) > 0 && !epAt.IsZero() && !hit {
					hit = true
				}
			}
		}
		if hit {
			detected++
		}
	}
	if episodes == 0 {
		return 0
	}
	return 4 * float64(detected) / float64(episodes)
}

// xrayGain returns cloud-shared detection recall relative to line-of-sight
// recall, scaled so a 2x gain maps to 2.0.
func xrayGain() float64 {
	s := traffic.NewSim(traffic.Config{Seed: 13, NumVehicles: 50, Penetration: 1}, sim.Epoch)
	var los, shared, truth int
	for step := 0; step < 80; step++ {
		s.Step(500 * time.Millisecond)
		l := s.MeasureDetection(250, false, 8*time.Second, 12)
		sh := s.MeasureDetection(250, true, 8*time.Second, 12)
		los += l.DetectedPairs
		shared += sh.DetectedPairs
		truth += sh.TruthPairs
	}
	if los == 0 {
		return 4
	}
	return float64(shared) / float64(los)
}
