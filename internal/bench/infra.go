package bench

import (
	"fmt"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/cluster"
	"arbd/internal/metrics"
	"arbd/internal/mq"
	"arbd/internal/offload"
	"arbd/internal/sim"
	"arbd/internal/stream"
)

// E1LogIngest measures broker produce/consume throughput across producer and
// partition counts (§1 "velocity": data streaming in at high speed).
func E1LogIngest() *metrics.Table {
	return e1LogIngest(100_000, []int{1, 4}, []int{1, 4, 8})
}

func e1LogIngestSmoke() *metrics.Table {
	return e1LogIngest(5_000, []int{2}, []int{1, 4})
}

func e1LogIngest(total int, producerCounts, partitionCounts []int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E1: commit-log ingest (%dk records, 100B values)", total/1000),
		"producers", "partitions", "produce k/s", "consume k/s")
	value := make([]byte, 100)
	for _, producers := range producerCounts {
		for _, partitions := range partitionCounts {
			b := mq.NewBroker()
			if err := b.CreateTopic("t", mq.TopicConfig{Partitions: partitions}); err != nil {
				panic(err)
			}
			start := time.Now()
			done := make(chan struct{}, producers)
			per := total / producers
			for p := 0; p < producers; p++ {
				go func(p int) {
					key := []byte(fmt.Sprintf("p%d", p))
					for i := 0; i < per; i++ {
						key[0] = byte('a' + i%23)
						if _, _, err := b.Produce("t", key, value); err != nil {
							panic(err)
						}
					}
					done <- struct{}{}
				}(p)
			}
			for p := 0; p < producers; p++ {
				<-done
			}
			produceRate := float64(producers*per) / time.Since(start).Seconds() / 1e3

			g, err := b.NewGroup("t")
			if err != nil {
				panic(err)
			}
			start = time.Now()
			consumed := 0
			for {
				recs, err := g.Poll(4096)
				if err != nil {
					panic(err)
				}
				if len(recs) == 0 {
					break
				}
				consumed += len(recs)
				for _, r := range recs {
					g.Commit(r.Partition, r.Offset+1)
				}
			}
			consumeRate := float64(consumed) / time.Since(start).Seconds() / 1e3
			t.AddRow(producers, partitions, fmt.Sprintf("%.0f", produceRate), fmt.Sprintf("%.0f", consumeRate))
		}
	}
	return t
}

// E2StreamWindows measures windowed-aggregation throughput as worker
// parallelism grows (§2: the analysis pipeline must keep up with streams).
func E2StreamWindows() *metrics.Table {
	return e2StreamWindows(200_000, []int{1, 2, 4, 8})
}

func e2StreamWindowsSmoke() *metrics.Table {
	return e2StreamWindows(10_000, []int{1, 4})
}

func e2StreamWindows(total int, parallelisms []int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E2: stream engine, keyed 1s tumbling sum over %dk events", total/1000),
		"parallelism", "events/s (k)", "results")
	for _, par := range parallelisms {
		p := stream.NewPipeline("bench", stream.WithChannelSize(1024))
		results := 0
		var resMu chan struct{} = make(chan struct{}, 1)
		resMu <- struct{}{}
		p.Source("in").
			Window("sum", par, stream.Tumbling(time.Second), stream.Sum()).
			Sink("out", func(stream.Event) {
				<-resMu
				results++
				resMu <- struct{}{}
			})
		if err := p.Start(); err != nil {
			panic(err)
		}
		start := time.Now()
		base := sim.Epoch
		for i := 0; i < total; i++ {
			evt := stream.Event{
				Key:   fmt.Sprintf("k%d", i%64),
				Time:  base.Add(time.Duration(i) * 50 * time.Microsecond),
				Value: 1,
			}
			if err := p.Push("in", evt); err != nil {
				panic(err)
			}
		}
		if err := p.Drain(); err != nil {
			panic(err)
		}
		rate := float64(total) / time.Since(start).Seconds() / 1e3
		t.AddRow(par, fmt.Sprintf("%.0f", rate), results)
	}
	return t
}

// E3IncrementalVsBatch compares per-update cost of an incrementally
// maintained view against full recomputation at growing log sizes — §4.1's
// timeliness argument made quantitative.
func E3IncrementalVsBatch() *metrics.Table {
	return e3IncrementalVsBatch([]int{1_000, 10_000, 100_000, 500_000})
}

func e3IncrementalVsBatchSmoke() *metrics.Table {
	return e3IncrementalVsBatch([]int{1_000, 10_000})
}

func e3IncrementalVsBatch(logSizes []int) *metrics.Table {
	t := metrics.NewTable("E3: per-update cost, incremental view vs batch recompute",
		"log size", "incremental/update", "batch/update", "batch/incremental")
	rng := sim.NewRand(3)
	for _, n := range logSizes {
		rows := make([]analytics.Row, n)
		for i := range rows {
			rows[i] = analytics.Row{Group: fmt.Sprintf("g%d", rng.Intn(200)), Value: rng.Float64()}
		}
		v := analytics.NewView()
		v.ApplyBatch(rows)

		const updates = 50
		start := time.Now()
		for i := 0; i < updates; i++ {
			v.Apply(analytics.Row{Group: "g1", Value: 1})
		}
		incPer := time.Since(start) / updates

		batchRuns := 3
		start = time.Now()
		for i := 0; i < batchRuns; i++ {
			_ = analytics.BatchCompute(rows)
		}
		batchPer := time.Since(start) / time.Duration(batchRuns)

		ratio := float64(batchPer) / float64(incPer+1)
		t.AddRow(n, us(incPer), ms(batchPer), fmt.Sprintf("%.0fx", ratio))
	}
	return t
}

// E4Offload reproduces the CloudRiDAR-style crossover: per-frame latency and
// device energy for local/edge/cloud placements across network profiles
// (§4.1).
func E4Offload() *metrics.Table {
	t := metrics.NewTable("E4: AR pipeline placement per network profile (per frame)",
		"network", "placement", "latency", "energy mJ", "chosen")
	device := cluster.Node{ID: "mobile", Class: cluster.ClassMobile, SpeedFactor: 1,
		ActiveWatts: 2.5, IdleWatts: 0.8, TxWatts: 1.8}
	edge := cluster.Node{ID: "edge", Class: cluster.ClassEdge, SpeedFactor: 6,
		ActiveWatts: 65, IdleWatts: 20, TxWatts: 5}
	cloud := cluster.Node{ID: "cloud", Class: cluster.ClassCloud, SpeedFactor: 32,
		ActiveWatts: 250, IdleWatts: 80, TxWatts: 10}
	stages := offload.ARPipeline(0, 0)

	profiles := []cluster.Profile{cluster.ProfileLAN, cluster.ProfileWiFi, cluster.ProfileLTE, cluster.Profile3G}
	for _, link := range profiles {
		wan := link
		wan.RTT += 40 * time.Millisecond
		remotes := []offload.RemoteOption{
			{Node: edge, Link: link},
			{Node: cloud, Link: wan},
		}
		best, err := offload.Best(stages, device, remotes, offload.MinLatency, 0)
		if err != nil {
			panic(err)
		}
		candidates := []struct {
			name string
			est  func() (offload.Estimate, error)
		}{
			{"local", func() (offload.Estimate, error) {
				return offload.Evaluate(stages, device, device, cluster.ProfileLoopback, offload.Local(), nil)
			}},
			{"edge[1:4]", func() (offload.Estimate, error) {
				return offload.Evaluate(stages, device, edge, link,
					offload.Placement{RemoteStart: 1, RemoteEnd: 4, RemoteNode: "edge"}, nil)
			}},
			{"cloud[1:4]", func() (offload.Estimate, error) {
				return offload.Evaluate(stages, device, cloud, wan,
					offload.Placement{RemoteStart: 1, RemoteEnd: 4, RemoteNode: "cloud"}, nil)
			}},
		}
		shown := false
		for _, c := range candidates {
			est, err := c.est()
			if err != nil {
				panic(err)
			}
			chosen := ""
			if c.name == best.Placement.String() || (c.name == "local" && best.Placement.IsLocal()) {
				chosen = "<-- best"
				shown = true
			}
			t.AddRow(link.Name, c.name, ms(est.Latency),
				fmt.Sprintf("%.1f", est.DeviceEnergyJ*1e3), chosen)
		}
		// The planner may pick a split not in the display set (e.g. on WiFi
		// it extracts features locally and ships only descriptors); always
		// show its actual decision.
		if !shown {
			t.AddRow(link.Name, best.Placement.String(), ms(best.Estimate.Latency),
				fmt.Sprintf("%.1f", best.Estimate.DeviceEnergyJ*1e3), "<-- best")
		}
	}
	return t
}
