package bench

import (
	"fmt"
	"runtime"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
)

// E15GCPressure measures sustained-load GC pressure on the frame hot path:
// allocations and bytes per frame, plus latency percentiles, with the
// per-session frame scratch enabled (pooled) and disabled (alloc) — the
// paper's per-frame latency budget defended against memory churn.
func E15GCPressure() *metrics.Table {
	return e15GCPressure(5000, 2000)
}

// e15GCPressureSmoke is the tiny-parameter variant for plain `go test`.
func e15GCPressureSmoke() *metrics.Table {
	return e15GCPressure(200, 400)
}

func e15GCPressure(frames, numPOIs int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E15: frame hot path GC pressure (%d frames, %d POIs)", frames, numPOIs),
		"mode", "allocs/frame", "KB/frame", "p50", "p99", "GC cycles")
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"pooled", false},
		{"alloc", true},
	} {
		row := runGCPressure(frames, numPOIs, mode.disable)
		t.AddRow(mode.name,
			fmt.Sprintf("%.1f", row.allocsPerFrame),
			fmt.Sprintf("%.2f", row.kbPerFrame),
			ms(row.p50), ms(row.p99), row.gcCycles)
	}
	return t
}

type gcPressureResult struct {
	allocsPerFrame float64
	kbPerFrame     float64
	p50, p99       time.Duration
	gcCycles       uint32
}

func runGCPressure(frames, numPOIs int, disableScratch bool) gcPressureResult {
	p, err := core.NewPlatform(core.Config{
		Seed:                15,
		City:                geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
		DisableFrameScratch: disableScratch,
	})
	if err != nil {
		panic(err)
	}
	s := p.NewSession()
	now := time.Now()
	if err := s.OnGPS(sensor.GPSFix{Time: now, Position: benchCenter, AccuracyM: 5}); err != nil {
		panic(err)
	}
	// Warm up so pooled buffers reach steady-state capacity before
	// measurement starts.
	for i := 0; i < 50; i++ {
		if _, err := s.Frame(now); err != nil {
			panic(err)
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < frames; i++ {
		if _, err := s.Frame(now); err != nil {
			panic(err)
		}
	}
	runtime.ReadMemStats(&after)

	snap := p.Metrics().Histogram("core.frame.latency").Snapshot()
	return gcPressureResult{
		allocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(frames),
		kbPerFrame:     float64(after.TotalAlloc-before.TotalAlloc) / float64(frames) / 1024,
		p50:            snap.P50,
		p99:            snap.P99,
		gcCycles:       after.NumGC - before.NumGC,
	}
}
