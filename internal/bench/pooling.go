package bench

import (
	"fmt"
	"runtime"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
)

// E15GCPressure measures sustained-load GC pressure on the frame hot path:
// allocations and bytes per frame, plus latency percentiles, with the
// per-session frame scratch enabled (pooled) and disabled (alloc) — the
// paper's per-frame latency budget defended against memory churn.
func E15GCPressure() *Report {
	return e15GCPressure(5000, 2000, "full")
}

// e15GCPressureSmoke is the tiny-parameter variant for plain `go test` and
// the CI perf gate. 1000 frames keep the measured frames/s stable enough to
// gate at 10% while the run stays under ~100ms.
func e15GCPressureSmoke() *Report {
	return e15GCPressure(1000, 400, "smoke")
}

func e15GCPressure(frames, numPOIs int, config string) *Report {
	title := fmt.Sprintf("E15: frame hot path GC pressure (%d frames, %d POIs)", frames, numPOIs)
	t := metrics.NewTable(title, "mode", "allocs/frame", "KB/frame", "p50", "p99", "GC cycles")
	res := NewResult("E15", title, config)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"pooled", false},
		{"alloc", true},
	} {
		row := runGCPressure(frames, numPOIs, mode.disable)
		t.AddRow(mode.name,
			fmt.Sprintf("%.1f", row.allocsPerFrame),
			fmt.Sprintf("%.2f", row.kbPerFrame),
			ms(row.p50), ms(row.p99), row.gcCycles)
		// Allocation counts gate the trajectory: unlike wall-clock rates
		// they are deterministic for a fixed workload, so a new allocation
		// on the hot path is a guaranteed red delta, not a noisy one. The
		// wall-clock rate keeps a wide tolerance — host-load epochs move it
		// ±30-50% — so it only catches gross collapses.
		res.AddRow("mode="+mode.name,
			M("frames_per_sec", row.rate, "1/s", BetterHigher).WithTolerance(0.6),
			M("allocs_per_frame", row.allocsPerFrame, "allocs", BetterLower),
			M("bytes_per_frame", row.kbPerFrame*1024, "B", BetterLower),
			DurMetric("frame_mean", row.mean, ""),
			DurMetric("frame_p50", row.p50, ""),
			DurMetric("frame_p95", row.p95, ""),
			DurMetric("frame_p99", row.p99, ""),
			M("gc_cycles", float64(row.gcCycles), "count", ""),
		)
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

type gcPressureResult struct {
	allocsPerFrame float64
	kbPerFrame     float64
	rate           float64
	mean, p50      time.Duration
	p95, p99       time.Duration
	gcCycles       uint32
}

func runGCPressure(frames, numPOIs int, disableScratch bool) gcPressureResult {
	p, err := core.NewPlatform(core.Config{
		Seed:                15,
		City:                geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
		DisableFrameScratch: disableScratch,
	})
	if err != nil {
		panic(err)
	}
	s := p.NewSession()
	now := time.Now()
	if err := s.OnGPS(sensor.GPSFix{Time: now, Position: benchCenter, AccuracyM: 5}); err != nil {
		panic(err)
	}
	// Warm up so pooled buffers reach steady-state capacity before
	// measurement starts.
	for i := 0; i < 50; i++ {
		if _, err := s.Frame(now); err != nil {
			panic(err)
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < frames; i++ {
		if _, err := s.Frame(now); err != nil {
			panic(err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	snap := p.Metrics().Histogram("core.frame.latency").Snapshot()
	return gcPressureResult{
		allocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(frames),
		kbPerFrame:     float64(after.TotalAlloc-before.TotalAlloc) / float64(frames) / 1024,
		rate:           float64(frames) / wall.Seconds(),
		mean:           snap.Mean,
		p50:            snap.P50,
		p95:            snap.P95,
		p99:            snap.P99,
		gcCycles:       after.NumGC - before.NumGC,
	}
}
