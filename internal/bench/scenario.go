package bench

import (
	"fmt"
	"time"

	"arbd/internal/ehr"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/recommend"
	"arbd/internal/render"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/traffic"
)

var benchCenter = geo.Point{Lat: 22.3364, Lon: 114.2655}

// E5GeoIndex compares POI query latency across index structures and dataset
// sizes (§3.2: every AR frame is a geospatial context query). Range queries
// share result post-processing across indexes; 10-NN queries isolate the
// search structure, which is where trees win by orders of magnitude.
func E5GeoIndex() *metrics.Table {
	return e5GeoIndex([]int{1_000, 10_000, 50_000, 200_000}, 40)
}

func e5GeoIndexSmoke() *metrics.Table {
	return e5GeoIndex([]int{1_000, 5_000}, 8)
}

func e5GeoIndex(poiCounts []int, numQueries int) *metrics.Table {
	t := metrics.NewTable("E5: POI queries, mean latency (150m range / 10-NN)",
		"POIs", "range scan", "range rtree", "knn scan", "knn quadtree", "knn rtree", "knn speedup")
	for _, n := range poiCounts {
		city := geo.GenerateCity(geo.CityConfig{
			Center: benchCenter, RadiusM: 5000, NumPOIs: n, TallRatio: 0.2, Seed: 5,
		})
		kinds := []geo.IndexKind{geo.IndexScan, geo.IndexQuadtree, geo.IndexRTree}
		stores := make(map[geo.IndexKind]*geo.Store, len(kinds))
		for _, kind := range kinds {
			store, err := geo.LoadStore(city, kind)
			if err != nil {
				panic(err)
			}
			stores[kind] = store
		}
		queryCenters := func() []geo.Point {
			rng := sim.NewRand(55)
			out := make([]geo.Point, numQueries)
			for i := range out {
				out[i] = geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*3000)
			}
			return out
		}
		rangeLat := make(map[geo.IndexKind]time.Duration)
		knnLat := make(map[geo.IndexKind]time.Duration)
		for _, kind := range kinds {
			centers := queryCenters()
			start := time.Now()
			for _, c := range centers {
				_ = stores[kind].QueryRadius(c, 150, 0)
			}
			rangeLat[kind] = time.Since(start) / time.Duration(len(centers))
			start = time.Now()
			for _, c := range centers {
				_ = stores[kind].Nearest(c, 10)
			}
			knnLat[kind] = time.Since(start) / time.Duration(len(centers))
		}
		speedup := float64(knnLat[geo.IndexScan]) / float64(knnLat[geo.IndexRTree]+1)
		t.AddRow(n,
			us(rangeLat[geo.IndexScan]), us(rangeLat[geo.IndexRTree]),
			us(knnLat[geo.IndexScan]), us(knnLat[geo.IndexQuadtree]), us(knnLat[geo.IndexRTree]),
			fmt.Sprintf("%.0fx", speedup))
	}
	return t
}

// E6Layout compares the floating-bubble baseline against the anchored
// engine on clutter metrics and cost as annotation density grows (§2.1).
func E6Layout() *metrics.Table {
	t := metrics.NewTable("E6: layout quality, bubbles vs anchored",
		"annotations", "engine", "drawn", "overlap%", "occl viol", "ms/frame")
	pose := sensor.Pose{Position: benchCenter, HeadingDeg: 0, AltitudeM: 1.6}
	cam := render.DefaultCamera
	for _, n := range []int{25, 100, 400} {
		city := geo.GenerateCity(geo.CityConfig{
			Center: benchCenter, RadiusM: 300, NumPOIs: n, TallRatio: 0.3, Seed: 6,
		})
		occl := render.OccludersFromPOIs(city, 30)
		anns := render.AnnotationsFromPOIs(pose, city)

		const frames = 30
		start := time.Now()
		var laidB []render.Annotation
		for f := 0; f < frames; f++ {
			laidB = render.LayoutBubbles(cam, pose, anns)
		}
		bubbleTime := time.Since(start) / frames
		mB := render.MeasureClutter(cam, pose, laidB, occl)

		start = time.Now()
		var laidA []render.Annotation
		for f := 0; f < frames; f++ {
			laidA = render.LayoutAnchored(cam, pose, anns, occl, render.LayoutOptions{})
		}
		anchorTime := time.Since(start) / frames
		mA := render.MeasureClutter(cam, pose, laidA, occl)

		t.AddRow(n, "bubbles", mB.Drawn, fmt.Sprintf("%.1f", mB.OverlapFraction*100),
			mB.OcclusionViolations, ms(bubbleTime))
		t.AddRow(n, "anchored", mA.Drawn, fmt.Sprintf("%.1f", mA.OverlapFraction*100),
			mA.OcclusionViolations, ms(anchorTime))
	}
	return t
}

// E7Recommend evaluates recommendation lift: popularity vs item-CF vs
// context-aware, HR@10 and NDCG@10 on synthetic shoppers (§3.1).
func E7Recommend() *metrics.Table {
	return e7Recommend(400, 500, 30)
}

func e7RecommendSmoke() *metrics.Table {
	return e7Recommend(60, 80, 12)
}

func e7Recommend(users, items, eventsPerUser int) *metrics.Table {
	t := metrics.NewTable("E7: recommendation quality (leave-one-out, K=10)",
		"model", "HR@10", "NDCG@10", "users")
	w := recommend.GenerateShoppers(recommend.ShopperConfig{
		Seed: 7, NumUsers: users, NumItems: items, EventsPerUser: eventsPerUser, Center: benchCenter,
	})
	sp := recommend.LeaveOneOut(w.Log, 5)
	pop := recommend.NewPopularity(sp.Train)
	cf := recommend.NewItemCF(sp.Train)
	ctx := recommend.NewContextAware(cf, w.Catalog, w.ContextFor(sp))
	for _, rec := range []recommend.Recommender{pop, cf, ctx} {
		m := recommend.Evaluate(rec, sp, 10)
		t.AddRow(rec.Name(), fmt.Sprintf("%.3f", m.HitRate), fmt.Sprintf("%.3f", m.NDCG), m.Users)
	}
	return t
}

// E8HealthAlerts measures alert detection latency and precision/recall as
// the monitored population grows (§3.3).
func E8HealthAlerts() *metrics.Table {
	return e8HealthAlerts([]int{10, 100, 500}, 600)
}

func e8HealthAlertsSmoke() *metrics.Table {
	return e8HealthAlerts([]int{10}, 180)
}

func e8HealthAlerts(patientCounts []int, duration int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E8: vitals alerting, %d-minute episodes at 1Hz sampling", duration/60),
		"patients", "episodes", "detected", "false alarms", "mean latency", "ingest k/s")
	for _, patients := range patientCounts {
		store := ehr.NewStore()
		engine := ehr.NewAlertEngine(store, ehr.StandardRules())
		rng := sim.NewRand(8)
		vitals := make([]*sensor.Vitals, patients)
		episodeAt := make([]time.Time, patients)
		for i := range vitals {
			vitals[i] = sensor.NewVitals(int64(1000 + i))
			_ = store.PutPatient(ehr.Patient{ID: uint64(i + 1), Name: fmt.Sprintf("p%d", i+1)})
		}
		// A third of patients get an episode at a random minute.
		episodes := 0
		for i := range vitals {
			if rng.Bool(0.33) {
				// Episodes start in the first half of the run so even short
				// (smoke) runs leave room to detect them.
				at := sim.Epoch.Add(time.Duration(duration/10+rng.Intn(duration*2/5)) * time.Second)
				vitals[i].StartEpisode(at, 2*time.Minute)
				episodeAt[i] = at
				episodes++
			}
		}
		firstAlert := make(map[uint64]time.Time)
		falseAlarms := 0
		samples := 0
		start := time.Now()
		for sec := 0; sec < duration; sec++ {
			now := sim.Epoch.Add(time.Duration(sec) * time.Second)
			for i, v := range vitals {
				pid := uint64(i + 1)
				for _, samp := range v.Sample(now) {
					samples++
					for _, a := range engine.Ingest(pid, samp) {
						if episodeAt[i].IsZero() {
							falseAlarms++
						} else if _, seen := firstAlert[pid]; !seen {
							firstAlert[pid] = a.Time
						}
					}
				}
			}
		}
		wall := time.Since(start)
		detected := 0
		var latSum time.Duration
		for i := range vitals {
			if episodeAt[i].IsZero() {
				continue
			}
			if at, ok := firstAlert[uint64(i+1)]; ok && !at.Before(episodeAt[i]) {
				detected++
				latSum += at.Sub(episodeAt[i])
			}
		}
		meanLat := time.Duration(0)
		if detected > 0 {
			meanLat = latSum / time.Duration(detected)
		}
		rate := float64(samples) / wall.Seconds() / 1e3
		t.AddRow(patients, episodes, detected, falseAlarms, meanLat.Round(time.Second),
			fmt.Sprintf("%.0f", rate))
	}
	return t
}

// E9Traffic measures collision-warning recall and the "x-ray vision"
// benefit of cloud-shared beacons across penetration rates (§3.4).
func E9Traffic() *metrics.Table {
	return e9Traffic([]float64{0.3, 0.6, 1.0}, 60, 120)
}

func e9TrafficSmoke() *metrics.Table {
	return e9Traffic([]float64{1.0}, 20, 30)
}

func e9Traffic(penetrations []float64, vehicles, steps int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E9: conflict detection recall over %.0fs urban sim", float64(steps)/2),
		"penetration", "mode", "truth pairs", "detected", "recall", "mean TTC")
	for _, pen := range penetrations {
		for _, shared := range []bool{false, true} {
			s := traffic.NewSim(traffic.Config{
				Seed: 9, GridN: 6, BlockM: 120, NumVehicles: vehicles, Penetration: pen,
			}, sim.Epoch)
			var truth, det int
			var ttcSum time.Duration
			ttcN := 0
			for step := 0; step < steps; step++ {
				s.Step(500 * time.Millisecond)
				st := s.MeasureDetection(250, shared, 8*time.Second, 12)
				truth += st.TruthPairs
				det += st.DetectedPairs
				if st.DetectedPairs > 0 {
					ttcSum += st.MeanTTC
					ttcN++
				}
			}
			mode := "line-of-sight"
			if shared {
				mode = "cloud-shared"
			}
			recall := 0.0
			if truth > 0 {
				recall = float64(det) / float64(truth)
			}
			meanTTC := time.Duration(0)
			if ttcN > 0 {
				meanTTC = (ttcSum / time.Duration(ttcN)).Round(100 * time.Millisecond)
			}
			t.AddRow(fmt.Sprintf("%.0f%%", pen*100), mode, truth, det,
				fmt.Sprintf("%.2f", recall), meanTTC)
		}
	}
	return t
}
