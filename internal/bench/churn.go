package bench

import (
	"context"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
)

// E18ShardChurn measures the membership control plane under live
// subscription streaming: a router over N shards carries active streams
// while one shard drains (its sessions snapshotted and migrated to the
// survivors) and then rejoins (the ring's share migrated back). Reported
// per phase: delivered frames/s and inter-frame gap percentiles — the dip
// churn costs the fleet — plus the remap fraction against the rendezvous
// bound (≤1.5/N; minimality is the reason the ring exists) and the p99
// client-visible migration pause. Stream obituaries must be zero: elastic
// capacity is only real if scaling events are invisible to devices.
func E18ShardChurn() *Report {
	// 10 Hz cadence keeps 512 streams inside the 4-shard fleet's capacity,
	// so the drain/rejoin rows measure churn cost rather than overload.
	return e18ShardChurn(4, 512, 2000, 100*time.Millisecond, 2*time.Second, "full")
}

// e18ShardChurnSmoke is the tiny-parameter variant for plain `go test`
// and arbd-bench -smoke.
func e18ShardChurnSmoke() *Report {
	return e18ShardChurn(2, 8, 300, 20*time.Millisecond, 300*time.Millisecond, "smoke")
}

// churn phases.
const (
	phaseSteady = iota
	phaseDrain
	phaseRejoin
	numChurnPhases
)

var churnPhaseNames = [numChurnPhases]string{"steady (N shards)", "drain (N-1 shards)", "rejoin (N shards)"}

func e18ShardChurn(shards, sessions, numPOIs int, interval, phaseLen time.Duration, config string) *Report {
	discard := log.New(io.Discard, "", 0)
	members := make([]server.Member, 0, shards)
	nodes := make([]*server.Shard, 0, shards)
	for i := 0; i < shards; i++ {
		p, err := core.NewPlatform(core.Config{
			Seed: 18,
			City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
		})
		if err != nil {
			panic(err)
		}
		sh := server.NewShard(p, discard, server.ShardOptions{
			ID:      uint64(i + 1),
			Options: server.Options{Scheduler: server.SchedulerConfig{Deadline: 2 * time.Second}},
		})
		addr, err := sh.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		members = append(members, server.Member{ID: uint64(i + 1), Addr: addr})
		nodes = append(nodes, sh)
	}
	defer func() {
		for _, sh := range nodes {
			_ = sh.Close()
		}
	}()

	rt, err := server.NewRouter(members, discard, nil, server.RouterOptions{Deadline: 2 * time.Second})
	if err != nil {
		panic(err)
	}
	if err := rt.Connect(); err != nil {
		panic(err)
	}
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() { _ = rt.Close() }()

	// Streaming clients: subscribe once, then consume pushes, attributing
	// each frame (and each inter-frame gap) to the phase current at
	// receipt.
	var phase atomic.Int32
	var frames [numChurnPhases]metrics.Counter
	var gaps [numChurnPhases]metrics.Histogram
	var obituaries atomic.Int64
	stop := make(chan struct{})
	ready := make(chan struct{}, sessions)

	rng := sim.NewRand(18)
	var wg sync.WaitGroup
	for c := 0; c < sessions; c++ {
		pos := geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				obituaries.Add(1)
				ready <- struct{}{}
				return
			}
			defer cl.Close()
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: pos, AccuracyM: 5}); err != nil {
				obituaries.Add(1)
				ready <- struct{}{}
				return
			}
			ch, err := cl.Subscribe(context.Background(), server.SubscribeOptions{Interval: interval, Budget: 16})
			if err != nil {
				obituaries.Add(1)
				ready <- struct{}{}
				return
			}
			first := true
			var last time.Time
			for {
				select {
				case <-stop:
					return
				case _, ok := <-ch:
					if !ok {
						// The stream died — under pure churn this must not
						// happen; count it as the failure it is.
						obituaries.Add(1)
						if first {
							ready <- struct{}{}
						}
						return
					}
					now := time.Now()
					if first {
						first = false
						ready <- struct{}{}
					}
					p := phase.Load()
					frames[p].Inc()
					if !last.IsZero() {
						gaps[p].Observe(now.Sub(last))
					}
					last = now
				}
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		<-ready
	}

	migratedCtr := rt.Metrics().Counter("router.sessions.migrated")
	failedCtr := rt.Metrics().Counter("router.migrations.failed")
	pauseHist := rt.Metrics().Histogram("router.migration.pause")
	victim := members[shards-1]

	type phaseRow struct {
		migrated int64
		elapsed  time.Duration
		pauseP99 time.Duration
	}
	var rows [numChurnPhases]phaseRow
	runPhase := func(p int32, change func()) {
		phase.Store(p)
		before := migratedCtr.Value()
		start := time.Now()
		if change != nil {
			change()
		}
		if rem := phaseLen - time.Since(start); rem > 0 {
			time.Sleep(rem)
		}
		rows[p] = phaseRow{
			migrated: migratedCtr.Value() - before,
			elapsed:  time.Since(start),
			pauseP99: pauseHist.Quantile(0.99),
		}
	}

	runPhase(phaseSteady, nil)
	runPhase(phaseDrain, func() {
		if _, err := rt.Drain(victim.ID); err != nil {
			panic(fmt.Sprintf("E18 drain: %v", err))
		}
	})
	runPhase(phaseRejoin, func() {
		if _, err := rt.Join(victim); err != nil {
			panic(fmt.Sprintf("E18 rejoin: %v", err))
		}
	})
	close(stop)
	wg.Wait()

	bound := 1.5 / float64(shards)
	title := fmt.Sprintf("E18: shard churn under streaming (%d sessions, %d→%d→%d shards, %v cadence, %v/phase; remap bound 1.5/N=%.2f, failed migrations %d, stream obituaries %d; pause p99 is cumulative over the transitions so far — the histogram spans the router's lifetime)",
		sessions, shards, shards-1, shards, interval, phaseLen, bound, failedCtr.Value(), obituaries.Load())
	t := metrics.NewTable(title,
		"phase", "frames", "frames/s", "gap p50", "gap p99", "migrated", "remap", "pause p99 (cum)")
	res := NewResult("E18", title, config)
	for p := 0; p < numChurnPhases; p++ {
		snap := gaps[p].Snapshot()
		rate := float64(frames[p].Value()) / rows[p].elapsed.Seconds()
		remap := "—"
		remapFrac := 0.0
		if p != phaseSteady {
			remapFrac = float64(rows[p].migrated) / float64(sessions)
			ok := "≤"
			if remapFrac > bound {
				ok = ">"
			}
			remap = fmt.Sprintf("%.3f (%s%.2f)", remapFrac, ok, bound)
		}
		pause := "—"
		if p != phaseSteady {
			pause = ms(rows[p].pauseP99)
		}
		t.AddRow(churnPhaseNames[p], frames[p].Value(), fmt.Sprintf("%.0f", rate),
			ms(snap.P50), ms(snap.P99), rows[p].migrated, remap, pause)
		res.AddRow("phase="+churnPhaseNames[p],
			M("frames", float64(frames[p].Value()), "count", ""),
			M("frames_per_sec", rate, "1/s", BetterHigher),
			DurMetric("gap_p50", snap.P50, ""),
			DurMetric("gap_p99", snap.P99, ""),
			M("migrated", float64(rows[p].migrated), "count", ""),
			M("remap_fraction", remapFrac, "", ""),
			// Directed: the churn pause is the client-visible cost the
			// control plane exists to bound, so a regression fails the CI
			// gate. Generous tolerance — p99 over a handful of migration
			// pauses is noisy on shared CI boxes.
			DurMetric("pause_p99_cum", rows[p].pauseP99, BetterLower).WithTolerance(1.0),
			M("obituaries", float64(obituaries.Load()), "count", ""),
			M("failed_migrations", float64(failedCtr.Value()), "count", ""),
		)
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}
