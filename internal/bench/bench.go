// Package bench implements the experiment harness: one function per derived
// experiment E1-E20 (see DESIGN.md §3 — the paper is a vision paper with no
// measured evaluation, so each experiment quantifies one of its qualitative
// claims). Each run produces a Report: a rendered table for humans plus a
// typed Result record for the BENCH_*.json perf trajectory. cmd/arbd-bench
// prints the tables (and emits/diffs the JSON records); the root
// bench_test.go wraps the runs in testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"
	"time"

	"arbd/internal/metrics"
)

// Report is the outcome of one experiment run: the human-readable table and
// the machine-readable record set behind it.
type Report struct {
	Table  *metrics.Table
	Result *Result
}

// RunFunc executes an experiment at one scale.
type RunFunc func() *Report

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   RunFunc
	// Smoke is a tiny-parameter variant of Run used by plain `go test`
	// (TestExperimentsSmoke) and the CI perf gate to catch regressions
	// without benchmark-scale runtimes. Experiments cheap enough to run at
	// full size leave it nil, and Smoke falls back to Run.
	Smoke RunFunc
}

// SmokeRun executes the experiment at smoke scale (or full scale when no
// smoke variant exists).
func (e Experiment) SmokeRun() *Report {
	if e.Smoke != nil {
		return e.Smoke()
	}
	return e.Run()
}

// tableOnly adapts a legacy table-returning experiment: the Result is
// derived from the table's typed cells (see DeriveResult).
func tableOnly(id, config string, f func() *metrics.Table) RunFunc {
	return func() *Report {
		t := f()
		return &Report{Table: t, Result: DeriveResult(id, config, t)}
	}
}

// legacy registers a table-returning experiment pair.
func legacy(id, title string, run, smoke func() *metrics.Table) Experiment {
	e := Experiment{ID: id, Title: title, Run: tableOnly(id, "full", run)}
	if smoke != nil {
		e.Smoke = tableOnly(id, "smoke", smoke)
	}
	return e
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		legacy("E1", "ingest throughput (mq)", E1LogIngest, e1LogIngestSmoke),
		legacy("E2", "stream window throughput", E2StreamWindows, e2StreamWindowsSmoke),
		legacy("E3", "incremental vs batch views", E3IncrementalVsBatch, e3IncrementalVsBatchSmoke),
		legacy("E4", "offloading latency/energy", E4Offload, nil),
		legacy("E5", "geo index query latency", E5GeoIndex, e5GeoIndexSmoke),
		legacy("E6", "annotation layout quality", E6Layout, nil),
		legacy("E7", "recommendation lift", E7Recommend, e7RecommendSmoke),
		legacy("E8", "health alert latency", E8HealthAlerts, e8HealthAlertsSmoke),
		legacy("E9", "collision warning recall", E9Traffic, e9TrafficSmoke),
		legacy("E10", "privacy/utility trade-off", E10Privacy, nil),
		legacy("E11", "ARML interpretation cost", E11Interpret, nil),
		legacy("E12", "sketch accuracy vs memory", E12Sketches, e12SketchesSmoke),
		legacy("E13", "Figure 5 influence matrix", E13Influence, nil),
		{ID: "E14", Title: "multi-session throughput", Run: E14MultiSession, Smoke: e14MultiSessionSmoke},
		{ID: "E15", Title: "frame hot path GC pressure", Run: E15GCPressure, Smoke: e15GCPressureSmoke},
		{ID: "E16", Title: "multi-node scale-out", Run: E16ScaleOut, Smoke: e16ScaleOutSmoke},
		{ID: "E17", Title: "stream vs poll frame delivery", Run: E17StreamVsPoll, Smoke: e17StreamVsPollSmoke},
		{ID: "E18", Title: "shard churn under streaming", Run: E18ShardChurn, Smoke: e18ShardChurnSmoke},
		{ID: "E19", Title: "delta vs full streaming", Run: E19DeltaStream, Smoke: e19DeltaStreamSmoke},
		{ID: "E20", Title: "ingest plane throughput", Run: E20IngestThroughput, Smoke: e20IngestSmoke},
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

func idNum(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ms renders a duration as fractional milliseconds for table cells.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

// us renders a duration as fractional microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

// countLabel renders an event count as 1M / 500k / 999 for table titles.
func countLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
