// Package bench implements the experiment harness: one function per derived
// experiment E1-E13 (see DESIGN.md §3 — the paper is a vision paper with no
// measured evaluation, so each experiment quantifies one of its qualitative
// claims). Each function returns a rendered table; cmd/arbd-bench prints
// them and the root bench_test.go wraps them in testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"
	"time"

	"arbd/internal/metrics"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *metrics.Table
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "ingest throughput (mq)", E1LogIngest},
		{"E2", "stream window throughput", E2StreamWindows},
		{"E3", "incremental vs batch views", E3IncrementalVsBatch},
		{"E4", "offloading latency/energy", E4Offload},
		{"E5", "geo index query latency", E5GeoIndex},
		{"E6", "annotation layout quality", E6Layout},
		{"E7", "recommendation lift", E7Recommend},
		{"E8", "health alert latency", E8HealthAlerts},
		{"E9", "collision warning recall", E9Traffic},
		{"E10", "privacy/utility trade-off", E10Privacy},
		{"E11", "ARML interpretation cost", E11Interpret},
		{"E12", "sketch accuracy vs memory", E12Sketches},
		{"E13", "Figure 5 influence matrix", E13Influence},
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

func idNum(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ms renders a duration as fractional milliseconds for table cells.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

// us renders a duration as fractional microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}
