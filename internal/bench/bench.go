// Package bench implements the experiment harness: one function per derived
// experiment E1-E17 (see DESIGN.md §3 — the paper is a vision paper with no
// measured evaluation, so each experiment quantifies one of its qualitative
// claims). Each function returns a rendered table; cmd/arbd-bench prints
// them and the root bench_test.go wraps them in testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"
	"time"

	"arbd/internal/metrics"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *metrics.Table
	// Smoke is a tiny-parameter variant of Run used by plain `go test`
	// (TestExperimentsSmoke) to catch regressions without benchmark-scale
	// runtimes. Experiments cheap enough to run at full size leave it nil,
	// and Smoke falls back to Run.
	Smoke func() *metrics.Table
}

// SmokeRun executes the experiment at smoke scale (or full scale when no
// smoke variant exists).
func (e Experiment) SmokeRun() *metrics.Table {
	if e.Smoke != nil {
		return e.Smoke()
	}
	return e.Run()
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "ingest throughput (mq)", Run: E1LogIngest, Smoke: e1LogIngestSmoke},
		{ID: "E2", Title: "stream window throughput", Run: E2StreamWindows, Smoke: e2StreamWindowsSmoke},
		{ID: "E3", Title: "incremental vs batch views", Run: E3IncrementalVsBatch, Smoke: e3IncrementalVsBatchSmoke},
		{ID: "E4", Title: "offloading latency/energy", Run: E4Offload},
		{ID: "E5", Title: "geo index query latency", Run: E5GeoIndex, Smoke: e5GeoIndexSmoke},
		{ID: "E6", Title: "annotation layout quality", Run: E6Layout},
		{ID: "E7", Title: "recommendation lift", Run: E7Recommend, Smoke: e7RecommendSmoke},
		{ID: "E8", Title: "health alert latency", Run: E8HealthAlerts, Smoke: e8HealthAlertsSmoke},
		{ID: "E9", Title: "collision warning recall", Run: E9Traffic, Smoke: e9TrafficSmoke},
		{ID: "E10", Title: "privacy/utility trade-off", Run: E10Privacy},
		{ID: "E11", Title: "ARML interpretation cost", Run: E11Interpret},
		{ID: "E12", Title: "sketch accuracy vs memory", Run: E12Sketches, Smoke: e12SketchesSmoke},
		{ID: "E13", Title: "Figure 5 influence matrix", Run: E13Influence},
		{ID: "E14", Title: "multi-session throughput", Run: E14MultiSession, Smoke: e14MultiSessionSmoke},
		{ID: "E15", Title: "frame hot path GC pressure", Run: E15GCPressure, Smoke: e15GCPressureSmoke},
		{ID: "E16", Title: "multi-node scale-out", Run: E16ScaleOut, Smoke: e16ScaleOutSmoke},
		{ID: "E17", Title: "stream vs poll frame delivery", Run: E17StreamVsPoll, Smoke: e17StreamVsPollSmoke},
		{ID: "E18", Title: "shard churn under streaming", Run: E18ShardChurn, Smoke: e18ShardChurnSmoke},
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

func idNum(id string) int {
	var n int
	_, _ = fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ms renders a duration as fractional milliseconds for table cells.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

// us renders a duration as fractional microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

// countLabel renders an event count as 1M / 500k / 999 for table titles.
func countLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
