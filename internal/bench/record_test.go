package bench

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"arbd/internal/metrics"
)

func sampleResult() *Result {
	res := NewResult("E15", "sample", "smoke")
	res.GitSHA = "abc123"
	res.AddRow("mode=pooled",
		M("frames_per_sec", 1000, "1/s", BetterHigher).WithTolerance(0.5),
		M("allocs_per_frame", 2.0, "allocs", BetterLower),
		DurMetric("frame_p99", 3*time.Millisecond, ""),
	)
	res.AddRow("mode=alloc",
		M("frames_per_sec", 700, "1/s", BetterHigher),
		M("allocs_per_frame", 27.2, "allocs", BetterLower),
		DurMetric("frame_p99", 9*time.Millisecond, ""),
	)
	res.CaptureRSS()
	return res
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := sampleResult()
	data, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("encoded result missing trailing newline")
	}
	for _, want := range []string{`"schema_version": 1`, `"experiment": "E15"`, `"allocs_per_frame"`, `"frame_p99"`, `"better": "higher"`, `"tolerance": 0.5`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("encoded result missing %q:\n%s", want, data)
		}
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, res)
	}
}

func TestResultFileRoundTrip(t *testing.T) {
	res := sampleResult()
	path := filepath.Join(t.TempDir(), BenchFileName(res.Experiment))
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDecodeRejectsWrongSchemaVersion(t *testing.T) {
	res := sampleResult()
	res.SchemaVersion = SchemaVersion + 1
	data, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(data); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("err = %v, want ErrSchemaVersion", err)
	}
	if _, err := DecodeResult([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON decoded without error")
	}
}

func TestBenchFileName(t *testing.T) {
	if got := BenchFileName("E15"); got != "BENCH_E15.json" {
		t.Fatalf("BenchFileName = %q", got)
	}
}

// TestCompareDeltaMath pins the classification: a directional metric moving
// the wrong way past the threshold is a regression, the right way an
// improvement, inside the threshold ok; undirected metrics are always info.
func TestCompareDeltaMath(t *testing.T) {
	base := NewResult("EX", "t", "smoke")
	base.AddRow("r",
		M("up_regressed", 100, "", BetterHigher),   // drops 20% → regression
		M("up_improved", 100, "", BetterHigher),    // gains 20% → improvement
		M("up_within", 100, "", BetterHigher),      // drops 5%  → ok
		M("down_regressed", 10, "", BetterLower),   // rises 50% → regression
		M("down_improved", 10, "", BetterLower),    // drops 50% → improvement
		M("info_swing", 1, "", ""),                 // triples   → info, never gated
		M("vanished", 5, "", BetterLower),          // absent    → missing, gated
		M("vanished_info", 5, "", ""),              // absent    → info
		M("from_zero", 0, "allocs", BetterLower),   // 0 → 3     → regression
		M("zero_stable", 0, "allocs", BetterLower), // 0 → 0     → ok
		// Tolerance widens the gate per metric: -30% is ok under a 50%
		// tolerance, -60% still regresses.
		M("tol_within", 100, "", BetterHigher).WithTolerance(0.5),
		M("tol_regressed", 100, "", BetterHigher).WithTolerance(0.5),
	)
	cur := NewResult("EX", "t", "smoke")
	cur.AddRow("r",
		M("up_regressed", 80, "", BetterHigher),
		M("up_improved", 120, "", BetterHigher),
		M("up_within", 95, "", BetterHigher),
		M("down_regressed", 15, "", BetterLower),
		M("down_improved", 5, "", BetterLower),
		M("info_swing", 3, "", ""),
		M("from_zero", 3, "allocs", BetterLower),
		M("zero_stable", 0, "allocs", BetterLower),
		// A current run stripping the tolerance cannot tighten or loosen the
		// gate: Compare reads it from the baseline.
		M("tol_within", 70, "", BetterHigher),
		M("tol_regressed", 40, "", BetterHigher),
	)
	cmp, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]string{}
	pcts := map[string]float64{}
	for _, d := range cmp.Deltas {
		classes[d.Metric] = d.Class
		pcts[d.Metric] = d.Pct
	}
	want := map[string]string{
		"up_regressed":   ClassRegression,
		"up_improved":    ClassImprovement,
		"up_within":      ClassOK,
		"down_regressed": ClassRegression,
		"down_improved":  ClassImprovement,
		"info_swing":     ClassInfo,
		"vanished":       ClassMissing,
		"vanished_info":  ClassInfo,
		"from_zero":      ClassRegression,
		"zero_stable":    ClassOK,
		"tol_within":     ClassOK,
		"tol_regressed":  ClassRegression,
	}
	for m, cls := range want {
		if classes[m] != cls {
			t.Errorf("%s classified %q, want %q (pct %v)", m, classes[m], cls, pcts[m])
		}
	}
	if got := pcts["up_regressed"]; math.Abs(got-(-0.20)) > 1e-9 {
		t.Errorf("up_regressed pct = %v, want -0.20", got)
	}
	if !math.IsInf(pcts["from_zero"], 1) {
		t.Errorf("from_zero pct = %v, want +Inf", pcts["from_zero"])
	}
	regs := cmp.Regressions()
	if len(regs) != 5 { // up_regressed, down_regressed, vanished, from_zero, tol_regressed
		t.Fatalf("Regressions() returned %d deltas: %+v", len(regs), regs)
	}
	// The rendered comparison table names every class without panicking.
	out := cmp.Table().String()
	for _, wantStr := range []string{ClassRegression, ClassImprovement, ClassOK, ClassInfo, "missing"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("comparison table missing %q:\n%s", wantStr, out)
		}
	}
}

func TestCompareRejectsMismatchedRuns(t *testing.T) {
	a := NewResult("E14", "t", "smoke")
	b := NewResult("E15", "t", "smoke")
	if _, err := Compare(a, b, 0.1); err == nil {
		t.Fatal("cross-experiment comparison accepted")
	}
	c := NewResult("E14", "t", "full")
	if _, err := Compare(a, c, 0.1); err == nil {
		t.Fatal("cross-config comparison accepted")
	}
}

// TestBaselineGateCatchesInjectedRegression is the acceptance path end to
// end: run E15 at smoke scale, write its BENCH_E15.json, read it back as the
// baseline, then compare "second runs" with injected damage — a 12% allocs/
// frame increase must fail at the default 10% threshold, a frames/s collapse
// past its declared noise tolerance must fail too, and an 8% wobble must pass.
func TestBaselineGateCatchesInjectedRegression(t *testing.T) {
	rep := e15GCPressureSmoke()
	res := rep.Result
	for _, want := range []string{"allocs_per_frame", "frames_per_sec", "frame_p99"} {
		if _, ok := res.Rows[0].Metric(want); !ok {
			t.Fatalf("E15 record missing %q: %+v", want, res.Rows[0])
		}
	}
	path := filepath.Join(t.TempDir(), BenchFileName("E15"))
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}

	scale := func(metric string, factor float64) *Result {
		data, _ := base.Encode()
		cur, _ := DecodeResult(data)
		for i := range cur.Rows {
			for j := range cur.Rows[i].Metrics {
				if cur.Rows[i].Metrics[j].Name == metric {
					cur.Rows[i].Metrics[j].Value *= factor
				}
			}
		}
		return cur
	}
	assertOnly := func(cmp *Comparison, metric string) {
		t.Helper()
		regs := cmp.Regressions()
		if len(regs) == 0 {
			t.Fatalf("injected %s regression not caught by the gate", metric)
		}
		for _, d := range regs {
			if d.Metric != metric {
				t.Fatalf("unexpected regression on %s: %+v", d.Metric, d)
			}
		}
	}

	// A 12% allocs/frame rise breaks the tight 10% gate. The baseline alloc
	// mode allocates ~28/frame so a multiplicative injection moves it well
	// clear of integer jitter.
	cmp, err := Compare(base, scale("allocs_per_frame", 1.12), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	assertOnly(cmp, "allocs_per_frame")

	// frames/s carries a wide host-noise tolerance; a collapse past it (here
	// -75% vs the 60% tolerance) still fails the gate.
	tolM, ok := base.Rows[0].Metric("frames_per_sec")
	if !ok || tolM.Tolerance <= 0.10 {
		t.Fatalf("E15 frames_per_sec should declare a noise tolerance above the global gate: %+v", tolM)
	}
	cmp, err = Compare(base, scale("frames_per_sec", 0.25), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	assertOnly(cmp, "frames_per_sec")

	cmp, err = Compare(base, scale("frames_per_sec", 0.92), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("8%% wobble flagged as regression: %+v", regs)
	}

	// Identity comparison: a run against itself is always clean.
	cmp, err = Compare(base, base, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %+v", regs)
	}
}

// TestDeriveResultFromTable covers the legacy adapter: typed cells (ints,
// floats, durations) and parsable strings become metrics named by their
// column header; unparsable cells are skipped.
func TestDeriveResultFromTable(t *testing.T) {
	tbl := metrics.NewTable("E5: geo index", "index", "n", "p50", "rate", "note")
	tbl.AddRow("rtree", 1000, 12*time.Microsecond, "340.5", "fast")
	tbl.AddRow("scan", 1000, "1.4ms", "12", "93%")
	res := DeriveResult("E5", "full", tbl)
	if res.Experiment != "E5" || res.Config != "full" || res.SchemaVersion != SchemaVersion {
		t.Fatalf("header fields wrong: %+v", res)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	r0, _ := res.Row("index=rtree")
	if r0 == nil {
		t.Fatalf("row names = %v", res.Rows)
	}
	if m, ok := r0.Metric("p50"); !ok || m.Value != 12e-6 || m.Unit != "s" {
		t.Fatalf("duration cell not captured: %+v", r0)
	}
	if m, ok := r0.Metric("rate"); !ok || m.Value != 340.5 {
		t.Fatalf("string float not parsed: %+v", r0)
	}
	if _, ok := r0.Metric("note"); ok {
		t.Fatal("unparsable string became a metric")
	}
	r1, _ := res.Row("index=scan")
	if m, ok := r1.Metric("p50"); !ok || math.Abs(m.Value-0.0014) > 1e-12 {
		t.Fatalf("duration string not parsed: %+v", r1)
	}
	if m, ok := r1.Metric("note"); !ok || m.Value != 93 || m.Unit != "%" {
		t.Fatalf("percentage string not parsed: %+v", r1)
	}
	// Derived metrics never carry a direction: the gate only trusts native
	// records.
	for _, row := range res.Rows {
		for _, m := range row.Metrics {
			if m.Better != "" {
				t.Fatalf("derived metric %s carries direction %q", m.Name, m.Better)
			}
		}
	}
}

func TestRowAndMetricLookup(t *testing.T) {
	res := sampleResult()
	if _, ok := res.Row("mode=missing"); ok {
		t.Fatal("phantom row found")
	}
	row, ok := res.Row("mode=pooled")
	if !ok {
		t.Fatal("row lookup failed")
	}
	if _, ok := row.Metric("nope"); ok {
		t.Fatal("phantom metric found")
	}
	if res.RSSBytes <= 0 {
		t.Fatalf("CaptureRSS recorded %v", res.RSSBytes)
	}
}
