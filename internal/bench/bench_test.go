package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(exps))
	}
	for i, e := range exps {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Sorted E1..E18.
	if exps[0].ID != "E1" || exps[17].ID != "E18" {
		t.Fatalf("order: first=%s last=%s", exps[0].ID, exps[17].ID)
	}
}

// TestE17SmokeShape runs the stream-vs-poll harness end to end at smoke
// scale (a real server and v2 clients over loopback) and checks the table:
// one poll row and one stream row per session count, zero client errors,
// and streaming achieving at least one pushed frame per subscription.
func TestE17SmokeShape(t *testing.T) {
	tbl := e17StreamVsPollSmoke()
	if tbl.NumRows() != 4 { // {1,8} sessions × {poll,stream}
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"mode", "poll", "stream", "p99 jitter", "B/frame", "reads/frame"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	rows := 0
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) < 9 || (fields[1] != "poll" && fields[1] != "stream") {
			continue
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			continue // the title line mentions the modes too
		}
		rows++
		if frames, err := strconv.Atoi(fields[2]); err != nil || frames == 0 {
			t.Fatalf("%s row reports no frames:\n%s", fields[1], out)
		}
		if fields[8] != "0" {
			t.Fatalf("%s row reports %s client errors:\n%s", fields[1], fields[8], out)
		}
	}
	if rows != 4 {
		t.Fatalf("parsed %d data rows, want 4:\n%s", rows, out)
	}
}

// TestE16SmokeShape runs the scale-out smoke harness end to end (a real
// router and shard processes-in-miniature over loopback) and checks the
// table reports one row per shard count with no client errors.
func TestE16SmokeShape(t *testing.T) {
	tbl := e16ScaleOutSmoke()
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"shards", "frames/s", "p99", "shed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) < 7 || (fields[0] != "1" && fields[0] != "2") {
			continue
		}
		if fields[6] != "0" {
			t.Fatalf("shard count %s reported %s client errors:\n%s", fields[0], fields[6], out)
		}
	}
}

func TestE14SweepShape(t *testing.T) {
	// The smoke sweep must report one row per session count with positive
	// throughput; the full sweep's counts are asserted statically.
	tbl := e14MultiSession([]int{1, 4}, 16, 200)
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"sessions", "frames/s", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment")
	}
}

// TestLightExperimentsProduceTables executes the cheap experiments end to
// end; the heavy ones (E1, E2, E5, E12) run in -short mode only via the
// harness binary and root benchmarks.
func TestLightExperimentsProduceTables(t *testing.T) {
	light := []string{"E3", "E4", "E6", "E7", "E10", "E11"}
	if testing.Short() {
		light = []string{"E4", "E6"}
	}
	for _, id := range light {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tbl := e.Run()
		if tbl.NumRows() == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		out := tbl.String()
		if !strings.Contains(out, id) {
			t.Errorf("%s table missing its id in the title:\n%s", id, out)
		}
	}
}

func TestE4ShowsCrossover(t *testing.T) {
	out := E4Offload().String()
	if !strings.Contains(out, "<-- best") {
		t.Fatalf("no chosen placements marked:\n%s", out)
	}
	// 3G must choose local, LAN must not.
	lines := strings.Split(out, "\n")
	var lanBest, threeGBest string
	for _, l := range lines {
		if !strings.Contains(l, "<-- best") {
			continue
		}
		if strings.HasPrefix(l, "lan") {
			lanBest = l
		}
		if strings.HasPrefix(l, "3g") {
			threeGBest = l
		}
	}
	if !strings.Contains(threeGBest, "local") {
		t.Errorf("3G best not local: %q", threeGBest)
	}
	if strings.Contains(lanBest, "local") {
		t.Errorf("LAN best is local: %q", lanBest)
	}
}

func TestE7ContextBeatsPopularity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E7Recommend()
	out := tbl.String()
	// Parse HR@10 per model from the table text.
	hr := map[string]float64{}
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) >= 2 {
			switch fields[0] {
			case "popularity", "item-cf", "item-cf+context":
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					hr[fields[0]] = v
				}
			}
		}
	}
	if hr["item-cf+context"] <= hr["popularity"] {
		t.Fatalf("context HR %.3f not above popularity %.3f\n%s",
			hr["item-cf+context"], hr["popularity"], out)
	}
}
