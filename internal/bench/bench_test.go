package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 20 {
		t.Fatalf("registered %d experiments, want 20", len(exps))
	}
	for i, e := range exps {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Sorted E1..E20.
	if exps[0].ID != "E1" || exps[19].ID != "E20" {
		t.Fatalf("order: first=%s last=%s", exps[0].ID, exps[19].ID)
	}
}

// TestE17SmokeShape runs the stream-vs-poll harness end to end at smoke
// scale (a real server and v2 clients over loopback) and checks both output
// layers: the table (one poll row and one stream row per session count) and
// the typed records (zero client errors, at least one pushed frame, and a
// positive max frame gap wherever gaps were observed).
func TestE17SmokeShape(t *testing.T) {
	rep := e17StreamVsPollSmoke()
	tbl := rep.Table
	if tbl.NumRows() != 4 { // {1,8} sessions × {poll,stream}
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"mode", "poll", "stream", "p99 jitter", "max gap", "B/frame", "reads/frame"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	res := rep.Result
	if len(res.Rows) != 4 {
		t.Fatalf("record rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		frames, ok := row.Metric("frames")
		if !ok || frames.Value == 0 {
			t.Fatalf("%s reports no frames:\n%s", row.Name, out)
		}
		if errs, ok := row.Metric("errors"); !ok || errs.Value != 0 {
			t.Fatalf("%s reports client errors:\n%s", row.Name, out)
		}
		gap, ok := row.Metric("max_gap")
		if !ok {
			t.Fatalf("%s missing max_gap metric", row.Name)
		}
		if frames.Value > 1 && gap.Value <= 0 {
			t.Fatalf("%s observed %v frames but max_gap = %v", row.Name, frames.Value, gap.Value)
		}
		if rate, ok := row.Metric("frames_per_sec"); !ok || rate.Better != BetterHigher {
			t.Fatalf("%s frames_per_sec not marked higher-is-better", row.Name)
		}
	}
}

// TestE16SmokeShape runs the scale-out smoke harness end to end (a real
// router and shard processes-in-miniature over loopback) and checks the
// table reports one row per shard count with no client errors.
func TestE16SmokeShape(t *testing.T) {
	tbl := e16ScaleOutSmoke().Table
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"shards", "frames/s", "p99", "shed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) < 7 || (fields[0] != "1" && fields[0] != "2") {
			continue
		}
		if fields[6] != "0" {
			t.Fatalf("shard count %s reported %s client errors:\n%s", fields[0], fields[6], out)
		}
	}
}

func TestE14SweepShape(t *testing.T) {
	// The smoke sweep must report one row per session count with positive
	// throughput; the full sweep's counts are asserted statically.
	tbl := e14MultiSession([]int{1, 4}, 16, 200, 1, "smoke").Table
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"sessions", "frames/s", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment")
	}
}

// TestLightExperimentsProduceTables executes the cheap experiments end to
// end; the heavy ones (E1, E2, E5, E12) run in -short mode only via the
// harness binary and root benchmarks.
func TestLightExperimentsProduceTables(t *testing.T) {
	light := []string{"E3", "E4", "E6", "E7", "E10", "E11"}
	if testing.Short() {
		light = []string{"E4", "E6"}
	}
	for _, id := range light {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		rep := e.Run()
		if rep.Table.NumRows() == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		out := rep.Table.String()
		if !strings.Contains(out, id) {
			t.Errorf("%s table missing its id in the title:\n%s", id, out)
		}
	}
}

func TestE4ShowsCrossover(t *testing.T) {
	out := E4Offload().String()
	if !strings.Contains(out, "<-- best") {
		t.Fatalf("no chosen placements marked:\n%s", out)
	}
	// 3G must choose local, LAN must not.
	lines := strings.Split(out, "\n")
	var lanBest, threeGBest string
	for _, l := range lines {
		if !strings.Contains(l, "<-- best") {
			continue
		}
		if strings.HasPrefix(l, "lan") {
			lanBest = l
		}
		if strings.HasPrefix(l, "3g") {
			threeGBest = l
		}
	}
	if !strings.Contains(threeGBest, "local") {
		t.Errorf("3G best not local: %q", threeGBest)
	}
	if strings.Contains(lanBest, "local") {
		t.Errorf("LAN best is local: %q", lanBest)
	}
}

func TestE7ContextBeatsPopularity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl := E7Recommend()
	out := tbl.String()
	// Parse HR@10 per model from the table text.
	hr := map[string]float64{}
	for _, l := range strings.Split(out, "\n") {
		fields := strings.Fields(l)
		if len(fields) >= 2 {
			switch fields[0] {
			case "popularity", "item-cf", "item-cf+context":
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					hr[fields[0]] = v
				}
			}
		}
	}
	if hr["item-cf+context"] <= hr["popularity"] {
		t.Fatalf("context HR %.3f not above popularity %.3f\n%s",
			hr["item-cf+context"], hr["popularity"], out)
	}
}
