package bench

import (
	"fmt"
	"io"
	"log"
	"strings"
	"sync"
	"time"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/sim"
)

// E16ScaleOut measures the multi-node frontend: one router fronting 1/2/4
// shard nodes over loopback TCP, driven by concurrent protocol clients.
// Each shard's frame scheduler is pinned to one worker, emulating a fixed
// per-node compute budget, so aggregate frames/s growing with the shard
// count is the scale-out property itself rather than incidental
// parallelism — the paper's horizontal-scale assumption (CloudRiDAR-style
// offload across nodes, §4.1) made measurable. Compare against E14 for the
// single-process ceiling.
func E16ScaleOut() *Report {
	return e16ScaleOut([]int{1, 2, 4}, 512, 2000, 3*time.Second, "full")
}

// e16ScaleOutSmoke is the tiny-parameter variant for plain `go test` and
// arbd-bench -smoke.
func e16ScaleOutSmoke() *Report {
	return e16ScaleOut([]int{1, 2}, 8, 300, 250*time.Millisecond, "smoke")
}

func e16ScaleOut(shardCounts []int, sessions, numPOIs int, duration time.Duration, config string) *Report {
	title := fmt.Sprintf("E16: multi-node scale-out (router × N shards, %d sessions, %d POIs, 1 worker/shard, %v/point)",
		sessions, numPOIs, duration)
	t := metrics.NewTable(title, "shards", "frames", "frames/s", "p50", "p99", "shed", "errors")
	res := NewResult("E16", title, config)
	for _, n := range shardCounts {
		row := runScaleOut(n, sessions, numPOIs, duration)
		t.AddRow(n, row.frames, fmt.Sprintf("%.0f", row.rate),
			ms(row.p50), ms(row.p99), row.shed, row.errors)
		res.AddRow(fmt.Sprintf("shards=%d", n),
			M("frames", float64(row.frames), "count", ""),
			M("frames_per_sec", row.rate, "1/s", BetterHigher),
			DurMetric("rtt_p50", row.p50, ""),
			DurMetric("rtt_p99", row.p99, ""),
			M("shed", float64(row.shed), "count", ""),
			M("errors", float64(row.errors), "count", ""),
		)
	}
	res.CaptureRSS()
	return &Report{Table: t, Result: res}
}

type scaleOutResult struct {
	frames   int64
	rate     float64
	p50, p99 time.Duration
	shed     int64
	errors   int64
}

// scaleOutCluster is a router plus in-process shard nodes wired over
// loopback TCP — the E16 harness and the router integration tests share it.
func runScaleOut(shards, sessions, numPOIs int, duration time.Duration) scaleOutResult {
	discard := log.New(io.Discard, "", 0)
	members := make([]server.Member, 0, shards)
	nodes := make([]*server.Shard, 0, shards)
	for i := 0; i < shards; i++ {
		p, err := core.NewPlatform(core.Config{
			Seed: 16,
			City: geo.CityConfig{Center: benchCenter, RadiusM: 2000, NumPOIs: numPOIs, TallRatio: 0.2},
		})
		if err != nil {
			panic(err)
		}
		sh := server.NewShard(p, discard, server.ShardOptions{
			ID: uint64(i + 1),
			// One worker per shard: per-node compute is the unit of
			// scale-out. A generous deadline keeps shedding an overload
			// signal rather than steady-state behaviour.
			Options: server.Options{Scheduler: server.SchedulerConfig{Workers: 1, Deadline: 2 * time.Second}},
		})
		addr, err := sh.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		members = append(members, server.Member{ID: uint64(i + 1), Addr: addr})
		nodes = append(nodes, sh)
	}
	defer func() {
		for _, sh := range nodes {
			_ = sh.Close()
		}
	}()

	rt, err := server.NewRouter(members, discard, nil, server.RouterOptions{Deadline: 2 * time.Second})
	if err != nil {
		panic(err)
	}
	if err := rt.Connect(); err != nil {
		panic(err)
	}
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() { _ = rt.Close() }()

	var (
		hist    metrics.Histogram
		frames  metrics.Counter
		shedCtr metrics.Counter
		errsCtr metrics.Counter
		wg      sync.WaitGroup
	)
	rng := sim.NewRand(16)
	positions := make([]geo.Point, sessions)
	for i := range positions {
		positions[i] = geo.Destination(benchCenter, rng.Uniform(0, 360), rng.Float64()*1500)
	}
	start := time.Now()
	deadline := start.Add(duration)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errsCtr.Inc()
				return
			}
			defer cl.Close()
			if err := cl.SendGPS(sensor.GPSFix{Time: time.Now(), Position: positions[c], AccuracyM: 5}); err != nil {
				errsCtr.Inc()
				return
			}
			for time.Now().Before(deadline) {
				_, rtt, err := cl.RequestFrame()
				switch {
				case err == nil:
					hist.Observe(rtt)
					frames.Inc()
				case strings.Contains(err.Error(), server.ErrFrameShed.Error()):
					shedCtr.Inc()
				default:
					errsCtr.Inc()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	snap := hist.Snapshot()
	return scaleOutResult{
		frames: frames.Value(),
		rate:   float64(frames.Value()) / wall.Seconds(),
		p50:    snap.P50,
		p99:    snap.P99,
		shed:   shedCtr.Value(),
		errors: errsCtr.Value(),
	}
}
