package cluster

import (
	"errors"
	"testing"
	"time"

	"arbd/internal/sim"
)

func newTestCluster(t *testing.T) (*Cluster, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(sim.NewVirtualClock(time.Time{}))
	c := New(sched, 1)
	for _, n := range []Node{
		{ID: "a", Class: ClassMobile, SpeedFactor: 1},
		{ID: "b", Class: ClassCloud, SpeedFactor: 32},
	} {
		if err := c.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Connect("a", "b", ProfileLAN); err != nil {
		t.Fatal(err)
	}
	return c, sched
}

func TestAddNodeDuplicate(t *testing.T) {
	c, _ := newTestCluster(t)
	if err := c.AddNode(Node{ID: "a"}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestConnectUnknownNode(t *testing.T) {
	c, _ := newTestCluster(t)
	if err := c.Connect("a", "ghost", ProfileLAN); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendDeliversAfterLinkDelay(t *testing.T) {
	c, sched := newTestCluster(t)
	var got *Message
	c.Handle("b", func(m Message) { got = &m })
	payload := make([]byte, 125000) // 1 Mbit over 1000 Mbps = 1 ms
	if err := c.Send("a", "b", payload); err != nil {
		t.Fatal(err)
	}
	sched.Drain(10)
	if got == nil {
		t.Fatal("message not delivered")
	}
	lat := got.Arrived.Sub(got.SentAt)
	// base = RTT/2 (0.25ms) + 1ms serialisation, ±10% jitter.
	if lat < 800*time.Microsecond || lat > 1700*time.Microsecond {
		t.Fatalf("latency = %v, want ~1.25ms", lat)
	}
	if got.From != "a" || got.To != "b" || len(got.Payload) != 125000 {
		t.Fatalf("message = %+v", got)
	}
	delivered, dropped := c.Stats()
	if delivered != 1 || dropped != 0 {
		t.Fatalf("stats = %d, %d", delivered, dropped)
	}
}

func TestSendErrors(t *testing.T) {
	c, _ := newTestCluster(t)
	if err := c.Send("ghost", "b", nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("unknown sender: %v", err)
	}
	if err := c.Send("a", "ghost", nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("unknown receiver: %v", err)
	}
	c2 := New(sim.NewScheduler(sim.NewVirtualClock(time.Time{})), 1)
	_ = c2.AddNode(Node{ID: "x"})
	_ = c2.AddNode(Node{ID: "y"})
	if err := c2.Send("x", "y", nil); !errors.Is(err, ErrNoLink) {
		t.Fatalf("no link: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	c, sched := newTestCluster(t)
	delivered := 0
	c.Handle("b", func(Message) { delivered++ })
	c.Partition("a", "b")
	if err := c.Send("a", "b", []byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send through partition: %v", err)
	}
	c.Heal("a", "b")
	if err := c.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sched.Drain(10)
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	_, dropped := c.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c, sched := newTestCluster(t)
	var got []byte
	c.Handle("b", func(m Message) { got = m.Payload })
	buf := []byte("original")
	_ = c.Send("a", "b", buf)
	buf[0] = 'X'
	sched.Drain(10)
	if string(got) != "original" {
		t.Fatalf("payload aliased: %q", got)
	}
}

func TestProfileOneWayScalesWithSize(t *testing.T) {
	small := Profile3G.OneWay(100, nil)
	large := Profile3G.OneWay(1_000_000, nil)
	if large <= small {
		t.Fatalf("transfer time not increasing: %v vs %v", small, large)
	}
	// 1 MB over 2 Mbps = 4 s serialisation + 60ms propagation.
	if large < 3*time.Second || large > 6*time.Second {
		t.Fatalf("1MB over 3G = %v, want ~4s", large)
	}
}

func TestProfileOrdering(t *testing.T) {
	// Same payload must be strictly slower on slower profiles.
	const bytes = 200_000
	profiles := []Profile{ProfileLoopback, ProfileLAN, ProfileWiFi, ProfileLTE, Profile3G}
	prev := time.Duration(-1)
	for _, p := range profiles {
		d := p.OneWay(bytes, nil)
		if d <= prev {
			t.Fatalf("%s (%v) not slower than previous (%v)", p.Name, d, prev)
		}
		prev = d
	}
}

func TestNodeExecTimeScalesWithSpeed(t *testing.T) {
	mobile := Node{SpeedFactor: 1}
	cloud := Node{SpeedFactor: 32}
	work := 2e9 // one second on mobile
	tm := mobile.ExecTime(work)
	tc := cloud.ExecTime(work)
	if tm != time.Second {
		t.Fatalf("mobile exec = %v, want 1s", tm)
	}
	if tc < tm/40 || tc > tm/25 {
		t.Fatalf("cloud exec = %v, want ~1/32 of mobile", tc)
	}
	dead := Node{SpeedFactor: 0}
	if dead.ExecTime(1) < time.Hour {
		t.Fatal("zero-speed node finished work")
	}
}

func TestEnergyModel(t *testing.T) {
	n := Node{ActiveWatts: 2, IdleWatts: 0.5, TxWatts: 1.5}
	if got := n.ComputeEnergyJoules(2 * time.Second); got != 4 {
		t.Fatalf("compute energy = %v", got)
	}
	if got := n.IdleEnergyJoules(4 * time.Second); got != 2 {
		t.Fatalf("idle energy = %v", got)
	}
	if got := n.RadioEnergyJoules(2 * time.Second); got != 3 {
		t.Fatalf("radio energy = %v", got)
	}
}

func TestStandardDeployment(t *testing.T) {
	sched := sim.NewScheduler(sim.NewVirtualClock(time.Time{}))
	c, err := StandardDeployment(sched, 7, ProfileWiFi)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mobile", "edge", "cloud"} {
		if _, err := c.Node(id); err != nil {
			t.Fatalf("missing node %s: %v", id, err)
		}
	}
	me, err := c.Link("mobile", "edge")
	if err != nil || me.Name != "wifi" {
		t.Fatalf("mobile-edge link = %+v, %v", me, err)
	}
	mc, err := c.Link("mobile", "cloud")
	if err != nil {
		t.Fatal(err)
	}
	if mc.RTT <= me.RTT {
		t.Fatal("cloud path not slower than edge path")
	}
	// Messages flow end to end.
	got := 0
	c.Handle("cloud", func(Message) { got++ })
	if err := c.Send("mobile", "cloud", []byte("frame")); err != nil {
		t.Fatal(err)
	}
	sched.Drain(10)
	if got != 1 {
		t.Fatal("mobile->cloud message lost")
	}
}

func TestClassStrings(t *testing.T) {
	for _, c := range []Class{ClassMobile, ClassEdge, ClassCloud} {
		if c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
	if Class(9).String() != "class(9)" {
		t.Fatal("unknown class format")
	}
}
