// Package cluster simulates the cloud/edge infrastructure the paper's §4.1
// offloading argument assumes (CloudRiDAR [13]): heterogeneous compute nodes
// (mobile, edge, cloud), parameterised network links (LAN/WiFi/LTE/3G), a
// message-passing RPC layer over a discrete-event scheduler, and failure
// injection. Latency and energy are modelled deterministically from seeded
// randomness so experiments are reproducible (DESIGN.md substitution table).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"arbd/internal/sim"
)

// Cluster errors.
var (
	ErrNoNode      = errors.New("cluster: node does not exist")
	ErrNodeExists  = errors.New("cluster: node already exists")
	ErrPartitioned = errors.New("cluster: link partitioned")
	ErrNoLink      = errors.New("cluster: no link between nodes")
)

// Profile describes a network link class.
type Profile struct {
	Name          string
	RTT           time.Duration // round-trip propagation latency
	BandwidthMbps float64       // payload throughput
	JitterFrac    float64       // multiplicative jitter on each transfer
}

// Standard link profiles, parameterised from published mobile-network
// measurements (order-of-magnitude, which is all the offload crossover
// shapes need).
var (
	ProfileLoopback = Profile{Name: "loopback", RTT: 50 * time.Microsecond, BandwidthMbps: 10000, JitterFrac: 0.05}
	ProfileLAN      = Profile{Name: "lan", RTT: 500 * time.Microsecond, BandwidthMbps: 1000, JitterFrac: 0.1}
	ProfileWiFi     = Profile{Name: "wifi", RTT: 5 * time.Millisecond, BandwidthMbps: 100, JitterFrac: 0.2}
	ProfileLTE      = Profile{Name: "lte", RTT: 35 * time.Millisecond, BandwidthMbps: 20, JitterFrac: 0.3}
	Profile3G       = Profile{Name: "3g", RTT: 120 * time.Millisecond, BandwidthMbps: 2, JitterFrac: 0.4}
)

// OneWay returns the time to move payloadBytes across the link once:
// half an RTT of propagation plus serialisation at the link bandwidth,
// jittered. A nil rng yields the deterministic mean.
func (p Profile) OneWay(payloadBytes int, rng *sim.Rand) time.Duration {
	ser := time.Duration(float64(payloadBytes*8) / (p.BandwidthMbps * 1e6) * float64(time.Second))
	base := p.RTT/2 + ser
	if rng == nil || p.JitterFrac <= 0 {
		return base
	}
	return time.Duration(rng.Jitter(float64(base), p.JitterFrac))
}

// Class tiers a node's compute capability. Enums start at 1.
type Class int

// Node classes.
const (
	ClassMobile Class = iota + 1
	ClassEdge
	ClassCloud
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassMobile:
		return "mobile"
	case ClassEdge:
		return "edge"
	case ClassCloud:
		return "cloud"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// baseOpsPerSecond is the throughput of a SpeedFactor-1.0 node. The absolute
// value is arbitrary; ratios between node classes drive every result.
const baseOpsPerSecond = 2e9

// Node is one compute element.
type Node struct {
	ID    string
	Class Class
	// SpeedFactor scales compute throughput relative to the mobile
	// baseline (mobile ≈ 1, edge ≈ 4-8, cloud ≈ 16-64).
	SpeedFactor float64
	// ActiveWatts and IdleWatts drive the device energy model used by the
	// offloading experiments (battery life is one of the paper's §4
	// practical barriers).
	ActiveWatts float64
	IdleWatts   float64
	// TxWatts is radio transmit power draw during network transfers.
	TxWatts float64
}

// ExecTime returns how long ops operations take on this node.
func (n Node) ExecTime(ops float64) time.Duration {
	if n.SpeedFactor <= 0 {
		return time.Duration(math31)
	}
	return time.Duration(ops / (n.SpeedFactor * baseOpsPerSecond) * float64(time.Second))
}

const math31 = 1<<62 - 1 // effectively infinite duration for a dead node

// ComputeEnergyJoules returns device energy burned computing for d at active
// power.
func (n Node) ComputeEnergyJoules(d time.Duration) float64 {
	return n.ActiveWatts * d.Seconds()
}

// RadioEnergyJoules returns device energy burned transmitting/receiving for
// d.
func (n Node) RadioEnergyJoules(d time.Duration) float64 {
	return n.TxWatts * d.Seconds()
}

// IdleEnergyJoules returns device energy burned waiting for d.
func (n Node) IdleEnergyJoules(d time.Duration) float64 {
	return n.IdleWatts * d.Seconds()
}

// Message is a delivered RPC payload.
type Message struct {
	From    string
	To      string
	Payload []byte
	SentAt  time.Time
	Arrived time.Time
}

// Cluster is a set of nodes plus links, driven by a discrete-event
// scheduler. Not safe for concurrent use: discrete-event simulations run
// single-threaded by design.
type Cluster struct {
	sched *sim.Scheduler
	rng   *sim.Rand

	mu         sync.Mutex
	nodes      map[string]*Node
	links      map[string]Profile // key: a+"|"+b with a<b
	partitions map[string]bool
	handlers   map[string]func(Message)
	delivered  int64
	dropped    int64
}

// New returns a cluster driven by the given scheduler and seed.
func New(sched *sim.Scheduler, seed int64) *Cluster {
	return &Cluster{
		sched:      sched,
		rng:        sim.NewRand(seed).Child("cluster"),
		nodes:      make(map[string]*Node),
		links:      make(map[string]Profile),
		partitions: make(map[string]bool),
		handlers:   make(map[string]func(Message)),
	}
}

// AddNode registers a node.
func (c *Cluster) AddNode(n Node) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %q", ErrNodeExists, n.ID)
	}
	cp := n
	c.nodes[n.ID] = &cp
	return nil
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id string) (Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return Node{}, fmt.Errorf("%w: %q", ErrNoNode, id)
	}
	return *n, nil
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Connect installs a bidirectional link between two nodes.
func (c *Cluster) Connect(a, b string, p Profile) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[a]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, a)
	}
	if _, ok := c.nodes[b]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, b)
	}
	c.links[linkKey(a, b)] = p
	return nil
}

// Link returns the profile of the a-b link.
func (c *Cluster) Link(a, b string) (Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.links[linkKey(a, b)]
	if !ok {
		return Profile{}, fmt.Errorf("%w: %s-%s", ErrNoLink, a, b)
	}
	return p, nil
}

// Partition severs the a-b link until Heal.
func (c *Cluster) Partition(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partitions[linkKey(a, b)] = true
}

// Heal restores the a-b link.
func (c *Cluster) Heal(a, b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.partitions, linkKey(a, b))
}

// Handle registers the message handler for a node. Handlers run inside
// scheduler events.
func (c *Cluster) Handle(nodeID string, fn func(Message)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers[nodeID] = fn
}

// Send schedules delivery of payload from one node to another across their
// link. Delivery invokes the destination handler after the simulated
// transfer time. Send fails fast on unknown nodes, missing links, or
// partitions.
func (c *Cluster) Send(from, to string, payload []byte) error {
	c.mu.Lock()
	if _, ok := c.nodes[from]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoNode, from)
	}
	if _, ok := c.nodes[to]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoNode, to)
	}
	key := linkKey(from, to)
	link, ok := c.links[key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s-%s", ErrNoLink, from, to)
	}
	if c.partitions[key] {
		c.dropped++
		c.mu.Unlock()
		return fmt.Errorf("%w: %s-%s", ErrPartitioned, from, to)
	}
	delay := link.OneWay(len(payload), c.rng)
	sentAt := c.sched.Clock().Now()
	body := append([]byte(nil), payload...)
	c.mu.Unlock()

	c.sched.After(delay, func(now time.Time) {
		c.mu.Lock()
		h := c.handlers[to]
		c.delivered++
		c.mu.Unlock()
		if h != nil {
			h(Message{From: from, To: to, Payload: body, SentAt: sentAt, Arrived: now})
		}
	})
	return nil
}

// Stats returns delivered and dropped message counts.
func (c *Cluster) Stats() (delivered, dropped int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered, c.dropped
}

// StandardDeployment builds the canonical three-tier deployment used by the
// offloading experiments: one mobile device, one edge server one hop away,
// one cloud datacentre, with the device-to-infrastructure link given by
// accessLink (WiFi/LTE/3G) and edge-to-cloud on a fast backbone.
func StandardDeployment(sched *sim.Scheduler, seed int64, accessLink Profile) (*Cluster, error) {
	c := New(sched, seed)
	nodes := []Node{
		{ID: "mobile", Class: ClassMobile, SpeedFactor: 1, ActiveWatts: 2.5, IdleWatts: 0.8, TxWatts: 1.8},
		{ID: "edge", Class: ClassEdge, SpeedFactor: 6, ActiveWatts: 65, IdleWatts: 20, TxWatts: 5},
		{ID: "cloud", Class: ClassCloud, SpeedFactor: 32, ActiveWatts: 250, IdleWatts: 80, TxWatts: 10},
	}
	for _, n := range nodes {
		if err := c.AddNode(n); err != nil {
			return nil, err
		}
	}
	if err := c.Connect("mobile", "edge", accessLink); err != nil {
		return nil, err
	}
	// The cloud path rides the same access link plus a backbone hop, which
	// we approximate by adding backbone RTT to the access profile.
	cloudLink := accessLink
	cloudLink.Name = accessLink.Name + "+wan"
	cloudLink.RTT += 40 * time.Millisecond
	if err := c.Connect("mobile", "cloud", cloudLink); err != nil {
		return nil, err
	}
	if err := c.Connect("edge", "cloud", Profile{Name: "backbone", RTT: 40 * time.Millisecond, BandwidthMbps: 10000, JitterFrac: 0.05}); err != nil {
		return nil, err
	}
	return c, nil
}
