// Package sim provides the deterministic simulation substrate used by every
// other package in the repository: a controllable clock, seeded random
// streams, and a discrete-event scheduler.
//
// All randomness and all notion of "now" in the platform flows through this
// package so that tests, examples, and benchmarks are reproducible run to
// run. Production deployments swap in RealClock; simulations and tests use
// VirtualClock and drive time explicitly.
package sim

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so simulated and wall-clock components share code.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
	// Since returns the elapsed duration from t to Now.
	Since(t time.Time) time.Duration
}

// RealClock is a Clock backed by the system wall clock.
type RealClock struct{}

var _ Clock = RealClock{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) }

// VirtualClock is a deterministic Clock that only moves when told to.
// The zero value is not ready to use; construct with NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*VirtualClock)(nil)

// Epoch is the default start instant for virtual clocks: a fixed, arbitrary
// date so that timestamps in test output are stable.
var Epoch = time.Date(2017, 6, 5, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a VirtualClock starting at the given instant. If
// start is the zero time, the clock starts at Epoch.
func NewVirtualClock(start time.Time) *VirtualClock {
	if start.IsZero() {
		start = Epoch
	}
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d and returns the new instant.
// Advancing by a negative duration is a no-op.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// SetNow jumps the clock to t if t is not before the current instant.
// It reports whether the jump was applied.
func (c *VirtualClock) SetNow(t time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		return false
	}
	c.now = t
	return true
}

// Event is a scheduled callback in a discrete-event simulation.
type Event struct {
	At  time.Time
	Run func(now time.Time)

	seq int64
}

// Scheduler is a discrete-event executor bound to a VirtualClock. Events run
// in timestamp order (ties broken by scheduling order); running an event may
// schedule further events. Scheduler is not safe for concurrent use: drive
// it from a single goroutine, which is the point of discrete-event
// simulation.
type Scheduler struct {
	clock  *VirtualClock
	queue  []*Event
	nextID int64
}

// NewScheduler returns a Scheduler driving the given clock.
func NewScheduler(clock *VirtualClock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *VirtualClock { return s.clock }

// At schedules fn to run at the absolute instant t. Events scheduled in the
// past run immediately on the next Step at the current clock time.
func (s *Scheduler) At(t time.Time, fn func(now time.Time)) {
	s.nextID++
	ev := &Event{At: t, Run: fn, seq: s.nextID}
	s.queue = append(s.queue, ev)
	s.siftUp(len(s.queue) - 1)
}

// After schedules fn to run d after the current clock instant.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) {
	s.At(s.clock.Now().Add(d), fn)
}

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event ran.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.pop()
	if ev.At.After(s.clock.Now()) {
		s.clock.SetNow(ev.At)
	}
	ev.Run(s.clock.Now())
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is after the deadline. It returns the number of events executed.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for len(s.queue) > 0 && !s.queue[0].At.After(deadline) {
		if !s.Step() {
			break
		}
		n++
	}
	if s.clock.Now().Before(deadline) {
		s.clock.SetNow(deadline)
	}
	return n
}

// Drain executes all pending events (including ones scheduled while
// draining) up to a safety limit, returning the number executed. The limit
// guards against runaway self-rescheduling loops in tests.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for len(s.queue) > 0 && n < limit {
		s.Step()
		n++
	}
	return n
}

// pop removes and returns the earliest event (min-heap on At, then seq).
func (s *Scheduler) pop() *Event {
	top := s.queue[0]
	last := len(s.queue) - 1
	s.queue[0] = s.queue[last]
	s.queue = s.queue[:last]
	if len(s.queue) > 0 {
		s.siftDown(0)
	}
	return top
}

func (s *Scheduler) less(i, j int) bool {
	a, b := s.queue[i], s.queue[j]
	if a.At.Equal(b.At) {
		return a.seq < b.seq
	}
	return a.At.Before(b.At)
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.queue)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		s.queue[i], s.queue[smallest] = s.queue[smallest], s.queue[i]
		i = smallest
	}
}

// Pending returns the timestamps of all queued events in ascending order.
// It is intended for tests and debugging.
func (s *Scheduler) Pending() []time.Time {
	out := make([]time.Time, len(s.queue))
	for i, ev := range s.queue {
		out[i] = ev.At
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
