package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministicBySeed(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 identical draws across different seeds", same)
	}
}

func TestChildStreamsIndependentAndStable(t *testing.T) {
	root := NewRand(7)
	c1 := root.Child("gps")
	c2 := root.Child("imu")
	c1b := NewRand(7).Child("gps")
	if c1.Int63() != c1b.Int63() {
		t.Fatal("same (seed, name) child produced different sequences")
	}
	if c1.Seed() == c2.Seed() {
		t.Fatal("different child names produced equal seeds")
	}
}

func TestUniformInRange(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := NewRand(seed)
		v := r.Uniform(-3, 9)
		return v >= -3 && v < 9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(123)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(99)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(4) // mean 0.25
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.02 {
		t.Fatalf("exp mean = %.4f, want ~0.25", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(5)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("Bool(0.3) hit rate = %.3f", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	z := r.NewZipf(1.2, 1000)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500]+counts[501]+counts[502] {
		t.Fatalf("zipf not skewed: head=%d mid3=%d", counts[0], counts[500]+counts[501]+counts[502])
	}
	if z.N() != 1000 {
		t.Fatalf("N = %d, want 1000", z.N())
	}
}

func TestPick(t *testing.T) {
	r := NewRand(3)
	vals := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, vals)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick only ever chose %v", seen)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if got := r.Jitter(100, 0); got != 100 {
		t.Fatalf("Jitter with f=0 changed value: %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestShuffleAndPermArePermutations(t *testing.T) {
	r := NewRand(21)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = i
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 190 {
		t.Fatalf("Shuffle lost elements, sum=%d", sum)
	}
}

// TestRestoreRandResumesStream pins the snapshot contract migration leans
// on: (seed, Draws()) restores a stream whose future output is identical
// to the original's, even after helpers that consume a variable number of
// underlying draws (Norm, Exp, Perm, rejection-sampled Intn).
func TestRestoreRandResumesStream(t *testing.T) {
	r := NewRand(99)
	_ = r.Float64()
	_ = r.Norm(0, 2)
	_ = r.Exp(3)
	_ = r.Perm(17)
	_ = r.Intn(1000)
	_ = r.Uniform(-5, 5)
	draws := r.Draws()
	if draws == 0 {
		t.Fatal("no draws counted")
	}

	clone := RestoreRand(99, draws)
	if clone.Draws() != draws {
		t.Fatalf("restored Draws() = %d, want %d", clone.Draws(), draws)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Float64(), clone.Float64(); a != b {
			t.Fatalf("stream diverged at %d: %v vs %v", i, a, b)
		}
		if a, b := r.Norm(1, 3), clone.Norm(1, 3); a != b {
			t.Fatalf("norm diverged at %d: %v vs %v", i, a, b)
		}
	}
	if r.Draws() != clone.Draws() {
		t.Fatalf("draw counters diverged: %d vs %d", r.Draws(), clone.Draws())
	}
}
