package sim

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random stream. It wraps math/rand with helpers the
// simulators need (gaussian noise, exponential inter-arrival, zipfian keys)
// and supports deriving independent child streams so each component gets its
// own sequence without global coupling. A stream's position is snapshotable
// as (seed, draw count) — see Draws and RestoreRand — which is what lets a
// migrating session carry its RNG stream to another node byte-for-byte.
type Rand struct {
	rng  *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the math/rand source and counts state advances.
// Both Int63 and Uint64 advance the underlying generator by exactly one
// step, so the count alone (with the seed) pins the stream position: a
// restore replays count steps regardless of which methods consumed them.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// NewRand returns a stream seeded with seed. Equal seeds yield equal
// sequences.
func NewRand(seed int64) *Rand {
	// rand.NewSource's result implements Source64 (documented); counting at
	// the source level sees every state advance, including the variable
	// number of draws behind Norm/Exp/Perm.
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{rng: rand.New(src), src: src, seed: seed}
}

// Seed returns the seed this stream was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Draws returns how many times the underlying generator has advanced.
// (seed, draws) identifies the stream position exactly.
func (r *Rand) Draws() uint64 { return r.src.n }

// RestoreRand returns a stream positioned as if draws values had already
// been consumed from NewRand(seed): the next value equals what the
// original stream would produce next. Replay cost is O(draws) — cheap for
// the per-session streams that snapshot (a session draws only for privacy
// noise), and irrelevant for bulk simulation streams, which never do.
func RestoreRand(seed int64, draws uint64) *Rand {
	r := NewRand(seed)
	for i := uint64(0); i < draws; i++ {
		_ = r.src.src.Uint64() // advance the inner source without recounting
	}
	r.src.n = draws
	return r
}

// Child derives an independent stream identified by name. The same
// (seed, name) pair always yields the same child sequence.
func (r *Rand) Child(name string) *Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return NewRand(r.seed ^ h)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return r.rng.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// Uniform returns a pseudo-random float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.rng.Float64()
}

// Norm returns a gaussian sample with the given mean and standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.rng.NormFloat64()
}

// Exp returns an exponential sample with the given rate (events per unit
// time). Useful for Poisson inter-arrival times. It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp rate must be positive")
	}
	return r.rng.ExpFloat64() / rate
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.rng.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.rng.Shuffle(n, swap) }

// Zipf draws integers in [0, n) with a zipfian distribution of exponent s
// (s > 1 for heavier skew toward small values). The zero-allocation
// construction of rand.Zipf is hidden behind a small cache keyed by (n, s).
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf returns a zipfian sampler over [0, n) with skew s (must be > 1).
func (r *Rand) NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: Zipf n must be positive")
	}
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(r.rng, s, 1, uint64(n-1)), n: n}
}

// Next returns the next zipfian sample in [0, n).
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// N returns the domain size of the sampler.
func (z *Zipf) N() int { return z.n }

// Pick returns a uniformly chosen element of the non-empty slice values.
func Pick[T any](r *Rand, values []T) T {
	return values[r.Intn(len(values))]
}

// Jitter returns v multiplied by a uniform factor in [1-f, 1+f]. It is used
// to perturb model parameters so simulated components are not lockstep.
func (r *Rand) Jitter(v, f float64) float64 {
	if f <= 0 {
		return v
	}
	return v * r.Uniform(1-f, 1+f)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
