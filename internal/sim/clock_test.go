package sim

import (
	"testing"
	"time"
)

func TestVirtualClockStartsAtEpochByDefault(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(Epoch)
	c.Advance(5 * time.Second)
	if got, want := c.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	// Negative advance must not move time backwards.
	c.Advance(-time.Hour)
	if got, want := c.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("after negative advance Now() = %v, want %v", got, want)
	}
}

func TestVirtualClockSetNowRejectsPast(t *testing.T) {
	c := NewVirtualClock(Epoch)
	if ok := c.SetNow(Epoch.Add(-time.Second)); ok {
		t.Fatal("SetNow into the past reported success")
	}
	if ok := c.SetNow(Epoch.Add(time.Minute)); !ok {
		t.Fatal("SetNow into the future reported failure")
	}
}

func TestVirtualClockSince(t *testing.T) {
	c := NewVirtualClock(Epoch)
	start := c.Now()
	c.Advance(42 * time.Millisecond)
	if got := c.Since(start); got != 42*time.Millisecond {
		t.Fatalf("Since = %v, want 42ms", got)
	}
}

func TestSchedulerRunsInTimestampOrder(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	var order []int
	s.After(30*time.Millisecond, func(time.Time) { order = append(order, 3) })
	s.After(10*time.Millisecond, func(time.Time) { order = append(order, 1) })
	s.After(20*time.Millisecond, func(time.Time) { order = append(order, 2) })
	s.Drain(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
}

func TestSchedulerTieBreaksByScheduleOrder(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	at := Epoch.Add(time.Second)
	var order []string
	s.At(at, func(time.Time) { order = append(order, "a") })
	s.At(at, func(time.Time) { order = append(order, "b") })
	s.At(at, func(time.Time) { order = append(order, "c") })
	s.Drain(10)
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestSchedulerStepAdvancesClock(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	s.After(time.Second, func(now time.Time) {
		if !now.Equal(Epoch.Add(time.Second)) {
			t.Errorf("event ran at %v, want %v", now, Epoch.Add(time.Second))
		}
	})
	if !s.Step() {
		t.Fatal("Step found no event")
	}
	if got := c.Now(); !got.Equal(Epoch.Add(time.Second)) {
		t.Fatalf("clock = %v, want %v", got, Epoch.Add(time.Second))
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	ran := 0
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Second, func(time.Time) { ran++ })
	}
	n := s.RunUntil(Epoch.Add(3 * time.Second))
	if n != 3 || ran != 3 {
		t.Fatalf("RunUntil executed %d (cb %d), want 3", n, ran)
	}
	if got := c.Now(); !got.Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("clock after RunUntil = %v, want deadline", got)
	}
	if s.Len() != 2 {
		t.Fatalf("pending = %d, want 2", s.Len())
	}
}

func TestSchedulerEventsCanScheduleEvents(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	depth := 0
	var recurse func(now time.Time)
	recurse = func(now time.Time) {
		depth++
		if depth < 4 {
			s.After(time.Millisecond, recurse)
		}
	}
	s.After(time.Millisecond, recurse)
	if n := s.Drain(100); n != 4 {
		t.Fatalf("Drain executed %d, want 4", n)
	}
}

func TestSchedulerDrainLimit(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	var loop func(time.Time)
	loop = func(time.Time) { s.After(time.Millisecond, loop) }
	s.After(time.Millisecond, loop)
	if n := s.Drain(25); n != 25 {
		t.Fatalf("Drain limit executed %d, want 25", n)
	}
}

func TestSchedulerPendingSorted(t *testing.T) {
	c := NewVirtualClock(Epoch)
	s := NewScheduler(c)
	s.After(3*time.Second, func(time.Time) {})
	s.After(time.Second, func(time.Time) {})
	s.After(2*time.Second, func(time.Time) {})
	ts := s.Pending()
	for i := 1; i < len(ts); i++ {
		if ts[i].Before(ts[i-1]) {
			t.Fatalf("Pending not sorted: %v", ts)
		}
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	c := RealClock{}
	a := c.Now()
	if c.Since(a) < 0 {
		t.Fatal("RealClock.Since returned negative duration")
	}
}
