package core

import (
	"sync"
	"time"

	"arbd/internal/mq"
)

// Telemetry topic indexes inside a batcher.
const (
	telemetryLocations = iota
	telemetryInteractions
	numTelemetryTopics
)

var telemetryTopicNames = [numTelemetryTopics]string{
	telemetryLocations:    TopicLocations,
	telemetryInteractions: TopicInteractions,
}

// telemetryBatcher buffers one session's outgoing telemetry per topic and
// publishes it with ProduceBatch, so a session streaming GPS at device rates
// pays one broker round-trip per batch instead of one per fix. Buffers flush
// when they reach the configured size; the platform's background flusher
// sweeps out anything older than the max delay so quiet sessions still
// surface promptly.
type telemetryBatcher struct {
	key       []byte // broker routing key: the session principal
	batchSize int
	maxDelay  time.Duration

	mu      sync.Mutex
	buffers [numTelemetryTopics]topicBuffer
}

type topicBuffer struct {
	values   [][]byte
	oldestAt time.Time // enqueue time of values[0]
}

func newTelemetryBatcher(principal string, batchSize int, maxDelay time.Duration) *telemetryBatcher {
	if batchSize < 1 {
		batchSize = 1
	}
	return &telemetryBatcher{key: []byte(principal), batchSize: batchSize, maxDelay: maxDelay}
}

// enqueue buffers one record for the topic, flushing the buffer to the
// broker if it reached the batch size. Ages are stamped with the wall
// clock, not the platform clock: the flush-delay bound is about real
// elapsed time, and the sweeper's ticker is wall-clock anyway — a virtual
// platform clock must not freeze age-based flushing.
func (tb *telemetryBatcher) enqueue(broker *mq.Broker, topic int, value []byte) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	buf := &tb.buffers[topic]
	if len(buf.values) == 0 {
		buf.oldestAt = now
	}
	buf.values = append(buf.values, value)
	// Size or age, whichever trips first. The age check here makes the
	// delay bound hold even on platforms that never called Start (no
	// background sweeper): any later enqueue — on any topic — drains every
	// overdue buffer, so a quiet topic cannot strand a record behind a
	// busy one.
	if len(buf.values) >= tb.batchSize {
		if err := tb.flushLocked(broker, topic); err != nil {
			return err
		}
	}
	for t := range tb.buffers {
		b := &tb.buffers[t]
		if len(b.values) == 0 || now.Sub(b.oldestAt) < tb.maxDelay {
			continue
		}
		if err := tb.flushLocked(broker, t); err != nil {
			return err
		}
	}
	return nil
}

// flushOlderThan publishes any buffer whose oldest record was enqueued at or
// before cutoff. The background flusher calls it on every sweep.
func (tb *telemetryBatcher) flushOlderThan(broker *mq.Broker, cutoff time.Time) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for topic := range tb.buffers {
		if len(tb.buffers[topic].values) == 0 || tb.buffers[topic].oldestAt.After(cutoff) {
			continue
		}
		if err := tb.flushLocked(broker, topic); err != nil {
			return err
		}
	}
	return nil
}

// flushAll publishes every non-empty buffer.
func (tb *telemetryBatcher) flushAll(broker *mq.Broker) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for topic := range tb.buffers {
		if len(tb.buffers[topic].values) == 0 {
			continue
		}
		if err := tb.flushLocked(broker, topic); err != nil {
			return err
		}
	}
	return nil
}

func (tb *telemetryBatcher) flushLocked(broker *mq.Broker, topic int) error {
	buf := &tb.buffers[topic]
	values := buf.values
	buf.values = nil
	_, err := broker.ProduceBatch(telemetryTopicNames[topic], tb.key, values)
	if err != nil {
		// Keep the records for the next flush attempt rather than
		// silently dropping accepted telemetry.
		buf.values = values
	}
	return err
}

// FlushTelemetry publishes any telemetry buffered on this session. Callers
// that need records visible on the broker immediately (tests, shutdown)
// use it; steady-state traffic flushes by size and age.
func (s *Session) FlushTelemetry() error {
	return s.telem.flushAll(s.platform.broker)
}

// FlushTelemetry publishes the buffered telemetry of every live session.
func (p *Platform) FlushTelemetry() error {
	var firstErr error
	p.sessions.forEach(func(s *Session) bool {
		if err := s.FlushTelemetry(); err != nil && firstErr == nil {
			firstErr = err
		}
		return true
	})
	return firstErr
}

// flushLoop is the platform's background sweeper: every half max-delay it
// publishes buffers whose oldest record has waited at least the max delay.
// It runs from Start until Stop.
func (p *Platform) flushLoop(stop <-chan struct{}) {
	interval := p.cfg.TelemetryMaxDelay / 2
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			cutoff := time.Now().Add(-p.cfg.TelemetryMaxDelay)
			p.sessions.forEach(func(s *Session) bool {
				if err := s.telem.flushOlderThan(p.broker, cutoff); err != nil {
					p.reg.Counter("core.telemetry.flush_errors").Inc()
				}
				return true
			})
		}
	}
}
