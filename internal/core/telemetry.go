package core

import (
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/mq"
)

// Telemetry topic indexes inside a batcher.
const (
	telemetryLocations = iota
	telemetryInteractions
	numTelemetryTopics
)

var telemetryTopicNames = [numTelemetryTopics]string{
	telemetryLocations:    TopicLocations,
	telemetryInteractions: TopicInteractions,
}

// adaptiveFlushRef is the flush latency at which adaptive batch sizing
// starts to grow batches: below it the broker is keeping up and the
// configured batch size stands; each additional multiple of it adds one
// more base batch per publish (bounded by the configured ceiling).
const adaptiveFlushRef = 2 * time.Millisecond

// flushDecayHalfLife ages the flush-latency signal while telemetry is
// quiet: with no flushes to observe, the EWMA halves per half-life so a
// pressure spike cannot freeze into admission control after the backend
// recovers and goes idle.
const flushDecayHalfLife = time.Second

// loadTracker aggregates telemetry flush latency across every session's
// batcher into two estimates — a streaming p99 (the P² estimator) and an
// EWMA fallback for cold starts — derives the adaptive batch size, and
// feeds the same signal into frame admission (Platform.LoadSignal).
// Admission keys off the p99 once it is warm: a tail of slow flushes is
// exactly the "analytics are stale" condition the paper's timeliness rule
// sheds for, and a mean-tracking EWMA hides it. One tracker per platform;
// all methods are safe for concurrent use.
type loadTracker struct {
	flushNs atomic.Int64 // EWMA of ProduceBatch latency, ns (fallback)
	p99Ns   atomic.Int64 // streaming p99 of ProduceBatch latency, ns (0 = cold)
	lastNs  atomic.Int64 // wall time of the last observation, unix ns
	base    int          // configured batch size
	max     int          // adaptive ceiling

	// qmu serialises the P² estimator; flushes are per-batch, not
	// per-frame, so a mutex here is off the hot path.
	qmu sync.Mutex
	p99 *p2Quantile
}

func newLoadTracker(base, maxSize int) *loadTracker {
	if base < 1 {
		base = 1
	}
	if maxSize < base {
		maxSize = base
	}
	return &loadTracker{base: base, max: maxSize, p99: newP2Quantile(0.99)}
}

// observeFlush folds one batch-publish latency into the estimators: the
// EWMA (α = 1/8) folds into the idle-decayed value, not the raw one — the
// first healthy flush after a quiet spell must not resurrect stale
// pressure — and the P² markers reset entirely after a long idle gap for
// the same reason. Concurrent observers may drop each other's EWMA sample;
// harmless for an EWMA.
func (lt *loadTracker) observeFlush(d time.Duration) {
	old := int64(lt.ewma())
	idle := time.Now().UnixNano() - lt.lastNs.Load()
	lt.lastNs.Store(time.Now().UnixNano())
	next := int64(d)
	if old != 0 {
		next = old + (int64(d)-old)/8
	}
	lt.flushNs.Store(next)

	lt.qmu.Lock()
	if idle > 2*int64(flushDecayHalfLife) {
		// Clear the published estimate too: until the estimator re-warms,
		// flushLatency must fall back to the (freshly folded) EWMA rather
		// than serve the pre-idle p99 at full strength — lastNs was just
		// refreshed, so read-time decay no longer ages it.
		lt.p99.reset()
		lt.p99Ns.Store(0)
	}
	lt.p99.observe(float64(d))
	if est, ok := lt.p99.estimate(); ok {
		lt.p99Ns.Store(int64(est))
	}
	lt.qmu.Unlock()
}

// ewma returns the flush-latency EWMA, idle-decayed.
func (lt *loadTracker) ewma() time.Duration {
	return lt.decayed(lt.flushNs.Load())
}

// flushLatency returns the admission/batching signal: the streaming p99 of
// flush latency once the estimator is warm (≥5 samples), the EWMA before
// that. Either is decayed by half per flushDecayHalfLife since the last
// observation so idle periods read as recovery rather than frozen pressure.
func (lt *loadTracker) flushLatency() time.Duration {
	if lat := lt.p99Ns.Load(); lat != 0 {
		return lt.decayed(lat)
	}
	return lt.ewma()
}

// decayed halves lat once per flushDecayHalfLife of idle time.
func (lt *loadTracker) decayed(lat int64) time.Duration {
	if lat == 0 {
		return 0
	}
	idle := time.Now().UnixNano() - lt.lastNs.Load()
	if idle > int64(flushDecayHalfLife) {
		halvings := idle / int64(flushDecayHalfLife)
		if halvings > 62 {
			return 0
		}
		lat >>= halvings
	}
	return time.Duration(lat)
}

// batchSize returns the effective telemetry batch size under the current
// flush latency: the configured base while the broker keeps up, growing
// proportionally to flush latency (so each round-trip amortises better)
// up to the ceiling when it falls behind.
func (lt *loadTracker) batchSize() int {
	lat := lt.flushLatency()
	if lat <= adaptiveFlushRef {
		return lt.base
	}
	n := lt.base * int(1+lat/adaptiveFlushRef)
	if n > lt.max || n < lt.base { // also guards multiplication overflow
		n = lt.max
	}
	return n
}

// telemetryBatcher buffers one session's outgoing telemetry per topic and
// publishes it with ProduceBatch, so a session streaming GPS at device rates
// pays one broker round-trip per batch instead of one per fix. Buffers flush
// when they reach the effective batch size — the configured size, scaled up
// by the platform's load tracker when flushes run slow — and the platform's
// background flusher sweeps out anything older than the max delay so quiet
// sessions still surface promptly. Flushes go through the platform's cached
// mq.Topic handles, so a flush never pays the broker's per-call topic-map
// lookup or counter resolution.
type telemetryBatcher struct {
	key      []byte // broker routing key: the session principal
	load     *loadTracker
	maxDelay time.Duration
	topics   *[numTelemetryTopics]*mq.Topic

	mu      sync.Mutex
	buffers [numTelemetryTopics]topicBuffer
}

type topicBuffer struct {
	values   [][]byte
	oldestAt time.Time // enqueue time of values[0]
}

func newTelemetryBatcher(principal string, load *loadTracker, maxDelay time.Duration, topics *[numTelemetryTopics]*mq.Topic) *telemetryBatcher {
	return &telemetryBatcher{key: []byte(principal), load: load, maxDelay: maxDelay, topics: topics}
}

// enqueue buffers one record for the topic, flushing the buffer to the
// broker if it reached the batch size. Ages are stamped with the wall
// clock, not the platform clock: the flush-delay bound is about real
// elapsed time, and the sweeper's ticker is wall-clock anyway — a virtual
// platform clock must not freeze age-based flushing.
func (tb *telemetryBatcher) enqueue(topic int, value []byte) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	buf := &tb.buffers[topic]
	if len(buf.values) == 0 {
		buf.oldestAt = now
	}
	buf.values = append(buf.values, value)
	// Size or age, whichever trips first. The age check here makes the
	// delay bound hold even on platforms that never called Start (no
	// background sweeper): any later enqueue — on any topic — drains every
	// overdue buffer, so a quiet topic cannot strand a record behind a
	// busy one.
	if len(buf.values) >= tb.load.batchSize() {
		if err := tb.flushLocked(topic); err != nil {
			return err
		}
	}
	for t := range tb.buffers {
		b := &tb.buffers[t]
		if len(b.values) == 0 || now.Sub(b.oldestAt) < tb.maxDelay {
			continue
		}
		if err := tb.flushLocked(t); err != nil {
			return err
		}
	}
	return nil
}

// flushOlderThan publishes any buffer whose oldest record was enqueued at or
// before cutoff. The background flusher calls it on every sweep.
func (tb *telemetryBatcher) flushOlderThan(cutoff time.Time) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for topic := range tb.buffers {
		if len(tb.buffers[topic].values) == 0 || tb.buffers[topic].oldestAt.After(cutoff) {
			continue
		}
		if err := tb.flushLocked(topic); err != nil {
			return err
		}
	}
	return nil
}

// flushAll publishes every non-empty buffer.
func (tb *telemetryBatcher) flushAll() error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for topic := range tb.buffers {
		if len(tb.buffers[topic].values) == 0 {
			continue
		}
		if err := tb.flushLocked(topic); err != nil {
			return err
		}
	}
	return nil
}

func (tb *telemetryBatcher) flushLocked(topic int) error {
	buf := &tb.buffers[topic]
	values := buf.values
	buf.values = nil
	start := time.Now()
	_, err := tb.topics[topic].ProduceBatch(tb.key, values)
	// A slow failure is still backend pressure: observe the latency either
	// way so admission and batch sizing see a struggling broker.
	tb.load.observeFlush(time.Since(start))
	if err != nil {
		// Keep the records for the next flush attempt rather than
		// silently dropping accepted telemetry.
		buf.values = values
	}
	return err
}

// FlushTelemetry publishes any telemetry buffered on this session. Callers
// that need records visible on the broker immediately (tests, shutdown)
// use it; steady-state traffic flushes by size and age.
func (s *Session) FlushTelemetry() error {
	return s.telem.flushAll()
}

// FlushTelemetry publishes the buffered telemetry of every live session.
func (p *Platform) FlushTelemetry() error {
	var firstErr error
	p.sessions.forEach(func(s *Session) bool {
		if err := s.FlushTelemetry(); err != nil && firstErr == nil {
			firstErr = err
		}
		return true
	})
	return firstErr
}

// flushLoop is the platform's background sweeper: every half max-delay it
// publishes buffers whose oldest record has waited at least the max delay.
// It runs from Start until Stop.
func (p *Platform) flushLoop(stop <-chan struct{}) {
	interval := p.cfg.TelemetryMaxDelay / 2
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			cutoff := time.Now().Add(-p.cfg.TelemetryMaxDelay)
			p.sessions.forEach(func(s *Session) bool {
				if err := s.telem.flushOlderThan(cutoff); err != nil {
					p.flushErrs.Inc()
				}
				return true
			})
		}
	}
}
