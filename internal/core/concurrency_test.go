package core

import (
	"sync"
	"testing"
	"time"

	"arbd/internal/recommend"
	"arbd/internal/sensor"
	"arbd/internal/sim"
)

// TestConcurrentSessionsRace hammers one platform from many goroutines, each
// running its own session through the full device loop — the workload the
// sharded registry and per-session locking exist for. Run with -race.
func TestConcurrentSessionsRace(t *testing.T) {
	cfg := testConfig()
	cfg.LocationEpsilon = 0.02 // exercise the per-session rng path
	cfg.PrivacyBudget = 1e9
	p := newTestPlatform(t, cfg)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	near := p.POIs().QueryRadius(center, 300, 0)
	if len(near) == 0 {
		t.Fatal("no POIs near center")
	}
	target := near[0].ID

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.NewSession()
			for i := 0; i < iters; i++ {
				at := sim.Epoch.Add(time.Duration(i) * time.Second)
				if err := s.OnGPS(sensor.GPSFix{Time: at, Position: center, AccuracyM: 3}); err != nil {
					t.Errorf("worker %d: OnGPS: %v", w, err)
					return
				}
				s.OnIMU(sensor.IMUSample{Time: at, CompassDeg: float64(i % 360)})
				if _, err := s.Frame(at); err != nil {
					t.Errorf("worker %d: Frame: %v", w, err)
					return
				}
				if err := s.RecordInteraction(target, 1); err != nil {
					t.Errorf("worker %d: RecordInteraction: %v", w, err)
					return
				}
				if i%5 == 0 {
					if err := s.OnGaze(sensor.GazeSample{Time: at, TargetID: target, DwellMS: 2000}); err != nil {
						t.Errorf("worker %d: OnGaze: %v", w, err)
						return
					}
				}
			}
			_ = s.Stats()
			_ = s.GazeTargets()
		}(w)
	}

	// Observer goroutines poke the platform-wide read paths concurrently.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.HotPOIs(3)
			_ = p.NumSessions()
			p.ForEachSession(func(s *Session) bool {
				_, _ = p.Session(s.ID)
				return true
			})
		}
	}()
	obs.Add(1)
	go func() {
		defer obs.Done()
		log := []recommend.Interaction{{UserID: 1, ItemID: 1, Weight: 1}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetRecommender(recommend.NewPopularity(log))
		}
	}()

	wg.Wait()
	close(stop)
	obs.Wait()

	if err := p.WaitAnalyticsIdle(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumSessions(); got != workers {
		t.Fatalf("NumSessions = %d, want %d", got, workers)
	}
	// Every interaction the workers produced must have reached the
	// analytics plane: at-least workers*iters explicit ones.
	hot := p.HotPOIs(1)
	if len(hot) == 0 || hot[0].Count < workers*iters {
		t.Fatalf("hot POIs = %v, want >= %d interactions", hot, workers*iters)
	}
}

// TestConcurrentSharedSession drives a single session from several
// goroutines: per-session state must stay consistent under its own lock.
func TestConcurrentSharedSession(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const framesEach = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < framesEach; i++ {
				if _, err := s.Frame(sim.Epoch); err != nil {
					t.Errorf("frame: %v", err)
					return
				}
				_ = s.Pose()
				_ = s.Level()
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Frames; got != workers*framesEach {
		t.Fatalf("frames = %d, want %d (lost updates)", got, workers*framesEach)
	}
}

// TestEndSessionFlushesAndUnregisters checks the server-facing session
// lifecycle: EndSession drains buffered telemetry and drops the session
// from the registry.
func TestEndSessionFlushesAndUnregisters(t *testing.T) {
	cfg := testConfig()
	cfg.TelemetryMaxDelay = time.Hour // only explicit flushes in this test
	p := newTestPlatform(t, cfg)
	s := p.NewSession()
	for i := 0; i < 3; i++ { // fewer than the batch size: stays buffered
		if err := s.RecordInteraction(9, 1); err != nil {
			t.Fatal(err)
		}
	}
	if total := countRecords(t, p, TopicInteractions); total != 0 {
		t.Fatalf("%d records on broker before flush", total)
	}
	if err := p.EndSession(s.ID); err != nil {
		t.Fatal(err)
	}
	if total := countRecords(t, p, TopicInteractions); total != 3 {
		t.Fatalf("%d records on broker after EndSession, want 3", total)
	}
	if _, ok := p.Session(s.ID); ok {
		t.Fatal("session still registered after EndSession")
	}
	if err := p.EndSession(s.ID); err != nil {
		t.Fatalf("second EndSession: %v", err)
	}
}

// TestTelemetryBatchFlushesBySize checks that exactly the batch-size worth
// of buffered records triggers a broker publish without explicit flushing.
func TestTelemetryBatchFlushesBySize(t *testing.T) {
	cfg := testConfig()
	cfg.TelemetryBatchSize = 4
	cfg.TelemetryMaxDelay = time.Hour // isolate the size trigger
	p := newTestPlatform(t, cfg)
	s := p.NewSession()
	for i := 0; i < 3; i++ {
		if err := s.RecordInteraction(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := countRecords(t, p, TopicInteractions); got != 0 {
		t.Fatalf("%d records before the batch filled", got)
	}
	if err := s.RecordInteraction(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, p, TopicInteractions); got != 4 {
		t.Fatalf("%d records after the batch filled, want 4", got)
	}
}

// TestTelemetryAgeFlush checks the background sweeper publishes records
// that never reach the size threshold.
func TestTelemetryAgeFlush(t *testing.T) {
	cfg := testConfig()
	cfg.TelemetryMaxDelay = 5 * time.Millisecond
	p := newTestPlatform(t, cfg)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Stop(); err != nil {
			t.Error(err)
		}
	}()
	s := p.NewSession()
	if err := s.RecordInteraction(2, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for countRecords(t, p, TopicInteractions) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-based flush never published the record")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTelemetryAgeFlushCrossTopicWithoutStart checks the no-Start delay
// bound: an overdue record on a quiet topic is drained by the session's
// next enqueue on a *different* topic.
func TestTelemetryAgeFlushCrossTopicWithoutStart(t *testing.T) {
	cfg := testConfig()
	cfg.TelemetryMaxDelay = 5 * time.Millisecond
	p := newTestPlatform(t, cfg) // note: Start is never called
	s := p.NewSession()
	if err := s.RecordInteraction(3, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, p, TopicInteractions); got != 1 {
		t.Fatalf("interactions on broker = %d, want 1 (cross-topic age drain)", got)
	}
	// The GPS fix itself is also past due by its own enqueue's age check
	// only on the *next* enqueue; it may legitimately still be buffered.
}

func countRecords(t *testing.T, p *Platform, topic string) int {
	t.Helper()
	total := 0
	parts, err := p.Broker().Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < parts; pi++ {
		rs, err := p.Broker().Fetch(topic, pi, 0, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rs)
	}
	return total
}
