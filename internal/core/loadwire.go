package core

import (
	"time"

	"arbd/internal/wire"
)

// EncodeLoadSignalInto appends sig's wire form to buf — the payload of a
// wire.MsgLoad envelope. Shard nodes push it periodically over backend
// connections so a router can run the same lag-aware admission it would run
// in-process, against remote pressure.
func EncodeLoadSignalInto(buf *wire.Buffer, sig LoadSignal) {
	buf.Uvarint(uint64(sig.FlushLatency))
	buf.Varint(sig.Backlog)
}

// DecodeLoadSignal parses an encoded LoadSignal.
func DecodeLoadSignal(p []byte) (LoadSignal, error) {
	r := wire.NewReader(p)
	var sig LoadSignal
	ns, err := r.Uvarint()
	if err != nil {
		return sig, r.Err(err, "flush latency")
	}
	sig.FlushLatency = time.Duration(ns)
	if sig.Backlog, err = r.Varint(); err != nil {
		return sig, r.Err(err, "backlog")
	}
	return sig, nil
}
