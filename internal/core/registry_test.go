package core

import (
	"sync"
	"testing"
)

func TestRegistryShardCountRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {3, 4}, {32, 32}, {33, 64},
	} {
		r := newSessionRegistry(tc.in)
		if len(r.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, len(r.shards), tc.want)
		}
		if r.mask != uint64(tc.want-1) {
			t.Errorf("mask(%d) = %d", tc.in, r.mask)
		}
	}
}

func TestRegistryAddGetRemove(t *testing.T) {
	r := newSessionRegistry(4)
	for id := uint64(1); id <= 100; id++ {
		r.add(&Session{ID: id})
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	s, ok := r.get(42)
	if !ok || s.ID != 42 {
		t.Fatalf("get(42) = %v, %v", s, ok)
	}
	if _, ok := r.get(101); ok {
		t.Fatal("get of unknown id succeeded")
	}
	if _, ok := r.remove(42); !ok {
		t.Fatal("remove of live id failed")
	}
	if _, ok := r.remove(42); ok {
		t.Fatal("second remove of same id succeeded")
	}
	if r.len() != 99 {
		t.Fatalf("len after remove = %d", r.len())
	}
	seen := make(map[uint64]bool)
	r.forEach(func(s *Session) bool {
		seen[s.ID] = true
		return true
	})
	if len(seen) != 99 || seen[42] {
		t.Fatalf("forEach visited %d sessions (42 present: %v)", len(seen), seen[42])
	}
}

func TestRegistryForEachEarlyStop(t *testing.T) {
	r := newSessionRegistry(4)
	for id := uint64(1); id <= 50; id++ {
		r.add(&Session{ID: id})
	}
	visited := 0
	r.forEach(func(*Session) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Fatalf("visited %d sessions after early stop", visited)
	}
}

func TestRegistrySpreadsSequentialIDs(t *testing.T) {
	r := newSessionRegistry(16)
	for id := uint64(1); id <= 1600; id++ {
		r.add(&Session{ID: id})
	}
	// With mixing, no shard should hold a wildly disproportionate share of
	// sequential IDs. Allow generous slack over the ideal 100/shard.
	for i := range r.shards {
		n := len(r.shards[i].sessions)
		if n < 25 || n > 250 {
			t.Fatalf("shard %d holds %d of 1600 sessions — IDs not spread", i, n)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := newSessionRegistry(8)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker; i++ {
				id := base + i + 1
				r.add(&Session{ID: id})
				if _, ok := r.get(id); !ok {
					t.Errorf("session %d not found right after add", id)
					return
				}
				r.forEach(func(*Session) bool { return false })
				if i%2 == 0 {
					r.remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.len(); got != workers*perWorker/2 {
		t.Fatalf("len = %d, want %d", got, workers*perWorker/2)
	}
}
