package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"arbd/internal/arml"
	"arbd/internal/geo"
	"arbd/internal/recommend"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/wire"
)

var center = geo.Point{Lat: 22.3364, Lon: 114.2655}

func testConfig() Config {
	return Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 800, TallRatio: 0.2},
	}
}

func newTestPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlatformValidatesCenter(t *testing.T) {
	if _, err := NewPlatform(Config{}); err == nil {
		t.Fatal("invalid center accepted")
	}
}

func TestPlatformLifecycle(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	if err := p.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("stop before start: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); !errors.Is(err, ErrStarted) {
		t.Fatalf("double start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("double stop: %v", err)
	}
}

func TestSessionIDsUnique(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	a, b := p.NewSession(), p.NewSession()
	if a.ID == b.ID {
		t.Fatal("duplicate session IDs")
	}
}

func TestFrameProducesAnnotations(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	s.OnIMU(sensor.IMUSample{Time: sim.Epoch, CompassDeg: 0})
	if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	f, err := s.Frame(sim.Epoch.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) == 0 {
		t.Fatal("no annotations in a dense city")
	}
	if len(f.Annotations) > 20 {
		t.Fatalf("annotation cap violated: %d", len(f.Annotations))
	}
	for _, a := range f.Annotations {
		if !a.Placed {
			t.Fatal("unplaced annotation emitted")
		}
	}
	if f.Level != DegradeNone {
		t.Fatalf("fresh session degraded: %v", f.Level)
	}
	st := s.Stats()
	if st.Frames != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnalyticsPlaneTagsCrowdedPOIs(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Stop(); err != nil {
			t.Error(err)
		}
	}()
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})

	// Hammer one nearby POI with interactions.
	near := p.POIs().QueryRadius(center, 200, 0)
	if len(near) == 0 {
		t.Fatal("no POIs near center")
	}
	target := near[0].ID
	for i := 0; i < 200; i++ {
		if err := s.RecordInteraction(target, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WaitAnalyticsIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The windowed sum only lands in the view when the window closes; push
	// one event an hour later to advance the watermark... but broker
	// timestamps come from the platform clock, so instead verify via the
	// hot-POI sketch (updated per event) and the crowd view after drain.
	hot := p.HotPOIs(3)
	if len(hot) == 0 || hot[0].Key != poiKey(target) {
		t.Fatalf("hot POIs = %v, want %s first", hot, poiKey(target))
	}
}

func TestCrowdViewFilledAfterStop(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	for i := 0; i < 50; i++ {
		if err := s.RecordInteraction(7, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WaitAnalyticsIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil { // drain flushes open windows
		t.Fatal(err)
	}
	stats, ok := p.CrowdView().Get(poiKey(7))
	if !ok || stats.Sum != 50 {
		t.Fatalf("crowd view = %+v, %v", stats, ok)
	}
}

func TestPrivacyGatePerturbsLocations(t *testing.T) {
	cfg := testConfig()
	cfg.LocationEpsilon = 0.02 // expected error 100 m
	cfg.PrivacyBudget = 1000
	p := newTestPlatform(t, cfg)
	s := p.NewSession()
	for i := 0; i < 20; i++ {
		if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch.Add(time.Duration(i) * time.Second),
			Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushTelemetry(); err != nil {
		t.Fatal(err)
	}
	var values [][]byte
	for pi := 0; pi < 4; pi++ {
		rs, err := p.Broker().Fetch(TopicLocations, pi, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			values = append(values, r.Value)
		}
	}
	if len(values) != 20 {
		t.Fatalf("published %d location records", len(values))
	}
	displaced := 0
	for _, v := range values {
		lat, lon := decodeLocation(t, v)
		d := geo.DistanceMeters(center, geo.Point{Lat: lat, Lon: lon})
		if d > 1 {
			displaced++
		}
	}
	if displaced < 18 {
		t.Fatalf("only %d/20 locations perturbed", displaced)
	}
}

func decodeLocation(t *testing.T, p []byte) (lat, lon float64) {
	t.Helper()
	r := wire.NewReader(p)
	if _, err := r.Uvarint(); err != nil { // session id
		t.Fatal(err)
	}
	lat, err := r.Float64()
	if err != nil {
		t.Fatal(err)
	}
	lon, err = r.Float64()
	if err != nil {
		t.Fatal(err)
	}
	return lat, lon
}

func TestPrivacyBudgetSuppressesTelemetry(t *testing.T) {
	cfg := testConfig()
	cfg.LocationEpsilon = 1
	cfg.PrivacyBudget = 5 // five fixes worth
	p := newTestPlatform(t, cfg)
	s := p.NewSession()
	for i := 0; i < 20; i++ {
		if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushTelemetry(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for pi := 0; pi < 4; pi++ {
		rs, _ := p.Broker().Fetch(TopicLocations, pi, 0, 100)
		total += len(rs)
	}
	if total != 5 {
		t.Fatalf("published %d records with budget for 5", total)
	}
	if got := p.Metrics().Counter("core.privacy.suppressed").Value(); got != 15 {
		t.Fatalf("suppressed = %d", got)
	}
	// Tracking still works.
	if !s.Pose().Position.Valid() {
		t.Fatal("pose lost after suppression")
	}
}

func TestTimelinessDegradationAndRecovery(t *testing.T) {
	vc := sim.NewVirtualClock(time.Time{})
	cfg := testConfig()
	cfg.Clock = stepClock{vc: vc, step: 50 * time.Millisecond} // every frame overruns 33ms
	p := newTestPlatform(t, cfg)
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})
	for i := 0; i < 3; i++ {
		if _, err := s.Frame(sim.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	if s.Level() != DegradeInterp {
		t.Fatalf("level = %v after sustained overruns", s.Level())
	}
	if s.Stats().Overruns != 3 {
		t.Fatalf("overruns = %d", s.Stats().Overruns)
	}
	// Fast frames recover.
	cfgFast := stepClock{vc: vc, step: 5 * time.Millisecond}
	p.cfg.Clock = cfgFast
	for i := 0; i < 3; i++ {
		if _, err := s.Frame(sim.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	if s.Level() != DegradeNone {
		t.Fatalf("level = %v after fast frames", s.Level())
	}
}

// stepClock advances a fixed step on every Since call, making frame timing
// deterministic.
type stepClock struct {
	vc   *sim.VirtualClock
	step time.Duration
}

func (c stepClock) Now() time.Time { return c.vc.Now() }
func (c stepClock) Since(t time.Time) time.Duration {
	c.vc.Advance(c.step)
	return c.vc.Now().Sub(t)
}

func TestGazeBecomesInteraction(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	// Short glance: no telemetry.
	if err := s.OnGaze(sensor.GazeSample{TargetID: 5, DwellMS: 200}); err != nil {
		t.Fatal(err)
	}
	// Sustained dwell: telemetry.
	if err := s.OnGaze(sensor.GazeSample{TargetID: 5, DwellMS: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushTelemetry(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for pi := 0; pi < 4; pi++ {
		rs, _ := p.Broker().Fetch(TopicInteractions, pi, 0, 100)
		total += len(rs)
	}
	if total != 1 {
		t.Fatalf("interactions = %d, want 1", total)
	}
}

func TestFrameWithRecommender(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})
	log := []recommend.Interaction{
		{UserID: 999, ItemID: 1, Weight: 1},
		{UserID: 998, ItemID: 2, Weight: 1},
	}
	p.SetRecommender(recommend.NewPopularity(log))
	f, err := s.Frame(sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Recommended) == 0 {
		t.Fatal("no recommendations surfaced")
	}
}

func TestFrameARMLExport(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})
	f, err := s.Frame(sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.ToARML()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := arml.Decode(data)
	if err != nil {
		t.Fatalf("exported ARML invalid: %v", err)
	}
	if len(doc.Features) != len(f.Annotations) {
		t.Fatalf("features = %d, annotations = %d", len(doc.Features), len(f.Annotations))
	}
	if !strings.Contains(string(data), "<arml") {
		t.Fatal("missing root element")
	}
}

func TestFrameWireRoundTrip(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})
	f, err := s.Frame(sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeFrame(f)
	got, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Annotations) != len(f.Annotations) {
		t.Fatalf("decoded %d annotations, want %d", len(got.Annotations), len(f.Annotations))
	}
	for i := range got.Annotations {
		if got.Annotations[i].ID != f.Annotations[i].ID ||
			got.Annotations[i].Label != f.Annotations[i].Label {
			t.Fatalf("annotation %d mismatch", i)
		}
	}
	if _, err := DecodeFrame([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestGazeTargets(t *testing.T) {
	p := newTestPlatform(t, testConfig())
	s := p.NewSession()
	_ = s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3})
	if _, err := s.Frame(sim.Epoch); err != nil {
		t.Fatal(err)
	}
	targets := s.GazeTargets()
	if len(targets) == 0 {
		t.Fatal("no gaze targets after a frame")
	}
}
