package core

// p2Quantile estimates one quantile of a stream in O(1) space with the P²
// algorithm (Jain & Chlamtac, 1985): five markers track the minimum, the
// target quantile, points halfway to each side, and the maximum. Marker
// heights move by a piecewise-parabolic fit as observations arrive, so the
// estimate follows the tail without buffering the stream — which is what
// lets admission control react to p99 flush latency instead of the mean
// without keeping a latency log per platform.
//
// Not safe for concurrent use; loadTracker serialises access.
type p2Quantile struct {
	q    float64
	n    int        // observations seen
	init [5]float64 // the first five observations, pre-initialisation
	h    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based counts)
	des  [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increment per observation
}

func newP2Quantile(q float64) *p2Quantile {
	return &p2Quantile{q: q}
}

// reset discards all state, as if no observations had been seen. The load
// tracker resets after long idle gaps so a stale pressure spike frozen in
// the markers cannot resurrect when traffic resumes.
func (p *p2Quantile) reset() {
	n := newP2Quantile(p.q)
	*p = *n
}

// observe folds one sample into the estimator.
func (p *p2Quantile) observe(x float64) {
	if p.n < 5 {
		p.init[p.n] = x
		p.n++
		if p.n == 5 {
			p.initialise()
		}
		return
	}
	p.n++

	// Locate the cell containing x, extending the extremes when x falls
	// outside them.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.des[i] += p.inc[i]
	}

	// Nudge interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.des[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			step := 1.0
			if d < 0 {
				step = -1.0
			}
			if h := p.parabolic(i, step); p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, step)
			}
			p.pos[i] += step
		}
	}
}

// initialise sorts the first five observations into the markers.
func (p *p2Quantile) initialise() {
	s := p.init // copy
	for i := 1; i < 5; i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	p.h = s
	p.pos = [5]float64{1, 2, 3, 4, 5}
	q := p.q
	p.des = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

// parabolic is the P² piecewise-parabolic height update for marker i moving
// by step (±1).
func (p *p2Quantile) parabolic(i int, step float64) float64 {
	return p.h[i] + step/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+step)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-step)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height update when the parabola overshoots a
// neighbouring marker.
func (p *p2Quantile) linear(i int, step float64) float64 {
	j := i + int(step)
	return p.h[i] + step*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// estimate returns the current quantile estimate; ok is false until five
// observations have been seen.
func (p *p2Quantile) estimate() (float64, bool) {
	if p.n < 5 {
		return 0, false
	}
	return p.h[2], true
}
