package core

import (
	"fmt"

	"arbd/internal/arml"
	"arbd/internal/render"
	"arbd/internal/wire"
)

// ToARML exports the frame as an ARML document — the interchange form the
// paper's §4.2 argues AR clients and data producers should meet on.
func (f *Frame) ToARML() ([]byte, error) {
	doc := &arml.Document{}
	for _, a := range f.Annotations {
		feat := arml.Feature{
			ID:      fmt.Sprintf("ann-%d", a.ID),
			Name:    a.Label,
			Enabled: true,
			Tags:    f.TagsFor[a.ID],
			Anchors: []arml.Anchor{{
				Lat:  a.Anchor.Lat,
				Lon:  a.Anchor.Lon,
				AltM: a.AnchorHM,
				Assets: []arml.VisualAsset{{
					Kind: arml.AssetText,
					Text: a.Label,
				}},
			}},
		}
		if a.XRay {
			feat.Tags = append(feat.Tags, arml.Tag{Key: "style", Value: "xray"})
		}
		doc.Features = append(doc.Features, feat)
	}
	return arml.Encode(doc)
}

// EncodeFrame serialises the frame's overlay for the TCP server protocol:
// count, then per annotation (id, label, box, anchor, flags). The caller
// owns the returned slice (it is backed by a buffer allocated here, not
// retained). Hot paths that reuse or pool encode buffers — the server's
// frame-response path — use EncodeFrameInto instead.
func EncodeFrame(f *Frame) []byte {
	var b wire.Buffer
	EncodeFrameInto(&b, f)
	return b.Bytes()
}

// EncodeFrameInto appends the frame's wire encoding to buf. The encoded
// bytes (buf.Bytes) alias buf's storage and are valid until buf is reset or
// reused, which lets the server encode each response into a pooled buffer
// and hand it to the framed writer without allocating per frame.
//
//arbd:hotpath
func EncodeFrameInto(buf *wire.Buffer, f *Frame) {
	buf.Uvarint(uint64(len(f.Annotations)))
	for _, a := range f.Annotations {
		buf.Uvarint(a.ID)
		buf.String(a.Label)
		buf.Float64(a.X)
		buf.Float64(a.Y)
		buf.Float64(a.W)
		buf.Float64(a.H)
		buf.Float64(a.Anchor.Lat)
		buf.Float64(a.Anchor.Lon)
		buf.Bool(a.XRay)
	}
	buf.Uvarint(uint64(f.Level))
	buf.Uvarint(uint64(f.Elapsed.Nanoseconds()))
}

// frameDeltaKey is the flag bit (leading payload byte) marking a
// MsgFrameDelta payload as a keyframe: a full EncodeFrameInto body follows
// instead of a diff.
const frameDeltaKey = 1 << 0

// Per-annotation field mask bits of the delta encoding, in encode order. A
// set bit means the field's new value follows; a clear bit means the value
// carries over from the base frame's annotation with the same ID.
const (
	deltaX = 1 << iota
	deltaY
	deltaW
	deltaH
	deltaLat
	deltaLon
	deltaXRay
	deltaLabel
	deltaAll = deltaX | deltaY | deltaW | deltaH | deltaLat | deltaLon | deltaXRay | deltaLabel
)

// ErrDeltaBase reports a delta payload that cannot be applied because the
// caller holds no base frame (or the wrong one). Clients recover by
// requesting a keyframe (wire.FrameAck.WantKeyframe).
var ErrDeltaBase = fmt.Errorf("core: frame delta without a matching base frame")

// FrameDeltaIsKeyframe reports whether a MsgFrameDelta payload is a
// keyframe — applicable with no base — rather than a diff.
func FrameDeltaIsKeyframe(p []byte) bool {
	return len(p) > 0 && p[0]&frameDeltaKey != 0
}

// EncodeFrameDeltaInto appends the frame's delta wire encoding (protocol
// v4, MsgFrameDelta payload) to buf. With keyframe set — or when the frame
// carries no usable base — the payload is a flagged full frame. Otherwise
// it diffs f.Annotations against f.PrevAnnotations, the session's previous
// layout still resident in the frame-scratch double-buffer: per annotation
// a field mask selects only the values that moved, and annotations absent
// from the new frame are dropped implicitly by the walk. Applying the delta
// to the base reproduces the full encoding byte for byte (the walk
// preserves annotation order), which is what keeps keyframes and deltas
// interchangeable downstream.
//
// The caller decides keyframe cadence; the encoder only forces one when
// f.PrevAnnotations is nil — a session's first frame, or scratch disabled.
//
//arbd:hotpath
func EncodeFrameDeltaInto(buf *wire.Buffer, f *Frame, keyframe bool) {
	if keyframe || f.PrevAnnotations == nil {
		buf.Byte(frameDeltaKey)
		EncodeFrameInto(buf, f)
		return
	}
	buf.Byte(0)
	buf.Uvarint(uint64(len(f.Annotations)))
	cursor := 0
	for i := range f.Annotations {
		a := &f.Annotations[i]
		buf.Uvarint(a.ID)
		var mask byte
		p, ok := findAnn(f.PrevAnnotations, &cursor, a.ID)
		if !ok {
			mask = deltaAll
		} else {
			if a.X != p.X {
				mask |= deltaX
			}
			if a.Y != p.Y {
				mask |= deltaY
			}
			if a.W != p.W {
				mask |= deltaW
			}
			if a.H != p.H {
				mask |= deltaH
			}
			if a.Anchor.Lat != p.Anchor.Lat {
				mask |= deltaLat
			}
			if a.Anchor.Lon != p.Anchor.Lon {
				mask |= deltaLon
			}
			if a.XRay != p.XRay {
				mask |= deltaXRay
			}
			if a.Label != p.Label {
				mask |= deltaLabel
			}
		}
		buf.Byte(mask)
		if mask&deltaX != 0 {
			buf.Float64(a.X)
		}
		if mask&deltaY != 0 {
			buf.Float64(a.Y)
		}
		if mask&deltaW != 0 {
			buf.Float64(a.W)
		}
		if mask&deltaH != 0 {
			buf.Float64(a.H)
		}
		if mask&deltaLat != 0 {
			buf.Float64(a.Anchor.Lat)
		}
		if mask&deltaLon != 0 {
			buf.Float64(a.Anchor.Lon)
		}
		if mask&deltaXRay != 0 {
			buf.Bool(a.XRay)
		}
		if mask&deltaLabel != 0 {
			buf.String(a.Label)
		}
	}
	buf.Uvarint(uint64(f.Level))
	buf.Uvarint(uint64(f.Elapsed.Nanoseconds()))
}

// findAnn locates the annotation with the given ID in prev, scanning from a
// rolling cursor: consecutive frames keep annotations in nearly the same
// order, so the match is usually the very next element and the scan stays
// O(1) amortised without an ID map.
func findAnn(prev []render.Annotation, cursor *int, id uint64) (*render.Annotation, bool) {
	n := len(prev)
	for k := 0; k < n; k++ {
		i := *cursor + k
		if i >= n {
			i -= n
		}
		if prev[i].ID == id {
			*cursor = i + 1
			return &prev[i], true
		}
	}
	return nil, false
}

// ApplyFrameDelta decodes a MsgFrameDelta payload against the previously
// applied frame. Keyframe payloads decode standalone (prev may be nil);
// diff payloads start each annotation from prev's annotation with the same
// ID and overwrite only the masked fields. The caller is responsible for
// seq continuity — applying a diff across a push gap silently resurrects
// stale values, which is why clients must request a keyframe on any gap.
func ApplyFrameDelta(prev *DecodedFrame, p []byte) (*DecodedFrame, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("core: empty frame delta payload")
	}
	if p[0]&frameDeltaKey != 0 {
		return DecodeFrame(p[1:])
	}
	if prev == nil {
		return nil, ErrDeltaBase
	}
	r := wire.NewReader(p[1:])
	n, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "delta count")
	}
	if n > 10000 {
		return nil, fmt.Errorf("core: implausible annotation count %d", n)
	}
	out := &DecodedFrame{Annotations: make([]render.Annotation, 0, n)}
	cursor := 0
	for i := uint64(0); i < n; i++ {
		id, err := r.Uvarint()
		if err != nil {
			return nil, r.Err(err, "delta id")
		}
		mask, err := r.Byte()
		if err != nil {
			return nil, r.Err(err, "delta mask")
		}
		var a render.Annotation
		if base, ok := findAnn(prev.Annotations, &cursor, id); ok {
			a = *base
		} else if mask != deltaAll {
			// A partial mask against a base we don't hold would fill the
			// unmasked fields with zeroes — a corrupt overlay. Fail typed.
			return nil, ErrDeltaBase
		}
		a.ID = id
		if mask&deltaX != 0 {
			if a.X, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaY != 0 {
			if a.Y, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaW != 0 {
			if a.W, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaH != 0 {
			if a.H, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaLat != 0 {
			if a.Anchor.Lat, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaLon != 0 {
			if a.Anchor.Lon, err = r.Float64(); err != nil {
				return nil, r.Err(err, "delta geometry")
			}
		}
		if mask&deltaXRay != 0 {
			if a.XRay, err = r.Bool(); err != nil {
				return nil, r.Err(err, "delta flags")
			}
		}
		if mask&deltaLabel != 0 {
			if a.Label, err = r.String(); err != nil {
				return nil, r.Err(err, "delta label")
			}
		}
		a.Placed = true
		out.Annotations = append(out.Annotations, a)
	}
	lvl, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "delta level")
	}
	out.Level = DegradeLevel(lvl)
	if out.ElapsedNs, err = r.Uvarint(); err != nil {
		return nil, r.Err(err, "delta elapsed")
	}
	return out, nil
}

// DecodedFrame is the client-side view of an encoded frame.
type DecodedFrame struct {
	Annotations []render.Annotation
	Level       DegradeLevel
	ElapsedNs   uint64
	// Seq is the stream's push counter for frames that arrived over a
	// subscription (MsgFramePush): strictly increasing per stream, with
	// gaps where the server skipped ticks or dropped queued pushes under
	// backpressure. The client rebases across server-side stream restarts
	// (a router replaying the subscription onto a reconnected shard), so
	// the property holds for the life of the Subscribe channel. Zero for
	// frames fetched by request/reply.
	Seq uint64
}

// DecodeFrame parses EncodeFrame output.
func DecodeFrame(p []byte) (*DecodedFrame, error) {
	r := wire.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "count")
	}
	if n > 10000 {
		return nil, fmt.Errorf("core: implausible annotation count %d", n)
	}
	out := &DecodedFrame{Annotations: make([]render.Annotation, 0, n)}
	for i := uint64(0); i < n; i++ {
		var a render.Annotation
		if a.ID, err = r.Uvarint(); err != nil {
			return nil, r.Err(err, "id")
		}
		if a.Label, err = r.String(); err != nil {
			return nil, r.Err(err, "label")
		}
		for _, dst := range []*float64{&a.X, &a.Y, &a.W, &a.H, &a.Anchor.Lat, &a.Anchor.Lon} {
			if *dst, err = r.Float64(); err != nil {
				return nil, r.Err(err, "geometry")
			}
		}
		if a.XRay, err = r.Bool(); err != nil {
			return nil, r.Err(err, "flags")
		}
		a.Placed = true
		out.Annotations = append(out.Annotations, a)
	}
	lvl, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "level")
	}
	out.Level = DegradeLevel(lvl)
	if out.ElapsedNs, err = r.Uvarint(); err != nil {
		return nil, r.Err(err, "elapsed")
	}
	return out, nil
}
