package core

import (
	"fmt"

	"arbd/internal/arml"
	"arbd/internal/render"
	"arbd/internal/wire"
)

// ToARML exports the frame as an ARML document — the interchange form the
// paper's §4.2 argues AR clients and data producers should meet on.
func (f *Frame) ToARML() ([]byte, error) {
	doc := &arml.Document{}
	for _, a := range f.Annotations {
		feat := arml.Feature{
			ID:      fmt.Sprintf("ann-%d", a.ID),
			Name:    a.Label,
			Enabled: true,
			Tags:    f.TagsFor[a.ID],
			Anchors: []arml.Anchor{{
				Lat:  a.Anchor.Lat,
				Lon:  a.Anchor.Lon,
				AltM: a.AnchorHM,
				Assets: []arml.VisualAsset{{
					Kind: arml.AssetText,
					Text: a.Label,
				}},
			}},
		}
		if a.XRay {
			feat.Tags = append(feat.Tags, arml.Tag{Key: "style", Value: "xray"})
		}
		doc.Features = append(doc.Features, feat)
	}
	return arml.Encode(doc)
}

// EncodeFrame serialises the frame's overlay for the TCP server protocol:
// count, then per annotation (id, label, box, anchor, flags). The caller
// owns the returned slice (it is backed by a buffer allocated here, not
// retained). Hot paths that reuse or pool encode buffers — the server's
// frame-response path — use EncodeFrameInto instead.
func EncodeFrame(f *Frame) []byte {
	var b wire.Buffer
	EncodeFrameInto(&b, f)
	return b.Bytes()
}

// EncodeFrameInto appends the frame's wire encoding to buf. The encoded
// bytes (buf.Bytes) alias buf's storage and are valid until buf is reset or
// reused, which lets the server encode each response into a pooled buffer
// and hand it to the framed writer without allocating per frame.
func EncodeFrameInto(buf *wire.Buffer, f *Frame) {
	buf.Uvarint(uint64(len(f.Annotations)))
	for _, a := range f.Annotations {
		buf.Uvarint(a.ID)
		buf.String(a.Label)
		buf.Float64(a.X)
		buf.Float64(a.Y)
		buf.Float64(a.W)
		buf.Float64(a.H)
		buf.Float64(a.Anchor.Lat)
		buf.Float64(a.Anchor.Lon)
		buf.Bool(a.XRay)
	}
	buf.Uvarint(uint64(f.Level))
	buf.Uvarint(uint64(f.Elapsed.Nanoseconds()))
}

// DecodedFrame is the client-side view of an encoded frame.
type DecodedFrame struct {
	Annotations []render.Annotation
	Level       DegradeLevel
	ElapsedNs   uint64
	// Seq is the stream's push counter for frames that arrived over a
	// subscription (MsgFramePush): strictly increasing per stream, with
	// gaps where the server skipped ticks or dropped queued pushes under
	// backpressure. The client rebases across server-side stream restarts
	// (a router replaying the subscription onto a reconnected shard), so
	// the property holds for the life of the Subscribe channel. Zero for
	// frames fetched by request/reply.
	Seq uint64
}

// DecodeFrame parses EncodeFrame output.
func DecodeFrame(p []byte) (*DecodedFrame, error) {
	r := wire.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "count")
	}
	if n > 10000 {
		return nil, fmt.Errorf("core: implausible annotation count %d", n)
	}
	out := &DecodedFrame{Annotations: make([]render.Annotation, 0, n)}
	for i := uint64(0); i < n; i++ {
		var a render.Annotation
		if a.ID, err = r.Uvarint(); err != nil {
			return nil, r.Err(err, "id")
		}
		if a.Label, err = r.String(); err != nil {
			return nil, r.Err(err, "label")
		}
		for _, dst := range []*float64{&a.X, &a.Y, &a.W, &a.H, &a.Anchor.Lat, &a.Anchor.Lon} {
			if *dst, err = r.Float64(); err != nil {
				return nil, r.Err(err, "geometry")
			}
		}
		if a.XRay, err = r.Bool(); err != nil {
			return nil, r.Err(err, "flags")
		}
		a.Placed = true
		out.Annotations = append(out.Annotations, a)
	}
	lvl, err := r.Uvarint()
	if err != nil {
		return nil, r.Err(err, "level")
	}
	out.Level = DegradeLevel(lvl)
	if out.ElapsedNs, err = r.Uvarint(); err != nil {
		return nil, r.Err(err, "elapsed")
	}
	return out, nil
}
