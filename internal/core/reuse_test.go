package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/wire"
)

// newReusePlatform builds a deterministic platform for scratch-equivalence
// tests; disable toggles the per-session frame scratch.
func newReusePlatform(t *testing.T, disable bool) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{
		Seed:                1,
		City:                geo.CityConfig{Center: center, RadiusM: 1500, NumPOIs: 800, TallRatio: 0.2},
		Clock:               sim.NewVirtualClock(sim.Epoch),
		DisableFrameScratch: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFrameScratchEquivalence drives two identical platforms — one with the
// per-session frame scratch, one fully allocating — through the same sensor
// stream and requires byte-identical encoded frames at every step. This is
// the round-trip guarantee that buffer reuse changes performance, not
// output.
func TestFrameScratchEquivalence(t *testing.T) {
	pooled := newReusePlatform(t, false)
	alloc := newReusePlatform(t, true)
	sp, sa := pooled.NewSession(), alloc.NewSession()

	for step := 0; step < 12; step++ {
		at := sim.Epoch.Add(time.Duration(step) * time.Second)
		pos := geo.Destination(center, float64(step*30), float64(step)*40)
		for _, s := range []*Session{sp, sa} {
			if err := s.OnGPS(sensor.GPSFix{Time: at, Position: pos, AccuracyM: 4}); err != nil {
				t.Fatal(err)
			}
			s.OnIMU(sensor.IMUSample{Time: at, CompassDeg: float64(step * 25 % 360)})
		}
		fp, err := sp.Frame(at)
		if err != nil {
			t.Fatal(err)
		}
		// Encode the pooled frame before the allocating session renders:
		// its contents alias scratch the next sp.Frame call will reuse.
		encP := EncodeFrame(fp)
		jitterP := fp.JitterPx
		recP := append([]uint64(nil), fp.Recommended...)

		fa, err := sa.Frame(at)
		if err != nil {
			t.Fatal(err)
		}
		encA := EncodeFrame(fa)
		if !bytes.Equal(encP, encA) {
			t.Fatalf("step %d: pooled and allocating frames encode differently (%d vs %d bytes)",
				step, len(encP), len(encA))
		}
		if jitterP != fa.JitterPx {
			t.Fatalf("step %d: jitter %v vs %v", step, jitterP, fa.JitterPx)
		}
		if len(recP) != len(fa.Recommended) {
			t.Fatalf("step %d: recommended %d vs %d", step, len(recP), len(fa.Recommended))
		}
	}
}

// TestEncodeFrameIntoMatchesEncodeFrame checks the Into form and the
// allocating form produce identical bytes, that the Into form appends (so
// pooled buffers can front-run a header), and that the result round-trips.
func TestEncodeFrameIntoMatchesEncodeFrame(t *testing.T) {
	p := newReusePlatform(t, false)
	s := p.NewSession()
	if err := s.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 4}); err != nil {
		t.Fatal(err)
	}
	f, err := s.Frame(sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) == 0 {
		t.Fatal("frame has no annotations")
	}
	want := EncodeFrame(f)

	buf := wire.NewBuffer(64)
	EncodeFrameInto(buf, f)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("EncodeFrameInto differs from EncodeFrame")
	}
	// Reuse after Reset must reproduce the same bytes — the pooled server
	// path.
	buf.Reset()
	EncodeFrameInto(buf, f)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("EncodeFrameInto differs after buffer reuse")
	}
	dec, err := DecodeFrame(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Annotations) != len(f.Annotations) {
		t.Fatalf("round-trip annotations %d, want %d", len(dec.Annotations), len(f.Annotations))
	}
}

// TestPoiKeyMatchesSprintf pins the strconv fast path to the old format.
func TestPoiKeyMatchesSprintf(t *testing.T) {
	for _, id := range []uint64{0, 1, 9, 10, 99, 12345, 18446744073709551615} {
		want := fmt.Sprintf("poi-%d", id)
		if got := poiKey(id); got != want {
			t.Fatalf("poiKey(%d) = %q, want %q", id, got, want)
		}
	}
}

// TestAdaptiveBatchSize checks the load tracker grows the effective batch
// size with flush latency and respects the ceiling.
func TestAdaptiveBatchSize(t *testing.T) {
	lt := newLoadTracker(32, 128)
	if got := lt.batchSize(); got != 32 {
		t.Fatalf("cold batch size = %d, want base 32", got)
	}
	// Fast flushes: stay at base.
	for i := 0; i < 20; i++ {
		lt.observeFlush(100 * time.Microsecond)
	}
	if got := lt.batchSize(); got != 32 {
		t.Fatalf("fast-flush batch size = %d, want base 32", got)
	}
	// Slow flushes: the EWMA converges upward and the size grows…
	for i := 0; i < 50; i++ {
		lt.observeFlush(5 * time.Millisecond)
	}
	if got := lt.batchSize(); got <= 32 {
		t.Fatalf("slow-flush batch size = %d, want > base", got)
	}
	// …but never past the ceiling.
	for i := 0; i < 50; i++ {
		lt.observeFlush(5 * time.Second)
	}
	if got := lt.batchSize(); got != 128 {
		t.Fatalf("saturated batch size = %d, want ceiling 128", got)
	}
}

// TestLoadSignalReportsPressure checks the platform surfaces flush latency
// and analytics backlog to admission control.
func TestLoadSignalReportsPressure(t *testing.T) {
	p := newReusePlatform(t, false)
	if sig := p.LoadSignal(); sig.FlushLatency < 0 || sig.Backlog != 0 {
		t.Fatalf("idle signal = %+v", sig)
	}
	p.load.observeFlush(10 * time.Millisecond)
	if sig := p.LoadSignal(); sig.FlushLatency == 0 {
		t.Fatal("flush latency not surfaced")
	}
	// Backlog: give the platform its consumer group without starting the
	// consumer, then publish interactions nobody drains.
	g, err := p.broker.NewGroup(TopicInteractions)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.group = g
	p.mu.Unlock()
	s := p.NewSession()
	for i := 0; i < 40; i++ {
		if err := s.RecordInteraction(uint64(i%5+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushTelemetry(); err != nil {
		t.Fatal(err)
	}
	if sig := p.LoadSignal(); sig.Backlog != 40 {
		t.Fatalf("backlog = %d, want 40", sig.Backlog)
	}
}
