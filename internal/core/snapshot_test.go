package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/wire"
)

// snapshotTestPlatform builds a platform with a big enough telemetry batch
// that records stay buffered (so the snapshot has something to move) and
// no background flusher (Start never called).
func snapshotTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(Config{
		Seed: 7,
		City: geo.CityConfig{Center: center, RadiusM: 2000, NumPOIs: 1500, TallRatio: 0.2},
		// A tiny epsilon makes OnGPS draw privacy noise from the session
		// RNG, so the round-trip exercises a non-trivial stream position.
		LocationEpsilon:    0.05,
		TelemetryBatchSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// driveSession feeds a session a deterministic sensor history and some
// frames, leaving non-trivial state in every snapshot field.
func driveSession(t *testing.T, s *Session) {
	t.Helper()
	base := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		now := base.Add(time.Duration(i) * 100 * time.Millisecond)
		pos := geo.Destination(center, float64(i*36), float64(50+i*10))
		if err := s.OnGPS(sensor.GPSFix{Time: now, Position: pos, AccuracyM: 4}); err != nil {
			t.Fatal(err)
		}
		s.OnIMU(sensor.IMUSample{Time: now.Add(50 * time.Millisecond), GyroZRad: 0.1, AccelMps2: 0.3, CompassDeg: 80})
	}
	if err := s.OnGaze(sensor.GazeSample{Time: base.Add(time.Second), TargetID: 12, DwellMS: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordInteraction(33, 0.7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Frame(base.Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
}

// seedAnalytics gives a platform's crowd view and heavy-hitter sketch a
// deterministic state over the given POI IDs, so interpretation-dependent
// frame content (tags derived from the sketch's TopK snapshot and the
// crowd aggregates) is identical across the source and destination
// platforms. The IDs should be POIs near the session's pose so the frame
// pipeline actually consults them.
func seedAnalytics(p *Platform, ids []uint64) {
	p.hotMu.Lock()
	for rank, id := range ids {
		for i := 0; i <= 50*(len(ids)-rank); i++ {
			p.hot.Add(poiKey(id))
		}
	}
	p.hotMu.Unlock()
	for rank, id := range ids {
		p.crowd.Apply(analytics.Row{Group: poiKey(id), Value: float64(50 * (len(ids) - rank))})
	}
}

// TestSessionSnapshotRoundTrip pins the migration serialization contract:
// export → import preserves the telemetry batch (moved, byte-identical),
// the RNG stream position, gaze dwell, tracking state, and counters — and
// the restored session's next frame is byte-identical to the frame the
// source would have rendered against the same analytics state (including
// the sketch-TopK-derived tags).
func TestSessionSnapshotRoundTrip(t *testing.T) {
	src := snapshotTestPlatform(t)
	dst := snapshotTestPlatform(t) // same world config, fresh registry

	s := src.NewSession()
	driveSession(t, s)

	// Seed both platforms' analytics identically over POIs near the pose,
	// so the compared frames exercise the sketch-TopK interpretation path.
	var nearIDs []uint64
	for _, poi := range src.POIs().Nearest(s.Pose().Position, 8) {
		nearIDs = append(nearIDs, poi.ID)
	}
	seedAnalytics(src, nearIDs)
	seedAnalytics(dst, nearIDs)

	// Capture pre-snapshot observables for comparison.
	wantStats := s.Stats()
	wantPose := s.Pose()
	s.mu.Lock()
	wantGaze := make(map[uint64]float64, len(s.gaze))
	for k, v := range s.gaze {
		wantGaze[k] = v
	}
	s.mu.Unlock()
	s.telem.mu.Lock()
	var wantTelem [numTelemetryTopics][][]byte
	telemRecords := 0
	for topic := range s.telem.buffers {
		for _, v := range s.telem.buffers[topic].values {
			wantTelem[topic] = append(wantTelem[topic], append([]byte(nil), v...))
			telemRecords++
		}
	}
	s.telem.mu.Unlock()
	if telemRecords == 0 {
		t.Fatal("test drove no buffered telemetry; snapshot move has nothing to pin")
	}

	var buf wire.Buffer
	s.EncodeSnapshotInto(&buf)
	if !src.DetachSession(s.ID) {
		t.Fatal("source session not live at detach")
	}
	if _, live := src.Session(s.ID); live {
		t.Fatal("session still in source registry after detach")
	}

	// The snapshot moved the telemetry records: nothing may remain on the
	// source to double-publish.
	s.telem.mu.Lock()
	for topic := range s.telem.buffers {
		if n := len(s.telem.buffers[topic].values); n != 0 {
			t.Fatalf("topic %d kept %d records after snapshot; export must move, not copy", topic, n)
		}
	}
	s.telem.mu.Unlock()

	r, err := dst.RestoreSession(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != s.ID {
		t.Fatalf("restored ID %d, want %d", r.ID, s.ID)
	}
	if got, live := dst.Session(s.ID); !live || got != r {
		t.Fatal("restored session not registered in destination")
	}

	if got := r.Stats(); got != wantStats {
		t.Fatalf("restored stats %+v, want %+v", got, wantStats)
	}
	if got := r.Pose(); got != wantPose {
		t.Fatalf("restored pose %+v, want %+v", got, wantPose)
	}
	r.mu.Lock()
	gotGaze := r.gaze
	r.mu.Unlock()
	if !reflect.DeepEqual(gotGaze, wantGaze) {
		t.Fatalf("restored gaze %v, want %v", gotGaze, wantGaze)
	}
	r.telem.mu.Lock()
	for topic := range r.telem.buffers {
		if !reflect.DeepEqual(r.telem.buffers[topic].values, wantTelem[topic]) {
			r.telem.mu.Unlock()
			t.Fatalf("topic %d telemetry records differ after restore", topic)
		}
	}
	r.telem.mu.Unlock()

	// Tracking continuity: both fusers must make identical predictions.
	if src.cfg.City.Center != dst.cfg.City.Center {
		t.Fatal("test platforms disagree on origin")
	}
	if gs, vs := s.fuser.UpdateCounts(); true {
		gr, vr := r.fuser.UpdateCounts()
		if gs != gr || vs != vr {
			t.Fatalf("update counts (%d,%d) restored as (%d,%d)", gs, vs, gr, vr)
		}
	}

	// RNG stream: both sessions must produce the same future sequence.
	for i := 0; i < 50; i++ {
		if a, b := s.rng.Float64(), r.rng.Float64(); a != b {
			t.Fatalf("RNG stream diverged at draw %d: %v vs %v", i, a, b)
		}
	}

	// Frame equivalence: against identical analytics state, the restored
	// session's next frame must encode byte-identically to the source's —
	// including the interpretation tags drawn from the sketch TopK.
	at := time.Unix(1700000100, 0)
	fs, err := s.Frame(at)
	if err != nil {
		t.Fatal(err)
	}
	fs.Elapsed = 0 // wall-clock measurement: the one legitimately varying field
	var srcFrame wire.Buffer
	EncodeFrameInto(&srcFrame, fs)
	fr, err := r.Frame(at)
	if err != nil {
		t.Fatal(err)
	}
	fr.Elapsed = 0
	var dstFrame wire.Buffer
	EncodeFrameInto(&dstFrame, fr)
	if string(srcFrame.Bytes()) != string(dstFrame.Bytes()) {
		t.Fatalf("restored session renders a different frame (%d vs %d bytes)", srcFrame.Len(), dstFrame.Len())
	}
	if len(fr.TagsFor) == 0 {
		t.Fatal("frames carried no interpretation tags; sketch-TopK equivalence untested")
	}

	// A second import of the same ID must fail loudly.
	if _, err := dst.RestoreSession(buf.Bytes()); err == nil {
		t.Fatal("duplicate snapshot import accepted")
	}

	// Future platform-assigned IDs must not collide with the imported one.
	if ns := dst.NewSession(); ns.ID <= r.ID {
		t.Fatalf("NewSession minted %d, colliding with imported watermark %d", ns.ID, r.ID)
	}
}

// TestSessionSnapshotRestoredFrameAllocs re-pins the zero-allocation frame
// budget on a restored session: migration must hand back a session whose
// scratch warms up to the same steady state as a native one.
func TestSessionSnapshotRestoredFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	src := snapshotTestPlatform(t)
	dst := snapshotTestPlatform(t)
	s := src.NewSession()
	driveSession(t, s)

	var buf wire.Buffer
	s.EncodeSnapshotInto(&buf)
	src.DetachSession(s.ID)
	r, err := dst.RestoreSession(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000100, 0)
	for i := 0; i < 20; i++ {
		if _, err := r.Frame(now); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.Frame(now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("restored session frames allocate %.1f objects/op in steady state, want ≤1", allocs)
	}
}

// TestSessionSnapshotRejectsCorruptPayloads: truncations and an unknown
// version must fail typed, never panic or half-import.
func TestSessionSnapshotRejectsCorruptPayloads(t *testing.T) {
	src := snapshotTestPlatform(t)
	dst := snapshotTestPlatform(t)
	s := src.NewSession()
	driveSession(t, s)
	var buf wire.Buffer
	s.EncodeSnapshotInto(&buf)
	full := buf.Bytes()

	for _, n := range []int{0, 1, 3, 10, len(full) / 2, len(full) - 1} {
		if _, err := dst.RestoreSession(full[:n]); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) accepted", n, len(full))
		}
		if got := dst.NumSessions(); got != 0 {
			t.Fatalf("failed import leaked %d sessions into the registry", got)
		}
	}
	bad := append([]byte(nil), full...)
	bad[0] = 99 // unknown version
	if _, err := dst.RestoreSession(bad); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}

	// An implausible RNG draw count must be rejected before restore spins
	// replaying it: rebuild the snapshot prefix with a huge draws field.
	var forged wire.Buffer
	forged.Byte(1)              // version
	forged.Uvarint(s.ID + 1000) // fresh ID
	forged.Uvarint(0)           // level
	forged.Uvarint(0)           // frames
	forged.Uvarint(0)           // overruns
	forged.Varint(1)            // rng seed
	forged.Uvarint(1 << 50)     // rng draws: would replay for years
	if _, err := dst.RestoreSession(forged.Bytes()); err == nil || !strings.Contains(err.Error(), "RNG draw count") {
		t.Fatalf("implausible RNG draw count not rejected: %v", err)
	}
}
