package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/arml"
	"arbd/internal/geo"
	"arbd/internal/privacy"
	"arbd/internal/render"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/tracking"
	"arbd/internal/wire"
)

// DegradeLevel is the timeliness controller's state: when frames blow the
// deadline the session sheds work instead of stalling (§4.1). Level zero is
// full quality.
type DegradeLevel int

// Degradation levels.
const (
	DegradeNone DegradeLevel = iota
	DegradeRadius
	DegradeInterp
)

// String names the level for stats output.
func (d DegradeLevel) String() string {
	switch d {
	case DegradeNone:
		return "full"
	case DegradeRadius:
		return "reduced-radius"
	case DegradeInterp:
		return "skip-interpretation"
	default:
		return fmt.Sprintf("degrade(%d)", int(d))
	}
}

// Session is one device's connection to the platform. All methods are safe
// for concurrent use: a single mutex serialises the session's own state
// (tracking, gaze, degradation), which keeps per-session ordering while the
// platform scales across sessions.
type Session struct {
	ID       uint64
	platform *Platform
	rng      *sim.Rand // per-session stream: the platform rng is not shared
	telem    *telemetryBatcher

	mu     sync.Mutex
	fuser  *tracking.Fuser
	gaze   map[uint64]float64 // annotation dwell, ms
	camera render.Camera
	occl   []render.Occluder // shared, read-only platform slice

	level      DegradeLevel
	lastLayout []render.Annotation
	frames     uint64
	overruns   uint64
	principal  string
	scratch    *frameScratch // nil when Config.DisableFrameScratch
}

// frameScratch holds the per-session reusable buffers of the frame hot
// path, so a session rendering at device rates allocates (nearly) nothing
// per frame in steady state. All fields are guarded by Session.mu. Layouts
// are double-buffered because jitter compares the previous frame's layout
// against the new one before the old buffer can be recycled.
type frameScratch struct {
	pois    []geo.POI
	anns    []render.Annotation
	laid    [2][]render.Annotation
	cur     int // index into laid holding the most recent layout
	layout  render.LayoutScratch
	tags    map[uint64][]arml.Tag
	metrics map[string]float64
	rec     []uint64
	key     []byte                  // analytics key scratch (poi-<id>)
	hot     []analytics.HeavyHitter // sketch TopK snapshot scratch
	frame   Frame                   // the returned *Frame itself is reused
}

func newFrameScratch() *frameScratch {
	return &frameScratch{
		tags:    make(map[uint64][]arml.Tag),
		metrics: make(map[string]float64, 4),
	}
}

// NewSession opens a session for a device, registers it in the sharded
// session registry, and returns it. The session owns the device's tracking
// state and privacy principal.
func (p *Platform) NewSession() *Session {
	s := p.buildSession(p.nextSess.Add(1))
	p.sessions.add(s)
	return s
}

// SessionOrNew returns the live session with the given ID, creating and
// registering one if absent. This is the shard-node path: the router mints
// session IDs and a single backend connection multiplexes many sessions, so
// the shard resolves each envelope's session by ID instead of owning one
// session per connection. Safe for concurrent use; when two callers race on
// the same new ID exactly one session wins and both get it.
func (p *Platform) SessionOrNew(id uint64) *Session {
	if s, ok := p.sessions.get(id); ok {
		return s
	}
	// Keep platform-assigned IDs ahead of externally minted ones so a later
	// NewSession cannot collide with a router-assigned session.
	for {
		cur := p.nextSess.Load()
		if cur >= id || p.nextSess.CompareAndSwap(cur, id) {
			break
		}
	}
	s, _ := p.sessions.addIfAbsent(p.buildSession(id))
	return s
}

// buildSession constructs (but does not register) a session with the ID.
func (p *Platform) buildSession(id uint64) *Session {
	principal := fmt.Sprintf("session-%d", id)
	s := &Session{
		ID:        id,
		platform:  p,
		rng:       p.rng.Child(principal),
		telem:     newTelemetryBatcher(principal, p.load, p.cfg.TelemetryMaxDelay, &p.telemTopics),
		fuser:     tracking.NewFuser(p.cfg.City.Center, p.pois),
		gaze:      make(map[uint64]float64),
		camera:    render.DefaultCamera,
		occl:      p.occluders,
		principal: principal,
	}
	if !p.cfg.DisableFrameScratch {
		s.scratch = newFrameScratch()
	}
	return s
}

// OnGPS feeds a position fix: it updates tracking and publishes a
// privacy-gated location record to the telemetry topic. If the session's
// privacy budget is exhausted, telemetry stops but tracking continues —
// privacy never degrades the user's own experience.
func (s *Session) OnGPS(fix sensor.GPSFix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fuser.OnGPS(fix)
	reported := fix.Position
	p := s.platform
	if p.cfg.LocationEpsilon > 0 {
		if err := p.acct.Spend(s.principal, p.cfg.LocationEpsilon); err != nil {
			p.suppressedCtr.Inc()
			return nil //nolint:nilerr // suppression is the intended behaviour
		}
		noisy, err := privacy.PlanarLaplace(s.rng, fix.Position, p.cfg.LocationEpsilon)
		if err != nil {
			return err
		}
		reported = noisy
	}
	// The buffer is function-local and the batcher owns the bytes until
	// flush, so handing its storage over directly is safe — no tail copy.
	var buf wire.Buffer
	buf.Uvarint(s.ID)
	buf.Float64(reported.Lat)
	buf.Float64(reported.Lon)
	return s.telem.enqueue(telemetryLocations, buf.Bytes())
}

// OnIMU feeds an inertial sample into tracking.
func (s *Session) OnIMU(samp sensor.IMUSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fuser.OnIMU(samp)
}

// OnVision feeds camera landmark observations into tracking.
func (s *Session) OnVision(now time.Time, obs []sensor.LandmarkObservation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fuser.OnVision(now, obs)
}

// OnGaze accumulates dwell on an annotation and records it as an implicit
// interaction (gazing at a shop is a signal, §3.1).
func (s *Session) OnGaze(sample sensor.GazeSample) error {
	if sample.TargetID == 0 {
		return nil
	}
	s.mu.Lock()
	s.gaze[sample.TargetID] += sample.DwellMS
	s.mu.Unlock()
	if sample.DwellMS < 1500 {
		return nil // only sustained attention becomes telemetry
	}
	return s.RecordInteraction(sample.TargetID, 0.3)
}

// RecordInteraction publishes an explicit user-POI interaction (purchase,
// check-in, tap) to the analytics plane.
func (s *Session) RecordInteraction(poiID uint64, weight float64) error {
	payload := encodeInteraction(interaction{
		POIKey: poiKey(poiID),
		User:   s.ID,
		Weight: weight,
	})
	return s.telem.enqueue(telemetryInteractions, payload)
}

// Pose returns the fused pose estimate.
func (s *Session) Pose() sensor.Pose {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fuser.Pose()
}

// Level returns the current degradation level.
func (s *Session) Level() DegradeLevel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.level
}

// Stats summarises session health.
type Stats struct {
	Frames   uint64
	Overruns uint64
	Level    DegradeLevel
}

// Stats returns session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Frames: s.frames, Overruns: s.overruns, Level: s.level}
}

// Frame is one rendered overlay.
type Frame struct {
	Time        time.Time
	Pose        sensor.Pose
	Annotations []render.Annotation
	// TagsFor maps annotation IDs to their semantic tags (when
	// interpretation ran).
	TagsFor map[uint64][]arml.Tag
	// Recommended lists recommended POI IDs in rank order (empty without a
	// recommender).
	Recommended []uint64
	Elapsed     time.Duration
	Level       DegradeLevel
	JitterPx    float64
	// Index counts the session's frames: the Nth rendered frame has Index N.
	// Delta encoders key off it — two frames diff cleanly only when their
	// indices are consecutive (an interleaved render for another consumer
	// advances the scratch buffers and invalidates PrevAnnotations as a
	// delta base).
	Index uint64
	// PrevAnnotations is the previous frame's laid-out overlay — the other
	// half of the scratch double-buffer. Valid under the same aliasing rules
	// as Annotations: consume before the session's next Frame call.
	PrevAnnotations []render.Annotation
}

// Frame runs the per-frame pipeline at the fused pose and returns the
// overlay. It implements the timeliness loop: measure, and if over budget,
// degrade the next frame; if comfortably under budget, recover.
//
// The returned *Frame — the struct itself as well as its slices and maps —
// aliases per-session buffers that subsequent Frame calls on the same
// session reuse: consume (or deep-copy) a frame before requesting the next
// one. Config.DisableFrameScratch restores fully allocating frames.
//
//arbd:hotpath
func (s *Session) Frame(now time.Time) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frameLocked(now)
}

// FrameVisit renders one frame and invokes visit with it before releasing
// the session lock, so visit observes the frame's scratch-backed contents
// atomically with respect to the session's next Frame call. Asynchronous
// servers (the shard role) encode the wire response inside visit: without
// the lock, a pipelined second frame request could re-enter Frame on
// another worker and overwrite the shared scratch mid-encode. visit must
// not call back into the session.
//
//arbd:hotpath
func (s *Session) FrameVisit(now time.Time, visit func(*Frame)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.frameLocked(now)
	if err != nil {
		return err
	}
	visit(f)
	return nil
}

// frameLocked is the frame pipeline; callers hold s.mu.
//
//arbd:hotpath
func (s *Session) frameLocked(now time.Time) (*Frame, error) {
	start := s.platform.cfg.Clock.Now()
	pose := s.fuser.Pose()

	sc := s.scratch
	if sc == nil {
		sc = newFrameScratch() // DisableFrameScratch: fresh buffers per frame
	}

	radius := s.platform.cfg.AnnotationRadiusM
	maxAnn := s.platform.cfg.MaxAnnotations
	if s.level >= DegradeRadius {
		radius /= 2
		maxAnn /= 2
	}

	// 1. Geospatial context.
	pois := s.platform.pois.QueryRadiusInto(sc.pois[:0], pose.Position, radius, 0)
	sc.pois = pois
	if len(pois) > maxAnn*3 {
		pois = pois[:maxAnn*3] // nearest first; cap the working set
	}

	// 2. Interpretation: analytics → semantic tags (skipped at the deepest
	// degradation level).
	tags := sc.tags
	clear(tags)
	if s.level < DegradeInterp {
		interp := s.platform.interpreter()
		// One sketch snapshot per frame, not per POI: TopK copies and
		// sorts the sketch under the hot lock. The snapshot lands in a
		// per-session scratch slice so steady-state frames don't allocate.
		hottest := s.platform.HotPOIsInto(sc.hot[:0], 1)
		sc.hot = hottest
		for i := range pois {
			m := s.contextMetrics(sc, &pois[i], hottest)
			if len(m) == 0 {
				continue
			}
			if fired := interp.Interpret(m); len(fired) > 0 {
				tags[pois[i].ID] = fired
			}
		}
	}

	// 3. Recommendations re-ranked by live context.
	recommended := sc.rec[:0]
	s.platform.recMu.RLock()
	rec := s.platform.rec
	s.platform.recMu.RUnlock()
	if rec != nil {
		for _, score := range rec.Recommend(s.ID, 5) {
			recommended = append(recommended, score.ItemID)
		}
	}
	sc.rec = recommended

	// 4. Layout, double-buffered: the new layout lands in the buffer the
	// frame before last used, leaving lastLayout intact for the jitter
	// comparison.
	anns := render.AnnotationsFromPOIsInto(sc.anns[:0], pose, pois)
	sc.anns = anns
	for i := range anns {
		if t, ok := tags[anns[i].ID]; ok {
			anns[i].Priority *= 1.5 // tagged content is more relevant
			//arbd:alloc-ok fires only on interpretation-tag hits, and Label is a string by API contract
			anns[i].Label = anns[i].Label + " [" + t[0].Value + "]"
		}
	}
	next := sc.cur ^ 1
	laid := render.LayoutAnchoredInto(sc.laid[next][:0], &sc.layout, s.camera, pose, anns, s.occl, render.LayoutOptions{})
	if len(laid) > maxAnn {
		laid = laid[:maxAnn]
	}
	prevLayout := s.lastLayout
	jitter := render.Jitter(prevLayout, laid)
	sc.laid[next] = laid
	sc.cur = next
	s.lastLayout = laid

	elapsed := s.platform.cfg.Clock.Since(start)
	s.frames++
	s.adapt(elapsed)
	s.platform.frameLat.Observe(elapsed)

	// The Frame struct itself lives in scratch too: with the scratch
	// enabled the same *Frame is returned every call (fresh per call when
	// DisableFrameScratch allocated sc above), which removes the last
	// steady-state heap allocation of the hot path.
	f := &sc.frame
	*f = Frame{
		Time:            now,
		Pose:            pose,
		Annotations:     laid,
		TagsFor:         tags,
		Recommended:     recommended,
		Elapsed:         elapsed,
		Level:           s.level,
		JitterPx:        jitter,
		Index:           s.frames,
		PrevAnnotations: prevLayout,
	}
	return f, nil
}

// adapt moves the degradation level: one step harsher on overrun, one step
// back toward full quality when under half the budget.
func (s *Session) adapt(elapsed time.Duration) {
	deadline := s.platform.cfg.FrameDeadline
	switch {
	case elapsed > deadline:
		s.overruns++
		if s.level < DegradeInterp {
			s.level++
		}
	case elapsed < deadline/2 && s.level > DegradeNone:
		s.level--
	}
}

// contextMetrics assembles the metric map for one POI from the live
// analytics views, reusing the scratch key buffer and metric map across
// POIs. hottest is the frame's shared HotPOIs(1) snapshot. The returned map
// is valid until the next contextMetrics call on the same scratch.
//
//arbd:hotpath
func (s *Session) contextMetrics(sc *frameScratch, poi *geo.POI, hottest []analytics.HeavyHitter) map[string]float64 {
	sc.key = appendPOIKey(sc.key[:0], poi.ID)
	stats, ok := s.platform.crowd.GetKey(sc.key)
	if !ok {
		return nil
	}
	m := sc.metrics
	clear(m)
	m["visits"] = stats.Sum
	// Crowding is this POI's traffic relative to the hottest POI.
	if len(hottest) > 0 && hottest[0].Count > 0 {
		m["crowding"] = stats.Sum / float64(hottest[0].Count)
	}
	return m
}

// GazeTargets returns the IDs of the current layout's annotations in
// priority order, for feeding the gaze simulator.
func (s *Session) GazeTargets() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.lastLayout))
	for _, a := range s.lastLayout {
		out = append(out, a.ID)
	}
	return out
}

// poiKey renders a POI ID as the string key the analytics plane groups by.
// It formats on a stack buffer with strconv instead of fmt.Sprintf: the key
// is minted on every interaction, so format-string parsing and interface
// boxing were pure overhead.
func poiKey(id uint64) string {
	var b [24]byte
	return string(appendPOIKey(b[:0], id))
}

// appendPOIKey appends the poi-<id> analytics key to dst.
//
//arbd:hotpath
func appendPOIKey(dst []byte, id uint64) []byte {
	dst = append(dst, "poi-"...)
	return strconv.AppendUint(dst, id, 10)
}

// interaction is the wire-level telemetry record for user-POI events.
type interaction struct {
	POIKey string
	User   uint64
	Weight float64
}

func encodeInteraction(ev interaction) []byte {
	// The buffer is function-local, so its storage can be returned without
	// the defensive tail copy.
	var b wire.Buffer
	b.String(ev.POIKey)
	b.Uvarint(ev.User)
	b.Float64(ev.Weight)
	return b.Bytes()
}

func decodeInteraction(p []byte) (interaction, error) {
	r := wire.NewReader(p)
	var ev interaction
	var err error
	if ev.POIKey, err = r.String(); err != nil {
		return ev, r.Err(err, "poi key")
	}
	if ev.User, err = r.Uvarint(); err != nil {
		return ev, r.Err(err, "user")
	}
	if ev.Weight, err = r.Float64(); err != nil {
		return ev, r.Err(err, "weight")
	}
	return ev, nil
}
