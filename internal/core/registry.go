package core

import (
	"sync"
	"sync/atomic"
)

// sessionRegistry tracks live sessions without funnelling every lookup
// through one lock: sessions are spread over a power-of-two number of
// shards, each with its own RWMutex, so concurrent NewSession / lookup /
// removal traffic from many connections only contends within a shard.
type sessionRegistry struct {
	shards []registryShard
	mask   uint64
	count  atomic.Int64
}

type registryShard struct {
	mu       sync.RWMutex
	sessions map[uint64]*Session
}

// defaultRegistryShards is sized for tens of cores; shard choice is cheap
// enough that over-sharding costs only a few empty maps.
const defaultRegistryShards = 32

func newSessionRegistry(shards int) *sessionRegistry {
	if shards < 1 {
		shards = 1
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &sessionRegistry{shards: make([]registryShard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[uint64]*Session)
	}
	return r
}

// shardFor mixes the ID before masking: session IDs are sequential, and
// without mixing, consecutive sessions would hit consecutive shards in
// lockstep batches. SplitMix64's finalizer spreads them uniformly.
func (r *sessionRegistry) shardFor(id uint64) *registryShard {
	h := id
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &r.shards[h&r.mask]
}

func (r *sessionRegistry) add(s *Session) {
	sh := r.shardFor(s.ID)
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
	r.count.Add(1)
}

func (r *sessionRegistry) get(id uint64) (*Session, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

func (r *sessionRegistry) remove(id uint64) (*Session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return s, ok
}

func (r *sessionRegistry) len() int { return int(r.count.Load()) }

// forEach visits every live session. Each shard is snapshotted under its
// read lock and the callback runs lock-free, so callbacks may call back
// into the registry (or block on session work) without holding shards up.
// Returning false stops the walk.
func (r *sessionRegistry) forEach(fn func(*Session) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		snapshot := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			snapshot = append(snapshot, s)
		}
		sh.mu.RUnlock()
		for _, s := range snapshot {
			if !fn(s) {
				return
			}
		}
	}
}

// Session returns the live session with the given ID.
func (p *Platform) Session(id uint64) (*Session, bool) { return p.sessions.get(id) }

// NumSessions returns the number of live sessions.
func (p *Platform) NumSessions() int { return p.sessions.len() }

// ForEachSession visits every live session; return false to stop early.
func (p *Platform) ForEachSession(fn func(*Session) bool) { p.sessions.forEach(fn) }

// EndSession flushes a session's buffered telemetry and removes it from the
// registry. Servers call it when the device disconnects; without it sessions
// accumulate for the life of the platform.
func (p *Platform) EndSession(id uint64) error {
	s, ok := p.sessions.remove(id)
	if !ok {
		return nil
	}
	return s.FlushTelemetry()
}
