package core

import (
	"sync"
	"sync/atomic"
)

// sessionRegistry tracks live sessions without funnelling every lookup
// through one lock: sessions are spread over a power-of-two number of
// shards, each with its own RWMutex, so concurrent NewSession / lookup /
// removal traffic from many connections only contends within a shard.
type sessionRegistry struct {
	shards []registryShard
	mask   uint64
	count  atomic.Int64
}

type registryShard struct {
	mu       sync.RWMutex
	sessions map[uint64]*Session
}

// defaultRegistryShards is sized for tens of cores; shard choice is cheap
// enough that over-sharding costs only a few empty maps.
const defaultRegistryShards = 32

func newSessionRegistry(shards int) *sessionRegistry {
	if shards < 1 {
		shards = 1
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &sessionRegistry{shards: make([]registryShard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[uint64]*Session)
	}
	return r
}

// MixSessionID applies the SplitMix64 finalizer to a session ID. Session
// IDs are sequential, so anything that partitions by ID — the in-process
// registry shards here, and the multi-node router's rendezvous ring — must
// mix first or consecutive sessions land on consecutive partitions in
// lockstep batches. Both partitioners key off this one mix so the spread
// properties are shared.
func MixSessionID(id uint64) uint64 {
	h := id
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// shardFor picks the registry shard owning an ID.
func (r *sessionRegistry) shardFor(id uint64) *registryShard {
	return &r.shards[MixSessionID(id)&r.mask]
}

func (r *sessionRegistry) add(s *Session) {
	sh := r.shardFor(s.ID)
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
	r.count.Add(1)
}

// addIfAbsent registers s unless a session with its ID already exists, in
// which case the existing session is returned. Shard nodes use it to make
// concurrent get-or-create by router-assigned ID race-free.
func (r *sessionRegistry) addIfAbsent(s *Session) (*Session, bool) {
	sh := r.shardFor(s.ID)
	sh.mu.Lock()
	if cur, ok := sh.sessions[s.ID]; ok {
		sh.mu.Unlock()
		return cur, true
	}
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
	r.count.Add(1)
	return s, false
}

func (r *sessionRegistry) get(id uint64) (*Session, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

func (r *sessionRegistry) remove(id uint64) (*Session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return s, ok
}

func (r *sessionRegistry) len() int { return int(r.count.Load()) }

// forEach visits every live session. Each shard is snapshotted under its
// read lock and the callback runs lock-free, so callbacks may call back
// into the registry (or block on session work) without holding shards up.
// Returning false stops the walk.
func (r *sessionRegistry) forEach(fn func(*Session) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		snapshot := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			snapshot = append(snapshot, s)
		}
		sh.mu.RUnlock()
		for _, s := range snapshot {
			if !fn(s) {
				return
			}
		}
	}
}

// Session returns the live session with the given ID.
func (p *Platform) Session(id uint64) (*Session, bool) { return p.sessions.get(id) }

// NumSessions returns the number of live sessions.
func (p *Platform) NumSessions() int { return p.sessions.len() }

// ForEachSession visits every live session; return false to stop early.
func (p *Platform) ForEachSession(fn func(*Session) bool) { p.sessions.forEach(fn) }

// EndSession flushes a session's buffered telemetry and removes it from the
// registry. Servers call it when the device disconnects; without it sessions
// accumulate for the life of the platform.
func (p *Platform) EndSession(id uint64) error {
	s, ok := p.sessions.remove(id)
	if !ok {
		return nil
	}
	return s.FlushTelemetry()
}
