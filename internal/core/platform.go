// Package core implements the paper's primary contribution: the convergence
// platform that feeds AR front-ends from big-data backends. A Platform owns
// the substrates — POI store, message broker, stream analytics, recommender,
// semantic interpreter, privacy accountant — and Sessions run the per-frame
// loop: fuse sensors → privacy-gate location telemetry → query geospatial
// and analytic context → interpret it into semantic tags → lay out the AR
// overlay, all under a frame deadline with graceful degradation (§4.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/arml"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/mq"
	"arbd/internal/privacy"
	"arbd/internal/recommend"
	"arbd/internal/render"
	"arbd/internal/sim"
	"arbd/internal/stream"
)

// Platform errors.
var (
	ErrStarted    = errors.New("core: platform already started")
	ErrNotStarted = errors.New("core: platform not started")
)

// Topic names on the platform broker.
const (
	TopicLocations    = "telemetry.locations"
	TopicInteractions = "telemetry.interactions"
)

// Config parameterises a Platform.
type Config struct {
	Seed int64
	// City describes the synthetic world; Center must be set.
	City geo.CityConfig
	// POIIndex selects the spatial index (default R-tree).
	POIIndex geo.IndexKind
	// FrameDeadline is the per-frame latency budget (default 33 ms — 30 fps).
	FrameDeadline time.Duration
	// AnnotationRadiusM bounds the context query around the user
	// (default 250 m).
	AnnotationRadiusM float64
	// MaxAnnotations caps the overlay size (default 20).
	MaxAnnotations int
	// LocationEpsilon enables the geo-indistinguishability gate on outgoing
	// location telemetry (per-meter ε; 0 disables perturbation).
	LocationEpsilon float64
	// PrivacyBudget is the total ε each session may spend (default 100).
	PrivacyBudget float64
	// TelemetryBatchSize is how many telemetry records a session buffers
	// per topic before publishing them to the broker in one batch
	// (default 32; 1 publishes every record immediately). Buffered records
	// become broker-visible on the size or age trigger, or explicitly via
	// Session.FlushTelemetry / Platform.FlushTelemetry / EndSession.
	TelemetryBatchSize int
	// TelemetryMaxDelay bounds how long a buffered telemetry record may
	// wait before it is published (default 50 ms). After Start, a
	// background sweeper enforces it; without Start, the bound is enforced
	// on the session's next enqueue.
	TelemetryMaxDelay time.Duration
	// TelemetryMaxBatchSize caps adaptive batch sizing: when observed flush
	// latency rises, sessions batch more records per publish so each broker
	// round-trip amortises better, never beyond this ceiling (default
	// 8× TelemetryBatchSize). The age bound above still applies.
	TelemetryMaxBatchSize int
	// DisableFrameScratch turns off per-session buffer reuse on the frame
	// hot path, restoring the pre-pooling behaviour: each frame's buffers
	// are freshly allocated, so later frames never overwrite an earlier
	// frame's results. (The session still keeps a reference to the latest
	// layout for jitter, so returned annotations must not be mutated in
	// either mode.) Benchmarks use it to quantify GC pressure (E15);
	// production leaves it false.
	DisableFrameScratch bool
	// SessionShards is the session-registry shard count, rounded up to a
	// power of two (default 32).
	SessionShards int
	// Clock defaults to the wall clock; tests inject a virtual one.
	Clock sim.Clock
}

func (c *Config) defaults() {
	if c.FrameDeadline <= 0 {
		c.FrameDeadline = 33 * time.Millisecond
	}
	if c.AnnotationRadiusM <= 0 {
		c.AnnotationRadiusM = 250
	}
	if c.MaxAnnotations <= 0 {
		c.MaxAnnotations = 20
	}
	if c.PrivacyBudget <= 0 {
		c.PrivacyBudget = 100
	}
	if c.TelemetryBatchSize <= 0 {
		c.TelemetryBatchSize = 32
	}
	if c.TelemetryMaxDelay <= 0 {
		c.TelemetryMaxDelay = 50 * time.Millisecond
	}
	if c.TelemetryMaxBatchSize <= 0 {
		c.TelemetryMaxBatchSize = 8 * c.TelemetryBatchSize
	}
	if c.SessionShards <= 0 {
		c.SessionShards = defaultRegistryShards
	}
	if c.POIIndex == 0 {
		c.POIIndex = geo.IndexRTree
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.City.NumPOIs <= 0 {
		c.City.NumPOIs = 2000
	}
	if c.City.RadiusM <= 0 {
		c.City.RadiusM = 3000
	}
}

// Platform is the ARBD convergence system.
type Platform struct {
	cfg    Config
	rng    *sim.Rand
	reg    *metrics.Registry
	pois   *geo.Store
	broker *mq.Broker
	acct   *privacy.Accountant

	// crowd maintains per-POI interaction aggregates incrementally — the
	// context analytics overlays draw on.
	crowd *analytics.View
	// hot tracks trending POIs with a space-saving sketch; the sketch
	// itself is single-writer, so hotMu covers the consumer's Adds against
	// every session's TopK reads.
	hot   *analytics.SpaceSaving
	hotMu sync.RWMutex

	interp   *arml.Interpreter
	interpMu sync.RWMutex
	rec      recommend.Recommender
	recMu    sync.RWMutex

	pipe *stream.Pipeline
	// load aggregates telemetry flush latency across sessions and derives
	// the adaptive batch size; LoadSignal exposes it to frame admission.
	load *loadTracker
	// telemTopics holds cached broker handles for the telemetry topics,
	// indexed by the telemetry* constants: every session's batcher flushes
	// through them, skipping the broker's per-call topic and counter lookups.
	telemTopics [numTelemetryTopics]*mq.Topic
	// suppressedCtr is resolved once: OnGPS increments it per suppressed
	// fix and must not pay a registry lookup on that path.
	suppressedCtr *metrics.Counter
	// flushErrs and frameLat are likewise resolved once: the flush loop
	// bumps flushErrs per failed session flush and every Frame call
	// observes frameLat, so neither may pay a registry lookup.
	flushErrs *metrics.Counter
	frameLat  *metrics.Histogram

	// sessions is the sharded live-session registry; nextSess hands out
	// IDs without touching any lock.
	sessions *sessionRegistry
	nextSess atomic.Uint64
	// occluders is the shared static occluder set: the city never changes,
	// so sessions reference one slice instead of rebuilding it each.
	occluders []render.Occluder

	mu        sync.Mutex
	started   bool
	stopped   bool
	group     *mq.Group // analytics consumer group (set at Start)
	cancel    context.CancelFunc
	done      chan struct{}
	flushStop chan struct{}
	flushDone chan struct{}
}

// NewPlatform builds a platform over a generated synthetic city.
func NewPlatform(cfg Config) (*Platform, error) {
	cfg.defaults()
	// A zero-value center means the config was never filled in; the real
	// (0,0) coordinate is open ocean, so rejecting it loses nothing.
	if !cfg.City.Center.Valid() || cfg.City.Center == (geo.Point{}) {
		return nil, fmt.Errorf("core: city center %v invalid or unset", cfg.City.Center)
	}
	cfg.City.Seed = cfg.Seed
	pois, err := geo.LoadStore(geo.GenerateCity(cfg.City), cfg.POIIndex)
	if err != nil {
		return nil, fmt.Errorf("core: loading city: %w", err)
	}
	p := &Platform{
		cfg:      cfg,
		rng:      sim.NewRand(cfg.Seed).Child("platform"),
		reg:      metrics.NewRegistry(),
		pois:     pois,
		broker:   mq.NewBroker(mq.WithClock(cfg.Clock)),
		acct:     privacy.NewAccountant(cfg.PrivacyBudget),
		crowd:    analytics.NewView(),
		hot:      analytics.NewSpaceSaving(64),
		interp:   arml.RetailVocabulary(),
		load:     newLoadTracker(cfg.TelemetryBatchSize, cfg.TelemetryMaxBatchSize),
		sessions: newSessionRegistry(cfg.SessionShards),
	}
	p.suppressedCtr = p.reg.Counter("core.privacy.suppressed")
	p.flushErrs = p.reg.Counter("core.telemetry.flush_errors")
	p.frameLat = p.reg.Histogram("core.frame.latency")
	p.occluders = render.OccludersFromPOIs(p.pois.All(), 30)
	for i, topic := range telemetryTopicNames {
		if err := p.broker.CreateTopic(topic, mq.TopicConfig{Partitions: 4}); err != nil {
			return nil, err
		}
		tp, err := p.broker.Topic(topic)
		if err != nil {
			return nil, err
		}
		p.telemTopics[i] = tp
	}
	return p, nil
}

// POIs exposes the platform's POI store.
func (p *Platform) POIs() *geo.Store { return p.pois }

// Broker exposes the ingestion broker.
func (p *Platform) Broker() *mq.Broker { return p.broker }

// Metrics exposes the platform registry.
func (p *Platform) Metrics() *metrics.Registry { return p.reg }

// CrowdView exposes the incrementally-maintained interaction view.
func (p *Platform) CrowdView() *analytics.View { return p.crowd }

// SetRecommender installs the recommendation model sessions consult.
func (p *Platform) SetRecommender(r recommend.Recommender) {
	p.recMu.Lock()
	defer p.recMu.Unlock()
	p.rec = r
}

// SetInterpreter replaces the semantic vocabulary (default: retail).
func (p *Platform) SetInterpreter(in *arml.Interpreter) {
	p.interpMu.Lock()
	defer p.interpMu.Unlock()
	p.interp = in
}

// interpreter returns the current semantic vocabulary.
func (p *Platform) interpreter() *arml.Interpreter {
	p.interpMu.RLock()
	defer p.interpMu.RUnlock()
	return p.interp
}

// Start launches the analytics plane: a consumer group over the interaction
// topic feeding a stream pipeline whose windowed output updates the crowd
// view. Frame serving works without Start, but context tags will be empty.
func (p *Platform) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return ErrStarted
	}
	p.started = true

	p.pipe = stream.NewPipeline("crowd", stream.WithRegistry(p.reg))
	p.pipe.Source("interactions").
		Window("per-poi-1m", 4, stream.Tumbling(time.Minute), stream.Sum()).
		Sink("crowd-view", func(e stream.Event) {
			p.crowd.Apply(analytics.Row{Group: e.Key, Value: e.Value})
		})
	if err := p.pipe.Start(); err != nil {
		return err
	}

	group, err := p.broker.NewGroup(TopicInteractions)
	if err != nil {
		return err
	}
	p.group = group
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.done = make(chan struct{})
	consumedCtr := p.reg.Counter("core.interactions.consumed")
	badCtr := p.reg.Counter("core.interactions.bad")
	go func() {
		defer close(p.done)
		// Decoded events accumulate in a scratch slice reused across polls so
		// the sketch updates take ONE hotMu acquisition per batch — under
		// sustained ingest, per-record lock traffic on hotMu was contending
		// directly with every frame's TopK reads.
		type decoded struct {
			evt interaction
			at  time.Time
		}
		var scratch []decoded
		_ = group.Consume(ctx, 256, func(recs []mq.Record) error {
			scratch = scratch[:0]
			for _, r := range recs {
				evt, err := decodeInteraction(r.Value)
				if err != nil {
					badCtr.Inc()
					continue
				}
				scratch = append(scratch, decoded{evt: evt, at: r.Time})
			}
			if len(scratch) > 0 {
				p.hotMu.Lock()
				for i := range scratch {
					p.hot.Add(scratch[i].evt.POIKey)
				}
				p.hotMu.Unlock()
			}
			for i := range scratch {
				if err := p.pipe.Push("interactions", stream.Event{
					Key:   scratch[i].evt.POIKey,
					Time:  scratch[i].at,
					Value: scratch[i].evt.Weight,
				}); err != nil {
					return err
				}
			}
			consumedCtr.Add(int64(len(recs)))
			return nil
		})
	}()

	p.flushStop = make(chan struct{})
	p.flushDone = make(chan struct{})
	go func() {
		defer close(p.flushDone)
		p.flushLoop(p.flushStop)
	}()
	return nil
}

// Stop drains the analytics plane. Safe to call once after Start.
func (p *Platform) Stop() error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return ErrNotStarted
	}
	if p.stopped {
		p.mu.Unlock()
		return nil
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.flushStop)
	<-p.flushDone
	// Surface any still-buffered telemetry before the consumer goes away so
	// shutdown does not silently drop the tail of every session's stream.
	if err := p.FlushTelemetry(); err != nil {
		p.flushErrs.Inc()
	}
	p.cancel()
	<-p.done
	return p.pipe.Drain()
}

// WaitAnalyticsIdle blocks until the consumer has caught up with the
// interaction topic (used by tests and examples for determinism).
func (p *Platform) WaitAnalyticsIdle(timeout time.Duration) error {
	// Push buffered telemetry out first: "idle" means the consumer has
	// seen everything sessions produced before this call, including what
	// was batched. Records produced during the wait are concurrent
	// traffic that "idle" cannot meaningfully include.
	if err := p.FlushTelemetry(); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	consumedCtr := p.reg.Counter("core.interactions.consumed")
	for {
		lag := int64(0)
		for pi := 0; pi < 4; pi++ {
			_, newest, err := p.broker.Offsets(TopicInteractions, pi)
			if err != nil {
				return err
			}
			lag += newest
		}
		consumed := consumedCtr.Value()
		if consumed >= lag {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: analytics still %d behind after %v", lag-consumed, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// LoadSignal summarises backend pressure for admission control: how slow
// telemetry flushes are running and how far the analytics consumer lags the
// interaction topic. The frame scheduler polls it to shed frames earlier
// when the big-data plane falls behind — a frame whose context analytics
// are stale is the paper's timeliness failure even if it renders on time.
type LoadSignal struct {
	// FlushLatency is a streaming p99 estimate (P² algorithm) of telemetry
	// batch publish latency across all sessions, falling back to an EWMA
	// until the estimator has seen enough flushes.
	FlushLatency time.Duration
	// Backlog counts interaction records produced but not yet consumed by
	// the analytics plane (0 before Start).
	Backlog int64
}

// LoadSignal reports the platform's current backend pressure.
func (p *Platform) LoadSignal() LoadSignal {
	sig := LoadSignal{FlushLatency: p.load.flushLatency()}
	p.mu.Lock()
	g := p.group
	p.mu.Unlock()
	if g != nil {
		if lag, err := g.Lag(); err == nil {
			sig.Backlog = lag
		}
	}
	return sig
}

// HotPOIs returns the trending POI keys.
func (p *Platform) HotPOIs(k int) []analytics.HeavyHitter {
	p.hotMu.RLock()
	defer p.hotMu.RUnlock()
	return p.hot.TopK(k)
}

// HotPOIsInto is HotPOIs appending into dst — the frame hot path snapshots
// the sketch into per-session scratch so steady-state frames allocate
// nothing here.
func (p *Platform) HotPOIsInto(dst []analytics.HeavyHitter, k int) []analytics.HeavyHitter {
	p.hotMu.RLock()
	defer p.hotMu.RUnlock()
	return p.hot.TopKInto(dst, k)
}
