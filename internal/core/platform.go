// Package core implements the paper's primary contribution: the convergence
// platform that feeds AR front-ends from big-data backends. A Platform owns
// the substrates — POI store, message broker, stream analytics, recommender,
// semantic interpreter, privacy accountant — and Sessions run the per-frame
// loop: fuse sensors → privacy-gate location telemetry → query geospatial
// and analytic context → interpret it into semantic tags → lay out the AR
// overlay, all under a frame deadline with graceful degradation (§4.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"arbd/internal/analytics"
	"arbd/internal/arml"
	"arbd/internal/geo"
	"arbd/internal/metrics"
	"arbd/internal/mq"
	"arbd/internal/privacy"
	"arbd/internal/recommend"
	"arbd/internal/sim"
	"arbd/internal/stream"
)

// Platform errors.
var (
	ErrStarted    = errors.New("core: platform already started")
	ErrNotStarted = errors.New("core: platform not started")
)

// Topic names on the platform broker.
const (
	TopicLocations    = "telemetry.locations"
	TopicInteractions = "telemetry.interactions"
)

// Config parameterises a Platform.
type Config struct {
	Seed int64
	// City describes the synthetic world; Center must be set.
	City geo.CityConfig
	// POIIndex selects the spatial index (default R-tree).
	POIIndex geo.IndexKind
	// FrameDeadline is the per-frame latency budget (default 33 ms — 30 fps).
	FrameDeadline time.Duration
	// AnnotationRadiusM bounds the context query around the user
	// (default 250 m).
	AnnotationRadiusM float64
	// MaxAnnotations caps the overlay size (default 20).
	MaxAnnotations int
	// LocationEpsilon enables the geo-indistinguishability gate on outgoing
	// location telemetry (per-meter ε; 0 disables perturbation).
	LocationEpsilon float64
	// PrivacyBudget is the total ε each session may spend (default 100).
	PrivacyBudget float64
	// Clock defaults to the wall clock; tests inject a virtual one.
	Clock sim.Clock
}

func (c *Config) defaults() {
	if c.FrameDeadline <= 0 {
		c.FrameDeadline = 33 * time.Millisecond
	}
	if c.AnnotationRadiusM <= 0 {
		c.AnnotationRadiusM = 250
	}
	if c.MaxAnnotations <= 0 {
		c.MaxAnnotations = 20
	}
	if c.PrivacyBudget <= 0 {
		c.PrivacyBudget = 100
	}
	if c.POIIndex == 0 {
		c.POIIndex = geo.IndexRTree
	}
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.City.NumPOIs <= 0 {
		c.City.NumPOIs = 2000
	}
	if c.City.RadiusM <= 0 {
		c.City.RadiusM = 3000
	}
}

// Platform is the ARBD convergence system.
type Platform struct {
	cfg    Config
	rng    *sim.Rand
	reg    *metrics.Registry
	pois   *geo.Store
	broker *mq.Broker
	acct   *privacy.Accountant

	// crowd maintains per-POI interaction aggregates incrementally — the
	// context analytics overlays draw on.
	crowd *analytics.View
	// hot tracks trending POIs with a space-saving sketch.
	hot *analytics.SpaceSaving

	interp *arml.Interpreter
	rec    recommend.Recommender
	recMu  sync.RWMutex

	pipe *stream.Pipeline

	mu       sync.Mutex
	started  bool
	stopped  bool
	nextSess uint64
	cancel   context.CancelFunc
	done     chan struct{}
}

// NewPlatform builds a platform over a generated synthetic city.
func NewPlatform(cfg Config) (*Platform, error) {
	cfg.defaults()
	// A zero-value center means the config was never filled in; the real
	// (0,0) coordinate is open ocean, so rejecting it loses nothing.
	if !cfg.City.Center.Valid() || cfg.City.Center == (geo.Point{}) {
		return nil, fmt.Errorf("core: city center %v invalid or unset", cfg.City.Center)
	}
	cfg.City.Seed = cfg.Seed
	pois, err := geo.LoadStore(geo.GenerateCity(cfg.City), cfg.POIIndex)
	if err != nil {
		return nil, fmt.Errorf("core: loading city: %w", err)
	}
	p := &Platform{
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed).Child("platform"),
		reg:    metrics.NewRegistry(),
		pois:   pois,
		broker: mq.NewBroker(mq.WithClock(cfg.Clock)),
		acct:   privacy.NewAccountant(cfg.PrivacyBudget),
		crowd:  analytics.NewView(),
		hot:    analytics.NewSpaceSaving(64),
		interp: arml.RetailVocabulary(),
	}
	for _, topic := range []string{TopicLocations, TopicInteractions} {
		if err := p.broker.CreateTopic(topic, mq.TopicConfig{Partitions: 4}); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// POIs exposes the platform's POI store.
func (p *Platform) POIs() *geo.Store { return p.pois }

// Broker exposes the ingestion broker.
func (p *Platform) Broker() *mq.Broker { return p.broker }

// Metrics exposes the platform registry.
func (p *Platform) Metrics() *metrics.Registry { return p.reg }

// CrowdView exposes the incrementally-maintained interaction view.
func (p *Platform) CrowdView() *analytics.View { return p.crowd }

// SetRecommender installs the recommendation model sessions consult.
func (p *Platform) SetRecommender(r recommend.Recommender) {
	p.recMu.Lock()
	defer p.recMu.Unlock()
	p.rec = r
}

// SetInterpreter replaces the semantic vocabulary (default: retail).
func (p *Platform) SetInterpreter(in *arml.Interpreter) { p.interp = in }

// Start launches the analytics plane: a consumer group over the interaction
// topic feeding a stream pipeline whose windowed output updates the crowd
// view. Frame serving works without Start, but context tags will be empty.
func (p *Platform) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return ErrStarted
	}
	p.started = true

	p.pipe = stream.NewPipeline("crowd", stream.WithRegistry(p.reg))
	p.pipe.Source("interactions").
		Window("per-poi-1m", 4, stream.Tumbling(time.Minute), stream.Sum()).
		Sink("crowd-view", func(e stream.Event) {
			p.crowd.Apply(analytics.Row{Group: e.Key, Value: e.Value})
		})
	if err := p.pipe.Start(); err != nil {
		return err
	}

	group, err := p.broker.NewGroup(TopicInteractions)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		_ = group.Consume(ctx, 256, func(recs []mq.Record) error {
			for _, r := range recs {
				evt, err := decodeInteraction(r.Value)
				if err != nil {
					p.reg.Counter("core.interactions.bad").Inc()
					continue
				}
				p.hot.Add(evt.POIKey)
				if err := p.pipe.Push("interactions", stream.Event{
					Key:   evt.POIKey,
					Time:  r.Time,
					Value: evt.Weight,
				}); err != nil {
					return err
				}
			}
			p.reg.Counter("core.interactions.consumed").Add(int64(len(recs)))
			return nil
		})
	}()
	return nil
}

// Stop drains the analytics plane. Safe to call once after Start.
func (p *Platform) Stop() error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return ErrNotStarted
	}
	if p.stopped {
		p.mu.Unlock()
		return nil
	}
	p.stopped = true
	p.mu.Unlock()
	p.cancel()
	<-p.done
	return p.pipe.Drain()
}

// WaitAnalyticsIdle blocks until the consumer has caught up with the
// interaction topic (used by tests and examples for determinism).
func (p *Platform) WaitAnalyticsIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		lag := int64(0)
		for pi := 0; pi < 4; pi++ {
			_, newest, err := p.broker.Offsets(TopicInteractions, pi)
			if err != nil {
				return err
			}
			lag += newest
		}
		consumed := p.reg.Counter("core.interactions.consumed").Value()
		if consumed >= lag {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: analytics still %d behind after %v", lag-consumed, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// HotPOIs returns the trending POI keys.
func (p *Platform) HotPOIs(k int) []analytics.HeavyHitter {
	return p.hot.TopK(k)
}
