// Session state snapshot/restore: the serialization layer under live
// session migration. When a shard drains (or the ring remaps a session to
// a new owner), the session's mutable state — tracking solution, gaze
// dwell, degradation level, RNG stream position, and the telemetry records
// still buffered for the broker — is exported as one payload, shipped
// through the router inside a MsgMigrateSession envelope, and imported
// into the destination platform's registry. The destination then serves
// frames indistinguishable from the source's next frame: no sensor
// re-warm, no telemetry loss, no RNG stream reset.
package core

import (
	"fmt"
	"time"

	"arbd/internal/sim"
	"arbd/internal/tracking"
	"arbd/internal/wire"
)

// sessionSnapshotV1 is the snapshot format version byte. Bump on any
// layout change; decoders reject versions they don't know (migrations run
// between same-build nodes, so fail-closed beats best-effort).
const sessionSnapshotV1 = 1

// Decode bounds: a corrupt count must not pre-allocate unbounded memory —
// or, for the RNG draw count, spin unbounded CPU: restore replays the
// stream draw by draw, so the bound caps replay at well under a second
// while sitting orders of magnitude above any real session (privacy noise
// draws a handful of values per GPS fix; a month-long session stays in
// the tens of millions).
const (
	maxSnapshotGazeEntries  = 1 << 20
	maxSnapshotBatchRecords = 1 << 20
	maxSnapshotRNGDraws     = 1 << 28
)

// EncodeSnapshotInto appends the session's complete mutable state to buf.
// Buffered telemetry is MOVED into the snapshot, not copied: the records
// will be published by the importing node, and leaving them here too would
// double-publish them if the source's background flusher ran in the gap
// before the session detaches. Callers therefore treat a snapshotted
// session as already retired — detach it without a final flush.
func (s *Session) EncodeSnapshotInto(buf *wire.Buffer) {
	s.mu.Lock()
	defer s.mu.Unlock()

	buf.Byte(sessionSnapshotV1)
	buf.Uvarint(s.ID)
	buf.Uvarint(uint64(s.level))
	buf.Uvarint(s.frames)
	buf.Uvarint(s.overruns)

	buf.Varint(s.rng.Seed())
	buf.Uvarint(s.rng.Draws())

	buf.Uvarint(uint64(len(s.gaze)))
	for id, dwell := range s.gaze {
		buf.Uvarint(id)
		buf.Float64(dwell)
	}

	st := s.fuser.ExportState()
	for _, v := range st.X {
		buf.Float64(v)
	}
	for _, row := range st.P {
		for _, v := range row {
			buf.Float64(v)
		}
	}
	buf.Float64(st.HeadingDeg)
	buf.Float64(st.HeadingVar)
	buf.Varint(st.LastNanos)
	buf.Bool(st.Has)
	buf.Uvarint(uint64(st.GPSUpdates))
	buf.Uvarint(uint64(st.VisionUpdates))

	s.telem.takeInto(buf)
}

// takeInto drains the batcher's buffered records into buf (move, not
// copy — see EncodeSnapshotInto).
func (tb *telemetryBatcher) takeInto(buf *wire.Buffer) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for topic := range tb.buffers {
		values := tb.buffers[topic].values
		tb.buffers[topic].values = nil
		buf.Uvarint(uint64(len(values)))
		for _, v := range values {
			buf.Bytes8(v)
		}
	}
}

// restore installs imported records as the batcher's buffered tail. Ages
// restart at the import time: the max-delay bound is about how long a
// record waits on *this* node.
func (tb *telemetryBatcher) restore(topics [numTelemetryTopics][][]byte) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	for topic := range tb.buffers {
		tb.buffers[topic].values = topics[topic]
		tb.buffers[topic].oldestAt = now
	}
}

// RestoreSession decodes a session snapshot produced by EncodeSnapshotInto
// and registers the rebuilt session in this platform's registry. The
// destination platform must share the source's world config (same city,
// same origin): tracking state is origin-relative. It fails if a session
// with the snapshot's ID is already live — the migration protocol
// guarantees traffic is gated until the import acks, so a collision means
// a protocol bug, not a race to paper over.
func (p *Platform) RestoreSession(payload []byte) (*Session, error) {
	r := wire.NewReader(payload)
	fail := func(err error, what string) (*Session, error) {
		return nil, r.Err(err, "session snapshot "+what)
	}

	version, err := r.Uvarint()
	if err != nil {
		return fail(err, "version")
	}
	if version != sessionSnapshotV1 {
		return nil, fmt.Errorf("core: unknown session snapshot version %d", version)
	}
	id, err := r.Uvarint()
	if err != nil {
		return fail(err, "id")
	}
	if id == 0 {
		return nil, fmt.Errorf("core: session snapshot with zero ID")
	}
	level, err := r.Uvarint()
	if err != nil {
		return fail(err, "level")
	}
	frames, err := r.Uvarint()
	if err != nil {
		return fail(err, "frames")
	}
	overruns, err := r.Uvarint()
	if err != nil {
		return fail(err, "overruns")
	}
	rngSeed, err := r.Varint()
	if err != nil {
		return fail(err, "rng seed")
	}
	rngDraws, err := r.Uvarint()
	if err != nil {
		return fail(err, "rng draws")
	}
	if rngDraws > maxSnapshotRNGDraws {
		return nil, fmt.Errorf("core: implausible RNG draw count %d", rngDraws)
	}

	nGaze, err := r.Uvarint()
	if err != nil {
		return fail(err, "gaze count")
	}
	if nGaze > maxSnapshotGazeEntries {
		return nil, fmt.Errorf("core: implausible gaze entry count %d", nGaze)
	}
	gaze := make(map[uint64]float64, nGaze)
	for i := uint64(0); i < nGaze; i++ {
		key, err := r.Uvarint()
		if err != nil {
			return fail(err, "gaze key")
		}
		dwell, err := r.Float64()
		if err != nil {
			return fail(err, "gaze dwell")
		}
		gaze[key] = dwell
	}

	var st tracking.FuserState
	for i := range st.X {
		if st.X[i], err = r.Float64(); err != nil {
			return fail(err, "fuser state")
		}
	}
	for i := range st.P {
		for j := range st.P[i] {
			if st.P[i][j], err = r.Float64(); err != nil {
				return fail(err, "fuser covariance")
			}
		}
	}
	if st.HeadingDeg, err = r.Float64(); err != nil {
		return fail(err, "fuser heading")
	}
	if st.HeadingVar, err = r.Float64(); err != nil {
		return fail(err, "fuser heading variance")
	}
	if st.LastNanos, err = r.Varint(); err != nil {
		return fail(err, "fuser clock")
	}
	if st.Has, err = r.Bool(); err != nil {
		return fail(err, "fuser has")
	}
	gps, err := r.Uvarint()
	if err != nil {
		return fail(err, "fuser gps updates")
	}
	vision, err := r.Uvarint()
	if err != nil {
		return fail(err, "fuser vision updates")
	}
	st.GPSUpdates, st.VisionUpdates = int(gps), int(vision)

	var topics [numTelemetryTopics][][]byte
	for topic := range topics {
		n, err := r.Uvarint()
		if err != nil {
			return fail(err, "telemetry count")
		}
		if n > maxSnapshotBatchRecords {
			return nil, fmt.Errorf("core: implausible telemetry record count %d", n)
		}
		if n == 0 {
			continue
		}
		values := make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := r.Bytes8()
			if err != nil {
				return fail(err, "telemetry record")
			}
			// The reader aliases the caller's payload buffer; the batcher
			// retains records until flush, so copy.
			values = append(values, append([]byte(nil), v...))
		}
		topics[topic] = values
	}

	// Keep platform-assigned IDs ahead of imported ones, exactly as
	// SessionOrNew does for router-minted IDs.
	for {
		cur := p.nextSess.Load()
		if cur >= id || p.nextSess.CompareAndSwap(cur, id) {
			break
		}
	}

	s := p.buildSession(id)
	s.rng = sim.RestoreRand(rngSeed, rngDraws)
	s.level = DegradeLevel(level)
	s.frames = frames
	s.overruns = overruns
	s.gaze = gaze
	s.fuser.RestoreState(st)
	s.telem.restore(topics)

	if _, existed := p.sessions.addIfAbsent(s); existed {
		return nil, fmt.Errorf("core: session %d already live; refusing snapshot import", id)
	}
	return s, nil
}

// DetachSession removes a session from the registry WITHOUT flushing its
// telemetry — the counterpart of EncodeSnapshotInto, which moved the
// buffered records into the snapshot. EndSession (flush + remove) remains
// the path for sessions that end rather than migrate.
func (p *Platform) DetachSession(id uint64) bool {
	_, ok := p.sessions.remove(id)
	return ok
}
