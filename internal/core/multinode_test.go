package core

import (
	"math"
	"sort"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/sim"
	"arbd/internal/wire"
)

// TestLoadSignalRoundTrip checks the MsgLoad payload codec a shard pushes
// and a router decodes.
func TestLoadSignalRoundTrip(t *testing.T) {
	for _, sig := range []LoadSignal{
		{},
		{FlushLatency: 3 * time.Millisecond},
		{Backlog: 9000},
		{FlushLatency: 250 * time.Microsecond, Backlog: 1 << 40},
	} {
		var b wire.Buffer
		EncodeLoadSignalInto(&b, sig)
		got, err := DecodeLoadSignal(b.Bytes())
		if err != nil {
			t.Fatalf("%+v: %v", sig, err)
		}
		if got != sig {
			t.Fatalf("round trip: got %+v, want %+v", got, sig)
		}
		// Reuse after Reset must reproduce the bytes (the shard's load loop
		// reuses one buffer).
		first := append([]byte(nil), b.Bytes()...)
		b.Reset()
		EncodeLoadSignalInto(&b, sig)
		if string(first) != string(b.Bytes()) {
			t.Fatalf("%+v: encode differs after buffer reuse", sig)
		}
	}
	if _, err := DecodeLoadSignal(nil); err == nil {
		t.Fatal("empty load signal decoded")
	}
	if _, err := DecodeLoadSignal([]byte{5}); err == nil {
		t.Fatal("truncated load signal decoded")
	}
}

// TestSessionOrNew checks the shard-node get-or-create path: IDs are
// honoured, lookups converge on one session, and platform-assigned IDs
// never collide with externally minted ones.
func TestSessionOrNew(t *testing.T) {
	p := newReusePlatform(t, false)
	s1 := p.SessionOrNew(100)
	if s1.ID != 100 {
		t.Fatalf("SessionOrNew(100).ID = %d", s1.ID)
	}
	if s2 := p.SessionOrNew(100); s2 != s1 {
		t.Fatal("second SessionOrNew(100) returned a different session")
	}
	if got, ok := p.Session(100); !ok || got != s1 {
		t.Fatal("registry lookup disagrees with SessionOrNew")
	}
	// A later platform-assigned session must mint an ID beyond 100.
	if s3 := p.NewSession(); s3.ID <= 100 {
		t.Fatalf("NewSession after SessionOrNew(100) minted ID %d", s3.ID)
	}
	// The created session is fully functional.
	if err := s1.OnGPS(sensor.GPSFix{Time: sim.Epoch, Position: center, AccuracyM: 3}); err != nil {
		t.Fatal(err)
	}
	f, err := s1.Frame(sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Annotations) == 0 {
		t.Fatal("router-minted session rendered an empty frame")
	}
	if err := p.EndSession(100); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Session(100); ok {
		t.Fatal("session survived EndSession")
	}
}

// TestMixSessionIDSpreads pins the partition mix: sequential IDs must not
// map to sequential partitions (the property both the registry shards and
// the router ring rely on), and the mix must stay stable — it is part of
// the routing contract between independently deployed routers.
func TestMixSessionIDSpreads(t *testing.T) {
	if got := MixSessionID(1); got != 0x5692161d100b05e5 {
		t.Fatalf("MixSessionID(1) = %#x — changing the mix reshuffles every deployed ring", got)
	}
	const parts = 8
	var hit [parts]int
	for id := uint64(1); id <= 4096; id++ {
		hit[MixSessionID(id)%parts]++
	}
	for i, n := range hit {
		if n < 4096/parts/2 || n > 4096/parts*2 {
			t.Fatalf("partition %d got %d of 4096 sessions — mix is not spreading", i, n)
		}
	}
}

// TestP2QuantileKnownStream drives the streaming estimator with streams
// whose true quantiles are known and checks the estimate lands near them.
func TestP2QuantileKnownStream(t *testing.T) {
	// Shuffled 1..10000: true p99 = 9900.
	rng := sim.NewRand(99)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	for i := len(vals) - 1; i > 0; i-- {
		j := int(rng.Int63() % int64(i+1))
		vals[i], vals[j] = vals[j], vals[i]
	}
	q := newP2Quantile(0.99)
	for _, v := range vals {
		q.observe(v)
	}
	est, ok := q.estimate()
	if !ok {
		t.Fatal("estimator not warm after 10000 samples")
	}
	if est < 9800 || est > 9999 {
		t.Fatalf("p99 of shuffled 1..10000 estimated %v, want ≈9900", est)
	}

	// A bimodal stream — 99% fast, 1% slow — is the case the EWMA hides:
	// the p99 estimate must land in the slow mode's neighbourhood, far
	// above the ~1.1 mean.
	q.reset()
	for i := 0; i < 10000; i++ {
		v := 1.0
		if i%100 == 99 {
			v = 50.0
		}
		q.observe(v)
	}
	est, _ = q.estimate()
	if est < 10 {
		t.Fatalf("bimodal p99 estimated %v, want deep into the slow mode (≥10)", est)
	}

	// Cold estimator reports not-ok.
	q.reset()
	q.observe(1)
	if _, ok := q.estimate(); ok {
		t.Fatal("estimator claims warm after one sample")
	}
}

// TestP2QuantileMatchesExactOnUniform compares the estimator against the
// exact quantile for a few targets on a seeded uniform stream.
func TestP2QuantileMatchesExactOnUniform(t *testing.T) {
	rng := sim.NewRand(7)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	for _, target := range []float64{0.5, 0.9, 0.99} {
		q := newP2Quantile(target)
		for _, v := range vals {
			q.observe(v)
		}
		est, ok := q.estimate()
		if !ok {
			t.Fatalf("q=%v not warm", target)
		}
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		exact := s[int(target*float64(n-1))]
		if math.Abs(est-exact) > 50 { // 5% of the range
			t.Fatalf("q=%v: estimate %v vs exact %v", target, est, exact)
		}
	}
}

// TestFlushLatencySignalPrefersP99 checks admission sees the flush-latency
// tail once the estimator is warm, and the EWMA before that.
func TestFlushLatencySignalPrefersP99(t *testing.T) {
	lt := newLoadTracker(32, 128)
	// Cold: two samples are below the P² warm-up, so the EWMA answers.
	lt.observeFlush(8 * time.Millisecond)
	lt.observeFlush(8 * time.Millisecond)
	if got := lt.flushLatency(); got == 0 {
		t.Fatal("cold tracker lost the EWMA fallback")
	}
	// Warm, bimodal: mostly 1 ms with a 1-in-50 tail of 100 ms. The EWMA
	// settles near the mean (~3 ms); the p99 signal must sit well above it.
	for i := 0; i < 500; i++ {
		d := time.Millisecond
		if i%50 == 49 {
			d = 100 * time.Millisecond
		}
		lt.observeFlush(d)
	}
	sig := lt.flushLatency()
	if sig < 10*time.Millisecond {
		t.Fatalf("flush signal %v ignores the tail (EWMA-like), want p99-driven ≥10ms", sig)
	}
	if ew := lt.ewma(); sig <= ew {
		t.Fatalf("p99 signal %v not above EWMA %v for a tailed stream", sig, ew)
	}
}

// TestFrameSteadyStateAllocs pins the whole-frame allocation budget: with
// the per-session scratch warm, a frame costs at most one heap allocation
// (ROADMAP target after moving the Frame struct and the sketch snapshot
// into scratch).
func TestFrameSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	p, err := NewPlatform(Config{
		Seed: 1,
		City: geo.CityConfig{Center: center, RadiusM: 2000, NumPOIs: 2000, TallRatio: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	now := time.Now()
	if err := s.OnGPS(sensor.GPSFix{Time: now, Position: center, AccuracyM: 5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Frame(now); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Frame(now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Frame allocates %.1f objects/op in steady state, want ≤1", allocs)
	}
}
