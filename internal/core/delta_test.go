package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/render"
	"arbd/internal/wire"
)

func deltaAnn(id uint64, label string, x, y float64) render.Annotation {
	return render.Annotation{
		ID: id, Label: label, X: x, Y: y, W: 40, H: 12,
		Anchor: geo.Point{Lat: 22.33 + float64(id)/1e4, Lon: 114.26},
		Placed: true,
	}
}

// TestFrameDeltaApplyReproducesFullEncoding pins the interchangeability
// contract EncodeFrameDeltaInto documents: applying a diff payload to the
// base frame and re-encoding the result reproduces the full encoding byte
// for byte — across moved fields, a label rewrite, annotation churn
// (one added, one dropped), and reordering between frames.
func TestFrameDeltaApplyReproducesFullEncoding(t *testing.T) {
	prevAnns := []render.Annotation{
		deltaAnn(1, "cafe", 10, 10),
		deltaAnn(2, "atm", 50, 20),
		deltaAnn(3, "gate", 90, 40),
	}
	moved := deltaAnn(2, "atm 24h", 55, 20) // X moved, label rewritten
	tower := deltaAnn(4, "tower", 120, 5)   // new this frame
	tower.XRay = true
	cur := &Frame{
		// Annotation 3 dropped; 2 now leads — order and membership both
		// changed, so the diff walk's cursor has to handle a reorder.
		Annotations:     []render.Annotation{moved, prevAnns[0], tower},
		PrevAnnotations: prevAnns,
		Level:           1,
		Elapsed:         7 * time.Millisecond,
	}

	var full, delta wire.Buffer
	EncodeFrameInto(&full, cur)
	EncodeFrameDeltaInto(&delta, cur, false)
	if FrameDeltaIsKeyframe(delta.Bytes()) {
		t.Fatal("diff encoding flagged as keyframe")
	}
	if len(delta.Bytes()) >= len(full.Bytes()) {
		t.Fatalf("delta (%dB) not smaller than full (%dB)", len(delta.Bytes()), len(full.Bytes()))
	}

	base, err := DecodeFrame(EncodeFrame(&Frame{Annotations: prevAnns, Elapsed: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := ApplyFrameDelta(base, delta.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var re wire.Buffer
	EncodeFrameInto(&re, &Frame{
		Annotations: applied.Annotations,
		Level:       applied.Level,
		Elapsed:     time.Duration(applied.ElapsedNs),
	})
	if !bytes.Equal(re.Bytes(), full.Bytes()) {
		t.Fatalf("apply+re-encode diverged from full encoding:\n full %x\n re   %x",
			full.Bytes(), re.Bytes())
	}
}

// TestFrameDeltaKeyframeAndBaseErrors pins the resync contract: keyframe
// payloads decode with no base, diff payloads against a missing base fail
// typed with ErrDeltaBase (the signal that drives WantKeyframe acks), and
// a frame without PrevAnnotations encodes as a keyframe regardless of what
// the caller asked for.
func TestFrameDeltaKeyframeAndBaseErrors(t *testing.T) {
	cur := &Frame{
		Annotations:     []render.Annotation{deltaAnn(7, "pier", 30, 60)},
		PrevAnnotations: []render.Annotation{deltaAnn(7, "pier", 28, 60)},
		Elapsed:         3 * time.Millisecond,
	}
	var key, diff, full wire.Buffer
	EncodeFrameDeltaInto(&key, cur, true)
	EncodeFrameDeltaInto(&diff, cur, false)
	EncodeFrameInto(&full, cur)

	if !FrameDeltaIsKeyframe(key.Bytes()) {
		t.Fatal("keyframe payload not flagged")
	}
	applied, err := ApplyFrameDelta(nil, key.Bytes())
	if err != nil {
		t.Fatalf("keyframe must apply with nil base: %v", err)
	}
	var re wire.Buffer
	EncodeFrameInto(&re, &Frame{
		Annotations: applied.Annotations,
		Level:       applied.Level,
		Elapsed:     time.Duration(applied.ElapsedNs),
	})
	if !bytes.Equal(re.Bytes(), full.Bytes()) {
		t.Fatal("keyframe round-trip diverged from full encoding")
	}

	if _, err := ApplyFrameDelta(nil, diff.Bytes()); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("diff with nil base: err = %v, want ErrDeltaBase", err)
	}

	first := &Frame{Annotations: cur.Annotations, Elapsed: cur.Elapsed} // no PrevAnnotations
	var forced wire.Buffer
	EncodeFrameDeltaInto(&forced, first, false)
	if !FrameDeltaIsKeyframe(forced.Bytes()) {
		t.Fatal("frame without a base must encode as a keyframe")
	}
}
