package storage

import (
	"bytes"
	"errors"
	"sort"
	"sync"
)

// ErrNotFound is returned when a key has no live value.
var ErrNotFound = errors.New("storage: key not found")

// kvEntry is a key/value pair; a nil Value is a tombstone.
type kvEntry struct {
	key   []byte
	value []byte // nil = deleted
}

// run is an immutable, key-sorted set of entries (an in-memory SSTable).
type run struct {
	entries []kvEntry
}

// get binary-searches the run. found=false means the run has no opinion.
func (r *run) get(key []byte) (value []byte, tombstone, found bool) {
	i := sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, key) >= 0
	})
	if i >= len(r.entries) || !bytes.Equal(r.entries[i].key, key) {
		return nil, false, false
	}
	e := r.entries[i]
	if e.value == nil {
		return nil, true, true
	}
	return e.value, false, true
}

// KV is a log-structured key-value store: writes land in a mutable memtable;
// when the memtable exceeds the flush threshold it becomes an immutable
// sorted run; runs are merged (newest wins) by compaction. An optional WAL
// makes mutations durable. KV is safe for concurrent use.
type KV struct {
	mu        sync.RWMutex
	mem       map[string][]byte // value nil = tombstone
	memBytes  int
	runs      []*run // newest first
	wal       *WAL
	flushSize int
	maxRuns   int
}

// KVOption configures a KV store.
type KVOption func(*KV)

// WithFlushSize sets the memtable flush threshold in bytes (default 1 MiB).
func WithFlushSize(n int) KVOption {
	return func(kv *KV) {
		if n > 0 {
			kv.flushSize = n
		}
	}
}

// WithMaxRuns sets the number of immutable runs that triggers compaction
// (default 4).
func WithMaxRuns(n int) KVOption {
	return func(kv *KV) {
		if n > 0 {
			kv.maxRuns = n
		}
	}
}

// WithWAL attaches a write-ahead log; every mutation is appended before it is
// applied.
func WithWAL(w *WAL) KVOption {
	return func(kv *KV) { kv.wal = w }
}

// NewKV returns an empty store.
func NewKV(opts ...KVOption) *KV {
	kv := &KV{
		mem:       make(map[string][]byte),
		flushSize: 1 << 20,
		maxRuns:   4,
	}
	for _, opt := range opts {
		opt(kv)
	}
	return kv
}

// RecoverKV rebuilds a store from the WAL at path, then attaches a fresh
// append handle to the same file so subsequent mutations are logged.
func RecoverKV(path string, opts ...KVOption) (*KV, error) {
	kv := NewKV(opts...)
	err := ReplayWAL(path, func(rec WALRecord) error {
		switch rec.Op {
		case OpPut:
			kv.applyPut(rec.Key, rec.Value)
		case OpDelete:
			kv.applyDelete(rec.Key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	w, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	kv.wal = w
	return kv, nil
}

// Put stores value under key. The value is copied.
func (kv *KV) Put(key, value []byte) error {
	if kv.wal != nil {
		if err := kv.wal.Append(WALRecord{Op: OpPut, Key: key, Value: value}); err != nil {
			return err
		}
	}
	kv.applyPut(key, value)
	return nil
}

func (kv *KV) applyPut(key, value []byte) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v := append([]byte(nil), value...)
	if v == nil {
		v = []byte{} // distinguish empty value from tombstone
	}
	kv.mem[string(key)] = v
	kv.memBytes += len(key) + len(v)
	kv.maybeFlushLocked()
}

// Delete removes key (writing a tombstone).
func (kv *KV) Delete(key []byte) error {
	if kv.wal != nil {
		if err := kv.wal.Append(WALRecord{Op: OpDelete, Key: key}); err != nil {
			return err
		}
	}
	kv.applyDelete(key)
	return nil
}

func (kv *KV) applyDelete(key []byte) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.mem[string(key)] = nil
	kv.memBytes += len(key)
	kv.maybeFlushLocked()
}

// Get returns the value for key, or ErrNotFound.
func (kv *KV) Get(key []byte) ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if v, ok := kv.mem[string(key)]; ok {
		if v == nil {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for _, r := range kv.runs {
		if v, tomb, found := r.get(key); found {
			if tomb {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key has a live value.
func (kv *KV) Has(key []byte) bool {
	_, err := kv.Get(key)
	return err == nil
}

// maybeFlushLocked converts the memtable to a run when it is big enough, and
// compacts when there are too many runs. Caller holds kv.mu.
func (kv *KV) maybeFlushLocked() {
	if kv.memBytes < kv.flushSize {
		return
	}
	kv.flushLocked()
	if len(kv.runs) > kv.maxRuns {
		kv.compactLocked()
	}
}

func (kv *KV) flushLocked() {
	if len(kv.mem) == 0 {
		return
	}
	entries := make([]kvEntry, 0, len(kv.mem))
	for k, v := range kv.mem {
		entries = append(entries, kvEntry{key: []byte(k), value: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].key, entries[j].key) < 0
	})
	kv.runs = append([]*run{{entries: entries}}, kv.runs...)
	kv.mem = make(map[string][]byte)
	kv.memBytes = 0
}

// compactLocked merges all runs into one, dropping superseded entries and
// tombstones. Caller holds kv.mu.
func (kv *KV) compactLocked() {
	if len(kv.runs) <= 1 {
		return
	}
	// Newest-first iteration: first sighting of a key wins.
	seen := make(map[string]struct{})
	var merged []kvEntry
	for _, r := range kv.runs {
		for _, e := range r.entries {
			if _, dup := seen[string(e.key)]; dup {
				continue
			}
			seen[string(e.key)] = struct{}{}
			if e.value != nil { // drop tombstones at full compaction
				merged = append(merged, e)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		return bytes.Compare(merged[i].key, merged[j].key) < 0
	})
	kv.runs = []*run{{entries: merged}}
}

// Flush forces the memtable into a run and compacts. Mainly for tests and
// shutdown.
func (kv *KV) Flush() {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.flushLocked()
	kv.compactLocked()
}

// Len returns the number of live keys (scans; intended for tests/metrics).
func (kv *KV) Len() int {
	n := 0
	kv.Range(nil, nil, func(k, v []byte) bool {
		n++
		return true
	})
	return n
}

// Runs returns the current number of immutable runs (for tests/metrics).
func (kv *KV) Runs() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.runs)
}

// Range calls fn for every live key in [from, to) in ascending key order.
// A nil from means from the smallest key; nil to means to the largest.
// fn returning false stops the scan.
func (kv *KV) Range(from, to []byte, fn func(key, value []byte) bool) {
	kv.mu.RLock()
	// Collect a merged view: memtable overrides runs, newer runs override
	// older ones.
	resolved := make(map[string][]byte)
	for i := len(kv.runs) - 1; i >= 0; i-- {
		for _, e := range kv.runs[i].entries {
			if inRange(e.key, from, to) {
				resolved[string(e.key)] = e.value
			}
		}
	}
	for k, v := range kv.mem {
		if inRange([]byte(k), from, to) {
			resolved[k] = v
		}
	}
	kv.mu.RUnlock()

	keys := make([]string, 0, len(resolved))
	for k, v := range resolved {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), append([]byte(nil), resolved[k]...)) {
			return
		}
	}
}

func inRange(key, from, to []byte) bool {
	if from != nil && bytes.Compare(key, from) < 0 {
		return false
	}
	if to != nil && bytes.Compare(key, to) >= 0 {
		return false
	}
	return true
}

// Close flushes and closes the attached WAL, if any.
func (kv *KV) Close() error {
	if kv.wal != nil {
		return kv.wal.Close()
	}
	return nil
}
